// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation as testing.B benchmarks — one benchmark family per
// figure. Run them all with:
//
//	go test -bench=. -benchmem
//
// The cmd/stmbench tool produces the same sweeps as formatted tables with
// overhead percentages; these benchmarks expose the raw per-configuration
// times through the standard Go tooling instead, plus microbenchmarks of
// the paper's barrier instruction sequences, which show the
// compiled-code-magnitude costs that the interpreter-hosted figures damp.
package repro

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/causal"
	"repro/internal/lang/ir"
	"repro/internal/lazystm"
	"repro/internal/litmus"
	"repro/internal/objmodel"
	"repro/internal/opt"
	"repro/internal/stm"
	"repro/internal/strong"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// ---- Figure 6: the anomaly matrix ----

func BenchmarkFig06AnomalyMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := litmus.RunAll(litmus.AllModes)
		if ok, why := litmus.Matches(results, litmus.AllModes); !ok {
			b.Fatalf("matrix mismatch: %s", why)
		}
	}
}

// ---- Figure 13: static barrier-removal counts ----

func BenchmarkFig13StaticCounts(b *testing.B) {
	progs := make([]*ir.Program, 0)
	for _, w := range workloads.All() {
		p, _, err := w.Compile(opt.O0NoOpts, 1)
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			rep := analysis.Run(p, analysis.Options{Granularity: 1})
			if rep.TotalReads+rep.TotalWrites == 0 {
				b.Fatal("no barriers counted")
			}
		}
	}
}

// ---- Figures 15/16/17: non-transactional barrier overhead ----

func overheadBench(b *testing.B, sel vm.BarrierSelect) {
	type cfg struct {
		name   string
		level  opt.Level
		strong bool
		dea    bool
	}
	configs := []cfg{
		{"Baseline", opt.O0NoOpts, false, false},
		{"NoOpts", opt.O0NoOpts, true, false},
		{"BarrierElim", opt.O1BarrierElim, true, false},
		{"BarrierAggr", opt.O2Aggregate, true, false},
		{"DEA", opt.O3DEA, true, true},
		{"WholeProg", opt.O4WholeProg, true, true},
	}
	for _, w := range workloads.JVM98() {
		args := w.CheckArgs
		for _, c := range configs {
			o := opt.FromLevel(c.level, 1)
			if sel == vm.BarrierReadsOnly {
				o.Aggregate = false
			}
			prog, _, err := w.CompileOptions(o)
			if err != nil {
				b.Fatal(err)
			}
			mode := vm.Mode{
				Sync: vm.SyncSTM, Versioning: vm.Eager,
				Strong: c.strong, DEA: c.dea, Barriers: sel, Args: args,
			}
			b.Run(fmt.Sprintf("%s/%s", w.Name, c.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := workloads.Run(prog, mode); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig15Jvm98Overhead(b *testing.B) { overheadBench(b, vm.BarrierAll) }
func BenchmarkFig16ReadBarriers(b *testing.B)  { overheadBench(b, vm.BarrierReadsOnly) }
func BenchmarkFig17WriteBarriers(b *testing.B) { overheadBench(b, vm.BarrierWritesOnly) }

// ---- Figures 18/19/20: transactional scalability ----

func scalingBench(b *testing.B, w workloads.Workload) {
	for _, cfg := range bench.ScalingConfigs() {
		prog, _, err := w.Compile(cfg.Level, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, threads := range bench.ThreadSweep(bench.MaxThreads()) {
			args := w.BenchArgs(threads, 1, cfg.UseTxn)
			// Shrink to check-scale for the testing.B harness; the full
			// sweep lives in cmd/stmbench.
			args[1] = w.CheckArgs[1]
			mode := cfg.Mode(args)
			b.Run(fmt.Sprintf("%s/%dT", cfg.Name, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := workloads.Run(prog, mode); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig18Tsp(b *testing.B) { scalingBench(b, workloads.Tsp()) }
func BenchmarkFig19OO7(b *testing.B) { scalingBench(b, workloads.OO7()) }
func BenchmarkFig20JBB(b *testing.B) { scalingBench(b, workloads.JBB()) }

// ---- Microbenchmarks: the paper's barrier sequences at compiled speed ----
//
// These measure the raw cost of the Figure 9/10 instruction sequences
// against a plain access, the ratio the paper's "up to 8x unoptimized"
// headline comes from: on compiled code, an unbarriered access is a single
// load/store, and the write barrier adds an atomic RMW + atomic add.

func barrierFixture(b *testing.B, dea bool) (*objmodel.Heap, *objmodel.Object, *strong.Barriers) {
	b.Helper()
	h := objmodel.NewHeap()
	h.AllocPrivate = dea
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Cell",
		Fields: []objmodel.Field{{Name: "a"}, {Name: "b"}, {Name: "c"}},
	})
	return h, h.New(cls), strong.New(h, dea)
}

var sinkU64 uint64

func BenchmarkAccessPlainLoad(b *testing.B) {
	_, o, _ := barrierFixture(b, false)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += o.LoadSlot(0)
	}
	sinkU64 = s
}

func BenchmarkAccessPlainStore(b *testing.B) {
	_, o, _ := barrierFixture(b, false)
	for i := 0; i < b.N; i++ {
		o.StoreSlot(0, uint64(i))
	}
}

func BenchmarkAccessReadBarrier(b *testing.B) {
	_, o, bar := barrierFixture(b, false)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += bar.Read(o, 0)
	}
	sinkU64 = s
}

func BenchmarkAccessWriteBarrier(b *testing.B) {
	_, o, bar := barrierFixture(b, false)
	for i := 0; i < b.N; i++ {
		bar.Write(o, 0, uint64(i))
	}
}

func BenchmarkAccessReadBarrierPrivate(b *testing.B) {
	_, o, bar := barrierFixture(b, true)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += bar.Read(o, 0)
	}
	sinkU64 = s
}

func BenchmarkAccessWriteBarrierPrivate(b *testing.B) {
	_, o, bar := barrierFixture(b, true)
	for i := 0; i < b.N; i++ {
		bar.Write(o, 0, uint64(i))
	}
}

func BenchmarkAccessAggregated3(b *testing.B) {
	// One acquire/release amortized over three accesses (Figure 14)
	// versus three standalone write barriers.
	_, o, bar := barrierFixture(b, false)
	for i := 0; i < b.N; i++ {
		tok := bar.Acquire(o)
		bar.AggWrite(o, 0, uint64(i), tok)
		v := bar.AggRead(o, 1, tok)
		bar.AggWrite(o, 2, v+1, tok)
		bar.Release(o, tok)
	}
}

func BenchmarkAccessSeparate3(b *testing.B) {
	_, o, bar := barrierFixture(b, false)
	for i := 0; i < b.N; i++ {
		bar.Write(o, 0, uint64(i))
		v := bar.Read(o, 1)
		bar.Write(o, 2, v+1)
	}
}

// ---- STM operation costs ----

func BenchmarkTxnReadWriteCommit(b *testing.B) {
	h, o, _ := barrierFixture(b, false)
	rt := stm.New(h, stm.Config{})
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		})
	}
}

func BenchmarkTxnReadOnly(b *testing.B) {
	h, o, _ := barrierFixture(b, false)
	rt := stm.New(h, stm.Config{})
	var s uint64
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(nil, func(tx *stm.Txn) error {
			s += tx.Read(o, 0) + tx.Read(o, 1) + tx.Read(o, 2)
			return nil
		})
	}
	sinkU64 = s
}

// BenchmarkTxnEmptyCommit isolates pure transaction overhead: descriptor
// acquisition, registry begin/end, commit, stats flush. With descriptor
// pooling this is allocation-free — run with -benchmem to verify 0
// allocs/op.
func BenchmarkTxnEmptyCommit(b *testing.B) {
	h, _, _ := barrierFixture(b, false)
	rt := stm.New(h, stm.Config{})
	nop := func(tx *stm.Txn) error { return nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(nil, nop)
	}
}

// BenchmarkTxnTracerDisabled / BenchmarkTxnTracerEnabled measure the cost
// of the observability hooks. With no tracer installed the per-transaction
// price is one atomic pointer load plus nil checks — run with -benchmem to
// verify the disabled path stays at 0 allocs/op and within noise of
// BenchmarkTxnReadWriteCommit. The enabled variant shows the full price of
// event recording, hotspot accounting, and latency histograms.
func BenchmarkTxnTracerDisabled(b *testing.B) {
	h, o, _ := barrierFixture(b, false)
	rt := stm.New(h, stm.Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		})
	}
}

func BenchmarkTxnTracerEnabled(b *testing.B) {
	h, o, _ := barrierFixture(b, false)
	rt := stm.New(h, stm.Config{})
	rt.SetTracer(trace.New(trace.Config{}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		})
	}
}

// BenchmarkTxnCausalRecorder adds the flight recorder as the tracer's sink:
// the full observability stack — event recording plus per-event conflict-DAG
// maintenance (attempt spans, edge rings, last-writer table). Compare against
// BenchmarkTxnTracerEnabled for the recorder's marginal price and against
// BenchmarkTxnTracerDisabled for the total; the disabled path must stay at
// 0 allocs/op regardless of this stack existing.
func BenchmarkTxnCausalRecorder(b *testing.B) {
	h, o, _ := barrierFixture(b, false)
	rt := stm.New(h, stm.Config{})
	tr := trace.New(trace.Config{})
	tr.SetSink(causal.NewRecorder(causal.Config{}))
	rt.SetTracer(tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		})
	}
}

// BenchmarkLazyTxnSmall is the lazy-runtime analogue of
// BenchmarkTxnReadWriteCommit: buffer a write, read it back, commit with
// write-back. Also allocation-free in steady state.
func BenchmarkLazyTxnSmall(b *testing.B) {
	h, o, _ := barrierFixture(b, false)
	rt := lazystm.New(h, lazystm.Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(nil, func(tx *lazystm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		})
	}
}

// ---- Parallel STM hot-path throughput ----
//
// These benchmarks drive the STM runtimes' Go API under concurrent load —
// read-heavy, write-heavy, and mixed transaction mixes at 1, 2, 4, and
// GOMAXPROCS goroutines — measuring how open-for-read/write, commit, and
// descriptor churn scale with thread count (the property the paper's
// Section 7 evaluation hinges on). The same sweep is available as
// formatted tables or JSON via `stmbench -fig par [-json]`.

func parallelGoroutineCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	return counts
}

func benchParallelTxns(b *testing.B, workload string, readPct int, validation string) {
	for _, g := range parallelGoroutineCounts() {
		b.Run(fmt.Sprintf("%dg", g), func(b *testing.B) {
			b.ReportAllocs()
			res, err := bench.RunParallel(bench.ParallelSpec{
				Workload:   workload,
				Versioning: "eager",
				Validation: validation,
				Goroutines: g,
				ReadPct:    readPct,
				Txns:       b.N,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Aborts)/float64(b.N), "aborts/op")
		})
	}
}

func BenchmarkParallelReadHeavy(b *testing.B)  { benchParallelTxns(b, "read-heavy", 90, "") }
func BenchmarkParallelMixed(b *testing.B)      { benchParallelTxns(b, "mixed", 50, "") }
func BenchmarkParallelWriteHeavy(b *testing.B) { benchParallelTxns(b, "write-heavy", 10, "") }

// BenchmarkParallelReadHeavyWalk re-runs the read-heavy sweep with the
// commit clock disabled — every commit validates by walking its read set.
// The gap to BenchmarkParallelReadHeavy is the TL2 fast path's gain.
func BenchmarkParallelReadHeavyWalk(b *testing.B) {
	benchParallelTxns(b, "read-heavy", 90, "walk")
}

// ---- STAMP-shape workload throughput ----
//
// The structured mixes from internal/workloads (vacation, kmeans, genome)
// under the same harness; `stmbench -fig stamp [-json]` runs the full
// sweep over both runtimes.

func benchStamp(b *testing.B, workload string) {
	for _, g := range parallelGoroutineCounts() {
		b.Run(fmt.Sprintf("%dg", g), func(b *testing.B) {
			b.ReportAllocs()
			res, err := bench.RunStamp(bench.StampSpec{
				Workload:   workload,
				Versioning: "eager",
				Goroutines: g,
				Txns:       b.N,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Aborts)/float64(b.N), "aborts/op")
		})
	}
}

func BenchmarkStampVacation(b *testing.B) { benchStamp(b, "vacation") }
func BenchmarkStampKmeans(b *testing.B)   { benchStamp(b, "kmeans") }
func BenchmarkStampGenome(b *testing.B)   { benchStamp(b, "genome") }

// BenchmarkInterpreterDispatch calibrates the substrate: how many IR
// instructions per second the VM interprets (context for the damped
// wall-clock overheads relative to the paper's native JIT).
func BenchmarkInterpreterDispatch(b *testing.B) {
	w, err := workloads.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	prog, _, err := w.Compile(opt.O0NoOpts, 1)
	if err != nil {
		b.Fatal(err)
	}
	var instrs atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, err := workloads.Run(prog, vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Args: w.CheckArgs})
		if err != nil {
			b.Fatal(err)
		}
		instrs.Add(m.Executed.Load())
	}
	b.ReportMetric(float64(instrs.Load())/b.Elapsed().Seconds(), "instrs/s")
}
