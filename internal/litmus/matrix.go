package litmus

import (
	"fmt"
	"strings"
)

// Result pairs a Program with its observations per mode.
type Result struct {
	Program  Program
	Observed map[Mode]bool
}

// RunAll executes every program in the suite under each of the given modes
// and returns the observation matrix.
func RunAll(modes []Mode) []Result {
	var results []Result
	for _, p := range Programs() {
		obs := make(map[Mode]bool, len(modes))
		for _, m := range modes {
			obs[m] = p.Observed(m)
		}
		results = append(results, Result{Program: p, Observed: obs})
	}
	return results
}

// Matches reports whether every observation equals the paper's Figure 6
// expectation, returning the first mismatch description otherwise.
func Matches(results []Result, modes []Mode) (bool, string) {
	for _, r := range results {
		for _, m := range modes {
			if r.Observed[m] != r.Program.Expected[m] {
				return false, fmt.Sprintf("%s under %v: observed=%v expected=%v",
					r.Program.ID, m, r.Observed[m], r.Program.Expected[m])
			}
		}
	}
	return true, ""
}

// FormatMatrix renders the Figure 6 table: one row per anomaly, one column
// per mode, "yes"/"no" per cell, with the paper's row grouping.
func FormatMatrix(results []Result, modes []Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %-7s %-8s", "Non-Txn/Txn", "Anomaly", "Figure")
	for _, m := range modes {
		fmt.Fprintf(&b, " %-11s", m)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 27+12*len(modes)))
	b.WriteByte('\n')
	lastRow := ""
	for _, r := range results {
		row := r.Program.Row
		if row == lastRow {
			row = ""
		} else {
			lastRow = row
		}
		fmt.Fprintf(&b, "%-11s %-7s %-8s", row, r.Program.ID, r.Program.Figure)
		for _, m := range modes {
			v := "no"
			if r.Observed[m] {
				v = "yes"
			}
			fmt.Fprintf(&b, " %-11s", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
