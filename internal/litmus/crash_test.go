package litmus

// Crash-recovery litmus programs: a transaction's thread dies (faultinject
// Orphan) at each of the five commit-protocol points on every registered
// runtime, and the suite asserts the recovery contract — every txrec
// returns to Shared,
// the bank's total balance is conserved (the orphan's transfer either fully
// commits or fully rolls back), and transactions blocked on the orphan's
// records make progress within a bounded wait.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/recovery"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

const (
	crashAccts   = 8
	crashInitBal = 1000
)

// crashRig is one runtime under crash testing plus the concrete-type hooks
// (fault injector, recovery target) the stmapi surface doesn't carry.
type crashRig struct {
	kind   string
	accts  []*objmodel.Object
	rt     stmapi.Runtime
	inject func(*faultinject.Injector)
	target recovery.Target
}

func newCrashRig(t *testing.T, kind string) *crashRig {
	t.Helper()
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Acct",
		Fields: []objmodel.Field{{Name: "bal"}},
	})
	rig := &crashRig{kind: kind}
	// Build by name through the registry, then recover the crash surfaces
	// via the capability interfaces every adapter exports.
	api, err := stmapi.New(kind, h, stmapi.CommonConfig{})
	if err != nil {
		t.Fatalf("build runtime: %v", err)
	}
	inj, ok := api.(interface{ SetInjector(*faultinject.Injector) })
	if !ok {
		t.Fatalf("runtime %q does not support fault injection", kind)
	}
	rec, ok := api.(interface{ Recovery() recovery.Target })
	if !ok {
		t.Fatalf("runtime %q does not expose a recovery target", kind)
	}
	rig.rt = api
	rig.inject = inj.SetInjector
	rig.target = rec.Recovery()
	for i := 0; i < crashAccts; i++ {
		o := h.New(cls)
		o.StoreSlot(0, crashInitBal)
		rig.accts = append(rig.accts, o)
	}
	return rig
}

// transfer moves amt from account i to account j transactionally.
func (rig *crashRig) transfer(i, j int, amt uint64) error {
	return rig.rt.Atomic(func(tx stmapi.Txn) error {
		from, to := rig.accts[i], rig.accts[j]
		tx.Write(from, 0, tx.Read(from, 0)-amt)
		tx.Write(to, 0, tx.Read(to, 0)+amt)
		return nil
	})
}

// checkInvariants asserts every account record is back to Shared and the
// total balance is conserved (each transfer is sum-preserving whether it
// committed or rolled back, so any other total means a partial effect).
func (rig *crashRig) checkInvariants(t *testing.T) {
	t.Helper()
	var total uint64
	for i, o := range rig.accts {
		if w := o.Rec.Load(); !txrec.IsShared(w) {
			t.Errorf("%s: account %d record not Shared after recovery: %#x", rig.kind, i, w)
		}
		total += o.LoadSlot(0)
	}
	if want := uint64(crashAccts * crashInitBal); total != want {
		t.Errorf("%s: total balance = %d, want %d (conservation violated)", rig.kind, total, want)
	}
}

// orphanAtomic runs body in its own goroutine and swallows the OrphanError
// the injected death raises, returning once the goroutine has unwound.
func orphanAtomic(t *testing.T, rt stmapi.Runtime, body func(tx stmapi.Txn) error) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		defer func() {
			r := recover()
			if r == nil {
				done <- errors.New("transaction completed: no orphan fired")
				return
			}
			if _, ok := r.(faultinject.OrphanError); !ok {
				panic(r)
			}
			done <- nil
		}()
		done <- rt.Atomic(body)
	}()
	if err := <-done; err != nil {
		t.Fatalf("orphan goroutine: %v", err)
	}
}

var crashPoints = []faultinject.Point{
	faultinject.PreAcquire,
	faultinject.PostAcquire,
	faultinject.PreValidate,
	faultinject.PostCommitPoint,
	faultinject.PreRelease,
}

// orphanRules builds the injection rules that orphan a transaction at p.
// The eager runtime's PreRelease point fires on the abort path, so reaching
// it needs an injected abort first; everywhere else a single rule suffices.
func orphanRules(kind string, p faultinject.Point) []faultinject.Rule {
	rules := []faultinject.Rule{{Point: p, Action: faultinject.Orphan, Every: 1}}
	if kind == "eager" && p == faultinject.PreRelease {
		rules = append(rules, faultinject.Rule{Point: faultinject.PreValidate, Action: faultinject.Abort, Every: 1})
	}
	return rules
}

// TestOrphanReclaimedAtEveryPoint kills the owner at each of the five
// commit-protocol points on every registered runtime and checks the full
// recovery contract: one reap, records Shared, balances conserved, and a
// subsequent writer over the same accounts commits promptly.
func TestOrphanReclaimedAtEveryPoint(t *testing.T) {
	for _, kind := range stmapi.Runtimes() {
		for _, p := range crashPoints {
			p := p
			t.Run(kind+"/"+p.String(), func(t *testing.T) {
				rig := newCrashRig(t, kind)
				rig.inject(faultinject.New(1, orphanRules(kind, p)...))
				orphanAtomic(t, rig.rt, func(tx stmapi.Txn) error {
					tx.Write(rig.accts[0], 0, tx.Read(rig.accts[0], 0)-5)
					tx.Write(rig.accts[1], 0, tx.Read(rig.accts[1], 0)+5)
					return nil
				})
				rig.inject(nil)

				reaper := recovery.NewReaper(rig.target, recovery.Config{})
				if rep := reaper.ScanOnce(); rep.Reaped != 1 {
					t.Fatalf("reaped %d transactions, want 1", rep.Reaped)
				}
				rig.checkInvariants(t)
				// Waiters must be unblocked: a transfer over the same two
				// accounts has to commit without help.
				done := make(chan error, 1)
				go func() { done <- rig.transfer(0, 1, 1) }()
				select {
				case err := <-done:
					if err != nil {
						t.Fatalf("transfer after reap: %v", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("transfer blocked after reap: waiters not unblocked")
				}
				rig.checkInvariants(t)
			})
		}
	}
}

// TestWaitersUnblockUnderBackgroundReaper parks writers on an orphan's
// records before any reclaim has happened and lets a background reaper free
// them: every waiter must commit within a bounded wait.
func TestWaitersUnblockUnderBackgroundReaper(t *testing.T) {
	for _, kind := range stmapi.Runtimes() {
		t.Run(kind, func(t *testing.T) {
			rig := newCrashRig(t, kind)
			rig.inject(faultinject.New(1, orphanRules(kind, faultinject.PreValidate)...))
			orphanAtomic(t, rig.rt, func(tx stmapi.Txn) error {
				for i := range rig.accts {
					tx.Write(rig.accts[i], 0, tx.Read(rig.accts[i], 0)+1)
				}
				return nil
			})
			rig.inject(nil)

			const waiters = 4
			errs := make(chan error, waiters)
			for w := 0; w < waiters; w++ {
				w := w
				go func() {
					errs <- rig.transfer(w%crashAccts, (w+1)%crashAccts, 1)
				}()
			}
			reaper := recovery.NewReaper(rig.target, recovery.Config{Interval: time.Millisecond})
			reaper.Start()
			defer reaper.Stop()
			deadline := time.After(10 * time.Second)
			for w := 0; w < waiters; w++ {
				select {
				case err := <-errs:
					if err != nil {
						t.Fatalf("waiter: %v", err)
					}
				case <-deadline:
					t.Fatalf("%d of %d waiters still blocked on the orphan's records", waiters-w, waiters)
				}
			}
			if reaper.Steals() == 0 {
				// Inline waiter steals may have beaten the reaper; either way
				// the records must be consistent again.
				t.Log("reaper reclaimed nothing: waiters stole inline")
			}
			rig.checkInvariants(t)
		})
	}
}

// TestCrashStormConservesBalances runs opposed transfer workers with ~1%
// orphan injection at every protocol point while a background reaper runs.
// Workers whose thread "dies" stay dead; at the end every record must be
// Shared again, the total conserved, and every surviving commit durable.
func TestCrashStormConservesBalances(t *testing.T) {
	const (
		workers = 8
		iters   = 400
	)
	for _, kind := range stmapi.Runtimes() {
		t.Run(kind, func(t *testing.T) {
			rig := newCrashRig(t, kind)
			rules := make([]faultinject.Rule, 0, len(crashPoints))
			for _, p := range crashPoints {
				rules = append(rules, faultinject.Rule{Point: p, Action: faultinject.Orphan, Rate: 10}) // ~1%/point
			}
			rig.inject(faultinject.New(7, rules...))
			reaper := recovery.NewReaper(rig.target, recovery.Config{Interval: time.Millisecond})
			reaper.Start()

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(faultinject.OrphanError); !ok {
								panic(r)
							}
							// Thread death: this worker is gone for good.
						}
					}()
					for i := 0; i < iters; i++ {
						from := (w + i) % crashAccts
						to := (from + 1 + i%(crashAccts-1)) % crashAccts
						_ = rig.transfer(from, to, 1)
					}
				}()
			}
			wg.Wait()
			rig.inject(nil)
			// Drain: scan until two consecutive sweeps find nothing to reap,
			// so late deaths are reclaimed before the invariant check.
			for dry := 0; dry < 2; {
				if rep := reaper.ScanOnce(); rep.Reaped == 0 {
					dry++
				} else {
					dry = 0
				}
			}
			reaper.Stop()
			rig.checkInvariants(t)
			if reaper.Steals() == 0 {
				t.Log("no reaper steals: all orphans reclaimed inline by waiters")
			}
		})
	}
}
