package litmus

import (
	"sync"

	"repro/internal/lazystm"
	"repro/internal/mvstm"
	"repro/internal/objmodel"
)

// Program is one executable anomaly program from Section 2.
type Program struct {
	ID          string // anomaly abbreviation used in Figure 6
	Figure      string // paper figure showing the program
	Row         string // Figure 6 row: "write/read", "write/write", "read/write"
	Description string

	// Trials is how many independent runs to attempt before declaring the
	// anomaly unobservable in a mode (some anomalies depend on randomized
	// write-back order).
	Trials int

	// Expected is the Figure 6 row for this anomaly (plus the StrongLazy
	// column, which is not in the paper's table but must be anomaly-free).
	Expected map[Mode]bool

	// Run executes one trial and reports whether the anomaly was observed.
	Run func(mode Mode) bool
}

// Observed runs up to p.Trials trials of p under mode and reports whether
// any trial observed the anomaly.
func (p Program) Observed(mode Mode) bool {
	for i := 0; i < p.Trials; i++ {
		if p.Run(mode) {
			return true
		}
	}
	return false
}

func expect(eager, lazy, mv, locks, strong bool) map[Mode]bool {
	return map[Mode]bool{
		EagerWeak:  eager,
		LazyWeak:   lazy,
		MVWeak:     mv,
		Locks:      locks,
		Strong:     strong,
		StrongLazy: false, // the strong-lazy variant must also be clean
	}
}

// lazyCommitWindow reports whether the mode's runtime writes buffered slots
// back after its commit point — the window the MI programs instrument with
// commit hooks. The multi-version runtime buffers and write-backs like the
// lazy one, so it shares the window.
func lazyCommitWindow(mode Mode) bool {
	return mode == LazyWeak || mode == StrongLazy || mode == MVWeak
}

// Programs returns the full anomaly suite in Figure 6 row order.
func Programs() []Program {
	return []Program{
		{
			ID: "NR", Figure: "2a", Row: "write/read",
			Description: "non-repeatable read: two transactional reads straddle a non-transactional write",
			Trials:      3,
			// MV: yes — non-transactional writes bypass the version chains,
			// so the snapshot cannot shield the second read.
			Expected: expect(true, true, true, true, false),
			Run:      runNR,
		},
		{
			ID: "GIR", Figure: "5b", Row: "write/read",
			Description: "granular inconsistent read: a coarse write-buffer span serves a stale adjacent field",
			Trials:      3,
			// MV: no — the multi-version buffer is always slot-granular, so
			// no coarse span ever serves the adjacent field.
			Expected: expect(false, true, false, false, false),
			Run:      runGIR,
		},
		{
			ID: "ILU", Figure: "2b", Row: "write/write",
			Description: "intermediate lost update: a non-transactional write lands between a transactional read and write",
			Trials:      3,
			// MV: yes — the non-transactional write bumps neither the record
			// version nor the clock, so first-committer-wins never fires.
			Expected: expect(true, true, true, true, false),
			Run:      runILU,
		},
		{
			ID: "SLU", Figure: "3a", Row: "write/write",
			Description: "speculative lost update: rollback of an eager transaction erases a non-transactional write",
			Trials:      3,
			// MV: no — writes are buffered; an abort never touches memory.
			Expected: expect(true, false, false, false, false),
			Run:      runSLU,
		},
		{
			ID: "GLU", Figure: "5a", Row: "write/write",
			Description: "granular lost update: a coarse undo-log/write-buffer span rewrites an adjacent field",
			Trials:      3,
			// MV: no — always slot-granular; the neighbour is never written.
			Expected: expect(true, true, false, false, false),
			Run:      runGLU,
		},
		{
			ID: "MI-WW", Figure: "4b/1", Row: "write/write",
			Description: "memory inconsistency: a non-transactional write to privatized data is overwritten by a committed transaction's pending write-back",
			Trials:      3,
			// MV: yes — the multi-version runtime write-backs lazily, so the
			// privatization window of Figure 4 exists for it too.
			Expected: expect(false, true, true, false, false),
			Run:      runMIWW,
		},
		{
			ID: "IDR", Figure: "2c", Row: "read/write",
			Description: "intermediate dirty read: a non-transactional read observes a transaction's intermediate state",
			Trials:      3,
			// MV: no — buffered writes keep intermediate state out of memory.
			Expected: expect(true, false, false, true, false),
			Run:      runIDR,
		},
		{
			ID: "SDR", Figure: "3b", Row: "read/write",
			Description: "speculative dirty read: a non-transactional read observes state that a rollback later erases",
			Trials:      3,
			// MV: no — speculative state never reaches memory.
			Expected: expect(true, false, false, false, false),
			Run:      runSDR,
		},
		{
			ID: "MI-RW", Figure: "4b/1", Row: "read/write",
			Description: "memory inconsistency: non-transactional reads of privatized data race with a committed transaction's write-back",
			Trials:      3,
			// MV: yes — same lazy write-back window as MI-WW.
			Expected: expect(false, true, true, false, false),
			Run:      runMIRW,
		},
		{
			ID: "MI-OW", Figure: "4a", Row: "read/write",
			Description: "memory inconsistency, overlapped writes: unordered write-back publishes a reference before the initializing store",
			Trials:      80,
			// MV: no — mvstm writes back in heap-handle order, and the
			// element here is allocated before the object publishing it, so
			// the initializing store always lands first. (The window is not
			// closed in general: publishing through a lower-handle object
			// would reorder. The matrix records this program's outcome.)
			Expected: expect(false, true, false, false, false),
			Run:      runMIOW,
		},
		{
			ID: "WS", Figure: "-", Row: "txn/txn",
			Description: "write skew: two snapshot transactions read an invariant over two objects and write disjoint halves of it",
			Trials:      3,
			// The one row only the MV column admits: snapshot isolation has
			// no read validation, and first-committer-wins only compares
			// write sets — which are disjoint here. Every serializable regime
			// (including both weak STMs, whose commit-time validation catches
			// the stale read) forbids it.
			Expected: expect(false, false, true, false, false),
			Run:      runWS,
		},
	}
}

// ---- Figure 2a: non-repeatable reads ----

func runNR(mode Mode) bool {
	e := NewEnv(mode, EnvConfig{})
	x := e.NewCell()
	afterR1 := make(chan struct{})
	t2done := make(chan struct{})
	var once sync.Once
	var r1, r2 uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2
		defer wg.Done()
		<-afterR1
		e.NTWrite(x, SlotF, 1)
		close(t2done)
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1
		r1 = a.Read(x, SlotF)
		once.Do(func() { close(afterR1) })
		waitOrTimeout(t2done)
		r2 = a.Read(x, SlotF)
		return nil
	})
	wg.Wait()
	return r1 != r2
}

// ---- Figure 2b: intermediate lost updates ----

func runILU(mode Mode) bool {
	e := NewEnv(mode, EnvConfig{})
	x := e.NewCell()
	afterRead := make(chan struct{})
	t2done := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: x = 10
		defer wg.Done()
		<-afterRead
		e.NTWrite(x, SlotF, 10)
		close(t2done)
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1: x++
		r := a.Read(x, SlotF)
		once.Do(func() { close(afterRead) })
		waitOrTimeout(t2done)
		a.Write(x, SlotF, r+1)
		return nil
	})
	wg.Wait()
	// Serializable outcomes compose both updates: 10 (txn first) or 11
	// (write first). The lost update leaves 1.
	final := x.LoadSlot(SlotF)
	return final != 10 && final != 11
}

// ---- Figure 2c: intermediate dirty reads ----

func runIDR(mode Mode) bool {
	e := NewEnv(mode, EnvConfig{})
	x := e.NewCell() // invariant: x.f is even outside the transaction
	afterFirst := make(chan struct{})
	t2done := make(chan struct{})
	var once sync.Once
	var r uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: r = x
		defer wg.Done()
		<-afterFirst
		r = e.NTRead(x, SlotF)
		close(t2done)
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1: x++; x++
		a.Write(x, SlotF, a.Read(x, SlotF)+1)
		once.Do(func() { close(afterFirst) })
		waitOrTimeout(t2done)
		a.Write(x, SlotF, a.Read(x, SlotF)+1)
		return nil
	})
	wg.Wait()
	return r%2 == 1
}

// ---- Figure 3a: speculative lost updates ----

func runSLU(mode Mode) bool {
	e := NewEnv(mode, EnvConfig{})
	x, y := e.NewCell(), e.NewCell()
	afterWrite := make(chan struct{})
	t2done := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: x = 2; y = 1
		defer wg.Done()
		<-afterWrite
		e.NTWrite(x, SlotF, 2)
		e.NTWrite(y, SlotF, 1)
		close(t2done)
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1: atomic { if y==0 then x=1 } /*abort*/
		if a.Read(y, SlotF) == 0 {
			a.Write(x, SlotF, 1)
		}
		if a.Attempt() == 0 {
			once.Do(func() { close(afterWrite) })
			waitOrTimeout(t2done)
			a.Restart()
		}
		return nil
	})
	wg.Wait()
	return x.LoadSlot(SlotF) == 0 // Thread 2's x = 2 vanished
}

// ---- Figure 3b: speculative dirty reads ----

func runSDR(mode Mode) bool {
	e := NewEnv(mode, EnvConfig{})
	x, y := e.NewCell(), e.NewCell()
	afterWrite := make(chan struct{})
	t2done := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: if x==1 then y=1
		defer wg.Done()
		<-afterWrite
		if e.NTRead(x, SlotF) == 1 {
			e.NTWrite(y, SlotF, 1)
		}
		close(t2done)
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1: atomic { if y==0 then x=1 } /*abort*/
		if a.Read(y, SlotF) == 0 {
			a.Write(x, SlotF, 1)
		}
		if a.Attempt() == 0 {
			once.Do(func() { close(afterWrite) })
			waitOrTimeout(t2done)
			a.Restart()
		}
		return nil
	})
	wg.Wait()
	// Thread 2 acted on a speculative value that was rolled back.
	return x.LoadSlot(SlotF) == 0 && y.LoadSlot(SlotF) == 1
}

// ---- Write skew: the textbook snapshot-isolation anomaly ----
//
// Two transactions each read the two cells guarding an invariant
// (x.f + y.f <= 1) and, finding it slack, write disjoint cells. A
// serializable system orders them — the second sees the first's write and
// backs off. Snapshot isolation runs both against the same snapshot and
// first-committer-wins only compares write sets, which are disjoint, so
// both commit and the invariant breaks. The two cells MUST be distinct
// objects: mvstm detects write/write conflicts per object, so two writes
// to slots of one object would collide and serialize.

func runWS(mode Mode) bool {
	e := NewEnv(mode, EnvConfig{})
	x, y := e.NewCell(), e.NewCell()
	t1read := make(chan struct{})
	t2read := make(chan struct{})
	var once1, once2 sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: atomic { if x+y == 0 then y = 1 }
		defer wg.Done()
		_ = e.Atomic(func(a Accessor) error {
			sum := a.Read(x, SlotF) + a.Read(y, SlotF)
			once2.Do(func() { close(t2read) })
			waitOrTimeout(t1read)
			if sum == 0 {
				a.Write(y, SlotF, 1)
			}
			return nil
		})
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1: atomic { if x+y == 0 then x = 1 }
		sum := a.Read(x, SlotF) + a.Read(y, SlotF)
		once1.Do(func() { close(t1read) })
		waitOrTimeout(t2read)
		if sum == 0 {
			a.Write(x, SlotF, 1)
		}
		return nil
	})
	wg.Wait()
	return x.LoadSlot(SlotF)+y.LoadSlot(SlotF) > 1
}

// ---- Figure 5a: granular lost updates (2-slot versioning granularity) ----

func runGLU(mode Mode) bool {
	return gluTrial(mode, false) || gluTrial(mode, true)
}

// gluTrial exercises the commit path (lazy write-back rewrites the
// neighbour) or the abort path (eager rollback rewrites the neighbour).
func gluTrial(mode Mode, abortPath bool) bool {
	e := NewEnv(mode, EnvConfig{Granularity: 2})
	x := e.NewCell() // f and g share one undo/buffer span
	afterWrite := make(chan struct{})
	t2done := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: x.g = 1
		defer wg.Done()
		<-afterWrite
		e.NTWrite(x, SlotG, 1)
		close(t2done)
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1: atomic { x.f = ... }
		a.Write(x, SlotF, 5)
		if a.Attempt() == 0 {
			once.Do(func() { close(afterWrite) })
			waitOrTimeout(t2done)
			if abortPath {
				a.Restart()
			}
		}
		return nil
	})
	wg.Wait()
	return x.LoadSlot(SlotG) == 0 // Thread 2's update to the untouched field vanished
}

// ---- Figure 5b: granular inconsistent reads (2-slot granularity) ----

func runGIR(mode Mode) bool {
	e := NewEnv(mode, EnvConfig{Granularity: 2})
	x, y := e.NewCell(), e.NewCell() // y models the volatile flag
	afterWrite := make(chan struct{})
	t2done := make(chan struct{})
	var once sync.Once
	const sentinel = 111
	var r uint64 = sentinel
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: x.g = 1; y = 1
		defer wg.Done()
		<-afterWrite
		e.NTWrite(x, SlotG, 1)
		e.NTWrite(y, SlotF, 1)
		close(t2done)
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1: atomic { x.f=...; if y==1 then r=x.g }
		r = sentinel
		a.Write(x, SlotF, 5)
		once.Do(func() { close(afterWrite) })
		waitOrTimeout(t2done)
		if a.Read(y, SlotF) == 1 {
			r = a.Read(x, SlotG)
		}
		return nil
	})
	wg.Wait()
	// Thread 1 observed y == 1 but a stale x.g — ordering required by the
	// volatile flag is violated.
	return r == 0
}

// ---- Figure 4b / Figure 1: privatization, read/write flavor ----
//
// Thread 2 commits an update to a shared object; Thread 1 privatizes the
// object transactionally and then reads it without barriers. In a lazy STM,
// Thread 2's write-back may still be pending.

type privEnv struct {
	e         *Env
	obj       *objmodel.Object // the Item: val in SlotF
	statics   *objmodel.Object // holder of the shared reference x (SlotRef)
	committed chan struct{}    // Thread 2 passed its commit point
	probed    chan struct{}    // Thread 1 finished probing the window
	t2done    chan struct{}    // Thread 2's Atomic returned (write-back done)
}

func newPrivEnv(mode Mode) *privEnv {
	p := &privEnv{
		committed: make(chan struct{}),
		probed:    make(chan struct{}),
		t2done:    make(chan struct{}),
	}
	// The hooks are runtime-wide, so Thread 1's privatizing commit fires
	// them too; only the first committer — Thread 2, whose window the
	// program probes — may hold, or the privatizer deadlocks against the
	// probe that runs after it.
	var cfg EnvConfig
	wait := windowWait(mode)
	switch mode {
	case LazyWeak, StrongLazy:
		var once sync.Once
		cfg.LazyHooks = lazystm.Hooks{
			OnAfterCommitPoint: func(tx *lazystm.Txn) {
				holder := false
				once.Do(func() { close(p.committed); holder = true })
				if holder {
					wait(p.probed)
				}
			},
		}
	case MVWeak:
		var once sync.Once
		cfg.MVHooks = mvstm.Hooks{
			OnAfterCommitPoint: func(tx *mvstm.Txn) {
				holder := false
				once.Do(func() { close(p.committed); holder = true })
				if holder {
					wait(p.probed)
				}
			},
		}
	}
	p.e = NewEnv(mode, cfg)
	p.obj = p.e.NewCell()
	p.obj.StoreSlot(SlotF, 1)
	p.statics = p.e.NewCell()
	//stmvet:ignore privatization -- litmus setup before any transaction starts
	p.statics.StoreSlot(SlotRef, uint64(p.obj.Ref()))
	go func() { // Thread 2: atomic { if x != null then x.val++ }
		_ = p.e.Atomic(func(a Accessor) error {
			r := a.Read(p.statics, SlotRef)
			if r != 0 {
				o := p.e.Heap.Get(objmodel.Ref(r))
				a.Write(o, SlotF, a.Read(o, SlotF)+1)
			}
			return nil
		})
		if !lazyCommitWindow(mode) {
			close(p.committed) // no commit window to instrument
		}
		close(p.t2done)
	}()
	return p
}

// privatize runs Thread 1's transaction: r1 = x; x = null.
func (p *privEnv) privatize() *objmodel.Object {
	var ref objmodel.Ref
	_ = p.e.Atomic(func(a Accessor) error {
		ref = objmodel.Ref(a.Read(p.statics, SlotRef))
		a.Write(p.statics, SlotRef, 0)
		return nil
	})
	return p.e.Heap.Get(ref)
}

func runMIRW(mode Mode) bool {
	p := newPrivEnv(mode)
	<-p.committed
	r1 := p.privatize()
	r2 := p.e.NTRead(r1, SlotF) // inside the write-back window, if any
	close(p.probed)
	<-p.t2done
	r3 := p.e.NTRead(r1, SlotF) // after write-back completes
	return r2 != r3
}

func runMIWW(mode Mode) bool {
	p := newPrivEnv(mode)
	<-p.committed
	r1 := p.privatize()
	p.e.NTWrite(r1, SlotF, 0) // inside the write-back window, if any
	close(p.probed)
	<-p.t2done
	// The paper's question: can r1.val != 0 after the owner wrote 0?
	return p.e.NTRead(r1, SlotF) != 0
}

// ---- Figure 4a: overlapped writes ----
//
// A transaction initializes el.val and publishes el through a volatile
// reference x. Lazy write-back applies the two stores in no particular
// order, so a reader may see the reference before the initialization.

func runMIOW(mode Mode) bool {
	firstWB := make(chan struct{})
	probed := make(chan struct{})
	var cfg EnvConfig
	wait := windowWait(mode)
	switch mode {
	case LazyWeak, StrongLazy:
		var once sync.Once
		cfg.LazyHooks = lazystm.Hooks{
			OnAfterWriteback: func(tx *lazystm.Txn, k int) {
				if k == 0 {
					once.Do(func() { close(firstWB) })
					wait(probed)
				}
			},
		}
	case MVWeak:
		var once sync.Once
		cfg.MVHooks = mvstm.Hooks{
			OnAfterWriteback: func(tx *mvstm.Txn, k int) {
				if k == 0 {
					once.Do(func() { close(firstWB) })
					wait(probed)
				}
			},
		}
	}
	e := NewEnv(mode, cfg)
	el := e.NewCell()
	statics := e.NewCell() // x lives in statics.SlotRef, initially null

	const sentinel = 99
	var r uint64 = sentinel
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: if x != null then r = x.val
		defer wg.Done()
		<-firstWB
		rx := e.NTRead(statics, SlotRef)
		if rx != 0 {
			r = e.NTRead(e.Heap.Get(objmodel.Ref(rx)), SlotF)
		}
		close(probed)
	}()
	_ = e.Atomic(func(a Accessor) error { // Thread 1: atomic { el.val = 1; x = el }
		a.Write(el, SlotF, 1)
		a.Write(statics, SlotRef, uint64(el.Ref()))
		return nil
	})
	if !lazyCommitWindow(mode) {
		close(firstWB) // no write-back window to instrument
	}
	wg.Wait()
	return r == 0 // saw the published reference but not the initialization
}
