package litmus

// Adaptive-granularity litmus: the Section 2.4 granularity anomalies (GLU,
// GIR) are a property of span-level version management. Promoting the
// contended object to slot-level records — the runtime hotspot response
// added with the commit clock — must make them vanish without changing the
// configured granularity for everything else. These trials drive the
// concrete runtimes directly (the Env wrapper exposes only the uniform
// stmapi surface, and promotion is a concrete-runtime API).

import (
	"sync"
	"testing"

	"repro/internal/lazystm"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/stmapi"
)

func promoCells(h *objmodel.Heap, n int) []*objmodel.Object {
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "PromoCell",
		Fields: []objmodel.Field{{Name: "f"}, {Name: "g"}},
	})
	objs := make([]*objmodel.Object, n)
	for i := range objs {
		objs[i] = h.New(cls)
	}
	return objs
}

// TestGLUVanishesAfterPromotion: Figure 5a's granular lost update on the
// eager runtime's abort path. At 2-slot granularity the transactional
// rollback of x.f rewrites x.g from the stale undo span, losing Thread 2's
// non-transactional update; with x promoted to slot granularity the update
// survives.
func TestGLUVanishesAfterPromotion(t *testing.T) {
	trial := func(promote bool) bool {
		h := objmodel.NewHeap()
		rt := stm.New(h, stm.Config{CommonConfig: stmapi.CommonConfig{Granularity: 2}})
		x := promoCells(h, 1)[0]
		if promote {
			rt.PromoteObject(x)
		}
		afterWrite := make(chan struct{})
		t2done := make(chan struct{})
		var once sync.Once
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // Thread 2: x.g = 1
			defer wg.Done()
			<-afterWrite
			x.StoreSlot(SlotG, 1)
			close(t2done)
		}()
		_ = rt.Atomic(nil, func(tx *stm.Txn) error { // Thread 1: atomic { x.f = 5 } aborting once
			tx.Write(x, SlotF, 5)
			if tx.Attempt() == 0 {
				once.Do(func() { close(afterWrite) })
				waitOrTimeout(t2done)
				tx.Restart()
			}
			return nil
		})
		wg.Wait()
		return x.LoadSlot(SlotG) == 0 // anomaly: Thread 2's update vanished
	}
	if !trial(false) {
		t.Error("GLU anomaly not observed at span granularity")
	}
	if trial(true) {
		t.Error("GLU anomaly survived promotion to slot granularity")
	}
}

// TestGIRVanishesAfterPromotion: Figure 5b's granular inconsistent read on
// the lazy runtime. At 2-slot granularity Thread 1's write to x.f buffers a
// span snapshot including x.g, so after observing the y flag it reads the
// stale buffered x.g; with x promoted the buffer covers only x.f and the
// read sees Thread 2's update.
func TestGIRVanishesAfterPromotion(t *testing.T) {
	trial := func(promote bool) bool {
		h := objmodel.NewHeap()
		rt := lazystm.New(h, lazystm.Config{CommonConfig: stmapi.CommonConfig{Granularity: 2}})
		cells := promoCells(h, 2)
		x, y := cells[0], cells[1]
		if promote {
			rt.PromoteObject(x)
		}
		afterWrite := make(chan struct{})
		t2done := make(chan struct{})
		var once sync.Once
		const sentinel = 111
		var r uint64 = sentinel
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // Thread 2: x.g = 1; y = 1
			defer wg.Done()
			<-afterWrite
			x.StoreSlot(SlotG, 1)
			y.StoreSlot(SlotF, 1)
			close(t2done)
		}()
		_ = rt.Atomic(nil, func(tx *lazystm.Txn) error { // Thread 1: atomic { x.f=5; if y==1 then r=x.g }
			r = sentinel
			tx.Write(x, SlotF, 5)
			once.Do(func() { close(afterWrite) })
			waitOrTimeout(t2done)
			if tx.Read(y, SlotF) == 1 {
				r = tx.Read(x, SlotG)
			}
			return nil
		})
		wg.Wait()
		return r == 0 // anomaly: saw the flag but a stale x.g
	}
	if !trial(false) {
		t.Error("GIR anomaly not observed at span granularity")
	}
	if trial(true) {
		t.Error("GIR anomaly survived promotion to slot granularity")
	}
}
