// Package litmus contains executable versions of the weak-atomicity anomaly
// programs of Section 2 of the paper (Figures 1–5) and reproduces the
// Figure 6 matrix: for each anomaly and each execution regime — eager
// versioning, lazy versioning, multi-version/snapshot isolation,
// lock-based critical sections, and the paper's strongly-atomic system —
// whether the anomaly can be observed.
//
// Each program orchestrates the paper's interleaving with channel handoffs.
// Handoffs that a strongly-atomic regime intentionally blocks (a barrier
// waiting on a transaction's record) use a bounded wait, so every program
// terminates in every regime: if the partner thread cannot make progress
// inside the window, the window simply closes and the anomaly is not
// observed — which is exactly the strong-atomicity guarantee under test.
package litmus

import (
	"context"
	"sync"
	"time"

	"repro/internal/conflict"
	"repro/internal/lazystm"
	"repro/internal/mvstm"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/stmapi"
	"repro/internal/strong"
)

// Mode is an execution regime from the Figure 6 columns.
type Mode int

// The Figure 6 columns. Strong is the paper's system: eager versioning plus
// non-transactional isolation barriers. StrongLazy is the Section 3.3
// variant: lazy versioning, field-granular buffering, ordering read
// barriers and full write barriers; it is not a Figure 6 column but must
// also exhibit no anomalies. MVWeak is the multi-version/snapshot-isolation
// runtime (internal/mvstm) run weakly atomic: also not a paper column, but
// it extends the matrix with the SI regime — write skew is admitted, while
// the eager- and lazy-only anomalies close because readers never observe
// speculative or partially-written state.
const (
	EagerWeak Mode = iota
	LazyWeak
	Locks
	Strong
	StrongLazy
	MVWeak
)

// AllModes lists the regimes in Figure 6 column order (the MV/SI column
// after lazy), then Strong variants last.
var AllModes = []Mode{EagerWeak, LazyWeak, MVWeak, Locks, Strong, StrongLazy}

func (m Mode) String() string {
	switch m {
	case EagerWeak:
		return "eager"
	case LazyWeak:
		return "lazy"
	case Locks:
		return "locks"
	case Strong:
		return "strong"
	case StrongLazy:
		return "strong-lazy"
	case MVWeak:
		return "mvstm"
	default:
		return "?"
	}
}

// handoffTimeout bounds waits that a strongly-atomic regime may block.
const handoffTimeout = 2 * time.Millisecond

// waitOrTimeout waits for ch or the bounded handoff window.
func waitOrTimeout(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	case <-time.After(handoffTimeout):
		return false
	}
}

// windowWait picks how a runtime hook should block while keeping a
// commit-point or write-back window open for a probing thread. In the weak
// modes the probe's plain accesses never block, so the probe always arrives
// and the wait can be generous — only a liveness backstop, and necessarily
// far above the handoff window because under -race on a loaded machine the
// prober can take much longer than that to run its transactions (a premature
// release lets write-back race ahead of the probe: a flaky "anomaly not
// observed"). In the strong modes the probe's NT barriers block on the very
// records the paused committer still owns, so the tight handoff timeout is
// what breaks that circular wait — those modes must keep it.
func windowWait(mode Mode) func(<-chan struct{}) {
	switch mode {
	case Strong, StrongLazy:
		return func(ch <-chan struct{}) { waitOrTimeout(ch) }
	default:
		return func(ch <-chan struct{}) {
			select {
			case <-ch:
			case <-time.After(100 * handoffTimeout):
			}
		}
	}
}

// Env is one fresh execution environment: a heap plus the runtime matching
// the mode. Every litmus trial builds a new Env so trials are independent.
type Env struct {
	Mode Mode
	Heap *objmodel.Heap

	rt   stmapi.Runtime // the STM driving the transactional regimes; nil under Locks
	bar  *strong.Barriers
	lock sync.Mutex // Locks mode: the single lock of the original programs

	cell *objmodel.Class
}

// PolicyEnvVar names the environment variable consulted (when
// EnvConfig.Policy is empty) for the contention policy litmus environments
// run under, so CI can sweep the whole suite per policy without plumbing a
// flag through every test.
const PolicyEnvVar = conflict.PolicyEnv

// EnvConfig selects variation points for an Env.
type EnvConfig struct {
	// Granularity is the undo-log / write-buffer granularity in slots.
	// The Strong and StrongLazy regimes note: Strong keeps the requested
	// granularity (object-level records hide it); StrongLazy forces 1,
	// because a lazy-versioning STM must buffer at the granularity of the
	// individual fields updated in a transaction to be strongly atomic
	// (Section 2.4).
	Granularity int

	// Policy names the contention policy (conflict.ByName); empty consults
	// PolicyEnvVar and falls back to the default backoff.
	Policy string

	// LazyHooks instrument the lazy commit window (MI programs).
	LazyHooks lazystm.Hooks

	// MVHooks instrument the mvstm commit window (the MV runtime also
	// write-backs lazily, so the MI programs apply to it too).
	MVHooks mvstm.Hooks
}

// NewEnv builds an environment for the given regime.
func NewEnv(mode Mode, cfg EnvConfig) *Env {
	if cfg.Granularity == 0 {
		cfg.Granularity = 1
	}
	pol, err := conflict.ByNameOrEnv(cfg.Policy)
	if err != nil {
		panic("litmus: " + err.Error())
	}
	common := stmapi.CommonConfig{Granularity: cfg.Granularity, Handler: pol}
	h := objmodel.NewHeap()
	e := &Env{Mode: mode, Heap: h}
	e.cell = h.MustDefineClass(objmodel.ClassSpec{
		Name: "Cell",
		Fields: []objmodel.Field{
			{Name: "f"}, {Name: "g"}, {Name: "h"},
			{Name: "ref", IsRef: true},
		},
	})
	switch mode {
	case EagerWeak, Locks:
		e.rt = stm.New(h, stm.Config{CommonConfig: common}).API()
	case Strong:
		e.rt = stm.New(h, stm.Config{CommonConfig: common}).API()
		e.bar = strong.New(h, false)
	case LazyWeak:
		e.rt = lazystm.New(h, lazystm.Config{CommonConfig: common, Hooks: cfg.LazyHooks}).API()
	case StrongLazy:
		common.Granularity = 1
		e.rt = lazystm.New(h, lazystm.Config{CommonConfig: common, Hooks: cfg.LazyHooks}).API()
		e.bar = strong.New(h, false)
	case MVWeak:
		e.rt = mvstm.New(h, mvstm.Config{CommonConfig: common, Hooks: cfg.MVHooks}).API()
	}
	return e
}

// Runtime exposes the environment's STM through the runtime-agnostic API
// (nil under Locks), for tests that drive it directly.
func (e *Env) Runtime() stmapi.Runtime { return e.rt }

// NewCell allocates a fresh 4-slot object (f, g, h scalar; ref reference).
func (e *Env) NewCell() *objmodel.Object { return e.Heap.New(e.cell) }

// Slot indexes in the Cell class.
const (
	SlotF = iota
	SlotG
	SlotH
	SlotRef
)

// Accessor is the uniform transactional access interface the litmus bodies
// are written against.
type Accessor interface {
	Read(o *objmodel.Object, slot int) uint64
	Write(o *objmodel.Object, slot int, v uint64)
	// Attempt is the 0-based execution attempt of the atomic body.
	Attempt() int
	// Restart re-executes the body: a rollback-and-retry under either STM,
	// and a plain re-execution (no rollback — locks cannot undo) under
	// Locks, which is how a lock programmer would express a retry loop.
	Restart()
}

// stmAccessor adapts either runtime's transaction to Accessor through the
// stmapi.Txn interface — one implementation where the eager/lazy split used
// to require two.
type stmAccessor struct {
	tx stmapi.Txn
}

func (a *stmAccessor) Read(o *objmodel.Object, slot int) uint64     { return a.tx.Read(o, slot) }
func (a *stmAccessor) Write(o *objmodel.Object, slot int, v uint64) { a.tx.Write(o, slot, v) }
func (a *stmAccessor) Attempt() int                                 { return a.tx.Attempt() }
func (a *stmAccessor) Restart()                                     { a.tx.Restart() }

type locksRestart struct{}

type locksAccessor struct {
	attempt int
}

func (a *locksAccessor) Read(o *objmodel.Object, slot int) uint64     { return o.LoadSlot(slot) }
func (a *locksAccessor) Write(o *objmodel.Object, slot int, v uint64) { o.StoreSlot(slot, v) }
func (a *locksAccessor) Attempt() int                                 { return a.attempt }
func (a *locksAccessor) Restart()                                     { panic(locksRestart{}) }

// Atomic runs body as an atomic block in the environment's regime.
func (e *Env) Atomic(body func(a Accessor) error) error {
	return e.AtomicCtx(nil, body)
}

// AtomicCtx is Atomic under a cancellation context (nil behaves like
// Atomic). The Locks regime has no cancellation points and ignores ctx once
// the lock is held.
func (e *Env) AtomicCtx(ctx context.Context, body func(a Accessor) error) error {
	switch e.Mode {
	case EagerWeak, Strong, LazyWeak, StrongLazy, MVWeak:
		if ctx == nil {
			return e.rt.Atomic(func(tx stmapi.Txn) error {
				return body(&stmAccessor{tx})
			})
		}
		return e.rt.AtomicCtx(ctx, func(tx stmapi.Txn) error {
			return body(&stmAccessor{tx})
		})
	case Locks:
		e.lock.Lock()
		defer e.lock.Unlock()
		for attempt := 0; ; attempt++ {
			err, restarted := runLocksBody(body, attempt)
			if !restarted {
				return err
			}
		}
	}
	panic("litmus: unknown mode")
}

func runLocksBody(body func(a Accessor) error, attempt int) (err error, restarted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(locksRestart); ok {
				restarted = true
				return
			}
			panic(r)
		}
	}()
	return body(&locksAccessor{attempt: attempt}), false
}

// NTRead performs a non-transactional read in the environment's regime:
// direct under the weak and lock regimes, through the isolation barrier of
// Figure 9a under Strong, and through the Section 3.3 ordering barrier
// under StrongLazy.
func (e *Env) NTRead(o *objmodel.Object, slot int) uint64 {
	switch e.Mode {
	case Strong:
		return e.bar.Read(o, slot)
	case StrongLazy:
		return e.bar.ReadOrdering(o, slot)
	default:
		return o.LoadSlot(slot)
	}
}

// NTWrite performs a non-transactional write: direct under the weak and
// lock regimes, through the Figure 9b write barrier under both strong
// regimes.
func (e *Env) NTWrite(o *objmodel.Object, slot int, v uint64) {
	switch e.Mode {
	case Strong, StrongLazy:
		e.bar.Write(o, slot, v)
	default:
		o.StoreSlot(slot, v)
	}
}
