package litmus

import (
	"fmt"
	"testing"
)

// TestFigure6Matrix reproduces the paper's Figure 6: each anomaly must be
// observable exactly in the regimes the paper says it is.
func TestFigure6Matrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow in -short mode")
	}
	results := RunAll(AllModes)
	ok, mismatch := Matches(results, AllModes)
	if !ok {
		t.Errorf("matrix mismatch: %s\n%s", mismatch, FormatMatrix(results, AllModes))
	}
}

// Per-anomaly subtests give precise failure attribution and run in
// parallel.
func TestAnomalies(t *testing.T) {
	for _, p := range Programs() {
		t.Run(p.ID, func(t *testing.T) {
			p := p
			t.Parallel()
			for _, m := range AllModes {
				got := p.Observed(m)
				if got != p.Expected[m] {
					t.Errorf("%s (Figure %s) under %v: observed=%v, paper says %v",
						p.ID, p.Figure, m, got, p.Expected[m])
				}
			}
		})
	}
}

// TestStrongNeverObservesAnything is the paper's core claim in one loop:
// the Strong column of Figure 6 is all "no". Run with extra trials.
func TestStrongNeverObservesAnything(t *testing.T) {
	for _, p := range Programs() {
		trials := p.Trials
		if trials < 10 {
			trials = 10
		}
		for i := 0; i < trials; i++ {
			if p.Run(Strong) {
				t.Errorf("%s observed under strong atomicity (trial %d)", p.ID, i)
				break
			}
		}
	}
}

func TestFormatMatrix(t *testing.T) {
	results := []Result{{
		Program:  Programs()[0],
		Observed: map[Mode]bool{EagerWeak: true, Strong: false},
	}}
	out := FormatMatrix(results, []Mode{EagerWeak, Strong})
	if len(out) == 0 {
		t.Fatal("empty matrix output")
	}
	for _, want := range []string{"NR", "yes", "no", "eager", "strong"} {
		if !contains(out, want) {
			t.Errorf("matrix output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func ExampleFormatMatrix() {
	p := Programs()
	fmt.Println(p[0].ID, p[0].Figure)
	// Output: NR 2a
}
