// Package analysis implements the paper's whole-program analyses
// (Section 5): an Andersen-style, field-sensitive, flow-insensitive
// points-to analysis with the paper's novel two-element context
// ("in transaction" / "not in transaction") and heap specialization
// (abstract objects keyed by allocation site × context); the
// not-accessed-in-transaction (NAIT) barrier-removal client (Figure 12);
// and the comparison thread-local (TL) analysis of Section 5.4.
package analysis

import (
	"repro/internal/lang/ir"
	"repro/internal/lang/types"
)

// Ctx is the analysis context: each method is analyzed in at most two
// contexts, exactly as the paper simulates method duplication.
type Ctx uint8

// The two contexts.
const (
	NonTxn Ctx = 0
	Txn    Ctx = 1
)

// elemSlot is the pseudo-slot used for all elements of an array abstract
// object (the analysis is index-insensitive within an array).
const elemSlot = 0

// object IDs:
//
//	0 .. 2*numSites-1                  (allocation site, ctx) pairs
//	2*numSites .. 2*numSites+numClasses-1   statics holders per class
type objID = int

type methodCtx struct {
	m   *ir.Method
	ctx Ctx
}

type varKey struct {
	m   *ir.Method
	ctx Ctx
	reg int
}

type fieldKey struct {
	obj  objID
	slot int
}

type loadCons struct {
	slot int
	dst  int // node
}

type storeCons struct {
	slot int
	src  int // node
}

type virtCall struct {
	mc    methodCtx
	in    *ir.Instr
	ctx   Ctx // callee context
	spawn bool
}

// solver is the Andersen constraint solver.
type solver struct {
	prog     *ir.Program
	numSites int
	numObjs  int

	// node table
	pts       []bitset
	succ      [][]int // copy edges: node -> nodes whose pts include it
	loads     [][]loadCons
	stores    [][]storeCons
	virtuals  [][]virtCall // virtual call sites keyed on receiver node
	nodeCount int

	varNodes   map[varKey]int
	fieldNodes map[fieldKey]int
	retNodes   map[methodCtx]int

	objClass []*types.Class // class of object-typed abstract objects (nil for arrays)
	objIsArr []bool
	objSite  []int // alloc site (-1 for statics holders)
	objCtx   []Ctx

	analyzed map[methodCtx]bool
	worklist []int
	inWL     []bool

	pendingMC []methodCtx
}

func newSolver(p *ir.Program) *solver {
	s := &solver{
		prog:       p,
		numSites:   p.NumAllocSites,
		varNodes:   make(map[varKey]int),
		fieldNodes: make(map[fieldKey]int),
		retNodes:   make(map[methodCtx]int),
		analyzed:   make(map[methodCtx]bool),
	}
	s.numObjs = 2*s.numSites + len(p.Types.Classes)
	s.objClass = make([]*types.Class, s.numObjs)
	s.objIsArr = make([]bool, s.numObjs)
	s.objSite = make([]int, s.numObjs)
	s.objCtx = make([]Ctx, s.numObjs)
	for i := range s.objSite {
		s.objSite[i] = -1
	}
	return s
}

func (s *solver) siteObj(site int, ctx Ctx) objID { return site*2 + int(ctx) }

func (s *solver) staticsObj(cl *types.Class) objID { return 2*s.numSites + cl.ID }

func (s *solver) newNode() int {
	id := s.nodeCount
	s.nodeCount++
	s.pts = append(s.pts, newBitset(s.numObjs))
	s.succ = append(s.succ, nil)
	s.loads = append(s.loads, nil)
	s.stores = append(s.stores, nil)
	s.virtuals = append(s.virtuals, nil)
	s.inWL = append(s.inWL, false)
	return id
}

func (s *solver) varNode(m *ir.Method, ctx Ctx, reg int) int {
	k := varKey{m, ctx, reg}
	if n, ok := s.varNodes[k]; ok {
		return n
	}
	n := s.newNode()
	s.varNodes[k] = n
	return n
}

func (s *solver) fieldNode(o objID, slot int) int {
	k := fieldKey{o, slot}
	if n, ok := s.fieldNodes[k]; ok {
		return n
	}
	n := s.newNode()
	s.fieldNodes[k] = n
	return n
}

func (s *solver) retNode(mc methodCtx) int {
	if n, ok := s.retNodes[mc]; ok {
		return n
	}
	n := s.newNode()
	s.retNodes[mc] = n
	return n
}

func (s *solver) push(n int) {
	if !s.inWL[n] {
		s.inWL[n] = true
		s.worklist = append(s.worklist, n)
	}
}

func (s *solver) addObj(n int, o objID) {
	if s.pts[n].set(o) {
		s.push(n)
	}
}

// addCopy adds pts(dst) ⊇ pts(src).
func (s *solver) addCopy(src, dst int) {
	s.succ[src] = append(s.succ[src], dst)
	if s.pts[dst].unionWith(s.pts[src]) {
		s.push(dst)
	}
}

func (s *solver) addLoad(base int, slot int, dst int) {
	s.loads[base] = append(s.loads[base], loadCons{slot, dst})
	s.pts[base].forEach(func(o objID) {
		s.addCopy(s.fieldNode(o, s.normSlot(o, slot)), dst)
	})
}

func (s *solver) addStore(base int, slot int, src int) {
	s.stores[base] = append(s.stores[base], storeCons{slot, src})
	s.pts[base].forEach(func(o objID) {
		s.addCopy(src, s.fieldNode(o, s.normSlot(o, slot)))
	})
}

// normSlot maps array element accesses to the shared element pseudo-slot.
func (s *solver) normSlot(o objID, slot int) int {
	if s.objIsArr[o] {
		return elemSlot
	}
	return slot
}

// solve runs the worklist to fixpoint, discovering methods on the fly.
func (s *solver) solve() {
	for {
		// Drain newly-reachable method×context pairs.
		for len(s.pendingMC) > 0 {
			mc := s.pendingMC[len(s.pendingMC)-1]
			s.pendingMC = s.pendingMC[:len(s.pendingMC)-1]
			s.analyzeMethod(mc)
		}
		if len(s.worklist) == 0 {
			return
		}
		n := s.worklist[len(s.worklist)-1]
		s.worklist = s.worklist[:len(s.worklist)-1]
		s.inWL[n] = false
		delta := s.pts[n]
		// Propagate along copy edges.
		for _, d := range s.succ[n] {
			if s.pts[d].unionWith(delta) {
				s.push(d)
			}
		}
		// Expand field constraints for every object now in pts(n).
		for _, lc := range s.loads[n] {
			delta.forEach(func(o objID) {
				s.addCopy(s.fieldNode(o, s.normSlot(o, lc.slot)), lc.dst)
			})
		}
		for _, sc := range s.stores[n] {
			delta.forEach(func(o objID) {
				s.addCopy(sc.src, s.fieldNode(o, s.normSlot(o, sc.slot)))
			})
		}
		// Resolve virtual calls for newly-seen receiver classes.
		for _, vc := range s.virtuals[n] {
			delta.forEach(func(o objID) {
				s.resolveVirtual(vc, o)
			})
		}
	}
}

func (s *solver) reach(mc methodCtx) {
	if !s.analyzed[mc] {
		s.analyzed[mc] = true
		s.pendingMC = append(s.pendingMC, mc)
	}
}

// calleeCtx computes the callee's context: calls lexically inside atomic
// always run in transaction; others inherit the caller's context.
func calleeCtx(callerCtx Ctx, in *ir.Instr) Ctx {
	if callerCtx == Txn || in.Atomic {
		return Txn
	}
	return NonTxn
}

func (s *solver) bindCall(caller methodCtx, in *ir.Instr, callee *ir.Method, ctx Ctx) {
	cmc := methodCtx{callee, ctx}
	s.reach(cmc)
	for i, a := range in.Args {
		if i >= callee.NumParams {
			break
		}
		if callee.RegKinds[i] == ir.RRef {
			s.addCopy(s.varNode(caller.m, caller.ctx, a), s.varNode(callee, ctx, i))
		}
	}
	if in.Dst >= 0 && in.Op != ir.Spawn {
		if k := caller.m.RegKinds[in.Dst]; k == ir.RRef {
			s.addCopy(s.retNode(cmc), s.varNode(caller.m, caller.ctx, in.Dst))
		}
	}
}

func (s *solver) resolveVirtual(vc virtCall, o objID) {
	cl := s.objClass[o]
	if cl == nil || vc.in.VIndex >= len(cl.VTable) {
		return // array or incompatible object flowing in (type-confused set)
	}
	target := s.prog.MethodOf(cl.VTable[vc.in.VIndex])
	s.bindCall(methodCtx{vc.mc.m, vc.mc.ctx}, vc.in, target, vc.ctx)
}

// analyzeMethod generates constraints for one (method, context) pair.
func (s *solver) analyzeMethod(mc methodCtx) {
	m, ctx := mc.m, mc.ctx
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.NewObj:
				o := s.siteObj(in.AllocSite, effCtx(ctx, in))
				s.objClass[o] = in.Class
				s.objSite[o] = in.AllocSite
				s.objCtx[o] = effCtx(ctx, in)
				s.addObj(s.varNode(m, ctx, in.Dst), o)
			case ir.NewArray:
				o := s.siteObj(in.AllocSite, effCtx(ctx, in))
				s.objIsArr[o] = true
				s.objSite[o] = in.AllocSite
				s.objCtx[o] = effCtx(ctx, in)
				s.addObj(s.varNode(m, ctx, in.Dst), o)
			case ir.Mov:
				if m.RegKinds[in.Dst] == ir.RRef {
					s.addCopy(s.varNode(m, ctx, in.A), s.varNode(m, ctx, in.Dst))
				}
			case ir.GetField:
				if in.IsRef {
					s.addLoad(s.varNode(m, ctx, in.A), in.Slot, s.varNode(m, ctx, in.Dst))
				}
			case ir.SetField:
				if in.IsRef {
					s.addStore(s.varNode(m, ctx, in.A), in.Slot, s.varNode(m, ctx, in.B))
				}
			case ir.GetElem:
				if in.IsRef {
					s.addLoad(s.varNode(m, ctx, in.A), elemSlot, s.varNode(m, ctx, in.Dst))
				}
			case ir.SetElem:
				if in.IsRef {
					s.addStore(s.varNode(m, ctx, in.A), elemSlot, s.varNode(m, ctx, in.C))
				}
			case ir.GetStatic:
				if in.IsRef {
					s.addCopy(s.fieldNode(s.staticsObj(in.Class), in.Slot), s.varNode(m, ctx, in.Dst))
				}
			case ir.SetStatic:
				if in.IsRef {
					s.addCopy(s.varNode(m, ctx, in.B), s.fieldNode(s.staticsObj(in.Class), in.Slot))
				}
			case ir.CallStatic:
				s.bindCall(mc, in, s.prog.MethodOf(in.Callee), calleeCtx(ctx, in))
			case ir.CallVirtual:
				recv := s.varNode(m, ctx, in.Args[0])
				vc := virtCall{mc: mc, in: in, ctx: calleeCtx(ctx, in)}
				s.virtuals[recv] = append(s.virtuals[recv], vc)
				s.pts[recv].forEach(func(o objID) { s.resolveVirtual(vc, o) })
			case ir.Spawn:
				// The spawned body runs outside any transaction.
				if in.Callee != nil && in.VIndex < 0 {
					s.bindCall(mc, in, s.prog.MethodOf(in.Callee), NonTxn)
				} else {
					recv := s.varNode(m, ctx, in.Args[0])
					vc := virtCall{mc: mc, in: in, ctx: NonTxn, spawn: true}
					s.virtuals[recv] = append(s.virtuals[recv], vc)
					s.pts[recv].forEach(func(o objID) { s.resolveVirtual(vc, o) })
				}
			case ir.Ret:
				if in.A >= 0 && m.RegKinds[in.A] == ir.RRef {
					s.addCopy(s.varNode(m, ctx, in.A), s.retNode(mc))
				}
			}
		}
	}
}

// effCtx is the effective transactional context of one instruction.
func effCtx(ctx Ctx, in *ir.Instr) Ctx {
	if ctx == Txn || in.Atomic {
		return Txn
	}
	return NonTxn
}

// Solve runs the points-to analysis from the program's entry points (static
// initializers and main, both outside transactions).
func Solve(p *ir.Program) *PTA {
	s := newSolver(p)
	for _, init := range p.Inits {
		s.reach(methodCtx{init, NonTxn})
	}
	s.reach(methodCtx{p.Main, NonTxn})
	s.solve()
	return &PTA{s: s}
}

// PTA holds points-to results.
type PTA struct {
	s *solver
}

// Reachable reports whether m is reachable in the given context.
func (p *PTA) Reachable(m *ir.Method, ctx Ctx) bool {
	return p.s.analyzed[methodCtx{m, ctx}]
}

// PointsTo returns the abstract objects a register may reference in a
// context (nil if the variable was never constrained).
func (p *PTA) PointsTo(m *ir.Method, ctx Ctx, reg int) []int {
	n, ok := p.s.varNodes[varKey{m, ctx, reg}]
	if !ok {
		return nil
	}
	var out []int
	p.s.pts[n].forEach(func(o objID) { out = append(out, o) })
	return out
}

// NumObjects returns the abstract-object universe size.
func (p *PTA) NumObjects() int { return p.s.numObjs }
