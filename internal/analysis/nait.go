package analysis

import (
	"fmt"
	"strings"

	"repro/internal/lang/ir"
)

// Options configures the whole-program run.
type Options struct {
	// Granularity is the STM's version-management granularity in slots.
	// NAIT must treat a transactional write to one slot as a write to its
	// whole span (Section 2.4's requirement on the analysis).
	Granularity int

	// Apply clears Barrier.Need on accesses proven removable (NAIT ∪ TL ∪
	// the Section 5.3 class-initializer exemption). When false, the run
	// only counts (Figure 13 mode).
	Apply bool

	// TxnReadElim additionally marks in-transaction loads whose points-to
	// sets contain no object written in any transaction as TxnReadDirect —
	// the Section 5.2 extension that removes transactional open-for-read
	// barriers. The paper notes this is sound only under weak atomicity;
	// the VM enforces that by honoring the mark only with barriers off.
	TxnReadElim bool
}

// Report carries the Figure 13 static counts and the analysis results.
type Report struct {
	// Barriers in reachable non-transactional code (not lexically atomic).
	TotalReads  int
	TotalWrites int

	// Removal counts per analysis (on the same barrier population).
	NAITReads, NAITWrites         int // removable by NAIT
	TLReads, TLWrites             int // removable by TL
	NAITOnlyReads, NAITOnlyWrites int // NAIT but not TL (Figure 13 "NAIT-TL")
	TLOnlyReads, TLOnlyWrites     int // TL but not NAIT (Figure 13 "TL-NAIT")
	UnionReads, UnionWrites       int // either (Figure 13 "TL+NAIT")

	// InitSelf counts Section 5.3 exempted accesses (a class initializer
	// touching its own statics), which are excluded from the totals above
	// exactly as the paper's counts exclude them.
	InitSelf int

	// TxnReadsTotal/TxnReadsDirect count in-transaction loads and how many
	// the Section 5.2 extension can bypass (populated when TxnReadElim).
	TxnReadsTotal  int
	TxnReadsDirect int

	PTA *PTA
}

// String renders one program's row of Figure 13.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "type  total  NAIT-TL  TL-NAIT  TL+NAIT\n")
	fmt.Fprintf(&b, "read  %5d  %7d  %7d  %7d\n", r.TotalReads, r.NAITOnlyReads, r.TLOnlyReads, r.UnionReads)
	fmt.Fprintf(&b, "write %5d  %7d  %7d  %7d\n", r.TotalWrites, r.NAITOnlyWrites, r.TLOnlyWrites, r.UnionWrites)
	return b.String()
}

// Run executes the whole-program pipeline: points-to, access
// classification, NAIT (Figure 12), TL, and optionally barrier removal.
func Run(p *ir.Program, o Options) *Report {
	if o.Granularity == 0 {
		o.Granularity = 1
	}
	pta := Solve(p)
	s := pta.s
	r := &Report{PTA: pta}

	// Pass 1 (Section 5.2): classify how every abstract object is accessed
	// inside transactions, per slot, widening transactional writes to the
	// version-management span.
	readInTxn := make(map[fieldKey]bool)
	writtenInTxn := make(map[fieldKey]bool)
	g := o.Granularity

	mark := func(o objID, slot int, isStore bool) {
		slot = s.normSlot(o, slot)
		if !isStore {
			readInTxn[fieldKey{o, slot}] = true
			return
		}
		if s.objIsArr[o] {
			writtenInTxn[fieldKey{o, elemSlot}] = true
			return
		}
		base := slot &^ (g - 1)
		for i := 0; i < g; i++ {
			writtenInTxn[fieldKey{o, base + i}] = true
		}
	}

	forEachReachableAccess(p, pta, func(mc methodCtx, in *ir.Instr) {
		if effCtx(mc.ctx, in) != Txn {
			return
		}
		s.accessTargets(mc, in, func(o objID, slot int) {
			mark(o, slot, in.Op.IsStore())
		})
	})

	// TL: compute the set of thread-shared abstract objects.
	shared := computeShared(p, pta)

	// Pass 2: for each barrier in reachable non-transactional code, decide
	// removability per Figure 12 (NAIT) and per thread-locality (TL).
	initSelf := func(mc methodCtx, in *ir.Instr) bool {
		// Section 5.3: accesses in a class initializer to static fields of
		// the class being initialized need no barrier and are not counted.
		return mc.m.IsInit &&
			(in.Op == ir.GetStatic || in.Op == ir.SetStatic) &&
			in.Class == mc.m.Class
	}

	if o.TxnReadElim {
		forEachReachableAccess(p, pta, func(mc methodCtx, in *ir.Instr) {
			if effCtx(mc.ctx, in) != Txn || !in.Op.IsLoad() {
				return
			}
			r.TxnReadsTotal++
			ok := true
			s.accessTargets(mc, in, func(ob objID, slot int) {
				if writtenInTxn[fieldKey{ob, s.normSlot(ob, slot)}] {
					ok = false
				}
			})
			if ok {
				r.TxnReadsDirect++
				if o.Apply {
					in.Barrier.TxnReadDirect = true
				}
			}
		})
	}

	forEachReachableAccess(p, pta, func(mc methodCtx, in *ir.Instr) {
		if effCtx(mc.ctx, in) == Txn {
			return
		}
		if initSelf(mc, in) {
			r.InitSelf++
			if o.Apply {
				in.Barrier.Need = false
				in.Barrier.RemovedBy |= ir.ByInitSelf
			}
			return
		}
		isStore := in.Op.IsStore()
		naitOK, tlOK := true, true
		s.accessTargets(mc, in, func(ob objID, slot int) {
			slot = s.normSlot(ob, slot)
			if isStore {
				// A store needs a barrier if the location is read or
				// written in some transaction.
				if readInTxn[fieldKey{ob, slot}] || writtenInTxn[fieldKey{ob, slot}] {
					naitOK = false
				}
			} else {
				// A load needs a barrier if the location is written in some
				// transaction (including granular neighbour writes).
				if writtenInTxn[fieldKey{ob, slot}] {
					naitOK = false
				}
			}
			if shared.get(ob) {
				tlOK = false
			}
		})
		if isStore {
			r.TotalWrites++
		} else {
			r.TotalReads++
		}
		count := func(c *int, ok bool) {
			if ok {
				*c++
			}
		}
		if isStore {
			count(&r.NAITWrites, naitOK)
			count(&r.TLWrites, tlOK)
			count(&r.NAITOnlyWrites, naitOK && !tlOK)
			count(&r.TLOnlyWrites, tlOK && !naitOK)
			count(&r.UnionWrites, naitOK || tlOK)
		} else {
			count(&r.NAITReads, naitOK)
			count(&r.TLReads, tlOK)
			count(&r.NAITOnlyReads, naitOK && !tlOK)
			count(&r.TLOnlyReads, tlOK && !naitOK)
			count(&r.UnionReads, naitOK || tlOK)
		}
		if o.Apply && (naitOK || tlOK) {
			in.Barrier.Need = false
			if naitOK {
				in.Barrier.RemovedBy |= ir.ByNAIT
			}
			if tlOK {
				in.Barrier.RemovedBy |= ir.ByTL
			}
		}
	})
	return r
}

// forEachReachableAccess visits every memory-access instruction of every
// reachable (method, context) pair.
func forEachReachableAccess(p *ir.Program, pta *PTA, f func(methodCtx, *ir.Instr)) {
	for _, m := range p.Methods {
		for _, ctx := range []Ctx{NonTxn, Txn} {
			if !pta.Reachable(m, ctx) {
				continue
			}
			mc := methodCtx{m, ctx}
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op.IsMemAccess() {
						f(mc, in)
					}
				}
			}
		}
	}
}

// accessTargets enumerates the (abstract object, slot) pairs an access may
// touch in a context.
func (s *solver) accessTargets(mc methodCtx, in *ir.Instr, f func(objID, int)) {
	switch in.Op {
	case ir.GetStatic, ir.SetStatic:
		f(s.staticsObj(in.Class), in.Slot)
	case ir.GetField, ir.SetField:
		if n, ok := s.varNodes[varKey{mc.m, mc.ctx, in.A}]; ok {
			s.pts[n].forEach(func(o objID) { f(o, in.Slot) })
		}
	case ir.GetElem, ir.SetElem:
		if n, ok := s.varNodes[varKey{mc.m, mc.ctx, in.A}]; ok {
			s.pts[n].forEach(func(o objID) { f(o, elemSlot) })
		}
	}
}

// computeShared is the TL analysis of Section 5.4: an abstract object is
// thread-shared if it is reachable from a static field or from anything
// handed to a spawned thread, transitively through heap fields. Note the
// paper's observation that TL "typically treats a static field as
// thread-shared even if only one thread ever uses it" — true here too.
func computeShared(p *ir.Program, pta *PTA) bitset {
	s := pta.s
	shared := newBitset(s.numObjs)
	var work []objID
	add := func(o objID) {
		if shared.set(o) {
			work = append(work, o)
		}
	}
	// Statics holders are thread-shared by definition ("TL typically
	// treats a static field as thread-shared even if only one thread ever
	// uses it"), and so is everything a static field points to.
	for o := 2 * s.numSites; o < s.numObjs; o++ {
		add(o)
	}
	for k, n := range s.fieldNodes {
		if k.obj >= 2*s.numSites { // statics holder field
			s.pts[n].forEach(add)
		}
	}
	// Roots: receivers/arguments of spawn sites in reachable code.
	for _, m := range p.Methods {
		for _, ctx := range []Ctx{NonTxn, Txn} {
			if !pta.Reachable(m, ctx) {
				continue
			}
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op != ir.Spawn {
						continue
					}
					for _, a := range in.Args {
						if n, ok := s.varNodes[varKey{m, ctx, a}]; ok {
							s.pts[n].forEach(add)
						}
					}
				}
			}
		}
	}
	// Transitive closure through object fields.
	fieldsOf := make(map[objID][]int)
	for k, n := range s.fieldNodes {
		fieldsOf[k.obj] = append(fieldsOf[k.obj], n)
	}
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		for _, n := range fieldsOf[o] {
			s.pts[n].forEach(add)
		}
	}
	return shared
}
