package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/lang/ir"
	"repro/internal/opt"
	"repro/internal/tj"
	"repro/internal/vm"
)

// readHeavySrc: transactions traverse an immutable-after-init tree (never
// written in any transaction) while also reading a counter that IS written
// in transactions. The Section 5.2 extension may bypass open-for-read on
// the tree loads but must keep the counter load transactional.
const readHeavySrc = `
class Node { var v: int; var l: Node; var r: Node; }
class Main {
  static var root: Node;
  static var hits: int;
  static func build(d: int): Node {
    var n = new Node();
    n.v = d;
    if (d > 0) { n.l = Main.build(d - 1); n.r = Main.build(d - 1); }
    return n;
  }
  static func sum(n: Node): int {
    if (n == null) { return 0; }
    return n.v + Main.sum(n.l) + Main.sum(n.r);
  }
  static func worker(iters: int) {
    for (var i = 0; i < iters; i++) {
      atomic {
        var s = Main.sum(root);     // tree: never written in a txn
        hits = hits + s % 7 + 1;    // counter: read AND written in txns
      }
    }
  }
  static func main() {
    root = Main.build(5);
    var t = spawn Main.worker(40);
    Main.worker(40);
    join(t);
    print(hits);
  }
}`

func TestTxnReadElimMarksOnlyConflictFreeLoads(t *testing.T) {
	prog, err := tj.Frontend(readHeavySrc)
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.Run(prog, analysis.Options{Granularity: 1, Apply: true, TxnReadElim: true})
	if rep.TxnReadsTotal == 0 {
		t.Fatal("no transactional reads counted")
	}
	if rep.TxnReadsDirect == 0 || rep.TxnReadsDirect >= rep.TxnReadsTotal {
		t.Fatalf("direct = %d of %d; want partial removal", rep.TxnReadsDirect, rep.TxnReadsTotal)
	}
	// The tree loads in sum() must be direct; the hits load must not be.
	for _, m := range prog.Methods {
		switch m.Name {
		case "Main.sum":
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op == ir.GetField && !in.Barrier.TxnReadDirect {
						t.Errorf("tree load (slot %d) not marked direct", in.Slot)
					}
				}
			}
		case "Main.worker":
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op == ir.GetStatic && in.Slot == 1 && in.Barrier.TxnReadDirect {
						t.Error("txn-written counter load marked direct")
					}
				}
			}
		}
	}
}

// TestTxnReadElimPreservesResults runs the program with and without the
// extension under weak atomicity and compares outputs (the counter update
// composition is deterministic across both).
func TestTxnReadElimPreservesResults(t *testing.T) {
	base, _, err := tj.Compile(readHeavySrc, opt.Options{WholeProgram: true})
	if err != nil {
		t.Fatal(err)
	}
	elim, rep, err := tj.Compile(readHeavySrc, opt.Options{TxnReadElim: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WholeProg.TxnReadsDirect == 0 {
		t.Fatal("extension removed nothing")
	}
	mode := vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Seed: 3}
	run := func(p *ir.Program) string {
		var sb strings.Builder
		m, err := vm.New(p, mode, &sb)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(sb.String())
	}
	if a, b := run(base), run(elim); a != b {
		t.Errorf("outputs differ: %q vs %q", a, b)
	}
}

// TestTxnReadElimReducesSTMReads: the runtime's open-for-read counter must
// drop when the extension is on.
func TestTxnReadElimReducesSTMReads(t *testing.T) {
	count := func(txnReadElim bool) int64 {
		var o opt.Options
		o.WholeProgram = true
		o.TxnReadElim = txnReadElim
		prog, _, err := tj.Compile(readHeavySrc, o)
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(prog, vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Seed: 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Eager.Stats.TxnReads.Load()
	}
	with, without := count(true), count(false)
	if with >= without {
		t.Errorf("open-for-read ops with extension = %d, without = %d; want a reduction", with, without)
	}
	if with == 0 {
		t.Error("counter loads must still use open-for-read")
	}
}

// TestTxnReadDirectIgnoredUnderStrong: with barriers on, the VM must NOT
// honor the mark (the paper: "this is unsound under strong atomicity").
func TestTxnReadDirectIgnoredUnderStrong(t *testing.T) {
	prog, _, err := tj.Compile(readHeavySrc, opt.Options{TxnReadElim: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Eager.Stats.TxnReads.Load() == 0 {
		t.Error("strong mode bypassed open-for-read despite the unsoundness note")
	}
}
