package analysis

import "math/bits"

// bitset is a fixed-universe bit set over abstract-object IDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

// set sets bit i and reports whether it was newly set.
func (b bitset) set(i int) bool {
	w, m := i/64, uint64(1)<<uint(i%64)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}

func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// unionWith sets b |= o, reporting whether b changed.
func (b bitset) unionWith(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// forEach calls f for every set bit.
func (b bitset) forEach(f func(int)) {
	for w, word := range b {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			f(w*64 + tz)
			word &^= 1 << uint(tz)
		}
	}
}

// empty reports whether no bit is set.
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}
