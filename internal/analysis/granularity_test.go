package analysis_test

import (
	"testing"

	"repro/internal/lang/ir"
)

// TestGranularitySpanPoisoning pins down the Section 2.4 requirement
// documented on Options.Granularity: with Granularity > 1, a
// transactional write to ONE slot must be treated by NAIT as a write to
// its WHOLE aligned span — in both directions within the span, and in no
// other span. The transaction writes slot 1 only; slots 0 and 1 share
// span [0,1] while slot 2 starts span [2,3].
func TestGranularitySpanPoisoning(t *testing.T) {
	src := `
class C { var a: int; var b: int; var c2: int; var d: int; }
class Main {
  static var c: C;
  static func w() { atomic { c.b = 1; } }
  static func main() {
    c = new C();
    var t = spawn Main.w();
    var r0 = c.a;
    var r2 = c.c2;
    join(t);
    print(r0 + r2);
  }
}`
	progFine, repFine := run(t, src, 1)
	// Field-granular: the write to slot 1 touches slot 1 alone, so both
	// non-transactional reads lose their barriers.
	if barrierOn(t, progFine, "Main.main", ir.GetField, 0).Need {
		t.Error("granularity 1: read of slot 0 kept its barrier despite no transactional access to it")
	}
	if barrierOn(t, progFine, "Main.main", ir.GetField, 2).Need {
		t.Error("granularity 1: read of slot 2 kept its barrier despite no transactional access to it")
	}

	progCoarse, repCoarse := run(t, src, 2)
	// Span-granular: the write to slot 1 poisons its whole span, so the
	// slot-0 read (lower neighbour — the direction the existing
	// TestGranularityWidensTxnWrites does not cover) must keep its
	// barrier...
	if !barrierOn(t, progCoarse, "Main.main", ir.GetField, 0).Need {
		t.Error("granularity 2: read of slot 0 lost its barrier although the transactional write to slot 1 poisons span [0,1] (Section 2.4)")
	}
	// ...while the slot-2 read sits in the next aligned span and stays
	// removable: poisoning must widen to the span, not the object.
	if barrierOn(t, progCoarse, "Main.main", ir.GetField, 2).Need {
		t.Error("granularity 2: read of slot 2 kept its barrier although span [2,3] is never written transactionally")
	}

	// The Figure 13 counts must tell the same story: coarsening the
	// granularity can only shrink NAIT's removable-read set.
	if repCoarse.NAITReads >= repFine.NAITReads {
		t.Errorf("NAIT removable reads: granularity 2 removed %d, granularity 1 removed %d — span poisoning should strictly reduce removals here",
			repCoarse.NAITReads, repFine.NAITReads)
	}
}
