package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/lang/ir"
	"repro/internal/tj"
)

func run(t *testing.T, src string, g int) (*ir.Program, *analysis.Report) {
	t.Helper()
	prog, err := tj.Frontend(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep := analysis.Run(prog, analysis.Options{Granularity: g, Apply: true})
	return prog, rep
}

// barrierOn finds the first access matching op in the named method and
// returns its barrier state.
func barrierOn(t *testing.T, p *ir.Program, method string, op ir.Op, slot int) ir.Barrier {
	t.Helper()
	for _, m := range p.Methods {
		if m.Name != method {
			continue
		}
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == op && in.Slot == slot && !in.Atomic {
					return in.Barrier
				}
			}
		}
	}
	t.Fatalf("no %v(slot %d) in %s", op, slot, method)
	return ir.Barrier{}
}

// TestNAITRemovesAllInNonTransactionalProgram checks the paper's headline
// claim: "in a program not using transactions the analysis would remove all
// barriers".
func TestNAITRemovesAllInNonTransactionalProgram(t *testing.T) {
	src := `
class Node { var v: int; var next: Node; }
class Main {
  static var head: Node;
  static func build(n: int) {
    for (var i = 0; i < n; i++) {
      var nd = new Node();
      nd.v = i;
      nd.next = head;
      head = nd;
    }
  }
  static func main() {
    Main.build(10);
    var s = 0;
    var c = head;
    while (c != null) { s += c.v; c = c.next; }
    print(s);
  }
}`
	_, rep := run(t, src, 1)
	if rep.NAITReads != rep.TotalReads || rep.NAITWrites != rep.TotalWrites {
		t.Errorf("NAIT removed %d/%d reads and %d/%d writes; want all",
			rep.NAITReads, rep.TotalReads, rep.NAITWrites, rep.TotalWrites)
	}
}

// TestNAITKeepsConflictingBarriers: data accessed both inside and outside
// transactions must keep its barriers; unrelated data loses them.
func TestNAITKeepsConflictingBarriers(t *testing.T) {
	src := `
class Shared { var n: int; }
class Quiet { var n: int; }
class Main {
  static var s: Shared;
  static var q: Quiet;
  static func worker() {
    atomic { s.n = s.n + 1; }
  }
  static func main() {
    s = new Shared();
    q = new Quiet();
    var t = spawn Main.worker();
    s.n = 5;        // conflicts with the transaction: barrier stays
    q.n = 7;        // never accessed in any transaction: barrier removed
    var r1 = s.n;   // read of txn-written data: barrier stays
    var r2 = q.n;   // barrier removed
    join(t);
    print(r1 + r2);
  }
}`
	prog, rep := run(t, src, 1)
	if b := barrierOn(t, prog, "Main.main", ir.SetField, 0); false {
		_ = b
	}
	// Distinguish by class: Shared.n and Quiet.n are both slot 0, so check
	// via removal reasons on each store in main in order.
	var stores, loads []ir.Barrier
	for _, m := range prog.Methods {
		if m.Name != "Main.main" {
			continue
		}
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.SetField {
					stores = append(stores, in.Barrier)
				}
				if in.Op == ir.GetField {
					loads = append(loads, in.Barrier)
				}
			}
		}
	}
	if len(stores) != 2 || len(loads) != 2 {
		t.Fatalf("stores=%d loads=%d, want 2/2", len(stores), len(loads))
	}
	if !stores[0].Need {
		t.Error("store to txn-shared field lost its barrier")
	}
	if stores[1].Need || stores[1].RemovedBy&ir.ByNAIT == 0 {
		t.Error("store to txn-free field kept its barrier")
	}
	if !loads[0].Need {
		t.Error("load of txn-written field lost its barrier")
	}
	if loads[1].Need {
		t.Error("load of txn-free field kept its barrier")
	}
	if rep.NAITWrites == 0 || rep.NAITWrites == rep.TotalWrites {
		t.Errorf("NAITWrites = %d of %d; want partial removal", rep.NAITWrites, rep.TotalWrites)
	}
}

// TestDataHandoffNAITBeatsTL reproduces the paper's key qualitative claim
// (Section 5): objects handed between threads through a transactional queue
// are thread-SHARED (TL cannot remove their barriers) but never accessed
// inside a transaction themselves (NAIT removes them).
func TestDataHandoffNAITBeatsTL(t *testing.T) {
	src := `
class Item { var payload: int; }
class Queue {
  var slot0: Item;
  var full: bool;
}
class Main {
  static var q: Queue;
  static func producer(n: int) {
    for (var i = 0; i < n; i++) {
      var it = new Item();
      it.payload = i;          // Item access: outside any transaction
      var done = false;
      while (!done) {
        atomic {
          if (!q.full) { q.slot0 = it; q.full = true; done = true; }
        }
      }
    }
  }
  static func main() {
    q = new Queue();
    var t = spawn Main.producer(10);
    var got = 0;
    var sum = 0;
    while (got < 10) {
      var it: Item = null;
      atomic {
        if (q.full) { it = q.slot0; q.full = false; }
      }
      if (it != null) {
        sum += it.payload;     // Item access: outside any transaction
        got++;
      }
    }
    join(t);
    print(sum);
  }
}`
	prog, _ := run(t, src, 1)
	// The producer's payload store: NAIT removes, TL must not.
	st := barrierOn(t, prog, "Main.producer", ir.SetField, 0)
	if st.Need || st.RemovedBy&ir.ByNAIT == 0 {
		t.Errorf("handoff payload store: barrier=%+v, want removed by NAIT", st)
	}
	if st.RemovedBy&ir.ByTL != 0 {
		t.Errorf("handoff payload store: TL claimed a thread-shared object is local")
	}
	ld := barrierOn(t, prog, "Main.main", ir.GetField, 0)
	if ld.Need || ld.RemovedBy&ir.ByNAIT == 0 || ld.RemovedBy&ir.ByTL != 0 {
		t.Errorf("handoff payload load: barrier=%+v, want NAIT-only removal", ld)
	}
}

// TestTLRemovesTrulyLocal: an object that never escapes its thread is
// removable by TL (and by NAIT).
func TestTLRemovesTrulyLocal(t *testing.T) {
	src := `
class P { var x: int; }
class S { var n: int; }
class Main {
  static var s: S;
  static func other() { atomic { s.n = 1; } }
  static func helper(p: P): int { return p.x; } // keeps PTA non-trivial
  static func main() {
    s = new S();
    var t = spawn Main.other();
    var p = new P();
    p.x = 3;
    print(Main.helper(p));
    join(t);
  }
}`
	prog, rep := run(t, src, 1)
	st := barrierOn(t, prog, "Main.main", ir.SetField, 0)
	if st.RemovedBy&ir.ByTL == 0 || st.RemovedBy&ir.ByNAIT == 0 {
		t.Errorf("local object store: removed by %v, want both TL and NAIT", st.RemovedBy)
	}
	if rep.TLOnlyReads+rep.TLOnlyWrites != 0 {
		t.Errorf("TL-only removals = %d/%d; NAIT should subsume TL here",
			rep.TLOnlyReads, rep.TLOnlyWrites)
	}
}

// TestGranularityWidensTxnWrites: with 2-slot granularity, a transactional
// write to field f (slot 0) also taints field g (slot 1), so a
// non-transactional LOAD of g keeps its barrier; with 1-slot granularity it
// is removable.
func TestGranularityWidensTxnWrites(t *testing.T) {
	src := `
class C { var f: int; var g: int; }
class Main {
  static var c: C;
  static func w() { atomic { c.f = 1; } }
  static func main() {
    c = new C();
    var t = spawn Main.w();
    var r = c.g;
    join(t);
    print(r);
  }
}`
	progFine, _ := run(t, src, 1)
	ld := barrierOn(t, progFine, "Main.main", ir.GetField, 1)
	if ld.Need {
		t.Error("granularity 1: load of untouched neighbour field kept its barrier")
	}
	progCoarse, _ := run(t, src, 2)
	ld = barrierOn(t, progCoarse, "Main.main", ir.GetField, 1)
	if !ld.Need {
		t.Error("granularity 2: load of span neighbour lost its barrier despite granular writes (Section 2.4)")
	}
}

// TestInitSelfExemption: a class initializer's accesses to its own statics
// are exempt (Section 5.3); accesses to other classes' statics are not.
func TestInitSelfExemption(t *testing.T) {
	src := `
class A {
  static var x: int;
  static var arr: int[];
  init {
    x = 1;          // self static: exempt
    arr = new int[4];
    B.y = 2;        // other class: counted
  }
}
class B { static var y: int; }
class Main {
  static func w() { atomic { B.y = B.y + 1; A.x = 5; } }
  static func main() {
    var t = spawn Main.w();
    join(t);
    print(A.x + B.y);
  }
}`
	prog, rep := run(t, src, 1)
	if rep.InitSelf < 2 {
		t.Errorf("InitSelf = %d, want >= 2", rep.InitSelf)
	}
	// The clinit's write to B.y must keep its barrier (B.y is written in a
	// transaction), while its writes to A's own statics are exempt.
	for _, m := range prog.Methods {
		if m.Name != "A.<clinit>" {
			continue
		}
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.SetStatic {
					continue
				}
				switch in.Class.Name {
				case "B":
					if !in.Barrier.Need {
						t.Error("clinit write to another class's txn-written static lost its barrier")
					}
				case "A":
					if in.Barrier.Need || in.Barrier.RemovedBy&ir.ByInitSelf == 0 {
						t.Errorf("clinit self-static write not exempted: %+v", in.Barrier)
					}
				}
			}
		}
	}
}

// TestVirtualDispatchInPTA: the analysis resolves virtual calls through
// points-to sets; a transactional access through an override must taint the
// right objects.
func TestVirtualDispatchInPTA(t *testing.T) {
	src := `
class Box { var v: int; }
class Op {
  func apply(b: Box) { b.v = 1; }
}
class TxnOp extends Op {
  func apply(b: Box) { atomic { b.v = 2; } }
}
class Main {
  static var shared: Box;
  static func pick(n: int): Op {
    if (n == 0) { return new Op(); }
    return new TxnOp();
  }
  static func main() {
    shared = new Box();
    var op = Main.pick(rand(2));
    var t = spawn Main.bg(op);
    shared.v = 7;   // may race with TxnOp.apply's transaction
    join(t);
    print(shared.v);
  }
  static func bg(op: Op) { op.apply(shared); }
}`
	prog, _ := run(t, src, 1)
	st := barrierOn(t, prog, "Main.main", ir.SetField, 0)
	if !st.Need {
		t.Error("store racing with a virtually-dispatched transaction lost its barrier")
	}
}

// TestContextSensitivity: a method called both inside and outside
// transactions is analyzed in both contexts; its accesses in the Txn
// context taint objects, while a *different* object only flowing through
// the NonTxn context stays clean.
func TestContextSensitivity(t *testing.T) {
	src := `
class C { var v: int; }
class Main {
  static var inTxnObj: C;
  static var outObj: C;
  static func touch(c: C) { c.v = c.v + 1; }
  static func worker() {
    atomic { Main.touch(inTxnObj); }
  }
  static func main() {
    inTxnObj = new C();
    outObj = new C();
    var t = spawn Main.worker();
    Main.touch(outObj);
    var r = outObj.v;   // outObj is never accessed in any transaction
    join(t);
    print(r);
  }
}`
	prog, _ := run(t, src, 1)
	ld := barrierOn(t, prog, "Main.main", ir.GetField, 0)
	if ld.Need {
		t.Error("object reaching touch only in the non-txn context kept its barrier; context sensitivity lost")
	}
}

// TestHeapSpecialization: the same allocation site in txn and non-txn
// contexts yields distinct abstract objects.
func TestHeapSpecialization(t *testing.T) {
	src := `
class C { var v: int; }
class Main {
  static var fromTxn: C;
  static func mk(): C { return new C(); }
  static func main() {
    atomic { fromTxn = Main.mk(); }     // mk in txn ctx: abstract obj (site, Txn)
    var mine = Main.mk();               // (site, NonTxn)
    atomic { fromTxn.v = 1; }           // taints only the txn-context object
    mine.v = 2;
    var r = mine.v;                     // must be removable
    print(r);
  }
}`
	prog, _ := run(t, src, 1)
	ld := barrierOn(t, prog, "Main.main", ir.GetField, 0)
	if ld.Need {
		t.Error("heap specialization failed: non-txn allocation tainted by txn-context twin")
	}
}

func TestReportString(t *testing.T) {
	src := `class Main { static func main() { print(1); } }`
	_, rep := run(t, src, 1)
	out := rep.String()
	if out == "" || rep.TotalReads != 0 {
		t.Errorf("unexpected report: %q (%d reads)", out, rep.TotalReads)
	}
}
