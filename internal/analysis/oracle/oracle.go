// Package oracle is the dynamic soundness check for the whole-program
// barrier-elision manifest emitted by `stmvet elide`.
//
// The inter-procedural analyses (internal/vetstm/interproc) make two kinds
// of static claims about allocation sites:
//
//   - NAIT ("not accessed in transaction", Figure 12): no object born at
//     the site is ever touched inside an Atomic* body, so its
//     transactional barriers can be elided.
//   - TL (thread-local, §5.4): no object born at the site is ever reached
//     from a goroutine other than its allocator, so its isolation
//     barriers can be elided.
//
// Both claims are unfalsifiable from inside the analysis — that is the
// point of an oracle. This package watches an actual execution and fails
// loudly when reality contradicts the manifest: a NAIT-classified object
// observed in a transactional read or write, or a TL-classified object
// touched from a goroutine that did not allocate it. Under `go test
// -race` the workload doubles as a memory-level check that elided
// barriers did not reintroduce data races.
//
// Wiring: Attach registers an allocation observer on the heap (learning
// the object→site mapping and each object's allocating goroutine); the
// returned Oracle implements trace.Sink (install it on the runtime's
// Tracer to see transactional accesses) and provides a BarrierObserver
// for strong.Barriers (non-transactional accesses). When a causal
// flight recorder is supplied, trace events are forwarded to it and each
// transactional breach carries the recorder's conflict edges for the
// offending transaction — the "how did we get here" chain.
package oracle

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/causal"
	"repro/internal/objmodel"
	"repro/internal/trace"
)

// Kind discriminates the two ways an execution can contradict the manifest.
type Kind string

// Breach kinds.
const (
	// NAITBreach: an object from a nait/nait+tl site was read or written
	// inside a transaction.
	NAITBreach Kind = "nait-transactional-access"
	// TLBreach: an object from a tl/nait+tl site was touched from a
	// goroutine other than the one that allocated it.
	TLBreach Kind = "tl-cross-goroutine"
)

// Breach is one observed contradiction of the manifest.
type Breach struct {
	Kind  Kind
	Site  string              // manifest allocation-site ID ("file.go:line")
	Class objmodel.SiteClass  // the claim that was contradicted
	Obj   uint64              // heap handle of the offending object
	Slot  int                 // slot accessed
	Write bool                // access direction
	Txn   uint64              // transaction ID; 0 for non-transactional accesses
	AllocG, AccessG uint64    // allocating / accessing goroutine IDs
	Chain string              // causal context from the flight recorder, if any
}

// String renders the breach for logs and test failures.
func (b Breach) String() string {
	dir := "read"
	if b.Write {
		dir = "write"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: site %s (class %s) obj=%d slot=%d %s", b.Kind, b.Site, b.Class, b.Obj, b.Slot, dir)
	if b.Txn != 0 {
		fmt.Fprintf(&sb, " in txn %d", b.Txn)
	}
	if b.Kind == TLBreach {
		fmt.Fprintf(&sb, " from goroutine %d (allocated on %d)", b.AccessG, b.AllocG)
	}
	if b.Chain != "" {
		fmt.Fprintf(&sb, "; causal: %s", b.Chain)
	}
	return sb.String()
}

// Config parameterizes an Oracle.
type Config struct {
	// Recorder, when non-nil, receives every trace event the oracle
	// observes (so one Tracer sink serves both) and supplies the causal
	// chain attached to transactional breaches.
	Recorder *causal.Recorder

	// MaxBreaches caps the retained breach list (distinct (kind, object)
	// pairs; repeats only bump the total). Zero means DefaultMaxBreaches.
	MaxBreaches int
}

// DefaultMaxBreaches is the retained-breach cap for a zero Config.
const DefaultMaxBreaches = 64

type tracked struct {
	site   *objmodel.ManifestSite
	allocG uint64
}

// Oracle validates manifest claims against an actual execution. Safe for
// concurrent use; create with Attach.
type Oracle struct {
	cfg Config

	mu       sync.Mutex
	objs     map[uint64]tracked // heap handle -> site + allocating goroutine
	seen     map[breachKey]bool // dedup for the retained list
	breaches []Breach
	total    int64 // every contradiction observed, including deduped repeats
	allocs   int64 // manifest-matched allocations tracked
}

type breachKey struct {
	kind Kind
	obj  uint64
}

// Attach creates an Oracle and registers it as an allocation observer on
// heap. The heap must have a manifest applied (allocation observers only
// fire for manifest-matched sites). Observers cannot be unregistered, so
// attach once per heap, before the workload allocates.
func Attach(heap *objmodel.Heap, cfg Config) *Oracle {
	if cfg.MaxBreaches <= 0 {
		cfg.MaxBreaches = DefaultMaxBreaches
	}
	o := &Oracle{
		cfg:  cfg,
		objs: make(map[uint64]tracked),
		seen: make(map[breachKey]bool),
	}
	heap.AddAllocObserver(o.onAlloc)
	return o
}

func (o *Oracle) onAlloc(obj *objmodel.Object, site *objmodel.ManifestSite) {
	g := goid()
	o.mu.Lock()
	o.objs[uint64(obj.Ref())] = tracked{site: site, allocG: g}
	o.allocs++
	o.mu.Unlock()
}

// Observe consumes one trace event (trace.Sink): install the oracle as the
// runtime Tracer's sink. Transactional reads and writes of NAIT-classified
// objects are breaches; of TL-classified objects, breaches when the
// transaction runs on a foreign goroutine. The sink contract guarantees
// the call happens on the transaction's own goroutine, which is what makes
// the TL check meaningful here.
func (o *Oracle) Observe(ev trace.Event) {
	if o.cfg.Recorder != nil {
		o.cfg.Recorder.Observe(ev)
	}
	if (ev.Kind != trace.EvRead && ev.Kind != trace.EvWrite) || ev.Obj == 0 {
		return
	}
	o.mu.Lock()
	tr, ok := o.objs[ev.Obj]
	o.mu.Unlock()
	if !ok {
		return
	}
	write := ev.Kind == trace.EvWrite
	if tr.site.Class == objmodel.SiteNAIT || tr.site.Class == objmodel.SiteNAITTL {
		o.report(Breach{
			Kind: NAITBreach, Site: tr.site.ID, Class: tr.site.Class,
			Obj: ev.Obj, Slot: ev.Slot, Write: write, Txn: ev.Txn,
			AllocG: tr.allocG, AccessG: goid(),
		})
	}
	if tr.site.Class == objmodel.SiteTL || tr.site.Class == objmodel.SiteNAITTL {
		if g := goid(); g != tr.allocG {
			o.report(Breach{
				Kind: TLBreach, Site: tr.site.ID, Class: tr.site.Class,
				Obj: ev.Obj, Slot: ev.Slot, Write: write, Txn: ev.Txn,
				AllocG: tr.allocG, AccessG: g,
			})
		}
	}
}

// BarrierObserver returns the hook to install as strong.Barriers.Observer:
// it checks non-transactional barriered accesses against the TL claims.
// (NAIT objects are *supposed* to be accessed non-transactionally, so only
// the goroutine check applies here.)
func (o *Oracle) BarrierObserver() func(obj *objmodel.Object, slot int, write bool) {
	return func(obj *objmodel.Object, slot int, write bool) {
		h := uint64(obj.Ref())
		o.mu.Lock()
		tr, ok := o.objs[h]
		o.mu.Unlock()
		if !ok || (tr.site.Class != objmodel.SiteTL && tr.site.Class != objmodel.SiteNAITTL) {
			return
		}
		if g := goid(); g != tr.allocG {
			o.report(Breach{
				Kind: TLBreach, Site: tr.site.ID, Class: tr.site.Class,
				Obj: h, Slot: slot, Write: write,
				AllocG: tr.allocG, AccessG: g,
			})
		}
	}
}

func (o *Oracle) report(b Breach) {
	o.mu.Lock()
	o.total++
	k := breachKey{kind: b.Kind, obj: b.Obj}
	if o.seen[k] || len(o.breaches) >= o.cfg.MaxBreaches {
		o.mu.Unlock()
		return
	}
	o.seen[k] = true
	o.mu.Unlock()
	// Chain extraction snapshots the whole DAG; doing it outside the lock
	// and only for first-of-kind breaches keeps repeat breaches cheap.
	if b.Txn != 0 && o.cfg.Recorder != nil {
		b.Chain = chainFor(o.cfg.Recorder, b.Txn)
	}
	o.mu.Lock()
	o.breaches = append(o.breaches, b)
	o.mu.Unlock()
}

// chainFor renders the flight recorder's conflict edges touching txn —
// enough causal context to see who the offending transaction was entangled
// with when the manifest claim broke.
func chainFor(rec *causal.Recorder, txn uint64) string {
	g := rec.Graph()
	var parts []string
	for _, e := range g.Edges {
		if e.From.Txn != txn && e.To.Txn != txn {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s txn%d→txn%d obj=%d", e.Kind, e.From.Txn, e.To.Txn, e.Obj))
		if len(parts) == 4 {
			parts = append(parts, "…")
			break
		}
	}
	return strings.Join(parts, "; ")
}

// Breaches returns a copy of the retained breach list (distinct per
// (kind, object), capped at Config.MaxBreaches).
func (o *Oracle) Breaches() []Breach {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Breach(nil), o.breaches...)
}

// Total returns every contradiction observed, including deduped repeats.
func (o *Oracle) Total() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.total
}

// Tracked returns the number of manifest-matched allocations seen.
func (o *Oracle) Tracked() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.allocs
}

// Err returns nil when the execution was consistent with the manifest, or
// an error summarizing the breaches otherwise.
func (o *Oracle) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.total == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "oracle: %d manifest breach(es) across %d object(s):", o.total, len(o.breaches))
	for _, b := range o.breaches {
		sb.WriteString("\n  ")
		sb.WriteString(b.String())
	}
	return fmt.Errorf("%s", sb.String())
}

// goid parses the current goroutine's ID out of the runtime.Stack header
// ("goroutine N [...]"). Slow (a stack capture per call), but the oracle is
// a test harness, not a production path.
func goid() uint64 {
	var buf [64]byte
	b := buf[:runtime.Stack(buf[:], false)]
	const prefix = "goroutine "
	if len(b) < len(prefix) {
		return 0
	}
	b = b[len(prefix):]
	var id uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
