package oracle_test

import (
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis/oracle"
	"repro/internal/causal"
	"repro/internal/elide"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/strong"
	"repro/internal/trace"
)

func manifestFor(sites ...elide.Site) *elide.Manifest {
	return &elide.Manifest{Version: elide.Version, Tool: "test", Sites: sites}
}

// hereSite builds a manifest site for an allocation `delta` lines below the
// caller of hereSite.
func hereSite(delta int, class string) elide.Site {
	_, file, line, _ := runtime.Caller(1)
	base := filepath.Base(file)
	return elide.Site{
		ID:    elide.SiteID(base, line+delta),
		File:  base,
		Line:  line + delta,
		Class: class,
	}
}

func oneSlotClass(t *testing.T, h *objmodel.Heap) *objmodel.Class {
	t.Helper()
	return h.MustDefineClass(objmodel.ClassSpec{Name: "T", Fields: []objmodel.Field{{Name: "x"}}})
}

// The teeth test: a manifest that (wrongly) claims a site is nait+tl, then
// a workload that accesses the object transactionally AND from a foreign
// goroutine. The oracle must catch both contradictions — if it stays
// silent here, a passing CI oracle job means nothing.
func TestOracleCatchesWrongManifest(t *testing.T) {
	h := objmodel.NewHeap()
	cls := oneSlotClass(t, h)

	h.ApplyManifest(manifestFor(hereSite(1, elide.ClassNAITTL)))
	obj := h.New(cls)
	if !obj.IsPrivate() {
		t.Fatalf("manifest-classified allocation not born private")
	}

	rec := causal.NewRecorder(causal.Config{})
	orc := oracle.Attach(h, oracle.Config{Recorder: rec})
	if orc.Tracked() != 0 {
		t.Fatalf("oracle tracked pre-attach allocations")
	}
	// Re-allocate at a tracked site so the oracle learns the mapping: the
	// first object predates Attach (observers only see later allocations).
	h.ApplyManifest(manifestFor(hereSite(1, elide.ClassNAITTL)))
	obj = h.New(cls)
	if orc.Tracked() != 1 {
		t.Fatalf("Tracked = %d, want 1", orc.Tracked())
	}

	tr := trace.New(trace.Config{})
	tr.SetSink(orc)
	rt := stm.New(h, stm.Config{})
	rt.SetTracer(tr)

	// Contradiction 1: transactional access of a NAIT-claimed object.
	if err := rt.Atomic(nil, func(tx *stm.Txn) error {
		tx.Write(obj, 0, tx.Read(obj, 0)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Contradiction 2: NT-barriered access from a goroutine that did not
	// allocate the object (the TL half of the claim).
	bars := strong.New(h, false)
	bars.Observer = orc.BarrierObserver()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = bars.Read(obj, 0)
	}()
	<-done

	if orc.Err() == nil {
		t.Fatalf("oracle silent on a wrong manifest")
	}
	kinds := map[oracle.Kind]bool{}
	for _, b := range orc.Breaches() {
		kinds[b.Kind] = true
		if b.Obj != uint64(obj.Ref()) {
			t.Fatalf("breach blames obj %d, want %d: %s", b.Obj, obj.Ref(), b)
		}
	}
	if !kinds[oracle.NAITBreach] {
		t.Fatalf("transactional access of nait-claimed object not caught: %v", orc.Breaches())
	}
	if !kinds[oracle.TLBreach] {
		t.Fatalf("cross-goroutine access of tl-claimed object not caught: %v", orc.Breaches())
	}
}

// A transaction running on a foreign goroutine violates TL even though the
// access is properly barriered — TL is a goroutine-confinement claim, not
// a barrier-discipline claim.
func TestOracleCatchesTransactionalCrossGoroutine(t *testing.T) {
	h := objmodel.NewHeap()
	cls := oneSlotClass(t, h)
	orc := oracle.Attach(h, oracle.Config{})

	h.ApplyManifest(manifestFor(hereSite(1, elide.ClassTL)))
	obj := h.New(cls)

	tr := trace.New(trace.Config{})
	tr.SetSink(orc)
	rt := stm.New(h, stm.Config{})
	rt.SetTracer(tr)

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(obj, 0, 7)
			return nil
		})
	}()
	<-done

	var tl bool
	for _, b := range orc.Breaches() {
		if b.Kind == oracle.TLBreach && b.Txn != 0 {
			tl = true
			if b.AllocG == b.AccessG {
				t.Fatalf("breach reports same alloc/access goroutine: %s", b)
			}
		}
		if b.Kind == oracle.NAITBreach {
			t.Fatalf("tl-only claim produced a nait breach: %s", b)
		}
	}
	if !tl {
		t.Fatalf("transactional cross-goroutine access not caught: %v", orc.Breaches())
	}
}

// A workload that respects its manifest must leave the oracle silent: the
// nait object crosses goroutines only after proper publication through a
// public parent, and the tl object stays transactional on its allocating
// goroutine.
func TestOracleCleanRunStaysSilent(t *testing.T) {
	h := objmodel.NewHeap()
	cls := oneSlotClass(t, h)
	box := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Box",
		Fields: []objmodel.Field{{Name: "head", IsRef: true}},
	})
	orc := oracle.Attach(h, oracle.Config{})

	h.ApplyManifest(manifestFor(
		hereSite(3, elide.ClassNAIT),
		hereSite(3, elide.ClassTL),
	))
	naitObj := h.New(cls)
	tlObj := h.New(cls)

	tr := trace.New(trace.Config{})
	tr.SetSink(orc)
	rt := stm.New(h, stm.Config{})
	rt.SetTracer(tr)

	bars := strong.New(h, false)
	bars.Observer = orc.BarrierObserver()

	// nait handoff: publish through a public parent (Figure 10b), then let
	// another goroutine read it with NT barriers.
	parent := h.NewPublic(box)
	bars.Write(naitObj, 0, 41)
	bars.WriteRef(parent, 0, naitObj.Ref())
	if naitObj.IsPrivate() {
		t.Fatalf("publication did not leave the private state")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		o := h.Get(bars.ReadRef(parent, 0))
		if got := bars.Read(o, 0); got != 41 {
			t.Errorf("handoff read = %d, want 41", got)
		}
	}()
	wg.Wait()

	// tl usage: transactions on the allocating goroutine only.
	for i := 0; i < 3; i++ {
		if err := rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(tlObj, 0, tx.Read(tlObj, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	if err := orc.Err(); err != nil {
		t.Fatalf("clean run breached: %v", err)
	}
	if orc.Tracked() != 2 {
		t.Fatalf("Tracked = %d, want 2", orc.Tracked())
	}
}
