// Package faultinject provides deterministic, seedable fault injection for
// the STM runtimes. An Injector is installed on a runtime the same way a
// tracer is — an atomic pointer sampled once per top-level atomic block —
// so with no injector installed every injection point costs one predictable
// nil check and nothing else.
//
// Injection points sit at the stages of the commit protocol where an abort
// is hardest to get right: around record acquisition, entering commit
// validation, and inside the commit window before records are released.
// Four actions are supported:
//
//	Delay   sleep at the point, widening race windows that are normally
//	        nanoseconds long (the litmus programs' best friend)
//	Abort   doom the attempt: the runtime runs its ordinary abort path
//	        (undo-log replay / buffer discard, record release) and retries
//	Crash   simulate the thread dying at the point: the runtime performs the
//	        cleanup a managed runtime would perform for a crashed thread —
//	        rolling back and releasing if before the commit point, finishing
//	        the release if after — and then panics with Crash{}, which
//	        propagates to the Atomic caller
//	Orphan  simulate the thread dying with NO cleanup: the runtime marks the
//	        descriptor dead and panics with OrphanError, leaving every
//	        acquired record held and the undo log / write buffer in place.
//	        The transaction's records stay Exclusive until internal/recovery
//	        (or an inline-stealing waiter) reclaims them — the failure mode
//	        the reaper exists to fix
//
// Determinism: every decision is a pure function of (Seed, point, arrival
// index at that point). Two runs with the same seed and the same per-point
// arrival interleavings fire identically; a single-threaded test fires
// reproducibly by construction. Rules select arrivals either periodically
// (Every) or by seeded hash (Rate), never from global RNG state.
package faultinject

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// Point is an injection site in a runtime's transaction lifecycle.
type Point uint8

// Injection points. Both runtimes fire the subset that exists in their
// protocol (the eager runtime has no write-back, for instance).
const (
	// PreAcquire fires before each attempt to CAS a record to Exclusive.
	PreAcquire Point = iota
	// PostAcquire fires immediately after a record acquisition succeeds.
	PostAcquire
	// PreValidate fires on entering commit-time read-set validation.
	PreValidate
	// PostCommitPoint fires after the transaction has logically committed
	// but before its records are released (for the lazy runtime: after
	// write-back, before release — the paper's Figure 4 window).
	PostCommitPoint
	// PreRelease fires before abort releases the records it rolled back
	// under (the doom sites' common exit).
	PreRelease
	// WALAppend fires before a commit's redo record is appended to the
	// write-ahead log (internal/durable), while the commit still holds its
	// records.
	WALAppend
	// WALFsync fires before the group committer fsyncs a WAL batch —
	// acked commits in the batch are not yet durable.
	WALFsync
	// WALRename fires before a snapshot (or other durable artifact) is
	// renamed into place — the rename-durability window.
	WALRename
	// NumPoints is the number of injection points.
	NumPoints
)

// Points lists the commit-protocol injection points in protocol order, for
// callers arming a rule at each in-memory commit stage. The durability
// points live in WALPoints; AllPoints is their concatenation.
var Points = []Point{PreAcquire, PostAcquire, PreValidate, PostCommitPoint, PreRelease}

// WALPoints lists the durability-layer injection points (internal/durable
// fires them; the runtimes never do).
var WALPoints = []Point{WALAppend, WALFsync, WALRename}

// AllPoints is every injection point: the commit protocol's five followed
// by the WAL's three.
var AllPoints = append(append([]Point{}, Points...), WALPoints...)

var pointNames = [NumPoints]string{
	"pre-acquire", "post-acquire", "pre-validate", "post-commit-point", "pre-release",
	"wal-append", "wal-fsync", "wal-rename",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", uint8(p))
}

// Action is what an armed rule does when it fires.
type Action uint8

// Actions. None means the point passes through untouched.
const (
	None Action = iota
	Delay
	Abort
	Crash
	Orphan

	// Kill terminates the whole process at the point — no cleanup, no
	// panic, no deferred functions: the real SIGKILL the durability
	// harness's whitebox killpoints are built on. Fire performs the kill
	// itself (via KillProcess), so the action never returns to the caller.
	Kill

	// numActions sizes the per-action counters.
	numActions
)

func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Abort:
		return "abort"
	case Crash:
		return "crash"
	case Orphan:
		return "orphan"
	case Kill:
		return "kill"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// PointByName resolves a point name as printed by Point.String ("pre-acquire",
// "wal-fsync", ...). The bool reports whether the name is known.
func PointByName(name string) (Point, bool) {
	for p := Point(0); p < NumPoints; p++ {
		if pointNames[p] == name {
			return p, true
		}
	}
	return 0, false
}

// KillProcess is how a Kill action terminates the process. It sends the
// process SIGKILL (so no deferred cleanup, no exit handlers — the honest
// model of a machine losing power as far as the Go runtime can fake it) and
// falls back to an immediate exit if the signal cannot be delivered. Tests
// that count kill firings without dying may swap it out.
var KillProcess = func() {
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		_ = p.Kill()
		time.Sleep(time.Second) // the signal is asynchronous; never resume
	}
	os.Exit(137)
}

// CrashError is the panic value raised at a Crash injection. It unwinds
// through the runtime's cleanup (which releases every owned record first)
// to the Atomic caller.
type CrashError struct {
	Point Point
	Txn   uint64
}

func (c CrashError) Error() string {
	return fmt.Sprintf("faultinject: injected crash at %v (txn %d)", c.Point, c.Txn)
}

// OrphanError is the panic value raised at an Orphan injection. Unlike
// CrashError nothing is cleaned up first: the descriptor is marked dead and
// abandoned with its records still Exclusive. Waiters stay blocked until the
// reaper (or a stealing waiter) reclaims them.
type OrphanError struct {
	Point Point
	Txn   uint64
}

func (o OrphanError) Error() string {
	return fmt.Sprintf("faultinject: goroutine orphaned at %v (txn %d, records left held)", o.Point, o.Txn)
}

// Rule arms one injection point. A rule fires on an arrival if the
// periodic selector matches (Every) or the seeded hash selects it (Rate);
// with both zero the rule fires on every arrival.
type Rule struct {
	Point  Point
	Action Action

	// Every fires on arrivals 0, Every, 2·Every, ... at the point
	// (1 = every arrival). Zero defers to Rate.
	Every uint64

	// Rate fires a seeded-pseudorandom fraction of arrivals, in
	// 1/1024ths (Rate=512 ≈ half). Ignored when Every is set.
	Rate uint64

	// Sleep is the Delay action's duration; zero means 50µs.
	Sleep time.Duration
}

// DefaultSleep is the Delay action's duration when Rule.Sleep is zero.
const DefaultSleep = 50 * time.Microsecond

// Injector evaluates rules at injection points. Safe for concurrent use;
// construct with New.
type Injector struct {
	seed  uint64
	rules [NumPoints][]Rule

	arrivals [NumPoints]atomic.Uint64 // arrival index per point
	fired    [NumPoints][numActions]atomic.Int64
}

// New builds an Injector from a seed and rules. Rules on the same point
// are evaluated in order; the first that fires wins the arrival.
func New(seed uint64, rules ...Rule) *Injector {
	in := &Injector{seed: seed}
	for _, r := range rules {
		if r.Point >= NumPoints {
			panic(fmt.Sprintf("faultinject: invalid point %d", r.Point))
		}
		in.rules[r.Point] = append(in.rules[r.Point], r)
	}
	return in
}

// splitmix64 is the SplitMix64 output function: a bijective mix whose
// low bits are uniform, keyed here by seed and arrival index.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fire evaluates the point's rules against this arrival and performs any
// Delay itself; the caller maps Abort and Crash onto its own abort/cleanup
// machinery (only the runtime knows how to roll back from each stage).
// With no rule armed on the point it costs one atomic add.
func (in *Injector) Fire(p Point, txID uint64) Action {
	n := in.arrivals[p].Add(1) - 1
	rules := in.rules[p]
	if len(rules) == 0 {
		return None
	}
	for _, r := range rules {
		fire := false
		switch {
		case r.Every > 0:
			fire = n%r.Every == 0
		case r.Rate > 0:
			fire = splitmix64(in.seed^uint64(p)<<32^n)&1023 < r.Rate
		default:
			fire = true
		}
		if !fire {
			continue
		}
		in.fired[p][r.Action].Add(1)
		if r.Action == Kill {
			KillProcess()
			return Kill // unreachable unless KillProcess is stubbed out
		}
		if r.Action == Delay {
			d := r.Sleep
			if d <= 0 {
				d = DefaultSleep
			}
			time.Sleep(d)
			return Delay
		}
		return r.Action
	}
	return None
}

// Arrivals returns how many times point p has been reached.
func (in *Injector) Arrivals(p Point) uint64 { return in.arrivals[p].Load() }

// Fired returns how many times action a has fired at point p.
func (in *Injector) Fired(p Point, a Action) int64 { return in.fired[p][a].Load() }

// TotalFired sums every non-None firing across all points.
func (in *Injector) TotalFired() int64 {
	var t int64
	for p := Point(0); p < NumPoints; p++ {
		for a := Delay; a < numActions; a++ {
			t += in.fired[p][a].Load()
		}
	}
	return t
}
