package faultinject

import (
	"testing"
	"time"
)

func TestEveryFiresPeriodically(t *testing.T) {
	in := New(1, Rule{Point: PreAcquire, Action: Abort, Every: 3})
	var got []Action
	for i := 0; i < 9; i++ {
		got = append(got, in.Fire(PreAcquire, 7))
	}
	for i, a := range got {
		want := None
		if i%3 == 0 {
			want = Abort
		}
		if a != want {
			t.Errorf("arrival %d: got %v, want %v", i, a, want)
		}
	}
	if in.Arrivals(PreAcquire) != 9 {
		t.Errorf("arrivals = %d, want 9", in.Arrivals(PreAcquire))
	}
	if in.Fired(PreAcquire, Abort) != 3 {
		t.Errorf("fired = %d, want 3", in.Fired(PreAcquire, Abort))
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed uint64) []Action {
		in := New(seed, Rule{Point: PreValidate, Action: Abort, Rate: 512})
		out := make([]Action, 256)
		for i := range out {
			out[i] = in.Fire(PreValidate, 1)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical 256-arrival patterns")
	}
	// Rate=512 of 1024 should land near half; allow a broad band.
	fired := 0
	for _, x := range a {
		if x == Abort {
			fired++
		}
	}
	if fired < 64 || fired > 192 {
		t.Errorf("rate 512/1024 fired %d/256 arrivals, expected roughly half", fired)
	}
}

func TestUnarmedPointIsNone(t *testing.T) {
	in := New(0, Rule{Point: PreAcquire, Action: Crash})
	if a := in.Fire(PostCommitPoint, 1); a != None {
		t.Fatalf("unarmed point fired %v", a)
	}
	if in.TotalFired() != 0 {
		t.Fatalf("TotalFired = %d, want 0", in.TotalFired())
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	in := New(0,
		Rule{Point: PreRelease, Action: Abort, Every: 2},
		Rule{Point: PreRelease, Action: Crash}) // always fires when reached
	if a := in.Fire(PreRelease, 1); a != Abort {
		t.Fatalf("arrival 0: got %v, want Abort (first rule)", a)
	}
	if a := in.Fire(PreRelease, 1); a != Crash {
		t.Fatalf("arrival 1: got %v, want Crash (second rule)", a)
	}
}

func TestDelayPerformsSleep(t *testing.T) {
	in := New(0, Rule{Point: PostAcquire, Action: Delay, Sleep: 2 * time.Millisecond})
	start := time.Now()
	if a := in.Fire(PostAcquire, 1); a != Delay {
		t.Fatalf("got %v, want Delay", a)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("Delay slept %v, want >= 2ms", d)
	}
}

func TestOrphanFiresAndCounts(t *testing.T) {
	in := New(0, Rule{Point: PostCommitPoint, Action: Orphan, Every: 2})
	if a := in.Fire(PostCommitPoint, 1); a != Orphan {
		t.Fatalf("arrival 0: got %v, want Orphan", a)
	}
	if a := in.Fire(PostCommitPoint, 1); a != None {
		t.Fatalf("arrival 1: got %v, want None", a)
	}
	if in.Fired(PostCommitPoint, Orphan) != 1 {
		t.Fatalf("fired = %d, want 1", in.Fired(PostCommitPoint, Orphan))
	}
	if in.TotalFired() != 1 {
		t.Fatalf("TotalFired = %d, want 1", in.TotalFired())
	}
	if Orphan.String() != "orphan" {
		t.Fatalf("Orphan.String() = %q", Orphan.String())
	}
	e := OrphanError{Point: PostCommitPoint, Txn: 9}
	if e.Error() == "" || e.Point != PostCommitPoint {
		t.Fatalf("bad OrphanError: %v", e)
	}
}

func TestInvalidPointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New with invalid point should panic")
		}
	}()
	New(0, Rule{Point: NumPoints, Action: Abort})
}
