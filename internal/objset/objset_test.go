package objset

import (
	"testing"

	"repro/internal/objmodel"
)

func testObjects(t *testing.T, n int) []*objmodel.Object {
	t.Helper()
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "C",
		Fields: []objmodel.Field{{Name: "f"}},
	})
	objs := make([]*objmodel.Object, n)
	for i := range objs {
		objs[i] = h.New(cls)
	}
	return objs
}

func TestInlinePutGetUpdate(t *testing.T) {
	objs := testObjects(t, inlineSize)
	var s VerSet
	for i, o := range objs {
		s.Put(o, uint64(i))
	}
	if s.Len() != inlineSize {
		t.Fatalf("Len = %d, want %d", s.Len(), inlineSize)
	}
	if s.spilled {
		t.Fatal("spilled at exactly inlineSize entries")
	}
	for i, o := range objs {
		v, ok := s.Get(o)
		if !ok || v != uint64(i) {
			t.Errorf("Get(objs[%d]) = %d,%v, want %d,true", i, v, ok, i)
		}
	}
	s.Put(objs[3], 99)
	if v, _ := s.Get(objs[3]); v != 99 {
		t.Errorf("after update Get = %d, want 99", v)
	}
	if s.Len() != inlineSize {
		t.Errorf("update changed Len to %d", s.Len())
	}
}

func TestSpillAndPromote(t *testing.T) {
	objs := testObjects(t, inlineSize*3)
	var s VerSet
	for i, o := range objs {
		s.Put(o, uint64(i))
	}
	if !s.spilled {
		t.Fatal("did not spill past inlineSize entries")
	}
	if s.Len() != len(objs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(objs))
	}
	for i, o := range objs {
		if v, ok := s.Get(o); !ok || v != uint64(i) {
			t.Errorf("Get(objs[%d]) = %d,%v after spill", i, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	for _, n := range []int{inlineSize, inlineSize * 2} {
		objs := testObjects(t, n)
		var s VerSet
		for i, o := range objs {
			s.Put(o, uint64(i))
		}
		s.Delete(objs[0])
		s.Delete(objs[n/2])
		if s.Len() != n-2 {
			t.Errorf("n=%d: Len = %d after two deletes, want %d", n, s.Len(), n-2)
		}
		if _, ok := s.Get(objs[0]); ok {
			t.Errorf("n=%d: deleted entry still present", n)
		}
		for i, o := range objs {
			if i == 0 || i == n/2 {
				continue
			}
			if v, ok := s.Get(o); !ok || v != uint64(i) {
				t.Errorf("n=%d: survivor objs[%d] = %d,%v", n, i, v, ok)
			}
		}
		// Deleting an absent key is a no-op.
		s.Delete(objs[0])
		if s.Len() != n-2 {
			t.Errorf("n=%d: delete of absent key changed Len", n)
		}
	}
}

func TestRange(t *testing.T) {
	objs := testObjects(t, inlineSize+4)
	var s VerSet
	want := make(map[*objmodel.Object]uint64)
	for i, o := range objs {
		s.Put(o, uint64(i))
		want[o] = uint64(i)
	}
	got := make(map[*objmodel.Object]uint64)
	s.Range(func(o *objmodel.Object, v uint64) bool {
		got[o] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for o, v := range want {
		if got[o] != v {
			t.Errorf("Range saw %d for an entry, want %d", got[o], v)
		}
	}
	// Early termination.
	count := 0
	s.Range(func(*objmodel.Object, uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early-terminated Range visited %d, want 3", count)
	}
}

func TestResetReturnsToInline(t *testing.T) {
	objs := testObjects(t, inlineSize*2)
	var s VerSet
	for i, o := range objs {
		s.Put(o, uint64(i))
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", s.Len())
	}
	if s.spilled {
		t.Fatal("still spilled after Reset")
	}
	for i := range s.keys {
		if s.keys[i] != nil {
			t.Fatalf("inline slot %d not cleared by Reset", i)
		}
	}
	// Refill within inline capacity: must not consult the stale map.
	for i := 0; i < inlineSize; i++ {
		s.Put(objs[i], uint64(100+i))
	}
	if s.spilled {
		t.Error("refill within inline capacity spilled")
	}
	for i := 0; i < inlineSize; i++ {
		if v, ok := s.Get(objs[i]); !ok || v != uint64(100+i) {
			t.Errorf("after reset+refill Get(objs[%d]) = %d,%v", i, v, ok)
		}
	}
	if _, ok := s.Get(objs[inlineSize]); ok {
		t.Error("entry from before Reset leaked through the retained map")
	}
}
