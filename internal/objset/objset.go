// Package objset provides a small object→version map with an inline-array
// fast path for the STM runtimes' read and owned sets.
//
// Profiling of the Section 7 workloads shows most transactions touch only a
// handful of distinct objects, so a Go map per transaction pays its
// allocation, hashing, and cache-miss costs for nothing. A VerSet stores up
// to inlineSize entries in fixed arrays inside the descriptor (linear scan,
// no allocation, no hashing) and promotes to a real map only when a
// transaction's footprint exceeds that — and once a descriptor has paid for
// the spill map it keeps it across resets, so pooled descriptors stay
// allocation-free in steady state.
package objset

import "repro/internal/objmodel"

// inlineSize is the footprint up to which entries stay in the inline
// arrays. Eight covers the overwhelming majority of transactions in the
// paper's workloads while keeping the linear probe within one or two cache
// lines.
const inlineSize = 8

// VerSet maps *objmodel.Object to a uint64 version. The zero value is an
// empty set ready for use. Not safe for concurrent mutation; the STM
// descriptors that embed it are goroutine-confined.
type VerSet struct {
	keys [inlineSize]*objmodel.Object
	vals [inlineSize]uint64
	n    int
	// m holds the entries once spilled (authoritative iff spilled). It is
	// retained, empty, across Reset so promotion is a one-time cost per
	// descriptor.
	m       map[*objmodel.Object]uint64
	spilled bool
}

// Len returns the number of entries.
func (s *VerSet) Len() int {
	if s.spilled {
		return len(s.m)
	}
	return s.n
}

// Get returns the version stored for o.
func (s *VerSet) Get(o *objmodel.Object) (uint64, bool) {
	if s.spilled {
		v, ok := s.m[o]
		return v, ok
	}
	for i := 0; i < s.n; i++ {
		if s.keys[i] == o {
			return s.vals[i], true
		}
	}
	return 0, false
}

// Put inserts or updates o's version.
func (s *VerSet) Put(o *objmodel.Object, v uint64) {
	if s.spilled {
		s.m[o] = v
		return
	}
	for i := 0; i < s.n; i++ {
		if s.keys[i] == o {
			s.vals[i] = v
			return
		}
	}
	if s.n < inlineSize {
		s.keys[s.n] = o
		s.vals[s.n] = v
		s.n++
		return
	}
	s.spill()
	s.m[o] = v
}

// spill migrates the inline entries into the map.
func (s *VerSet) spill() {
	if s.m == nil {
		s.m = make(map[*objmodel.Object]uint64, 2*inlineSize)
	}
	for i := 0; i < s.n; i++ {
		s.m[s.keys[i]] = s.vals[i]
		s.keys[i] = nil
	}
	s.n = 0
	s.spilled = true
}

// Delete removes o if present.
func (s *VerSet) Delete(o *objmodel.Object) {
	if s.spilled {
		delete(s.m, o)
		return
	}
	for i := 0; i < s.n; i++ {
		if s.keys[i] == o {
			s.n--
			s.keys[i] = s.keys[s.n]
			s.vals[i] = s.vals[s.n]
			s.keys[s.n] = nil
			return
		}
	}
}

// Range calls f for each entry until f returns false. Iteration order is
// unspecified.
func (s *VerSet) Range(f func(*objmodel.Object, uint64) bool) {
	if s.spilled {
		for o, v := range s.m {
			if !f(o, v) {
				return
			}
		}
		return
	}
	for i := 0; i < s.n; i++ {
		if !f(s.keys[i], s.vals[i]) {
			return
		}
	}
}

// Reset empties the set. Inline object pointers are cleared so a pooled
// descriptor does not pin dead objects; the spill map, if any, is cleared
// but kept allocated for reuse.
func (s *VerSet) Reset() {
	if s.spilled {
		clear(s.m)
		s.spilled = false
	}
	for i := 0; i < s.n; i++ {
		s.keys[i] = nil
	}
	s.n = 0
}
