package strong_test

import (
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis/oracle"
	"repro/internal/elide"
	"repro/internal/objmodel"
	"repro/internal/strong"
)

// siteBelow builds a manifest site for an allocation `delta` lines below
// the caller (external-test twin of manifest_test.go's allocSite).
func siteBelow(delta int, class string) elide.Site {
	_, file, line, _ := runtime.Caller(1)
	base := filepath.Base(file)
	return elide.Site{ID: elide.SiteID(base, line+delta), File: base, Line: line + delta, Class: class}
}

// The Figure 10b/11 publication walk, audited end to end: a private
// two-object subgraph built through the barrier fast paths escapes into a
// public container, the walk publishes both objects, and concurrent
// goroutines then hammer them through the full barriers — with the
// soundness oracle attached and the race detector (CI runs this test under
// -race) checking that the elided paths reintroduced no violation.
func TestPublishObjectWalkUnderOracle(t *testing.T) {
	h := objmodel.NewHeap()
	cell := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Cell",
		Fields: []objmodel.Field{{Name: "f"}, {Name: "next", IsRef: true}},
	})
	orc := oracle.Attach(h, oracle.Config{})

	h.ApplyManifest(&elide.Manifest{
		Version: elide.Version, Tool: "test",
		Sites: []elide.Site{
			siteBelow(4, elide.ClassNAIT),
			siteBelow(4, elide.ClassNAIT),
		},
	})
	item := h.New(cell)
	child := h.New(cell)
	parent := h.NewPublic(cell)

	bars := strong.New(h, false)
	st := &strong.Stats{}
	bars.Stats = st
	bars.Observer = orc.BarrierObserver()

	// Build the private subgraph through the fast paths: a ref written into
	// a *private* object publishes nothing (Figure 10b fires only when the
	// container is public).
	bars.Write(child, 0, 99)
	bars.WriteRef(item, 1, child.Ref())
	if !item.IsPrivate() || !child.IsPrivate() {
		t.Fatalf("private-container writes left the private state: item=%v child=%v",
			item.IsPrivate(), child.IsPrivate())
	}
	if st.PrivateWrites.Load() < 2 {
		t.Fatalf("PrivateWrites = %d, want >= 2 (fast path not taken)", st.PrivateWrites.Load())
	}

	// Escape: the walk must publish the whole reachable subgraph, not just
	// the directly written reference.
	bars.WriteRef(parent, 1, item.Ref())
	if item.IsPrivate() {
		t.Fatalf("published item still private")
	}
	if child.IsPrivate() {
		t.Fatalf("publish walk did not reach the nested private object")
	}

	// Now public: goroutines race NT reads and writes through the barriers.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				it := h.Get(bars.ReadRef(parent, 1))
				bars.Write(it, 0, uint64(g*1000+i))
				ch := h.Get(bars.ReadRef(it, 1))
				if got := bars.Read(ch, 0); got != 99 {
					t.Errorf("nested read = %d, want 99", got)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Everything above is what the nait classification promises: no
	// transactional access ever, sharing only after publication.
	if err := orc.Err(); err != nil {
		t.Fatalf("oracle breached on a manifest-respecting run: %v", err)
	}
	if orc.Tracked() != 2 {
		t.Fatalf("Tracked = %d, want 2", orc.Tracked())
	}
}
