// Package strong implements the non-transactional read and write isolation
// barriers that give the STM strong atomicity (Sections 3.2–3.3 and
// Figure 9/10 of the paper), including the dynamic-escape-analysis variants
// and the aggregated barriers produced by the JIT optimization of
// Section 6.
//
// The barriers mirror the paper's IA32 sequences:
//
// Read barrier (Figure 9a): load the transaction record, load the slot,
// test bit 1 of the record (detects a transactional owner), and re-load the
// record to validate that no one acquired it between the two loads. On
// conflict, call the conflict handler and retry.
//
// Write barrier (Figure 9b): atomically clear bit 0 of the record ("lock
// btr"), which transitions Shared to Exclusive-anonymous; on failure call
// the conflict handler and retry. After the store, add 9 to the record,
// which restores Shared and increments the version in one atomic add.
//
// With dynamic escape analysis (Figure 10) both barriers first check for
// the Private (all ones) record and skip all synchronization; the write
// barrier additionally publishes a private object whose reference is
// written into a public object.
package strong

import (
	"sync/atomic"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/txrec"
)

// Stats counts barrier executions for the paper's experiments. All counters
// are atomic; attach a Stats only when measuring, since counting costs as
// much as the barrier fast path itself.
type Stats struct {
	Reads         atomic.Int64 // read barriers executed
	Writes        atomic.Int64 // write barriers executed
	PrivateReads  atomic.Int64 // reads satisfied by the private fast path
	PrivateWrites atomic.Int64 // writes satisfied by the private fast path
	Aggregates    atomic.Int64 // aggregated barrier acquisitions
	OrderingReads atomic.Int64 // lazy-STM ordering read barriers (§3.3)
}

// Barriers executes non-transactional accesses with isolation barriers.
type Barriers struct {
	Heap *objmodel.Heap

	// DEA enables the Figure 10 private-object fast paths and publication.
	DEA bool

	// Handler receives conflict notifications; nil means a shared Backoff.
	Handler conflict.Handler

	// Stats, when non-nil, counts barrier executions.
	Stats *Stats

	// Observer, when non-nil, is called synchronously on the accessing
	// goroutine for every completed barriered access (reads after the
	// value is validated, writes after the store). The soundness oracle
	// (internal/analysis/oracle) uses it to check the static thread-local
	// classification against actual non-transactional traffic. Leave nil
	// when measuring: the indirect call costs as much as the fast path.
	Observer func(o *objmodel.Object, slot int, write bool)
}

// elide reports whether the Figure 10 private fast paths and publication
// must be active. DEA turns them on explicitly; a loaded elision manifest
// forces them on because manifest-classified objects are born private, and
// a Private (all-ones) record reaching the generic write barrier's
// anonymous acquisition would be corrupted by its bit-0 CAS.
func (b *Barriers) elide() bool {
	return b.DEA || b.Heap.HasManifest()
}

// New returns Barriers over heap with the default backoff conflict handler.
func New(heap *objmodel.Heap, dea bool) *Barriers {
	return &Barriers{Heap: heap, DEA: dea, Handler: &conflict.Backoff{}}
}

var defaultHandler = &conflict.Backoff{}

func (b *Barriers) handle(kind conflict.Kind, attempt int, rec txrec.Word) {
	h := b.Handler
	if h == nil {
		h = defaultHandler
	}
	h.HandleConflict(conflict.Info{Kind: kind, Attempt: attempt, Record: rec})
}

// Read is the non-transactional read isolation barrier (Figure 9a, or 10a
// with DEA). It detects dirty reads in the eager-versioning STM: if a
// transaction owns the object the handler is invoked and the read retries.
func (b *Barriers) Read(o *objmodel.Object, slot int) uint64 {
	if b.Stats != nil {
		b.Stats.Reads.Add(1)
	}
	elide := b.elide()
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		v := o.LoadSlot(slot)
		if elide && txrec.IsPrivate(w) {
			// Optional explicit private check (Figure 10a): private records
			// also have bit 1 set, so the generic path below would accept
			// them too; the explicit check just skips the re-validation.
			if b.Stats != nil {
				b.Stats.PrivateReads.Add(1)
			}
			if b.Observer != nil {
				b.Observer(o, slot, false)
			}
			return v
		}
		if txrec.ConflictsWithRead(w) {
			b.handle(conflict.NonTxnRead, attempt, w)
			continue
		}
		if o.Rec.Load() != w {
			// Someone acquired (or released) the record between our two
			// loads; the value may be speculative. Retry.
			b.handle(conflict.NonTxnRead, attempt, w)
			continue
		}
		if b.Observer != nil {
			b.Observer(o, slot, false)
		}
		return v
	}
}

// ReadRef is Read for reference slots.
func (b *Barriers) ReadRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(b.Read(o, slot))
}

// ReadOrdering is the lighter read barrier a lazy-versioning STM needs
// (Section 3.3): lazy versioning never exposes dirty data, so the barrier
// only checks for a pending update by a committed transaction (record still
// exclusive during write-back) and does not re-validate after the load.
func (b *Barriers) ReadOrdering(o *objmodel.Object, slot int) uint64 {
	if b.Stats != nil {
		b.Stats.OrderingReads.Add(1)
	}
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		if txrec.ConflictsWithRead(w) {
			b.handle(conflict.NonTxnRead, attempt, w)
			continue
		}
		v := o.LoadSlot(slot)
		if b.Observer != nil {
			b.Observer(o, slot, false)
		}
		return v
	}
}

// ReadOrderingRef is ReadOrdering for reference slots.
func (b *Barriers) ReadOrderingRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(b.ReadOrdering(o, slot))
}

// Write is the non-transactional write isolation barrier (Figure 9b, or 10b
// with DEA). It acquires exclusive-anonymous ownership with an atomic
// bit-test-and-reset, performs the store, and releases by adding 9.
func (b *Barriers) Write(o *objmodel.Object, slot int, v uint64) {
	if b.Stats != nil {
		b.Stats.Writes.Add(1)
	}
	elide := b.elide()
	if elide && o.Rec.Load() == txrec.PrivateWord {
		// Private fast path (Figure 10b): the object is visible to this
		// thread only. A write of a reference into a *private* object does
		// not publish anything.
		if b.Stats != nil {
			b.Stats.PrivateWrites.Add(1)
		}
		o.StoreSlot(slot, v)
		if b.Observer != nil {
			b.Observer(o, slot, true)
		}
		return
	}
	for attempt := 0; ; attempt++ {
		prev, ok := o.Rec.AcquireAnon()
		if !ok {
			b.handle(conflict.NonTxnWrite, attempt, prev)
			continue
		}
		// Publication (Figure 10b, asterisked instructions, reference types
		// only): the container is public, so a private object being written
		// into it escapes, along with everything it reaches.
		if elide && v != 0 && o.IsRefSlot(slot) {
			b.Heap.PublishRef(objmodel.Ref(v))
		}
		o.StoreSlot(slot, v)
		// Advance the heap's commit clock BEFORE releasing: while the record
		// is Exclusive-anonymous the store is invisible to transactions (both
		// runtimes conflict-wait on an anonymous owner), and the word-level +9
		// release bumps the object's version by only 1, which can still trail
		// a concurrent transaction's clock snapshot. Ticking first guarantees
		// no transaction can read the released value and still pass the
		// single-compare validation fast path with a pre-release snapshot; the
		// stale snapshot falls back to the read-set walk that notices the bump.
		b.Heap.Clock().Tick()
		o.Rec.ReleaseAnon()
		if b.Observer != nil {
			b.Observer(o, slot, true)
		}
		return
	}
}

// WriteRef is Write for reference slots.
func (b *Barriers) WriteRef(o *objmodel.Object, slot int, r objmodel.Ref) {
	b.Write(o, slot, uint64(r))
}

// AggToken is the state carried by an aggregated barrier (Figure 14)
// between Acquire and Release.
type AggToken struct {
	private bool
}

// Acquire begins an aggregated barrier on o: it acquires the transaction
// record once so that a following run of plain loads and stores to the same
// object executes under a single acquisition, exactly the code the paper's
// JIT emits after barrier aggregation (Figure 14b). With DEA, a private
// object skips acquisition entirely.
func (b *Barriers) Acquire(o *objmodel.Object) AggToken {
	if b.Stats != nil {
		b.Stats.Aggregates.Add(1)
	}
	if b.elide() && o.Rec.Load() == txrec.PrivateWord {
		return AggToken{private: true}
	}
	for attempt := 0; ; attempt++ {
		prev, ok := o.Rec.AcquireAnon()
		if ok {
			return AggToken{}
		}
		b.handle(conflict.NonTxnWrite, attempt, prev)
	}
}

// AggWrite stores a value inside an aggregated barrier, publishing written
// references when the object is public and DEA is enabled.
func (b *Barriers) AggWrite(o *objmodel.Object, slot int, v uint64, tok AggToken) {
	if !tok.private && v != 0 && o.IsRefSlot(slot) && b.elide() {
		b.Heap.PublishRef(objmodel.Ref(v))
	}
	o.StoreSlot(slot, v)
	if b.Observer != nil {
		b.Observer(o, slot, true)
	}
}

// AggRead loads a value inside an aggregated barrier.
func (b *Barriers) AggRead(o *objmodel.Object, slot int, tok AggToken) uint64 {
	v := o.LoadSlot(slot)
	if b.Observer != nil {
		b.Observer(o, slot, false)
	}
	return v
}

// Release ends an aggregated barrier, restoring Shared and bumping the
// version ("add [a.txnfld],9").
func (b *Barriers) Release(o *objmodel.Object, tok AggToken) {
	if tok.private {
		return
	}
	// As in Write: values may have changed under the aggregated ownership, so
	// stale clock snapshots must lose their fast path — and the tick must land
	// before the release makes those values visible to transactions.
	b.Heap.Clock().Tick()
	o.Rec.ReleaseAnon()
}
