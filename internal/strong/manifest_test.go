package strong

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/elide"
	"repro/internal/objmodel"
)

// allocSite builds a manifest site for an allocation `delta` lines below
// the caller.
func allocSite(delta int, class string) elide.Site {
	_, file, line, _ := runtime.Caller(1)
	base := filepath.Base(file)
	return elide.Site{ID: elide.SiteID(base, line+delta), File: base, Line: line + delta, Class: class}
}

// A manifest-minted private object must ride the Figure 10 fast paths even
// with DEA off: the generic write barrier's anonymous acquisition would
// corrupt the all-ones record (its bit-0 CAS yields an invalid word).
func TestManifestPrivateFastPathWithDEAOff(t *testing.T) {
	h := objmodel.NewHeap() // AllocPrivate stays false: DEA off
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Cell",
		Fields: []objmodel.Field{{Name: "f"}, {Name: "next", IsRef: true}},
	})
	h.ApplyManifest(&elide.Manifest{
		Version: elide.Version, Tool: "test",
		Sites: []elide.Site{allocSite(2, elide.ClassNAIT)},
	})
	priv := h.New(cls)
	if !priv.IsPrivate() {
		t.Fatalf("manifest site not born private")
	}

	b := New(h, false)
	st := &Stats{}
	b.Stats = st

	b.Write(priv, 0, 42)
	if !priv.IsPrivate() {
		t.Fatalf("write barrier corrupted the private record: rec=%#x", priv.Rec.Load())
	}
	if got := b.Read(priv, 0); got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
	if st.PrivateWrites.Load() != 1 || st.PrivateReads.Load() != 1 {
		t.Fatalf("fast-path stats = %d writes / %d reads, want 1/1",
			st.PrivateWrites.Load(), st.PrivateReads.Load())
	}

	// Aggregated barriers must take the private shortcut too.
	tok := b.Acquire(priv)
	b.AggWrite(priv, 0, 43, tok)
	b.Release(priv, tok)
	if !priv.IsPrivate() {
		t.Fatalf("aggregated barrier corrupted the private record")
	}
}

// Writing a manifest-private object's reference into a public container
// through the NT write barrier must publish it (Figure 10b), DEA or not.
func TestManifestPublicationOnEscape(t *testing.T) {
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Cell",
		Fields: []objmodel.Field{{Name: "f"}, {Name: "next", IsRef: true}},
	})
	h.ApplyManifest(&elide.Manifest{
		Version: elide.Version, Tool: "test",
		Sites: []elide.Site{allocSite(2, elide.ClassNAIT)},
	})
	priv := h.New(cls)
	pub := h.NewPublic(cls)

	b := New(h, false)
	b.WriteRef(pub, 1, priv.Ref())
	if priv.IsPrivate() {
		t.Fatalf("escaped object still private after NT publication write")
	}
}

func TestBarrierObserverSeesAccesses(t *testing.T) {
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Cell",
		Fields: []objmodel.Field{{Name: "f"}},
	})
	o := h.NewPublic(cls)
	b := New(h, false)
	type access struct {
		slot  int
		write bool
	}
	var seen []access
	b.Observer = func(obj *objmodel.Object, slot int, write bool) {
		if obj != o {
			t.Errorf("observer saw wrong object")
		}
		seen = append(seen, access{slot, write})
	}
	b.Write(o, 0, 7)
	_ = b.Read(o, 0)
	_ = b.ReadOrdering(o, 0)
	tok := b.Acquire(o)
	b.AggWrite(o, 0, 8, tok)
	_ = b.AggRead(o, 0, tok)
	b.Release(o, tok)

	want := []access{{0, true}, {0, false}, {0, false}, {0, true}, {0, false}}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %d accesses, want %d: %+v", len(seen), len(want), seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}
