package strong

import (
	"sync"
	"testing"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/txrec"
)

func setup(t testing.TB, dea bool) (*objmodel.Heap, *objmodel.Class, *Barriers) {
	t.Helper()
	h := objmodel.NewHeap()
	h.AllocPrivate = dea
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name: "Cell",
		Fields: []objmodel.Field{
			{Name: "f"}, {Name: "g"}, {Name: "next", IsRef: true},
		},
	})
	b := New(h, dea)
	b.Stats = &Stats{}
	return h, cls, b
}

func TestReadWriteRoundTrip(t *testing.T) {
	h, cls, b := setup(t, false)
	o := h.New(cls)
	b.Write(o, 0, 17)
	if got := b.Read(o, 0); got != 17 {
		t.Errorf("read = %d, want 17", got)
	}
	w := o.Rec.Load()
	if !txrec.IsShared(w) || txrec.Version(w) != 2 {
		t.Errorf("record = %#x, want shared v2 (one write-barrier bump)", w)
	}
	if b.Stats.Reads.Load() != 1 || b.Stats.Writes.Load() != 1 {
		t.Errorf("stats = %d reads / %d writes", b.Stats.Reads.Load(), b.Stats.Writes.Load())
	}
}

func TestReadConflictsWithTxnOwner(t *testing.T) {
	h, cls, _ := setup(t, false)
	o := h.New(cls)
	b := New(h, false)
	b.Handler = &conflict.Panic{}
	// Simulate a transaction holding the record exclusively.
	o.Rec.Store(txrec.MakeExclusive(7))
	defer func() {
		if _, ok := recover().(conflict.RaceError); !ok {
			t.Error("read of transactionally-owned object did not conflict")
		}
		o.Rec.Store(txrec.MakeShared(1))
	}()
	b.Read(o, 0)
}

func TestWriteConflictsWithTxnOwner(t *testing.T) {
	h, cls, _ := setup(t, false)
	o := h.New(cls)
	b := New(h, false)
	b.Handler = &conflict.Panic{}
	o.Rec.Store(txrec.MakeExclusive(7))
	defer func() {
		if _, ok := recover().(conflict.RaceError); !ok {
			t.Error("write to transactionally-owned object did not conflict")
		}
	}()
	b.Write(o, 0, 1)
}

func TestReadDoesNotConflictWithAnonWriterHolding(t *testing.T) {
	// Per Section 3.2, the read barrier deliberately ignores conflicts
	// between two non-transactional threads (bit-1 test only).
	h, cls, b := setup(t, false)
	o := h.New(cls)
	o.Rec.Store(txrec.MakeExclusiveAnon(1))
	done := make(chan uint64, 1)
	go func() { done <- b.Read(o, 0) }()
	if got := <-done; got != 0 {
		t.Errorf("read = %d", got)
	}
	o.Rec.Store(txrec.MakeShared(2))
}

func TestWriteConflictsWithAnonWriter(t *testing.T) {
	h, cls, _ := setup(t, false)
	o := h.New(cls)
	b := New(h, false)
	b.Handler = &conflict.Panic{}
	o.Rec.Store(txrec.MakeExclusiveAnon(1))
	defer func() {
		if _, ok := recover().(conflict.RaceError); !ok {
			t.Error("write did not conflict with a concurrent non-transactional writer")
		}
	}()
	b.Write(o, 0, 5)
}

func TestOrderingReadWaitsForWriteback(t *testing.T) {
	h, cls, _ := setup(t, false)
	o := h.New(cls)
	b := New(h, false)
	b.Handler = &conflict.Panic{}
	o.Rec.Store(txrec.MakeExclusive(3)) // committed txn still writing back
	func() {
		defer func() {
			if _, ok := recover().(conflict.RaceError); !ok {
				t.Error("ordering read barrier ignored a pending write-back")
			}
		}()
		b.ReadOrdering(o, 0)
	}()
	// Once released, the read proceeds.
	o.StoreSlot(0, 9)
	o.Rec.ReleaseOwned(1)
	if got := b.ReadOrdering(o, 0); got != 9 {
		t.Errorf("ordering read = %d, want 9", got)
	}
}

func TestDEAPrivateFastPaths(t *testing.T) {
	h, cls, b := setup(t, true)
	o := h.New(cls)
	if !o.IsPrivate() {
		t.Fatal("object not private")
	}
	b.Write(o, 0, 5)
	if got := b.Read(o, 0); got != 5 {
		t.Errorf("read = %d", got)
	}
	if !o.IsPrivate() {
		t.Error("private fast-path write must not change the record")
	}
	if b.Stats.PrivateWrites.Load() != 1 || b.Stats.PrivateReads.Load() != 1 {
		t.Errorf("private fast path counters = %d/%d, want 1/1",
			b.Stats.PrivateReads.Load(), b.Stats.PrivateWrites.Load())
	}
}

// TestDEAPublishOnWriteToPublic exercises the Figure 10b publication path:
// writing a private object's reference into a public object publishes the
// whole reachable subgraph before the store becomes visible.
func TestDEAPublishOnWriteToPublic(t *testing.T) {
	h, cls, b := setup(t, true)
	pub := h.NewPublic(cls)
	priv := h.New(cls)
	child := h.New(cls)
	priv.StoreSlot(2, uint64(child.Ref()))
	b.WriteRef(pub, 2, priv.Ref())
	if priv.IsPrivate() || child.IsPrivate() {
		t.Error("written subgraph not published")
	}
	if got := b.ReadRef(pub, 2); got != priv.Ref() {
		t.Errorf("stored ref = %d, want %d", got, priv.Ref())
	}
}

func TestDEANoPublishOnWriteToPrivate(t *testing.T) {
	h, cls, b := setup(t, true)
	container := h.New(cls)
	child := h.New(cls)
	b.WriteRef(container, 2, child.Ref())
	if !child.IsPrivate() {
		t.Error("write into private container must not publish")
	}
}

func TestDEANoPublishForScalarSlots(t *testing.T) {
	h, cls, b := setup(t, true)
	pub := h.NewPublic(cls)
	other := h.New(cls)
	// Slot 0 is a scalar; writing a value that happens to equal a handle
	// must not publish anything.
	b.Write(pub, 0, uint64(other.Ref()))
	if !other.IsPrivate() {
		t.Error("scalar write published an object")
	}
}

func TestAggregatedBarrier(t *testing.T) {
	h, cls, b := setup(t, false)
	o := h.New(cls)
	tok := b.Acquire(o)
	if !txrec.IsExclusiveAnon(o.Rec.Load()) {
		t.Error("aggregate acquire did not take the record")
	}
	b.AggWrite(o, 0, 10, tok)
	v := b.AggRead(o, 0, tok)
	b.AggWrite(o, 1, v+1, tok)
	b.Release(o, tok)
	w := o.Rec.Load()
	if !txrec.IsShared(w) || txrec.Version(w) != 2 {
		t.Errorf("record = %#x, want shared v2 (single bump for whole group)", w)
	}
	if o.LoadSlot(0) != 10 || o.LoadSlot(1) != 11 {
		t.Errorf("slots = %d,%d", o.LoadSlot(0), o.LoadSlot(1))
	}
	if b.Stats.Aggregates.Load() != 1 {
		t.Errorf("aggregates = %d", b.Stats.Aggregates.Load())
	}
}

func TestAggregatedBarrierPrivate(t *testing.T) {
	h, cls, b := setup(t, true)
	o := h.New(cls)
	tok := b.Acquire(o)
	b.AggWrite(o, 0, 1, tok)
	b.Release(o, tok)
	if !o.IsPrivate() {
		t.Error("aggregate on private object must skip the record entirely")
	}
}

func TestAggregatedBarrierPublishes(t *testing.T) {
	h, cls, b := setup(t, true)
	pub := h.NewPublic(cls)
	priv := h.New(cls)
	tok := b.Acquire(pub)
	b.AggWrite(pub, 2, uint64(priv.Ref()), tok)
	b.Release(pub, tok)
	if priv.IsPrivate() {
		t.Error("aggregated ref write did not publish")
	}
}

// TestStrongAtomicityEndToEnd: concurrent transactional increments and
// barriered non-transactional increments to the same counter must compose
// with no lost updates — the intermediate-lost-update (ILU) anomaly of
// Figure 2b must not occur under strong atomicity.
func TestStrongAtomicityEndToEnd(t *testing.T) {
	h, cls, b := setup(t, false)
	rt := stm.New(h, stm.Config{})
	o := h.New(cls)
	const perSide = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			_ = rt.Atomic(nil, func(tx *stm.Txn) error {
				tx.Write(o, 0, tx.Read(o, 0)+1)
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			b.Write(o, 0, b.Read(o, 0)+1)
		}
	}()
	wg.Wait()
	if got := o.LoadSlot(0); got != 2*perSide {
		t.Errorf("counter = %d, want %d (updates lost across the txn boundary)", got, 2*perSide)
	}
}

// TestNoDirtyReads: a non-transactional reader must never observe the odd
// intermediate state of a transaction that preserves evenness — the
// intermediate-dirty-read (IDR) anomaly of Figure 2c must not occur.
func TestNoDirtyReads(t *testing.T) {
	h, cls, b := setup(t, false)
	rt := stm.New(h, stm.Config{})
	o := h.New(cls)
	stop := make(chan struct{})
	var odd int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b.Read(o, 0)%2 != 0 {
				odd++
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		_ = rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		})
	}
	close(stop)
	wg.Wait()
	if odd != 0 {
		t.Errorf("observed %d dirty (odd) reads", odd)
	}
}

func TestNilHandlerDefaults(t *testing.T) {
	h, cls, _ := setup(t, false)
	b := &Barriers{Heap: h}
	o := h.New(cls)
	o.Rec.Store(txrec.MakeExclusiveAnon(1))
	done := make(chan struct{})
	go func() {
		// Conflicting write: the nil handler must lazily default to backoff
		// rather than crash; release the record shortly after.
		b.Write(o, 0, 1)
		close(done)
	}()
	o.Rec.ReleaseAnon()
	<-done
	if got := o.LoadSlot(0); got != 1 {
		t.Errorf("slot = %d", got)
	}
}

// barrierTickOrdering checks that mutate ticks the commit clock BEFORE its
// anonymous release publishes the mutation: a watcher that observes the
// record back in Shared at a bumped version and then still reads the
// pre-mutation clock value has caught the unsound window in which a
// transaction could read the released value yet pass the single-compare
// validation fast path with a stale snapshot (sync/atomic operations are
// sequentially consistent, so a tick-after-release would make that
// interleaving possible). The window is a couple of instructions wide, so
// this is a probabilistic canary for the ordering — a failure is always a
// real regression, but a lucky run of a misordered barrier can pass — plus
// a hard assertion that every barrier ticks the clock at all.
func barrierTickOrdering(t *testing.T, mutate func(b *Barriers, o *objmodel.Object)) {
	t.Helper()
	h, cls, b := setup(t, false)
	clock := h.Clock()
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	for i := 0; i < iters; i++ {
		o := h.New(cls)
		before := clock.Load()
		violated := false
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				w := o.Rec.Load()
				if txrec.IsShared(w) && txrec.Version(w) > 1 {
					if clock.Load() == before {
						violated = true
					}
					return
				}
			}
		}()
		mutate(b, o)
		<-done
		if violated {
			t.Fatalf("iter %d: release visible while clock still at pre-write value %d", i, before)
		}
		if clock.Load() == before {
			t.Fatalf("iter %d: barrier did not tick the clock", i)
		}
	}
}

func TestWriteTicksClockBeforeRelease(t *testing.T) {
	barrierTickOrdering(t, func(b *Barriers, o *objmodel.Object) {
		b.Write(o, 0, 42)
	})
}

func TestAggReleaseTicksClockBeforeRelease(t *testing.T) {
	barrierTickOrdering(t, func(b *Barriers, o *objmodel.Object) {
		tok := b.Acquire(o)
		b.AggWrite(o, 0, 42, tok)
		b.Release(o, tok)
	})
}
