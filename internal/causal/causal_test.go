package causal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

// evStream builds trace events with monotonically increasing Seq/Unix.
type evStream struct {
	seq uint64
	evs []trace.Event
}

func (s *evStream) add(k trace.Kind, txn, obj uint64, slot int, ver uint64) trace.Event {
	s.seq++
	ev := trace.Event{Kind: k, Txn: txn, Obj: obj, Slot: slot, Ver: ver, Seq: s.seq, Unix: int64(s.seq) * 1000}
	s.evs = append(s.evs, ev)
	return ev
}

// opposedPair scripts the canonical two-writer conflict: txn 1 and txn 2
// each hold one object and want the other's; txn 2 dooms txn 1, txn 1
// aborts and retries, txn 2 commits, txn 1 commits on attempt #1.
func opposedPair() *evStream {
	s := &evStream{}
	s.add(trace.EvBegin, 1, 0, 0, 0)
	s.add(trace.EvBegin, 2, 0, 0, 0)
	s.add(trace.EvLockAcquire, 1, 10, 0, 0)
	s.add(trace.EvLockAcquire, 2, 20, 0, 0)
	s.add(trace.EvConflict, 1, 20, 0, 2) // 1 waits for 2 on obj 20
	s.add(trace.EvConflict, 2, 10, 0, 1) // 2 waits for 1 on obj 10
	s.add(trace.EvDoom, 2, 10, 0, 1)     // 2 dooms 1 over obj 10
	s.add(trace.EvAbort, 1, 10, 0, 0)    // 1 aborts, blamed on obj 10
	s.add(trace.EvWrite, 2, 10, 0, 0)
	s.add(trace.EvCommit, 2, 0, 0, 0)
	s.add(trace.EvBegin, 1, 0, 0, 0) // 1 retries
	s.add(trace.EvWrite, 1, 10, 0, 0)
	s.add(trace.EvWrite, 1, 20, 0, 0)
	s.add(trace.EvCommit, 1, 0, 0, 0)
	return s
}

func TestRecorderReconstructsOpposedPair(t *testing.T) {
	g := Build(opposedPair().evs, Config{})
	if len(g.Attempts) != 3 {
		t.Fatalf("attempts = %d, want 3 (1#0 aborted, 2#0 committed, 1#1 committed): %+v", len(g.Attempts), g.Attempts)
	}
	byRef := map[AttemptRef]Attempt{}
	for _, a := range g.Attempts {
		byRef[a.Ref()] = a
	}
	if a := byRef[AttemptRef{Txn: 1, N: 0}]; a.Outcome != Aborted || a.BlameObj != 10 {
		t.Fatalf("txn1#0 = %+v, want aborted blamed on obj 10", a)
	}
	if a := byRef[AttemptRef{Txn: 1, N: 1}]; a.Outcome != Committed {
		t.Fatalf("txn1#1 = %+v, want committed", a)
	}
	if a := byRef[AttemptRef{Txn: 2, N: 0}]; a.Outcome != Committed {
		t.Fatalf("txn2#0 = %+v, want committed", a)
	}

	kinds := map[EdgeKind]int{}
	var abortedBy *Edge
	for i, e := range g.Edges {
		kinds[e.Kind]++
		if e.Kind == AbortedBy {
			abortedBy = &g.Edges[i]
		}
	}
	if kinds[WaitsFor] != 2 {
		t.Fatalf("waits-for edges = %d, want 2 (edges: %+v)", kinds[WaitsFor], g.Edges)
	}
	if kinds[DoomedBy] != 1 || kinds[AbortedBy] != 1 {
		t.Fatalf("doomed-by=%d aborted-by=%d, want 1 each", kinds[DoomedBy], kinds[AbortedBy])
	}
	want := Edge{Kind: AbortedBy, From: AttemptRef{Txn: 1, N: 0}, To: AttemptRef{Txn: 2, N: 0}, Obj: 10}
	if abortedBy.From != want.From || abortedBy.To != want.To || abortedBy.Obj != want.Obj {
		t.Fatalf("aborted-by edge = %+v, want victim 1#0 -> killer 2#0 over obj 10", abortedBy)
	}
}

func TestRecorderValidationEdges(t *testing.T) {
	s := &evStream{}
	// txn 1 commits a write to obj 5; txn 2 then fails validation on obj 5.
	s.add(trace.EvBegin, 1, 0, 0, 0)
	s.add(trace.EvBegin, 2, 0, 0, 0)
	s.add(trace.EvWrite, 1, 5, 0, 0)
	s.add(trace.EvCommit, 1, 0, 0, 0)
	s.add(trace.EvExtend, 2, 5, 0, 7)
	s.add(trace.EvValidation, 2, 5, 0, 0)
	s.add(trace.EvAbort, 2, 5, 0, 0)
	g := Build(s.evs, Config{})
	var inval *Edge
	for i, e := range g.Edges {
		if e.Kind == InvalidatedBy {
			inval = &g.Edges[i]
		}
	}
	if inval == nil {
		t.Fatalf("no invalidated-by edge: %+v", g.Edges)
	}
	if inval.From != (AttemptRef{Txn: 2, N: 0}) || inval.To != (AttemptRef{Txn: 1, N: 0}) || inval.Obj != 5 {
		t.Fatalf("invalidated-by = %+v, want 2#0 -> last writer 1#0 over obj 5", inval)
	}
}

func TestRecorderStealClosesVictim(t *testing.T) {
	s := &evStream{}
	s.add(trace.EvBegin, 1, 0, 0, 0)
	s.add(trace.EvLockAcquire, 1, 10, 0, 0)
	s.add(trace.EvBegin, 2, 0, 0, 0)
	s.add(trace.EvSteal, 2, 10, 0, 1) // txn 2 steals obj 10 from dead txn 1
	g := Build(s.evs, Config{})
	var stolen *Edge
	for i, e := range g.Edges {
		if e.Kind == StolenFrom {
			stolen = &g.Edges[i]
		}
	}
	if stolen == nil || stolen.From.Txn != 1 || stolen.To.Txn != 2 {
		t.Fatalf("stolen-from edge = %+v, want from txn 1 to txn 2", stolen)
	}
	for _, a := range g.Attempts {
		if a.Txn == 1 && a.Outcome != Aborted {
			t.Fatalf("dead victim's attempt = %+v, want closed as aborted", a)
		}
	}
}

func TestRecorderBoundedMemory(t *testing.T) {
	cfg := Config{MaxAttempts: 16, MaxEdges: 16, MaxLive: 8, MaxObjects: 8}
	r := NewRecorder(cfg)
	var seq uint64
	emit := func(k trace.Kind, txn, obj, ver uint64) {
		seq++
		r.Observe(trace.Event{Kind: k, Txn: txn, Obj: obj, Ver: ver, Seq: seq, Unix: int64(seq)})
	}
	// 100 transactions, each: begin, conflict (edge), abort (edge), begin,
	// write, commit — far past every cap. Leave every 4th open to pressure
	// the live table.
	for i := uint64(1); i <= 100; i++ {
		emit(trace.EvBegin, i, 0, 0)
		emit(trace.EvConflict, i, i%10+1, i+1)
		emit(trace.EvAbort, i, i%10+1, 0)
		emit(trace.EvBegin, i, 0, 0)
		emit(trace.EvWrite, i, i%20+1, 0)
		if i%4 != 0 {
			emit(trace.EvCommit, i, 0, 0)
		}
	}
	r.mu.Lock()
	nAttempts, nEdges, nLive, nWriters := len(r.attempts), len(r.edges), len(r.live), len(r.lastWriter)
	r.mu.Unlock()
	if nAttempts > cfg.MaxAttempts {
		t.Fatalf("attempts ring grew to %d > cap %d", nAttempts, cfg.MaxAttempts)
	}
	if nEdges > cfg.MaxEdges {
		t.Fatalf("edge ring grew to %d > cap %d", nEdges, cfg.MaxEdges)
	}
	if nLive > cfg.MaxLive {
		t.Fatalf("live table grew to %d > cap %d", nLive, cfg.MaxLive)
	}
	if nWriters > cfg.MaxObjects {
		t.Fatalf("last-writer table grew to %d > cap %d", nWriters, cfg.MaxObjects)
	}
	g := r.Graph()
	if g.DroppedAttempts == 0 || g.DroppedEdges == 0 {
		t.Fatalf("expected ring eviction to be reported: dropped attempts=%d edges=%d", g.DroppedAttempts, g.DroppedEdges)
	}
	ls := r.Live()
	if ls.EvictedLive == 0 {
		t.Fatalf("expected live-table eviction, got %+v", ls)
	}
}

func TestAnalyzeStarvationChain(t *testing.T) {
	s := &evStream{}
	// Cascade: txn 1 aborted by txn 2; txn 2's same attempt later aborted
	// by txn 3; txn 3 commits. Chain depth from 1's attempt should be 2.
	s.add(trace.EvBegin, 1, 0, 0, 0)
	s.add(trace.EvBegin, 2, 0, 0, 0)
	s.add(trace.EvBegin, 3, 0, 0, 0)
	s.add(trace.EvDoom, 2, 10, 0, 1)
	s.add(trace.EvAbort, 1, 10, 0, 0)
	s.add(trace.EvDoom, 3, 20, 0, 2)
	s.add(trace.EvAbort, 2, 20, 0, 0)
	s.add(trace.EvWrite, 3, 20, 0, 0)
	s.add(trace.EvCommit, 3, 0, 0, 0)
	// txn 1 and 2 retry and abort again (consecutive aborts), then commit.
	s.add(trace.EvBegin, 1, 0, 0, 0)
	s.add(trace.EvAbort, 1, 10, 0, 0)
	s.add(trace.EvBegin, 1, 0, 0, 0)
	s.add(trace.EvAbort, 1, 10, 0, 0)
	s.add(trace.EvBegin, 1, 0, 0, 0)
	s.add(trace.EvCommit, 1, 0, 0, 0)
	g := Build(s.evs, Config{})
	rep := Analyze(g)

	if rep.LongestChainDepth != 2 {
		t.Fatalf("longest chain depth = %d, want 2 (chains: %v, edges %+v)", rep.LongestChainDepth, rep.ChainDepths, g.Edges)
	}
	if len(rep.LongestChain) != 3 || rep.LongestChain[0].Txn != 1 || rep.LongestChain[1].Txn != 2 || rep.LongestChain[2].Txn != 3 {
		t.Fatalf("longest chain = %+v, want 1 -> 2 -> 3", rep.LongestChain)
	}
	if rep.MaxConsecutiveAborts != 3 || rep.MaxConsecutiveTxn != 1 {
		t.Fatalf("max consecutive aborts = %d by txn %d, want 3 by txn 1", rep.MaxConsecutiveAborts, rep.MaxConsecutiveTxn)
	}
	if rep.Commits != 2 || rep.Aborts != 4 {
		t.Fatalf("commits=%d aborts=%d, want 2/4", rep.Commits, rep.Aborts)
	}
	if rep.WastedWorkRatio <= 0 || rep.WastedWorkRatio >= 1 {
		t.Fatalf("wasted work ratio = %v, want in (0,1)", rep.WastedWorkRatio)
	}
	if len(rep.TopStarved) == 0 || rep.TopStarved[0].Txn != 1 {
		t.Fatalf("top starved = %+v, want txn 1 first", rep.TopStarved)
	}
	if len(rep.Dominance) == 0 || rep.Dominance[0].Obj != 10 {
		t.Fatalf("dominance = %+v, want obj 10 first", rep.Dominance)
	}
}

// TestPerfettoSchema checks the exporter against the Chrome trace-event
// contract: a traceEvents array whose entries carry name/ph/ts/pid/tid,
// "X" slices with dur, and matched "s"/"f" flow pairs — including at
// least one aborted-by flow for the opposed-pair script.
func TestPerfettoSchema(t *testing.T) {
	g := Build(opposedPair().evs, Config{})
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, g); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	slices, flowStarts, flowEnds := 0, map[any]string{}, map[any]string{}
	abortedByFlow := false
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["name"]; !ok {
			t.Fatalf("event missing name: %v", ev)
		}
		switch ph {
		case "X":
			slices++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("X slice missing dur: %v", ev)
			}
			for _, k := range []string{"ts", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("X slice missing %s: %v", k, ev)
				}
			}
		case "s":
			flowStarts[ev["id"]] = ev["cat"].(string)
		case "f":
			flowEnds[ev["id"]] = ev["cat"].(string)
			if ev["cat"] == "aborted-by" {
				abortedByFlow = true
			}
			if bp, _ := ev["bp"].(string); bp != "e" {
				t.Fatalf("flow end without bp=e: %v", ev)
			}
		case "M", "i":
		default:
			t.Fatalf("unexpected phase %q: %v", ph, ev)
		}
	}
	if slices != 3 {
		t.Fatalf("slices = %d, want 3 attempts", slices)
	}
	if len(flowStarts) == 0 || len(flowStarts) != len(flowEnds) {
		t.Fatalf("unmatched flows: starts=%v ends=%v", flowStarts, flowEnds)
	}
	for id, cat := range flowStarts {
		if flowEnds[id] != cat {
			t.Fatalf("flow %v: start cat %q != end cat %q", id, cat, flowEnds[id])
		}
	}
	if !abortedByFlow {
		t.Fatal("no aborted-by flow edge in export")
	}
}

func TestPerfettoLanesSeparateOverlappingTxns(t *testing.T) {
	g := Build(opposedPair().evs, Config{})
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, g); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tidOf := map[float64]float64{} // txn -> tid
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		args := ev["args"].(map[string]any)
		tidOf[args["txn"].(float64)] = ev["tid"].(float64)
	}
	// Txns 1 and 2 overlap in time, so they must land on different lanes.
	if tidOf[1] == tidOf[2] {
		t.Fatalf("overlapping txns share lane %v", tidOf)
	}
}

func TestDOTExport(t *testing.T) {
	g := Build(opposedPair().evs, Config{})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph conflicts", "t1_a0", "t2_a0", "aborted-by", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("DOT output not closed:\n%s", out)
	}
}

func TestLiveSnapshotWaitChain(t *testing.T) {
	r := NewRecorder(Config{})
	var seq uint64
	emit := func(k trace.Kind, txn, obj, ver uint64) {
		seq++
		r.Observe(trace.Event{Kind: k, Txn: txn, Obj: obj, Ver: ver, Seq: seq, Unix: int64(seq)})
	}
	// 1 waits on 2, 2 waits on 3, 3 runs free: chain of depth 2 from 1.
	emit(trace.EvBegin, 1, 0, 0)
	emit(trace.EvBegin, 2, 0, 0)
	emit(trace.EvBegin, 3, 0, 0)
	emit(trace.EvConflict, 1, 10, 2)
	emit(trace.EvConflict, 2, 20, 3)
	ls := r.Live()
	if ls.ActiveWaits != 2 {
		t.Fatalf("active waits = %d, want 2", ls.ActiveWaits)
	}
	if ls.LongestChain != 2 {
		t.Fatalf("longest chain = %d, want 2", ls.LongestChain)
	}
	// 3 commits, 2 progresses: waits drain.
	emit(trace.EvWrite, 2, 20, 0)
	emit(trace.EvCommit, 3, 0, 0)
	emit(trace.EvCommit, 2, 0, 0)
	if ls := r.Live(); ls.ActiveWaits != 1 {
		t.Fatalf("active waits after drain = %d, want 1 (only txn 1)", ls.ActiveWaits)
	}
}

func TestBuildToleratesClippedStream(t *testing.T) {
	// Stream starting mid-flight (ring dropped the begins): events must
	// still produce attempts, not panic or leak.
	s := &evStream{}
	s.add(trace.EvConflict, 7, 10, 0, 8)
	s.add(trace.EvAbort, 7, 10, 0, 0)
	s.add(trace.EvCommit, 8, 0, 0, 0)
	g := Build(s.evs, Config{})
	if len(g.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want synthesized attempts for txns 7 and 8", g.Attempts)
	}
}
