// Package causal is the STM's flight recorder: it consumes the
// trace.Tracer event stream (as a trace.Sink, or offline via Build) and
// reconstructs the *causal structure* the flat stream only implies —
// per-transaction attempt spans linked by typed edges recording which
// transaction waited on, aborted, doomed, stole from, or invalidated
// which, over which object.
//
// The paper's isolation argument is entirely about ordering between
// conflicting accesses; the recorder makes that ordering a first-class
// artifact. Attempts and edges live in fixed-size rings (old entries are
// overwritten, never blocking the recorder), and per-transaction live
// state is capped with eviction, so memory stays bounded no matter how
// long the traced run is.
//
// Three consumers sit on top:
//
//   - exporters (perfetto.go, dot.go) render the DAG as a Chrome
//     trace-event / Perfetto timeline with flow arrows for causal edges,
//     or as a Graphviz conflict graph;
//   - the starvation analyzer (starve.go) walks abort chains for longest
//     victim chains, max consecutive aborts, wasted work, and per-object
//     dominance;
//   - Live() summarizes the in-flight picture (active waits, longest
//     current wait chain, wasted-work ratio) for /metrics and stmtop.
package causal

import (
	"sort"
	"sync"

	"repro/internal/trace"
)

// EdgeKind types a causal edge.
type EdgeKind uint8

// Edge kinds. From is always the affected transaction's attempt (the
// waiter or victim); To is the cause (the owner, killer, or invalidating
// writer), and may be unknown (zero AttemptRef).
const (
	WaitsFor      EdgeKind = iota // From waits on Obj held by To
	AbortedBy                     // From's attempt died; To held or took Obj
	DoomedBy                      // To's contention policy doomed From over Obj
	StolenFrom                    // To (a reaper or waiter) reclaimed dead From's records
	InvalidatedBy                 // From failed commit-clock validation on Obj last written by To
	numEdgeKinds
)

var edgeKindNames = [numEdgeKinds]string{
	"waits-for", "aborted-by", "doomed-by", "stolen-from", "invalidated-by",
}

// String returns the edge kind's wire name.
func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return "unknown"
}

// AttemptRef names one attempt of one transaction. The zero value means
// "unknown attempt" (an edge endpoint the recorder could not resolve,
// e.g. because the peer's events were evicted).
type AttemptRef struct {
	Txn uint64 `json:"txn"`
	N   int    `json:"n"` // attempt number within the transaction, 0-based
}

// Known reports whether the ref names a real attempt.
func (r AttemptRef) Known() bool { return r.Txn != 0 }

// Outcome is how an attempt ended.
type Outcome uint8

// Attempt outcomes.
const (
	Running Outcome = iota // still open when the graph was captured
	Committed
	Aborted
)

var outcomeNames = [...]string{"running", "committed", "aborted"}

// String returns the outcome's wire name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Attempt is one attempt span of one transaction: begin (or first
// observed event) to commit/abort.
type Attempt struct {
	Txn      uint64  `json:"txn"`
	N        int     `json:"n"`
	StartSeq uint64  `json:"start_seq"`
	EndSeq   uint64  `json:"end_seq,omitempty"` // 0 while running
	StartNS  int64   `json:"start_ns"`
	EndNS    int64   `json:"end_ns,omitempty"`
	Outcome  Outcome `json:"outcome"`
	BlameObj uint64  `json:"blame_obj,omitempty"` // aborted: the blamed object
}

// Ref returns the attempt's reference.
func (a Attempt) Ref() AttemptRef { return AttemptRef{Txn: a.Txn, N: a.N} }

// Edge is one typed causal edge between attempts.
type Edge struct {
	Kind EdgeKind   `json:"kind"`
	From AttemptRef `json:"from"`
	To   AttemptRef `json:"to,omitempty"` // zero = cause unknown
	Obj  uint64     `json:"obj,omitempty"`
	Seq  uint64     `json:"seq"`
	NS   int64      `json:"ns"`
}

// Config bounds the recorder's memory. Zero fields take defaults.
type Config struct {
	MaxAttempts int // closed-attempt ring capacity (default 8192)
	MaxEdges    int // edge ring capacity (default 16384)
	MaxLive     int // live per-transaction states (default 1024)
	MaxObjects  int // last-writer table entries (default 4096)
}

// Defaults for Config's zero fields.
const (
	DefaultMaxAttempts = 8192
	DefaultMaxEdges    = 16384
	DefaultMaxLive     = 1024
	DefaultMaxObjects  = 4096
)

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = DefaultMaxEdges
	}
	if c.MaxLive <= 0 {
		c.MaxLive = DefaultMaxLive
	}
	if c.MaxObjects <= 0 {
		c.MaxObjects = DefaultMaxObjects
	}
	return c
}

// txnState is the recorder's per-live-transaction working state. One
// transaction ID spans all retry attempts of one atomic block (IDs are
// assigned per top-level Atomic), so consecutive-abort counting is per ID.
type txnState struct {
	txn     uint64
	begins  int // attempts started (next attempt number)
	n       int // current attempt number
	open    bool
	start   trace.Event // the begin (or first observed) event of the open attempt
	lastSeq uint64      // most recent activity, for LRU-ish eviction

	consecAborts int

	// active wait (most recent conflict probe without progress since)
	waiting   bool
	waitObj   uint64
	waitOwner uint64 // owning txn ID, 0 = anonymous/unknown

	// pending abort cause, set by doom/self-abort/validation before EvAbort
	causeSet  bool
	causeKind EdgeKind
	causeObj  uint64
	causeTo   AttemptRef

	// objects written or acquired this attempt, for the last-writer table
	touched []uint64
}

// maxTouched caps the per-attempt written-object list; beyond it the
// last-writer table just misses (an attribution, not a correctness, loss).
const maxTouched = 32

// Recorder consumes trace events and maintains the bounded conflict DAG.
// It implements trace.Sink; all methods are safe for concurrent use.
//
// A single mutex serializes Observe. That is deliberate: the recorder is
// an *enabled-tracing* feature, events arrive already serialized by the
// tracer's global Seq stamp, and a lock-free design would buy throughput
// the traced path cannot use while costing ordering guarantees the DAG
// depends on.
type Recorder struct {
	mu  sync.Mutex
	cfg Config

	attempts   []Attempt // ring of closed attempts
	attTotal   uint64    // attempts ever closed
	edges      []Edge    // ring of edges
	edgeTotal  uint64    // edges ever emitted
	byEdgeKind [numEdgeKinds]int64

	live       map[uint64]*txnState
	lastWriter map[uint64]AttemptRef // object -> last committed writer attempt

	// aggregates (whole run, unaffected by ring eviction)
	commits, aborts int64
	committedNS     int64
	abortedNS       int64
	extensions      int64
	maxConsecAborts int
	maxConsecTxn    uint64
	evictedLive     int64
	evictedWriters  int64
	observedEvents  int64
}

// NewRecorder returns a Recorder with the given bounds.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:        cfg,
		attempts:   make([]Attempt, 0, cfg.MaxAttempts),
		edges:      make([]Edge, 0, cfg.MaxEdges),
		live:       make(map[uint64]*txnState),
		lastWriter: make(map[uint64]AttemptRef),
	}
}

// Observe consumes one trace event (trace.Sink).
func (r *Recorder) Observe(ev trace.Event) {
	r.mu.Lock()
	r.observe(ev)
	r.mu.Unlock()
}

func (r *Recorder) observe(ev trace.Event) {
	r.observedEvents++
	switch ev.Kind {
	case trace.EvBegin:
		s := r.state(ev.Txn, ev)
		if s.open {
			// A begin with the previous attempt still open means we missed
			// its terminal event (ring drop); close it as aborted.
			r.closeAttempt(s, ev.Seq, ev.Unix, Aborted, 0)
		}
		r.openAttempt(s, ev)

	case trace.EvConflict:
		s := r.ensureOpen(ev)
		owner := ev.Ver
		if !s.waiting || s.waitObj != ev.Obj || s.waitOwner != owner {
			s.waiting, s.waitObj, s.waitOwner = true, ev.Obj, owner
			r.addEdge(Edge{
				Kind: WaitsFor, From: s.ref(), To: r.refOf(owner),
				Obj: ev.Obj, Seq: ev.Seq, NS: ev.Unix,
			})
		}
		s.lastSeq = ev.Seq

	case trace.EvRead, trace.EvWrite, trace.EvLockAcquire:
		s := r.ensureOpen(ev)
		s.waiting = false // progress: the wait resolved
		if ev.Kind != trace.EvRead && ev.Obj != 0 && len(s.touched) < maxTouched {
			s.touched = append(s.touched, ev.Obj)
		}
		s.lastSeq = ev.Seq

	case trace.EvSelfAbort:
		// The contention policy decided SelfAbort over ev.Obj; the owner we
		// were waiting on (if it is the same object) is the cause.
		s := r.ensureOpen(ev)
		s.causeSet, s.causeKind, s.causeObj = true, AbortedBy, ev.Obj
		if s.waiting && s.waitObj == ev.Obj {
			s.causeTo = r.refOf(s.waitOwner)
		} else {
			s.causeTo = AttemptRef{}
		}
		s.lastSeq = ev.Seq

	case trace.EvDoom:
		// ev.Txn doomed victim ev.Ver over ev.Obj.
		killer := r.ensureOpen(ev)
		killer.lastSeq = ev.Seq
		if victim, ok := r.live[ev.Ver]; ok && victim.open {
			r.addEdge(Edge{
				Kind: DoomedBy, From: victim.ref(), To: killer.ref(),
				Obj: ev.Obj, Seq: ev.Seq, NS: ev.Unix,
			})
			victim.causeSet, victim.causeKind = true, AbortedBy
			victim.causeObj, victim.causeTo = ev.Obj, killer.ref()
		}

	case trace.EvValidation:
		// Commit-clock validation failed on ev.Obj: the cause is whoever
		// committed a write to it last (if the table still knows).
		s := r.ensureOpen(ev)
		s.causeSet, s.causeKind, s.causeObj = true, InvalidatedBy, ev.Obj
		s.causeTo = r.lastWriter[ev.Obj]
		s.lastSeq = ev.Seq

	case trace.EvExtend:
		r.extensions++
		s := r.ensureOpen(ev)
		s.lastSeq = ev.Seq

	case trace.EvSteal:
		// ev.Txn (0 = background reaper) reclaimed dead transaction ev.Ver's
		// records. The victim is gone: close its attempt and free its state.
		var to AttemptRef
		if ev.Txn != 0 {
			to = r.refOf(ev.Txn)
		}
		from := AttemptRef{Txn: ev.Ver}
		if victim, ok := r.live[ev.Ver]; ok {
			from = victim.ref()
			if victim.open {
				r.closeAttempt(victim, ev.Seq, ev.Unix, Aborted, ev.Obj)
			}
			delete(r.live, ev.Ver)
		}
		r.addEdge(Edge{Kind: StolenFrom, From: from, To: to, Obj: ev.Obj, Seq: ev.Seq, NS: ev.Unix})

	case trace.EvAbort:
		s := r.ensureOpen(ev)
		if s.causeSet {
			r.addEdge(Edge{
				Kind: s.causeKind, From: s.ref(), To: s.causeTo,
				Obj: s.causeObj, Seq: ev.Seq, NS: ev.Unix,
			})
		} else if ev.Obj != 0 {
			// No recorded cause but a blamed object: if we were waiting on
			// that object the owner is the killer (covers the SelfAbortAfter
			// threshold path, which restarts without a policy decision).
			to := AttemptRef{}
			if s.waiting && s.waitObj == ev.Obj {
				to = r.refOf(s.waitOwner)
			}
			r.addEdge(Edge{Kind: AbortedBy, From: s.ref(), To: to, Obj: ev.Obj, Seq: ev.Seq, NS: ev.Unix})
		}
		r.closeAttempt(s, ev.Seq, ev.Unix, Aborted, ev.Obj)

	case trace.EvCommit:
		s := r.ensureOpen(ev)
		for _, obj := range s.touched {
			r.setLastWriter(obj, s.ref())
		}
		r.closeAttempt(s, ev.Seq, ev.Unix, Committed, 0)
		delete(r.live, ev.Txn) // the transaction ID is never reused
	}
}

// state returns (creating if needed) the live state for txn.
func (r *Recorder) state(txn uint64, ev trace.Event) *txnState {
	s, ok := r.live[txn]
	if !ok {
		if len(r.live) >= r.cfg.MaxLive {
			r.evictColdest()
		}
		s = &txnState{txn: txn, lastSeq: ev.Seq}
		r.live[txn] = s
	}
	return s
}

// ensureOpen returns txn's state with an open attempt, synthesizing one if
// the begin event was never observed (offline replay of a clipped ring).
func (r *Recorder) ensureOpen(ev trace.Event) *txnState {
	s := r.state(ev.Txn, ev)
	if !s.open {
		r.openAttempt(s, ev)
	}
	return s
}

func (r *Recorder) openAttempt(s *txnState, ev trace.Event) {
	s.n = s.begins
	s.begins++
	s.open = true
	s.start = ev
	s.lastSeq = ev.Seq
	s.waiting = false
	s.causeSet = false
	s.touched = s.touched[:0]
}

func (r *Recorder) closeAttempt(s *txnState, seq uint64, ns int64, out Outcome, blame uint64) {
	a := Attempt{
		Txn: s.txn, N: s.n,
		StartSeq: s.start.Seq, EndSeq: seq,
		StartNS: s.start.Unix, EndNS: ns,
		Outcome: out, BlameObj: blame,
	}
	dur := ns - s.start.Unix
	if dur < 0 {
		dur = 0
	}
	switch out {
	case Committed:
		r.commits++
		r.committedNS += dur
		s.consecAborts = 0
	case Aborted:
		r.aborts++
		r.abortedNS += dur
		s.consecAborts++
		if s.consecAborts > r.maxConsecAborts {
			r.maxConsecAborts = s.consecAborts
			r.maxConsecTxn = s.txn
		}
	}
	s.open = false
	s.waiting = false
	s.causeSet = false
	if len(r.attempts) < cap(r.attempts) {
		r.attempts = append(r.attempts, a)
	} else {
		r.attempts[r.attTotal%uint64(cap(r.attempts))] = a
	}
	r.attTotal++
}

func (r *Recorder) addEdge(e Edge) {
	r.byEdgeKind[e.Kind]++
	if len(r.edges) < cap(r.edges) {
		r.edges = append(r.edges, e)
	} else {
		r.edges[r.edgeTotal%uint64(cap(r.edges))] = e
	}
	r.edgeTotal++
}

// refOf resolves a transaction ID to its current attempt, if live.
func (r *Recorder) refOf(txn uint64) AttemptRef {
	if txn == 0 {
		return AttemptRef{}
	}
	if s, ok := r.live[txn]; ok && s.open {
		return s.ref()
	}
	// Not live: the ref still names the transaction, attempt unknown (0 is
	// the best guess — most transactions commit on an early attempt).
	return AttemptRef{Txn: txn}
}

func (s *txnState) ref() AttemptRef { return AttemptRef{Txn: s.txn, N: s.n} }

// evictColdest drops the live entry with the oldest activity. O(n) scan,
// but eviction only fires with MaxLive simultaneously-tracked transactions
// — far past any sane worker count — so the cost is irrelevant.
func (r *Recorder) evictColdest() {
	var coldest *txnState
	for _, s := range r.live {
		if coldest == nil || s.lastSeq < coldest.lastSeq {
			coldest = s
		}
	}
	if coldest == nil {
		return
	}
	if coldest.open {
		r.closeAttempt(coldest, coldest.lastSeq, coldest.start.Unix, Aborted, 0)
	}
	delete(r.live, coldest.txn)
	r.evictedLive++
}

func (r *Recorder) setLastWriter(obj uint64, ref AttemptRef) {
	if _, ok := r.lastWriter[obj]; !ok && len(r.lastWriter) >= r.cfg.MaxObjects {
		// Drop an arbitrary entry: the table is an attribution cache, not
		// ground truth, and map iteration order is as good an eviction
		// policy as any at this size.
		for k := range r.lastWriter {
			delete(r.lastWriter, k)
			r.evictedWriters++
			break
		}
	}
	r.lastWriter[obj] = ref
}

// Graph is a point-in-time copy of the conflict DAG: attempts ordered by
// StartSeq, edges by Seq. Dropped* report ring evictions — consumers must
// treat the graph as a window, not the whole run, when they are nonzero.
type Graph struct {
	Attempts        []Attempt        `json:"attempts"`
	Edges           []Edge           `json:"edges"`
	DroppedAttempts uint64           `json:"dropped_attempts,omitempty"`
	DroppedEdges    uint64           `json:"dropped_edges,omitempty"`
	EdgesByKind     map[string]int64 `json:"edges_by_kind,omitempty"` // whole-run counts, unaffected by eviction
}

// Graph snapshots the recorder's DAG, including still-open attempts
// (Outcome Running).
func (r *Recorder) Graph() *Graph {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &Graph{
		Attempts:    make([]Attempt, 0, len(r.attempts)+len(r.live)),
		Edges:       append([]Edge(nil), r.edges...),
		EdgesByKind: make(map[string]int64, int(numEdgeKinds)),
	}
	g.Attempts = append(g.Attempts, r.attempts...)
	for _, s := range r.live {
		if s.open {
			g.Attempts = append(g.Attempts, Attempt{
				Txn: s.txn, N: s.n,
				StartSeq: s.start.Seq, StartNS: s.start.Unix,
				Outcome: Running,
			})
		}
	}
	if n := uint64(cap(r.attempts)); r.attTotal > n {
		g.DroppedAttempts = r.attTotal - n
	}
	if n := uint64(cap(r.edges)); r.edgeTotal > n {
		g.DroppedEdges = r.edgeTotal - n
	}
	for k := EdgeKind(0); k < numEdgeKinds; k++ {
		if n := r.byEdgeKind[k]; n != 0 {
			g.EdgesByKind[k.String()] = n
		}
	}
	sortGraph(g)
	return g
}

// Build replays an event stream (e.g. a trace dump) through a fresh
// recorder and returns the resulting graph. Zero cfg fields are sized to
// retain everything the stream can produce, so offline analysis never
// evicts.
func Build(events []trace.Event, cfg Config) *Graph {
	n := len(events) + 1
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = n
	}
	if cfg.MaxEdges <= 0 {
		cfg.MaxEdges = n
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = n
	}
	if cfg.MaxObjects <= 0 {
		cfg.MaxObjects = n
	}
	r := NewRecorder(cfg)
	for _, ev := range events {
		r.observe(ev) // single goroutine: skip the lock
	}
	return r.Graph()
}

func sortGraph(g *Graph) {
	sort.Slice(g.Attempts, func(i, j int) bool {
		a, b := g.Attempts[i], g.Attempts[j]
		if a.StartSeq != b.StartSeq {
			return a.StartSeq < b.StartSeq
		}
		if a.Txn != b.Txn {
			return a.Txn < b.Txn
		}
		return a.N < b.N
	})
	sort.Slice(g.Edges, func(i, j int) bool { return g.Edges[i].Seq < g.Edges[j].Seq })
}

// LiveSnapshot is the recorder's in-flight summary, rendered as the
// `causal` line in /metrics and stmtop.
type LiveSnapshot struct {
	ActiveWaits          int     `json:"active_waits"`      // live transactions currently blocked on an owner
	LongestChain         int     `json:"longest_chain"`     // deepest current waits-for chain
	WastedWorkPct        float64 `json:"wasted_work_pct"`   // aborted ns / (aborted+committed) ns
	MaxConsecutiveAborts int     `json:"max_consec_aborts"` // worst run of aborts by one transaction
	MaxConsecutiveTxn    uint64  `json:"max_consec_txn,omitempty"`
	Commits              int64   `json:"commits"`
	Aborts               int64   `json:"aborts"`
	Attempts             uint64  `json:"attempts"`
	Edges                uint64  `json:"edges"`
	Extensions           int64   `json:"extensions"` // snapshot-extension walks observed
	EvictedLive          int64   `json:"evicted_live,omitempty"`
	EvictedWriters       int64   `json:"evicted_writers,omitempty"`
}

// Live summarizes the current causal picture.
func (r *Recorder) Live() LiveSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := LiveSnapshot{
		MaxConsecutiveAborts: r.maxConsecAborts,
		MaxConsecutiveTxn:    r.maxConsecTxn,
		Commits:              r.commits,
		Aborts:               r.aborts,
		Attempts:             r.attTotal,
		Edges:                r.edgeTotal,
		Extensions:           r.extensions,
		EvictedLive:          r.evictedLive,
		EvictedWriters:       r.evictedWriters,
	}
	if total := r.committedNS + r.abortedNS; total > 0 {
		ls.WastedWorkPct = 100 * float64(r.abortedNS) / float64(total)
	}
	// Walk current waits-for chains: follow waitOwner links through live
	// waiting transactions. Depth is bounded by len(live); a cycle (a
	// deadlock the policies should be breaking) just stops at the repeat.
	for _, s := range r.live {
		if !s.open || !s.waiting {
			continue
		}
		ls.ActiveWaits++
		depth := 1
		seen := map[uint64]bool{s.txn: true}
		for cur := s; ; {
			next, ok := r.live[cur.waitOwner]
			if !ok || !next.open || !next.waiting || seen[next.txn] {
				break
			}
			seen[next.txn] = true
			depth++
			cur = next
		}
		if depth > ls.LongestChain {
			ls.LongestChain = depth
		}
	}
	return ls
}
