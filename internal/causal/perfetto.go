package causal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WritePerfetto renders g in Chrome trace-event JSON (the format
// ui.perfetto.dev and chrome://tracing load directly): one slice per
// attempt, one track ("thread") per concurrency lane, and flow arrows for
// the causal edges.
//
// The trace stream does not carry goroutine identity, so lanes are
// recovered structurally: transactions whose lifespans overlap get
// different lanes (greedy interval coloring over [first event, last
// event]). Under the runtimes' one-transaction-per-goroutine execution
// model this reproduces the goroutine layout up to renaming.
func WritePerfetto(w io.Writer, g *Graph) error {
	// Span per transaction for lane assignment.
	type span struct {
		txn        uint64
		start, end int64
	}
	spans := make(map[uint64]*span)
	var t0 int64
	for _, a := range g.Attempts {
		if t0 == 0 || (a.StartNS != 0 && a.StartNS < t0) {
			t0 = a.StartNS
		}
		s := spans[a.Txn]
		if s == nil {
			s = &span{txn: a.Txn, start: a.StartNS, end: a.EndNS}
			spans[a.Txn] = s
		}
		if a.StartNS < s.start {
			s.start = a.StartNS
		}
		if a.EndNS > s.end {
			s.end = a.EndNS
		}
		if s.end < s.start {
			s.end = s.start
		}
	}
	ordered := make([]*span, 0, len(spans))
	for _, s := range spans {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].start != ordered[j].start {
			return ordered[i].start < ordered[j].start
		}
		return ordered[i].txn < ordered[j].txn
	})
	lane := make(map[uint64]int, len(spans))
	var laneEnds []int64 // laneEnds[i] = when lane i frees up
	for _, s := range ordered {
		placed := false
		for i, end := range laneEnds {
			if end <= s.start {
				lane[s.txn] = i
				laneEnds[i] = s.end
				placed = true
				break
			}
		}
		if !placed {
			lane[s.txn] = len(laneEnds)
			laneEnds = append(laneEnds, s.end)
		}
	}

	us := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	events := make([]map[string]any, 0, len(g.Attempts)+2*len(g.Edges)+len(laneEnds)+1)
	events = append(events, map[string]any{
		"name": "process_name", "ph": "M", "pid": 1,
		"args": map[string]any{"name": "stm"},
	})
	for i := range laneEnds {
		events = append(events, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": i,
			"args": map[string]any{"name": fmt.Sprintf("worker-%d", i)},
		})
	}

	attemptAt := make(map[AttemptRef]Attempt, len(g.Attempts))
	for _, a := range g.Attempts {
		attemptAt[a.Ref()] = a
	}
	for _, a := range g.Attempts {
		end := a.EndNS
		if a.Outcome == Running || end < a.StartNS {
			end = a.StartNS
		}
		dur := us(end) - us(a.StartNS)
		if dur <= 0 {
			dur = 0.001 // zero-duration slices are invisible in the UI
		}
		args := map[string]any{
			"txn": a.Txn, "attempt": a.N, "outcome": a.Outcome.String(),
		}
		if a.BlameObj != 0 {
			args["blame_obj"] = a.BlameObj
		}
		events = append(events, map[string]any{
			"name": fmt.Sprintf("txn %d #%d", a.Txn, a.N),
			"cat":  "attempt-" + a.Outcome.String(),
			"ph":   "X", "pid": 1, "tid": lane[a.Txn],
			"ts": us(a.StartNS), "dur": dur,
			"args": args,
		})
	}

	// Causal edges as flow events: "s" at the cause (To), "f" at the effect
	// (From). WaitsFor edges are rendered as instants instead — one arrow
	// per conflict probe would bury the abort arrows that matter.
	clampIn := func(ns int64, a Attempt) float64 {
		t := us(ns)
		lo := us(a.StartNS)
		hi := lo
		if a.EndNS > a.StartNS {
			hi = us(a.EndNS)
		}
		if t < lo {
			t = lo
		}
		if t > hi {
			t = hi
		}
		return t
	}
	flowID := 0
	for _, e := range g.Edges {
		if e.Kind == WaitsFor {
			if from, ok := attemptAt[e.From]; ok {
				events = append(events, map[string]any{
					"name": "waits-for", "cat": "waits-for",
					"ph": "i", "s": "t", "pid": 1, "tid": lane[from.Txn],
					"ts":   clampIn(e.NS, from),
					"args": map[string]any{"obj": e.Obj, "owner": e.To.Txn},
				})
			}
			continue
		}
		from, okFrom := attemptAt[e.From]
		to, okTo := attemptAt[e.To]
		if !okFrom || !okTo {
			continue
		}
		flowID++
		name := e.Kind.String()
		args := map[string]any{"obj": e.Obj, "victim": e.From.Txn, "cause": e.To.Txn}
		events = append(events, map[string]any{
			"name": name, "cat": name, "ph": "s", "id": flowID,
			"pid": 1, "tid": lane[to.Txn], "ts": clampIn(e.NS, to), "args": args,
		})
		events = append(events, map[string]any{
			"name": name, "cat": name, "ph": "f", "bp": "e", "id": flowID,
			"pid": 1, "tid": lane[from.Txn], "ts": clampIn(e.NS, from), "args": args,
		})
	}

	doc := map[string]any{
		"displayTimeUnit": "ns",
		"traceEvents":     events,
	}
	if g.DroppedAttempts != 0 || g.DroppedEdges != 0 {
		doc["otherData"] = map[string]any{
			"dropped_attempts": g.DroppedAttempts,
			"dropped_edges":    g.DroppedEdges,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
