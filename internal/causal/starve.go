package causal

import "sort"

// TxnStarvation is one transaction's abort profile.
type TxnStarvation struct {
	Txn                  uint64 `json:"txn"`
	Attempts             int    `json:"attempts"`
	Aborts               int    `json:"aborts"`
	MaxConsecutiveAborts int    `json:"max_consec_aborts"`
	Committed            bool   `json:"committed"`
	WastedNS             int64  `json:"wasted_ns"`
}

// ObjDominance is one object's share of the abort traffic, and who wins it.
type ObjDominance struct {
	Obj            uint64  `json:"obj"`
	Aborts         int64   `json:"aborts"` // aborted-by/invalidated-by/doomed-by edges over the object
	Waits          int64   `json:"waits"`  // waits-for edges over the object
	TopKiller      uint64  `json:"top_killer,omitempty"`
	TopKillerShare float64 `json:"top_killer_share,omitempty"` // killer's fraction of the object's aborts
}

// Report is the starvation analyzer's output.
type Report struct {
	Transactions int `json:"transactions"`
	Attempts     int `json:"attempts"`
	Commits      int `json:"commits"`
	Aborts       int `json:"aborts"`

	WastedNS        int64   `json:"wasted_ns"`
	TotalNS         int64   `json:"total_ns"`
	WastedWorkRatio float64 `json:"wasted_work_ratio"` // aborted ns / total attempt ns

	MaxConsecutiveAborts int    `json:"max_consec_aborts"`
	MaxConsecutiveTxn    uint64 `json:"max_consec_txn,omitempty"`

	// LongestChain is the deepest victim chain: each attempt was aborted by
	// the next attempt in the slice, which itself later aborted, and so on
	// until a survivor. Depth 1 means "aborted by someone who committed".
	LongestChain      []AttemptRef `json:"longest_chain,omitempty"`
	LongestChainDepth int          `json:"longest_chain_depth"`
	ChainDepths       map[int]int  `json:"chain_depths,omitempty"` // depth -> aborted attempts at that depth

	TopStarved []TxnStarvation  `json:"top_starved,omitempty"` // worst consecutive-abort runs first
	Dominance  []ObjDominance   `json:"dominance,omitempty"`   // most abort-generating objects first
	EdgeCounts map[string]int64 `json:"edge_counts,omitempty"`
}

// victimEdgeKinds are the edge kinds that mean "From's attempt died
// because of To".
func isVictimEdge(k EdgeKind) bool {
	return k == AbortedBy || k == InvalidatedBy || k == DoomedBy || k == StolenFrom
}

// Analyze walks g's abort chains. Victim-chain depth of an aborted attempt
// is 1 + the depth of its killer's attempt if that attempt was itself a
// victim (the killer later lost to someone else), so long chains expose
// cascading contention, not just pairwise conflict.
func Analyze(g *Graph) Report {
	rep := Report{
		ChainDepths: make(map[int]int),
		EdgeCounts:  make(map[string]int64),
	}

	// Per-transaction rollups.
	type txnAgg struct {
		attempts, aborts, consec, maxConsec int
		committed                           bool
		wastedNS                            int64
	}
	txns := make(map[uint64]*txnAgg)
	attemptIdx := make(map[AttemptRef]int, len(g.Attempts))
	for i, a := range g.Attempts {
		attemptIdx[a.Ref()] = i
		t := txns[a.Txn]
		if t == nil {
			t = &txnAgg{}
			txns[a.Txn] = t
		}
		t.attempts++
		dur := a.EndNS - a.StartNS
		if dur < 0 {
			dur = 0
		}
		if a.Outcome != Running {
			rep.TotalNS += dur
		}
		switch a.Outcome {
		case Committed:
			rep.Commits++
			t.committed = true
			t.consec = 0
		case Aborted:
			rep.Aborts++
			t.aborts++
			t.consec++
			if t.consec > t.maxConsec {
				t.maxConsec = t.consec
			}
			t.wastedNS += dur
			rep.WastedNS += dur
		}
	}
	rep.Attempts = len(g.Attempts)
	rep.Transactions = len(txns)
	if rep.TotalNS > 0 {
		rep.WastedWorkRatio = float64(rep.WastedNS) / float64(rep.TotalNS)
	}

	// Victim edges: pick ONE killer per aborted attempt (the last victim
	// edge recorded for it — the one that closed the attempt).
	killerOf := make(map[AttemptRef]Edge)
	perObj := make(map[uint64]*ObjDominance)
	objKillers := make(map[uint64]map[uint64]int64)
	for _, e := range g.Edges {
		rep.EdgeCounts[e.Kind.String()]++
		if e.Obj != 0 {
			d := perObj[e.Obj]
			if d == nil {
				d = &ObjDominance{Obj: e.Obj}
				perObj[e.Obj] = d
			}
			if e.Kind == WaitsFor {
				d.Waits++
			} else if isVictimEdge(e.Kind) {
				d.Aborts++
				if e.To.Known() {
					m := objKillers[e.Obj]
					if m == nil {
						m = make(map[uint64]int64)
						objKillers[e.Obj] = m
					}
					m[e.To.Txn]++
				}
			}
		}
		if isVictimEdge(e.Kind) && e.From.Known() {
			killerOf[e.From] = e
		}
	}

	// Chain depths via memoized walk over the killer links.
	depth := make(map[AttemptRef]int)
	var chainNext = make(map[AttemptRef]AttemptRef)
	var walk func(ref AttemptRef, onPath map[AttemptRef]bool) int
	walk = func(ref AttemptRef, onPath map[AttemptRef]bool) int {
		if d, ok := depth[ref]; ok {
			return d
		}
		e, ok := killerOf[ref]
		if !ok {
			depth[ref] = 0
			return 0
		}
		d := 1
		if e.To.Known() && !onPath[e.To] {
			onPath[e.To] = true
			// The killer's chain only extends ours if the killer attempt
			// itself ended aborted (it won this conflict but lost later).
			if i, found := attemptIdx[e.To]; found && g.Attempts[i].Outcome == Aborted {
				d = 1 + walk(e.To, onPath)
			}
			delete(onPath, e.To)
		}
		depth[ref] = d
		chainNext[ref] = e.To
		return d
	}
	for ref := range killerOf {
		d := walk(ref, map[AttemptRef]bool{ref: true})
		rep.ChainDepths[d]++
		if d > rep.LongestChainDepth {
			rep.LongestChainDepth = d
			chain := []AttemptRef{ref}
			for cur := ref; ; {
				next, ok := chainNext[cur]
				if !ok || !next.Known() || len(chain) > d {
					break
				}
				chain = append(chain, next)
				if _, more := chainNext[next]; !more {
					break
				}
				cur = next
			}
			rep.LongestChain = chain
		}
	}

	// Consecutive aborts: per-transaction rollup.
	for txn, t := range txns {
		if t.maxConsec > rep.MaxConsecutiveAborts {
			rep.MaxConsecutiveAborts = t.maxConsec
			rep.MaxConsecutiveTxn = txn
		}
	}
	for txn, t := range txns {
		if t.aborts == 0 {
			continue
		}
		rep.TopStarved = append(rep.TopStarved, TxnStarvation{
			Txn: txn, Attempts: t.attempts, Aborts: t.aborts,
			MaxConsecutiveAborts: t.maxConsec, Committed: t.committed,
			WastedNS: t.wastedNS,
		})
	}
	sort.Slice(rep.TopStarved, func(i, j int) bool {
		a, b := rep.TopStarved[i], rep.TopStarved[j]
		if a.MaxConsecutiveAborts != b.MaxConsecutiveAborts {
			return a.MaxConsecutiveAborts > b.MaxConsecutiveAborts
		}
		if a.Aborts != b.Aborts {
			return a.Aborts > b.Aborts
		}
		return a.Txn < b.Txn
	})
	if len(rep.TopStarved) > 10 {
		rep.TopStarved = rep.TopStarved[:10]
	}

	for obj, d := range perObj {
		var topKiller uint64
		var topCount int64
		for killer, n := range objKillers[obj] {
			if n > topCount || (n == topCount && killer < topKiller) {
				topKiller, topCount = killer, n
			}
		}
		if d.Aborts > 0 && topCount > 0 {
			d.TopKiller = topKiller
			d.TopKillerShare = float64(topCount) / float64(d.Aborts)
		}
		rep.Dominance = append(rep.Dominance, *d)
	}
	sort.Slice(rep.Dominance, func(i, j int) bool {
		a, b := rep.Dominance[i], rep.Dominance[j]
		if a.Aborts != b.Aborts {
			return a.Aborts > b.Aborts
		}
		if a.Waits != b.Waits {
			return a.Waits > b.Waits
		}
		return a.Obj < b.Obj
	})
	if len(rep.Dominance) > 10 {
		rep.Dominance = rep.Dominance[:10]
	}
	return rep
}
