package causal

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders g's conflict graph in Graphviz DOT: one node per
// attempt that participates in at least one causal edge (emitting every
// uncontended attempt would drown the conflicts the graph exists to
// show), one directed edge per causal link, styled by kind.
func WriteDOT(w io.Writer, g *Graph) error {
	attemptAt := make(map[AttemptRef]Attempt, len(g.Attempts))
	for _, a := range g.Attempts {
		attemptAt[a.Ref()] = a
	}
	nodes := make(map[AttemptRef]bool)
	for _, e := range g.Edges {
		if e.From.Known() {
			nodes[e.From] = true
		}
		if e.To.Known() {
			nodes[e.To] = true
		}
	}
	refs := make([]AttemptRef, 0, len(nodes))
	for r := range nodes {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Txn != refs[j].Txn {
			return refs[i].Txn < refs[j].Txn
		}
		return refs[i].N < refs[j].N
	})

	if _, err := fmt.Fprintln(w, "digraph conflicts {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, style=filled, fontname=\"monospace\"];")
	for _, r := range refs {
		color, extra := "lightgray", ", style=\"filled,dashed\""
		if a, ok := attemptAt[r]; ok {
			switch a.Outcome {
			case Committed:
				color, extra = "palegreen", ""
			case Aborted:
				color, extra = "lightcoral", ""
			}
		}
		fmt.Fprintf(w, "  %s [label=\"txn %d #%d\", fillcolor=%s%s];\n",
			nodeID(r), r.Txn, r.N, color, extra)
	}
	for _, e := range g.Edges {
		if !e.From.Known() || !e.To.Known() {
			continue
		}
		style := "solid"
		color := "black"
		switch e.Kind {
		case WaitsFor:
			style, color = "dotted", "gray40"
		case AbortedBy:
			color = "red"
		case DoomedBy:
			color = "darkorange"
		case StolenFrom:
			style, color = "dashed", "purple"
		case InvalidatedBy:
			color = "blue"
		}
		label := e.Kind.String()
		if e.Obj != 0 {
			label = fmt.Sprintf("%s\\nobj %d", label, e.Obj)
		}
		fmt.Fprintf(w, "  %s -> %s [label=\"%s\", color=%s, style=%s];\n",
			nodeID(e.From), nodeID(e.To), label, color, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func nodeID(r AttemptRef) string { return fmt.Sprintf("t%d_a%d", r.Txn, r.N) }
