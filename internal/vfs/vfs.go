// Package vfs is the file-system seam under the durable STM store
// (internal/durable): a small FS interface with a production implementation
// over package os, and a fault-injecting in-memory implementation (FaultFS)
// that models exactly the durability semantics a crash harness needs to
// break — unsynced data lost on crash, fsync that lies, torn tail writes,
// and renames that are not durable until the directory is synced.
//
// The interface is deliberately minimal: the WAL and snapshot writer only
// ever create files, append to them, fsync, read them back, rename them
// into place, and sync directories. Keeping the surface this small is what
// makes the fault model in FaultFS tractable to reason about.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is an open file handle. WAL segments are append-only writers;
// recovery reads sequentially or by offset.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Closer

	// Sync requests that everything written so far become durable. On a
	// lying file system the request succeeds without durability — which is
	// the point.
	Sync() error

	// Name returns the path the file was opened under.
	Name() string
}

// FS is the file-system surface the durable store runs on.
type FS interface {
	// OpenFile opens name with os.O_* flags. O_CREATE creates it.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)

	// ReadFile reads the whole file.
	ReadFile(name string) ([]byte, error)

	// Remove deletes a file.
	Remove(name string) error

	// Rename atomically replaces newname with oldname. Whether the rename
	// survives a crash before SyncDir is implementation-defined (POSIX says
	// no; journaled file systems mostly say yes; FaultFS has a knob).
	Rename(oldname, newname string) error

	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)

	// MkdirAll creates dir and parents.
	MkdirAll(dir string, perm os.FileMode) error

	// SyncDir makes dir's entries (creates, renames, removes) durable.
	SyncDir(dir string) error
}

// OS is the production FS over package os.
type OS struct{}

type osFile struct{ *os.File }

func (f osFile) Name() string { return f.File.Name() }

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir implements FS: open the directory and fsync it, which is how
// POSIX makes renames and creates durable.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// clean normalizes a path for use as a FaultFS map key.
func clean(p string) string { return filepath.Clean(p) }
