package vfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip exercises the production FS: create, append, sync, rename,
// dir sync, list, read back.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	f, err := fs.OpenFile(filepath.Join(dir, "a.tmp"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(dir, "a.tmp"), filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("ReadDir = %v, want [a]", names)
	}
	data, err := fs.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("ReadFile = %q", data)
	}
}

// TestFaultFSUnsyncedLoss: the honest baseline — synced data survives a
// crash, unsynced data does not.
func TestFaultFSUnsyncedLoss(t *testing.T) {
	fs := NewFaultFS(1, Mode{})
	f, err := fs.OpenFile("/d/wal", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable|"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("volatile"))
	fs.Crash()

	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write through a crashed handle succeeded")
	}
	data, err := fs.ReadFile("/d/wal")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable|" {
		t.Fatalf("after crash: %q, want only the synced prefix", data)
	}
}

// TestFaultFSFsyncLie: Sync succeeds but a crash still loses the data.
func TestFaultFSFsyncLie(t *testing.T) {
	fs := NewFaultFS(1, Mode{FsyncLie: true})
	f, _ := fs.OpenFile("/d/wal", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("acked"))
	if err := f.Sync(); err != nil {
		t.Fatalf("a lying fsync must report success, got %v", err)
	}
	fs.Crash()
	data, err := fs.ReadFile("/d/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("fsync-lie crash kept %q, want empty", data)
	}
}

// TestFaultFSTornWrites: a crash persists some prefix of the unsynced tail,
// never more than was written and always at least the synced image;
// identical seeds tear identically.
func TestFaultFSTornWrites(t *testing.T) {
	tear := func(seed uint64) int {
		fs := NewFaultFS(seed, Mode{TornWrites: true})
		f, _ := fs.OpenFile("/d/wal", os.O_CREATE|os.O_WRONLY, 0o644)
		f.Write([]byte("safe|"))
		f.Sync()
		f.Write(bytes.Repeat([]byte{0xAB}, 100))
		fs.Crash()
		data, err := fs.ReadFile("/d/wal")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("safe|")) {
			t.Fatalf("torn crash lost synced data: %q", data)
		}
		if len(data) > 105 {
			t.Fatalf("torn crash kept %d bytes, wrote only 105", len(data))
		}
		return len(data)
	}
	if a, b := tear(7), tear(7); a != b {
		t.Fatalf("same seed tore differently: %d vs %d", a, b)
	}
}

// TestFaultFSVolatileRenames: a rename (and the create preceding it) is
// rolled back by a crash unless the directory was synced.
func TestFaultFSVolatileRenames(t *testing.T) {
	fs := NewFaultFS(1, Mode{VolatileRenames: true})
	f, _ := fs.OpenFile("/d/snap.tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("snapshot"))
	f.Sync()
	if err := fs.Rename("/d/snap.tmp", "/d/snap"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := fs.ReadFile("/d/snap"); err == nil {
		t.Fatal("unsynced rename survived the crash")
	}

	// Same dance with a SyncDir: now it must survive.
	f, _ = fs.OpenFile("/d/snap.tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("snapshot"))
	f.Sync()
	fs.Rename("/d/snap.tmp", "/d/snap")
	if err := fs.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	data, err := fs.ReadFile("/d/snap")
	if err != nil {
		t.Fatalf("dir-synced rename lost: %v", err)
	}
	if string(data) != "snapshot" {
		t.Fatalf("recovered %q", data)
	}
	if _, err := fs.ReadFile("/d/snap.tmp"); err == nil {
		t.Fatal("renamed-away source still present after dir sync + crash")
	}
}

// TestFaultFSAppendAndReadAt covers the access paths the WAL uses: O_APPEND
// reopening, sequential read, and ReadAt.
func TestFaultFSAppendAndReadAt(t *testing.T) {
	fs := NewFaultFS(1, Mode{})
	f, _ := fs.OpenFile("/d/seg", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("one"))
	f.Sync()
	f.Close()
	f, _ = fs.OpenFile("/d/seg", os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("two"))
	f.Sync()
	f.Close()

	r, err := fs.OpenFile("/d/seg", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := r.ReadAt(buf, 3); err != nil && len(buf) != 3 {
		t.Fatal(err)
	}
	if string(buf) != "two" {
		t.Fatalf("ReadAt(3) = %q", buf)
	}
}
