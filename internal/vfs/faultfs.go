package vfs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Mode selects which lies FaultFS tells. The zero value is an honest
// file system with a volatile page cache: writes live in memory until Sync,
// Sync really makes them durable, and Crash drops everything unsynced —
// the baseline model every durable store must already survive.
type Mode struct {
	// FsyncLie makes Sync report success without making anything durable
	// (the consumer-drive write-cache lie). Under this mode a crash loses
	// data the store was told is safe — the harness's expected-breach mode.
	FsyncLie bool

	// TornWrites makes a crash persist a seeded-pseudorandom prefix of the
	// unsynced tail of each file instead of dropping it whole, modeling a
	// sector-granular partial write. Recovery must treat a half-written
	// record as the end of the log, not corruption of it.
	TornWrites bool

	// VolatileRenames makes creates, renames, and removes non-durable until
	// SyncDir on the parent directory — strict POSIX. With it off, entry
	// operations are durable immediately (the ext4-style default most code
	// silently assumes).
	VolatileRenames bool
}

// memFile is one FaultFS file: the durable image (what survives Crash) and
// the current image (what reads observe).
type memFile struct {
	durable []byte
	cur     []byte
}

// FaultFS is an in-memory FS with an explicit durability model, for
// crash-recovery tests that must be deterministic and fast. Crash simulates
// the process (and page cache) dying: every open handle is invalidated and
// all state reverts to what was durable. The FaultFS value itself survives
// a Crash, so a test reopens the "disk" and recovers from it in-process.
type FaultFS struct {
	mu   sync.Mutex
	mode Mode
	seed uint64

	files   map[string]*memFile // current namespace
	durable map[string]*memFile // crash-surviving namespace
	dirs    map[string]bool
	gen     uint64 // bumped by Crash; outstanding handles die

	syncs    int64
	dirSyncs int64
	crashes  int64
	lost     int64 // bytes dropped by crashes
}

// NewFaultFS builds a FaultFS with the given fault mode. The seed drives
// torn-write lengths and nothing else; two runs with the same seed and the
// same operation sequence crash identically.
func NewFaultFS(seed uint64, mode Mode) *FaultFS {
	return &FaultFS{
		mode:    mode,
		seed:    seed,
		files:   make(map[string]*memFile),
		durable: make(map[string]*memFile),
		dirs:    make(map[string]bool),
	}
}

type faultFile struct {
	fs   *FaultFS
	name string
	mf   *memFile
	gen  uint64
	off  int64
	rdOK bool
	wrOK bool
}

var errCrashedHandle = fmt.Errorf("vfs: handle invalidated by simulated crash")

func (f *faultFile) check() error {
	if f.gen != f.fs.gen {
		return errCrashedHandle
	}
	return nil
}

func (f *faultFile) Name() string { return f.name }

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if !f.wrOK {
		return 0, fmt.Errorf("vfs: %s not opened for writing", f.name)
	}
	end := f.off + int64(len(p))
	if int64(len(f.mf.cur)) < end {
		grown := make([]byte, end)
		copy(grown, f.mf.cur)
		f.mf.cur = grown
	}
	copy(f.mf.cur[f.off:end], p)
	f.off = end
	return len(p), nil
}

func (f *faultFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if !f.rdOK {
		return 0, fmt.Errorf("vfs: %s not opened for reading", f.name)
	}
	if f.off >= int64(len(f.mf.cur)) {
		return 0, io.EOF
	}
	n := copy(p, f.mf.cur[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if off >= int64(len(f.mf.cur)) {
		return 0, io.EOF
	}
	n := copy(p, f.mf.cur[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	f.fs.syncs++
	if f.fs.mode.FsyncLie {
		return nil // "done!"
	}
	f.mf.durable = append(f.mf.durable[:0], f.mf.cur...)
	return nil
}

func (f *faultFile) Close() error { return nil }

// OpenFile implements FS.
func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = clean(name)
	mf := fs.files[name]
	if mf == nil {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		mf = &memFile{}
		fs.files[name] = mf
		if !fs.mode.VolatileRenames {
			fs.durable[name] = mf
		}
	} else if flag&os.O_TRUNC != 0 {
		mf.cur = nil
	}
	ff := &faultFile{
		fs: fs, name: name, mf: mf, gen: fs.gen,
		rdOK: flag&(os.O_RDWR|os.O_WRONLY) == 0 || flag&os.O_RDWR != 0,
		wrOK: flag&(os.O_RDWR|os.O_WRONLY) != 0,
	}
	if flag&os.O_APPEND != 0 {
		ff.off = int64(len(mf.cur))
	}
	return ff, nil
}

// ReadFile implements FS.
func (fs *FaultFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	mf := fs.files[clean(name)]
	if mf == nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), mf.cur...), nil
}

// Remove implements FS.
func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = clean(name)
	if fs.files[name] == nil {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	if !fs.mode.VolatileRenames {
		delete(fs.durable, name)
	}
	return nil
}

// Rename implements FS.
func (fs *FaultFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldname, newname = clean(oldname), clean(newname)
	mf := fs.files[oldname]
	if mf == nil {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(fs.files, oldname)
	fs.files[newname] = mf
	if !fs.mode.VolatileRenames {
		delete(fs.durable, oldname)
		fs.durable[newname] = mf
	}
	return nil
}

// ReadDir implements FS.
func (fs *FaultFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = clean(dir)
	var names []string
	for name := range fs.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (fs *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirs[clean(dir)] = true
	return nil
}

// SyncDir implements FS: with VolatileRenames set this is what makes the
// directory's current entry set durable; otherwise it only counts.
func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirSyncs++
	if !fs.mode.VolatileRenames {
		return nil
	}
	dir = clean(dir)
	for name := range fs.durable {
		if filepath.Dir(name) == dir {
			if fs.files[name] == nil {
				delete(fs.durable, name) // removed (or renamed away) entry
			}
		}
	}
	for name, mf := range fs.files {
		if filepath.Dir(name) == dir {
			fs.durable[name] = mf
		}
	}
	return nil
}

// Crash simulates the process and page cache dying: every open handle is
// invalidated, every file reverts to its durable image (with a torn tail
// under Mode.TornWrites), and — under Mode.VolatileRenames — the namespace
// reverts to the last SyncDir. The FaultFS remains usable: reopening files
// afterwards models a restart reading the disk.
func (fs *FaultFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashes++
	fs.gen++
	if fs.mode.VolatileRenames {
		fs.files = make(map[string]*memFile, len(fs.durable))
		for name, mf := range fs.durable {
			fs.files[name] = mf
		}
	}
	n := uint64(0)
	for _, mf := range fs.files {
		tail := len(mf.cur) - len(mf.durable)
		if tail > 0 && fs.mode.TornWrites {
			// A seeded prefix of the unsynced tail made it to the platter.
			keep := int(splitmix64(fs.seed^fs.crashesKey()^n) % uint64(tail+1))
			fs.lost += int64(tail - keep)
			mf.durable = append(mf.durable, mf.cur[len(mf.durable):len(mf.durable)+keep]...)
		} else if len(mf.cur) != len(mf.durable) {
			if d := len(mf.cur) - len(mf.durable); d > 0 {
				fs.lost += int64(d)
			}
		}
		mf.cur = append(mf.cur[:0], mf.durable...)
		n++
	}
}

func (fs *FaultFS) crashesKey() uint64 { return uint64(fs.crashes) << 32 }

// Stats reports operation counts: fsyncs, dir syncs, crashes, and bytes
// dropped by crashes.
func (fs *FaultFS) Stats() (syncs, dirSyncs, crashes, lostBytes int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs, fs.dirSyncs, fs.crashes, fs.lost
}

// splitmix64 mixes a key into uniform bits (same mix as internal/faultinject).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
