package metrics

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/causal"
	"repro/internal/durable"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden schema files")

// TestConcurrentRegisterSnapshotHandler hammers the registry from three
// sides at once — registration (both fresh and replacing names), direct
// snapshots, and the HTTP handler — to prove the locking under -race.
func TestConcurrentRegisterSnapshotHandler(t *testing.T) {
	reg := NewRegistry()
	h := objmodel.NewHeap()
	rt := stm.New(h, stm.Config{})
	reg.RegisterSTM("seed", rt)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	const workers = 4
	const iters = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() { // registration side: fresh names and replacements
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fresh := stm.New(objmodel.NewHeap(), stm.Config{})
				reg.RegisterSTM(fmt.Sprintf("rt-%d-%d", w, i%5), fresh)
				reg.RegisterSTM("seed", fresh)
			}
		}()
		wg.Add(1)
		go func() { // snapshot side
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, s := range reg.Snapshot() {
					if s.Name == "" || s.Stats == nil {
						t.Error("malformed snapshot during concurrent registration")
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() { // HTTP side
			defer wg.Done()
			client := srv.Client()
			for i := 0; i < iters/5; i++ {
				resp, err := client.Get(srv.URL)
				if err != nil {
					t.Error(err)
					return
				}
				var snaps []RuntimeSnapshot
				err = json.NewDecoder(resp.Body).Decode(&snaps)
				resp.Body.Close()
				if err != nil {
					t.Errorf("handler served invalid JSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// collectKeys flattens a JSON value into sorted "a.b.c" key paths. Array
// elements collapse to "[]" so variable-length lists (hotspots) do not
// destabilize the schema.
func collectKeys(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, vv := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			collectKeys(p, vv, out)
		}
	case []any:
		for _, vv := range x {
			collectKeys(prefix+".[]", vv, out)
		}
	}
}

// TestMetricsSchemaGolden pins the /metrics JSON key set: stmtop and any
// scraper key on exact field names, so a rename must show up as a golden
// diff here, not as silently blank dashboard lines. Regenerate with
// `go test ./internal/metrics -run Golden -update`.
func TestMetricsSchemaGolden(t *testing.T) {
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "GCell",
		Fields: []objmodel.Field{{Name: "a"}},
	})
	o := h.New(cls)
	rt := stm.New(h, stm.Config{})
	tr := trace.New(trace.Config{ShardCapacity: 256})
	rec := causal.NewRecorder(causal.Config{})
	tr.SetSink(rec)
	rt.SetTracer(tr)
	for i := 0; i < 10; i++ {
		if err := rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	reg.RegisterSTM("rt", rt)
	data, err := json.Marshal(reg.Snapshot()[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	keySet := map[string]bool{}
	collectKeys("", decoded, keySet)
	// by_kind's members track which events happened to fire, not schema.
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		if strings.HasPrefix(k, "trace.by_kind.") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "schema_eager_causal.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("/metrics JSON schema drifted from golden (rerun with -update if intentional).\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurabilitySchemaGolden pins the durability line's JSON key set the
// same way: a durable.Store-backed runtime must export the WAL/checkpoint
// profile under `durability`, and renaming any of its fields must surface
// as a golden diff. Regenerate with
// `go test ./internal/metrics -run Golden -update`.
func TestDurabilitySchemaGolden(t *testing.T) {
	store, err := durable.Open(durable.Options{
		Dir:     t.TempDir(),
		Runtime: "eager",
	}, func(h *objmodel.Heap) error {
		h.NewArray(4, false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	arr := store.Heap().Get(objmodel.Ref(1))
	for i := 0; i < 10; i++ {
		if err := store.Atomic(func(tx stmapi.Txn) error {
			tx.Write(arr, 0, tx.Read(arr, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	reg.RegisterStore("durable", store)
	snap := reg.Snapshot()[0]
	if snap.Durability == nil {
		t.Fatal("RegisterStore snapshot missing durability line")
	}
	if snap.Durability.WALAppends < 10 {
		t.Fatalf("durability line reports %d WAL appends, want >= 10", snap.Durability.WALAppends)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	keySet := map[string]bool{}
	collectKeys("", decoded, keySet)
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "schema_eager_durable.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("durability /metrics JSON schema drifted from golden (rerun with -update if intentional).\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCausalLineExported checks the satellite wiring end to end: a tracer
// with a causal.Recorder sink must surface a `causal` object in the
// runtime's snapshot, and absence of a sink must omit it.
func TestCausalLineExported(t *testing.T) {
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "CCell",
		Fields: []objmodel.Field{{Name: "a"}},
	})
	o := h.New(cls)
	rt := stm.New(h, stm.Config{})
	tr := trace.New(trace.Config{})
	rec := causal.NewRecorder(causal.Config{})
	tr.SetSink(rec)
	rt.SetTracer(tr)
	for i := 0; i < 5; i++ {
		if err := rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	reg.RegisterSTM("rt", rt)
	s := reg.Snapshot()[0]
	if s.Causal == nil {
		t.Fatal("snapshot missing causal line despite recorder sink")
	}
	if s.Causal.Commits != 5 || s.Causal.Attempts != 5 {
		t.Errorf("causal line = %+v, want 5 commits/attempts", s.Causal)
	}

	tr.SetSink(nil)
	if s := reg.Snapshot()[0]; s.Causal != nil {
		t.Error("causal line still exported after sink removal")
	}
}
