// Package metrics exports live STM runtime state over HTTP: a Registry of
// named runtimes serves point-in-time JSON snapshots (counters from
// Stats.Snapshot plus, when a tracer is installed, the trace.Snapshot with
// hotspots and latency percentiles) at /metrics, and the same data through
// the standard expvar mechanism at /debug/vars.
//
// The exporter is strictly read-side: collecting a snapshot sums sharded
// counters and walks the tracer's aggregates, never blocking a running
// transaction. cmd/stmtop polls the /metrics endpoint and renders rates;
// stmbench -metrics-addr serves it while a sweep runs.
package metrics

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/causal"
	"repro/internal/durable"
	"repro/internal/lazystm"
	"repro/internal/stm"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

// HotspotTopN is how many hotspot entries a collected snapshot carries.
const HotspotTopN = 10

// RuntimeSnapshot is one runtime's exported state at one instant.
type RuntimeSnapshot struct {
	Name   string               `json:"name"`
	Kind   string               `json:"kind"` // runtime name (stmapi.Runtimes)
	UnixNs int64                `json:"unix_ns"`
	Stats  map[string]int64     `json:"stats"`
	Trace  *trace.Snapshot      `json:"trace,omitempty"`  // nil when no tracer installed
	Causal *causal.LiveSnapshot `json:"causal,omitempty"` // nil unless a causal.Recorder is the tracer's sink

	// Durability is the WAL/checkpoint profile, present only for runtimes
	// registered through RegisterStore (a durable.Store-backed runtime).
	Durability *durable.DurabilitySnapshot `json:"durability,omitempty"`
}

// Collector produces a RuntimeSnapshot on demand.
type Collector func() RuntimeSnapshot

// Registry holds named collectors and serves their snapshots. Registering
// a name again replaces the previous collector (the bench sweeps create a
// fresh runtime per measurement and re-register it under a stable name).
type Registry struct {
	mu     sync.Mutex
	order  []string
	byName map[string]Collector
}

// NewRegistry creates an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Collector)}
}

// Register installs c under name, replacing any previous collector with
// the same name.
func (r *Registry) Register(name string, c Collector) {
	r.mu.Lock()
	if _, ok := r.byName[name]; !ok {
		r.order = append(r.order, name)
	}
	r.byName[name] = c
	r.mu.Unlock()
}

// RegisterRuntime exports any stmapi.Runtime under name. The counter set is
// whatever the runtime's Stats().Fields() enumerates, so new counters (policy
// self-aborts, dooms) appear in every exporter without touching this package.
func (r *Registry) RegisterRuntime(name string, rt stmapi.Runtime) {
	r.Register(name, func() RuntimeSnapshot { return collectRuntime(name, rt) })
}

// RegisterStore exports a durable.Store's runtime under name, with the
// store's WAL/checkpoint profile attached as the snapshot's durability line.
func (r *Registry) RegisterStore(name string, s *durable.Store) {
	rt := s.Runtime()
	r.Register(name, func() RuntimeSnapshot {
		snap := collectRuntime(name, rt)
		d := s.Durability()
		snap.Durability = &d
		return snap
	})
}

func collectRuntime(name string, rt stmapi.Runtime) RuntimeSnapshot {
	s := rt.Stats()
	stats := make(map[string]int64)
	for _, f := range s.Fields() {
		stats[f.Name] = f.Value
	}
	snap := RuntimeSnapshot{
		Name: name, Kind: rt.Name(), UnixNs: time.Now().UnixNano(),
		Stats: stats,
	}
	if t := rt.Tracer(); t != nil {
		ts := t.Snapshot(HotspotTopN)
		snap.Trace = &ts
		if rec, ok := t.Sink().(*causal.Recorder); ok {
			ls := rec.Live()
			snap.Causal = &ls
		}
	}
	return snap
}

// RegisterSTM exports an eager-versioning runtime under name.
func (r *Registry) RegisterSTM(name string, rt *stm.Runtime) {
	r.RegisterRuntime(name, rt.API())
}

// RegisterLazy exports a lazy-versioning runtime under name.
func (r *Registry) RegisterLazy(name string, rt *lazystm.Runtime) {
	r.RegisterRuntime(name, rt.API())
}

// Snapshot collects every registered runtime, in registration order.
func (r *Registry) Snapshot() []RuntimeSnapshot {
	r.mu.Lock()
	collectors := make([]Collector, 0, len(r.order))
	for _, name := range r.order {
		collectors = append(collectors, r.byName[name])
	}
	r.mu.Unlock()
	out := make([]RuntimeSnapshot, 0, len(collectors))
	for _, c := range collectors {
		out = append(out, c())
	}
	return out
}

// Handler serves the registry's snapshots as a JSON array.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// PublishExpvar exposes the registry through package expvar under name
// (visible at /debug/vars on any mux carrying expvar.Handler). Publishing
// an already-published name is a no-op rather than the expvar panic.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Server is a live metrics endpoint bound to a listener.
type Server struct {
	Addr string // actual listen address (useful with ":0")
	ln   net.Listener
	srv  *http.Server
}

// Serve starts an HTTP server on addr with /metrics (the registry's JSON)
// and /debug/vars (expvar). It returns once the listener is bound; the
// server runs until Close.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
