package metrics

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/lazystm"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/trace"
)

func runSomeTxns(t *testing.T) (*stm.Runtime, *lazystm.Runtime) {
	t.Helper()
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "MCell",
		Fields: []objmodel.Field{{Name: "a"}, {Name: "b"}},
	})
	o := h.New(cls)
	ert := stm.New(h, stm.Config{})
	ert.SetTracer(trace.New(trace.Config{ShardCapacity: 256}))
	for i := 0; i < 20; i++ {
		if err := ert.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	h2 := objmodel.NewHeap()
	cls2 := h2.MustDefineClass(objmodel.ClassSpec{
		Name:   "MCell",
		Fields: []objmodel.Field{{Name: "a"}},
	})
	o2 := h2.New(cls2)
	lrt := lazystm.New(h2, lazystm.Config{})
	for i := 0; i < 7; i++ {
		if err := lrt.Atomic(nil, func(tx *lazystm.Txn) error {
			tx.Write(o2, 0, tx.Read(o2, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return ert, lrt
}

func TestRegistrySnapshot(t *testing.T) {
	ert, lrt := runSomeTxns(t)
	reg := NewRegistry()
	reg.RegisterSTM("eager-main", ert)
	reg.RegisterLazy("lazy-main", lrt)

	snaps := reg.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	e, l := snaps[0], snaps[1]
	if e.Name != "eager-main" || e.Kind != "eager" {
		t.Errorf("eager snapshot header = %+v", e)
	}
	if e.Stats["commits"] != 20 || e.Stats["txn_writes"] != 20 {
		t.Errorf("eager stats = %v", e.Stats)
	}
	if e.Trace == nil {
		t.Fatal("eager snapshot missing trace (tracer installed)")
	}
	if e.Trace.ByKind["commit"] != 20 || e.Trace.CommitLatency.Count != 20 {
		t.Errorf("trace snapshot = %+v", e.Trace)
	}
	if l.Kind != "lazy" || l.Stats["commits"] != 7 {
		t.Errorf("lazy snapshot = %+v", l)
	}
	if l.Trace != nil {
		t.Error("lazy snapshot has trace but no tracer was installed")
	}
	if e.UnixNs == 0 {
		t.Error("snapshot missing timestamp")
	}
}

func TestRegistryReplaceByName(t *testing.T) {
	ert, _ := runSomeTxns(t)
	reg := NewRegistry()
	reg.RegisterSTM("rt", ert)
	fresh := stm.New(objmodel.NewHeap(), stm.Config{})
	reg.RegisterSTM("rt", fresh)
	snaps := reg.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1 (replacement, not append)", len(snaps))
	}
	if snaps[0].Stats["commits"] != 0 {
		t.Errorf("commits = %d, want 0 from the replacing runtime", snaps[0].Stats["commits"])
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	ert, lrt := runSomeTxns(t)
	reg := NewRegistry()
	reg.RegisterSTM("eager-main", ert)
	reg.RegisterLazy("lazy-main", lrt)
	reg.PublishExpvar("stm-test-registry")
	reg.PublishExpvar("stm-test-registry") // second publish must not panic

	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var snaps []RuntimeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Stats["commits"] != 20 {
		t.Fatalf("decoded = %+v", snaps)
	}
	if snaps[0].Trace == nil || snaps[0].Trace.CommitLatency.P50Ns <= 0 {
		t.Errorf("trace percentiles missing over the wire: %+v", snaps[0].Trace)
	}

	vars, err := http.Get("http://" + srv.Addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vars.Body.Close()
	var all map[string]json.RawMessage
	if err := json.NewDecoder(vars.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if _, ok := all["stm-test-registry"]; !ok {
		t.Error("expvar missing published registry")
	}
}

func TestRobustnessCountersExported(t *testing.T) {
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "RCell",
		Fields: []objmodel.Field{{Name: "a"}},
	})
	o := h.New(cls)
	ert := stm.New(h, stm.Config{})
	if err := ert.AtomicIrrevocable(nil, func(tx *stm.Txn) error {
		tx.Write(o, 0, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.RegisterSTM("rt", ert)
	s := reg.Snapshot()[0]
	if s.Stats["irrevocable_txns"] != 1 {
		t.Errorf("irrevocable_txns = %d, want 1", s.Stats["irrevocable_txns"])
	}
	if s.Stats["irrevocable_ns"] <= 0 {
		t.Errorf("irrevocable_ns = %d, want > 0", s.Stats["irrevocable_ns"])
	}
	for _, key := range []string{"reaper_steals", "escalations"} {
		if _, ok := s.Stats[key]; !ok {
			t.Errorf("stat %q missing from exported snapshot", key)
		}
	}
}
