package stats

import (
	"sync"
	"testing"
)

func TestAddLoad(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero Counter loads %d", c.Load())
	}
	c.Add(5)
	c.Add(-2)
	if got := c.Load(); got != 3 {
		t.Errorf("Load = %d, want 3", got)
	}
}

func TestAddShardMasksHint(t *testing.T) {
	var c Counter
	// Hints far outside [0, NumShards) must still land somewhere.
	for _, hint := range []int{0, 1, NumShards, NumShards * 7, 1 << 30, -1} {
		c.AddShard(hint, 1)
	}
	if got := c.Load(); got != 6 {
		t.Errorf("Load = %d, want 6", got)
	}
}

func TestParallelAdds(t *testing.T) {
	var c Counter
	const goroutines = 8
	const iters = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.AddShard(g*31+i, 1)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*iters {
		t.Errorf("Load = %d, want %d", got, goroutines*iters)
	}
}
