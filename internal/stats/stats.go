// Package stats provides sharded counters for hot-path runtime statistics.
//
// A single atomic counter bumped by every thread serializes the whole
// system on one cache line — exactly the scalability failure the paper's
// Section 7 results are about avoiding. A Counter spreads its value over
// NumShards cache-line-padded slots so concurrent adders (almost always)
// touch distinct lines; Load sums the shards. Readers are assumed rare
// relative to writers, which is the profile of every counter in this
// repository: bumped millions of times per run, read once at the end.
package stats

import (
	"sync/atomic"
	"unsafe"
)

// NumShards is the number of independent shards per counter. Power of two.
const NumShards = 16

// shard is one counter slot padded out to a 64-byte cache line so that
// adjacent shards never share a line (false sharing would defeat the point).
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a sharded monotonic counter. The zero value is ready to use.
type Counter struct {
	shards [NumShards]shard
}

// Load returns the current total across all shards. It is not a snapshot of
// a single instant (adds may interleave with the sum), which is the usual
// contract for statistics counters.
func (c *Counter) Load() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// AddShard adds d to the shard selected by hint (masked into range). Callers
// that already own a cheap quasi-unique value — a transaction ID, a thread
// index — pass it here so concurrent adders spread across lines.
func (c *Counter) AddShard(hint int, d int64) {
	c.shards[hint&(NumShards-1)].v.Add(d)
}

// Add adds d on a shard chosen by Hint.
func (c *Counter) Add(d int64) {
	c.AddShard(Hint(), d)
}

// Hint returns a cheap shard hint that tends to differ between goroutines:
// the page of the caller's stack. Goroutine stacks are distinct heap
// allocations at least 2KB apart, so concurrent callers on different
// goroutines usually land on different shards. Allocation-free.
func Hint() int {
	var x byte
	return int(uintptr(unsafe.Pointer(&x)) >> 11)
}
