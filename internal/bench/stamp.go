package bench

// STAMP-shape throughput sweeps. Like the parallel sweeps these drive the
// runtimes' Go API directly, but instead of synthetic uniform mixes they
// run the structured workloads in internal/workloads (vacation, kmeans,
// genome) whose access shapes echo the STAMP suite's contention profiles.
// Each measurement also reports the validation profile — clock advances,
// fast-path hits, fallback walks — so walk-vs-clock A/B runs land in the
// same JSON trajectory.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/workloads"
)

// StampSpec configures one STAMP-shape measurement.
type StampSpec struct {
	Workload   string `json:"workload"`             // vacation, kmeans, genome
	Versioning string `json:"versioning"`           // runtime name (stmapi.Runtimes)
	Policy     string `json:"policy,omitempty"`     // contention policy; empty = backoff
	Validation string `json:"validation,omitempty"` // "clock" (default) or "walk"
	Goroutines int    `json:"goroutines"`
	Txns       int    `json:"txns"` // committed transactions demanded, total
}

// StampResult is one measurement, flattened for JSON output.
type StampResult struct {
	StampSpec
	ElapsedNs  int64   `json:"elapsed_ns"`
	NsPerTxn   float64 `json:"ns_per_op"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	Starts     int64   `json:"starts"`
	Commits    int64   `json:"commits"`
	Aborts     int64   `json:"aborts"`
	Retries    int64   `json:"retries"`

	ClockAdvances       int64 `json:"clock_advances,omitempty"`
	FastpathValidations int64 `json:"fastpath_validations,omitempty"`
	FallbackWalks       int64 `json:"fallback_walks,omitempty"`

	// Multi-version profile (mvstm has no validation step; these are its
	// equivalent activity signal).
	SnapshotReads int64 `json:"snapshot_reads,omitempty"`
	ReadOnlyTxns  int64 `json:"read_only_txns,omitempty"`
}

func (s *StampSpec) defaults() {
	if s.Workload == "" {
		s.Workload = "vacation"
	}
	if s.Versioning == "" {
		s.Versioning = "eager"
	}
	if s.Goroutines <= 0 {
		s.Goroutines = 1
	}
	if s.Txns <= 0 {
		s.Txns = 100_000
	}
}

// RunStamp executes one STAMP-shape measurement: the workload's structures
// are built on a fresh heap, then Txns transactions are split across
// Goroutines workers, each running the workload body.
func RunStamp(spec StampSpec) (StampResult, error) {
	spec.defaults()
	h := objmodel.NewHeap()
	w, err := workloads.NewStamp(spec.Workload, h)
	if err != nil {
		return StampResult{}, fmt.Errorf("bench: %w", err)
	}
	pol, err := conflict.ByNameOrEnv(spec.Policy)
	if err != nil {
		return StampResult{}, fmt.Errorf("bench: %w", err)
	}
	noClock, err := validationConfig(spec.Validation)
	if err != nil {
		return StampResult{}, err
	}
	common := stmapi.CommonConfig{Handler: pol, NoCommitClock: noClock}

	api, err := stmapi.New(spec.Versioning, h, common)
	if err != nil {
		return StampResult{}, fmt.Errorf("bench: %w", err)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < spec.Goroutines; g++ {
		n := spec.Txns / spec.Goroutines
		if g < spec.Txns%spec.Goroutines {
			n++
		}
		wg.Add(1)
		go func(seed uint64, n int) {
			defer wg.Done()
			rng := seed*2862933555777941757 + 3037000493
			// One closure per worker (see RunParallel): a per-transaction
			// closure would allocate and mask the runtimes' zero-alloc path.
			body := func(tx stmapi.Txn) error {
				w.Body(tx, &rng)
				return nil
			}
			for i := 0; i < n; i++ {
				splitmix(&rng)
				_ = api.Atomic(body)
			}
		}(uint64(g+1), n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := api.Stats()
	res := StampResult{
		StampSpec:           spec,
		ElapsedNs:           elapsed.Nanoseconds(),
		NsPerTxn:            float64(elapsed.Nanoseconds()) / float64(spec.Txns),
		Starts:              s.Starts,
		Commits:             s.Commits,
		Aborts:              s.Aborts,
		Retries:             s.Starts - s.Commits,
		ClockAdvances:       s.ClockAdvances,
		FastpathValidations: s.FastpathValidations,
		FallbackWalks:       s.FallbackWalks,
		SnapshotReads:       s.SnapshotReads,
		ReadOnlyTxns:        s.ReadOnlyTxns,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.TxnsPerSec = float64(spec.Txns) / secs
	}
	return res, nil
}

// StampSpecs enumerates the sweep: each workload on each registered runtime
// at each goroutine count.
func StampSpecs(maxGoroutines, txns int) []StampSpec {
	var specs []StampSpec
	for _, versioning := range stmapi.Runtimes() {
		for _, name := range workloads.StampNames() {
			for _, g := range GoroutineSweep(maxGoroutines) {
				specs = append(specs, StampSpec{
					Workload:   name,
					Versioning: versioning,
					Goroutines: g,
					Txns:       txns,
				})
			}
		}
	}
	return specs
}

// RunStampSweep runs every spec and returns the results.
func RunStampSweep(specs []StampSpec) ([]StampResult, error) {
	results := make([]StampResult, 0, len(specs))
	for _, spec := range specs {
		res, err := RunStamp(spec)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// FormatStamp renders results as a table mirroring FormatParallel.
func FormatStamp(results []StampResult) string {
	type key struct{ workload, versioning string }
	cols := make(map[int]bool)
	cells := make(map[key]map[int]StampResult)
	var order []key
	for _, r := range results {
		k := key{r.Workload, r.Versioning}
		if cells[k] == nil {
			cells[k] = make(map[int]StampResult)
			order = append(order, k)
		}
		cells[k][r.Goroutines] = r
		cols[r.Goroutines] = true
	}
	var gs []int
	for g := 1; g <= 1<<20; g++ {
		if cols[g] {
			gs = append(gs, g)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "STAMP-shape throughput (txns/sec; aborts in parens)\n")
	fmt.Fprintf(&b, "%-24s", "workload/runtime")
	for _, g := range gs {
		fmt.Fprintf(&b, " %14dg", g)
	}
	b.WriteByte('\n')
	for _, k := range order {
		fmt.Fprintf(&b, "%-24s", k.workload+"/"+k.versioning)
		for _, g := range gs {
			r, ok := cells[k][g]
			if !ok {
				fmt.Fprintf(&b, " %15s", "-")
				continue
			}
			fmt.Fprintf(&b, " %9s (%s)", human(int64(r.TxnsPerSec)), human(r.Aborts))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
