package bench

// The causal figure measures the flight recorder itself: for each
// (runtime × policy) on a deliberately contended workload, one baseline
// run with tracing off and one run with a Tracer + causal.Recorder sink
// attached. The traced run's conflict DAG is analyzed for chain depth,
// consecutive aborts, and wasted work — the starvation profile the
// ROADMAP's starvation-freedom item needs as a trajectory artifact — and
// the baseline comparison prices the observability layer honestly.

import (
	"fmt"
	"strings"

	"repro/internal/causal"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

// CausalSpec configures one causal-figure measurement: the embedded
// parallel workload, run twice (baseline, then traced).
type CausalSpec struct {
	ParallelSpec
	Contention string `json:"contention"` // "contended" or "overhead" (documentation only)
}

// CausalResult is one causal measurement, flattened for JSON output.
type CausalResult struct {
	CausalSpec

	BaselineNsPerTxn float64 `json:"baseline_ns_per_op"` // tracing off
	TracedNsPerTxn   float64 `json:"traced_ns_per_op"`   // tracer + recorder on
	OverheadPct      float64 `json:"overhead_pct"`       // traced vs baseline

	Commits int64 `json:"commits"` // traced run
	Aborts  int64 `json:"aborts"`

	// Starvation profile from the traced run's conflict DAG.
	WastedWorkPct        float64          `json:"wasted_work_pct"`
	MaxConsecutiveAborts int              `json:"max_consec_aborts"`
	LongestChainDepth    int              `json:"longest_chain_depth"`
	MeanChainDepth       float64          `json:"mean_chain_depth,omitempty"`
	EdgeCounts           map[string]int64 `json:"edge_counts,omitempty"`
	DroppedAttempts      uint64           `json:"dropped_attempts,omitempty"`
	DroppedEdges         uint64           `json:"dropped_edges,omitempty"`
}

// RunCausal executes one causal measurement: a baseline run, then a
// traced run feeding a flight recorder, then the starvation analysis.
func RunCausal(spec CausalSpec) (CausalResult, error) {
	base, err := RunParallel(spec.ParallelSpec)
	if err != nil {
		return CausalResult{}, err
	}
	tr := trace.New(trace.Config{})
	rec := causal.NewRecorder(causal.Config{})
	tr.SetSink(rec)
	traced, err := RunParallel(spec.ParallelSpec, WithTracer(tr))
	if err != nil {
		return CausalResult{}, err
	}
	g := rec.Graph()
	rep := causal.Analyze(g)

	res := CausalResult{
		CausalSpec:           spec,
		BaselineNsPerTxn:     base.NsPerTxn,
		TracedNsPerTxn:       traced.NsPerTxn,
		Commits:              traced.Commits,
		Aborts:               traced.Aborts,
		WastedWorkPct:        100 * rep.WastedWorkRatio,
		MaxConsecutiveAborts: rep.MaxConsecutiveAborts,
		LongestChainDepth:    rep.LongestChainDepth,
		EdgeCounts:           rep.EdgeCounts,
		DroppedAttempts:      g.DroppedAttempts,
		DroppedEdges:         g.DroppedEdges,
	}
	if base.NsPerTxn > 0 {
		res.OverheadPct = 100 * (traced.NsPerTxn - base.NsPerTxn) / base.NsPerTxn
	}
	var sumDepth, nDepth int
	for d, n := range rep.ChainDepths {
		sumDepth += d * n
		nDepth += n
	}
	if nDepth > 0 {
		res.MeanChainDepth = float64(sumDepth) / float64(nDepth)
	}
	return res, nil
}

// CausalSpecs enumerates the causal figure: every policy on every
// registered runtime over a contended pool (few objects, write-heavy — the
// regime where the causal structure is interesting), plus a read-heavy
// low-contention config per runtime that prices the recorder where tracing
// is usually left on.
func CausalSpecs(goroutines, txns int) []CausalSpec {
	if goroutines < 2 {
		goroutines = 2 // one worker has no causality to record
	}
	var specs []CausalSpec
	for _, versioning := range stmapi.Runtimes() {
		for _, policy := range []string{"backoff", "timestamp", "karma"} {
			specs = append(specs, CausalSpec{
				Contention: "contended",
				ParallelSpec: ParallelSpec{
					Workload: "contended", Versioning: versioning, Policy: policy,
					Goroutines: goroutines, Objects: 8, OpsPerTxn: 4, ReadPct: 20,
					Txns: txns,
				},
			})
		}
		specs = append(specs, CausalSpec{
			Contention: "overhead",
			ParallelSpec: ParallelSpec{
				Workload: "read-heavy", Versioning: versioning, Policy: "backoff",
				Goroutines: goroutines, Objects: 1024, OpsPerTxn: 8, ReadPct: 90,
				Txns: txns,
			},
		})
	}
	return specs
}

// RunCausalSweep runs every spec in order.
func RunCausalSweep(specs []CausalSpec) ([]CausalResult, error) {
	out := make([]CausalResult, 0, len(specs))
	for _, spec := range specs {
		res, err := RunCausal(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatCausal renders causal results as a table.
func FormatCausal(results []CausalResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "causal flight recorder: starvation profile and tracing overhead\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %8s %8s %7s %6s %8s\n",
		"workload/runtime/policy", "base ns", "traced ns", "ovhd", "aborts", "wasted", "chain", "consec")
	for _, r := range results {
		name := fmt.Sprintf("%s/%s/%s", r.Workload, r.Versioning, r.Policy)
		fmt.Fprintf(&b, "%-28s %10.0f %10.0f %7.1f%% %8s %6.1f%% %6d %8d\n",
			name, r.BaselineNsPerTxn, r.TracedNsPerTxn, r.OverheadPct,
			human(r.Aborts), r.WastedWorkPct, r.LongestChainDepth, r.MaxConsecutiveAborts)
	}
	return b.String()
}
