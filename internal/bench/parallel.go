package bench

// Parallel STM throughput sweeps. Unlike the figure reproductions in this
// package, which drive whole TJ programs through the interpreter, these
// benchmarks hit the STM runtimes' Go API directly: they exist to measure
// the hot path itself (open-for-read/write, commit, descriptor churn) as
// thread count grows, so interpreter dispatch cost does not damp the
// signal. Three canonical mixes — read-heavy, write-heavy, mixed — run at
// 1, 2, 4, ... GOMAXPROCS goroutines over every runtime in the stmapi
// registry. Results are JSON-serializable so cmd/stmbench -json can emit a
// machine-readable perf trajectory.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

// ParallelSpec configures one parallel throughput measurement.
type ParallelSpec struct {
	Workload   string `json:"workload"`             // read-heavy, write-heavy, mixed
	Versioning string `json:"versioning"`           // runtime name (stmapi.Runtimes)
	Policy     string `json:"policy,omitempty"`     // contention policy (conflict.ByName); empty = backoff
	Validation string `json:"validation,omitempty"` // "clock" (default) or "walk"
	Goroutines int    `json:"goroutines"`
	Objects    int    `json:"objects"`     // size of the shared object pool
	OpsPerTxn  int    `json:"ops_per_txn"` // accesses per transaction
	ReadPct    int    `json:"read_pct"`    // share of accesses that are reads
	Txns       int    `json:"txns"`        // committed transactions demanded, total
}

// ParallelResult is one measurement, flattened for JSON output. Alongside
// throughput it carries the conflict profile — starts, aborts, and retries
// (attempts that had to re-execute) — so a BENCH_*.json trajectory tracks
// contention behavior, not just ops/sec.
type ParallelResult struct {
	ParallelSpec
	ElapsedNs  int64   `json:"elapsed_ns"`
	NsPerTxn   float64 `json:"ns_per_op"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	Starts     int64   `json:"starts"`
	Commits    int64   `json:"commits"`
	Aborts     int64   `json:"aborts"`
	Retries    int64   `json:"retries"`               // re-executed attempts: starts - commits
	SelfAborts int64   `json:"self_aborts,omitempty"` // policy SelfAbort decisions
	Dooms      int64   `json:"dooms,omitempty"`       // policy AbortOther decisions that landed

	// Validation profile: how the commit-time read-set check resolved.
	ClockAdvances       int64 `json:"clock_advances,omitempty"`
	FastpathValidations int64 `json:"fastpath_validations,omitempty"`
	FallbackWalks       int64 `json:"fallback_walks,omitempty"`

	// Multi-version profile (mvstm only): snapshot-path reads, transactions
	// that committed on the zero-metadata read-only path, aborts among them
	// (the zero-abort claim demands this stays 0), and GC'd versions.
	SnapshotReads  int64 `json:"snapshot_reads,omitempty"`
	ReadOnlyTxns   int64 `json:"read_only_txns,omitempty"`
	ReadOnlyAborts int64 `json:"read_only_aborts,omitempty"`
	VersionsGCd    int64 `json:"versions_gcd,omitempty"`
}

// ParallelOption customizes RunParallel beyond the JSON-serializable spec
// (observability hooks; the spec stays a plain config record).
type ParallelOption func(*parallelOpts)

type parallelOpts struct {
	tracer    *trace.Tracer
	onRuntime func(stmapi.Runtime)
}

// WithTracer installs t on the runtime each measurement creates, so a
// sweep's conflicts, hotspots, and latency histograms accumulate into one
// tracer.
func WithTracer(t *trace.Tracer) ParallelOption {
	return func(o *parallelOpts) { o.tracer = t }
}

// WithRuntime calls f with each runtime a measurement creates, before any
// transaction runs (metrics registration and the like). The hook receives
// the registry-built stmapi.Runtime regardless of which runtime the spec
// named; callers needing a concrete surface probe with a type assertion.
func WithRuntime(f func(stmapi.Runtime)) ParallelOption {
	return func(o *parallelOpts) { o.onRuntime = f }
}

// parallelDefaults fills zero fields of a spec.
func (s *ParallelSpec) defaults() {
	if s.Objects <= 0 {
		s.Objects = 1024
	}
	if s.OpsPerTxn <= 0 {
		s.OpsPerTxn = 8
	}
	if s.Goroutines <= 0 {
		s.Goroutines = 1
	}
	if s.Txns <= 0 {
		s.Txns = 100_000
	}
	if s.Versioning == "" {
		s.Versioning = "eager"
	}
}

// parallelFixture builds the shared object pool.
func parallelFixture(n int) (*objmodel.Heap, []*objmodel.Object) {
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name: "PCell",
		Fields: []objmodel.Field{
			{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"},
		},
	})
	objs := make([]*objmodel.Object, n)
	for i := range objs {
		objs[i] = h.New(cls)
	}
	return h, objs
}

// validationConfig maps a spec's validation mode onto the runtime knob:
// "" and "clock" use the commit-clock fast path, "walk" forces full
// read-set walks (the pre-clock behavior, kept for A/B measurement).
func validationConfig(mode string) (noClock bool, err error) {
	switch mode {
	case "", "clock":
		return false, nil
	case "walk":
		return true, nil
	default:
		return false, fmt.Errorf("bench: unknown validation mode %q (want clock or walk)", mode)
	}
}

// splitmix advances a SplitMix64 state and returns the next value.
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RunParallel executes one parallel throughput measurement and returns the
// result. Txns transactions are split across Goroutines workers; each
// transaction performs OpsPerTxn reads/writes on pseudo-randomly chosen
// objects according to ReadPct.
func RunParallel(spec ParallelSpec, opts ...ParallelOption) (ParallelResult, error) {
	spec.defaults()
	var po parallelOpts
	for _, opt := range opts {
		opt(&po)
	}
	h, objs := parallelFixture(spec.Objects)

	pol, err := conflict.ByNameOrEnv(spec.Policy)
	if err != nil {
		return ParallelResult{}, fmt.Errorf("bench: %w", err)
	}
	noClock, err := validationConfig(spec.Validation)
	if err != nil {
		return ParallelResult{}, err
	}
	common := stmapi.CommonConfig{Handler: pol, NoCommitClock: noClock}

	// Every runtime is built by name through the stmapi registry and driven
	// through the uniform surface; an unrecognized Versioning fails fast
	// with the registry's error listing what is available.
	api, err := stmapi.New(spec.Versioning, h, common)
	if err != nil {
		return ParallelResult{}, fmt.Errorf("bench: %w", err)
	}
	if po.onRuntime != nil {
		po.onRuntime(api)
	}
	if po.tracer != nil {
		api.SetTracer(po.tracer)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < spec.Goroutines; g++ {
		n := spec.Txns / spec.Goroutines
		if g < spec.Txns%spec.Goroutines {
			n++
		}
		wg.Add(1)
		go func(seed uint64, n int) {
			defer wg.Done()
			rng := seed*2862933555777941757 + 3037000493
			// One body closure per worker, not per transaction: it escapes
			// through the stmapi interface call, and a per-transaction
			// allocation here would mask the runtimes' zero-alloc hot path.
			body := func(tx stmapi.Txn) error {
				r := rng
				for i := 0; i < spec.OpsPerTxn; i++ {
					r += 0x9e3779b97f4a7c15
					z := (r ^ (r >> 30)) * 0xbf58476d1ce4e5b9
					o := objs[z%uint64(len(objs))]
					slot := int(z>>32) & 3
					if int(z>>40%100) < spec.ReadPct {
						_ = tx.Read(o, slot)
					} else {
						tx.Write(o, slot, z)
					}
				}
				return nil
			}
			for i := 0; i < n; i++ {
				splitmix(&rng)
				_ = api.Atomic(body)
			}
		}(uint64(g+1), n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := api.Stats()
	res := ParallelResult{
		ParallelSpec:        spec,
		ElapsedNs:           elapsed.Nanoseconds(),
		NsPerTxn:            float64(elapsed.Nanoseconds()) / float64(spec.Txns),
		Starts:              s.Starts,
		Commits:             s.Commits,
		Aborts:              s.Aborts,
		Retries:             s.Starts - s.Commits,
		SelfAborts:          s.SelfAborts,
		Dooms:               s.DoomsIssued,
		ClockAdvances:       s.ClockAdvances,
		FastpathValidations: s.FastpathValidations,
		FallbackWalks:       s.FallbackWalks,
		SnapshotReads:       s.SnapshotReads,
		ReadOnlyTxns:        s.ReadOnlyTxns,
		ReadOnlyAborts:      s.ReadOnlyAborts,
		VersionsGCd:         s.VersionsGCd,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.TxnsPerSec = float64(spec.Txns) / secs
	}
	return res, nil
}

// ParallelMixes are the canonical workload mixes.
var ParallelMixes = []struct {
	Name    string
	ReadPct int
}{
	{"read-heavy", 90},
	{"mixed", 50},
	{"write-heavy", 10},
}

// GoroutineSweep returns 1, 2, 4, ... up to max, always including max
// itself (so a 6-core host measures 1, 2, 4, 6).
func GoroutineSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for g := 1; g < max; g *= 2 {
		out = append(out, g)
	}
	return append(out, max)
}

// ParallelSpecs enumerates the full sweep: each mix on each registered
// runtime at each goroutine count, with txns transactions per measurement.
func ParallelSpecs(maxGoroutines, txns int) []ParallelSpec {
	var specs []ParallelSpec
	for _, versioning := range stmapi.Runtimes() {
		for _, mix := range ParallelMixes {
			for _, g := range GoroutineSweep(maxGoroutines) {
				specs = append(specs, ParallelSpec{
					Workload:   mix.Name,
					Versioning: versioning,
					Goroutines: g,
					ReadPct:    mix.ReadPct,
					Txns:       txns,
				})
			}
		}
	}
	return specs
}

// RunParallelSweep runs every spec and returns the results. Options apply
// to every measurement.
func RunParallelSweep(specs []ParallelSpec, opts ...ParallelOption) ([]ParallelResult, error) {
	results := make([]ParallelResult, 0, len(specs))
	for _, spec := range specs {
		res, err := RunParallel(spec, opts...)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// DefaultParallelGoroutines is the default top of the goroutine sweep.
func DefaultParallelGoroutines() int { return runtime.GOMAXPROCS(0) }

// FormatParallel renders results as a table: one row per mix/runtime, one
// column per goroutine count, txns/sec in each cell.
func FormatParallel(results []ParallelResult) string {
	type key struct{ workload, versioning string }
	cols := make(map[int]bool)
	cells := make(map[key]map[int]ParallelResult)
	var order []key
	for _, r := range results {
		k := key{r.Workload, r.Versioning}
		if cells[k] == nil {
			cells[k] = make(map[int]ParallelResult)
			order = append(order, k)
		}
		cells[k][r.Goroutines] = r
		cols[r.Goroutines] = true
	}
	var gs []int
	for g := 1; g <= 1<<20; g++ {
		if cols[g] {
			gs = append(gs, g)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "parallel STM throughput (txns/sec; aborts in parens)\n")
	fmt.Fprintf(&b, "%-24s", "workload/runtime")
	for _, g := range gs {
		fmt.Fprintf(&b, " %14dg", g)
	}
	b.WriteByte('\n')
	for _, k := range order {
		fmt.Fprintf(&b, "%-24s", k.workload+"/"+k.versioning)
		for _, g := range gs {
			r, ok := cells[k][g]
			if !ok {
				fmt.Fprintf(&b, " %15s", "-")
				continue
			}
			fmt.Fprintf(&b, " %9s (%s)", human(int64(r.TxnsPerSec)), human(r.Aborts))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
