package bench

// The harnesses build runtimes by name through the stmapi registry, which
// is populated by each runtime package's init. These blank imports are what
// pull the runtimes into any binary that links the bench package; a new
// runtime joins every sweep, matrix, and spec enumeration by being added
// here (or imported anywhere else in the binary).
import (
	_ "repro/internal/lazystm"
	_ "repro/internal/mvstm"
	_ "repro/internal/stm"
)
