package bench

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/lang/ir"
	"repro/internal/litmus"
	"repro/internal/workloads"
)

// ---- Figure 13: static barrier-removal counts ----

// StaticRow is one program's row of Figure 13.
type StaticRow struct {
	Program string
	Report  *analysis.Report
}

// StaticResult is the Figure 13 table.
type StaticResult struct {
	Rows []StaticRow
}

// RunStatic produces Figure 13: for each workload, the barriers in
// reachable non-transactional code and how many are removed by NAIT but
// not TL, by TL but not NAIT, and by both applied together.
func RunStatic() (*StaticResult, error) {
	res := &StaticResult{}
	for _, w := range workloads.All() {
		prog, err := wFrontend(w)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		rep := analysis.Run(prog, analysis.Options{Granularity: 1})
		res.Rows = append(res.Rows, StaticRow{Program: w.Name, Report: rep})
	}
	return res, nil
}

func wFrontend(w workloads.Workload) (*ir.Program, error) {
	prog, _, err := w.Compile(0, 1) // O0: counting must see every barrier
	return prog, err
}

// String renders the Figure 13 table.
func (r *StaticResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 13: static counts of non-transactional barriers removed\n")
	fmt.Fprintf(&b, "%-11s %-6s %7s %9s %9s %9s\n",
		"program", "type", "total", "NAIT-TL", "TL-NAIT", "TL+NAIT")
	for _, row := range r.Rows {
		rep := row.Report
		fmt.Fprintf(&b, "%-11s %-6s %7d %9d %9d %9d\n",
			row.Program, "read", rep.TotalReads, rep.NAITOnlyReads, rep.TLOnlyReads, rep.UnionReads)
		fmt.Fprintf(&b, "%-11s %-6s %7d %9d %9d %9d\n",
			"", "write", rep.TotalWrites, rep.NAITOnlyWrites, rep.TLOnlyWrites, rep.UnionWrites)
	}
	return b.String()
}

// ---- Figure 6: the anomaly matrix ----

// RunAnomalies produces the Figure 6 matrix and whether it matches the
// paper's expectations.
func RunAnomalies() (string, bool) {
	results := litmus.RunAll(litmus.AllModes)
	ok, mismatch := litmus.Matches(results, litmus.AllModes)
	out := "Figure 6: weak atomicity anomaly matrix (observed)\n" +
		litmus.FormatMatrix(results, litmus.AllModes)
	if !ok {
		out += "\nMISMATCH vs paper: " + mismatch + "\n"
	}
	return out, ok
}
