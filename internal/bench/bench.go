// Package bench is the evaluation harness: it regenerates every table and
// figure of the paper's Section 7 (plus the Figure 6 anomaly matrix of
// Section 2) on the host machine. Absolute numbers differ from the paper's
// 16-way Xeon with a native JIT — our substrate is a bytecode interpreter —
// but the shapes the paper reports are reproduced: which configuration
// wins, by roughly what factor, and where the gaps close.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/lang/ir"
	"repro/internal/opt"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Levels used by the overhead figures, in the paper's order.
var overheadLevels = []opt.Level{
	opt.O0NoOpts, opt.O1BarrierElim, opt.O2Aggregate, opt.O3DEA,
}

// LevelNames for table headers.
func levelName(l opt.Level) string { return l.String() }

// timeRun executes a compiled program once and returns the wall time.
func timeRun(prog *ir.Program, mode vm.Mode) (time.Duration, error) {
	m, err := vm.New(prog, mode, nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := m.Run(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// bestOf returns the minimum duration of n runs (steady-state style: the
// paper uses the third run of each benchmark; with a VM rebuilt per run the
// minimum of n serves the same purpose).
func bestOf(n int, prog *ir.Program, mode vm.Mode) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		d, err := timeRun(prog, mode)
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Reps is the number of timed repetitions per configuration.
var Reps = 3

// MaxThreads returns the paper's thread sweep clipped to the host: powers
// of two from 1 to min(16, GOMAXPROCS).
func MaxThreads() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ThreadSweep returns 1,2,4,... up to max.
func ThreadSweep(max int) []int {
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	return out
}

// ---- Figures 15/16/17: non-transactional barrier overhead ----

// OverheadResult is one JVM98-like suite sweep.
type OverheadResult struct {
	Figure   string
	Barriers vm.BarrierSelect
	Scale    int
	Rows     []OverheadRow
}

// OverheadRow is one benchmark's overheads per optimization level, in
// percent over the barrier-free baseline.
type OverheadRow struct {
	Workload string
	Baseline time.Duration
	Percent  map[opt.Level]float64
	// WholeProgPercent is the +Whole-Prog Opts bar: the paper reports that
	// NAIT removes every barrier in these programs, so this should be ~0.
	WholeProgPercent float64

	// Dynamic barrier executions per level (reads+writes actually run
	// through Figure 9/10 sequences, plus aggregated acquisitions). These
	// counts are deterministic and show exactly how much barrier work each
	// optimization removes, independent of timer noise.
	Dynamic          map[opt.Level]int64
	DynamicWholeProg int64
}

// RunOverhead produces Figure 15 (both barriers), 16 (reads only) or 17
// (writes only): the overhead of strong-atomicity isolation barriers on the
// non-transactional suite at cumulative optimization levels.
func RunOverhead(figure string, sel vm.BarrierSelect, scale int) (*OverheadResult, error) {
	res := &OverheadResult{Figure: figure, Barriers: sel, Scale: scale}
	for _, w := range workloads.JVM98() {
		args := w.BenchArgs(1, scale, false)
		row := OverheadRow{
			Workload: w.Name,
			Percent:  make(map[opt.Level]float64),
			Dynamic:  make(map[opt.Level]int64),
		}

		base, _, err := w.Compile(opt.O0NoOpts, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		baseMode := vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Args: args}
		// Warm up: CPU frequency and caches settle before anything is timed.
		if _, err := timeRun(base, baseMode); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", w.Name, err)
		}

		measure := func(prog *ir.Program, mode vm.Mode) (float64, error) {
			// Interleave baseline and subject runs so slow drift (thermal,
			// scheduler) cancels out of the ratio.
			var bestBase, bestSubj time.Duration
			for i := 0; i < Reps; i++ {
				db, err := timeRun(base, baseMode)
				if err != nil {
					return 0, err
				}
				ds, err := timeRun(prog, mode)
				if err != nil {
					return 0, err
				}
				if bestBase == 0 || db < bestBase {
					bestBase = db
				}
				if bestSubj == 0 || ds < bestSubj {
					bestSubj = ds
				}
			}
			if row.Baseline == 0 || bestBase < row.Baseline {
				row.Baseline = bestBase
			}
			return pct(bestSubj, bestBase), nil
		}

		for _, lvl := range overheadLevels {
			o := opt.FromLevel(lvl, 1)
			if sel == vm.BarrierReadsOnly {
				// Aggregation acquires the record for writing; with write
				// barriers disabled it would misstate read-barrier cost, so
				// the reads-only sweep never aggregates.
				o.Aggregate = false
			}
			prog, _, err := w.CompileOptions(o)
			if err != nil {
				return nil, err
			}
			mode := vm.Mode{
				Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true,
				Barriers: sel, DEA: lvl.DEAEnabled(), Args: args,
			}
			p, err := measure(prog, mode)
			if err != nil {
				return nil, fmt.Errorf("%s %v: %w", w.Name, lvl, err)
			}
			row.Percent[lvl] = p
			n, err := countDynamic(prog, mode)
			if err != nil {
				return nil, err
			}
			row.Dynamic[lvl] = n
		}

		// Whole-program level: NAIT removes all barriers here.
		progWP, _, err := w.Compile(opt.O4WholeProg, 1)
		if err != nil {
			return nil, err
		}
		wpMode := vm.Mode{
			Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true,
			Barriers: sel, DEA: true, Args: args,
		}
		pWP, err := measure(progWP, wpMode)
		if err != nil {
			return nil, err
		}
		row.WholeProgPercent = pWP
		nWP, err := countDynamic(progWP, wpMode)
		if err != nil {
			return nil, err
		}
		row.DynamicWholeProg = nWP
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// countDynamic runs once with barrier statistics attached and returns the
// number of barrier executions (reads + writes + ordering reads +
// aggregated acquisitions), net of private fast-path hits.
func countDynamic(prog *ir.Program, mode vm.Mode) (int64, error) {
	mode.CountBarriers = true
	m, err := vm.New(prog, mode, nil)
	if err != nil {
		return 0, err
	}
	if err := m.Run(); err != nil {
		return 0, err
	}
	st := m.Bar.Stats
	return st.Reads.Load() + st.Writes.Load() + st.OrderingReads.Load() +
		st.Aggregates.Load() - st.PrivateReads.Load() - st.PrivateWrites.Load(), nil
}

func pct(d, baseline time.Duration) float64 {
	if baseline <= 0 {
		return 0
	}
	return (float64(d)/float64(baseline) - 1) * 100
}

// String renders the overhead table.
func (r *OverheadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: strong-atomicity barrier overhead (%% over no-barrier baseline)\n", r.Figure)
	fmt.Fprintf(&b, "%-11s %10s", "benchmark", "baseline")
	for _, lvl := range overheadLevels {
		fmt.Fprintf(&b, " %14s", levelName(lvl))
	}
	fmt.Fprintf(&b, " %14s\n", "+WholeProgOpts")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %10s", row.Workload, row.Baseline.Round(time.Millisecond))
		for _, lvl := range overheadLevels {
			fmt.Fprintf(&b, " %13.1f%%", row.Percent[lvl])
		}
		fmt.Fprintf(&b, " %13.1f%%\n", row.WholeProgPercent)
		fmt.Fprintf(&b, "%-11s %10s", "  barriers", "")
		for _, lvl := range overheadLevels {
			fmt.Fprintf(&b, " %14s", human(row.Dynamic[lvl]))
		}
		fmt.Fprintf(&b, " %14s\n", human(row.DynamicWholeProg))
	}
	return b.String()
}

// human renders a count compactly (12.3M style).
func human(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.0fM", float64(n)/1e6)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// ---- Figures 18/19/20: transactional scalability ----

// ScalingConfig is one line of a scalability figure.
type ScalingConfig struct {
	Name   string
	Level  opt.Level
	Mode   func(args []int64) vm.Mode
	UseTxn bool
}

// ScalingConfigs returns the paper's configurations: Synch, Weak Atomicity,
// and Strong Atomicity at increasing optimization levels.
func ScalingConfigs() []ScalingConfig {
	stm := func(strong, dea bool) func(args []int64) vm.Mode {
		return func(args []int64) vm.Mode {
			return vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager,
				Strong: strong, DEA: dea, Args: args, Seed: 11}
		}
	}
	return []ScalingConfig{
		{Name: "Synch", Level: opt.O0NoOpts, UseTxn: false,
			Mode: func(args []int64) vm.Mode {
				return vm.Mode{Sync: vm.SyncLock, Args: args, Seed: 11}
			}},
		{Name: "WeakAtom", Level: opt.O0NoOpts, UseTxn: true, Mode: stm(false, false)},
		{Name: "StrongNoOpts", Level: opt.O0NoOpts, UseTxn: true, Mode: stm(true, false)},
		{Name: "Strong+JitOpts", Level: opt.O2Aggregate, UseTxn: true, Mode: stm(true, false)},
		{Name: "Strong+DEA", Level: opt.O3DEA, UseTxn: true, Mode: stm(true, true)},
		{Name: "Strong+WholeProg", Level: opt.O4WholeProg, UseTxn: true, Mode: stm(true, true)},
	}
}

// ScalingResult is one workload's sweep.
type ScalingResult struct {
	Figure   string
	Workload string
	Threads  []int
	// Times[config][i] is the wall time at Threads[i].
	Times map[string][]time.Duration
	Order []string
}

// RunScaling produces Figure 18 (tsp), 19 (oo7), or 20 (jbb).
func RunScaling(figure string, w workloads.Workload, threads []int, scale int) (*ScalingResult, error) {
	res := &ScalingResult{
		Figure: figure, Workload: w.Name, Threads: threads,
		Times: make(map[string][]time.Duration),
	}
	for _, cfg := range ScalingConfigs() {
		prog, _, err := w.Compile(cfg.Level, 1)
		if err != nil {
			return nil, err
		}
		res.Order = append(res.Order, cfg.Name)
		for _, t := range threads {
			args := w.BenchArgs(t, scale, cfg.UseTxn)
			d, err := bestOf(Reps, prog, cfg.Mode(args))
			if err != nil {
				return nil, fmt.Errorf("%s %s threads=%d: %w", w.Name, cfg.Name, t, err)
			}
			res.Times[cfg.Name] = append(res.Times[cfg.Name], d)
		}
	}
	return res, nil
}

// String renders the scalability table (rows: configs; columns: threads).
func (r *ScalingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s execution time by thread count\n", r.Figure, r.Workload)
	fmt.Fprintf(&b, "%-18s", "config")
	for _, t := range r.Threads {
		fmt.Fprintf(&b, " %9dT", t)
	}
	b.WriteByte('\n')
	for _, name := range r.Order {
		fmt.Fprintf(&b, "%-18s", name)
		for _, d := range r.Times[name] {
			fmt.Fprintf(&b, " %10s", d.Round(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StrongWeakGap returns strong/weak time ratios at the lowest and highest
// thread counts for a config pair — the paper's "with 16 threads the
// strongly atomic versions are only 1–12% slower" observation.
func (r *ScalingResult) StrongWeakGap(strongCfg string) (low, high float64) {
	weak := r.Times["WeakAtom"]
	strong := r.Times[strongCfg]
	if len(weak) == 0 || len(strong) == 0 {
		return 0, 0
	}
	last := len(weak) - 1
	return float64(strong[0]) / float64(weak[0]), float64(strong[last]) / float64(weak[last])
}
