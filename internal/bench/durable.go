package bench

// Durable-store figure: what does durability cost, and what does group
// commit buy back? Opposed transfer workers run the bank workload through
// internal/durable on the real file system, sweeping the group-commit fsync
// window per runtime against an in-memory (no WAL) baseline. The window is
// the knob the figure is about: at 0 the WAL fsyncs as fast as the flusher
// can turn around (every ack waits on a nearly-private fsync), while wider
// windows amortize one fsync over every commit in the window at the price
// of ack latency — classic group commit, measured here end to end through
// the STM commit path.

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/objmodel"
	"repro/internal/stmapi"
)

// DurableSpec configures one durable-throughput measurement.
type DurableSpec struct {
	Versioning    string `json:"versioning"`
	Workers       int    `json:"workers"`
	Accounts      int    `json:"accounts"`
	TxnsPerWorker int    `json:"txns_per_worker"`
	// SyncWindowNs is the group-commit window; -1 selects the in-memory
	// baseline (no commit sink at all).
	SyncWindowNs int64  `json:"sync_window_ns"`
	Seed         uint64 `json:"seed"`
}

func (s *DurableSpec) defaults() {
	if s.Versioning == "" {
		s.Versioning = "eager"
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.Accounts <= 0 {
		s.Accounts = 64
	}
	if s.TxnsPerWorker <= 0 {
		s.TxnsPerWorker = 2000
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// DurableResult is one measurement: throughput plus the WAL profile.
type DurableResult struct {
	Spec             DurableSpec `json:"spec"`
	NsPerTxn         float64     `json:"ns_per_txn"`
	TxnsPerSec       float64     `json:"txns_per_sec"`
	Commits          int64       `json:"commits"`
	Aborts           int64       `json:"aborts"`
	WALAppends       int64       `json:"wal_appends,omitempty"`
	Fsyncs           int64       `json:"fsyncs,omitempty"`
	GroupCommitMean  float64     `json:"group_commit_mean,omitempty"`
	GroupCommitBatch int64       `json:"group_commit_batch,omitempty"`
	RecoveryReplays  int64       `json:"recovery_replays,omitempty"`
}

// DurableSpecs is the default sweep: every registered runtime × {in-memory
// baseline, fsync-ASAP, 200µs, 1ms, 5ms group-commit windows}.
func DurableSpecs(seed uint64) []DurableSpec {
	windows := []int64{-1, 0, int64(200 * time.Microsecond), int64(time.Millisecond), int64(5 * time.Millisecond)}
	var specs []DurableSpec
	for _, v := range stmapi.Runtimes() {
		for _, w := range windows {
			specs = append(specs, DurableSpec{Versioning: v, SyncWindowNs: w, Seed: seed})
		}
	}
	return specs
}

// RunDurableSweep measures every spec. onStore, when non-nil, is called
// with each durable store before its measurement runs — stmbench uses it
// to register the store with the live metrics registry so stmtop's
// `durability:` line shows the WAL filling in real time.
func RunDurableSweep(specs []DurableSpec, onStore func(label string, s *durable.Store)) ([]DurableResult, error) {
	results := make([]DurableResult, 0, len(specs))
	for i := range specs {
		res, err := runDurable(&specs[i], onStore)
		if err != nil {
			return results, fmt.Errorf("%s window %s: %w", specs[i].Versioning, windowLabel(specs[i].SyncWindowNs), err)
		}
		results = append(results, res)
	}
	return results, nil
}

func runDurable(spec *DurableSpec, onStore func(label string, s *durable.Store)) (DurableResult, error) {
	spec.defaults()
	setup := func(h *objmodel.Heap) error {
		arr := h.NewArray(spec.Accounts, false)
		for i := 0; i < spec.Accounts; i++ {
			arr.StoreSlot(i, 1000)
		}
		return nil
	}

	var rt stmapi.Runtime
	var store *durable.Store
	var atomic func(func(stmapi.Txn) error) error
	if spec.SyncWindowNs < 0 {
		heap := objmodel.NewHeap()
		if err := setup(heap); err != nil {
			return DurableResult{}, err
		}
		r, err := stmapi.New(spec.Versioning, heap, stmapi.CommonConfig{})
		if err != nil {
			return DurableResult{}, err
		}
		rt, atomic = r, r.Atomic
	} else {
		dir, err := os.MkdirTemp("", "stmbench-durable-*")
		if err != nil {
			return DurableResult{}, err
		}
		defer os.RemoveAll(dir)
		s, err := durable.Open(durable.Options{
			Dir:        dir,
			Runtime:    spec.Versioning,
			SyncWindow: time.Duration(spec.SyncWindowNs),
		}, setup)
		if err != nil {
			return DurableResult{}, err
		}
		defer s.Close()
		store, rt, atomic = s, s.Runtime(), s.Atomic
		if onStore != nil {
			onStore("durable/"+spec.Versioning+"/"+windowLabel(spec.SyncWindowNs), s)
		}
	}
	arr := rt.Heap().Get(objmodel.Ref(1))

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < spec.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := spec.Seed ^ uint64(g)<<40
			for i := 0; i < spec.TxnsPerWorker; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := int(rng>>33) % spec.Accounts
				to := (from + 1 + int(rng>>17)%(spec.Accounts-1)) % spec.Accounts
				_ = atomic(func(tx stmapi.Txn) error {
					a := tx.Read(arr, from)
					b := tx.Read(arr, to)
					tx.Write(arr, from, a-1)
					tx.Write(arr, to, b+1)
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := int64(spec.Workers * spec.TxnsPerWorker)
	stats := rt.Stats()
	res := DurableResult{
		Spec:       *spec,
		NsPerTxn:   float64(elapsed.Nanoseconds()) / float64(total),
		TxnsPerSec: float64(total) / elapsed.Seconds(),
		Commits:    stats.Commits,
		Aborts:     stats.Aborts,
	}
	if store != nil {
		d := store.Durability()
		res.WALAppends = d.WALAppends
		res.Fsyncs = d.Fsyncs
		res.GroupCommitMean = d.GroupCommitMean
		res.GroupCommitBatch = d.GroupCommitBatch
		res.RecoveryReplays = d.RecoveryReplays
		// Sanity: every committed writer must have hit the log.
		if d.WALAppends < total {
			return res, fmt.Errorf("only %d WAL appends for %d transactions", d.WALAppends, total)
		}
	}
	return res, nil
}

func windowLabel(ns int64) string {
	switch {
	case ns < 0:
		return "memory"
	case ns == 0:
		return "0"
	default:
		return time.Duration(ns).String()
	}
}

// FormatDurable renders the sweep as an aligned table grouped by runtime.
func FormatDurable(results []DurableResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Durable store: group-commit window sweep (bank transfers, real FS)\n")
	fmt.Fprintf(&b, "%-8s %-8s %12s %12s %10s %8s %10s\n",
		"runtime", "window", "txns/sec", "ns/txn", "fsyncs", "batch", "batch-max")
	last := ""
	for _, r := range results {
		if r.Spec.Versioning != last && last != "" {
			fmt.Fprintln(&b)
		}
		last = r.Spec.Versioning
		batch := "-"
		batchMax := "-"
		fsyncs := "-"
		if r.Spec.SyncWindowNs >= 0 {
			batch = fmt.Sprintf("%.1f", r.GroupCommitMean)
			batchMax = fmt.Sprintf("%d", r.GroupCommitBatch)
			fsyncs = fmt.Sprintf("%d", r.Fsyncs)
		}
		fmt.Fprintf(&b, "%-8s %-8s %12.0f %12.0f %10s %8s %10s\n",
			r.Spec.Versioning, windowLabel(r.Spec.SyncWindowNs),
			r.TxnsPerSec, r.NsPerTxn, fsyncs, batch, batchMax)
	}
	return b.String()
}
