package bench

import (
	"strings"
	"testing"

	"repro/internal/stmapi"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func TestThreadSweep(t *testing.T) {
	got := ThreadSweep(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	if got := ThreadSweep(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("sweep(1) = %v", got)
	}
	if MaxThreads() < 1 {
		t.Error("MaxThreads < 1")
	}
}

func TestRunAnomalies(t *testing.T) {
	if testing.Short() {
		t.Skip("anomaly matrix is slow")
	}
	out, ok := RunAnomalies()
	if !ok {
		t.Errorf("anomaly matrix mismatch:\n%s", out)
	}
	if !strings.Contains(out, "Figure 6") {
		t.Error("missing header")
	}
}

func TestRunStatic(t *testing.T) {
	res, err := RunStatic()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(workloads.All()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	out := res.String()
	for _, want := range []string{"compress", "tsp", "jbb", "NAIT-TL"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
	// The paper's claims: JVM98 rows fully removed; txn rows partial.
	for _, row := range res.Rows {
		rep := row.Report
		switch row.Program {
		case "tsp", "oo7", "jbb":
			if rep.UnionReads == rep.TotalReads && rep.UnionWrites == rep.TotalWrites {
				t.Errorf("%s: whole-program analyses removed everything; txn-shared data must keep barriers", row.Program)
			}
		default:
			if rep.UnionReads != rep.TotalReads || rep.UnionWrites != rep.TotalWrites {
				t.Errorf("%s: non-transactional program kept barriers (%d/%d reads, %d/%d writes)",
					row.Program, rep.UnionReads, rep.TotalReads, rep.UnionWrites, rep.TotalWrites)
			}
		}
	}
}

// TestOverheadSmoke runs the Figure 15 sweep on one tiny workload set by
// shrinking Reps; it validates plumbing, not timing quality.
func TestOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	old := Reps
	Reps = 1
	defer func() { Reps = old }()
	res, err := RunOverhead("Figure 15 (smoke)", vm.BarrierAll, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	sawBarriers := false
	for _, row := range res.Rows {
		if row.Dynamic[0] > 0 {
			sawBarriers = true
		}
		if row.DynamicWholeProg != 0 {
			t.Errorf("%s: %d dynamic barriers survive whole-program opts", row.Workload, row.DynamicWholeProg)
		}
	}
	if !sawBarriers {
		t.Error("no workload executed any dynamic barriers at NoOpts")
	}
	if !strings.Contains(res.String(), "benchmark") {
		t.Error("table header missing")
	}
}

// TestScalingSmoke runs one scaling configuration end to end at 1–2 threads.
func TestScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	old := Reps
	Reps = 1
	defer func() { Reps = old }()
	res, err := RunScaling("Figure 19 (smoke)", workloads.OO7(), []int{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 6 {
		t.Fatalf("configs = %d", len(res.Order))
	}
	for _, name := range res.Order {
		if len(res.Times[name]) != 2 {
			t.Errorf("%s: %d samples", name, len(res.Times[name]))
		}
	}
	lo, hi := res.StrongWeakGap("StrongNoOpts")
	if lo <= 0 || hi <= 0 {
		t.Errorf("gap = %v/%v", lo, hi)
	}
	if !strings.Contains(res.String(), "oo7") {
		t.Error("table missing workload name")
	}
}

func TestRunCrashInvariants(t *testing.T) {
	for _, v := range stmapi.Runtimes() {
		res, err := RunCrash(CrashSpec{
			Versioning:    v,
			Workers:       4,
			Accounts:      16,
			TxnsPerWorker: 200,
			CrashRate:     10, // ~1% per point: plenty of deaths in a short run
			Seed:          3,
		})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !res.BalanceConserved || !res.RecordsShared {
			t.Fatalf("%s: invariants violated: %+v", v, res)
		}
		if res.Orphans == 0 {
			t.Errorf("%s: no orphans injected; the run exercised nothing", v)
		}
		if res.ReaperSteals == 0 {
			t.Errorf("%s: orphans died but none were reclaimed", v)
		}
	}
}
