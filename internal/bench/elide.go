package bench

// Barrier-elision A/B measurement (`stmbench -fig elide`, BENCH_010): the
// same self-validating workload (internal/workloads/elidewl) runs once
// with no manifest — every object born shared, every NT access through
// the full Figure 9 barriers — and once under the manifest the
// whole-program NAIT/TL analyses produce for it, where the provably
// private sites are born Private and ride the Figure 10 one-load fast
// paths. The headline number is ns per NT-barriered access; the
// private-hit counters show how much traffic the manifest actually
// elided. A final short run re-executes the manifest side with the
// soundness oracle attached (and a causal flight recorder behind it), so
// the committed benchmark is also a zero-breach certificate.

import (
	"fmt"
	"strings"

	"repro/internal/analysis/oracle"
	"repro/internal/causal"
	"repro/internal/elide"
	"repro/internal/objmodel"
	"repro/internal/trace"
	"repro/internal/vetstm/interproc"
	"repro/internal/vetstm/vetload"
	"repro/internal/workloads/elidewl"
)

// ElideWorkloadPackage is the module-relative package pattern the elision
// manifest is built from.
const ElideWorkloadPackage = "./internal/workloads/elidewl"

// BuildElideManifest runs the whole-program NAIT/TL analyses over the
// elide workload package, in process — the same pipeline as
// `stmvet elide ./internal/workloads/elidewl`. dir locates the module
// (any directory inside it).
func BuildElideManifest(dir string) (*elide.Manifest, interproc.Stats, error) {
	root, err := vetload.ModuleDir(dir)
	if err != nil {
		return nil, interproc.Stats{}, err
	}
	pkgs, err := vetload.Load(root, ElideWorkloadPackage)
	if err != nil {
		return nil, interproc.Stats{}, err
	}
	res, err := interproc.Analyze(pkgs, interproc.Options{Tool: "stmbench elide"})
	if err != nil {
		return nil, interproc.Stats{}, err
	}
	return res.Manifest, res.Stats, nil
}

// ElideResult is one side of the A/B measurement, flattened for JSON.
type ElideResult struct {
	Name     string `json:"name"` // "elide/off" or "elide/on"
	Manifest bool   `json:"manifest"`
	Workers  int    `json:"workers"`
	Items    int    `json:"items"`
	Scratch  int    `json:"scratch"`
	TxnOps   int    `json:"txn_ops"`

	ElapsedNs int64 `json:"elapsed_ns"` // whole run, incl. handoff ping-pong and txns
	NTOps     int64 `json:"nt_ops"`     // barriered reads + writes, all phases

	// The headline metric comes from the scratch phase only: tight
	// barriered read/write loops with no allocation or scheduling inside
	// the timed region, so ns_per_nt_op is pure barrier cost (total
	// elapsed is dominated by the handoff spin-waits on both sides).
	ScratchNs  int64   `json:"scratch_ns"`
	ScratchOps int64   `json:"scratch_ops"`
	NsPerNTOp  float64 `json:"ns_per_nt_op"` // scratch_ns / scratch_ops

	Reads         int64   `json:"reads"`
	Writes        int64   `json:"writes"`
	PrivateReads  int64   `json:"private_reads"`
	PrivateWrites int64   `json:"private_writes"`
	PrivateHitPct float64 `json:"private_hit_pct"` // private / total accesses

	// Manifest-side extras.
	ElidableSites int   `json:"elidable_sites,omitempty"` // distinct sites the manifest elides
	Breaches      int64 `json:"breaches"`                 // soundness-oracle verdict (0 = certified)
	TrackedAllocs int64 `json:"tracked_allocs,omitempty"` // manifest-matched allocations in the oracle pass
}

// elideConfig sizes the workload for one scale factor.
func elideConfig(scale int) elidewl.Config {
	if scale < 1 {
		scale = 1
	}
	return elidewl.Config{
		Workers: 4,
		Items:   512 * scale,
		Scratch: 16384 * scale,
		TxnOps:  1024 * scale,
	}
}

// runElideSide runs one side Reps times and keeps the fastest run (the
// workload self-validates, so every rep is also a correctness check).
func runElideSide(name string, cfg elidewl.Config) (ElideResult, error) {
	var best elidewl.Result
	for rep := 0; rep < Reps; rep++ {
		res, err := elidewl.Run(cfg)
		if err != nil {
			return ElideResult{}, err
		}
		if rep == 0 || res.ScratchNS < best.ScratchNS {
			best = res
		}
	}
	st := best.Stats
	r := ElideResult{
		Name:     name,
		Manifest: cfg.Manifest != nil,
		Workers:  cfg.Workers, Items: cfg.Items, Scratch: cfg.Scratch, TxnOps: cfg.TxnOps,
		ElapsedNs:     best.Elapsed.Nanoseconds(),
		ScratchNs:     best.ScratchNS,
		ScratchOps:    best.ScratchOps,
		Reads:         st.Reads.Load(),
		Writes:        st.Writes.Load(),
		PrivateReads:  st.PrivateReads.Load(),
		PrivateWrites: st.PrivateWrites.Load(),
	}
	r.NTOps = r.Reads + r.Writes
	if r.ScratchOps > 0 {
		r.NsPerNTOp = float64(r.ScratchNs) / float64(r.ScratchOps)
	}
	if r.NTOps > 0 {
		r.PrivateHitPct = 100 * float64(r.PrivateReads+r.PrivateWrites) / float64(r.NTOps)
	}
	return r, nil
}

// RunElideSweep measures the manifest-off and manifest-on sides, then
// certifies the manifest with a short oracle-attached pass. A non-nil
// error with non-nil results means the measurement ran but the oracle
// found breaches — callers should treat that as a hard failure.
func RunElideSweep(m *elide.Manifest, scale int) ([]ElideResult, error) {
	base := elideConfig(scale)

	off, err := runElideSide("elide/off", base)
	if err != nil {
		return nil, err
	}

	onCfg := base
	onCfg.Manifest = m
	on, err := runElideSide("elide/on", onCfg)
	if err != nil {
		return nil, err
	}
	for _, s := range m.Index() {
		if elide.Elidable(s.Class) {
			on.ElidableSites++
		}
	}

	// Certification pass: small, observed, off the clock. The oracle sees
	// allocations (heap observer), NT accesses (barrier observer), and
	// transactional accesses (tracer sink, teed into a flight recorder
	// for causal context on any breach).
	orcCfg := base
	orcCfg.Manifest = m
	orcCfg.Items /= 4
	orcCfg.Scratch /= 4
	orcCfg.TxnOps /= 4
	rec := causal.NewRecorder(causal.Config{})
	tracer := trace.New(trace.Config{})
	var orc *oracle.Oracle
	var obs func(*objmodel.Object, int, bool)
	orcCfg.OnSetup = func(h *objmodel.Heap) {
		orc = oracle.Attach(h, oracle.Config{Recorder: rec})
		obs = orc.BarrierObserver()
		tracer.SetSink(orc)
	}
	orcCfg.Observer = func(o *objmodel.Object, slot int, write bool) { obs(o, slot, write) }
	orcCfg.Tracer = tracer
	if _, err := elidewl.Run(orcCfg); err != nil {
		return nil, err
	}
	on.Breaches = orc.Total()
	on.TrackedAllocs = orc.Tracked()

	results := []ElideResult{off, on}
	if err := orc.Err(); err != nil {
		return results, fmt.Errorf("bench: elision manifest failed certification: %w", err)
	}
	return results, nil
}

// FormatElide renders the A/B table with the speedup and certification
// lines the paper-style summary wants.
func FormatElide(results []ElideResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "barrier elision: NT-access cost with and without the stmvet manifest\n")
	fmt.Fprintf(&b, "(ns/op is the scratch phase: tight barriered loops, no handoff noise)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %14s %14s %9s\n",
		"config", "nt-ops", "scratch-ops", "ns/op", "private-reads", "private-writes", "hit-rate")
	var off, on *ElideResult
	for i := range results {
		r := &results[i]
		fmt.Fprintf(&b, "%-10s %12d %12d %10.1f %14d %14d %8.1f%%\n",
			r.Name, r.NTOps, r.ScratchOps, r.NsPerNTOp, r.PrivateReads, r.PrivateWrites, r.PrivateHitPct)
		if r.Manifest {
			on = r
		} else {
			off = r
		}
	}
	if off != nil && on != nil && on.NsPerNTOp > 0 {
		fmt.Fprintf(&b, "manifest speedup: %.2fx per NT access (%d elidable site(s))\n",
			off.NsPerNTOp/on.NsPerNTOp, on.ElidableSites)
		if on.Breaches == 0 {
			fmt.Fprintf(&b, "soundness oracle: 0 breaches across %d tracked allocation(s)\n", on.TrackedAllocs)
		} else {
			fmt.Fprintf(&b, "soundness oracle: %d BREACH(ES) — manifest is unsound\n", on.Breaches)
		}
	}
	return b.String()
}
