package bench

import "testing"

// TestRunStampSmoke runs each workload briefly on both runtimes and checks
// the commit accounting and validation profile.
func TestRunStampSmoke(t *testing.T) {
	for _, spec := range StampSpecs(2, 500) {
		if spec.Goroutines != 2 {
			continue
		}
		res, err := RunStamp(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Commits != int64(spec.Txns) {
			t.Errorf("%s/%s: commits = %d, want %d", spec.Workload, spec.Versioning, res.Commits, spec.Txns)
		}
		// mvstm has no commit-time validation (snapshot isolation); its
		// activity signal is the snapshot read path instead.
		if spec.Versioning == "mvstm" {
			if res.SnapshotReads == 0 {
				t.Errorf("%s/%s: snapshot reads = 0", spec.Workload, spec.Versioning)
			}
		} else if res.FastpathValidations == 0 {
			t.Errorf("%s/%s: fastpath validations = 0 in clock mode", spec.Workload, spec.Versioning)
		}
		if res.TxnsPerSec <= 0 {
			t.Errorf("%s/%s: txns/sec = %v", spec.Workload, spec.Versioning, res.TxnsPerSec)
		}
	}
}

// TestRunStampWalkMode: validation "walk" disables the clock entirely.
func TestRunStampWalkMode(t *testing.T) {
	res, err := RunStamp(StampSpec{Workload: "kmeans", Validation: "walk", Goroutines: 2, Txns: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.FastpathValidations != 0 || res.ClockAdvances != 0 {
		t.Errorf("walk mode: fastpath = %d, advances = %d, want 0/0",
			res.FastpathValidations, res.ClockAdvances)
	}
	if res.FallbackWalks == 0 {
		t.Error("walk mode: fallback walks = 0, want > 0")
	}
}

func TestRunStampUnknown(t *testing.T) {
	if _, err := RunStamp(StampSpec{Workload: "nope"}); err == nil {
		t.Error("unknown workload did not error")
	}
	if _, err := RunStamp(StampSpec{Validation: "nope"}); err == nil {
		t.Error("unknown validation mode did not error")
	}
}

// TestRunParallelValidationField: the parallel sweep honors the validation
// mode and reports the clock profile.
func TestRunParallelValidationField(t *testing.T) {
	clock, err := RunParallel(ParallelSpec{Workload: "mixed", ReadPct: 50, Goroutines: 2, Txns: 500})
	if err != nil {
		t.Fatal(err)
	}
	if clock.FastpathValidations == 0 {
		t.Error("clock mode: fastpath validations = 0")
	}
	walk, err := RunParallel(ParallelSpec{Workload: "mixed", ReadPct: 50, Goroutines: 2, Txns: 500, Validation: "walk"})
	if err != nil {
		t.Fatal(err)
	}
	if walk.FastpathValidations != 0 || walk.ClockAdvances != 0 {
		t.Errorf("walk mode: fastpath = %d, advances = %d, want 0/0",
			walk.FastpathValidations, walk.ClockAdvances)
	}
}
