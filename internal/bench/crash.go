package bench

// Crash-recovery robustness figure: opposed transfer workers run under
// pseudo-random thread-death injection (the faultinject Orphan action) at
// every commit-protocol point while a background reaper reclaims the
// orphans' records. The measurement reports the usual throughput counters
// plus the recovery profile — workers lost, records stolen back, escalations
// — and checks the two safety invariants every run must satisfy regardless
// of where threads died: the bank's total balance is conserved, and every
// ownership record ends the run back in the Shared state.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/recovery"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

// CrashSpec configures one crash-recovery measurement.
type CrashSpec struct {
	Versioning    string `json:"versioning"`       // runtime name (stmapi.Runtimes)
	Policy        string `json:"policy,omitempty"` // contention policy (conflict.ByName); empty = backoff
	Workers       int    `json:"workers"`
	Accounts      int    `json:"accounts"`
	TxnsPerWorker int    `json:"txns_per_worker"`
	CrashRate     uint64 `json:"crash_rate"`           // per-point Orphan probability, 1/1024ths per arrival
	DelayRate     uint64 `json:"delay_rate,omitempty"` // per-point Delay probability, 1/1024ths; widens lock-hold windows
	EscalateAfter int    `json:"escalate_after,omitempty"`
	Seed          uint64 `json:"seed"` // fault-injection seed
}

func (s *CrashSpec) defaults() {
	if s.Versioning == "" {
		s.Versioning = "eager"
	}
	if s.Workers <= 0 {
		s.Workers = 8
	}
	if s.Accounts <= 0 {
		s.Accounts = 64
	}
	if s.TxnsPerWorker <= 0 {
		s.TxnsPerWorker = 2000
	}
	if s.CrashRate == 0 {
		s.CrashRate = 1 // ≈0.1% per point per arrival ≈ 1% per transaction
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// CrashResult is one crash-recovery measurement, flattened for JSON.
type CrashResult struct {
	CrashSpec
	ElapsedNs        int64 `json:"elapsed_ns"`
	Commits          int64 `json:"commits"`
	Aborts           int64 `json:"aborts"`
	Orphans          int64 `json:"orphans"`
	ReaperSteals     int64 `json:"reaper_steals"`
	Escalations      int64 `json:"escalations"`
	BalanceConserved bool  `json:"balance_conserved"`
	RecordsShared    bool  `json:"records_shared"`
}

const crashInitBalance = 1_000

// RunCrash executes one crash-recovery measurement. The returned error is
// non-nil when a safety invariant is violated (conservation or record
// state), so callers exit non-zero on a broken run; injection-induced
// worker deaths are expected and never an error. Options use the parallel
// sweep's vocabulary — WithTracer attaches a tracer (and through it any
// flight-recorder sink) to the runtime, which makes the crash figure the
// richest causal fixture in the suite: dooms, steals, and validation
// aborts all fire here.
func RunCrash(spec CrashSpec, opts ...ParallelOption) (CrashResult, error) {
	spec.defaults()
	var po parallelOpts
	for _, opt := range opts {
		opt(&po)
	}
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "CAcct",
		Fields: []objmodel.Field{{Name: "bal"}},
	})
	accts := make([]*objmodel.Object, spec.Accounts)
	for i := range accts {
		accts[i] = h.New(cls)
		accts[i].StoreSlot(0, crashInitBalance)
	}

	rules := make([]faultinject.Rule, 0, 2*len(faultinject.Points))
	for _, p := range faultinject.Points {
		rules = append(rules, faultinject.Rule{Point: p, Action: faultinject.Orphan, Rate: spec.CrashRate})
	}
	if spec.DelayRate > 0 {
		// Delay while records are held: transfers are otherwise so short
		// that contenders almost never observe a live owner, and arbitration
		// policies never fire. The sleeps recreate the long-hold regime where
		// the policy (not just the reaper) decides who aborts whom.
		for _, p := range []faultinject.Point{faultinject.PostAcquire, faultinject.PreValidate} {
			rules = append(rules, faultinject.Rule{Point: p, Action: faultinject.Delay, Rate: spec.DelayRate})
		}
	}
	in := faultinject.New(spec.Seed, rules...)
	pol, err := conflict.ByNameOrEnv(spec.Policy)
	if err != nil {
		return CrashResult{}, fmt.Errorf("bench: %w", err)
	}
	common := stmapi.CommonConfig{Handler: pol, EscalateAfter: spec.EscalateAfter}

	// Build by name through the registry, then wire the crash surfaces via
	// the capability interfaces every adapter exports: fault injection and
	// the reaper target. A runtime missing either cannot run this figure.
	api, err := stmapi.New(spec.Versioning, h, common)
	if err != nil {
		return CrashResult{}, fmt.Errorf("bench: %w", err)
	}
	inj, ok := api.(interface{ SetInjector(*faultinject.Injector) })
	if !ok {
		return CrashResult{}, fmt.Errorf("bench: runtime %q does not support fault injection", spec.Versioning)
	}
	rec, ok := api.(interface{ Recovery() recovery.Target })
	if !ok {
		return CrashResult{}, fmt.Errorf("bench: runtime %q does not expose a recovery target", spec.Versioning)
	}
	inj.SetInjector(in)
	target := rec.Recovery()
	if po.onRuntime != nil {
		po.onRuntime(api)
	}
	if po.tracer != nil {
		api.SetTracer(po.tracer)
	}

	reaper := recovery.NewReaper(target, recovery.Config{Interval: time.Millisecond})
	reaper.Start()

	var orphaned atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < spec.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := spec.Seed ^ uint64(w)<<32
			// One iteration per demanded transaction. A thread that dies to
			// the Orphan injection is replaced (recover + continue models the
			// respawn); its in-flight transaction is lost to the reaper, so
			// under sustained deaths commits ≈ demanded - orphans - aborts.
			for i := 0; i < spec.TxnsPerWorker; i++ {
				from := int(splitmix(&rng) % uint64(spec.Accounts))
				to := int(splitmix(&rng) % uint64(spec.Accounts))
				if to == from {
					to = (to + 1) % spec.Accounts
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(faultinject.OrphanError); !ok {
								panic(r)
							}
							orphaned.Add(1)
						}
					}()
					_ = api.Atomic(func(tx stmapi.Txn) error {
						tx.Write(accts[from], 0, tx.Read(accts[from], 0)-1)
						tx.Write(accts[to], 0, tx.Read(accts[to], 0)+1)
						return nil
					})
				}()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Drain: sweep until two consecutive scans reap nothing, so deaths at
	// the tail of the run are reclaimed before the invariant check.
	for dry := 0; dry < 2; {
		if rep := reaper.ScanOnce(); rep.Reaped == 0 {
			dry++
		} else {
			dry = 0
		}
	}
	reaper.Stop()

	var total uint64
	shared := true
	for _, o := range accts {
		if !txrec.IsShared(o.Rec.Load()) {
			shared = false
		}
		total += o.LoadSlot(0)
	}
	s := api.Stats()
	res := CrashResult{
		CrashSpec:        spec,
		ElapsedNs:        elapsed.Nanoseconds(),
		Commits:          s.Commits,
		Aborts:           s.Aborts,
		Orphans:          orphaned.Load(),
		ReaperSteals:     s.ReaperSteals,
		Escalations:      s.Escalations,
		BalanceConserved: total == uint64(spec.Accounts)*crashInitBalance,
		RecordsShared:    shared,
	}
	if !res.BalanceConserved {
		return res, fmt.Errorf("bench: %s crash run violated conservation: total %d, want %d",
			spec.Versioning, total, uint64(spec.Accounts)*crashInitBalance)
	}
	if !res.RecordsShared {
		return res, fmt.Errorf("bench: %s crash run left records unshared after recovery", spec.Versioning)
	}
	return res, nil
}

// CrashSpecs builds the default crash figure: every registered runtime at
// the given seed, with and without escalation, plus a high-contention
// timestamp-policy run per runtime. The timestamp configs abort younger
// conflicting writers outright instead of waiting, so the figure exercises
// the policy-abort recovery path (and, with a tracer attached, yields
// aborted-by causal edges alongside the reaper's stolen-from edges).
func CrashSpecs(seed uint64) []CrashSpec {
	var specs []CrashSpec
	for _, v := range stmapi.Runtimes() {
		for _, esc := range []int{0, 8} {
			specs = append(specs, CrashSpec{Versioning: v, EscalateAfter: esc, Seed: seed})
		}
		specs = append(specs, CrashSpec{Versioning: v, Policy: "timestamp", Accounts: 8, DelayRate: 256, Seed: seed})
	}
	return specs
}

// RunCrashSweep runs each spec in order, failing on the first violated
// invariant. Options apply to every measurement.
func RunCrashSweep(specs []CrashSpec, opts ...ParallelOption) ([]CrashResult, error) {
	results := make([]CrashResult, 0, len(specs))
	for _, spec := range specs {
		res, err := RunCrash(spec, opts...)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// FormatCrash renders crash results as an aligned table.
func FormatCrash(results []CrashResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-4s %8s %10s %10s %8s %8s %6s %6s\n",
		"vers", "policy", "esc", "workers", "commits", "aborts", "orphans", "steals", "bal", "recs")
	okStr := map[bool]string{true: "ok", false: "FAIL"}
	for _, r := range results {
		pol := r.Policy
		if pol == "" {
			pol = "backoff"
		}
		fmt.Fprintf(&b, "%-6s %-10s %-4d %8d %10d %10d %8d %8d %6s %6s\n",
			r.Versioning, pol, r.EscalateAfter, r.Workers, r.Commits, r.Aborts,
			r.Orphans, r.ReaperSteals, okStr[r.BalanceConserved], okStr[r.RecordsShared])
	}
	return b.String()
}
