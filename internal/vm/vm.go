// Package vm executes compiled TJ programs on the managed runtime: a
// register-machine interpreter whose threads are goroutines, whose objects
// live in the objmodel heap, and whose atomic blocks run on the eager
// (McRT-style) or lazy STM. It is the execution half of our JIT: the
// barrier annotations computed by lowering and the opt passes decide, at
// each non-transactional access, whether the Figure 9/10 isolation
// barriers run.
//
// Modes reproduce the paper's experimental configurations:
//
//   - Synch:       atomic blocks execute under one global lock.
//   - WeakEager:   transactions on the eager STM; plain accesses direct.
//   - WeakLazy:    transactions on the lazy STM; plain accesses direct.
//   - StrongEager: eager STM plus non-transactional isolation barriers,
//     optionally with dynamic escape analysis (the paper's system).
//   - StrongLazy:  lazy STM plus ordering read barriers (Section 3.3).
package vm

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/lang/ir"
	"repro/internal/lang/types"
	"repro/internal/lazystm"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/stmapi"
	"repro/internal/strong"
)

// Sync discipline for atomic blocks.
type Sync uint8

// Atomic-block execution disciplines.
const (
	SyncLock Sync = iota // one global lock (the paper's Synch configuration)
	SyncSTM              // software transactional memory
)

// Versioning selects the STM flavor.
type Versioning uint8

// STM versioning policies.
const (
	Eager Versioning = iota
	Lazy
)

// BarrierSelect restricts which isolation barriers execute, for the
// paper's Figure 16 (read barriers only) and Figure 17 (write barriers
// only) overhead decompositions. These are measurement configurations:
// only BarrierAll provides strong atomicity.
type BarrierSelect uint8

// Barrier selections.
const (
	BarrierAll BarrierSelect = iota
	BarrierReadsOnly
	BarrierWritesOnly
)

// Mode configures a VM.
type Mode struct {
	Sync        Sync
	Versioning  Versioning
	Strong      bool          // insert non-transactional isolation barriers
	Barriers    BarrierSelect // which barriers execute (measurement only)
	DEA         bool          // dynamic escape analysis (requires Strong + Eager)
	Quiescence  bool
	Granularity int     // undo/buffer granularity in slots (default 1)
	Seed        int64   // deterministic per-thread RNG seed base
	Args        []int64 // program arguments, read by the arg(i) builtin

	// CountBarriers attaches barrier statistics (small runtime cost).
	CountBarriers bool
}

func (m Mode) validate() error {
	if m.DEA && (!m.Strong || m.Versioning != Eager || m.Sync != SyncSTM) {
		return fmt.Errorf("vm: DEA requires strong atomicity on the eager STM")
	}
	if m.Strong && m.Sync == SyncLock {
		return fmt.Errorf("vm: barriers are an STM feature; lock mode is weak by construction")
	}
	return nil
}

// VM is a loaded program plus runtime state.
type VM struct {
	Prog *ir.Program
	Mode Mode
	Heap *objmodel.Heap

	Eager *stm.Runtime
	Lazy  *lazystm.Runtime
	Bar   *strong.Barriers

	classes    []*objmodel.Class  // indexed by types.Class.ID
	statics    []*objmodel.Object // statics holder per class
	typeByRT   map[*objmodel.Class]*types.Class
	globalLock sync.Mutex

	out   io.Writer
	outMu sync.Mutex

	nextTid atomic.Int64
	threads sync.Map // tid -> *threadHandle
	wg      sync.WaitGroup

	errMu    sync.Mutex
	firstErr error

	// Executed counts interpreted instructions (all threads).
	Executed atomic.Int64
	// Prints counts print() calls.
	Prints atomic.Int64
}

type threadHandle struct {
	done chan struct{}
}

// RuntimeError is a TJ-program runtime failure (null dereference, index out
// of range, division by zero).
type RuntimeError struct {
	Msg string
}

func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

func throw(format string, args ...any) {
	panic(&RuntimeError{Msg: fmt.Sprintf(format, args...)})
}

// New loads prog into a fresh VM.
func New(prog *ir.Program, mode Mode, out io.Writer) (*VM, error) {
	if err := mode.validate(); err != nil {
		return nil, err
	}
	if mode.Granularity == 0 {
		mode.Granularity = 1
	}
	heap := objmodel.NewHeap()
	heap.AllocPrivate = mode.DEA
	v := &VM{
		Prog:     prog,
		Mode:     mode,
		Heap:     heap,
		out:      out,
		typeByRT: make(map[*objmodel.Class]*types.Class),
	}
	v.Eager = stm.New(heap, stm.Config{
		CommonConfig: stmapi.CommonConfig{
			Granularity: mode.Granularity,
			Quiescence:  mode.Quiescence && mode.Versioning == Eager,
		},
		DEA: mode.DEA,
	})
	v.Lazy = lazystm.New(heap, lazystm.Config{
		CommonConfig: stmapi.CommonConfig{
			Granularity: mode.Granularity,
			Quiescence:  mode.Quiescence && mode.Versioning == Lazy,
		},
	})
	v.Bar = strong.New(heap, mode.DEA)
	if mode.CountBarriers {
		v.Bar.Stats = &strong.Stats{}
	}

	// Materialize runtime classes and statics holders. types.Class.Fields
	// is already flattened, so runtime classes carry no Super.
	v.classes = make([]*objmodel.Class, len(prog.Types.Classes))
	v.statics = make([]*objmodel.Object, len(prog.Types.Classes))
	for _, tc := range prog.Types.Classes {
		fields := make([]objmodel.Field, len(tc.Fields))
		for i, f := range tc.Fields {
			fields[i] = objmodel.Field{Name: f.Name, IsRef: f.Type.IsRef(),
				Final: f.Final, Volatile: f.Volatile}
		}
		rc := heap.MustDefineClass(objmodel.ClassSpec{Name: tc.Name, Fields: fields})
		v.classes[tc.ID] = rc
		v.typeByRT[rc] = tc

		sfields := make([]objmodel.Field, len(tc.Statics))
		for i, f := range tc.Statics {
			sfields[i] = objmodel.Field{Name: f.Name, IsRef: f.Type.IsRef(),
				Final: f.Final, Volatile: f.Volatile}
		}
		sc := heap.MustDefineClass(objmodel.ClassSpec{
			Name: tc.Name + ".<statics>", Fields: sfields, Kind: objmodel.KindStatics})
		// Static data is visible to multiple threads from the start
		// (Section 7 explains mpegaudio's static arrays defeat DEA).
		v.statics[tc.ID] = heap.NewPublic(sc)
	}
	return v, nil
}

// Statics returns the statics holder for a class (tests and experiments).
func (v *VM) Statics(tc *types.Class) *objmodel.Object { return v.statics[tc.ID] }

func (v *VM) recordErr(err error) {
	v.errMu.Lock()
	if v.firstErr == nil {
		v.firstErr = err
	}
	v.errMu.Unlock()
}

// Run executes the program: static initializers in declaration order, then
// Main.main, then waits for all spawned threads.
func (v *VM) Run() error {
	main := &thread{vm: v, id: v.nextTid.Add(1)}
	main.rng = uint64(v.Mode.Seed)*2862933555777941757 + 3037000493
	err := main.protect(func() {
		for _, init := range v.Prog.Inits {
			main.invoke(init, nil)
		}
		v.invokeMain(main)
	})
	v.Executed.Add(main.executed)
	if err != nil {
		v.recordErr(err)
	}
	v.wg.Wait()
	v.errMu.Lock()
	defer v.errMu.Unlock()
	return v.firstErr
}

func (v *VM) invokeMain(t *thread) {
	t.invoke(v.Prog.Main, nil)
}

// protect runs f, converting runtime panics into an error. If the thread
// died inside an aggregated barrier, the held record is released so other
// threads do not block forever.
func (t *thread) protect(f func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if t.inAgg {
			t.vm.Bar.Release(t.aggObj, t.aggTok)
			t.inAgg = false
		}
		// Release every monitor the dying thread still holds (one Exit per
		// Enter, innermost first) and the global lock in Synch mode, so the
		// error does not deadlock surviving threads.
		for i := len(t.monitors) - 1; i >= 0; i-- {
			t.monitors[i].Exit(t.id)
		}
		t.monitors = nil
		if t.vm.Mode.Sync == SyncLock && t.txnDepth > 0 {
			t.txnDepth = 0
			t.vm.globalLock.Unlock()
		}
		switch e := r.(type) {
		case *RuntimeError:
			err = e
		case error:
			if e == objmodel.ErrNullDeref {
				err = &RuntimeError{Msg: "null dereference"}
				return
			}
			panic(r)
		default:
			panic(r)
		}
	}()
	f()
	return nil
}
