package vm_test

import (
	"strings"
	"testing"

	"repro/internal/tj"
	"repro/internal/vm"
)

// runTJ compiles and runs a TJ program in the given mode, returning its
// print output lines.
func runTJ(t *testing.T, src string, mode vm.Mode) []string {
	t.Helper()
	prog, err := tj.Frontend(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out strings.Builder
	m, err := vm.New(prog, mode, &out)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, out.String())
	}
	s := strings.TrimRight(out.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func runTJErr(t *testing.T, src string, mode vm.Mode) error {
	t.Helper()
	prog, err := tj.Frontend(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(prog, mode, nil)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return m.Run()
}

func expectLines(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

// allModes are the execution configurations a correct race-free program
// must behave identically under.
func allModes() map[string]vm.Mode {
	return map[string]vm.Mode{
		"synch":       {Sync: vm.SyncLock},
		"weak-eager":  {Sync: vm.SyncSTM, Versioning: vm.Eager},
		"weak-lazy":   {Sync: vm.SyncSTM, Versioning: vm.Lazy},
		"strong":      {Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true},
		"strong-dea":  {Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, DEA: true},
		"strong-lazy": {Sync: vm.SyncSTM, Versioning: vm.Lazy, Strong: true},
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
class Main {
  static func main() {
    var s = 0;
    for (var i = 1; i <= 10; i++) { s += i; }
    print(s);
    var f = 1;
    var n = 6;
    while (n > 1) { f = f * n; n--; }
    print(f);
    if (s == 55 && f == 720) { print(1); } else { print(0); }
    print(0 - 7 % 3);
    print(-13 / 4);
  }
}`
	got := runTJ(t, src, vm.Mode{Sync: vm.SyncLock})
	expectLines(t, got, "55", "720", "1", "-1", "-3")
}

func TestObjectsFieldsAndMethods(t *testing.T) {
	src := `
class Point {
  var x: int;
  var y: int;
  func sum(): int { return x + y; }
  func shift(dx: int, dy: int) { x += dx; this.y += dy; }
}
class Main {
  static func main() {
    var p = new Point();
    p.x = 3;
    p.y = 4;
    print(p.sum());
    p.shift(10, 20);
    print(p.x);
    print(p.y);
  }
}`
	got := runTJ(t, src, vm.Mode{Sync: vm.SyncLock})
	expectLines(t, got, "7", "13", "24")
}

func TestInheritanceAndVirtualDispatch(t *testing.T) {
	src := `
class Shape {
  var tag: int;
  func area(): int { return 0; }
  func describe(): int { return area() + 1000; }
}
class Square extends Shape {
  var side: int;
  func area(): int { return side * side; }
}
class Circle extends Shape {
  var r: int;
  func area(): int { return 3 * r * r; }
}
class Main {
  static func main() {
    var shapes = new Shape[3];
    var sq = new Square();
    sq.side = 4;
    var c = new Circle();
    c.r = 2;
    shapes[0] = sq;
    shapes[1] = c;
    shapes[2] = new Shape();
    var total = 0;
    for (var i = 0; i < len(shapes); i++) {
      total += shapes[i].describe();
    }
    print(total);
  }
}`
	got := runTJ(t, src, vm.Mode{Sync: vm.SyncLock})
	expectLines(t, got, "3028")
}

func TestStaticsAndInitBlocks(t *testing.T) {
	src := `
class Config {
  static var limit: int;
  static var table: int[];
  init {
    limit = 7;
    table = new int[limit];
    for (var i = 0; i < limit; i++) { table[i] = i * i; }
  }
  static func lookup(i: int): int { return table[i]; }
}
class Main {
  static func main() {
    print(Config.limit);
    print(Config.lookup(5));
  }
}`
	got := runTJ(t, src, vm.Mode{Sync: vm.SyncLock})
	expectLines(t, got, "7", "25")
}

func TestLinkedListAndNull(t *testing.T) {
	src := `
class Node {
  var val: int;
  var next: Node;
}
class Main {
  static func main() {
    var head: Node = null;
    for (var i = 1; i <= 5; i++) {
      var n = new Node();
      n.val = i;
      n.next = head;
      head = n;
    }
    var sum = 0;
    var cur = head;
    while (cur != null) {
      sum += cur.val;
      cur = cur.next;
    }
    print(sum);
  }
}`
	for name, mode := range allModes() {
		t.Run(name, func(t *testing.T) {
			got := runTJ(t, src, mode)
			expectLines(t, got, "15")
		})
	}
}

func TestAtomicCounterAllModes(t *testing.T) {
	src := `
class Counter {
  var n: int;
  func work(iters: int) {
    for (var i = 0; i < iters; i++) {
      atomic { n = n + 1; }
    }
  }
}
class Main {
  static var c: Counter;
  static func main() {
    c = new Counter();
    var t1 = spawn c.work(500);
    var t2 = spawn c.work(500);
    var t3 = spawn c.work(500);
    c.work(500);
    join(t1);
    join(t2);
    join(t3);
    print(c.n);
  }
}`
	for name, mode := range allModes() {
		t.Run(name, func(t *testing.T) {
			got := runTJ(t, src, mode)
			expectLines(t, got, "2000")
		})
	}
}

func TestSynchronizedCounter(t *testing.T) {
	src := `
class Counter {
  var n: int;
  func work(iters: int) {
    for (var i = 0; i < iters; i++) {
      synchronized (this) { n = n + 1; }
    }
  }
}
class Main {
  static func main() {
    var c = new Counter();
    var t1 = spawn c.work(800);
    c.work(800);
    join(t1);
    print(c.n);
  }
}`
	got := runTJ(t, src, vm.Mode{Sync: vm.SyncLock})
	expectLines(t, got, "1600")
}

func TestAtomicInvariantAcrossObjects(t *testing.T) {
	src := `
class Acct { var bal: int; }
class Bank {
  var a: Acct;
  var b: Acct;
  func transfer(n: int) {
    for (var i = 0; i < n; i++) {
      atomic {
        a.bal = a.bal - 1;
        b.bal = b.bal + 1;
      }
    }
  }
  func audit(n: int): int {
    var bad = 0;
    for (var i = 0; i < n; i++) {
      atomic {
        if (a.bal + b.bal != 100) { bad++; }
      }
    }
    return bad;
  }
  func auditN(n: int) { worst = worst + audit(n); }
  static var worst: int;
}
class Main {
  static func main() {
    var bank = new Bank();
    bank.a = new Acct();
    bank.b = new Acct();
    bank.a.bal = 100;
    var t1 = spawn bank.transfer(400);
    var t2 = spawn bank.auditN(400);
    bank.transfer(200);
    join(t1);
    join(t2);
    print(Bank.worst);
    print(bank.a.bal + bank.b.bal);
  }
}`
	for name, mode := range allModes() {
		t.Run(name, func(t *testing.T) {
			got := runTJ(t, src, mode)
			expectLines(t, got, "0", "100")
		})
	}
}

func TestRetryProducerConsumer(t *testing.T) {
	src := `
class Box {
  var full: bool;
  var val: int;
  func put(v: int) {
    atomic {
      if (full) { retry; }
      val = v;
      full = true;
    }
  }
  func take(): int {
    var v = 0;
    atomic {
      if (!full) { retry; }
      v = val;
      full = false;
    }
    return v;
  }
  func produce(n: int) {
    for (var i = 1; i <= n; i++) { put(i); }
  }
}
class Main {
  static func main() {
    var b = new Box();
    var t = spawn b.produce(50);
    var sum = 0;
    for (var i = 0; i < 50; i++) { sum += b.take(); }
    join(t);
    print(sum);
  }
}`
	for _, name := range []string{"weak-eager", "weak-lazy", "strong", "strong-dea", "strong-lazy"} {
		mode := allModes()[name]
		t.Run(name, func(t *testing.T) {
			got := runTJ(t, src, mode)
			expectLines(t, got, "1275")
		})
	}
}

func TestNestedAtomicFlattened(t *testing.T) {
	src := `
class Main {
  static var x: int;
  static func bump() { atomic { x++; } }
  static func main() {
    atomic {
      x = 10;
      bump();
      atomic { x = x * 2; }
    }
    print(x);
  }
}`
	for _, name := range []string{"weak-eager", "weak-lazy", "strong"} {
		mode := allModes()[name]
		t.Run(name, func(t *testing.T) {
			got := runTJ(t, src, mode)
			expectLines(t, got, "22")
		})
	}
}

func TestReturnInsideAtomicAndSync(t *testing.T) {
	src := `
class Main {
  static var x: int;
  static var lock: Main;
  static func f(): int {
    atomic {
      x = 5;
      return x + 1;
    }
  }
  static func g(): int {
    synchronized (lock) {
      return 42;
    }
  }
  static func main() {
    lock = new Main();
    print(f());
    print(g());
    print(g());
  }
}`
	for _, name := range []string{"weak-eager", "weak-lazy", "strong"} {
		mode := allModes()[name]
		t.Run(name, func(t *testing.T) {
			got := runTJ(t, src, mode)
			expectLines(t, got, "6", "42", "42")
		})
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
class Main {
  static func main() {
    var s = 0;
    for (var i = 0; i < 100; i++) {
      if (i % 2 == 0) { continue; }
      if (i > 10) { break; }
      s += i;
    }
    print(s);
  }
}`
	got := runTJ(t, src, vm.Mode{Sync: vm.SyncLock})
	expectLines(t, got, "25") // 1+3+5+7+9
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"null deref", `
class Node { var next: Node; }
class Main { static func main() { var n: Node = null; n.next = null; } }`,
			"null dereference"},
		{"bounds", `
class Main { static func main() { var a = new int[3]; a[5] = 1; } }`,
			"index out of range"},
		{"div zero", `
class Main { static func main() { var z = 0; print(10 / z); } }`,
			"division by zero"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := runTJErr(t, c.src, vm.Mode{Sync: vm.SyncLock})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
class Main {
  static func main() {
    var s = 0;
    for (var i = 0; i < 100; i++) { s += rand(10); }
    print(s);
  }
}`
	a := runTJ(t, src, vm.Mode{Sync: vm.SyncLock, Seed: 42})
	b := runTJ(t, src, vm.Mode{Sync: vm.SyncLock, Seed: 42})
	if a[0] != b[0] {
		t.Errorf("same seed produced %s then %s", a[0], b[0])
	}
}

func TestStrongAtomicityMixedAccess(t *testing.T) {
	// A transactional incrementer races with a NON-transactional
	// incrementer. Under strong atomicity no update may be lost
	// (Figure 2b's ILU must not happen); weak modes may lose updates, so
	// this program is only run strong.
	src := `
class Cell { var n: int; }
class Main {
  static var c: Cell;
  static func txnSide() {
    for (var i = 0; i < 1500; i++) { atomic { c.n = c.n + 1; } }
  }
  static func main() {
    c = new Cell();
    var t = spawn Main.txnSide();
    for (var i = 0; i < 1500; i++) { c.n = c.n + 1; }
    join(t);
    print(c.n);
  }
}`
	for _, name := range []string{"strong", "strong-dea", "strong-lazy"} {
		mode := allModes()[name]
		t.Run(name, func(t *testing.T) {
			got := runTJ(t, src, mode)
			expectLines(t, got, "3000")
		})
	}
}

func TestDEAKeepsThreadLocalPrivate(t *testing.T) {
	// Purely thread-local allocation under DEA: objects must remain
	// private and execution must still be correct.
	src := `
class Node { var v: int; var next: Node; }
class Main {
  static func main() {
    var sum = 0;
    for (var i = 0; i < 100; i++) {
      var n = new Node();
      n.v = i;
      sum += n.v;
    }
    print(sum);
  }
}`
	got := runTJ(t, src, allModes()["strong-dea"])
	expectLines(t, got, "4950")
}

func TestSpawnPublishesUnderDEA(t *testing.T) {
	src := `
class Work {
  var total: int;
  func run(n: int) { atomic { total = total + n; } }
}
class Main {
  static func main() {
    var w = new Work();
    var t1 = spawn w.run(3);
    var t2 = spawn w.run(4);
    join(t1);
    join(t2);
    print(w.total);
  }
}`
	got := runTJ(t, src, allModes()["strong-dea"])
	expectLines(t, got, "7")
}

func TestVolatileFlagAndFinalField(t *testing.T) {
	src := `
class C {
  final var id: int;
  volatile var flag: int;
  func setup(v: int) { id = v; }
}
class Main {
  static func main() {
    var c = new C();
    c.setup(9);
    c.flag = 1;
    print(c.id + c.flag);
  }
}`
	got := runTJ(t, src, allModes()["strong"])
	expectLines(t, got, "10")
}

func TestModeValidation(t *testing.T) {
	prog, err := tj.Frontend(`class Main { static func main() {} }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.New(prog, vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Lazy, Strong: true, DEA: true}, nil); err == nil {
		t.Error("DEA over lazy STM accepted")
	}
	if _, err := vm.New(prog, vm.Mode{Sync: vm.SyncLock, Strong: true}, nil); err == nil {
		t.Error("barriers in lock mode accepted")
	}
}
