package vm

import (
	"fmt"
	"io"

	"repro/internal/lang/ir"
	"repro/internal/lazystm"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/strong"
)

// thread is one logical TJ thread, executed by one goroutine.
type thread struct {
	vm *VM
	id int64

	txnDepth int
	etx      *stm.Txn
	ltx      *lazystm.Txn

	inAgg  bool
	aggObj *objmodel.Object
	aggTok strong.AggToken

	rng      uint64
	tick     int
	executed int64 // local instruction count, flushed to vm.Executed

	// monitors tracks Enter/Exit nesting so a dying thread can release
	// everything it holds instead of deadlocking its peers.
	monitors []*objmodel.Monitor
}

type frame struct {
	m     *ir.Method
	regs  []uint64
	block *ir.Block
	pc    int
}

// execResult distinguishes how a frame's interpretation loop ended.
type execResult uint8

const (
	resReturn  execResult = iota // Ret executed (or fell off the end)
	resTxnExit                   // the owning atomic region ended (inner loop only)
)

// invoke runs a method to completion and returns its result value.
func (t *thread) invoke(m *ir.Method, args []uint64) uint64 {
	fr := &frame{m: m, regs: make([]uint64, m.NumRegs), block: m.Blocks[0]}
	copy(fr.regs, args)
	_, ret := t.exec(fr, false)
	return ret
}

// validateTick periodically re-validates an active eager transaction so a
// doomed transaction aborts promptly instead of looping on inconsistent
// data (the managed-runtime analogue of the quiescence safety discussion
// in Section 3.4).
func (t *thread) validateTick() {
	t.tick++
	if t.tick&255 == 0 && t.etx != nil {
		t.etx.ValidateOrRestart()
	}
}

// exec interprets fr until the method returns — or, when stopAtTxnExit is
// set, until the transaction region that the caller owns ends (AtomicEnd
// dropping the depth to zero).
func (t *thread) exec(fr *frame, stopAtTxnExit bool) (execResult, uint64) {
	vm := t.vm
	for {
		if fr.pc >= len(fr.block.Instrs) {
			// Fell off a block without terminator: method end (void).
			return resReturn, 0
		}
		in := &fr.block.Instrs[fr.pc]
		fr.pc++
		t.executed++
		if t.txnDepth > 0 {
			t.validateTick()
		}
		r := fr.regs
		switch in.Op {
		case ir.Nop:
		case ir.ConstInt:
			r[in.Dst] = uint64(in.Const)
		case ir.Mov:
			r[in.Dst] = r[in.A]
		case ir.Add:
			r[in.Dst] = uint64(int64(r[in.A]) + int64(r[in.B]))
		case ir.Sub:
			r[in.Dst] = uint64(int64(r[in.A]) - int64(r[in.B]))
		case ir.Mul:
			r[in.Dst] = uint64(int64(r[in.A]) * int64(r[in.B]))
		case ir.Div:
			if r[in.B] == 0 {
				throw("division by zero")
			}
			r[in.Dst] = uint64(int64(r[in.A]) / int64(r[in.B]))
		case ir.Mod:
			if r[in.B] == 0 {
				throw("division by zero")
			}
			r[in.Dst] = uint64(int64(r[in.A]) % int64(r[in.B]))
		case ir.Neg:
			r[in.Dst] = uint64(-int64(r[in.A]))
		case ir.Not:
			r[in.Dst] = r[in.A] ^ 1
		case ir.Eq:
			r[in.Dst] = b2u(r[in.A] == r[in.B])
		case ir.Ne:
			r[in.Dst] = b2u(r[in.A] != r[in.B])
		case ir.Lt:
			r[in.Dst] = b2u(int64(r[in.A]) < int64(r[in.B]))
		case ir.Le:
			r[in.Dst] = b2u(int64(r[in.A]) <= int64(r[in.B]))
		case ir.Gt:
			r[in.Dst] = b2u(int64(r[in.A]) > int64(r[in.B]))
		case ir.Ge:
			r[in.Dst] = b2u(int64(r[in.A]) >= int64(r[in.B]))

		case ir.GetField:
			o := t.object(r[in.A])
			r[in.Dst] = t.load(o, in.Slot, in.Barrier)
		case ir.SetField:
			o := t.object(r[in.A])
			t.store(o, in.Slot, r[in.B], in.IsRef, in.Barrier)
		case ir.GetStatic:
			r[in.Dst] = t.load(vm.statics[in.Class.ID], in.Slot, in.Barrier)
		case ir.SetStatic:
			t.store(vm.statics[in.Class.ID], in.Slot, r[in.B], in.IsRef, in.Barrier)
		case ir.GetElem:
			o := t.object(r[in.A])
			idx := int(int64(r[in.B]))
			if idx < 0 || idx >= o.Len {
				throw("index out of range: %d (length %d)", idx, o.Len)
			}
			r[in.Dst] = t.load(o, idx, in.Barrier)
		case ir.SetElem:
			o := t.object(r[in.A])
			idx := int(int64(r[in.B]))
			if idx < 0 || idx >= o.Len {
				throw("index out of range: %d (length %d)", idx, o.Len)
			}
			t.store(o, idx, r[in.C], in.IsRef, in.Barrier)
		case ir.ArrayLen:
			r[in.Dst] = uint64(t.object(r[in.A]).Len)

		case ir.NewObj:
			o := vm.Heap.New(vm.classes[in.Class.ID])
			r[in.Dst] = uint64(o.Ref())
		case ir.NewArray:
			n := int(int64(r[in.A]))
			if n < 0 {
				throw("negative array length %d", n)
			}
			o := vm.Heap.NewArray(n, in.Flag)
			r[in.Dst] = uint64(o.Ref())

		case ir.CallStatic:
			ret := t.callMethod(vm.Prog.MethodOf(in.Callee), in.Args, r)
			if in.Dst >= 0 {
				r[in.Dst] = ret
			}
		case ir.CallVirtual:
			recvObj := t.object(r[in.Args[0]])
			tc := vm.typeByRT[recvObj.Class]
			callee := tc.VTable[in.VIndex]
			ret := t.callMethod(vm.Prog.MethodOf(callee), in.Args, r)
			if in.Dst >= 0 {
				r[in.Dst] = ret
			}

		case ir.Spawn:
			r[in.Dst] = t.spawn(in, r)
		case ir.Join:
			h := vm.handle(int64(r[in.A]))
			<-h.done

		case ir.Print:
			t.print(r[in.A], in.Flag)
		case ir.Arg:
			idx := int(int64(r[in.A]))
			if idx >= 0 && idx < len(vm.Mode.Args) {
				r[in.Dst] = uint64(vm.Mode.Args[idx])
			} else {
				r[in.Dst] = 0
			}
		case ir.Rand:
			n := int64(r[in.A])
			if n <= 0 {
				throw("rand bound must be positive, got %d", n)
			}
			r[in.Dst] = uint64(t.nextRand(uint64(n)))

		case ir.MonitorEnter:
			mon := t.object(r[in.A]).Monitor()
			mon.Enter(t.id)
			t.monitors = append(t.monitors, mon)
		case ir.MonitorExit:
			t.object(r[in.A]).Monitor().Exit(t.id)
			t.monitors = t.monitors[:len(t.monitors)-1]

		case ir.AtomicBegin:
			if t.txnDepth > 0 {
				// Closed nesting, flattened: TJ has no partial-abort
				// construct, so flattening is semantically equivalent.
				t.txnDepth++
				continue
			}
			if vm.Mode.Sync == SyncLock {
				vm.globalLock.Lock()
				t.txnDepth = 1
				continue
			}
			t.runAtomicRegion(fr)
			// fr is now positioned just after the matching AtomicEnd.
		case ir.AtomicEnd:
			t.txnDepth--
			if t.txnDepth == 0 {
				if vm.Mode.Sync == SyncLock {
					vm.globalLock.Unlock()
					continue
				}
				// STM region end: hand control back to runAtomicRegion so
				// the transaction commits.
				return resTxnExit, 0
			}
		case ir.Retry:
			switch {
			case t.etx != nil:
				t.etx.Retry()
			case t.ltx != nil:
				t.ltx.Retry()
			default:
				throw("retry outside a transaction (lock mode cannot retry)")
			}

		case ir.AcquireRec:
			if t.txnDepth == 0 && vm.Mode.Strong && vm.Mode.Barriers != BarrierReadsOnly {
				o := t.object(r[in.A])
				t.aggObj = o
				t.aggTok = vm.Bar.Acquire(o)
				t.inAgg = true
			}
		case ir.ReleaseRec:
			if t.inAgg {
				vm.Bar.Release(t.aggObj, t.aggTok)
				t.inAgg = false
				t.aggObj = nil
			}

		case ir.Jmp:
			fr.block = fr.m.Blocks[in.Targets[0]]
			fr.pc = 0
		case ir.Br:
			if r[in.A] != 0 {
				fr.block = fr.m.Blocks[in.Targets[0]]
			} else {
				fr.block = fr.m.Blocks[in.Targets[1]]
			}
			fr.pc = 0
		case ir.Ret:
			var ret uint64
			if in.A >= 0 {
				ret = r[in.A]
			}
			return resReturn, ret
		default:
			throw("vm: unknown opcode %v", in.Op)
		}
	}
}

// runAtomicRegion executes the atomic region beginning at fr's current
// position (just past AtomicBegin) as a transaction, re-executing on
// abort. On return, fr is positioned just past the matching AtomicEnd and
// all effects are committed.
func (t *thread) runAtomicRegion(fr *frame) {
	snapshot := make([]uint64, len(fr.regs))
	copy(snapshot, fr.regs)
	resumeBlock, resumePC := fr.block, fr.pc
	body := func() {
		copy(fr.regs, snapshot)
		fr.block, fr.pc = resumeBlock, resumePC
		t.txnDepth = 1
		res, _ := t.exec(fr, true)
		if res != resTxnExit {
			throw("vm: atomic region ended without AtomicEnd")
		}
	}
	var err error
	if t.vm.Mode.Versioning == Eager {
		err = t.vm.Eager.Atomic(nil, func(tx *stm.Txn) error {
			t.etx = tx
			defer func() { t.etx = nil }()
			body()
			return nil
		})
	} else {
		err = t.vm.Lazy.Atomic(nil, func(tx *lazystm.Txn) error {
			t.ltx = tx
			defer func() { t.ltx = nil }()
			body()
			return nil
		})
	}
	if err != nil {
		// TJ bodies cannot return errors; any error is a runtime failure.
		panic(err)
	}
}

func (t *thread) callMethod(m *ir.Method, argRegs []int, callerRegs []uint64) uint64 {
	args := make([]uint64, len(argRegs))
	for i, a := range argRegs {
		args[i] = callerRegs[a]
	}
	return t.invoke(m, args)
}

func (t *thread) spawn(in *ir.Instr, r []uint64) uint64 {
	vm := t.vm
	if t.txnDepth > 0 {
		throw("spawn inside atomic block")
	}
	var m *ir.Method
	if in.Callee != nil && in.VIndex < 0 {
		m = vm.Prog.MethodOf(in.Callee)
	} else {
		recvObj := t.object(r[in.Args[0]])
		m = vm.Prog.MethodOf(vm.typeByRT[recvObj.Class].VTable[in.VIndex])
	}
	args := make([]uint64, len(in.Args))
	for i, a := range in.Args {
		args[i] = r[a]
	}
	// "Thread objects become public prior to the thread being spawned":
	// everything handed to the new thread escapes.
	if vm.Mode.DEA {
		kinds := m.RegKinds
		for i := range args {
			if i < len(kinds) && kinds[i] == ir.RRef {
				vm.Heap.PublishRef(objmodel.Ref(args[i]))
			}
		}
	}
	tid := vm.nextTid.Add(1)
	h := &threadHandle{done: make(chan struct{})}
	vm.threads.Store(tid, h)
	vm.wg.Add(1)
	go func() {
		defer vm.wg.Done()
		defer close(h.done)
		t2 := &thread{vm: vm, id: tid}
		t2.rng = uint64(vm.Mode.Seed+tid)*2862933555777941757 + 3037000493
		if err := t2.protect(func() { t2.invoke(m, args) }); err != nil {
			vm.recordErr(err)
		}
		vm.Executed.Add(t2.executed)
	}()
	return uint64(tid)
}

func (v *VM) handle(tid int64) *threadHandle {
	h, ok := v.threads.Load(tid)
	if !ok {
		throw("join of unknown thread %d", tid)
	}
	return h.(*threadHandle)
}

// object resolves a register value holding a reference.
func (t *thread) object(v uint64) *objmodel.Object {
	if v == 0 {
		throw("null dereference")
	}
	return t.vm.Heap.Get(objmodel.Ref(v))
}

// load performs a read access under the thread's current context.
func (t *thread) load(o *objmodel.Object, slot int, b ir.Barrier) uint64 {
	vm := t.vm
	if t.txnDepth > 0 && vm.Mode.Sync == SyncSTM {
		if b.TxnReadDirect && !vm.Mode.Strong {
			// Section 5.2 extension: this load's points-to set is never
			// written in any transaction, so under weak atomicity it can
			// bypass open-for-read (no logging, no validation).
			return o.LoadSlot(slot)
		}
		if t.etx != nil {
			return t.etx.Read(o, slot)
		}
		return t.ltx.Read(o, slot)
	}
	if vm.Mode.Strong && vm.Mode.Barriers != BarrierWritesOnly &&
		b.Active() && !t.inAgg {
		if vm.Mode.Versioning == Eager {
			return vm.Bar.Read(o, slot)
		}
		return vm.Bar.ReadOrdering(o, slot)
	}
	return o.LoadSlot(slot)
}

// store performs a write access under the thread's current context.
func (t *thread) store(o *objmodel.Object, slot int, val uint64, isRef bool, b ir.Barrier) {
	vm := t.vm
	if t.txnDepth > 0 && vm.Mode.Sync == SyncSTM {
		if t.etx != nil {
			t.etx.Write(o, slot, val)
			return
		}
		t.ltx.Write(o, slot, val)
		return
	}
	if vm.Mode.Strong && vm.Mode.Barriers != BarrierReadsOnly {
		if t.inAgg && o == t.aggObj {
			vm.Bar.AggWrite(o, slot, val, t.aggTok)
			return
		}
		if b.Active() {
			vm.Bar.Write(o, slot, val)
			return
		}
		// Barrier removed by an optimization. With dynamic escape analysis
		// the publication obligation of Figure 10b remains: writing a
		// private object's reference into a public container must publish
		// it even when the isolation barrier itself was elided.
		if vm.Mode.DEA && isRef && val != 0 && !o.IsPrivate() {
			vm.Heap.PublishRef(objmodel.Ref(val))
		}
	}
	o.StoreSlot(slot, val)
}

func (t *thread) print(v uint64, asBool bool) {
	vm := t.vm
	vm.Prints.Add(1)
	if vm.out == nil {
		return
	}
	vm.outMu.Lock()
	defer vm.outMu.Unlock()
	if asBool {
		if v != 0 {
			io.WriteString(vm.out, "true\n")
		} else {
			io.WriteString(vm.out, "false\n")
		}
		return
	}
	fmt.Fprintf(vm.out, "%d\n", int64(v))
}

// nextRand is a SplitMix64-style deterministic per-thread generator.
func (t *thread) nextRand(n uint64) uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z % n
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
