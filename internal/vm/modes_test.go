package vm_test

import (
	"strings"
	"testing"

	"repro/internal/opt"
	"repro/internal/tj"
	"repro/internal/vm"
)

// runTJLevel compiles at a level and runs in the mode.
func runTJLevel(t *testing.T, src string, lvl opt.Level, mode vm.Mode) []string {
	t.Helper()
	prog, _, err := tj.CompileLevel(src, lvl, mode.Granularity)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out strings.Builder
	m, err := vm.New(prog, mode, &out)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := strings.TrimRight(out.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

const mixedRaceSrc = `
class Cell { var n: int; var m: int; }
class Main {
  static var c: Cell;
  static func txnSide(iters: int) {
    for (var i = 0; i < iters; i++) {
      atomic {
        c.n = c.n + 1;
        c.m = c.m + 1;
      }
    }
  }
  static func main() {
    c = new Cell();
    var t = spawn Main.txnSide(600);
    for (var i = 0; i < 600; i++) {
      c.n = c.n + 1;
    }
    join(t);
    print(c.n);
    print(c.m);
  }
}`

// TestStrongWithCoarseGranularity: even with 2-slot undo spans, strong
// atomicity hides the granularity (Section 2.4's claim): the
// non-transactional increments to c.n must never be lost to span rollback
// or span write-back, in either versioning.
func TestStrongWithCoarseGranularity(t *testing.T) {
	for _, mode := range []vm.Mode{
		{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, Granularity: 2},
		{Sync: vm.SyncSTM, Versioning: vm.Lazy, Strong: true, Granularity: 1},
	} {
		got := runTJLevel(t, mixedRaceSrc, opt.O0NoOpts, mode)
		if len(got) != 2 || got[0] != "1200" || got[1] != "600" {
			t.Errorf("mode %+v: output %v, want [1200 600]", mode, got)
		}
	}
}

// TestQuiescenceMode: the full system with quiescence enabled still runs
// transactional programs correctly.
func TestQuiescenceMode(t *testing.T) {
	got := runTJLevel(t, mixedRaceSrc, opt.O2Aggregate,
		vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, Quiescence: true})
	if len(got) != 2 || got[0] != "1200" {
		t.Errorf("output %v", got)
	}
}

// TestBarrierSelectModes: reads-only and writes-only barrier configurations
// execute and only count their own barrier kind.
func TestBarrierSelectModes(t *testing.T) {
	src := `
class C { var x: int; }
class Main {
  static func main() {
    var c = new C();
    Main.use(c);
  }
  static func use(c: C) {
    var s = 0;
    for (var i = 0; i < 100; i++) {
      c.x = i;
      s += c.x;
    }
    print(s);
  }
}`
	prog, _, err := tj.CompileLevel(src, opt.O0NoOpts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		sel        vm.BarrierSelect
		wantReads  bool
		wantWrites bool
	}{
		{vm.BarrierAll, true, true},
		{vm.BarrierReadsOnly, true, false},
		{vm.BarrierWritesOnly, false, true},
	} {
		var out strings.Builder
		m, err := vm.New(prog, vm.Mode{
			Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true,
			Barriers: tc.sel, CountBarriers: true,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(out.String()) != "4950" {
			t.Errorf("sel %d: output %q", tc.sel, out.String())
		}
		reads, writes := m.Bar.Stats.Reads.Load(), m.Bar.Stats.Writes.Load()
		if (reads > 0) != tc.wantReads {
			t.Errorf("sel %d: reads = %d, wantReads=%v", tc.sel, reads, tc.wantReads)
		}
		if (writes > 0) != tc.wantWrites {
			t.Errorf("sel %d: writes = %d, wantWrites=%v", tc.sel, writes, tc.wantWrites)
		}
	}
}

// TestAggregatedExecutionCorrectUnderContention: aggregated barriers must
// preserve strong atomicity when a transaction races with the aggregated
// run.
func TestAggregatedExecutionCorrectUnderContention(t *testing.T) {
	src := `
class C { var a: int; var b: int; }
class Main {
  static var c: Cellish;
  static func main() {
    c = new Cellish();
    var t = spawn Main.txn(500);
    for (var i = 0; i < 500; i++) {
      Main.bump(c);
    }
    join(t);
    atomic { print(c.a); print(c.b); }
  }
  static func bump(x: Cellish) {
    x.a = x.a + 1;
    x.b = x.b + 1;
  }
  static func txn(n: int) {
    for (var i = 0; i < n; i++) {
      atomic {
        c.a = c.a + 1;
        c.b = c.b + 1;
      }
    }
  }
}
class Cellish { var a: int; var b: int; }`
	got := runTJLevel(t, src, opt.O2Aggregate,
		vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true})
	if len(got) != 2 || got[0] != "1000" || got[1] != "1000" {
		t.Errorf("output %v, want [1000 1000]", got)
	}
}

// TestAggregationNoOpInWeakAndLockModes: AcquireRec/ReleaseRec are inert
// when barriers are off; the program still runs correctly.
func TestAggregationNoOpInWeakAndLockModes(t *testing.T) {
	src := `
class C { var a: int; var b: int; }
class Main {
  static func main() {
    var c = new C();
    Main.fill(c);
    print(c.a + c.b);
  }
  static func fill(c: C) {
    c.a = 3;
    c.b = c.a + 4;
  }
}`
	for _, mode := range []vm.Mode{
		{Sync: vm.SyncLock},
		{Sync: vm.SyncSTM, Versioning: vm.Eager},
		{Sync: vm.SyncSTM, Versioning: vm.Lazy},
	} {
		got := runTJLevel(t, src, opt.O2Aggregate, mode)
		if len(got) != 1 || got[0] != "10" {
			t.Errorf("mode %+v: output %v", mode, got)
		}
	}
}

// TestDEAWithWholeProgramOnWorkQueue: the combination the paper runs —
// DEA + NAIT — on the data-handoff pattern.
func TestDEAWithWholeProgramOnWorkQueue(t *testing.T) {
	src := `
class Item { var v: int; }
class Main {
  static var slot: Item;
  static var done: bool;
  static func producer(n: int) {
    var i = 0;
    while (i < n) {
      var it = new Item();
      it.v = i;
      var ok = false;
      atomic {
        if (slot == null) { slot = it; ok = true; }
      }
      if (ok) { i++; }
    }
  }
  static func main() {
    var t = spawn Main.producer(50);
    var sum = 0;
    var got = 0;
    while (got < 50) {
      var it: Item = null;
      atomic {
        if (slot != null) { it = slot; slot = null; }
      }
      if (it != null) {
        sum += it.v;   // privatized: read outside any transaction
        got++;
      }
    }
    join(t);
    print(sum);
  }
}`
	got := runTJLevel(t, src, opt.O4WholeProg,
		vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, DEA: true})
	if len(got) != 1 || got[0] != "1225" {
		t.Errorf("output %v, want [1225]", got)
	}
}

// TestInstructionAndPrintCounters sanity-checks VM statistics.
func TestInstructionAndPrintCounters(t *testing.T) {
	prog, _, err := tj.CompileLevel(`class Main { static func main() { print(1); print(2); } }`, opt.O0NoOpts, 1)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	m, err := vm.New(prog, vm.Mode{Sync: vm.SyncLock}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Prints.Load() != 2 {
		t.Errorf("prints = %d", m.Prints.Load())
	}
	if m.Executed.Load() < 4 {
		t.Errorf("executed = %d", m.Executed.Load())
	}
}

// TestThreadDeathReleasesLocks: a spawned thread that hits a runtime error
// while holding a monitor, a transaction's records, or the Synch global
// lock must release them so surviving threads finish. A hang here fails
// via the test timeout.
func TestThreadDeathReleasesLocks(t *testing.T) {
	src := `
class C { var x: int; var arr: int[]; }
class Main {
  static var c: C;
  static func dieInTxn() {
    atomic {
      c.x = 1;
      c.arr[99] = 1;  // out of bounds: thread dies mid-transaction
    }
  }
  static func dieInSync() {
    synchronized (c) {
      c.arr[99] = 1;
    }
  }
  static func survivor(n: int) {
    for (var i = 0; i < n; i++) { atomic { c.x = c.x + 1; } }
  }
  static func survivorSync(n: int) {
    for (var i = 0; i < n; i++) { synchronized (c) { c.x = c.x + 1; } }
  }
  static func main() {
    c = new C();
    c.arr = new int[1];
    if (arg(0) == 0) {
      var t = spawn Main.dieInTxn();
      join(t);
      Main.survivor(50);
    } else {
      var t = spawn Main.dieInSync();
      join(t);
      Main.survivorSync(50);
    }
    print(c.x);
  }
}`
	for _, variant := range []int64{0, 1} {
		for _, mode := range []vm.Mode{
			{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, Args: []int64{variant}},
			{Sync: vm.SyncLock, Args: []int64{variant}},
		} {
			prog, _, err := tj.CompileLevel(src, opt.O0NoOpts, 1)
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			m, err := vm.New(prog, mode, &out)
			if err != nil {
				t.Fatal(err)
			}
			runErr := m.Run()
			if runErr == nil {
				t.Errorf("variant %d: expected the out-of-bounds error to surface", variant)
			}
			// The survivor loop ran to completion: no deadlock. Under the
			// STM, the dead transaction's eager write to c.x was rolled
			// back before its records were released (50); under the global
			// lock there is no rollback, so the partial effect survives
			// (51 for the in-"atomic" variant) — exactly the semantic gap
			// between transactions and locks.
			want := "50"
			if mode.Sync == vm.SyncLock && variant == 0 {
				want = "51"
			}
			if got := strings.TrimSpace(out.String()); got != want {
				t.Errorf("variant %d mode %+v: output %q, want %s", variant, mode.Sync, got, want)
			}
		}
	}
}
