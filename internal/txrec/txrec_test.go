package txrec

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestEncodingStates(t *testing.T) {
	cases := []struct {
		name string
		w    Word
		want State
	}{
		{"shared v0", MakeShared(0), Shared},
		{"shared v1", MakeShared(1), Shared},
		{"shared big", MakeShared(1 << 40), Shared},
		{"exclusive owner1", MakeExclusive(1), Exclusive},
		{"exclusive owner big", MakeExclusive(1 << 30), Exclusive},
		{"exanon v0", MakeExclusiveAnon(0), ExclusiveAnon},
		{"exanon v7", MakeExclusiveAnon(7), ExclusiveAnon},
		{"private", PrivateWord, Private},
	}
	for _, c := range cases {
		if got := StateOf(c.w); got != c.want {
			t.Errorf("%s: StateOf(%#x) = %v, want %v", c.name, c.w, got, c.want)
		}
	}
}

func TestPredicatesMutuallyExclusive(t *testing.T) {
	words := []Word{
		MakeShared(0), MakeShared(123), MakeShared(MaxVersion),
		MakeExclusive(1), MakeExclusive(999),
		MakeExclusiveAnon(0), MakeExclusiveAnon(42),
		PrivateWord,
	}
	for _, w := range words {
		n := 0
		if IsShared(w) {
			n++
		}
		if IsExclusive(w) {
			n++
		}
		if IsExclusiveAnon(w) {
			n++
		}
		if IsPrivate(w) {
			n++
		}
		if n != 1 {
			t.Errorf("word %#x satisfies %d state predicates, want exactly 1", w, n)
		}
	}
}

func TestVersionRoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		v %= MaxVersion + 1
		return Version(MakeShared(v)) == v && Version(MakeExclusiveAnon(v)) == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestOwnerRoundTrip(t *testing.T) {
	if err := quick.Check(func(o uint64) bool {
		o = o%MaxOwner + 1 // non-zero
		return Owner(MakeExclusive(o)) == o
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeExclusiveZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MakeExclusive(0) did not panic")
		}
	}()
	MakeExclusive(0)
}

// TestBitOneConflictCheck verifies the single-bit read-barrier conflict
// test of Section 3.2: only the Exclusive state conflicts with a
// non-transactional read.
func TestBitOneConflictCheck(t *testing.T) {
	if !ConflictsWithRead(MakeExclusive(5)) {
		t.Error("exclusive record must conflict with a non-transactional read")
	}
	for _, w := range []Word{MakeShared(3), MakeExclusiveAnon(3), PrivateWord} {
		if ConflictsWithRead(w) {
			t.Errorf("record %#x (%v) should not conflict with a non-transactional read", w, StateOf(w))
		}
	}
}

// TestBitZeroWriterCheck verifies the footnote's lowest-bit test that
// detects both transactional and non-transactional concurrent writers.
func TestBitZeroWriterCheck(t *testing.T) {
	for _, w := range []Word{MakeExclusive(5), MakeExclusiveAnon(3)} {
		if !ConflictsWithAnyWriter(w) {
			t.Errorf("record %#x (%v) should conflict with any writer check", w, StateOf(w))
		}
	}
	for _, w := range []Word{MakeShared(3), PrivateWord} {
		if ConflictsWithAnyWriter(w) {
			t.Errorf("record %#x (%v) should not conflict with any writer check", w, StateOf(w))
		}
	}
}

// TestAddNineRelease verifies the arithmetic identity the write barrier
// relies on: (v<<3|010) + 9 == ((v+1)<<3|011).
func TestAddNineRelease(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		v %= MaxVersion // leave room for the increment
		return MakeExclusiveAnon(v)+ReleaseIncrement == MakeShared(v+1)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestAcquireAnonFromShared(t *testing.T) {
	var r Rec
	r.Init(MakeShared(7))
	prev, ok := r.AcquireAnon()
	if !ok {
		t.Fatal("acquire from shared state failed")
	}
	if !IsShared(prev) || Version(prev) != 7 {
		t.Errorf("prev = %#x, want shared v7", prev)
	}
	w := r.Load()
	if !IsExclusiveAnon(w) || Version(w) != 7 {
		t.Errorf("after acquire: %#x (%v), want exclusive-anonymous v7", w, StateOf(w))
	}
	r.ReleaseAnon()
	w = r.Load()
	if !IsShared(w) || Version(w) != 8 {
		t.Errorf("after release: %#x (%v), want shared v8", w, StateOf(w))
	}
}

func TestAcquireAnonFromExclusiveFails(t *testing.T) {
	var r Rec
	r.Init(MakeExclusive(3))
	prev, ok := r.AcquireAnon()
	if ok {
		t.Fatal("acquire from exclusive state should fail")
	}
	if prev != MakeExclusive(3) || r.Load() != MakeExclusive(3) {
		t.Errorf("exclusive record disturbed: prev %#x now %#x", prev, r.Load())
	}
}

func TestAcquireAnonFromExclusiveAnonFails(t *testing.T) {
	var r Rec
	r.Init(MakeExclusiveAnon(4))
	if _, ok := r.AcquireAnon(); ok {
		t.Fatal("acquire from exclusive-anonymous state should fail")
	}
	if got := r.Load(); got != MakeExclusiveAnon(4) {
		t.Errorf("record disturbed: %#x", got)
	}
}

func TestReleaseOwned(t *testing.T) {
	var r Rec
	r.Init(MakeExclusive(9))
	r.ReleaseOwned(41)
	w := r.Load()
	if !IsShared(w) || Version(w) != 42 {
		t.Errorf("after ReleaseOwned: %#x, want shared v42", w)
	}
}

func TestPublish(t *testing.T) {
	var r Rec
	r.Init(PrivateWord)
	r.Publish()
	w := r.Load()
	if !IsShared(w) || Version(w) != 1 {
		t.Errorf("after Publish: %#x, want shared v1", w)
	}
}

// TestAcquireAnonMutualExclusion hammers one record with concurrent
// acquire/release loops and checks that exactly one thread holds the record
// at a time and that the version increases monotonically by the number of
// successful acquisitions.
func TestAcquireAnonMutualExclusion(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
	)
	var r Rec
	r.Init(MakeShared(0))
	var holders, maxHolders, acquired struct{ n atomicInt }
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; {
				if _, ok := r.AcquireAnon(); !ok {
					continue
				}
				h := holders.n.Add(1)
				if h > 1 {
					maxHolders.n.Add(1)
				}
				acquired.n.Add(1)
				holders.n.Add(-1)
				r.ReleaseAnon()
				i++
			}
		}()
	}
	wg.Wait()
	if maxHolders.n.Load() != 0 {
		t.Errorf("observed %d concurrent-holder violations", maxHolders.n.Load())
	}
	w := r.Load()
	if !IsShared(w) {
		t.Fatalf("final state %v, want shared", StateOf(w))
	}
	if got, want := Version(w), uint64(acquired.n.Load()); got != want {
		t.Errorf("final version %d, want %d (one bump per acquisition)", got, want)
	}
}

type atomicInt struct{ v atomic.Int64 }

func (a *atomicInt) Add(d int64) int64 { return a.v.Add(d) }
func (a *atomicInt) Load() int64       { return a.v.Load() }

// TestStateOfInvalidPanics checks that corrupted words are rejected.
func TestStateOfInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StateOf on invalid word did not panic")
		}
	}()
	StateOf(0b111) // low bits 111 but not all-ones
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Shared:        "shared",
		Exclusive:     "exclusive",
		ExclusiveAnon: "exclusive-anonymous",
		Private:       "private",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
	if State(99).String() != "State(99)" {
		t.Errorf("unknown state string = %q", State(99).String())
	}
}

func TestMaxVersionEncodes(t *testing.T) {
	w := MakeShared(MaxVersion)
	if w != math.MaxUint64&^4 {
		// MaxVersion<<3|011 sets every bit except bit 2.
		t.Errorf("MakeShared(MaxVersion) = %#x", w)
	}
	if IsPrivate(w) {
		t.Error("max-version shared word must not alias the private word")
	}
}
