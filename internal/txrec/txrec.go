// Package txrec implements the per-object transaction record word described
// in Section 3.1 of "Enforcing Isolation and Ordering in STM" (PLDI 2007).
//
// A transaction record is a single word that tracks the synchronization
// state of one object. The paper's Figure 7 encodes four states in the
// three least-significant bits:
//
//	Encoding     State                Value in upper bits
//	x..x011      Shared               Version number
//	x..xx00      Exclusive            Owner address (here: owner ID)
//	x..x010      Exclusive anonymous  Version number
//	1..1111      Private              All ones
//
// The shared state permits read-only access by any number of transactions
// and carries a version number used for optimistic read concurrency. The
// exclusive state grants read-write access to the single owning transaction
// and carries the owner's identity. The exclusive-anonymous state is held
// by a non-transactional writer: it records that *some* thread owns the
// object for writing without saying who, and preserves the version number
// from the prior shared state. The private state (all ones) marks an object
// visible to only one thread (dynamic escape analysis, Section 4).
//
// The encoding is chosen so that the hot-path barrier checks are single-bit
// tests, exactly as in the paper's IA32 sequences:
//
//   - Testing bit 1 distinguishes Exclusive (bit 1 == 0) from every other
//     state. A non-transactional read barrier detects conflicts with
//     transactional writers with one "test ecx, 2".
//   - Atomically clearing bit 0 (x86 "lock btr") transitions Shared (…011)
//     to Exclusive anonymous (…010), acquiring write ownership for a
//     non-transactional writer in a single atomic instruction.
//   - Adding 9 to an Exclusive-anonymous word restores Shared *and*
//     increments the version: (v<<3 | 010) + 9 == ((v+1)<<3 | 011).
package txrec

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Word is the raw transaction-record value. It is stored in an
// atomic.Uint64 embedded in every object.
type Word = uint64

// State identifies one of the four transaction-record states of Figure 7.
type State uint8

// The four states of a transaction record.
const (
	Shared        State = iota // read-shared; upper bits hold a version
	Exclusive                  // owned by one transaction; upper bits hold owner ID
	ExclusiveAnon              // owned by one non-transactional writer
	Private                    // visible to a single thread (dynamic escape analysis)
)

func (s State) String() string {
	switch s {
	case Shared:
		return "shared"
	case Exclusive:
		return "exclusive"
	case ExclusiveAnon:
		return "exclusive-anonymous"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Bit-level constants of the Figure 7 encoding.
const (
	sharedBits   Word = 0b011
	exAnonBits   Word = 0b010
	stateMask3   Word = 0b111
	exclusiveLow Word = 0b11 // low two bits are 00 in the exclusive state

	// PrivateWord is the all-ones private encoding.
	PrivateWord Word = math.MaxUint64

	// versionShift is where the version number starts in shared and
	// exclusive-anonymous words.
	versionShift = 3

	// ownerShift is where the owner ID starts in exclusive words. The low
	// two bits of an exclusive word are zero, so owner IDs are shifted by
	// two; owner ID zero is reserved (it would make the whole word zero).
	ownerShift = 2

	// ReleaseIncrement is the constant added to an owned record to release
	// it back to Shared while bumping the version: +8 increments the
	// version field (bit 3) and +1 turns the …010 (or …x00 after masking)
	// state bits back into …011.
	ReleaseIncrement Word = 9

	// MaxVersion is the largest representable version number.
	MaxVersion = PrivateWord >> versionShift

	// MaxOwner is the largest representable owner ID.
	MaxOwner = PrivateWord >> ownerShift
)

// MakeShared builds a shared-state word carrying the given version number.
func MakeShared(version uint64) Word {
	return version<<versionShift | sharedBits
}

// MakeExclusive builds an exclusive-state word owned by the transaction
// with the given non-zero ID.
func MakeExclusive(owner uint64) Word {
	if owner == 0 {
		panic("txrec: owner ID must be non-zero")
	}
	return owner << ownerShift
}

// MakeExclusiveAnon builds an exclusive-anonymous word preserving the given
// version number from the record's prior shared state.
func MakeExclusiveAnon(version uint64) Word {
	return version<<versionShift | exAnonBits
}

// StateOf decodes the state of a record word.
func StateOf(w Word) State {
	switch {
	case w == PrivateWord:
		return Private
	case w&exclusiveLow == 0:
		return Exclusive
	case w&stateMask3 == sharedBits:
		return Shared
	case w&stateMask3 == exAnonBits:
		return ExclusiveAnon
	default:
		// Only the private word may have low bits 111; anything else is a
		// corrupted record.
		panic(fmt.Sprintf("txrec: invalid record word %#x", w))
	}
}

// IsShared reports whether w is in the shared state.
func IsShared(w Word) bool { return w&stateMask3 == sharedBits && w != PrivateWord }

// IsExclusive reports whether w is owned by a transaction.
func IsExclusive(w Word) bool { return w&exclusiveLow == 0 }

// IsExclusiveAnon reports whether w is owned by a non-transactional writer.
func IsExclusiveAnon(w Word) bool { return w&stateMask3 == exAnonBits }

// IsPrivate reports whether w is the private (all ones) encoding.
func IsPrivate(w Word) bool { return w == PrivateWord }

// IsOwned reports whether some thread holds the record for writing — the
// paper's bit-1 test ("test ecx, 2; jz conflict"). It is true for the
// Exclusive state only; Shared, ExclusiveAnon and Private all have bit 1
// set. Non-transactional read barriers use ConflictsWithRead instead, which
// matches this test exactly.
func IsOwned(w Word) bool { return w&2 == 0 }

// ConflictsWithRead reports whether a non-transactional read of an object
// with record w must invoke the conflict handler. Per Section 3.2, a
// single test of bit 1 suffices: only the Exclusive state (a transactional
// writer) clears it. An exclusive-anonymous owner is another
// non-transactional writer, which the paper's read barrier deliberately
// ignores ("this barrier may not detect some conflicts between two
// non-transactional threads as such conflicts do not violate any
// transaction's isolation").
func ConflictsWithRead(w Word) bool { return w&2 == 0 }

// ConflictsWithAnyWriter reports whether any writer — transactional or
// not — currently owns the record. Per the paper's footnote, inspecting
// only the lowest bit detects both kinds of concurrent writers.
func ConflictsWithAnyWriter(w Word) bool { return w&1 == 0 }

// Version extracts the version number from a shared or exclusive-anonymous
// word.
func Version(w Word) uint64 {
	if IsExclusive(w) {
		panic("txrec: version requested from exclusive record")
	}
	return w >> versionShift
}

// Owner extracts the owner ID from an exclusive word.
func Owner(w Word) uint64 {
	if !IsExclusive(w) {
		panic("txrec: owner requested from non-exclusive record")
	}
	return w >> ownerShift
}

// Rec is an atomically-accessed transaction record. It is embedded in every
// managed object.
type Rec struct {
	w atomic.Uint64
}

// Init sets the record's initial state without synchronization. It must be
// called before the object is visible to any other thread.
func (r *Rec) Init(w Word) { r.w.Store(w) }

// Load returns the current record word.
func (r *Rec) Load() Word { return r.w.Load() }

// Store unconditionally replaces the record word. Callers must own the
// record or otherwise know that no other thread can race.
func (r *Rec) Store(w Word) { r.w.Store(w) }

// CompareAndSwap atomically replaces old with new and reports success. It
// is the acquire primitive used by transactional open-for-write.
func (r *Rec) CompareAndSwap(old, new Word) bool { return r.w.CompareAndSwap(old, new) }

// AcquireAnon attempts the paper's non-transactional write-barrier acquire:
// an atomic bit-test-and-reset of bit 0 ("lock btr [TxRec],0"). On x86 the
// instruction is unconditional; here it is an atomic AND that clears bit 0
// and returns the previous word. Acquisition succeeded iff bit 0 was
// previously set, which transitions Shared (…011) to ExclusiveAnon (…010).
// If the record was already in an exclusive state (bit 0 clear), the word
// is unchanged and the caller must invoke the conflict handler.
//
// The caller is responsible for checking for the Private state first when
// dynamic escape analysis is enabled; a private object is visible to only
// one thread, so no other thread can race with that check.
// Note: implemented as a CAS loop rather than atomic.Uint64.And because the
// And intrinsic miscompiles on go1.24.0 amd64 (the flag-register allocation
// clobbers a live register holding the receiver of the caller's next load).
// The CAS loop is semantically identical to an atomic AND.
func (r *Rec) AcquireAnon() (prev Word, acquired bool) {
	for {
		prev = r.w.Load()
		if prev&1 == 0 {
			return prev, false // already exclusive; word unchanged (BTR no-op)
		}
		if r.w.CompareAndSwap(prev, prev&^1) {
			return prev, true
		}
	}
}

// ReleaseAnon releases a record acquired by AcquireAnon, restoring the
// Shared state and incrementing the version in a single atomic add of 9,
// exactly the paper's "add [TxRec],9".
func (r *Rec) ReleaseAnon() { r.w.Add(ReleaseIncrement) }

// ReleaseOwned releases a transactionally-owned (Exclusive) record back to
// Shared with the version succeeding prior, the version observed when the
// record was acquired. It is used both at commit and after rollback on
// abort: either way the version must advance so that optimistic readers
// who observed intermediate state fail validation.
func (r *Rec) ReleaseOwned(prior uint64) { r.w.Store(MakeShared(prior + 1)) }

// ReleaseOwnedAt releases a transactionally-owned record back to Shared
// stamped with the commit clock's write version, used by committing
// transactions under commit-clock validation. The stored version is
// max(stamp, prior+1): the stamp normally dominates (the clock advanced at
// least to prior's commit before this release), but per-object version
// monotonicity must hold even when abort bumps or anonymous releases have
// pushed the object's version past the clock. stamp 0 degrades to
// ReleaseOwned semantics.
func (r *Rec) ReleaseOwnedAt(prior, stamp uint64) {
	v := prior + 1
	if stamp > v {
		v = stamp
	}
	r.w.Store(MakeShared(v))
}

// Publish transitions a Private record to Shared with version 1. It must
// only be called by the single thread that can see the object.
func (r *Rec) Publish() { r.w.Store(MakeShared(1)) }
