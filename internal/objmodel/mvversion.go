package objmodel

import "sync/atomic"

// MVVersion is one committed version in an object's multi-version chain,
// newest first: Object.MVHead points at the most recent version, and each
// version's prev pointer leads to the next older one. A version is immutable
// after publication — TS and Vals are written before the CAS that links the
// node in and never after — so snapshot readers traverse the chain without
// any synchronization beyond the initial head load.
//
// The prev pointer is the one mutable field, and only in one direction: the
// garbage collector severs the chain below the reclamation watermark by
// storing nil. Readers that raced past the cut still hold the detached tail
// through their local pointer, and Go's GC keeps it alive until they finish;
// reclamation here means "unreachable from the object", not "freed now".
type MVVersion struct {
	// TS is the commit-clock timestamp at which this version became the
	// object's committed state. Timestamps strictly decrease along the
	// chain, and the head's TS always equals the version number in the
	// object's transaction record once its writer has released it.
	TS uint64

	// Vals is the full slot image of the object at TS. Whole-object images
	// keep the read path to a single chain walk regardless of which slots a
	// committing writer touched.
	Vals []uint64

	prev atomic.Pointer[MVVersion]
}

// Prev returns the next older version, or nil at the end of the chain.
func (v *MVVersion) Prev() *MVVersion { return v.prev.Load() }

// SetPrev links (or, with nil, severs) the chain below v.
func (v *MVVersion) SetPrev(p *MVVersion) { v.prev.Store(p) }
