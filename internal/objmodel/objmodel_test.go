package objmodel

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/txrec"
)

func newTestHeap() *Heap { return NewHeap() }

func defineItem(t testing.TB, h *Heap) *Class {
	t.Helper()
	return h.MustDefineClass(ClassSpec{
		Name: "Item",
		Fields: []Field{
			{Name: "val1"},
			{Name: "val2"},
			{Name: "next", IsRef: true},
		},
	})
}

func TestDefineClassLayout(t *testing.T) {
	h := newTestHeap()
	item := defineItem(t, h)
	if item.NumSlots != 3 {
		t.Fatalf("NumSlots = %d, want 3", item.NumSlots)
	}
	if f := item.FieldByName("val2"); f == nil || f.Slot != 1 || f.IsRef {
		t.Errorf("val2 field = %+v", f)
	}
	if f := item.FieldByName("next"); f == nil || f.Slot != 2 || !f.IsRef {
		t.Errorf("next field = %+v", f)
	}
	if len(item.RefSlots) != 1 || item.RefSlots[0] != 2 {
		t.Errorf("RefSlots = %v, want [2]", item.RefSlots)
	}
	if item.FieldByName("nope") != nil {
		t.Error("unknown field lookup should return nil")
	}
}

func TestDefineClassInheritance(t *testing.T) {
	h := newTestHeap()
	base := h.MustDefineClass(ClassSpec{
		Name:   "Base",
		Fields: []Field{{Name: "a"}, {Name: "link", IsRef: true}},
	})
	sub := h.MustDefineClass(ClassSpec{
		Name:   "Sub",
		Super:  base,
		Fields: []Field{{Name: "b"}, {Name: "peer", IsRef: true}},
	})
	if sub.NumSlots != 4 {
		t.Fatalf("Sub.NumSlots = %d, want 4", sub.NumSlots)
	}
	if f := sub.FieldByName("a"); f == nil || f.Slot != 0 {
		t.Errorf("inherited field a = %+v", f)
	}
	if f := sub.FieldByName("peer"); f == nil || f.Slot != 3 {
		t.Errorf("field peer = %+v", f)
	}
	want := []int{1, 3}
	if len(sub.RefSlots) != 2 || sub.RefSlots[0] != want[0] || sub.RefSlots[1] != want[1] {
		t.Errorf("Sub.RefSlots = %v, want %v", sub.RefSlots, want)
	}
	if !sub.IsSubclassOf(base) || !sub.IsSubclassOf(sub) {
		t.Error("IsSubclassOf failed for direct relationship")
	}
	if base.IsSubclassOf(sub) {
		t.Error("base must not be a subclass of sub")
	}
}

func TestDefineClassDuplicate(t *testing.T) {
	h := newTestHeap()
	defineItem(t, h)
	if _, err := h.DefineClass(ClassSpec{Name: "Item"}); err == nil {
		t.Error("duplicate class definition should fail")
	}
}

func TestAllocAndHandleRoundTrip(t *testing.T) {
	h := newTestHeap()
	item := defineItem(t, h)
	var refs []Ref
	for i := 0; i < 100; i++ {
		o := h.New(item)
		o.StoreSlot(0, uint64(i))
		refs = append(refs, o.Ref())
	}
	for i, r := range refs {
		o := h.Get(r)
		if got := o.LoadSlot(0); got != uint64(i) {
			t.Fatalf("object %d: slot0 = %d", i, got)
		}
		if o.Ref() != r {
			t.Fatalf("object %d: Ref() = %d, want %d", i, o.Ref(), r)
		}
	}
	if h.Len() != 100 {
		t.Errorf("heap Len = %d, want 100", h.Len())
	}
}

func TestNullHandling(t *testing.T) {
	h := newTestHeap()
	if h.TryGet(Null) != nil {
		t.Error("TryGet(Null) should be nil")
	}
	defer func() {
		if r := recover(); r != ErrNullDeref {
			t.Errorf("Get(Null) panic = %v, want ErrNullDeref", r)
		}
	}()
	h.Get(Null)
}

func TestAllocStateSharedByDefault(t *testing.T) {
	h := newTestHeap()
	item := defineItem(t, h)
	o := h.New(item)
	w := o.Rec.Load()
	if !txrec.IsShared(w) || txrec.Version(w) != 1 {
		t.Errorf("default alloc record = %#x, want shared v1", w)
	}
	if o.IsPrivate() {
		t.Error("IsPrivate true for shared object")
	}
}

func TestAllocPrivateWithDEA(t *testing.T) {
	h := newTestHeap()
	h.AllocPrivate = true
	item := defineItem(t, h)
	o := h.New(item)
	if !o.IsPrivate() {
		t.Error("object not born private under dynamic escape analysis")
	}
	pub := h.NewPublic(item)
	if pub.IsPrivate() {
		t.Error("NewPublic object must not be private")
	}
	arr := h.NewArray(4, false)
	if !arr.IsPrivate() {
		t.Error("array not born private under dynamic escape analysis")
	}
}

func TestArrays(t *testing.T) {
	h := newTestHeap()
	a := h.NewArray(10, false)
	if a.Len != 10 || a.Class.Kind != KindArray || a.Class.ElemIsRef {
		t.Fatalf("array metadata wrong: %+v", a.Class)
	}
	for i := 0; i < 10; i++ {
		a.StoreSlot(i, uint64(i*i))
	}
	for i := 0; i < 10; i++ {
		if a.LoadSlot(i) != uint64(i*i) {
			t.Fatalf("elem %d = %d", i, a.LoadSlot(i))
		}
	}
	ra := h.NewArray(3, true)
	if !ra.IsRefSlot(0) || !ra.IsRefSlot(2) {
		t.Error("ref array slots must be ref slots")
	}
	if a.IsRefSlot(0) {
		t.Error("scalar array slots must not be ref slots")
	}
}

func TestIsRefSlot(t *testing.T) {
	h := newTestHeap()
	item := defineItem(t, h)
	o := h.New(item)
	if o.IsRefSlot(0) || o.IsRefSlot(1) {
		t.Error("scalar slots misreported as refs")
	}
	if !o.IsRefSlot(2) {
		t.Error("ref slot misreported as scalar")
	}
}

// TestPublishGraph builds a private linked structure with a cycle and a
// branch and verifies Publish marks the whole reachable subgraph public
// (Figure 11).
func TestPublishGraph(t *testing.T) {
	h := newTestHeap()
	h.AllocPrivate = true
	item := defineItem(t, h)
	a, b, c, d := h.New(item), h.New(item), h.New(item), h.New(item)
	// a -> b -> c -> a (cycle), b also reaches an array holding d.
	a.StoreSlot(2, uint64(b.Ref()))
	b.StoreSlot(2, uint64(c.Ref()))
	c.StoreSlot(2, uint64(a.Ref()))
	arr := h.NewArray(3, true)
	arr.StoreSlot(1, uint64(d.Ref()))
	// Hook the array into the graph through c's ref slot... c already points
	// at a; use d's next to reach the array instead: a->b->c->a and c->...
	// Give b a second path by pointing d at the array and c at d.
	c.StoreSlot(2, uint64(d.Ref()))
	d.StoreSlot(2, uint64(arr.Ref()))

	unreach := h.New(item)

	h.Publish(a)
	for i, o := range []*Object{a, b, c, d, arr} {
		if o.IsPrivate() {
			t.Errorf("object %d still private after publish", i)
		}
		w := o.Rec.Load()
		if !txrec.IsShared(w) || txrec.Version(w) != 1 {
			t.Errorf("object %d record = %#x, want shared v1", i, w)
		}
	}
	if !unreach.IsPrivate() {
		t.Error("unreachable object must stay private")
	}
	if got := h.PublishedObjects.Load(); got != 5 {
		t.Errorf("PublishedObjects = %d, want 5", got)
	}
}

// TestPublishStopsAtPublic checks that traversal does not continue through
// already-public objects ("No private objects are reachable through public
// objects" is the invariant; a public boundary ends the walk).
func TestPublishStopsAtPublic(t *testing.T) {
	h := newTestHeap()
	h.AllocPrivate = true
	item := defineItem(t, h)
	a := h.New(item)
	pub := h.NewPublic(item)
	a.StoreSlot(2, uint64(pub.Ref()))
	h.Publish(a)
	if a.IsPrivate() {
		t.Error("a still private")
	}
	if got := h.PublishedObjects.Load(); got != 1 {
		t.Errorf("PublishedObjects = %d, want 1 (public boundary not counted)", got)
	}
}

func TestPublishIdempotent(t *testing.T) {
	h := newTestHeap()
	h.AllocPrivate = true
	item := defineItem(t, h)
	a := h.New(item)
	h.Publish(a)
	h.Publish(a) // second publish is a no-op
	if got := h.PublishedObjects.Load(); got != 1 {
		t.Errorf("PublishedObjects = %d after double publish, want 1", got)
	}
	h.PublishRef(Null) // must not panic
}

// TestPublishChainProperty: publishing the head of a randomly-sized chain
// publishes exactly the chain.
func TestPublishChainProperty(t *testing.T) {
	h := newTestHeap()
	h.AllocPrivate = true
	item := defineItem(t, h)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		before := h.PublishedObjects.Load()
		objs := make([]*Object, n)
		for i := range objs {
			objs[i] = h.New(item)
			if i > 0 {
				objs[i-1].StoreSlot(2, uint64(objs[i].Ref()))
			}
		}
		h.Publish(objs[0])
		for _, o := range objs {
			if o.IsPrivate() {
				return false
			}
		}
		return h.PublishedObjects.Load()-before == int64(n)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMonitorReentrancy(t *testing.T) {
	h := newTestHeap()
	item := defineItem(t, h)
	o := h.New(item)
	m := o.Monitor()
	if m != o.Monitor() {
		t.Fatal("Monitor() must be stable")
	}
	m.Enter(1)
	m.Enter(1) // reentrant
	m.Exit(1)
	done := make(chan struct{})
	go func() {
		m2 := o.Monitor()
		m2.Enter(2)
		m2.Exit(2)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second thread acquired a held monitor")
	default:
	}
	m.Exit(1)
	<-done
}

func TestMonitorExitByNonOwnerPanics(t *testing.T) {
	h := newTestHeap()
	o := h.New(defineItem(t, h))
	m := o.Monitor()
	m.Enter(1)
	defer m.Exit(1)
	defer func() {
		if recover() == nil {
			t.Error("Exit by non-owner did not panic")
		}
	}()
	m.Exit(2)
}

// TestConcurrentAllocation checks the copy-on-grow heap table under
// parallel allocation and lookup.
func TestConcurrentAllocation(t *testing.T) {
	h := newTestHeap()
	item := defineItem(t, h)
	const (
		goroutines = 8
		perG       = 500
	)
	var wg sync.WaitGroup
	refs := make([][]Ref, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				o := h.New(item)
				o.StoreSlot(0, uint64(g*perG+i))
				refs[g] = append(refs[g], o.Ref())
				// Interleave lookups of our own earlier objects.
				if i > 0 {
					r := refs[g][i/2]
					if h.Get(r) == nil {
						t.Errorf("lost object %d", r)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Len() != goroutines*perG {
		t.Fatalf("heap Len = %d, want %d", h.Len(), goroutines*perG)
	}
	seen := make(map[uint64]bool)
	for g := range refs {
		for _, r := range refs[g] {
			v := h.Get(r).LoadSlot(0)
			if seen[v] {
				t.Fatalf("duplicate payload %d", v)
			}
			seen[v] = true
		}
	}
}

func TestMustDefineClassPanics(t *testing.T) {
	h := newTestHeap()
	defineItem(t, h)
	defer func() {
		if recover() == nil {
			t.Error("MustDefineClass on duplicate did not panic")
		}
	}()
	h.MustDefineClass(ClassSpec{Name: "Item"})
}

func TestClassByName(t *testing.T) {
	h := newTestHeap()
	item := defineItem(t, h)
	if h.ClassByName("Item") != item {
		t.Error("ClassByName lookup failed")
	}
	if h.ClassByName("Missing") != nil {
		t.Error("ClassByName for missing class should be nil")
	}
}

func ExampleHeap_Publish() {
	h := NewHeap()
	h.AllocPrivate = true
	node := h.MustDefineClass(ClassSpec{
		Name:   "Node",
		Fields: []Field{{Name: "v"}, {Name: "next", IsRef: true}},
	})
	a := h.New(node)
	b := h.New(node)
	a.StoreSlot(1, uint64(b.Ref()))
	fmt.Println("a private:", a.IsPrivate(), "b private:", b.IsPrivate())
	h.Publish(a)
	fmt.Println("a private:", a.IsPrivate(), "b private:", b.IsPrivate())
	// Output:
	// a private: true b private: true
	// a private: false b private: false
}
