package objmodel

import (
	"strings"
	"testing"
)

func TestClockTickAdvanceRaise(t *testing.T) {
	var c CommitClock
	c.Reset(1)
	c.Tick()
	if got := c.Load(); got != 2 {
		t.Fatalf("after Tick: clock = %d, want 2", got)
	}
	wv, advanced := c.Advance()
	if wv != 3 || !advanced {
		t.Fatalf("Advance = (%d, %v), want (3, true)", wv, advanced)
	}
	c.Raise(10)
	if got := c.Load(); got != 10 {
		t.Fatalf("after Raise(10): clock = %d, want 10", got)
	}
	// Raising below the current value is a no-op.
	c.Raise(5)
	if got := c.Load(); got != 10 {
		t.Fatalf("after Raise(5): clock = %d, want 10", got)
	}
}

func TestHeapClockStartsAtObjectBirthVersion(t *testing.T) {
	h := NewHeap()
	if got := h.Clock().Load(); got != 1 {
		t.Fatalf("fresh heap clock = %d, want 1 (objects are born shared v1)", got)
	}
}

// TestClockOverflowPanics pins the wraparound guard: a clock at its ceiling
// must refuse to advance with a loud panic rather than wrap, because a
// wrapped clock could equal a stale snapshot and let the single-compare
// validation fast path admit an inconsistent read set.
func TestClockOverflowPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s at clockLimit did not panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "commit clock overflow") {
				t.Fatalf("%s panic = %v, want commit clock overflow", name, r)
			}
		}()
		f()
	}
	var c CommitClock
	c.Reset(clockLimit)
	mustPanic("Tick", func() { c.Tick() })
	mustPanic("Advance", func() { c.Advance() })
	mustPanic("Raise", func() { c.Raise(clockLimit + 1) })

	// One tick below the ceiling still works; the next attempt trips.
	c.Reset(clockLimit - 1)
	c.Tick()
	mustPanic("Tick at limit", func() { c.Tick() })
}
