// Package objmodel provides the managed object model on which the STM
// operates: classes with word-sized slots, objects carrying a transaction
// record, arrays, per-class statics, and a handle-based heap.
//
// The paper's system runs inside a Java virtual machine where every object
// has a "transaction field holding its transaction record" (Section 3.1).
// We reproduce that environment: every Object embeds a txrec.Rec, every
// field or array element occupies one atomically-accessed 64-bit slot, and
// references between objects are word-sized handles into a heap table. The
// uniform word-granularity layout is what lets us reproduce the paper's
// granularity anomalies (Section 2.4) exactly: an undo-log or write-buffer
// entry that spans two adjacent slots manufactures writes to the neighbour
// slot just as an 8-byte log entry does for two adjacent 4-byte fields.
package objmodel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/txrec"
)

// Ref is a reference to a managed object: an opaque handle into a Heap.
// The zero Ref is null.
type Ref uint64

// Null is the null reference.
const Null Ref = 0

// Field describes one declared field of a class.
type Field struct {
	Name     string
	Slot     int  // slot index in the object (after flattening inheritance)
	IsRef    bool // true if the field holds a Ref
	Final    bool // immutable after construction; barriers elidable
	Volatile bool // Java volatile; always accessed with SC atomics here
}

// Class describes the layout of a kind of object. Classes are immutable
// once created (before any object of the class is allocated).
type Class struct {
	Name     string
	Super    *Class
	Fields   []Field // flattened: inherited fields first, in slot order
	NumSlots int
	RefSlots []int // slot indexes holding references, ascending

	// Kind distinguishes ordinary objects from arrays and statics holders.
	Kind ClassKind

	// ElemIsRef is meaningful only for array classes.
	ElemIsRef bool

	byName map[string]*Field
}

// ClassKind discriminates the runtime flavors of Class.
type ClassKind uint8

// Class kinds.
const (
	KindObject ClassKind = iota
	KindArray
	KindStatics
)

// FieldByName returns the field with the given name, or nil.
func (c *Class) FieldByName(name string) *Field {
	if f, ok := c.byName[name]; ok {
		return f
	}
	return nil
}

// IsSubclassOf reports whether c is t or a subclass of t.
func (c *Class) IsSubclassOf(t *Class) bool {
	for s := c; s != nil; s = s.Super {
		if s == t {
			return true
		}
	}
	return false
}

// Object is a managed heap object. Slots hold either scalar values or Refs
// (as indicated by the class layout); every slot access is atomic so that
// racy programs stay within the Go memory model while still exhibiting the
// paper's STM-level anomalies.
type Object struct {
	Rec   txrec.Rec
	Class *Class
	Slots []atomic.Uint64
	Len   int // array length; 0 for non-arrays

	// MVHead is the newest committed version in the object's multi-version
	// chain (internal/mvstm); nil until a multi-version transaction first
	// commits a write to the object. It lives here rather than in mvstm so
	// snapshot readers reach the chain with one pointer load off the object.
	MVHead atomic.Pointer[MVVersion]

	ref Ref // this object's own handle

	monitor atomic.Pointer[Monitor] // lazily allocated Java-style monitor
}

// Ref returns the object's handle.
func (o *Object) Ref() Ref { return o.ref }

// IsPrivate reports whether the object is currently in the private state
// (dynamic escape analysis, Section 4).
func (o *Object) IsPrivate() bool { return txrec.IsPrivate(o.Rec.Load()) }

// IsRefSlot reports whether slot i of this object holds a reference.
func (o *Object) IsRefSlot(i int) bool {
	if o.Class.Kind == KindArray {
		return o.Class.ElemIsRef
	}
	for _, s := range o.Class.RefSlots {
		if s == i {
			return true
		}
		if s > i {
			break
		}
	}
	return false
}

// LoadSlot reads slot i directly (no barrier).
func (o *Object) LoadSlot(i int) uint64 { return o.Slots[i].Load() }

// StoreSlot writes slot i directly (no barrier).
func (o *Object) StoreSlot(i int, v uint64) { o.Slots[i].Store(v) }

// Monitor is a reentrant lock implementing Java synchronized semantics.
type Monitor struct {
	mu    sync.Mutex
	owner atomic.Int64 // goroutine-level logical thread ID, 0 if unowned
	depth int
}

// Enter acquires the monitor on behalf of logical thread tid, reentrantly.
func (m *Monitor) Enter(tid int64) {
	if m.owner.Load() == tid {
		m.depth++
		return
	}
	m.mu.Lock()
	m.owner.Store(tid)
	m.depth = 1
}

// Exit releases one level of the monitor held by tid.
func (m *Monitor) Exit(tid int64) {
	if m.owner.Load() != tid {
		panic("objmodel: monitor exit by non-owner")
	}
	m.depth--
	if m.depth == 0 {
		m.owner.Store(0)
		m.mu.Unlock()
	}
}

// Monitor returns the object's monitor, allocating it on first use.
func (o *Object) Monitor() *Monitor {
	if m := o.monitor.Load(); m != nil {
		return m
	}
	m := &Monitor{}
	if o.monitor.CompareAndSwap(nil, m) {
		return m
	}
	return o.monitor.Load()
}

// Heap is a handle-indexed table of objects. Object lookup is a single
// atomic load plus an index; allocation appends under a lock with
// copy-on-grow so readers never block.
type Heap struct {
	mu      sync.Mutex
	objects atomic.Pointer[[]*Object]
	n       atomic.Int64

	// AllocPrivate controls the initial transaction-record state of new
	// objects: when true (dynamic escape analysis enabled) objects are born
	// private; otherwise they are born shared with version 1.
	AllocPrivate bool

	// Published counts publishObject invocations (for experiments).
	Published atomic.Int64
	// PublishedObjects counts objects transitioned private→shared.
	PublishedObjects atomic.Int64

	classes  map[string]*Class
	classMu  sync.Mutex
	arrayCls [2]*Class // [0] scalar elements, [1] ref elements

	// manifest, when non-nil, maps allocation sites to the static
	// NAIT/TL classification loaded via ApplyManifest (manifest.go).
	manifest atomic.Pointer[manifestIndex]
	obsMu    sync.Mutex
	allocObs atomic.Pointer[[]AllocObserver]

	// clock is the heap-global commit clock shared by every runtime and
	// barrier set attached to this heap. It lives on the heap — not on a
	// runtime — because non-transactional write barriers must advance it
	// too, and they hold only a heap reference.
	clock CommitClock
}

// Clock returns the heap's commit clock.
func (h *Heap) Clock() *CommitClock { return &h.clock }

// NewHeap creates an empty heap.
func NewHeap() *Heap {
	h := &Heap{classes: make(map[string]*Class)}
	initial := make([]*Object, 0, 1024)
	h.objects.Store(&initial)
	// Objects are born shared at version 1; start the clock level with them
	// so a fresh transaction's snapshot covers every fresh object.
	h.clock.Reset(1)
	h.arrayCls[0] = &Class{Name: "[]word", Kind: KindArray, ElemIsRef: false}
	h.arrayCls[1] = &Class{Name: "[]ref", Kind: KindArray, ElemIsRef: true}
	return h
}

// ClassSpec describes a class to define: field order determines slots after
// the superclass's slots.
type ClassSpec struct {
	Name   string
	Super  *Class
	Fields []Field // Slot values are assigned by DefineClass
	Kind   ClassKind
}

// DefineClass creates and registers a class. Field slot indexes are
// assigned sequentially after inherited slots.
func (h *Heap) DefineClass(spec ClassSpec) (*Class, error) {
	h.classMu.Lock()
	defer h.classMu.Unlock()
	if _, dup := h.classes[spec.Name]; dup {
		return nil, fmt.Errorf("objmodel: class %q already defined", spec.Name)
	}
	c := &Class{
		Name:   spec.Name,
		Super:  spec.Super,
		Kind:   spec.Kind,
		byName: make(map[string]*Field),
	}
	base := 0
	if spec.Super != nil {
		base = spec.Super.NumSlots
		c.Fields = append(c.Fields, spec.Super.Fields...)
		c.RefSlots = append(c.RefSlots, spec.Super.RefSlots...)
	}
	for i, f := range spec.Fields {
		f.Slot = base + i
		c.Fields = append(c.Fields, f)
		if f.IsRef {
			c.RefSlots = append(c.RefSlots, f.Slot)
		}
	}
	c.NumSlots = base + len(spec.Fields)
	for i := range c.Fields {
		c.byName[c.Fields[i].Name] = &c.Fields[i]
	}
	h.classes[spec.Name] = c
	return c, nil
}

// MustDefineClass is DefineClass that panics on error, for test and
// workload setup code.
func (h *Heap) MustDefineClass(spec ClassSpec) *Class {
	c, err := h.DefineClass(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// ClassByName returns a registered class or nil.
func (h *Heap) ClassByName(name string) *Class {
	h.classMu.Lock()
	defer h.classMu.Unlock()
	return h.classes[name]
}

func (h *Heap) initialRecWord(forcePublic bool) txrec.Word {
	if h.AllocPrivate && !forcePublic {
		return txrec.PrivateWord
	}
	return txrec.MakeShared(1)
}

func (h *Heap) install(o *Object) Ref {
	h.mu.Lock()
	cur := *h.objects.Load()
	if len(cur) == cap(cur) {
		grown := make([]*Object, len(cur), 2*cap(cur)+1)
		copy(grown, cur)
		cur = grown
	}
	cur = append(cur, o)
	h.objects.Store(&cur)
	h.n.Store(int64(len(cur)))
	h.mu.Unlock()
	o.ref = Ref(len(cur)) // handle = index+1; 0 stays null
	return o.ref
}

// New allocates an object of class c. With AllocPrivate the object is born
// private (Section 4: "A freshly minted object is private"). With an
// elision manifest loaded, a call site the static analysis classified
// NAIT or thread-local also yields a private-born object.
func (h *Heap) New(c *Class) *Object {
	o := &Object{Class: c, Slots: make([]atomic.Uint64, c.NumSlots)}
	if site := h.manifestSite(); site != nil {
		word := h.initialRecWord(false)
		if site.Class.Elidable() {
			word = txrec.PrivateWord
		}
		o.Rec.Init(word)
		h.install(o)
		h.notifyAlloc(o, site)
		return o
	}
	o.Rec.Init(h.initialRecWord(false))
	h.install(o)
	return o
}

// NewPublic allocates an object that is public from birth regardless of
// AllocPrivate. Statics holders and Thread objects use this.
func (h *Heap) NewPublic(c *Class) *Object {
	o := &Object{Class: c, Slots: make([]atomic.Uint64, c.NumSlots)}
	o.Rec.Init(txrec.MakeShared(1))
	h.install(o)
	return o
}

// NewArray allocates an array of n elements. elemRef selects reference
// element type.
func (h *Heap) NewArray(n int, elemRef bool) *Object {
	cls := h.arrayCls[0]
	if elemRef {
		cls = h.arrayCls[1]
	}
	o := &Object{Class: cls, Slots: make([]atomic.Uint64, n), Len: n}
	if site := h.manifestSite(); site != nil {
		word := h.initialRecWord(false)
		if site.Class.Elidable() {
			word = txrec.PrivateWord
		}
		o.Rec.Init(word)
		h.install(o)
		h.notifyAlloc(o, site)
		return o
	}
	o.Rec.Init(h.initialRecWord(false))
	h.install(o)
	return o
}

// Get resolves a handle to its object. Resolving Null or an out-of-range
// handle panics: the type-checked front end never emits such accesses, so
// reaching one indicates VM corruption (or a deliberate null-dereference,
// which the VM catches and reports as a runtime error).
func (h *Heap) Get(r Ref) *Object {
	if r == Null {
		panic(ErrNullDeref)
	}
	objs := *h.objects.Load()
	return objs[r-1]
}

// TryGet resolves a handle, returning nil for Null.
func (h *Heap) TryGet(r Ref) *Object {
	if r == Null {
		return nil
	}
	return h.Get(r)
}

// Len returns the number of allocated objects.
func (h *Heap) Len() int { return int(h.n.Load()) }

// ErrNullDeref is the panic value raised on null dereference.
var ErrNullDeref = fmt.Errorf("null dereference")

// Publish implements the publishObject algorithm of Figure 11: mark the
// object public, then traverse the graph of private objects reachable from
// it via reference slots, marking each public, using an explicit mark stack.
//
// The traversal terminates for the reasons the paper gives: the graph of
// private objects reachable from the root is finite and fixed (the object
// is still private, so no other thread can extend it), no private objects
// are reachable through public objects, and each private object is marked
// public as soon as it is encountered so cycles are cut.
//
// Publish must only be called by the one thread that can see the (still
// private) object.
func (h *Heap) Publish(o *Object) {
	h.Published.Add(1)
	if !txrec.IsPrivate(o.Rec.Load()) {
		return
	}
	o.Rec.Publish()
	h.PublishedObjects.Add(1)
	stack := []*Object{o}
	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if obj.Class.Kind == KindArray {
			if !obj.Class.ElemIsRef {
				continue
			}
			for i := 0; i < obj.Len; i++ {
				stack = h.publishSlot(obj, i, stack)
			}
			continue
		}
		for _, s := range obj.Class.RefSlots {
			stack = h.publishSlot(obj, s, stack)
		}
	}
}

func (h *Heap) publishSlot(obj *Object, slot int, stack []*Object) []*Object {
	r := Ref(obj.Slots[slot].Load())
	if r == Null {
		return stack
	}
	child := h.Get(r)
	if txrec.IsPrivate(child.Rec.Load()) {
		child.Rec.Publish()
		h.PublishedObjects.Add(1)
		stack = append(stack, child)
	}
	return stack
}

// PublishRef is Publish for a handle; it ignores Null.
func (h *Heap) PublishRef(r Ref) {
	if r == Null {
		return
	}
	h.Publish(h.Get(r))
}
