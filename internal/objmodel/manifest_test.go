package objmodel

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/elide"
	"repro/internal/txrec"
)

func manifestFor(sites ...elide.Site) *elide.Manifest {
	return &elide.Manifest{Version: elide.Version, Tool: "test", Sites: sites}
}

// hereSite builds a manifest site for an allocation `delta` lines below the
// caller of hereSite.
func hereSite(delta int, class string) elide.Site {
	_, file, line, _ := runtime.Caller(1)
	base := filepath.Base(file)
	return elide.Site{
		ID:    elide.SiteID(base, line+delta),
		File:  base,
		Line:  line + delta,
		Class: class,
	}
}

func TestManifestPrivateBirth(t *testing.T) {
	h := NewHeap()
	cls := h.MustDefineClass(ClassSpec{Name: "T", Fields: []Field{{Name: "x"}}})

	h.ApplyManifest(manifestFor(hereSite(1, elide.ClassNAIT)))
	private := h.New(cls)
	plain := h.New(cls) // line not in the manifest: default birth state

	if !private.IsPrivate() {
		t.Fatalf("manifest-classified allocation not born private: rec=%#x", private.Rec.Load())
	}
	if plain.IsPrivate() {
		t.Fatalf("unclassified allocation born private")
	}
	if !h.HasManifest() {
		t.Fatalf("HasManifest false after ApplyManifest")
	}
	if got := h.ManifestElidable(); got != 1 {
		t.Fatalf("ManifestElidable = %d, want 1", got)
	}
	h.ClearManifest()
	if h.HasManifest() {
		t.Fatalf("HasManifest true after ClearManifest")
	}
}

func TestManifestMixedSiteKeepsDefaultBirth(t *testing.T) {
	h := NewHeap()
	cls := h.MustDefineClass(ClassSpec{Name: "T", Fields: []Field{{Name: "x"}}})
	h.ApplyManifest(manifestFor(hereSite(1, elide.ClassMixed)))
	o := h.New(cls)
	if o.IsPrivate() {
		t.Fatalf("mixed site allocation born private")
	}
}

func TestManifestDoesNotOverrideNewPublic(t *testing.T) {
	h := NewHeap()
	h.AllocPrivate = true
	cls := h.MustDefineClass(ClassSpec{Name: "T", Fields: []Field{{Name: "x"}}})
	h.ApplyManifest(manifestFor(hereSite(1, elide.ClassNAITTL)))
	o := h.NewPublic(cls)
	if o.IsPrivate() {
		t.Fatalf("NewPublic yielded a private object under a manifest")
	}
	if w := o.Rec.Load(); w != txrec.MakeShared(1) {
		t.Fatalf("NewPublic rec = %#x, want shared v1", w)
	}
}

func TestManifestArrayAllocation(t *testing.T) {
	h := NewHeap()
	h.ApplyManifest(manifestFor(hereSite(1, elide.ClassTL)))
	arr := h.NewArray(8, false)
	if !arr.IsPrivate() {
		t.Fatalf("manifest-classified array not born private")
	}
}

func TestAllocObserverSeesSiteAndHotHint(t *testing.T) {
	h := NewHeap()
	cls := h.MustDefineClass(ClassSpec{Name: "T", Fields: []Field{{Name: "x"}}})
	site := hereSite(10, elide.ClassMixed)
	site.Hot = true
	site.Granularity = "slot"
	h.ApplyManifest(manifestFor(site))

	var gotObj *Object
	var gotSite *ManifestSite
	h.AddAllocObserver(func(o *Object, s *ManifestSite) {
		gotObj, gotSite = o, s
	})
	o := h.New(cls)
	if gotObj != o {
		t.Fatalf("observer saw object %v, want %v", gotObj, o)
	}
	if gotSite == nil || !gotSite.Hot || gotSite.Granularity != "slot" {
		t.Fatalf("observer site = %+v, want hot slot-granularity", gotSite)
	}
	if gotSite.Class != SiteMixed {
		t.Fatalf("observer site class = %v, want mixed", gotSite.Class)
	}
}

func TestManifestIndexCollisionDegradesToMixed(t *testing.T) {
	a := elide.Site{ID: "x.go:10", File: "x.go", Line: 10, Class: elide.ClassNAIT, Pkg: "p1"}
	b := elide.Site{ID: "x.go:10", File: "x.go", Line: 10, Class: elide.ClassTL, Pkg: "p2"}
	m := manifestFor(a, b)
	idx := m.Index()
	if got := idx["x.go:10"].Class; got != elide.ClassMixed {
		t.Fatalf("nait ∩ tl collision = %q, want mixed", got)
	}

	c := elide.Site{ID: "y.go:3", File: "y.go", Line: 3, Class: elide.ClassNAITTL}
	d := elide.Site{ID: "y.go:3", File: "y.go", Line: 3, Class: elide.ClassNAIT}
	idx = manifestFor(c, d).Index()
	if got := idx["y.go:3"].Class; got != elide.ClassNAIT {
		t.Fatalf("nait+tl ∩ nait collision = %q, want nait", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := manifestFor(
		elide.Site{ID: "a.go:1", File: "a.go", Line: 1, Class: elide.ClassNAIT, Pkg: "p"},
		elide.Site{ID: "b.go:2", File: "b.go", Line: 2, Class: elide.ClassMixed, Hot: true, Granularity: "slot"},
	)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := elide.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sites) != 2 || got.Version != elide.Version {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Sites[0].ID != "a.go:1" || got.Sites[1].Hot != true {
		t.Fatalf("round trip content mismatch: %+v", got.Sites)
	}
}
