// Barrier-manifest support: the heap can load an elision manifest produced
// by `stmvet elide` (internal/elide) and use it to pick the birth state of
// each allocation. Sites the inter-procedural NAIT/TL analyses proved safe
// are born Private (the all-ones record of Figure 10) even when dynamic
// escape analysis is off, so their objects ride the zero-synchronization
// fast paths; hot mixed sites are reported to allocation observers so the
// runtimes can pre-seed slot-granularity records.
//
// Allocation sites are matched by "basename.go:line" of the frame that
// called Heap.New/NewArray, resolved with runtime.Callers (inline-aware).
// NewPublic is deliberately exempt: it exists to force shared birth.

package objmodel

import (
	"path/filepath"
	"runtime"

	"repro/internal/elide"
)

// SiteClass is the runtime-side mirror of the elide.Class* classifications.
type SiteClass uint8

// Site classifications (see internal/elide for the guarantees each makes).
const (
	SiteMixed  SiteClass = iota // no elision
	SiteNAIT                    // never accessed transactionally
	SiteTL                      // never crosses goroutines
	SiteNAITTL                  // both
)

// String returns the elide-package spelling of the class.
func (c SiteClass) String() string {
	switch c {
	case SiteNAIT:
		return elide.ClassNAIT
	case SiteTL:
		return elide.ClassTL
	case SiteNAITTL:
		return elide.ClassNAITTL
	}
	return elide.ClassMixed
}

// Elidable reports whether objects from this site are born private.
func (c SiteClass) Elidable() bool { return c != SiteMixed }

// ManifestSite is one loaded allocation-site entry.
type ManifestSite struct {
	ID          string
	Class       SiteClass
	Hot         bool
	Granularity string
}

// AllocObserver is notified of every allocation that matched a manifest
// site, synchronously on the allocating goroutine, after the object is
// installed in the heap. The soundness oracle uses it to learn the
// object→site mapping and the allocating goroutine; runtimes use it to
// pre-seed granularity for hot sites.
type AllocObserver func(o *Object, site *ManifestSite)

type manifestIndex struct {
	sites map[string]*ManifestSite
	// naitSites/tlSites cache classification counts for introspection.
	elidable int
}

// ApplyManifest installs an elision manifest on the heap. Subsequent
// New/NewArray calls whose call site matches an elidable entry allocate
// private-born objects. Apply before the workload allocates; objects
// allocated earlier keep their birth state.
func (h *Heap) ApplyManifest(m *elide.Manifest) {
	idx := &manifestIndex{sites: make(map[string]*ManifestSite, len(m.Sites))}
	for id, s := range m.Index() {
		ms := &ManifestSite{ID: id, Hot: s.Hot, Granularity: s.Granularity}
		switch s.Class {
		case elide.ClassNAIT:
			ms.Class = SiteNAIT
		case elide.ClassTL:
			ms.Class = SiteTL
		case elide.ClassNAITTL:
			ms.Class = SiteNAITTL
		default:
			ms.Class = SiteMixed
		}
		if ms.Class.Elidable() {
			idx.elidable++
		}
		idx.sites[id] = ms
	}
	h.manifest.Store(idx)
}

// ClearManifest removes any installed manifest.
func (h *Heap) ClearManifest() { h.manifest.Store(nil) }

// HasManifest reports whether an elision manifest is installed. Strong
// barriers consult this (one atomic load) to keep the Figure 10 private
// fast paths and publication active even when DEA is off: a manifest can
// mint private objects, and a private record must never reach the generic
// write barrier's anonymous acquisition.
func (h *Heap) HasManifest() bool { return h.manifest.Load() != nil }

// ManifestElidable returns the number of distinct elidable sites loaded.
func (h *Heap) ManifestElidable() int {
	idx := h.manifest.Load()
	if idx == nil {
		return 0
	}
	return idx.elidable
}

// AddAllocObserver registers an observer for manifest-matched allocations.
// Observers cannot be removed; register before the workload starts.
func (h *Heap) AddAllocObserver(f AllocObserver) {
	h.obsMu.Lock()
	defer h.obsMu.Unlock()
	cur := h.allocObs.Load()
	var next []AllocObserver
	if cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, f)
	h.allocObs.Store(&next)
}

// manifestSite resolves the allocation site of the caller of New/NewArray.
// Must be invoked directly from New/NewArray (the skip count assumes
// exactly one intermediate frame). Returns nil when no manifest is loaded
// or the site is not classified.
func (h *Heap) manifestSite() *ManifestSite {
	idx := h.manifest.Load()
	if idx == nil {
		return nil
	}
	// Skip runtime.Callers, manifestSite, and New/NewArray itself; the
	// recorded PC is the allocation site. CallersFrames expands inlined
	// frames, innermost first, so the source-level call site wins even
	// when the allocating function was inlined into its caller.
	var pcs [1]uintptr
	if runtime.Callers(3, pcs[:]) == 0 {
		return nil
	}
	fr, _ := runtime.CallersFrames(pcs[:]).Next()
	if fr.File == "" {
		return nil
	}
	return idx.sites[elide.SiteID(filepath.Base(fr.File), fr.Line)]
}

// notifyAlloc fires the allocation observers for a manifest-matched
// allocation, after the object is installed.
func (h *Heap) notifyAlloc(o *Object, site *ManifestSite) {
	if obs := h.allocObs.Load(); obs != nil {
		for _, f := range *obs {
			f(o, site)
		}
	}
}
