package objmodel

import (
	"fmt"
	"sync/atomic"

	"repro/internal/txrec"
)

// clockLimit is the ceiling at which the commit clock refuses to advance.
// Version numbers live in the upper 61 bits of a transaction-record word
// (txrec.MaxVersion); committed releases stamp object versions from the
// clock, so the clock must stay clear of that ceiling with margin for the
// +1 version bumps that abort paths and non-transactional barriers (whose
// word-level +9 release also increments the version field by just 1) apply
// on top of stamped versions. 2^61 ticks are unreachable in practice — the guard
// exists so a wraparound would be a loud panic, never a silent validation
// false-negative (a wrapped clock could equal a stale snapshot and let the
// fast path admit an inconsistent read set).
const clockLimit = txrec.MaxVersion - (1 << 20)

// CommitClock is a heap-global version clock for TL2-style commit
// validation. Transactions snapshot it at begin; any committed or
// non-transactional write that changes object state advances it, so
// "clock still equals my snapshot" proves no object version changed since
// begin and read-set validation collapses to one compare.
//
// Advancement is sampled in the GV4 style ("pass on failure"): a committer
// attempts one CAS to increment the clock and, if another committer got
// there first, adopts the new value instead of retrying. Concurrent
// committers may share a write version — both hold disjoint record
// ownership and both validated, so sharing a stamp is safe — and the hot
// cache line takes at most one successful write per tick instead of one
// per committer.
//
// The counter is padded to a cache line on each side so clock traffic
// never false-shares with neighbouring heap fields.
type CommitClock struct {
	_ [64]byte
	v atomic.Uint64
	_ [64]byte
}

// Load returns the current clock value.
func (c *CommitClock) Load() uint64 { return c.v.Load() }

// Tick advances the clock by one in the pass-on-failure style, for writers
// that need the clock moved past its current value but do not need the
// resulting stamp: non-transactional write barriers and orphan reapers. If
// the CAS fails some other writer advanced the clock concurrently, which
// serves the same purpose.
func (c *CommitClock) Tick() {
	cur := c.v.Load()
	if cur >= clockLimit {
		panic(fmt.Sprintf("objmodel: commit clock overflow (value %#x)", cur))
	}
	c.v.CompareAndSwap(cur, cur+1)
}

// Advance obtains a write version for a committing transaction: it attempts
// to increment the clock and returns the post-increment value, or — if a
// concurrent committer won the race — the raced-ahead value it observes
// instead (GV4). advanced reports whether this caller's CAS performed the
// increment, for stats.
func (c *CommitClock) Advance() (wv uint64, advanced bool) {
	cur := c.v.Load()
	if cur >= clockLimit {
		panic(fmt.Sprintf("objmodel: commit clock overflow (value %#x)", cur))
	}
	if c.v.CompareAndSwap(cur, cur+1) {
		return cur + 1, true
	}
	return c.v.Load(), false
}

// Raise lifts the clock to at least v. Readers use it when they observe an
// object version above their snapshot — abort releases and anonymous
// releases each bump an object's version by 1 without ticking the clock
// (the anonymous release's word-level +9 is a +1 on the version field), so
// any object whose version merely leads the clock by one qualifies — so
// that the extended snapshot taken right after covers the observed version.
func (c *CommitClock) Raise(v uint64) {
	if v >= clockLimit {
		panic(fmt.Sprintf("objmodel: commit clock overflow (raise to %#x)", v))
	}
	for {
		cur := c.v.Load()
		if cur >= v || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Reset forces the clock to v. Test hook only: callers must guarantee no
// transaction is in flight, since snapshots taken against the old value
// become meaningless.
func (c *CommitClock) Reset(v uint64) { c.v.Store(v) }
