package vetstm

import (
	"go/ast"
	"go/types"
	"strings"
)

// The STM surface the passes recognize, by package-path suffix. Matching
// on suffixes keeps the suite working if the module path changes.
const (
	pkgSTM      = "internal/stm"
	pkgLazySTM  = "internal/lazystm"
	pkgSTMAPI   = "internal/stmapi"
	pkgCore     = "internal/core"
	pkgObjModel = "internal/objmodel"
)

var stmPkgTails = []string{pkgSTM, pkgLazySTM, pkgSTMAPI, pkgCore}

func pathHasTail(path, tail string) bool {
	return path == tail || strings.HasSuffix(path, "/"+tail)
}

// namedIn reports whether t (after stripping one pointer and aliases) is
// the named type `name` declared in a package whose path ends in tail.
func namedIn(t types.Type, tail, name string) bool {
	t = types.Unalias(t)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathHasTail(obj.Pkg().Path(), tail)
}

// isTxnType reports whether t is a transaction handle: *stm.Txn,
// *lazystm.Txn, stmapi.Txn, or core.Tx.
func isTxnType(t types.Type) bool {
	return namedIn(t, pkgSTM, "Txn") ||
		namedIn(t, pkgLazySTM, "Txn") ||
		namedIn(t, pkgSTMAPI, "Txn") ||
		namedIn(t, pkgCore, "Tx")
}

// isManagedObject reports whether t is a managed-heap object handle
// (*objmodel.Object; core.Obj is an alias of it).
func isManagedObject(t types.Type) bool {
	return namedIn(t, pkgObjModel, "Object")
}

// atomicEntryNames are the runtime methods that start an atomic block.
var atomicEntryNames = map[string]bool{
	"Atomic":            true,
	"AtomicCtx":         true,
	"AtomicIrrevocable": true,
	"AtomicOpen":        true,
}

// atomicCall reports whether call invokes an atomic entry point of one of
// the STM packages and returns the method name.
func atomicCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicEntryNames[se.Sel.Name] {
		return "", false
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	for _, tail := range stmPkgTails {
		if pathHasTail(fn.Pkg().Path(), tail) {
			return se.Sel.Name, true
		}
	}
	return "", false
}

// txnMethodCall returns the transaction variable and method name when
// call is `tx.Method(...)` on a transaction-typed variable tx.
func txnMethodCall(info *types.Info, call *ast.CallExpr) (*types.Var, string, bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	id, ok := unparen(se.X).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !isTxnType(v.Type()) {
		return nil, "", false
	}
	return v, se.Sel.Name, true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// identVar resolves e to the variable it names, if it is a plain
// identifier.
func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// bodyFunc is a function that executes transactionally: a func literal or
// declaration with a transaction-typed parameter.
type bodyFunc struct {
	node        ast.Node // *ast.FuncDecl or *ast.FuncLit
	body        *ast.BlockStmt
	ftype       *ast.FuncType
	txn         *types.Var // the transaction parameter
	irrevocable bool       // literal passed directly to AtomicIrrevocable
}

// txnParam returns the first transaction-typed parameter of ft, or nil.
func txnParam(info *types.Info, ft *ast.FuncType) *types.Var {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isTxnType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

// looksLikeBody distinguishes an atomic body (or a transactional helper)
// from a runtime callback that merely receives a transaction. Bodies and
// helpers return an error (the abort channel) or hand the transaction on
// (a txn-typed result); hooks like lazystm.Hooks.OnAfterCommitPoint take
// a *Txn and return nothing — they run exactly once at a fixed protocol
// point and may legally perform effects.
func looksLikeBody(info *types.Info, ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, f := range ft.Results.List {
		t := info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if isTxnType(t) {
			return true
		}
		if named, ok := types.Unalias(t).(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// forEachBody invokes fn for every transactional body function in the
// package: func literals passed to an Atomic entry point, plus literals
// and declarations that take a transaction parameter and look like a body
// (see looksLikeBody). Bodies passed directly to AtomicIrrevocable are
// marked irrevocable (side effects are legal there — the body runs at
// most once past the irrevocable switch).
func forEachBody(pass *Pass, fn func(bodyFunc)) {
	// First pass: literals that are arguments of Atomic-family calls.
	atomicLits := make(map[*ast.FuncLit]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := atomicCall(pass.Info, call); ok {
				for _, arg := range call.Args {
					if lit, ok := unparen(arg).(*ast.FuncLit); ok {
						atomicLits[lit] = name
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				if v := txnParam(pass.Info, n.Type); v != nil && looksLikeBody(pass.Info, n.Type) {
					fn(bodyFunc{node: n, body: n.Body, ftype: n.Type, txn: v})
				}
			case *ast.FuncLit:
				entry, isAtomicArg := atomicLits[n]
				if !isAtomicArg && !looksLikeBody(pass.Info, n.Type) {
					return true
				}
				if v := txnParam(pass.Info, n.Type); v != nil {
					fn(bodyFunc{node: n, body: n.Body, ftype: n.Type, txn: v, irrevocable: entry == "AtomicIrrevocable"})
				}
			}
			return true
		})
	}
}

// irrevocableSwitchPos returns the position after which the body is
// irrevocable: the end of the first `tx.BecomeIrrevocable()` call on the
// body's transaction parameter, or 0 if there is none. Code past that
// point never re-executes, so side effects there are legal.
func irrevocableSwitchPos(pass *Pass, b bodyFunc) (pos int) {
	pos = -1
	ast.Inspect(b.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, name, ok := txnMethodCall(pass.Info, call); ok && name == "BecomeIrrevocable" && v == b.txn {
			if pos < 0 || int(call.End()) < pos {
				pos = int(call.End())
			}
		}
		return true
	})
	return pos
}
