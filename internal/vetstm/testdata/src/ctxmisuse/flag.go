// Flagged fixtures: discarded AtomicCtx errors and never-cancelled
// contexts.
package ctxmisuse

import (
	"context"

	"repro/internal/stm"
	"repro/internal/stmapi"
)

var rt *stm.Runtime
var api stmapi.Runtime

func body(tx *stm.Txn) error { return nil }

func discarded(ctx context.Context) {
	rt.AtomicCtx(ctx, nil, body) // want `AtomicCtx result discarded`
}

func background() error {
	return rt.AtomicCtx(context.Background(), nil, body) // want `AtomicCtx with context.Background\(\)`
}

func todoAndDiscarded() {
	api.AtomicCtx(context.TODO(), func(tx stmapi.Txn) error { return nil }) // want `AtomicCtx result discarded` `AtomicCtx with context.TODO\(\)`
}
