// Clean fixtures: handled errors and cancellable contexts.
package ctxmisuse

import (
	"context"
	"time"
)

func handled(ctx context.Context) error {
	if err := rt.AtomicCtx(ctx, nil, body); err != nil {
		return err
	}
	return nil
}

func derived() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return rt.AtomicCtx(ctx, nil, body)
}

func explicitIgnore(ctx context.Context) {
	// An explicit blank assignment is a visible decision, not an accident.
	_ = rt.AtomicCtx(ctx, nil, body)
}
