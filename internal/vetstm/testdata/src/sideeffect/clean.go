// Clean fixtures: effects after commit, effects under irrevocability,
// thread-confined RNG state, and an explicit suppression.
package sideeffect

import (
	"fmt"
	"math/rand"

	"repro/internal/stm"
)

func afterCommit() {
	var v uint64
	err := rt.Atomic(nil, func(tx *stm.Txn) error {
		v = tx.Read(obj, 0)
		tx.Write(obj, 0, v+1)
		return nil
	})
	fmt.Println(v, err) // after the block: runs exactly once
}

func irrevocableBody() {
	_ = rt.AtomicIrrevocable(nil, func(tx *stm.Txn) error {
		fmt.Println("runs at most once past the switch")
		return nil
	})
}

func becomeIrrevocable() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		v := tx.Read(obj, 0)
		tx.BecomeIrrevocable()
		fmt.Printf("snapshot %d\n", v) // after the switch: no re-execution
		return nil
	})
}

func localRNG(rng *rand.Rand) {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		// Methods on a caller-owned *rand.Rand are thread-confined state,
		// not a visible effect (nondeterministic across attempts, but not
		// an isolation violation).
		tx.Write(obj, 0, rng.Uint64())
		return nil
	})
}

func suppressed() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		fmt.Println("deliberate") //stmvet:ignore sideeffect -- demo output, abort rate ~0
		return nil
	})
}
