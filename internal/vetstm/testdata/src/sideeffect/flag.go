// Flagged fixtures: effects that repeat on every re-execution of the
// atomic body.
package sideeffect

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/objmodel"
	"repro/internal/stm"
)

var rt *stm.Runtime
var obj *objmodel.Object
var ch = make(chan uint64, 1)

func work() {}

func flagged() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		fmt.Println("attempt")                    // want `fmt.Println inside an atomic body`
		log.Printf("balance=%d", tx.Read(obj, 0)) // want `log.Printf inside an atomic body`
		time.Sleep(time.Millisecond)              // want `time.Sleep inside an atomic body`
		_ = rand.Intn(4)                          // want `rand.Intn inside an atomic body`
		_ = time.Now()                            // want `time.Now inside an atomic body`
		println("debug")                          // want `println inside an atomic body`
		ch <- tx.Read(obj, 0)                     // want `channel send inside an atomic body`
		_ = <-ch                                  // want `channel receive inside an atomic body`
		go work()                                 // want `goroutine launched inside an atomic body`
		return nil
	})
}
