// Flagged fixtures: every way a transaction handle can escape its body.
package txnescape

import (
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/stmapi"
)

var rt *stm.Runtime
var api stmapi.Runtime
var obj *objmodel.Object

var leaked *stm.Txn
var leakedAPI stmapi.Txn
var registry = map[string]*stm.Txn{}
var txnCh = make(chan *stm.Txn, 1)

func storeGlobal() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		leaked = tx // want `stored to package-level leaked`
		return nil
	})
}

func storeGlobalMap() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		registry["current"] = tx // want `stored to package-level registry`
		return nil
	})
}

func storeGlobalAPI() {
	_ = api.Atomic(func(tx stmapi.Txn) error {
		leakedAPI = tx // want `stored to package-level leakedAPI`
		return nil
	})
}

func sendOnChannel() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		txnCh <- tx // want `sent on a channel`
		return nil
	})
}

func goroutineCapture() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		go func() { // want `captured by a goroutine`
			_ = tx.Read(obj, 0)
		}()
		return nil
	})
}

func goroutineArg(f func(*stm.Txn)) {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		go f(tx) // want `captured by a goroutine`
		return nil
	})
}

// returnHandle runs transactionally (it takes the handle) and leaks it to
// its caller, who may hold it past commit.
func returnHandle(tx *stm.Txn) *stm.Txn {
	return tx // want `returned from the body`
}
