// Clean fixtures: values computed through the transaction may flow
// anywhere; only the handle itself is confined.
package txnescape

import (
	"fmt"

	"repro/internal/stm"
)

var total uint64
var valCh = make(chan uint64, 1)

func cleanUses() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		v := tx.Read(obj, 0)
		total = v      // a read value, not the handle
		valCh <- v + 1 // likewise (sideeffect's problem, not txnescape's)
		local := tx    // local alias stays inside the body
		local.Write(obj, 0, v+1)
		return nil
	})
	go func() { // goroutine outside any body, no handle in sight
		<-valCh
	}()
}

func cleanError() error {
	return rt.Atomic(nil, func(tx *stm.Txn) error {
		if tx.Read(obj, 0) == 0 {
			return fmt.Errorf("empty at id %d", tx.ID())
		}
		return nil
	})
}
