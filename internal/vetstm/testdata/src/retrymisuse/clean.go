// Clean fixtures: the canonical guard shape, and a loop that re-reads.
package retrymisuse

import (
	"repro/internal/stm"
)

func guard() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		if tx.Read(obj, 0) == 0 {
			tx.Retry()
		}
		tx.Write(obj, 0, 0)
		return nil
	})
}

func loopWithRead(objs []*stm.Txn) {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		for slot := 0; slot < 4; slot++ {
			if tx.Read(obj, slot) == 0 {
				tx.Retry() // the loop re-reads: a change is observable
			}
		}
		return nil
	})
}
