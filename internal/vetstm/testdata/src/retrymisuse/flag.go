// Flagged fixtures: retries that can never be woken or that sit in dead
// loops.
package retrymisuse

import (
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/stmapi"
)

var rt *stm.Runtime
var api stmapi.Runtime
var obj *objmodel.Object

func emptyReadSet() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		tx.Retry() // want `Retry with an empty read set`
		return nil
	})
}

func emptyReadSetAPI() {
	_ = api.Atomic(func(tx stmapi.Txn) error {
		tx.Write(obj, 0, 1) // writes do not populate the read set
		tx.Retry()          // want `Retry with an empty read set`
		return nil
	})
}

func deadLoop() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		v := tx.Read(obj, 0)
		for v == 0 {
			tx.Retry() // want `Retry inside a loop with no transactional read`
		}
		return nil
	})
}
