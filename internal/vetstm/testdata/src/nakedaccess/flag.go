// Flagged fixtures: the same object is opened transactionally in one
// function and accessed nakedly in another.
package nakedaccess

import (
	"repro/internal/objmodel"
	"repro/internal/stm"
)

var rt *stm.Runtime
var shared *objmodel.Object

func transactional() {
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		tx.Write(shared, 0, tx.Read(shared, 0)+1)
		return nil
	})
}

func nakedRead() uint64 {
	return shared.LoadSlot(0) // want `naked LoadSlot on shared`
}

func nakedWrite() {
	shared.StoreSlot(0, 7) // want `naked StoreSlot on shared`
}

func rawSlots() uint64 {
	return shared.Slots[0].Load() // want `raw Slots access on shared`
}
