// Clean fixtures: objects never opened transactionally may use the direct
// accessors, and barriered System accessors are always legal.
package nakedaccess

import (
	"repro/internal/core"
	"repro/internal/objmodel"
)

var sys *core.System
var private *objmodel.Object // never touched by any transaction
var audited *objmodel.Object

func privateScratch() uint64 {
	private.StoreSlot(0, 41)
	return private.LoadSlot(0) + 1
}

func barriered() uint64 {
	_ = sys.Atomic(func(tx core.Tx) error {
		tx.Write(audited, 0, 1)
		return nil
	})
	sys.Write(audited, 0, 2) // the Figure 9 barrier path: safe by design
	return sys.Read(audited, 0)
}
