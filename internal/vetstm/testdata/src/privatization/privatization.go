// Fixtures for the privatization pass: the §3.3 publication and
// privatization hazards.
package privatization

import (
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/strong"
)

// Unsafe publication: storing a managed reference through the raw,
// unbarriered StoreSlot skips the Figure 11 publication walk.
func unsafePublication(container, item *objmodel.Object) {
	container.StoreSlot(0, uint64(item.Ref())) // want `unbarriered publication`
	r := item.Ref()
	container.StoreSlot(1, uint64(r)) // want `unbarriered publication`
	container.StoreSlot(2, 42)        // plain value: fine
}

func safePublication(b *strong.Barriers, rt *stm.Runtime, container, item *objmodel.Object) {
	b.WriteRef(container, 0, item.Ref()) // barriered: runs the publication walk
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		tx.WriteRef(container, 0, item.Ref()) // transactional: fine
		return nil
	})
}

// Privatize-then-raw-read: the Figure 1 idiom. The handle escapes its
// atomic block, and the raw read afterwards can see a committed
// transaction's write-back still in flight.
func privatizeThenRawRead(h *objmodel.Heap, rt *stm.Runtime, list *objmodel.Object) uint64 {
	var ref objmodel.Ref
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		ref = tx.ReadRef(list, 0)
		tx.WriteRef(list, 0, 0) // unlink: the item is private now
		return nil
	})
	o := h.Get(ref)
	return o.LoadSlot(0) // want `privatized by the atomic block`
}

// The same shape through the ordering read barrier is the sanctioned fix.
func privatizeThenOrderedRead(h *objmodel.Heap, b *strong.Barriers, rt *stm.Runtime, list *objmodel.Object) uint64 {
	var ref objmodel.Ref
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		ref = tx.ReadRef(list, 0)
		tx.WriteRef(list, 0, 0)
		return nil
	})
	o := h.Get(ref)
	return b.ReadOrdering(o, 0) // ordering barrier: fine
}

// A raw access with no privatizing transaction in sight is not this
// pass's business (nakedaccess owns the general case).
func rawReadUnrelated(o *objmodel.Object) uint64 {
	return o.LoadSlot(0)
}

// Suppression works like every other pass.
func suppressed(container, item *objmodel.Object) {
	container.StoreSlot(0, uint64(item.Ref())) //stmvet:ignore privatization -- init before publish
}
