package vetstm

import (
	"go/ast"
	"go/token"
)

// RetryMisuse flags Retry calls that can never be woken or that sit in a
// dead loop. Txn.Retry aborts the transaction and blocks until something
// in its *read set* changes, then re-executes the whole body from the
// top. Two misuses follow directly from that contract:
//
//   - Retry before any transactional read: the read set is empty, so there
//     is nothing whose change can wake the transaction — it blocks forever
//     (or spins, depending on the runtime's fallback).
//   - Retry inside a loop with no transactional read in the loop: Retry
//     never returns (re-execution restarts the body), so the loop can
//     never observe a change — the loop is dead scaffolding that usually
//     indicates the author expected Retry to return and re-test.
var RetryMisuse = &Analyzer{
	Name: "retrymisuse",
	Doc:  "report Retry calls with an empty read set or in a read-free loop",
	Run:  runRetryMisuse,
}

func runRetryMisuse(pass *Pass) {
	forEachBody(pass, func(b bodyFunc) {
		tx := b.txn
		var readPos []token.Pos // transactional reads on this body's handle
		var retries []*ast.CallExpr
		var loops []ast.Node // every for/range statement in the body
		ast.Inspect(b.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if v, name, ok := txnMethodCall(pass.Info, n); ok && v == tx {
					switch name {
					case "Read", "ReadRef":
						readPos = append(readPos, n.Pos())
					case "Retry":
						retries = append(retries, n)
					}
				}
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
			}
			return true
		})
		if len(retries) == 0 {
			return
		}
		readBefore := func(pos token.Pos) bool {
			for _, p := range readPos {
				if p < pos {
					return true
				}
			}
			return false
		}
		readWithin := func(n ast.Node) bool {
			for _, p := range readPos {
				if n.Pos() <= p && p < n.End() {
					return true
				}
			}
			return false
		}
		// Innermost enclosing loop of pos, by interval containment.
		enclosingLoop := func(pos token.Pos) ast.Node {
			var best ast.Node
			for _, l := range loops {
				if l.Pos() <= pos && pos < l.End() {
					if best == nil || l.Pos() > best.Pos() {
						best = l
					}
				}
			}
			return best
		}
		for _, call := range retries {
			if !readBefore(call.Pos()) {
				pass.Reportf(call.Pos(),
					"Retry with an empty read set: no transactional read precedes it, so nothing can ever wake this transaction")
				continue
			}
			if loop := enclosingLoop(call.Pos()); loop != nil && !readWithin(loop) {
				pass.Reportf(call.Pos(),
					"Retry inside a loop with no transactional read in the loop: Retry never returns (it re-executes the whole body), so the loop cannot observe a change — hoist the guard to the body top")
			}
		}
	})
}
