package vetstm

import (
	"go/ast"
	"go/types"
)

// NakedAccess flags direct (unbarriered) slot accesses to a managed
// object that the same package elsewhere accesses transactionally. A
// location touched through Txn.Read/Txn.Write is protected by the STM's
// ownership records; reaching the same location via Object.LoadSlot /
// Object.StoreSlot (or the raw Slots array) bypasses every barrier and is
// precisely the strong-atomicity violation the paper's Figure 9 barriers
// exist to stop — a naked read can observe a doomed transaction's
// uncommitted write (eager) or a torn write-back (lazy), and a naked
// write can be swallowed by a transaction's rollback. Non-transactional
// code should go through the barriered accessors (core.System.Read/Write)
// instead.
var NakedAccess = &Analyzer{
	Name: "nakedaccess",
	Doc:  "report unbarriered slot accesses to transactionally-shared objects",
	Run:  runNakedAccess,
}

// txnAccessorNames are Txn methods whose first argument opens a managed
// object transactionally.
var txnAccessorNames = map[string]bool{
	"Read": true, "Write": true, "ReadRef": true, "WriteRef": true,
}

// nakedMethodNames are objmodel.Object methods that touch slots with no
// barrier.
var nakedMethodNames = map[string]bool{
	"LoadSlot": true, "StoreSlot": true,
}

func runNakedAccess(pass *Pass) {
	// Pass 1: every variable that is opened transactionally somewhere in
	// the package — the first argument of tx.Read/Write/ReadRef/WriteRef.
	shared := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if _, name, ok := txnMethodCall(pass.Info, call); ok && txnAccessorNames[name] {
				if v := identVar(pass.Info, call.Args[0]); v != nil && isManagedObject(v.Type()) {
					shared[v] = true
				}
			}
			return true
		})
	}
	if len(shared) == 0 {
		return
	}
	// Pass 2: naked accesses to those same variables.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				se, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !nakedMethodNames[se.Sel.Name] {
					return true
				}
				v := identVar(pass.Info, se.X)
				if v == nil || !shared[v] {
					return true
				}
				if fn, ok := pass.Info.Uses[se.Sel].(*types.Func); !ok || fn.Pkg() == nil || !pathHasTail(fn.Pkg().Path(), pkgObjModel) {
					return true
				}
				pass.Reportf(n.Pos(),
					"naked %s on %s, which is accessed transactionally elsewhere in this package: the unbarriered access can see or tear uncommitted transactional state — use the transaction (tx.Read/tx.Write) or the barriered System accessors",
					se.Sel.Name, v.Name())
			case *ast.SelectorExpr:
				// v.Slots[i]... — reaching into the raw slot array.
				if n.Sel.Name != "Slots" {
					return true
				}
				v := identVar(pass.Info, n.X)
				if v == nil || !shared[v] || !isManagedObject(v.Type()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"raw Slots access on %s, which is accessed transactionally elsewhere in this package: bypassing the barriers breaks strong atomicity",
					v.Name())
			}
			return true
		})
	}
}
