// Package vetstm is a suite of static-analysis passes that enforce the
// paper's isolation and ordering discipline on Go code embedding the STM
// libraries (internal/stm, internal/lazystm, internal/stmapi,
// internal/core) directly.
//
// In the TJ pipeline, isolation is enforced mechanically: the compiler
// inserts the Figure 9 barriers on every non-transactional access and NAIT
// (internal/analysis) proves where they can be dropped. Go client code has
// no compiler on its side — a naked slot access, a transaction handle that
// escapes its atomic block, or a side effect inside a re-executable body
// is exactly a Figure 1–6 anomaly waiting to happen at runtime. These
// passes are the correctness-tooling analogue of NAIT for the library
// embedding: they catch the misuse statically, before it becomes a
// runtime anomaly.
//
// The suite is framework-compatible in spirit with
// golang.org/x/tools/go/analysis — each pass is an *Analyzer with a
// Run(*Pass) function reporting position-anchored diagnostics — but is
// self-contained on the standard library (go/ast, go/types) so the repo
// carries no external dependency. cmd/stmvet drives the suite both
// standalone (stmvet ./...) and as a `go vet -vettool` backend.
//
// Diagnostics can be suppressed with a trailing or preceding comment:
//
//	o.StoreSlot(0, v) //stmvet:ignore nakedaccess -- init before publish
//	//stmvet:ignore sideeffect,txnescape
//	body()
//
// A bare `//stmvet:ignore` suppresses every pass on that line.
package vetstm

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass: a name (used in
// diagnostics, pass selection, and //stmvet:ignore comments), a short
// doc string, and the function that runs it over one package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pass:     p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pass     string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Pass)
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		TxnEscape,
		NakedAccess,
		SideEffect,
		RetryMisuse,
		CtxMisuse,
		Privatization,
	}
}

// ByName resolves a comma-separated pass list ("txnescape,sideeffect")
// against the suite. An empty spec selects every pass.
func ByName(spec string) ([]*Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("vetstm: unknown pass %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Package is the type-checked unit the runner consumes. Loaders
// (vetload, the unitchecker driver, the test harness) produce it.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Run applies the analyzers to one package and returns the surviving
// diagnostics sorted by position, with //stmvet:ignore suppressions
// already applied.
//
// Test files are type-checked (the package would not resolve without
// them when go vet hands us a test unit) but not analyzed: the STM's own
// test suites deliberately perform naked probes and in-body channel
// handoffs to *verify* barrier and retry behaviour, which is exactly the
// discipline production embeddings must not need. Use RunTests to opt
// test files in (stmvet -include-tests).
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunTests(pkg, analyzers, false)
}

// RunTests is Run with control over the _test.go exemption: with
// includeTests set, test files are analyzed like any other source.
func RunTests(pkg *Package, analyzers []*Analyzer, includeTests bool) []Diagnostic {
	files := pkg.Files
	var kept []*ast.File
	for _, f := range files {
		if includeTests || !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			kept = append(kept, f)
		}
	}
	if len(kept) < len(files) {
		shallow := *pkg
		shallow.Files = kept
		pkg = &shallow
	}
	sup := buildSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report: func(d Diagnostic) {
				if !sup.suppresses(d) {
					out = append(out, d)
				}
			},
		}
		a.Run(pass)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}

// suppressions maps file → line → set of suppressed pass names ("" means
// all passes). A comment suppresses its own line; a comment that is the
// only thing on its line also suppresses the next line.
type suppressions map[string]map[int]map[string]bool

const ignoreDirective = "stmvet:ignore"

func buildSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	add := func(file string, line int, passes []string) {
		byLine := sup[file]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			sup[file] = byLine
		}
		set := byLine[line]
		if set == nil {
			set = make(map[string]bool)
			byLine[line] = set
		}
		if len(passes) == 0 {
			set[""] = true
		}
		for _, p := range passes {
			set[p] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. stmvet:ignoreXXX — not the directive
				}
				// Everything after `--` is rationale, not pass names.
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				var passes []string
				for _, p := range strings.Split(rest, ",") {
					if p = strings.TrimSpace(p); p != "" {
						passes = append(passes, p)
					}
				}
				// A directive covers its own line (trailing-comment
				// form) and the next (standalone-comment form).
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, passes)
				add(pos.Filename, pos.Line+1, passes)
			}
		}
	}
	return sup
}

func (s suppressions) suppresses(d Diagnostic) bool {
	byLine := s[d.Position.Filename]
	if byLine == nil {
		return false
	}
	set := byLine[d.Position.Line]
	if set == nil {
		return false
	}
	return set[""] || set[d.Pass]
}
