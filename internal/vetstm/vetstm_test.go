package vetstm_test

import (
	"strings"
	"testing"

	"repro/internal/vetstm"
	"repro/internal/vetstm/vettest"
)

// Each pass is exercised over a fixture package containing at least one
// flagged and one clean file, analysistest-style: diagnostics must match
// the // want comments exactly (none missing, none extra).

func TestTxnEscape(t *testing.T)   { vettest.Run(t, vetstm.TxnEscape, "testdata/src/txnescape") }
func TestNakedAccess(t *testing.T) { vettest.Run(t, vetstm.NakedAccess, "testdata/src/nakedaccess") }
func TestSideEffect(t *testing.T)  { vettest.Run(t, vetstm.SideEffect, "testdata/src/sideeffect") }
func TestRetryMisuse(t *testing.T) { vettest.Run(t, vetstm.RetryMisuse, "testdata/src/retrymisuse") }
func TestCtxMisuse(t *testing.T)   { vettest.Run(t, vetstm.CtxMisuse, "testdata/src/ctxmisuse") }
func TestPrivatization(t *testing.T) {
	vettest.Run(t, vetstm.Privatization, "testdata/src/privatization")
}

func TestByName(t *testing.T) {
	all, err := vetstm.ByName("")
	if err != nil || len(all) != len(vetstm.All()) {
		t.Fatalf("empty spec: got %d analyzers, err %v", len(all), err)
	}
	two, err := vetstm.ByName("sideeffect, txnescape")
	if err != nil || len(two) != 2 || two[0].Name != "sideeffect" || two[1].Name != "txnescape" {
		t.Fatalf("two-pass spec: got %v, err %v", two, err)
	}
	if _, err := vetstm.ByName("nosuchpass"); err == nil || !strings.Contains(err.Error(), "nosuchpass") {
		t.Fatalf("unknown pass: err %v", err)
	}
	names := make(map[string]bool)
	for _, a := range vetstm.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		names[a.Name] = true
	}
}
