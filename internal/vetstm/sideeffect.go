package vetstm

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SideEffect flags irrevocable side effects inside atomic bodies that may
// re-execute. An atomic body runs again after every abort — under
// contention, dozens of times — and the STM can only roll back
// transactional state. I/O, logging, channel operations, goroutine
// launches, and global-RNG draws performed in the body are repeated on
// every attempt (the Section 5 argument for irrevocability support).
// Bodies passed to AtomicIrrevocable, and code after a
// tx.BecomeIrrevocable() switch, are exempt: past the switch the body
// never re-executes, which is exactly what those APIs are for.
var SideEffect = &Analyzer{
	Name: "sideeffect",
	Doc:  "report re-executable side effects inside atomic bodies",
	Run:  runSideEffect,
}

// effectFuncs maps package-path suffix → function names whose call is a
// visible side effect. An empty set means every function in the package.
var effectFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Scan": true, "Scanf": true, "Scanln": true,
	},
	"log":          {}, // all of log: every call writes
	"math/rand":    {}, // package-level funcs draw from the shared global RNG
	"math/rand/v2": {},
	"os": {
		"Create": true, "OpenFile": true, "Remove": true, "RemoveAll": true,
		"Mkdir": true, "MkdirAll": true, "WriteFile": true, "Rename": true,
		"Symlink": true, "Link": true, "Truncate": true, "Chdir": true,
		"Setenv": true, "Unsetenv": true, "Exit": true, "StartProcess": true,
	},
	"time": {
		"Sleep": true, "Now": true, "Since": true, "Until": true,
		"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
		"AfterFunc": true,
	},
}

func runSideEffect(pass *Pass) {
	forEachBody(pass, func(b bodyFunc) {
		if b.irrevocable {
			return
		}
		switchPos := irrevocableSwitchPos(pass, b)
		exempt := func(n ast.Node) bool {
			return switchPos >= 0 && int(n.Pos()) > switchPos
		}
		ast.Inspect(b.body, func(n ast.Node) bool {
			// Side effects inside a nested transactional body are that
			// body's problem (it is visited separately, with its own
			// irrevocability context).
			if fl, ok := n.(*ast.FuncLit); ok && n != b.node && txnParam(pass.Info, fl.Type) != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if exempt(n) {
					return true
				}
				if pkg, name, ok := calleePkgFunc(pass.Info, n); ok {
					if names, found := effectFuncs[pkg]; found && (len(names) == 0 || names[name]) {
						pass.Reportf(n.Pos(),
							"%s.%s inside an atomic body: the body re-executes after every abort, repeating the effect — move it after commit, or run under AtomicIrrevocable/BecomeIrrevocable",
							pkg, name)
					}
				} else if id, ok := unparen(n.Fun).(*ast.Ident); ok {
					if bi, isB := pass.Info.Uses[id].(*types.Builtin); isB && (bi.Name() == "print" || bi.Name() == "println" || bi.Name() == "close") {
						pass.Reportf(n.Pos(),
							"%s inside an atomic body: the body re-executes after every abort, repeating the effect — move it after commit, or run under AtomicIrrevocable/BecomeIrrevocable",
							bi.Name())
					}
				}
			case *ast.SendStmt:
				if !exempt(n) {
					pass.Reportf(n.Pos(),
						"channel send inside an atomic body: a send cannot be rolled back and repeats on every re-execution — communicate after commit")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !exempt(n) {
					pass.Reportf(n.Pos(),
						"channel receive inside an atomic body: the received value is consumed even if the attempt aborts, and the receive repeats on re-execution")
				}
			case *ast.GoStmt:
				if !exempt(n) {
					pass.Reportf(n.Pos(),
						"goroutine launched inside an atomic body: one goroutine per attempt is launched, and none can be taken back on abort")
				}
			}
			return true
		})
	})
}

// calleePkgFunc resolves a call to (package-path-suffix, function name)
// when the callee is a package-level function of a known package.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	se, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false // methods (e.g. a local *rand.Rand) are thread-confined state
	}
	path := fn.Pkg().Path()
	for pkg := range effectFuncs {
		if path == pkg {
			return pkg, fn.Name(), true
		}
	}
	return "", "", false
}
