package vetstm

import (
	"go/ast"
	"go/types"
)

// TxnEscape flags transaction handles that escape their atomic body: a
// *stm.Txn / *lazystm.Txn / stmapi.Txn / core.Tx stored to a package-level
// variable, sent on a channel, captured by a goroutine spawned inside the
// body, or returned out of the body function. A transaction descriptor is
// only valid while its atomic block runs — the runtime recycles it through
// a pool at commit — so any use after the body returns is undefined
// behaviour (and a re-execution can hand the alias a different attempt's
// descriptor). This is the library-embedding analogue of the paper's rule
// that transactional state must not be observable outside the transaction.
var TxnEscape = &Analyzer{
	Name: "txnescape",
	Doc:  "report transaction handles escaping their atomic body",
	Run:  runTxnEscape,
}

func runTxnEscape(pass *Pass) {
	forEachBody(pass, func(b bodyFunc) {
		tx := b.txn
		ast.Inspect(b.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if !carriesTxnHandle(pass.Info, rhs, tx) {
						continue
					}
					if v := assignedGlobal(pass.Info, lhs); v != nil {
						pass.Reportf(n.Pos(),
							"transaction handle %s stored to package-level %s: the descriptor is recycled when the atomic block ends, so any later use is undefined",
							tx.Name(), v.Name())
					}
				}
			case *ast.SendStmt:
				if carriesTxnHandle(pass.Info, n.Value, tx) {
					pass.Reportf(n.Pos(),
						"transaction handle %s sent on a channel: the receiver may use it after the atomic block ends (or after an abort), which is undefined",
						tx.Name())
				}
			case *ast.GoStmt:
				// Any use of tx from a spawned goroutine is unsafe:
				// transactions are single-threaded and the goroutine can
				// outlive the atomic block (or race its re-execution).
				captured := false
				if fl, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok && mentionsTxn(pass.Info, fl, tx) {
					captured = true
				}
				for _, arg := range n.Call.Args {
					if carriesTxnHandle(pass.Info, arg, tx) {
						captured = true
					}
				}
				if captured {
					pass.Reportf(n.Pos(),
						"transaction handle %s captured by a goroutine: transactions are single-threaded and the goroutine can outlive the atomic block",
						tx.Name())
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if carriesTxnHandle(pass.Info, res, tx) {
						pass.Reportf(n.Pos(),
							"transaction handle %s returned from the body: it is only valid while the atomic block runs",
							tx.Name())
					}
				}
			}
			return true
		})
	})
}

// carriesTxnHandle reports whether evaluating e can yield the transaction
// handle tx itself (as opposed to a value read through it): tx directly, a
// composite literal embedding it, &tx, or an append of it. Calls are
// opaque — tx.Read(o, 0) yields a slot value, not the handle — except the
// append builtin, whose result aggregates its arguments.
func carriesTxnHandle(info *types.Info, e ast.Expr, tx *types.Var) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e] == tx
	case *ast.UnaryExpr:
		return carriesTxnHandle(info, e.X, tx)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if carriesTxnHandle(info, el, tx) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return carriesTxnHandle(info, e.Value, tx)
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && info.Uses[id] == nil {
			// append resolves to the universe builtin (no Uses object in
			// some configurations; Uses maps it to the builtin otherwise).
			for _, arg := range e.Args {
				if carriesTxnHandle(info, arg, tx) {
					return true
				}
			}
		} else if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "append" {
				for _, arg := range e.Args {
					if carriesTxnHandle(info, arg, tx) {
						return true
					}
				}
			}
		}
	case *ast.TypeAssertExpr:
		return carriesTxnHandle(info, e.X, tx)
	case *ast.StarExpr:
		return carriesTxnHandle(info, e.X, tx)
	}
	return false
}

// mentionsTxn reports whether any identifier under n resolves to tx.
func mentionsTxn(info *types.Info, n ast.Node, tx *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == tx {
			found = true
		}
		return !found
	})
	return found
}

// assignedGlobal returns the package-level variable ultimately written by
// lhs (`G = ...`, `G.f = ...`, `G[i] = ...`), or nil.
func assignedGlobal(info *types.Info, lhs ast.Expr) *types.Var {
	for {
		switch e := unparen(lhs).(type) {
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok {
				if v, ok = info.Defs[e].(*types.Var); !ok {
					return nil
				}
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// pkg.G = tx resolves Sel to the var; obj.f = tx walks to obj.
			if id, ok := unparen(e.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					lhs = e.Sel
					continue
				}
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return nil
		}
	}
}
