// Package interproc implements the whole-program analyses behind `stmvet
// elide`: a CHA-style callgraph plus a flow-insensitive, Andersen-style
// points-to analysis over the type-checked packages vetload produces, and
// the two barrier-elision clients ported from the toy-IR pipeline
// (internal/analysis) to the Go embedding:
//
//   - nait (Figure 12): allocation sites whose points-to set is never read
//     or written inside any Atomic* body;
//   - threadlocal (§5.4): allocation sites whose objects provably never
//     cross goroutines.
//
// The result is an elide.Manifest keyed by stable "basename.go:line"
// allocation-site IDs, which internal/objmodel loads to decide each
// object's birth state (private for NAIT/TL sites — the Figure 10
// zero-synchronization fast paths) and to pre-seed slot granularity for
// hot mixed sites.
//
// Deliberate conservatisms, all in the sound direction (a site is only
// elided when every approximation agrees it is safe):
//
//   - One context per function instead of the paper's Txn/NonTxn pair: a
//     function reachable from any Atomic* body has all its naked accesses
//     treated as transactional.
//   - The managed heap is field-insensitive: one points-to node per
//     allocation site covers every reference slot of every object born
//     there (the runtime elides whole sites, never single slots).
//   - Go struct fields and channels are treated as thread-shared storage,
//     like the toy analysis treats statics ("TL typically treats a static
//     field as thread-shared even if only one thread ever uses it").
//   - Calls into packages outside the analyzed set mark their arguments
//     thread-shared.
//   - Interface and func-value calls resolve by name/arity against every
//     compatible function in the program (CHA over-approximation).
package interproc

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/elide"
	"repro/internal/vetstm"
)

// Options configures a whole-program run.
type Options struct {
	// HotThreshold is the number of distinct static access expressions
	// whose points-to set includes a mixed site before the site is marked
	// Hot with a slot-granularity hint. 0 means the default (4).
	HotThreshold int

	// Tool is recorded in the manifest's Tool field.
	Tool string
}

// SiteKind discriminates the allocation intrinsics.
type SiteKind uint8

// Allocation intrinsics.
const (
	SiteNew SiteKind = iota
	SiteNewArray
	SiteNewPublic
)

// SiteInfo is the analysis view of one allocation site.
type SiteInfo struct {
	ID   string
	Pkg  string
	Func string
	File string
	Line int
	Kind SiteKind

	TxnRead  bool // some Atomic* body may read an object born here
	TxnWrite bool // some Atomic* body may write one
	Shared   bool // objects born here may cross goroutines
	Accesses int  // distinct static access expressions reaching the site

	Class  string // elide.Class* classification
	Reason string
}

// Stats summarizes a run.
type Stats struct {
	Packages     int
	Functions    int
	TxnReachable int // functions reachable from transactional code
	Sites        int
	Elidable     int // sites classified nait/tl/nait+tl
}

// Result is the full output of Analyze.
type Result struct {
	Manifest *elide.Manifest
	Sites    []*SiteInfo
	Stats    Stats
}

// Analyze runs the whole-program pipeline over the type-checked packages.
func Analyze(pkgs []*vetstm.Package, opts Options) (*Result, error) {
	if opts.HotThreshold <= 0 {
		opts.HotThreshold = 4
	}
	if opts.Tool == "" {
		opts.Tool = "stmvet elide"
	}
	a := &analyzer{
		opts:      opts,
		pkgs:      pkgs,
		funcs:     make(map[string]*funcInfo),
		byNode:    make(map[ast.Node]*funcInfo),
		siteOf:    make(map[ast.Node]int),
		nodeByKey: make(map[string]int),
		nodeByObj: make(map[types.Object]int),
	}
	a.buildUniverse()
	a.collectSites()
	a.sol = newSolver(len(a.sites))
	// Result nodes must exist before generation: callers bind their
	// callees' return nodes regardless of generation order.
	for _, fi := range a.funcList {
		for i := range fi.retNodes {
			fi.retNodes[i] = a.sol.newNode()
		}
	}
	for _, fi := range a.funcList {
		a.generate(fi)
	}
	a.bindDynamicCalls()
	a.sol.solve()
	a.propagateReachTxn()
	a.markAccesses()
	shared := a.computeShared()
	return a.classify(shared), nil
}

// funcInfo is one function or function literal in the program.
type funcInfo struct {
	key       string
	name      string // display name
	pkg       *vetstm.Package
	decl      *ast.FuncDecl
	lit       *ast.FuncLit
	body      *ast.BlockStmt
	ftype     *ast.FuncType
	recv      types.Object   // receiver var, nil for functions/literals
	params    []types.Object // parameter vars in order (excluding receiver)
	retNodes  []int
	addrTaken bool
	hasTxnArg bool // signature carries a transaction handle
	reachTxn  bool
}

type callEdge struct {
	caller *funcInfo
	callee *funcInfo
	spawn  bool // go statement: the callee starts outside any transaction
	txn    bool // Atomic* body argument: the callee runs transactionally
}

type accessKind uint8

const (
	accTxn   accessKind = iota // tx.Read/Write: transactional by construction
	accNT                      // strong barrier: non-transactional access
	accNaked                   // LoadSlot/StoreSlot: context decides
)

type accessRec struct {
	fn    *funcInfo
	node  int
	store bool
	kind  accessKind
}

type siteRec struct {
	info *SiteInfo
}

// dynCall is a call through a func value (or an Atomic* body passed as a
// value), resolved against address-taken functions after generation.
type dynCall struct {
	caller   *funcInfo
	recvNode int // -1 if none
	argNodes []int
	resNodes []int
	nargs    int
	spawn    bool
	txn      bool
}

type analyzer struct {
	opts Options
	pkgs []*vetstm.Package

	funcs    map[string]*funcInfo
	funcList []*funcInfo
	byNode   map[ast.Node]*funcInfo

	sites  []*siteRec
	siteOf map[ast.Node]int

	sol *solver

	nodeByKey map[string]int
	nodeByObj map[types.Object]int

	sharedRoots []int
	accesses    []accessRec
	calls       []callEdge
	dynCalls    []*dynCall
}

// ---- universe ----

func (a *analyzer) buildUniverse() {
	for _, pkg := range a.pkgs {
		for _, f := range pkg.Files {
			var stack []*funcInfo
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return true
					}
					fn, _ := pkg.Info.Defs[n.Name].(*types.Func)
					if fn == nil {
						return true
					}
					fi := &funcInfo{
						key:   fn.FullName(),
						name:  fn.FullName(),
						pkg:   pkg,
						decl:  n,
						body:  n.Body,
						ftype: n.Type,
					}
					a.registerFunc(fi, fn.Signature(), n.Recv)
					stack = append(stack, fi)
				case *ast.FuncLit:
					pos := pkg.Fset.Position(n.Pos())
					key := fmt.Sprintf("lit:%s:%s:%d:%d", pkg.PkgPath, filepath.Base(pos.Filename), pos.Line, pos.Column)
					name := key
					if len(stack) > 0 {
						name = stack[len(stack)-1].name + "$lit"
					}
					sig, _ := pkg.Info.Types[n].Type.(*types.Signature)
					fi := &funcInfo{
						key:   key,
						name:  name,
						pkg:   pkg,
						lit:   n,
						body:  n.Body,
						ftype: n.Type,
					}
					a.registerFunc(fi, sig, nil)
					stack = append(stack, fi)
				}
				return true
			})
			_ = stack
		}
	}
}

func (a *analyzer) registerFunc(fi *funcInfo, sig *types.Signature, recv *ast.FieldList) {
	info := fi.pkg.Info
	if recv != nil && len(recv.List) > 0 && len(recv.List[0].Names) > 0 {
		fi.recv = info.Defs[recv.List[0].Names[0]]
		if fi.recv != nil && isTxnType(fi.recv.Type()) {
			// Methods on a transaction handle run transactionally.
			fi.hasTxnArg = true
		}
	}
	if fi.ftype.Params != nil {
		for _, field := range fi.ftype.Params.List {
			if len(field.Names) == 0 {
				fi.params = append(fi.params, nil) // unnamed: unbound
				continue
			}
			for _, name := range field.Names {
				obj := info.Defs[name]
				fi.params = append(fi.params, obj)
				if obj != nil && isTxnType(obj.Type()) {
					fi.hasTxnArg = true
				}
			}
		}
	}
	if sig != nil {
		for i := 0; i < sig.Results().Len(); i++ {
			fi.retNodes = append(fi.retNodes, -1) // real nodes allocated in Analyze
		}
	}
	a.funcs[fi.key] = fi
	a.funcList = append(a.funcList, fi)
	a.byNode[nodeOf(fi)] = fi
}

func nodeOf(fi *funcInfo) ast.Node {
	if fi.decl != nil {
		return fi.decl
	}
	return fi.lit
}

// collectSites pre-scans every file for allocation intrinsics so the
// points-to universe is known before constraint generation.
func (a *analyzer) collectSites() {
	for _, pkg := range a.pkgs {
		for _, f := range pkg.Files {
			var enclosing []*funcInfo
			ast.Inspect(f, func(n ast.Node) bool {
				if fi, ok := a.byNode[n]; ok {
					enclosing = append(enclosing, fi)
					return true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, ok := allocKind(pkg.Info, call)
				if !ok {
					return true
				}
				pos := pkg.Fset.Position(call.Pos())
				fnName := "<init>"
				// The innermost enclosing function whose span contains the call.
				for i := len(enclosing) - 1; i >= 0; i-- {
					fn := enclosing[i]
					if nodeOf(fn).Pos() <= call.Pos() && call.End() <= nodeOf(fn).End() {
						fnName = fn.name
						break
					}
				}
				base := filepath.Base(pos.Filename)
				si := &SiteInfo{
					ID:   elide.SiteID(base, pos.Line),
					Pkg:  pkg.PkgPath,
					Func: fnName,
					File: base,
					Line: pos.Line,
					Kind: kind,
				}
				a.siteOf[call] = len(a.sites)
				a.sites = append(a.sites, &siteRec{info: si})
				return true
			})
		}
	}
}

// allocKind recognizes the heap-allocation intrinsics.
func allocKind(info *types.Info, call *ast.CallExpr) (SiteKind, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !pathHasTail(fn.Pkg().Path(), pkgObjModel) {
		return 0, false
	}
	if recv := fn.Signature().Recv(); recv == nil || !namedIs(recv.Type(), "Heap") {
		return 0, false
	}
	switch fn.Name() {
	case "New":
		return SiteNew, true
	case "NewArray":
		return SiteNewArray, true
	case "NewPublic":
		return SiteNewPublic, true
	}
	return 0, false
}

// ---- reachTxn propagation ----

func (a *analyzer) propagateReachTxn() {
	var work []*funcInfo
	seed := func(fi *funcInfo) {
		if fi != nil && !fi.reachTxn {
			fi.reachTxn = true
			work = append(work, fi)
		}
	}
	for _, fi := range a.funcList {
		if fi.hasTxnArg {
			seed(fi)
		}
	}
	for _, e := range a.calls {
		if e.txn {
			seed(e.callee)
		}
	}
	// Successor lists over the static callgraph; spawn edges reset the
	// context (a spawned goroutine starts outside any transaction).
	succ := make(map[*funcInfo][]*funcInfo)
	for _, e := range a.calls {
		if !e.spawn {
			succ[e.caller] = append(succ[e.caller], e.callee)
		}
	}
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range succ[fi] {
			seed(callee)
		}
	}
}

// markAccesses folds the recorded access expressions into per-site
// transactional-access and hotness facts.
func (a *analyzer) markAccesses() {
	for _, rec := range a.accesses {
		if rec.node < 0 {
			continue
		}
		isTxn := rec.kind == accTxn || (rec.fn != nil && rec.fn.reachTxn)
		a.sol.pts[rec.node].forEach(func(site int) {
			si := a.sites[site].info
			si.Accesses++
			if isTxn {
				if rec.store {
					si.TxnWrite = true
				} else {
					si.TxnRead = true
				}
			}
		})
	}
}

// computeShared is the TL analysis (§5.4): a site is thread-shared if its
// objects are reachable from a shared root (globals, channels, Go struct
// fields, spawn arguments and captures, external-call escapes, public-born
// objects), transitively through managed reference slots.
func (a *analyzer) computeShared() bitset {
	shared := newBitset(len(a.sites))
	var work []int
	add := func(site int) {
		if shared.set(site) {
			work = append(work, site)
		}
	}
	for _, n := range a.sharedRoots {
		a.sol.pts[n].forEach(add)
	}
	for i, s := range a.sites {
		if s.info.Kind == SiteNewPublic {
			add(i)
		}
	}
	for len(work) > 0 {
		site := work[len(work)-1]
		work = work[:len(work)-1]
		if mf := a.sol.mfield[site]; mf >= 0 {
			a.sol.pts[mf].forEach(add)
		}
	}
	return shared
}

// classify derives the per-site class and assembles the manifest.
func (a *analyzer) classify(shared bitset) *Result {
	res := &Result{Sites: make([]*SiteInfo, 0, len(a.sites))}
	m := &elide.Manifest{Version: elide.Version, Tool: a.opts.Tool}
	for _, pkg := range a.pkgs {
		m.Packages = append(m.Packages, pkg.PkgPath)
	}
	sort.Strings(m.Packages)
	res.Stats.Packages = len(a.pkgs)
	res.Stats.Functions = len(a.funcList)
	for _, fi := range a.funcList {
		if fi.reachTxn {
			res.Stats.TxnReachable++
		}
	}
	for i, s := range a.sites {
		si := s.info
		si.Shared = shared.get(i)
		txn := si.TxnRead || si.TxnWrite
		switch {
		case si.Kind == SiteNewPublic:
			si.Class = elide.ClassMixed
			si.Reason = "public-born (NewPublic)"
		case !txn && !si.Shared:
			si.Class = elide.ClassNAITTL
			si.Reason = "no transactional access; never crosses goroutines"
		case !txn:
			si.Class = elide.ClassNAIT
			si.Reason = "no transactional access (crosses goroutines; publication re-protects)"
		case !si.Shared:
			si.Class = elide.ClassTL
			si.Reason = "never crosses goroutines (transactional access is single-threaded)"
		default:
			si.Class = elide.ClassMixed
			si.Reason = "transactional access on a thread-shared object"
		}
		res.Sites = append(res.Sites, si)
		if si.Kind == SiteNewPublic {
			continue // NewPublic forces shared birth; never in the manifest
		}
		entry := elide.Site{
			ID:     si.ID,
			Pkg:    si.Pkg,
			Func:   si.Func,
			File:   si.File,
			Line:   si.Line,
			Class:  si.Class,
			Reason: si.Reason,
		}
		if si.Class == elide.ClassMixed && si.Accesses >= a.opts.HotThreshold {
			entry.Hot = true
			entry.Granularity = "slot"
		}
		if elide.Elidable(si.Class) {
			res.Stats.Elidable++
		}
		m.Sites = append(m.Sites, entry)
	}
	res.Stats.Sites = len(a.sites)
	m.Sort()
	res.Manifest = m
	sort.Slice(res.Sites, func(i, j int) bool {
		x, y := res.Sites[i], res.Sites[j]
		if x.File != y.File {
			return x.File < y.File
		}
		return x.Line < y.Line
	})
	return res
}

// ---- small type helpers (kept local: vetstm's are unexported) ----

const (
	pkgSTM      = "internal/stm"
	pkgLazySTM  = "internal/lazystm"
	pkgMVSTM    = "internal/mvstm"
	pkgSTMAPI   = "internal/stmapi"
	pkgCore     = "internal/core"
	pkgObjModel = "internal/objmodel"
	pkgStrong   = "internal/strong"
)

var stmRuntimeTails = []string{pkgSTM, pkgLazySTM, pkgMVSTM, pkgSTMAPI, pkgCore}

func pathHasTail(path, tail string) bool {
	return path == tail || strings.HasSuffix(path, "/"+tail)
}

// namedIs reports whether t (through pointers and aliases) is a named type
// with the given name.
func namedIs(t types.Type, name string) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == name
}

// isTxnType reports whether t is a transaction handle of any runtime.
func isTxnType(t types.Type) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name, path := named.Obj().Name(), named.Obj().Pkg().Path()
	switch name {
	case "Txn":
		return pathHasTail(path, pkgSTM) || pathHasTail(path, pkgLazySTM) ||
			pathHasTail(path, pkgMVSTM) || pathHasTail(path, pkgSTMAPI)
	case "Tx":
		return pathHasTail(path, pkgCore)
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for dynamic
// calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

var atomicEntryNames = map[string]bool{
	"Atomic":            true,
	"AtomicCtx":         true,
	"AtomicIrrevocable": true,
	"AtomicOpen":        true,
	"AtomicRead":        true,
}
