package interproc

// Constraint generation: one pass over every function body, emitting
// points-to constraints into the solver and recording access expressions,
// call edges, and thread-sharing roots along the way. Go-level structure
// is modeled coarsely (containers collapse into their variable's node,
// pointers alias their pointees, struct fields merge by name+type) — all
// in the conservative direction for the two clients.

import (
	"go/ast"
	"go/types"
)

type genCtx struct {
	a    *analyzer
	fn   *funcInfo
	info *types.Info
}

func (a *analyzer) generate(fi *funcInfo) {
	g := &genCtx{a: a, fn: fi, info: fi.pkg.Info}
	g.stmt(fi.body)
	// Named results flow to the return nodes whether or not a return
	// statement names them (naked returns).
	if fi.ftype.Results != nil {
		i := 0
		for _, field := range fi.ftype.Results.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if i < len(fi.retNodes) {
					g.copyTo(g.nodeForObj(g.info.Defs[name]), fi.retNodes[i])
				}
				i++
			}
		}
	}
}

func (g *genCtx) copyTo(src, dst int) {
	if src >= 0 && dst >= 0 {
		g.a.sol.addCopy(src, dst)
	}
}

func (g *genCtx) markShared(n int) {
	if n >= 0 {
		g.a.sharedRoots = append(g.a.sharedRoots, n)
	}
}

func (g *genCtx) access(node int, store bool, kind accessKind) {
	if node >= 0 {
		g.a.accesses = append(g.a.accesses, accessRec{fn: g.fn, node: node, store: store, kind: kind})
	}
}

// ---- node resolution ----

// nodeForObj maps a variable to its points-to node. Package-level
// variables, struct fields, and channels are shared storage (see the
// package comment); their nodes are registered as sharing roots when
// created.
func (g *genCtx) nodeForObj(obj types.Object) int {
	v, ok := obj.(*types.Var)
	if !ok || v == nil {
		return -1
	}
	a := g.a
	if v.IsField() {
		key := "f:"
		if v.Pkg() != nil {
			key += v.Pkg().Path()
		}
		key += "." + v.Name() + ":" + types.TypeString(v.Type(), nil)
		if n, ok := a.nodeByKey[key]; ok {
			return n
		}
		n := a.sol.newNode()
		a.nodeByKey[key] = n
		g.markShared(n)
		return n
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		key := "g:" + v.Pkg().Path() + "." + v.Name()
		if n, ok := a.nodeByKey[key]; ok {
			return n
		}
		n := a.sol.newNode()
		a.nodeByKey[key] = n
		g.markShared(n)
		return n
	}
	if n, ok := a.nodeByObj[v]; ok {
		return n
	}
	n := a.sol.newNode()
	a.nodeByObj[v] = n
	return n
}

// chanNode returns the single points-to plane shared by all channels of
// one element type.
func (g *genCtx) chanNode(chanType types.Type) int {
	if chanType == nil {
		return -1
	}
	ch, ok := chanType.Underlying().(*types.Chan)
	if !ok {
		return -1
	}
	key := "c:" + types.TypeString(ch.Elem(), nil)
	if n, ok := g.a.nodeByKey[key]; ok {
		return n
	}
	n := g.a.sol.newNode()
	g.a.nodeByKey[key] = n
	g.markShared(n)
	return n
}

// ---- statements ----

func (g *genCtx) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			g.stmt(st)
		}
	case *ast.ExprStmt:
		g.eval(s.X)
	case *ast.AssignStmt:
		g.assign(s.Lhs, s.Rhs)
	case *ast.GoStmt:
		g.goCall(s.Call)
	case *ast.DeferStmt:
		g.callResults(s.Call)
	case *ast.ReturnStmt:
		g.ret(s)
	case *ast.IfStmt:
		g.stmt(s.Init)
		g.eval(s.Cond)
		g.stmt(s.Body)
		g.stmt(s.Else)
	case *ast.ForStmt:
		g.stmt(s.Init)
		if s.Cond != nil {
			g.eval(s.Cond)
		}
		g.stmt(s.Post)
		g.stmt(s.Body)
	case *ast.RangeStmt:
		g.rangeStmt(s)
	case *ast.SwitchStmt:
		g.stmt(s.Init)
		if s.Tag != nil {
			g.eval(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				g.eval(e)
			}
			for _, st := range cc.Body {
				g.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		g.typeSwitch(s)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			g.stmt(cc.Comm)
			for _, st := range cc.Body {
				g.stmt(st)
			}
		}
	case *ast.SendStmt:
		plane := g.chanNode(g.typeOf(s.Chan))
		g.eval(s.Chan)
		g.copyTo(g.eval(s.Value), plane)
	case *ast.IncDecStmt:
		g.eval(s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			var lhs []ast.Expr
			for _, name := range vs.Names {
				lhs = append(lhs, name)
			}
			if len(vs.Values) > 0 {
				g.assign(lhs, vs.Values)
			}
		}
	case *ast.LabeledStmt:
		g.stmt(s.Stmt)
	}
}

func (g *genCtx) typeSwitch(s *ast.TypeSwitchStmt) {
	g.stmt(s.Init)
	// The scrutinee: `switch v := x.(type)` or `switch x.(type)`.
	var xNode int = -1
	switch as := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(as.Rhs) == 1 {
			if ta, ok := unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
				xNode = g.eval(ta.X)
			}
		}
	case *ast.ExprStmt:
		if ta, ok := unparen(as.X).(*ast.TypeAssertExpr); ok {
			xNode = g.eval(ta.X)
		}
	}
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		// Each clause's implicit variable aliases the scrutinee.
		if g.info.Implicits != nil {
			if obj, ok := g.info.Implicits[cc]; ok {
				g.copyTo(xNode, g.nodeForObj(obj))
			}
		}
		for _, st := range cc.Body {
			g.stmt(st)
		}
	}
}

func (g *genCtx) rangeStmt(s *ast.RangeStmt) {
	xn := g.eval(s.X)
	t := g.typeOf(s.X)
	isChan := false
	if t != nil {
		_, isChan = t.Underlying().(*types.Chan)
	}
	if isChan {
		if s.Key != nil {
			g.copyTo(g.chanNode(t), g.lval(s.Key))
		}
	} else {
		// Containers collapse into their variable's node: both the keys
		// (maps) and the values alias the container.
		if s.Key != nil {
			g.copyTo(xn, g.lval(s.Key))
		}
		if s.Value != nil {
			g.copyTo(xn, g.lval(s.Value))
		}
	}
	g.stmt(s.Body)
}

func (g *genCtx) ret(s *ast.ReturnStmt) {
	if len(s.Results) == 0 {
		return
	}
	if len(s.Results) == 1 && len(g.fn.retNodes) > 1 {
		// return f() forwarding a multi-value call
		if call, ok := unparen(s.Results[0]).(*ast.CallExpr); ok {
			res := g.callResults(call)
			for i, rn := range res {
				if i < len(g.fn.retNodes) {
					g.copyTo(rn, g.fn.retNodes[i])
				}
			}
			return
		}
	}
	for i, e := range s.Results {
		n := g.eval(e)
		if i < len(g.fn.retNodes) {
			g.copyTo(n, g.fn.retNodes[i])
		}
	}
}

func (g *genCtx) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		switch r := unparen(rhs[0]).(type) {
		case *ast.CallExpr:
			res := g.callResults(r)
			for i, l := range lhs {
				var rn int = -1
				if i < len(res) {
					rn = res[i]
				}
				g.copyTo(rn, g.lval(l))
			}
			return
		case *ast.TypeAssertExpr:
			g.copyTo(g.eval(r.X), g.lval(lhs[0]))
			return
		case *ast.IndexExpr:
			g.copyTo(g.eval(r.X), g.lval(lhs[0]))
			return
		case *ast.UnaryExpr:
			if r.Op.String() == "<-" {
				g.copyTo(g.chanNode(g.typeOf(r.X)), g.lval(lhs[0]))
				return
			}
		}
		n := g.eval(rhs[0])
		for _, l := range lhs {
			g.copyTo(n, g.lval(l))
		}
		return
	}
	for i, r := range rhs {
		n := g.eval(r)
		if i < len(lhs) {
			g.copyTo(n, g.lval(lhs[i]))
		}
	}
}

// lval resolves an assignment target to its node. Container element
// stores collapse into the container's node.
func (g *genCtx) lval(e ast.Expr) int {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return -1
		}
		if obj := g.info.Defs[e]; obj != nil {
			return g.nodeForObj(obj)
		}
		return g.nodeForObj(g.info.Uses[e])
	case *ast.SelectorExpr:
		g.eval(e.X)
		return g.nodeForObj(g.info.Uses[e.Sel])
	case *ast.IndexExpr:
		g.eval(e.Index)
		return g.eval(e.X)
	case *ast.StarExpr:
		return g.eval(e.X)
	}
	return g.eval(e)
}

// ---- expressions ----

func (g *genCtx) typeOf(e ast.Expr) types.Type {
	if tv, ok := g.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// eval generates constraints for an expression and returns its node, or
// -1 when the value cannot carry managed references.
func (g *genCtx) eval(e ast.Expr) int {
	switch e := e.(type) {
	case nil:
		return -1
	case *ast.Ident:
		switch obj := g.info.Uses[e].(type) {
		case *types.Var:
			return g.nodeForObj(obj)
		case *types.Func:
			g.markAddrTaken(obj)
		}
		return -1
	case *ast.ParenExpr:
		return g.eval(e.X)
	case *ast.SelectorExpr:
		switch obj := g.info.Uses[e.Sel].(type) {
		case *types.Var:
			g.eval(e.X)
			return g.nodeForObj(obj)
		case *types.Func:
			g.eval(e.X)
			g.markAddrTaken(obj)
		default:
			g.eval(e.X)
		}
		return -1
	case *ast.IndexExpr:
		g.eval(e.Index)
		return g.eval(e.X)
	case *ast.SliceExpr:
		return g.eval(e.X)
	case *ast.StarExpr:
		return g.eval(e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "<-" {
			g.eval(e.X)
			return g.chanNode(g.typeOf(e.X))
		}
		return g.eval(e.X) // &x aliases x
	case *ast.CallExpr:
		res := g.callResults(e)
		if len(res) > 0 {
			return res[0]
		}
		return -1
	case *ast.CompositeLit:
		t := g.a.sol.newNode()
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := unparen(kv.Key).(*ast.Ident); ok {
					if fv, ok := g.info.Uses[id].(*types.Var); ok && fv.IsField() {
						g.copyTo(g.eval(kv.Value), g.nodeForObj(fv))
						continue
					}
				}
				g.copyTo(g.eval(kv.Key), t)
				g.copyTo(g.eval(kv.Value), t)
				continue
			}
			g.copyTo(g.eval(elt), t)
		}
		return t
	case *ast.TypeAssertExpr:
		return g.eval(e.X)
	case *ast.BinaryExpr:
		a, b := g.eval(e.X), g.eval(e.Y)
		if a < 0 && b < 0 {
			return -1
		}
		t := g.a.sol.newNode()
		g.copyTo(a, t)
		g.copyTo(b, t)
		return t
	case *ast.FuncLit:
		// A literal in value position escapes: it may be called from
		// anywhere, so it joins the dynamic-call universe.
		if fi := g.a.byNode[e]; fi != nil {
			fi.addrTaken = true
		}
		return -1
	}
	return -1
}

func (g *genCtx) markAddrTaken(fn *types.Func) {
	if fi := g.a.funcs[fn.FullName()]; fi != nil {
		fi.addrTaken = true
	}
}
