package interproc

import "math/bits"

// bitset is a fixed-universe bit set over allocation-site IDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) bool {
	w, m := i/64, uint64(1)<<uint(i%64)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}

func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) unionWith(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) forEach(f func(int)) {
	for w, word := range b {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			f(w*64 + tz)
			word &^= 1 << uint(tz)
		}
	}
}

// solver is the Andersen-style inclusion-constraint solver, the same shape
// as the toy-IR one in internal/analysis/pta.go: points-to sets over
// allocation sites, copy edges, and deferred load/store constraints
// through the single per-object "managed field" node (the Go-embedding
// analysis is field-insensitive over the managed heap: the runtime keys
// elision decisions by allocation site, never by slot, so slot precision
// would buy nothing).
type solver struct {
	numSites int

	pts    []bitset
	succ   [][]int
	loads  [][]int // deferred: pts(base) ∋ s ⇒ copy(mfield(s) → dst)
	stores [][]int // deferred: pts(base) ∋ s ⇒ copy(src → mfield(s))

	mfield []int // site → its managed-field node (allocated lazily)

	worklist []int
	inWL     []bool
}

func newSolver(numSites int) *solver {
	s := &solver{numSites: numSites}
	s.mfield = make([]int, numSites)
	for i := range s.mfield {
		s.mfield[i] = -1
	}
	return s
}

func (s *solver) newNode() int {
	id := len(s.pts)
	s.pts = append(s.pts, newBitset(s.numSites))
	s.succ = append(s.succ, nil)
	s.loads = append(s.loads, nil)
	s.stores = append(s.stores, nil)
	s.inWL = append(s.inWL, false)
	return id
}

// mfieldNode returns the managed-field node of site (all ref-holding slots
// of all objects allocated there, collapsed).
func (s *solver) mfieldNode(site int) int {
	if s.mfield[site] < 0 {
		s.mfield[site] = s.newNode()
	}
	return s.mfield[site]
}

func (s *solver) push(n int) {
	if !s.inWL[n] {
		s.inWL[n] = true
		s.worklist = append(s.worklist, n)
	}
}

func (s *solver) addSite(n, site int) {
	if s.pts[n].set(site) {
		s.push(n)
	}
}

func (s *solver) addCopy(src, dst int) {
	if src == dst {
		return
	}
	s.succ[src] = append(s.succ[src], dst)
	if s.pts[dst].unionWith(s.pts[src]) {
		s.push(dst)
	}
}

// addLoad adds dst ⊇ mfield(site) for every site in pts(base), now and as
// pts(base) grows.
func (s *solver) addLoad(base, dst int) {
	s.loads[base] = append(s.loads[base], dst)
	s.pts[base].forEach(func(site int) {
		s.addCopy(s.mfieldNode(site), dst)
	})
}

// addStore adds mfield(site) ⊇ src for every site in pts(base).
func (s *solver) addStore(base, src int) {
	s.stores[base] = append(s.stores[base], src)
	s.pts[base].forEach(func(site int) {
		s.addCopy(src, s.mfieldNode(site))
	})
}

func (s *solver) solve() {
	for len(s.worklist) > 0 {
		n := s.worklist[len(s.worklist)-1]
		s.worklist = s.worklist[:len(s.worklist)-1]
		s.inWL[n] = false
		delta := s.pts[n]
		for _, d := range s.succ[n] {
			if s.pts[d].unionWith(delta) {
				s.push(d)
			}
		}
		for _, dst := range s.loads[n] {
			delta.forEach(func(site int) {
				s.addCopy(s.mfieldNode(site), dst)
			})
		}
		for _, src := range s.stores[n] {
			delta.forEach(func(site int) {
				s.addCopy(src, s.mfieldNode(site))
			})
		}
	}
}
