package interproc_test

import (
	"testing"

	"repro/internal/elide"
	"repro/internal/vetstm"
	"repro/internal/vetstm/interproc"
	"repro/internal/vetstm/vetload"
)

func loadFixture(t *testing.T) []*vetstm.Package {
	t.Helper()
	root, err := vetload.ModuleDir(".")
	if err != nil {
		t.Fatalf("ModuleDir: %v", err)
	}
	pkgs, err := vetload.Load(root, "./internal/vetstm/interproc/testdata/handoff")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return pkgs
}

func analyze(t *testing.T, opts interproc.Options) *interproc.Result {
	t.Helper()
	res, err := interproc.Analyze(loadFixture(t), opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

func handoffSites(res *interproc.Result) []*interproc.SiteInfo {
	var out []*interproc.SiteInfo
	for _, si := range res.Sites {
		if si.File == "handoff.go" {
			out = append(out, si)
		}
	}
	return out
}

// The parity test: the Go embedding must reproduce the toy-IR data-handoff
// result (internal/analysis's TestDataHandoffNAITBeatsTL) — the handed-off
// item is thread-shared, so TL alone must keep its barriers, but NAIT
// elides it because no transaction ever touches it.
func TestDataHandoffParity(t *testing.T) {
	res := analyze(t, interproc.Options{})
	sites := handoffSites(res)
	if len(sites) != 5 {
		t.Fatalf("found %d handoff sites, want 5: %+v", len(sites), sites)
	}
	// res.Sites is sorted by file/line; the fixture allocates in order
	// item, scratch, counter, local, pub.
	item, scratch, counter, local, pub := sites[0], sites[1], sites[2], sites[3], sites[4]

	if item.Class != elide.ClassNAIT {
		t.Errorf("item class = %q, want nait (%s)", item.Class, item.Reason)
	}
	if !item.Shared {
		t.Errorf("item not thread-shared: TL alone should have to keep it")
	}
	if item.TxnRead || item.TxnWrite {
		t.Errorf("item marked transactional: read=%v write=%v", item.TxnRead, item.TxnWrite)
	}

	if scratch.Class != elide.ClassNAITTL {
		t.Errorf("scratch class = %q, want nait+tl (%s)", scratch.Class, scratch.Reason)
	}
	if counter.Class != elide.ClassMixed {
		t.Errorf("counter class = %q, want mixed (%s)", counter.Class, counter.Reason)
	}
	if !counter.TxnWrite || !counter.Shared {
		t.Errorf("counter facts = txnWrite:%v shared:%v, want both", counter.TxnWrite, counter.Shared)
	}
	if local.Class != elide.ClassTL {
		t.Errorf("local class = %q, want tl (%s)", local.Class, local.Reason)
	}
	if pub.Class != elide.ClassMixed || pub.Kind != interproc.SiteNewPublic {
		t.Errorf("pub = class %q kind %v, want mixed NewPublic", pub.Class, pub.Kind)
	}

	// Manifest: every site except the NewPublic one, under stable IDs.
	idx := res.Manifest.Index()
	if _, ok := idx[pub.ID]; ok {
		t.Errorf("NewPublic site %s leaked into the manifest", pub.ID)
	}
	for _, si := range []*interproc.SiteInfo{item, scratch, counter, local} {
		entry, ok := idx[si.ID]
		if !ok {
			t.Errorf("site %s missing from manifest", si.ID)
			continue
		}
		if entry.Class != si.Class {
			t.Errorf("manifest class for %s = %q, want %q", si.ID, entry.Class, si.Class)
		}
	}
	if res.Stats.Elidable != 3 {
		t.Errorf("Stats.Elidable = %d, want 3 (item, scratch, local)", res.Stats.Elidable)
	}
}

// Hot mixed sites get a slot-granularity hint once enough distinct access
// expressions reach them.
func TestHotMixedSiteGetsGranularityHint(t *testing.T) {
	res := analyze(t, interproc.Options{HotThreshold: 2})
	sites := handoffSites(res)
	if len(sites) != 5 {
		t.Fatalf("found %d handoff sites, want 5", len(sites))
	}
	counter := sites[2]
	if counter.Class != elide.ClassMixed {
		t.Fatalf("counter class = %q, want mixed", counter.Class)
	}
	entry, ok := res.Manifest.Index()[counter.ID]
	if !ok {
		t.Fatalf("counter missing from manifest")
	}
	if !entry.Hot || entry.Granularity != "slot" {
		t.Errorf("counter entry = hot:%v gran:%q, want hot slot", entry.Hot, entry.Granularity)
	}
}
