// Package handoff is the Go-embedding analogue of the toy-IR data-handoff
// program used by internal/analysis's parity tests: a producer hands
// managed objects to a consumer goroutine, so the items are thread-shared
// (TL must keep their barriers) but never transactionally accessed (NAIT
// may elide them). Alongside it: a purely local scratch object (nait+tl),
// a transactional-but-single-threaded object (tl), a shared transactional
// counter (mixed), and a public-born object (excluded from the manifest).
package handoff

import (
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/strong"
)

// Run exercises every classification the elision analysis can produce.
func Run() {
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Item",
		Fields: []objmodel.Field{{Name: "v"}, {Name: "next", IsRef: true}},
	})
	rt := stm.New(h, stm.Config{})
	b := strong.New(h, false)

	ch := make(chan objmodel.Ref, 8)
	done := make(chan struct{}, 2)
	go consume(b, h, ch, done)
	for i := 0; i < 4; i++ {
		item := h.New(cls) // crosses goroutines, never in a txn: nait
		b.Write(item, 0, uint64(i))
		ch <- item.Ref()
	}
	close(ch)

	scratch := h.New(cls) // purely local: nait+tl
	b.Write(scratch, 0, 7)
	_ = b.Read(scratch, 0)

	counter := h.New(cls) // txn access and crosses goroutines: mixed
	go bump(b, counter, done)
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		tx.Write(counter, 0, tx.Read(counter, 0)+1)
		return nil
	})

	local := h.New(cls) // txn access, single goroutine: tl
	_ = rt.Atomic(nil, func(tx *stm.Txn) error {
		tx.Write(local, 0, 1)
		return nil
	})

	pub := h.NewPublic(cls) // public-born: never in the manifest
	b.Write(pub, 0, 3)

	<-done
	<-done
}

func consume(b *strong.Barriers, h *objmodel.Heap, ch chan objmodel.Ref, done chan struct{}) {
	for r := range ch {
		o := h.Get(r)
		_ = b.Read(o, 0)
	}
	done <- struct{}{}
}

func bump(b *strong.Barriers, o *objmodel.Object, done chan struct{}) {
	b.Write(o, 0, 9)
	done <- struct{}{}
}
