package interproc

// Call handling: runtime intrinsics (allocation, transactional accessors,
// strong barriers), Atomic* entry points, direct and CHA-resolved calls,
// go statements, and the post-generation binding of func-value calls.

import (
	"go/ast"
	"go/types"
)

// callResults generates constraints for a call and returns one node per
// result value (nil when no result can carry managed references).
func (g *genCtx) callResults(call *ast.CallExpr) []int {
	// Conversion: T(x) passes the value through.
	if tv, ok := g.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []int{g.eval(call.Args[0])}
		}
		return nil
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := g.info.Uses[id].(*types.Builtin); ok {
			return g.builtinCall(b.Name(), call)
		}
	}
	fn := calleeFunc(g.info, call)
	if fn != nil {
		if fn.Pkg() != nil && atomicEntryNames[fn.Name()] && tailIn(fn.Pkg().Path(), stmRuntimeTails) {
			return g.atomicCall(call)
		}
		if res, ok := g.intrinsic(fn, call); ok {
			return res
		}
		if target := g.a.funcs[fn.FullName()]; target != nil {
			return g.bindDirect(call, target, false)
		}
		if recv := fn.Signature().Recv(); recv != nil {
			if _, ok := recv.Type().Underlying().(*types.Interface); ok {
				return g.chaCall(call, fn, false)
			}
		}
		return g.externalCall(call, fn.Signature().Results().Len())
	}
	// Direct call of a function literal: bind precisely.
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		if target := g.a.byNode[lit]; target != nil {
			g.bindArgNodes(g.evalArgs(call), target)
			g.a.calls = append(g.a.calls, callEdge{caller: g.fn, callee: target})
			return target.retNodes
		}
	}
	return g.dynamicCall(call, false, false)
}

func (g *genCtx) evalArgs(call *ast.CallExpr) []int {
	nodes := make([]int, len(call.Args))
	for i, arg := range call.Args {
		nodes[i] = g.eval(arg)
	}
	return nodes
}

// bindArgNodes copies argument nodes into the target's parameter nodes,
// collapsing variadic extras into the last parameter.
func (g *genCtx) bindArgNodes(argNodes []int, target *funcInfo) {
	for i, n := range argNodes {
		j := i
		if j >= len(target.params) {
			if len(target.params) == 0 {
				break
			}
			j = len(target.params) - 1
		}
		g.copyTo(n, g.nodeForObj(target.params[j]))
	}
}

func (g *genCtx) bindDirect(call *ast.CallExpr, target *funcInfo, spawn bool) []int {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		rn := g.eval(sel.X)
		if spawn {
			g.markShared(rn)
		}
		g.copyTo(rn, g.nodeForObj(target.recv))
	}
	args := g.evalArgs(call)
	if spawn {
		for _, n := range args {
			g.markShared(n)
		}
	}
	g.bindArgNodes(args, target)
	g.a.calls = append(g.a.calls, callEdge{caller: g.fn, callee: target, spawn: spawn})
	return target.retNodes
}

// chaCall resolves an interface method call against every method in the
// program with the same name and a compatible parameter count.
func (g *genCtx) chaCall(call *ast.CallExpr, fn *types.Func, spawn bool) []int {
	var recvNode = -1
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvNode = g.eval(sel.X)
		if spawn {
			g.markShared(recvNode)
		}
	}
	args := g.evalArgs(call)
	if spawn {
		for _, n := range args {
			g.markShared(n)
		}
	}
	resNodes := make([]int, fn.Signature().Results().Len())
	for i := range resNodes {
		resNodes[i] = g.a.sol.newNode()
	}
	for _, target := range g.a.funcList {
		if target.decl == nil || target.decl.Recv == nil {
			continue
		}
		if target.decl.Name.Name != fn.Name() || !arityMatches(target, len(args)) {
			continue
		}
		g.copyTo(recvNode, g.nodeForObj(target.recv))
		g.bindArgNodes(args, target)
		for i := range resNodes {
			if i < len(target.retNodes) {
				g.copyTo(target.retNodes[i], resNodes[i])
			}
		}
		g.a.calls = append(g.a.calls, callEdge{caller: g.fn, callee: target, spawn: spawn})
	}
	return resNodes
}

// externalCall models a call into code outside the analyzed set: every
// argument (and the receiver) may escape to another goroutine, and the
// results may alias any argument.
func (g *genCtx) externalCall(call *ast.CallExpr, nres int) []int {
	t := g.a.sol.newNode()
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		rn := g.eval(sel.X)
		g.markShared(rn)
		g.copyTo(rn, t)
	}
	for _, arg := range call.Args {
		if lit, ok := unparen(arg).(*ast.FuncLit); ok {
			if fi := g.a.byNode[lit]; fi != nil {
				fi.addrTaken = true
			}
			g.markCapturesShared(lit)
			continue
		}
		n := g.eval(arg)
		g.markShared(n)
		g.copyTo(n, t)
	}
	if nres == 0 {
		return nil
	}
	res := make([]int, nres)
	for i := range res {
		res[i] = t
	}
	return res
}

// dynamicCall records a call through a func value for post-generation
// CHA binding against address-taken functions.
func (g *genCtx) dynamicCall(call *ast.CallExpr, spawn, txn bool) []int {
	g.eval(call.Fun)
	args := g.evalArgs(call)
	if spawn {
		for _, n := range args {
			g.markShared(n)
		}
	}
	nres := 0
	if t := g.typeOf(call.Fun); t != nil {
		if sig, ok := t.Underlying().(*types.Signature); ok {
			nres = sig.Results().Len()
		}
	}
	resNodes := make([]int, nres)
	for i := range resNodes {
		resNodes[i] = g.a.sol.newNode()
	}
	g.a.dynCalls = append(g.a.dynCalls, &dynCall{
		caller:   g.fn,
		recvNode: -1,
		argNodes: args,
		resNodes: resNodes,
		nargs:    len(call.Args),
		spawn:    spawn,
		txn:      txn,
	})
	return resNodes
}

// atomicCall handles the Atomic* entry points: every func-typed argument
// runs transactionally.
func (g *genCtx) atomicCall(call *ast.CallExpr) []int {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		g.eval(sel.X)
	}
	for _, arg := range call.Args {
		arg = unparen(arg)
		if lit, ok := arg.(*ast.FuncLit); ok {
			if target := g.a.byNode[lit]; target != nil {
				g.a.calls = append(g.a.calls, callEdge{caller: g.fn, callee: target, txn: true})
			}
			continue
		}
		if fn := funcValue(g.info, arg); fn != nil {
			if target := g.a.funcs[fn.FullName()]; target != nil {
				g.a.calls = append(g.a.calls, callEdge{caller: g.fn, callee: target, txn: true})
				continue
			}
		}
		n := g.eval(arg)
		if t := g.typeOf(arg); t != nil {
			if sig, ok := t.Underlying().(*types.Signature); ok {
				// A body held in a func value: bind dynamically, transactionally.
				g.a.dynCalls = append(g.a.dynCalls, &dynCall{
					caller: g.fn, recvNode: -1, nargs: sig.Params().Len(), txn: true,
				})
				continue
			}
		}
		_ = n
	}
	return nil
}

// intrinsic models the runtime API calls the analysis understands natively
// instead of (or in addition to) analyzing their bodies: allocation sites,
// transactional accessors, strong barriers, and naked slot access. These
// take precedence over direct binding so that an access is attributed to
// the call site's context, mirroring how the runtime attributes allocation
// sites via runtime.Callers.
func (g *genCtx) intrinsic(fn *types.Func, call *ast.CallExpr) ([]int, bool) {
	if fn.Pkg() == nil {
		return nil, false
	}
	path := fn.Pkg().Path()
	recv := fn.Signature().Recv()
	name := fn.Name()
	evalRecv := func() int {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return g.eval(sel.X)
		}
		return -1
	}
	argN := func(i int) int {
		if i < len(call.Args) {
			return g.eval(call.Args[i])
		}
		return -1
	}
	load := func(base int, kind accessKind) []int {
		g.access(base, false, kind)
		t := g.a.sol.newNode()
		if base >= 0 {
			g.a.sol.addLoad(base, t)
		}
		return []int{t}
	}
	store := func(base, v int, kind accessKind) {
		g.access(base, true, kind)
		if base >= 0 && v >= 0 {
			g.a.sol.addStore(base, v)
		}
	}

	if pathHasTail(path, pkgObjModel) && recv != nil {
		switch {
		case namedIs(recv.Type(), "Heap"):
			evalRecv()
			switch name {
			case "New", "NewArray", "NewPublic":
				for _, arg := range call.Args {
					g.eval(arg)
				}
				t := g.a.sol.newNode()
				if site, ok := g.a.siteOf[call]; ok {
					g.a.sol.addSite(t, site)
				}
				return []int{t}, true
			case "Get", "TryGet":
				t := g.a.sol.newNode()
				g.copyTo(argN(0), t)
				return []int{t}, true
			}
			for _, arg := range call.Args {
				g.eval(arg)
			}
			return nil, true
		case namedIs(recv.Type(), "Object"):
			base := evalRecv()
			switch name {
			case "Ref":
				return []int{base}, true
			case "LoadSlot":
				argN(0)
				return load(base, accNaked), true
			case "StoreSlot":
				argN(0)
				store(base, argN(1), accNaked)
				return nil, true
			}
			for _, arg := range call.Args {
				g.eval(arg)
			}
			return nil, true
		}
		return nil, false
	}

	// Transactional accessors: tx.Read/Write and friends, any runtime.
	if recv != nil && isTxnType(recv.Type()) {
		evalRecv()
		switch name {
		case "Read", "ReadRef":
			argN(1)
			return load(argN(0), accTxn), true
		case "Write", "WriteRef":
			base := argN(0)
			argN(1)
			store(base, argN(2), accTxn)
			return nil, true
		}
		return nil, false
	}

	// Strong (non-transactional) barriers.
	if pathHasTail(path, pkgStrong) && recv != nil && namedIs(recv.Type(), "Barriers") {
		evalRecv()
		switch name {
		case "Read", "ReadRef", "ReadOrdering", "ReadOrderingRef", "AggRead":
			base := argN(0)
			for i := 1; i < len(call.Args); i++ {
				argN(i)
			}
			return load(base, accNT), true
		case "Write", "WriteRef", "AggWrite":
			base := argN(0)
			argN(1)
			v := argN(2)
			if len(call.Args) > 3 {
				argN(3)
			}
			store(base, v, accNT)
			return nil, true
		case "Acquire":
			// Acquisition precedes writes; treat as a write access.
			g.access(argN(0), true, accNT)
			return nil, true
		case "Release":
			argN(0)
			argN(1)
			return nil, true
		}
		return nil, false
	}

	// core.System NT accessors (they delegate to strong.Barriers).
	if pathHasTail(path, pkgCore) && recv != nil && namedIs(recv.Type(), "System") {
		switch name {
		case "Read", "ReadRef":
			evalRecv()
			argN(1)
			return load(argN(0), accNT), true
		case "Write", "WriteRef":
			evalRecv()
			base := argN(0)
			argN(1)
			store(base, argN(2), accNT)
			return nil, true
		case "Deref":
			evalRecv()
			t := g.a.sol.newNode()
			g.copyTo(argN(0), t)
			return []int{t}, true
		}
		return nil, false
	}

	return nil, false
}

func (g *genCtx) builtinCall(name string, call *ast.CallExpr) []int {
	switch name {
	case "append":
		t := g.a.sol.newNode()
		for _, arg := range call.Args {
			g.copyTo(g.eval(arg), t)
		}
		return []int{t}
	case "copy":
		if len(call.Args) == 2 {
			g.copyTo(g.eval(call.Args[1]), g.eval(call.Args[0]))
		}
		return nil
	default:
		for _, arg := range call.Args {
			g.eval(arg)
		}
		return nil
	}
}

// goCall handles go statements: spawn edges reset the transactional
// context, and everything reachable from the spawned goroutine (arguments,
// receiver, closure captures) becomes thread-shared.
func (g *genCtx) goCall(call *ast.CallExpr) {
	fun := unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		g.markCapturesShared(lit)
		if target := g.a.byNode[lit]; target != nil {
			args := g.evalArgs(call)
			for _, n := range args {
				g.markShared(n)
			}
			g.bindArgNodes(args, target)
			g.a.calls = append(g.a.calls, callEdge{caller: g.fn, callee: target, spawn: true})
			return
		}
	}
	if fn := calleeFunc(g.info, call); fn != nil {
		if target := g.a.funcs[fn.FullName()]; target != nil {
			g.bindDirect(call, target, true)
			return
		}
		if recv := fn.Signature().Recv(); recv != nil {
			if _, ok := recv.Type().Underlying().(*types.Interface); ok {
				g.chaCall(call, fn, true)
				return
			}
		}
		g.externalCall(call, 0)
		return
	}
	g.dynamicCall(call, true, false)
}

// markCapturesShared marks every variable a literal captures from an
// enclosing function as thread-shared (globals and fields already are).
func (g *genCtx) markCapturesShared(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := g.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			g.markShared(g.nodeForObj(v))
		}
		return true
	})
}

// funcValue resolves an expression to the named function it denotes, if any.
func funcValue(info *types.Info, e ast.Expr) *types.Func {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

func tailIn(path string, tails []string) bool {
	for _, t := range tails {
		if pathHasTail(path, t) {
			return true
		}
	}
	return false
}

func arityMatches(fi *funcInfo, nargs int) bool {
	if len(fi.params) == nargs {
		return true
	}
	return isVariadic(fi) && nargs >= len(fi.params)-1
}

func isVariadic(fi *funcInfo) bool {
	if fi.ftype.Params == nil || len(fi.ftype.Params.List) == 0 {
		return false
	}
	_, ok := fi.ftype.Params.List[len(fi.ftype.Params.List)-1].Type.(*ast.Ellipsis)
	return ok
}

// bindDynamicCalls resolves every func-value call against the
// address-taken functions with a compatible arity (and, for transactional
// bodies, a transaction-handle parameter).
func (a *analyzer) bindDynamicCalls() {
	for _, dc := range a.dynCalls {
		g := &genCtx{a: a, fn: dc.caller, info: dc.caller.pkg.Info}
		for _, fi := range a.funcList {
			if !fi.addrTaken {
				continue
			}
			if dc.txn && !fi.hasTxnArg {
				continue
			}
			if !arityMatches(fi, dc.nargs) {
				continue
			}
			g.copyTo(dc.recvNode, g.nodeForObj(fi.recv))
			for i, an := range dc.argNodes {
				if i < len(fi.params) {
					g.copyTo(an, g.nodeForObj(fi.params[i]))
				}
			}
			for i, rn := range dc.resNodes {
				if i < len(fi.retNodes) {
					g.copyTo(fi.retNodes[i], rn)
				}
			}
			a.calls = append(a.calls, callEdge{caller: dc.caller, callee: fi, spawn: dc.spawn, txn: dc.txn})
		}
	}
}
