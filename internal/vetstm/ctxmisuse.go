package vetstm

import (
	"go/ast"
	"go/types"
)

// CtxMisuse flags misleading uses of the context-aware atomic entry
// points. AtomicCtx exists so a deadline or cancellation can doom a
// transaction (the PR-3 robustness surface); both failure modes surface
// solely through the returned error:
//
//   - Discarding AtomicCtx's result (a bare expression statement) means a
//     cancelled or expired transaction is indistinguishable from a
//     committed one — the caller proceeds as if the effects happened.
//   - Passing context.Background() or context.TODO() directly means the
//     context can never cancel or expire, so AtomicCtx degenerates to
//     Atomic while implying deadline protection the call does not have;
//     any configured deadline policy is dead code on this call.
var CtxMisuse = &Analyzer{
	Name: "ctxmisuse",
	Doc:  "report ignored AtomicCtx errors and never-cancelled contexts",
	Run:  runCtxMisuse,
}

func runCtxMisuse(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if name, ok := atomicCall(pass.Info, call); ok && name == "AtomicCtx" {
					pass.Reportf(call.Pos(),
						"AtomicCtx result discarded: cancellation and deadline expiry are only reported through the returned error, so this caller cannot tell an aborted transaction from a committed one")
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, ok := atomicCall(pass.Info, call)
			if !ok || name != "AtomicCtx" {
				return true
			}
			if ctxFn := neverCancelledCtx(pass.Info, call.Args[0]); ctxFn != "" {
				pass.Reportf(call.Args[0].Pos(),
					"AtomicCtx with context.%s(): this context can never cancel or expire, so the deadline machinery is dead code on this call — use Atomic, or derive a context with a deadline",
					ctxFn)
			}
			return true
		})
	}
}

// neverCancelledCtx reports whether e is a direct context.Background() or
// context.TODO() call, returning the function name.
func neverCancelledCtx(info *types.Info, e ast.Expr) string {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}
