// Package vettest runs vetstm analyzers over testdata fixtures and checks
// their diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest. Fixtures live outside the
// build (testdata/ is invisible to the go tool) but import the real STM
// packages; imports are resolved through compiled export data produced by
// one `go list -export` run over the module.
package vettest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/vetstm"
	"repro/internal/vetstm/vetload"
)

var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

// extraStd are standard-library packages fixtures may import beyond the
// module's own dependency closure.
var extraStd = []string{"context", "fmt", "log", "math/rand", "math/rand/v2", "os", "time"}

func exportMap(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		root, err := vetload.ModuleDir(".")
		if err != nil {
			exportsErr = err
			return
		}
		patterns := append([]string{"./..."}, extraStd...)
		exports, exportsErr = vetload.Exports(root, patterns...)
	})
	if exportsErr != nil {
		t.Fatalf("building export universe: %v", exportsErr)
	}
	return exports
}

// Run applies a to the fixture package in dir (e.g.
// "testdata/src/txnescape") and reports mismatches between its
// diagnostics and the fixture's // want comments.
func Run(t *testing.T, a *vetstm.Analyzer, dir string) {
	t.Helper()
	exp := exportMap(t)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixtures in %s (%v)", dir, err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkgPath := "vetstm.test/" + filepath.Base(dir)
	tpkg, info, err := vetload.Check(pkgPath, fset, files, func(path string) (string, error) {
		f, ok := exp[path]
		if !ok {
			return "", fmt.Errorf("fixture imports %q, which is outside the export universe", path)
		}
		return f, nil
	})
	if err != nil {
		t.Fatalf("typecheck fixtures: %v", err)
	}
	pkg := &vetstm.Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	got := vetstm.Run(pkg, []*vetstm.Analyzer{a})

	wants := collectWants(t, names)
	for _, d := range got {
		key := posKey{filepath.Base(d.Position.Filename), d.Position.Line}
		if i := matchWant(wants[key], d.Message); i >= 0 {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
		} else {
			t.Errorf("unexpected diagnostic at %s:%d: %s", key.file, key.line, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
		}
	}
}

type posKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// collectWants scans fixture sources for `// want "re" ...` comments,
// keyed by (file, line).
func collectWants(t *testing.T, names []string) map[posKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[posKey][]*regexp.Regexp)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			spec := line[idx+len("// want "):]
			matches := wantRE.FindAllStringSubmatch(spec, -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", name, i+1, spec)
			}
			for _, m := range matches {
				var text string
				if strings.HasPrefix(m[0], `"`) {
					unq, err := strconv.Unquote(m[0])
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", name, i+1, m[0], err)
					}
					text = unq
				} else {
					text = m[2]
				}
				re, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, text, err)
				}
				key := posKey{filepath.Base(name), i + 1}
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

func matchWant(res []*regexp.Regexp, msg string) int {
	for i, re := range res {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}
