package vetstm

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Privatization flags the two halves of the paper's §3.3 ordering hazard
// in client code:
//
//   - Unsafe publication: storing a managed reference through the raw,
//     unbarriered Object.StoreSlot. The barriered write path (tx.WriteRef,
//     Barriers.WriteRef) runs the Figure 11 publication walk so a
//     still-private referent loses its all-ones record before it becomes
//     reachable; a naked ref store skips that walk, and every later access
//     to the referent keeps taking the private fast path with no
//     synchronization at all. With an elision manifest loaded (stmvet
//     elide), NAIT/TL objects are born private, so this idiom silently
//     breaks exactly the objects the analysis optimized.
//
//   - Privatize-then-raw-read: a reference fetched transactionally (the
//     privatizing transaction of Figure 1) whose object is then read with
//     raw LoadSlot/StoreSlot after the atomic block. Commit is not
//     write-back: under lazy versioning a committed transaction's values
//     can still be in flight, so the raw read sees a torn state — the
//     paper's motivating anomaly. Post-privatization access must use the
//     ordering read barrier (Barriers.ReadOrdering) or the System
//     accessors.
var Privatization = &Analyzer{
	Name: "privatization",
	Doc:  "report unsafe privatization/publication idioms (Figure 1, §3.3)",
	Run:  runPrivatization,
}

// refReadNames are Txn methods whose result privatizes a reference when it
// escapes the atomic block.
var refReadNames = map[string]bool{"Read": true, "ReadRef": true}

func runPrivatization(pass *Pass) {
	checkUnsafePublication(pass)
	checkPrivatizeThenRawRead(pass)
}

func isManagedRef(t types.Type) bool {
	return t != nil && namedIn(t, pkgObjModel, "Ref")
}

// mentionsRef reports whether any subexpression of e carries a managed
// reference (a Ref-typed value, e.g. item.Ref() or a Ref variable inside a
// uint64 conversion).
func mentionsRef(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if x, ok := n.(ast.Expr); ok && isManagedRef(info.TypeOf(x)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkUnsafePublication(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			se, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || se.Sel.Name != "StoreSlot" {
				return true
			}
			fn, ok := pass.Info.Uses[se.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !pathHasTail(fn.Pkg().Path(), pkgObjModel) {
				return true
			}
			if !mentionsRef(pass.Info, call.Args[1]) {
				return true
			}
			pass.Reportf(call.Pos(),
				"unbarriered publication: raw StoreSlot of a managed reference skips the publication walk, so a still-private referent keeps its private record and later accesses run unsynchronized — publish through tx.WriteRef or Barriers.WriteRef")
			return true
		})
	}
}

// checkPrivatizeThenRawRead finds variables assigned from tx.Read/ReadRef
// inside a transactional body but declared outside it (the privatized
// handle escaping its atomic block), follows them through one heap.Get
// step, and reports raw slot accesses on them after the block.
func checkPrivatizeThenRawRead(pass *Pass) {
	// The end position of the privatizing body for each escaped handle.
	priv := make(map[*types.Var]token.Pos)
	forEachBody(pass, func(b bodyFunc) {
		ast.Inspect(b.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				txv, name, ok := txnMethodCall(pass.Info, call)
				if !ok || txv != b.txn || !refReadNames[name] {
					continue
				}
				if i >= len(as.Lhs) {
					continue
				}
				v := identVar(pass.Info, as.Lhs[i])
				if v == nil {
					continue
				}
				// Captured from outside the body: the handle outlives the
				// transaction that privatized it.
				if v.Pos() < b.node.Pos() || v.Pos() > b.node.End() {
					priv[v] = b.node.End()
				}
			}
			return true
		})
	})
	if len(priv) == 0 {
		return
	}

	privAfter := func(e ast.Expr, at token.Pos) (token.Pos, bool) {
		var end token.Pos
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := pass.Info.Uses[id].(*types.Var)
			if v == nil {
				return true
			}
			if e, ok := priv[v]; ok && at > e {
				end, found = e, true
			}
			return true
		})
		return end, found
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// o := h.Get(ref): the dereferenced object is privatized too.
				for i, rhs := range n.Rhs {
					call, ok := unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					se, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || (se.Sel.Name != "Get" && se.Sel.Name != "TryGet") || len(call.Args) == 0 {
						continue
					}
					fn, ok := pass.Info.Uses[se.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil || !pathHasTail(fn.Pkg().Path(), pkgObjModel) {
						continue
					}
					end, ok := privAfter(call.Args[0], call.Pos())
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if v := identVar(pass.Info, n.Lhs[i]); v != nil {
						priv[v] = end
					} else if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok {
						if v, ok := pass.Info.Defs[id].(*types.Var); ok {
							priv[v] = end
						}
					}
				}
			case *ast.CallExpr:
				se, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !nakedMethodNames[se.Sel.Name] {
					return true
				}
				fn, ok := pass.Info.Uses[se.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || !pathHasTail(fn.Pkg().Path(), pkgObjModel) {
					return true
				}
				v := identVar(pass.Info, se.X)
				if v == nil {
					return true
				}
				if end, ok := priv[v]; ok && n.Pos() > end {
					pass.Reportf(n.Pos(),
						"%s on %s, which was privatized by the atomic block at %s: commit is not write-back — a committed transaction's values may still be in flight (Figure 1); read it with Barriers.ReadOrdering or the System accessors",
						se.Sel.Name, v.Name(), pass.Fset.Position(end))
				}
			}
			return true
		})
	}
}
