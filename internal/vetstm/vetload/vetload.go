// Package vetload loads type-checked packages for the vetstm passes
// without any dependency outside the standard library. It shells out to
// `go list -json -export -deps` to enumerate packages and compile export
// data (the build cache makes repeat runs cheap), parses the target
// packages from source, and type-checks them with the gc importer reading
// the export files — the same shape golang.org/x/tools/go/packages
// provides, reduced to what a vet driver needs.
package vetload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/vetstm"
)

// ListedPackage is the subset of `go list -json` output the loader uses.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ForTest    string // set on test variants listed by `go list -test`
	Error      *struct{ Err string }
}

// List runs `go list -e -json -export -deps patterns...` in dir.
func List(dir string, patterns ...string) ([]*ListedPackage, error) {
	return list(dir, false, patterns...)
}

// ListTests is List with `-test`: the listing additionally contains each
// matched package's test-augmented variant ("pkg [pkg.test]", whose
// GoFiles include the in-package _test.go files), external test packages
// ("pkg_test [pkg.test]"), and the synthetic test mains ("pkg.test").
func ListTests(dir string, patterns ...string) ([]*ListedPackage, error) {
	return list(dir, true, patterns...)
}

func list(dir string, withTests bool, patterns ...string) ([]*ListedPackage, error) {
	args := []string{"list", "-e", "-json", "-export", "-deps"}
	if withTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(ListedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports returns the import-path → export-data-file map for patterns and
// all their dependencies.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m, nil
}

// Load lists patterns in dir and type-checks every matched (non-dep-only)
// package from source. Test files are excluded, matching `go vet`'s
// per-package compile units.
func Load(dir string, patterns ...string) ([]*vetstm.Package, error) {
	return load(dir, false, patterns...)
}

// LoadTests is Load with _test.go files included: each matched package
// with in-package test files is loaded as its test-augmented variant, and
// external (package foo_test) test packages become their own units. The
// synthetic test mains are skipped.
func LoadTests(dir string, patterns ...string) ([]*vetstm.Package, error) {
	return load(dir, true, patterns...)
}

// baseImportPath strips the test-variant suffix: "pkg [pkg.test]" → "pkg".
func baseImportPath(ip string) string {
	if i := strings.Index(ip, " ["); i >= 0 {
		return ip[:i]
	}
	return ip
}

func load(dir string, withTests bool, patterns ...string) ([]*vetstm.Package, error) {
	listed, err := list(dir, withTests, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export == "" {
			continue
		}
		if p.ForTest == "" {
			if _, ok := exports[p.ImportPath]; !ok {
				exports[p.ImportPath] = p.Export
			}
			continue
		}
		// A test variant's export data supersedes the plain package's (it
		// is a superset: in-package test symbols are visible to external
		// test packages importing it).
		exports[baseImportPath(p.ImportPath)] = p.Export
	}
	resolve := func(path string) (string, error) {
		f, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	}
	// Plain packages superseded by an in-package test variant.
	augmented := make(map[string]bool)
	if withTests {
		for _, p := range listed {
			if p.ForTest != "" && baseImportPath(p.ImportPath) == p.ForTest {
				augmented[p.ForTest] = true
			}
		}
	}
	var out []*vetstm.Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		pkgPath := p.ImportPath
		if p.ForTest != "" {
			pkgPath = baseImportPath(p.ImportPath)
		} else if strings.HasSuffix(pkgPath, ".test") || augmented[pkgPath] {
			continue // synthetic test main, or replaced by its test variant
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
			}
			files = append(files, f)
		}
		tpkg, info, err := Check(pkgPath, fset, files, resolve)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		out = append(out, &vetstm.Package{
			PkgPath: pkgPath,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}

// Check type-checks files as one package, resolving each import through
// resolve (import path → compiled export-data file).
func Check(pkgPath string, fset *token.FileSet, files []*ast.File, resolve func(string) (string, error)) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		f, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	}
	conf := types.Config{
		Importer: unsafeAware{importer.ForCompiler(fset, "gc", lookup)},
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

type unsafeAware struct{ base types.Importer }

func (i unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.Import(path)
}

// ModuleDir walks up from dir to the enclosing go.mod directory, so the
// driver can be invoked from a subdirectory.
func ModuleDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// IsStdPattern reports whether pattern names a standard-library package
// (used by the test harness to widen its export universe).
func IsStdPattern(pattern string) bool {
	return !strings.Contains(pattern, ".") && !strings.HasPrefix(pattern, "./")
}
