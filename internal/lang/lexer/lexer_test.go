package lexer

import (
	"testing"

	"repro/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("tokenize %q: %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(t, src)
	want = append(want, token.EOF)
	if len(got) != len(want) {
		t.Fatalf("%q: got %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%q token %d = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestPunctuationAndOperators(t *testing.T) {
	expectKinds(t, "( ) { } [ ] ; : , .",
		token.LParen, token.RParen, token.LBrace, token.RBrace,
		token.LBracket, token.RBracket, token.Semicolon, token.Colon,
		token.Comma, token.Dot)
	expectKinds(t, "+ - * / % = += -= ++ -- == != < <= > >= && || !",
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Assign, token.PlusAssign, token.MinusAssign, token.Inc, token.Dec,
		token.Eq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge,
		token.AndAnd, token.OrOr, token.Not)
}

func TestKeywordsVsIdents(t *testing.T) {
	toks, err := Tokenize("class atomic atomico Class")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.KwClass || toks[1].Kind != token.KwAtomic {
		t.Errorf("keywords not recognized: %v %v", toks[0], toks[1])
	}
	if toks[2].Kind != token.Ident || toks[2].Text != "atomico" {
		t.Errorf("prefix of keyword mis-lexed: %v", toks[2])
	}
	if toks[3].Kind != token.Ident || toks[3].Text != "Class" {
		t.Errorf("case-sensitive keyword mis-lexed: %v", toks[3])
	}
}

func TestIntegers(t *testing.T) {
	toks, err := Tokenize("0 42 1103515245")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 42, 1103515245}
	for i, v := range want {
		if toks[i].Kind != token.Int || toks[i].Val != v {
			t.Errorf("token %d = %v, want %d", i, toks[i], v)
		}
	}
}

func TestIntegerOverflow(t *testing.T) {
	if _, err := Tokenize("99999999999999999999999999"); err == nil {
		t.Error("out-of-range literal accepted")
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\n b /* block\n comment */ c",
		token.Ident, token.Ident, token.Ident)
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := Tokenize("a /* never closed"); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Tokenize("a # b"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := Tokenize("a & b"); err == nil {
		t.Error("lone & accepted")
	}
	if _, err := Tokenize("a | b"); err == nil {
		t.Error("lone | accepted")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second token pos = %v", toks[1].Pos)
	}
	if !toks[0].Pos.IsValid() || (token.Pos{}).IsValid() {
		t.Error("IsValid misbehaves")
	}
}

func TestTokenStrings(t *testing.T) {
	toks, _ := Tokenize("x 5 +")
	if toks[0].String() != "identifier(x)" {
		t.Errorf("ident string = %q", toks[0].String())
	}
	if toks[1].String() != "integer(5)" {
		t.Errorf("int string = %q", toks[1].String())
	}
	if toks[2].String() != "+" {
		t.Errorf("op string = %q", toks[2].String())
	}
}

func TestWholeProgramLexes(t *testing.T) {
	src := `
class Main {
  static var xs: int[];
  init { xs = new int[4]; }
  static func main() {
    atomic { xs[0]++; }
    synchronized (Main.lock()) { }
  }
  static func lock(): Main { return null; }
}`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) < 40 {
		t.Errorf("suspiciously few tokens: %d", len(toks))
	}
}
