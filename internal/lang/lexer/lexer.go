// Package lexer tokenizes TJ source text.
package lexer

import (
	"fmt"
	"strconv"

	"repro/internal/lang/token"
)

// Error is a lexical error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans TJ source.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New creates a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the whole input, returning the token stream terminated by
// an EOF token.
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() token.Pos { return token.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (token.Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isLetter(c):
		start := lx.off
		for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := token.Keywords[text]; ok {
			return token.Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return token.Token{Kind: token.Ident, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return token.Token{}, &Error{Pos: pos, Msg: "integer literal out of range: " + text}
		}
		return token.Token{Kind: token.Int, Text: text, Val: v, Pos: pos}, nil
	}
	lx.advance()
	mk := func(k token.Kind) (token.Token, error) {
		return token.Token{Kind: k, Pos: pos}, nil
	}
	two := func(next byte, with, without token.Kind) (token.Token, error) {
		if lx.peek() == next {
			lx.advance()
			return mk(with)
		}
		return mk(without)
	}
	switch c {
	case '(':
		return mk(token.LParen)
	case ')':
		return mk(token.RParen)
	case '{':
		return mk(token.LBrace)
	case '}':
		return mk(token.RBrace)
	case '[':
		return mk(token.LBracket)
	case ']':
		return mk(token.RBracket)
	case ';':
		return mk(token.Semicolon)
	case ':':
		return mk(token.Colon)
	case ',':
		return mk(token.Comma)
	case '.':
		return mk(token.Dot)
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return mk(token.Inc)
		}
		return two('=', token.PlusAssign, token.Plus)
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return mk(token.Dec)
		}
		return two('=', token.MinusAssign, token.Minus)
	case '*':
		return mk(token.Star)
	case '/':
		return mk(token.Slash)
	case '%':
		return mk(token.Percent)
	case '=':
		return two('=', token.Eq, token.Assign)
	case '!':
		return two('=', token.Ne, token.Not)
	case '<':
		return two('=', token.Le, token.Lt)
	case '>':
		return two('=', token.Ge, token.Gt)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return mk(token.AndAnd)
		}
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return mk(token.OrOr)
		}
	}
	return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
}
