package types

import (
	"strings"
	"testing"

	"repro/internal/lang/parser"
)

func check(t *testing.T, src string) (*Program, error) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(p)
}

func checkOK(t *testing.T, src string) *Program {
	t.Helper()
	tp, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return tp
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error mentioning %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err.Error(), wantSub)
	}
}

const mainStub = `class Main { static func main() { } }`

func TestFieldLayoutAndInheritance(t *testing.T) {
	tp := checkOK(t, `
class A { var x: int; var link: A; }
class B extends A { var y: int; }
`+mainStub)
	b := tp.ClassByName["B"]
	if len(b.Fields) != 3 {
		t.Fatalf("B fields = %d", len(b.Fields))
	}
	if f := b.FieldByName("x"); f == nil || f.Slot != 0 || f.Owner.Name != "A" {
		t.Errorf("inherited field x = %+v", f)
	}
	if f := b.FieldByName("y"); f == nil || f.Slot != 2 {
		t.Errorf("field y = %+v", f)
	}
	if !b.IsSubclassOf(tp.ClassByName["A"]) {
		t.Error("subclass relation lost")
	}
}

func TestVTableOverride(t *testing.T) {
	tp := checkOK(t, `
class A {
  func m(): int { return 1; }
  func n(): int { return 2; }
}
class B extends A {
  func m(): int { return 3; }
}
`+mainStub)
	a, b := tp.ClassByName["A"], tp.ClassByName["B"]
	if len(a.VTable) != 2 || len(b.VTable) != 2 {
		t.Fatalf("vtable sizes %d/%d", len(a.VTable), len(b.VTable))
	}
	am, bm := a.MethodByName("m"), b.MethodByName("m")
	if am.VIndex != bm.VIndex {
		t.Errorf("override got different vtable slot: %d vs %d", am.VIndex, bm.VIndex)
	}
	if b.VTable[bm.VIndex] != bm || a.VTable[am.VIndex] != am {
		t.Error("vtable entries wrong")
	}
	if b.MethodByName("n").Owner != a {
		t.Error("inherited method lost")
	}
}

func TestMainRequired(t *testing.T) {
	checkErr(t, `class A { }`, "class Main")
	checkErr(t, `class Main { func main() { } }`, "static func main")
	checkErr(t, `class Main { static func main(x: int) { } }`, "static func main")
}

func TestTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class Main { static func main() { var x = 1 + true; } }`, "arithmetic requires ints"},
		{`class Main { static func main() { if (1) { } } }`, "must be bool"},
		{`class Main { static func main() { while (2) { } } }`, "must be bool"},
		{`class Main { static func main() { var x = true && 1 == 1 && 2; } }`, "requires bools"},
		{`class Main { static func main() { var x: bool = 3; } }`, "cannot assign"},
		{`class Main { static func main() { var x = null; } }`, "cannot infer"},
		{`class Main { static func main() { var x = y; } }`, "undefined: y"},
		{`class Main { static func main() { var x = 1; var x = 2; } }`, "duplicate variable"},
		{`class Main { static func main() { return 5; } }`, "returns no value"},
		{`class Main { static func f(): int { return; } static func main() { } }`, "missing return value"},
		{`class Main { static func main() { retry; } }`, "retry outside atomic"},
		{`class Main { static func main() { break; } }`, "break outside loop"},
		{`class Main { static func main() { continue; } }`, "continue outside loop"},
		{`class Main { static func main() { this.x = 1; } }`, "this used in a static context"},
		{`class A { var x: int; } class Main { static func main() { var a = new A(); a.y = 1; } }`, "no field y"},
		{`class A { } class Main { static func main() { var a = new A(); a.m(); } }`, "no method m"},
		{`class A { func m() {} } class Main { static func main() { A.m(); } }`, "no static method m"},
		{`class A { static func s() {} } class Main { static func main() { var a = new A(); a.s(); } }`, "through an instance"},
		{`class Main { static func main() { var a = new int[3]; var x: int = a; } }`, "cannot assign"},
		{`class Main { static func main() { var a = new int[3]; a[true] = 1; } }`, "index must be int"},
		{`class Main { static func main() { var x = 1; x[0] = 2; } }`, "indexing non-array"},
		{`class Main { static func main() { synchronized (5) { } } }`, "requires an object"},
		{`class Main { static func main() { atomic { synchronized (Main.o()) { } } } static func o(): Main { return null; } }`, "synchronized inside atomic"},
		{`class Main { static func main() { var x = len(5); } }`, "len takes one array"},
		{`class Main { static func main() { join(5); } }`, "join takes one thread"},
		{`class Main { static func main() { print(null); } }`, "print takes one int or bool"},
		{`class A { func m(x: int) {} } class Main { static func main() { var a = new A(); a.m(true); } }`, "cannot use bool as int"},
		{`class A { func m() {} } class Main { static func main() { var a = new A(); a.m(1); } }`, "expects 0 arguments"},
		{`class Main { static func main() { var t = spawn Main.f(); } static func f(): int { return 1; } }`, "must return void"},
		{`class A extends B { } class B extends A { } class Main { static func main() { } }`, "inheritance cycle"},
		{`class A extends Zed { } class Main { static func main() { } }`, "unknown class"},
		{`class A { var x: int; } class B extends A { var x: int; } class Main { static func main() { } }`, "shadows an inherited field"},
		{`class A { func m(): int { return 1; } } class B extends A { func m(): bool { return true; } } class Main { static func main() { } }`, "different signature"},
		{`class A { static func m() {} } class B extends A { func m() {} } class Main { static func main() { } }`, "static method"},
		{`class A { final var id: int; } class Main { static func main() { var a = new A(); a.id = 5; } }`, "final field"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestSubtypingAssignments(t *testing.T) {
	checkOK(t, `
class A { }
class B extends A { }
class Main {
  static var a: A;
  static func take(x: A) { }
  static func main() {
    var b = new B();
    a = b;                  // subclass to superclass
    Main.take(b);
    var x: A = null;        // null to reference
    a = x;
    if (a == b) { }         // related classes comparable
    if (x == null) { }
  }
}`)
	checkErr(t, `
class A { }
class B extends A { }
class Main {
  static func main() {
    var a = new A();
    var b: B = a;
  }
}`, "cannot assign")
}

func TestFinalWriteInsideOwnerAllowed(t *testing.T) {
	checkOK(t, `
class A {
  final var id: int;
  func setup(v: int) { id = v; }
}
class Main { static func main() { var a = new A(); a.setup(3); } }`)
}

func TestImplicitThisAndStatics(t *testing.T) {
	tp := checkOK(t, `
class C {
  var f: int;
  static var s: int;
  func m(): int {
    f = 1;        // implicit this field
    s = 2;        // own static
    return f + s;
  }
}
`+mainStub)
	c := tp.ClassByName["C"]
	if c.FieldByName("f") == nil || c.StaticByName("s") == nil {
		t.Error("field resolution broken")
	}
}

func TestInheritedStaticVisible(t *testing.T) {
	checkOK(t, `
class A { static var s: int; }
class B extends A {
  func m(): int { return s; }
}
class Main { static func main() { var x = A.s; x = x; } }`)
}

func TestTypeStringAndSig(t *testing.T) {
	tp := checkOK(t, `
class A { func m(x: int, b: A): A { return b; } }
`+mainStub)
	m := tp.ClassByName["A"].MethodByName("m")
	if got := m.Sig(); got != "A.m(int, A): A" {
		t.Errorf("Sig = %q", got)
	}
	arr := &Type{Kind: KArray, Elem: &Type{Kind: KArray, Elem: Int}}
	if arr.String() != "int[][]" {
		t.Errorf("array string = %q", arr.String())
	}
	for _, tt := range []*Type{Int, Bool, Thread, Null, Void} {
		if tt.String() == "?" {
			t.Error("missing string for scalar type")
		}
	}
}

func TestInfoPopulated(t *testing.T) {
	tp := checkOK(t, `
class C { var f: int; func m() { f = 1; var l = f; l = l; } }
`+mainStub)
	if len(tp.Info.FieldRefs) == 0 || len(tp.Info.VarRefs) == 0 || len(tp.Info.VarDecls) == 0 {
		t.Error("resolution maps not populated")
	}
	if len(tp.Methods) != 2 {
		t.Errorf("methods = %d", len(tp.Methods))
	}
}
