package types

import (
	"repro/internal/lang/ast"
	"repro/internal/lang/token"
)

// checkBodies type-checks every method body and static initializer.
func (c *checker) checkBodies() error {
	for _, cl := range c.p.Classes {
		for _, m := range cl.Decls {
			if err := c.checkMethod(cl, m); err != nil {
				return err
			}
		}
		for _, init := range cl.Inits {
			if err := c.checkInit(cl, init); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) checkMethod(cl *Class, m *Method) error {
	c.cls, c.method, c.initDecl = cl, m, nil
	c.scopes = []map[string]*VarSym{make(map[string]*VarSym)}
	c.vars = nil
	c.atomic, c.loop = 0, 0
	for i, name := range m.ParamNames {
		if err := c.declare(m.Decl.Params[i].Pos, name, m.Params[i]); err != nil {
			return err
		}
	}
	if err := c.checkBlock(m.Decl.Body); err != nil {
		return err
	}
	c.p.Info.MethodVars[m.Decl] = c.vars
	return nil
}

func (c *checker) checkInit(cl *Class, init *ast.InitDecl) error {
	c.cls, c.method, c.initDecl = cl, nil, init
	c.scopes = []map[string]*VarSym{make(map[string]*VarSym)}
	c.vars = nil
	c.atomic, c.loop = 0, 0
	if err := c.checkBlock(init.Body); err != nil {
		return err
	}
	c.p.Info.MethodVars[init] = c.vars
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*VarSym)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos token.Pos, name string, t *Type) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(pos, "duplicate variable %s", name)
	}
	v := &VarSym{Name: name, Type: t, Index: len(c.vars)}
	c.vars = append(c.vars, v)
	top[name] = v
	return nil
}

func (c *checker) lookupVar(name string) *VarSym {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (c *checker) inStaticContext() bool {
	return c.method == nil || c.method.Static
}

func (c *checker) checkBlock(b *ast.BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return c.checkBlock(st)
	case *ast.VarStmt:
		it, err := c.checkExpr(st.Init)
		if err != nil {
			return err
		}
		var vt *Type
		if st.Type != nil {
			vt, err = c.resolveType(st.Type)
			if err != nil {
				return err
			}
			if !it.AssignableTo(vt) {
				return errf(st.Pos, "cannot assign %s to variable of type %s", it, vt)
			}
		} else {
			if it.Kind == KNull {
				return errf(st.Pos, "cannot infer type from null; annotate the variable")
			}
			if it.Kind == KVoid {
				return errf(st.Pos, "cannot assign void result")
			}
			vt = it
		}
		if err := c.declare(st.Pos, st.Name, vt); err != nil {
			return err
		}
		c.p.Info.VarDecls[st] = c.lookupVar(st.Name)
		return nil
	case *ast.AssignStmt:
		return c.checkAssign(st)
	case *ast.IfStmt:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != KBool {
			return errf(st.Pos, "if condition must be bool, got %s", ct)
		}
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *ast.WhileStmt:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != KBool {
			return errf(st.Pos, "while condition must be bool, got %s", ct)
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body)
	case *ast.ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			ct, err := c.checkExpr(st.Cond)
			if err != nil {
				return err
			}
			if ct.Kind != KBool {
				return errf(st.Pos, "for condition must be bool, got %s", ct)
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body)
	case *ast.ReturnStmt:
		if c.method == nil {
			return errf(st.Pos, "return not allowed in init block")
		}
		if st.Value == nil {
			if c.method.Ret != Void {
				return errf(st.Pos, "missing return value (want %s)", c.method.Ret)
			}
			return nil
		}
		vt, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if c.method.Ret == Void {
			return errf(st.Pos, "method returns no value")
		}
		if !vt.AssignableTo(c.method.Ret) {
			return errf(st.Pos, "cannot return %s (want %s)", vt, c.method.Ret)
		}
		return nil
	case *ast.AtomicStmt:
		c.atomic++
		defer func() { c.atomic-- }()
		return c.checkBlock(st.Body)
	case *ast.SyncStmt:
		if c.atomic > 0 {
			return errf(st.Pos, "synchronized inside atomic is not supported (monitors cannot roll back)")
		}
		lt, err := c.checkExpr(st.Lock)
		if err != nil {
			return err
		}
		if !lt.IsRef() {
			return errf(st.Pos, "synchronized requires an object, got %s", lt)
		}
		return c.checkBlock(st.Body)
	case *ast.RetryStmt:
		if c.atomic == 0 {
			return errf(st.Pos, "retry outside atomic block")
		}
		return nil
	case *ast.BreakStmt:
		if c.loop == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *ast.ContinueStmt:
		if c.loop == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ast.ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	}
	return errf(token.Pos{}, "unhandled statement %T", s)
}

func (c *checker) checkAssign(st *ast.AssignStmt) error {
	lt, err := c.checkLValue(st.LHS)
	if err != nil {
		return err
	}
	if st.Op == token.Inc || st.Op == token.Dec {
		if lt.Kind != KInt {
			return errf(st.Pos, "%v requires int operand, got %s", st.Op, lt)
		}
		return nil
	}
	rt, err := c.checkExpr(st.RHS)
	if err != nil {
		return err
	}
	if st.Op == token.PlusAssign || st.Op == token.MinusAssign {
		if lt.Kind != KInt || rt.Kind != KInt {
			return errf(st.Pos, "%v requires int operands", st.Op)
		}
		return nil
	}
	if !rt.AssignableTo(lt) {
		return errf(st.Pos, "cannot assign %s to %s", rt, lt)
	}
	return nil
}

// checkLValue checks an assignable expression and enforces final-field
// rules: final fields may only be written by the declaring class's own
// methods or initializers (the constructor discipline that lets the JIT
// elide barriers on final-field reads).
func (c *checker) checkLValue(e ast.Expr) (*Type, error) {
	t, err := c.checkExpr(e)
	if err != nil {
		return nil, err
	}
	switch lv := e.(type) {
	case *ast.Ident:
		if c.p.Info.VarRefs[lv] != nil {
			return t, nil
		}
		if f := c.p.Info.FieldRefs[lv]; f != nil {
			return t, c.checkFinalWrite(lv.Pos, f)
		}
		return nil, errf(lv.Pos, "%s is not assignable", lv.Name)
	case *ast.FieldExpr:
		if f := c.p.Info.FieldRefs[lv]; f != nil {
			return t, c.checkFinalWrite(lv.Pos, f)
		}
		return nil, errf(lv.Pos, "field %s is not assignable", lv.Name)
	case *ast.IndexExpr:
		return t, nil
	}
	return nil, errf(e.Position(), "expression is not assignable")
}

func (c *checker) checkFinalWrite(pos token.Pos, f *Field) error {
	if f.Final && f.Owner != c.cls {
		return errf(pos, "cannot assign to final field %s.%s outside its class", f.Owner.Name, f.Name)
	}
	return nil
}

func (c *checker) setType(e ast.Expr, t *Type) *Type {
	c.p.Info.ExprTypes[e] = t
	return t
}

func (c *checker) checkExpr(e ast.Expr) (*Type, error) {
	switch ex := e.(type) {
	case *ast.IntLit:
		return c.setType(e, Int), nil
	case *ast.BoolLit:
		return c.setType(e, Bool), nil
	case *ast.NullLit:
		return c.setType(e, Null), nil
	case *ast.ThisExpr:
		if c.inStaticContext() {
			return nil, errf(ex.Pos, "this used in a static context")
		}
		return c.setType(e, &Type{Kind: KClass, Class: c.cls}), nil
	case *ast.Ident:
		return c.checkIdent(ex)
	case *ast.UnaryExpr:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case token.Minus:
			if xt.Kind != KInt {
				return nil, errf(ex.Pos, "unary - requires int, got %s", xt)
			}
			return c.setType(e, Int), nil
		case token.Not:
			if xt.Kind != KBool {
				return nil, errf(ex.Pos, "! requires bool, got %s", xt)
			}
			return c.setType(e, Bool), nil
		}
		return nil, errf(ex.Pos, "bad unary operator")
	case *ast.BinaryExpr:
		return c.checkBinary(ex)
	case *ast.FieldExpr:
		return c.checkFieldExpr(ex)
	case *ast.IndexExpr:
		at, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if at.Kind != KArray {
			return nil, errf(ex.Pos, "indexing non-array %s", at)
		}
		it, err := c.checkExpr(ex.Idx)
		if err != nil {
			return nil, err
		}
		if it.Kind != KInt {
			return nil, errf(ex.Pos, "array index must be int, got %s", it)
		}
		return c.setType(e, at.Elem), nil
	case *ast.CallExpr:
		return c.checkCall(ex)
	case *ast.SpawnExpr:
		if _, err := c.checkCall(ex.Call); err != nil {
			return nil, err
		}
		tgt := c.p.Info.CallTargets[ex.Call]
		if tgt.Method.Ret != Void {
			return nil, errf(ex.Pos, "spawned method must return void")
		}
		return c.setType(e, Thread), nil
	case *ast.NewExpr:
		cl := c.p.ClassByName[ex.Name]
		if cl == nil {
			return nil, errf(ex.Pos, "unknown class %s", ex.Name)
		}
		c.p.Info.NewClasses[ex] = cl
		return c.setType(e, &Type{Kind: KClass, Class: cl}), nil
	case *ast.NewArrayExpr:
		elem, err := c.resolveType(ex.Elem)
		if err != nil {
			return nil, err
		}
		lt, err := c.checkExpr(ex.Len)
		if err != nil {
			return nil, err
		}
		if lt.Kind != KInt {
			return nil, errf(ex.Pos, "array length must be int, got %s", lt)
		}
		return c.setType(e, &Type{Kind: KArray, Elem: elem}), nil
	case *ast.BuiltinExpr:
		return c.checkBuiltin(ex)
	}
	return nil, errf(e.Position(), "unhandled expression %T", e)
}

func (c *checker) checkIdent(id *ast.Ident) (*Type, error) {
	if v := c.lookupVar(id.Name); v != nil {
		c.p.Info.VarRefs[id] = v
		return c.setType(id, v.Type), nil
	}
	// Implicit this-field or current-class static.
	if !c.inStaticContext() {
		if f := c.cls.FieldByName(id.Name); f != nil {
			c.p.Info.FieldRefs[id] = f
			return c.setType(id, f.Type), nil
		}
	}
	for cl := c.cls; cl != nil; cl = cl.Super {
		if f := cl.StaticByName(id.Name); f != nil {
			c.p.Info.FieldRefs[id] = f
			return c.setType(id, f.Type), nil
		}
	}
	if cl := c.p.ClassByName[id.Name]; cl != nil {
		// Class reference: only valid as a qualifier; give it a marker type.
		c.p.Info.ClassRefs[id] = cl
		return c.setType(id, Void), nil
	}
	return nil, errf(id.Pos, "undefined: %s", id.Name)
}

func (c *checker) checkBinary(ex *ast.BinaryExpr) (*Type, error) {
	lt, err := c.checkExpr(ex.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExpr(ex.R)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case token.Plus, token.Minus, token.Star, token.Slash, token.Percent:
		if lt.Kind != KInt || rt.Kind != KInt {
			return nil, errf(ex.Pos, "arithmetic requires ints, got %s and %s", lt, rt)
		}
		return c.setType(ex, Int), nil
	case token.Lt, token.Le, token.Gt, token.Ge:
		if lt.Kind != KInt || rt.Kind != KInt {
			return nil, errf(ex.Pos, "comparison requires ints, got %s and %s", lt, rt)
		}
		return c.setType(ex, Bool), nil
	case token.Eq, token.Ne:
		ok := lt.Equal(rt) ||
			(lt.Kind == KNull && rt.IsRef()) || (rt.Kind == KNull && lt.IsRef()) ||
			(lt.Kind == KNull && rt.Kind == KNull) ||
			(lt.Kind == KClass && rt.Kind == KClass &&
				(lt.Class.IsSubclassOf(rt.Class) || rt.Class.IsSubclassOf(lt.Class)))
		if !ok {
			return nil, errf(ex.Pos, "cannot compare %s and %s", lt, rt)
		}
		return c.setType(ex, Bool), nil
	case token.AndAnd, token.OrOr:
		if lt.Kind != KBool || rt.Kind != KBool {
			return nil, errf(ex.Pos, "logical operator requires bools, got %s and %s", lt, rt)
		}
		return c.setType(ex, Bool), nil
	}
	return nil, errf(ex.Pos, "bad binary operator %v", ex.Op)
}

func (c *checker) checkFieldExpr(ex *ast.FieldExpr) (*Type, error) {
	// ClassName.field → static access.
	if id, ok := ex.X.(*ast.Ident); ok && c.lookupVar(id.Name) == nil {
		if cl := c.p.ClassByName[id.Name]; cl != nil {
			c.p.Info.ClassRefs[id] = cl
			c.setType(id, Void)
			for s := cl; s != nil; s = s.Super {
				if f := s.StaticByName(ex.Name); f != nil {
					c.p.Info.FieldRefs[ex] = f
					return c.setType(ex, f.Type), nil
				}
			}
			return nil, errf(ex.Pos, "class %s has no static field %s", cl.Name, ex.Name)
		}
	}
	xt, err := c.checkExpr(ex.X)
	if err != nil {
		return nil, err
	}
	if xt.Kind != KClass {
		return nil, errf(ex.Pos, "field access on non-object %s", xt)
	}
	f := xt.Class.FieldByName(ex.Name)
	if f == nil {
		return nil, errf(ex.Pos, "class %s has no field %s", xt.Class.Name, ex.Name)
	}
	c.p.Info.FieldRefs[ex] = f
	return c.setType(ex, f.Type), nil
}

func (c *checker) checkCall(ex *ast.CallExpr) (*Type, error) {
	var m *Method
	tgt := &CallTarget{}
	switch fun := ex.Fun.(type) {
	case *ast.Ident:
		// Unqualified: method of the current class.
		m = c.cls.MethodByName(fun.Name)
		if m == nil {
			return nil, errf(ex.Pos, "class %s has no method %s", c.cls.Name, fun.Name)
		}
		if !m.Static {
			if c.inStaticContext() {
				return nil, errf(ex.Pos, "instance method %s called from static context", m.Sig())
			}
			tgt.Virtual = true
			tgt.RecvImplicit = true
		}
	case *ast.FieldExpr:
		// ClassName.m(...) → static call; expr.m(...) → virtual call.
		if id, ok := fun.X.(*ast.Ident); ok && c.lookupVar(id.Name) == nil {
			if cl := c.p.ClassByName[id.Name]; cl != nil {
				c.p.Info.ClassRefs[id] = cl
				c.setType(id, Void)
				m = cl.MethodByName(fun.Name)
				if m == nil || !m.Static {
					return nil, errf(ex.Pos, "class %s has no static method %s", cl.Name, fun.Name)
				}
				break
			}
		}
		xt, err := c.checkExpr(fun.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != KClass {
			return nil, errf(ex.Pos, "method call on non-object %s", xt)
		}
		m = xt.Class.MethodByName(fun.Name)
		if m == nil {
			return nil, errf(ex.Pos, "class %s has no method %s", xt.Class.Name, fun.Name)
		}
		if m.Static {
			return nil, errf(ex.Pos, "static method %s called through an instance", m.Sig())
		}
		tgt.Virtual = true
	default:
		return nil, errf(ex.Pos, "expression is not callable")
	}
	if len(ex.Args) != len(m.Params) {
		return nil, errf(ex.Pos, "%s expects %d arguments, got %d", m.Sig(), len(m.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		if !at.AssignableTo(m.Params[i]) {
			return nil, errf(a.Position(), "argument %d: cannot use %s as %s", i+1, at, m.Params[i])
		}
	}
	tgt.Method = m
	c.p.Info.CallTargets[ex] = tgt
	return c.setType(ex, m.Ret), nil
}

func (c *checker) checkBuiltin(ex *ast.BuiltinExpr) (*Type, error) {
	argTypes := make([]*Type, len(ex.Args))
	for i, a := range ex.Args {
		t, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		argTypes[i] = t
	}
	switch ex.Name {
	case "print":
		if len(ex.Args) != 1 || (argTypes[0].Kind != KInt && argTypes[0].Kind != KBool) {
			return nil, errf(ex.Pos, "print takes one int or bool argument")
		}
		return c.setType(ex, Void), nil
	case "rand":
		if len(ex.Args) != 1 || argTypes[0].Kind != KInt {
			return nil, errf(ex.Pos, "rand takes one int argument")
		}
		return c.setType(ex, Int), nil
	case "arg":
		if len(ex.Args) != 1 || argTypes[0].Kind != KInt {
			return nil, errf(ex.Pos, "arg takes one int argument")
		}
		return c.setType(ex, Int), nil
	case "len":
		if len(ex.Args) != 1 || argTypes[0].Kind != KArray {
			return nil, errf(ex.Pos, "len takes one array argument")
		}
		return c.setType(ex, Int), nil
	case "join":
		if len(ex.Args) != 1 || argTypes[0].Kind != KThread {
			return nil, errf(ex.Pos, "join takes one thread argument")
		}
		return c.setType(ex, Void), nil
	}
	return nil, errf(ex.Pos, "unknown builtin %s", ex.Name)
}
