// Package types implements name resolution and type checking for TJ,
// producing the symbol information (classes, field slots, virtual-method
// tables, call targets) that IR lowering consumes.
package types

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
)

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Kind enumerates semantic type kinds.
type Kind uint8

// Semantic type kinds. KNull is the type of the null literal, assignable to
// any reference type. KVoid is the absent return type.
const (
	KInt Kind = iota
	KBool
	KThread
	KClass
	KArray
	KNull
	KVoid
)

// Type is a semantic type. Types are interned enough for == comparison on
// scalars; use Equal otherwise.
type Type struct {
	Kind  Kind
	Class *Class // KClass
	Elem  *Type  // KArray
}

// Shared scalar types.
var (
	Int    = &Type{Kind: KInt}
	Bool   = &Type{Kind: KBool}
	Thread = &Type{Kind: KThread}
	Null   = &Type{Kind: KNull}
	Void   = &Type{Kind: KVoid}
)

// IsRef reports whether values of t are heap references (occupy reference
// slots and participate in escape analysis and publication).
func (t *Type) IsRef() bool { return t.Kind == KClass || t.Kind == KArray }

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KClass:
		return t.Class == u.Class
	case KArray:
		return t.Elem.Equal(u.Elem)
	default:
		return true
	}
}

func (t *Type) String() string {
	switch t.Kind {
	case KInt:
		return "int"
	case KBool:
		return "bool"
	case KThread:
		return "thread"
	case KClass:
		return t.Class.Name
	case KArray:
		return t.Elem.String() + "[]"
	case KNull:
		return "null"
	case KVoid:
		return "void"
	}
	return "?"
}

// AssignableTo reports whether a value of type t can be assigned to a
// location of type u: identical types, null to any reference, or a subclass
// to a superclass.
func (t *Type) AssignableTo(u *Type) bool {
	if t.Equal(u) {
		return true
	}
	if t.Kind == KNull && u.IsRef() {
		return true
	}
	if t.Kind == KClass && u.Kind == KClass {
		for c := t.Class; c != nil; c = c.Super {
			if c == u.Class {
				return true
			}
		}
	}
	return false
}

// Field is a resolved field symbol.
type Field struct {
	Name     string
	Owner    *Class // declaring class
	Slot     int    // slot index in the object (instance) or statics holder
	Type     *Type
	Static   bool
	Final    bool
	Volatile bool
}

// Method is a resolved method symbol.
type Method struct {
	Name       string
	Owner      *Class
	Static     bool
	Params     []*Type
	ParamNames []string
	Ret        *Type // Void for none
	Decl       *ast.MethodDecl
	VIndex     int // vtable index for instance methods, -1 for static
}

// Sig returns a printable signature.
func (m *Method) Sig() string {
	s := m.Owner.Name + "." + m.Name + "("
	for i, p := range m.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + "): " + m.Ret.String()
}

// Class is a resolved class symbol.
type Class struct {
	Name  string
	ID    int
	Super *Class
	Decl  *ast.ClassDecl

	Fields  []*Field // instance fields in slot order, inherited first
	Statics []*Field // static fields in slot order

	fieldsByName  map[string]*Field
	staticsByName map[string]*Field
	methodsByName map[string]*Method // declared or inherited

	VTable []*Method // virtual dispatch table
	Decls  []*Method // methods declared in this class (not inherited)
	Inits  []*ast.InitDecl
}

// FieldByName resolves an instance field, including inherited ones.
func (c *Class) FieldByName(name string) *Field { return c.fieldsByName[name] }

// StaticByName resolves a static field declared in this class.
func (c *Class) StaticByName(name string) *Field { return c.staticsByName[name] }

// MethodByName resolves a method, including inherited ones.
func (c *Class) MethodByName(name string) *Method { return c.methodsByName[name] }

// IsSubclassOf reports whether c is t or derives from t.
func (c *Class) IsSubclassOf(t *Class) bool {
	for s := c; s != nil; s = s.Super {
		if s == t {
			return true
		}
	}
	return false
}

// VarSym is a local variable or parameter symbol.
type VarSym struct {
	Name  string
	Type  *Type
	Index int // dense per-method local index; parameters first
}

// CallTarget describes a resolved call site.
type CallTarget struct {
	Method  *Method
	Virtual bool // dispatch through the vtable on the receiver's class
	// Recv is set for instance calls: the receiver expression, or nil for
	// an implicit this.
	RecvImplicit bool
}

// Info carries all resolution results, keyed by AST node.
type Info struct {
	ExprTypes map[ast.Expr]*Type
	// FieldRefs resolves FieldExpr nodes and Idents that name fields.
	FieldRefs map[ast.Expr]*Field
	// VarRefs resolves Idents that name locals or parameters.
	VarRefs map[ast.Expr]*VarSym
	// VarDecls resolves var statements to the symbol they introduce.
	VarDecls map[*ast.VarStmt]*VarSym
	// ClassRefs marks Ident nodes that name a class (static qualifiers).
	ClassRefs map[ast.Expr]*Class
	// CallTargets resolves calls.
	CallTargets map[*ast.CallExpr]*CallTarget
	// NewClasses resolves new C() expressions.
	NewClasses map[*ast.NewExpr]*Class
	// MethodVars lists each method's local symbols (params first) keyed by
	// the method declaration; init blocks key by the InitDecl.
	MethodVars map[any][]*VarSym
}

// Program is a fully resolved TJ program.
type Program struct {
	Classes     []*Class
	ClassByName map[string]*Class
	Methods     []*Method // all declared methods across classes
	Main        *Method
	Info        *Info
	AST         *ast.Program
}

// Check resolves and type-checks a parsed program. The program must declare
// a class Main with a static method main().
func Check(prog *ast.Program) (*Program, error) {
	c := &checker{
		p: &Program{
			ClassByName: make(map[string]*Class),
			AST:         prog,
			Info: &Info{
				ExprTypes:   make(map[ast.Expr]*Type),
				FieldRefs:   make(map[ast.Expr]*Field),
				VarRefs:     make(map[ast.Expr]*VarSym),
				VarDecls:    make(map[*ast.VarStmt]*VarSym),
				ClassRefs:   make(map[ast.Expr]*Class),
				CallTargets: make(map[*ast.CallExpr]*CallTarget),
				NewClasses:  make(map[*ast.NewExpr]*Class),
				MethodVars:  make(map[any][]*VarSym),
			},
		},
	}
	if err := c.collect(prog); err != nil {
		return nil, err
	}
	if err := c.checkBodies(); err != nil {
		return nil, err
	}
	main := c.p.ClassByName["Main"]
	if main == nil {
		return nil, errf(token.Pos{Line: 1, Col: 1}, "program must declare class Main")
	}
	mm := main.MethodByName("main")
	if mm == nil || !mm.Static || len(mm.Params) != 0 {
		return nil, errf(main.Decl.Pos, "class Main must declare static func main()")
	}
	c.p.Main = mm
	return c.p, nil
}

type checker struct {
	p *Program

	// current method context
	cls      *Class
	method   *Method // nil inside init blocks
	initDecl *ast.InitDecl
	scopes   []map[string]*VarSym
	vars     []*VarSym
	atomic   int // lexical atomic nesting depth
	loop     int // lexical loop depth
}

// collect builds class symbols, field layouts, and method tables.
func (c *checker) collect(prog *ast.Program) error {
	// Pass 1: class shells.
	for _, cd := range prog.Classes {
		if _, dup := c.p.ClassByName[cd.Name]; dup {
			return errf(cd.Pos, "duplicate class %s", cd.Name)
		}
		cl := &Class{
			Name: cd.Name, Decl: cd, ID: len(c.p.Classes),
			fieldsByName:  make(map[string]*Field),
			staticsByName: make(map[string]*Field),
			methodsByName: make(map[string]*Method),
		}
		c.p.Classes = append(c.p.Classes, cl)
		c.p.ClassByName[cd.Name] = cl
	}
	// Pass 2: superclasses (with cycle detection).
	for _, cl := range c.p.Classes {
		if cl.Decl.Extends == "" {
			continue
		}
		sup := c.p.ClassByName[cl.Decl.Extends]
		if sup == nil {
			return errf(cl.Decl.Pos, "class %s extends unknown class %s", cl.Name, cl.Decl.Extends)
		}
		cl.Super = sup
	}
	for _, cl := range c.p.Classes {
		seen := map[*Class]bool{}
		for s := cl; s != nil; s = s.Super {
			if seen[s] {
				return errf(cl.Decl.Pos, "inheritance cycle involving %s", cl.Name)
			}
			seen[s] = true
		}
	}
	// Pass 3: fields and methods in topological (superclass-first) order.
	done := map[*Class]bool{}
	var layout func(cl *Class) error
	layout = func(cl *Class) error {
		if done[cl] {
			return nil
		}
		if cl.Super != nil {
			if err := layout(cl.Super); err != nil {
				return err
			}
			cl.Fields = append(cl.Fields, cl.Super.Fields...)
			for k, v := range cl.Super.fieldsByName {
				cl.fieldsByName[k] = v
			}
			for k, v := range cl.Super.methodsByName {
				cl.methodsByName[k] = v
			}
			cl.VTable = append(cl.VTable, cl.Super.VTable...)
		}
		for _, fd := range cl.Decl.Fields {
			ft, err := c.resolveType(fd.Type)
			if err != nil {
				return err
			}
			if fd.Static {
				if cl.staticsByName[fd.Name] != nil {
					return errf(fd.Pos, "duplicate static field %s.%s", cl.Name, fd.Name)
				}
				f := &Field{Name: fd.Name, Owner: cl, Slot: len(cl.Statics),
					Type: ft, Static: true, Final: fd.Final, Volatile: fd.Volatile}
				cl.Statics = append(cl.Statics, f)
				cl.staticsByName[fd.Name] = f
				continue
			}
			if cl.fieldsByName[fd.Name] != nil {
				return errf(fd.Pos, "field %s.%s duplicates or shadows an inherited field", cl.Name, fd.Name)
			}
			f := &Field{Name: fd.Name, Owner: cl, Slot: len(cl.Fields),
				Type: ft, Final: fd.Final, Volatile: fd.Volatile}
			cl.Fields = append(cl.Fields, f)
			cl.fieldsByName[fd.Name] = f
		}
		declared := map[string]bool{}
		for _, md := range cl.Decl.Methods {
			if declared[md.Name] {
				return errf(md.Pos, "duplicate method %s.%s", cl.Name, md.Name)
			}
			declared[md.Name] = true
			m := &Method{Name: md.Name, Owner: cl, Static: md.Static, Decl: md, Ret: Void, VIndex: -1}
			for _, p := range md.Params {
				pt, err := c.resolveType(p.Type)
				if err != nil {
					return err
				}
				m.Params = append(m.Params, pt)
				m.ParamNames = append(m.ParamNames, p.Name)
			}
			if md.Ret != nil {
				rt, err := c.resolveType(md.Ret)
				if err != nil {
					return err
				}
				m.Ret = rt
			}
			if prev := cl.methodsByName[md.Name]; prev != nil && prev.Owner != cl {
				// Override: must match signature and be instance-to-instance.
				if prev.Static || md.Static {
					return errf(md.Pos, "%s.%s cannot override/hide static method %s", cl.Name, md.Name, prev.Sig())
				}
				if !sameSignature(prev, m) {
					return errf(md.Pos, "override %s has different signature than %s", m.Sig(), prev.Sig())
				}
				m.VIndex = prev.VIndex
				cl.VTable[m.VIndex] = m
			} else if !md.Static {
				m.VIndex = len(cl.VTable)
				cl.VTable = append(cl.VTable, m)
			}
			cl.methodsByName[md.Name] = m
			cl.Decls = append(cl.Decls, m)
			c.p.Methods = append(c.p.Methods, m)
		}
		cl.Inits = cl.Decl.Inits
		done[cl] = true
		return nil
	}
	for _, cl := range c.p.Classes {
		if err := layout(cl); err != nil {
			return err
		}
	}
	return nil
}

func sameSignature(a, b *Method) bool {
	if len(a.Params) != len(b.Params) || !a.Ret.Equal(b.Ret) {
		return false
	}
	for i := range a.Params {
		if !a.Params[i].Equal(b.Params[i]) {
			return false
		}
	}
	return true
}

func (c *checker) resolveType(t *ast.TypeExpr) (*Type, error) {
	switch t.Kind {
	case ast.KInt:
		return Int, nil
	case ast.KBool:
		return Bool, nil
	case ast.KThread:
		return Thread, nil
	case ast.KClass:
		cl := c.p.ClassByName[t.Name]
		if cl == nil {
			return nil, errf(t.Pos, "unknown type %s", t.Name)
		}
		return &Type{Kind: KClass, Class: cl}, nil
	case ast.KArray:
		elem, err := c.resolveType(t.Elem)
		if err != nil {
			return nil, err
		}
		return &Type{Kind: KArray, Elem: elem}, nil
	}
	return nil, errf(t.Pos, "bad type expression")
}
