// Package parser parses TJ source into an AST.
package parser

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/lexer"
	"repro/internal/lang/token"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// Parse tokenizes and parses a TJ compilation unit.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token.Token
	pos  int
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) next() token.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return token.Token{}, &Error{Pos: p.cur().Pos,
		Msg: fmt.Sprintf("expected %v, found %v", k, p.cur())}
}

func (p *parser) parseProgram() (*ast.Program, error) {
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		c, err := p.parseClass()
		if err != nil {
			return nil, err
		}
		prog.Classes = append(prog.Classes, c)
	}
	return prog, nil
}

func (p *parser) parseClass() (*ast.ClassDecl, error) {
	kw, err := p.expect(token.KwClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	c := &ast.ClassDecl{Pos: kw.Pos, Name: name.Text}
	if p.accept(token.KwExtends) {
		sup, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		c.Extends = sup.Text
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	for !p.accept(token.RBrace) {
		if p.at(token.EOF) {
			return nil, &Error{Pos: p.cur().Pos, Msg: "unexpected EOF in class body"}
		}
		if err := p.parseMember(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (p *parser) parseMember(c *ast.ClassDecl) error {
	pos := p.cur().Pos
	static := p.accept(token.KwStatic)
	final := p.accept(token.KwFinal)
	volatile := p.accept(token.KwVolatile)
	switch {
	case p.at(token.KwVar):
		p.next()
		name, err := p.expect(token.Ident)
		if err != nil {
			return err
		}
		if _, err := p.expect(token.Colon); err != nil {
			return err
		}
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return err
		}
		c.Fields = append(c.Fields, &ast.FieldDecl{
			Pos: pos, Name: name.Text, Type: typ,
			Static: static, Final: final, Volatile: volatile,
		})
		return nil
	case p.at(token.KwFunc):
		if final || volatile {
			return &Error{Pos: pos, Msg: "final/volatile apply to fields only"}
		}
		p.next()
		name, err := p.expect(token.Ident)
		if err != nil {
			return err
		}
		m := &ast.MethodDecl{Pos: pos, Name: name.Text, Static: static}
		if _, err := p.expect(token.LParen); err != nil {
			return err
		}
		for !p.accept(token.RParen) {
			if len(m.Params) > 0 {
				if _, err := p.expect(token.Comma); err != nil {
					return err
				}
			}
			pn, err := p.expect(token.Ident)
			if err != nil {
				return err
			}
			if _, err := p.expect(token.Colon); err != nil {
				return err
			}
			pt, err := p.parseType()
			if err != nil {
				return err
			}
			m.Params = append(m.Params, &ast.Param{Pos: pn.Pos, Name: pn.Text, Type: pt})
		}
		if p.accept(token.Colon) {
			rt, err := p.parseType()
			if err != nil {
				return err
			}
			m.Ret = rt
		}
		body, err := p.parseBlock()
		if err != nil {
			return err
		}
		m.Body = body
		c.Methods = append(c.Methods, m)
		return nil
	case p.at(token.KwInit):
		if static || final || volatile {
			return &Error{Pos: pos, Msg: "init blocks take no modifiers"}
		}
		p.next()
		body, err := p.parseBlock()
		if err != nil {
			return err
		}
		c.Inits = append(c.Inits, &ast.InitDecl{Pos: pos, Body: body})
		return nil
	}
	return &Error{Pos: pos, Msg: fmt.Sprintf("expected class member, found %v", p.cur())}
}

func (p *parser) parseType() (*ast.TypeExpr, error) {
	pos := p.cur().Pos
	var t *ast.TypeExpr
	switch {
	case p.accept(token.KwInt):
		t = &ast.TypeExpr{Pos: pos, Kind: ast.KInt}
	case p.accept(token.KwBool):
		t = &ast.TypeExpr{Pos: pos, Kind: ast.KBool}
	case p.accept(token.KwThread):
		t = &ast.TypeExpr{Pos: pos, Kind: ast.KThread}
	case p.at(token.Ident):
		name := p.next()
		t = &ast.TypeExpr{Pos: pos, Kind: ast.KClass, Name: name.Text}
	default:
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("expected type, found %v", p.cur())}
	}
	for p.at(token.LBracket) && p.toks[p.pos+1].Kind == token.RBracket {
		p.next()
		p.next()
		t = &ast.TypeExpr{Pos: pos, Kind: ast.KArray, Elem: t}
	}
	return t, nil
}

func (p *parser) parseBlock() (*ast.BlockStmt, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	b := &ast.BlockStmt{Pos: lb.Pos}
	for !p.accept(token.RBrace) {
		if p.at(token.EOF) {
			return nil, &Error{Pos: p.cur().Pos, Msg: "unexpected EOF in block"}
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.KwVar:
		return p.parseVarStmt(true)
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ast.WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		p.next()
		var val ast.Expr
		if !p.at(token.Semicolon) {
			var err error
			val, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ReturnStmt{Pos: pos, Value: val}, nil
	case token.KwAtomic:
		p.next()
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ast.AtomicStmt{Pos: pos, Body: body}, nil
	case token.KwSynchronized:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		lock, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ast.SyncStmt{Pos: pos, Lock: lock, Body: body}, nil
	case token.KwRetry:
		p.next()
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.RetryStmt{Pos: pos}, nil
	case token.KwBreak:
		p.next()
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.BreakStmt{Pos: pos}, nil
	case token.KwContinue:
		p.next()
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ContinueStmt{Pos: pos}, nil
	}
	// Assignment or expression statement.
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses an assignment or expression statement without the
// trailing semicolon (shared by for-headers).
func (p *parser) parseSimpleStmt() (ast.Stmt, error) {
	pos := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case token.Assign, token.PlusAssign, token.MinusAssign:
		op := p.next().Kind
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignStmt{Pos: pos, Op: op, LHS: lhs, RHS: rhs}, nil
	case token.Inc, token.Dec:
		op := p.next().Kind
		return &ast.AssignStmt{Pos: pos, Op: op, LHS: lhs}, nil
	}
	return &ast.ExprStmt{Pos: pos, X: lhs}, nil
}

func (p *parser) parseVarStmt(withSemi bool) (ast.Stmt, error) {
	pos := p.cur().Pos
	p.next() // var
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	var typ *ast.TypeExpr
	if p.accept(token.Colon) {
		typ, err = p.parseType()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if withSemi {
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
	}
	return &ast.VarStmt{Pos: pos, Name: name.Text, Type: typ, Init: init}, nil
}

func (p *parser) parseIf() (ast.Stmt, error) {
	pos := p.cur().Pos
	p.next()
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.accept(token.KwElse) {
		if p.at(token.KwIf) {
			e, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = e
		} else {
			e, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = e
		}
	}
	return st, nil
}

func (p *parser) parseFor() (ast.Stmt, error) {
	pos := p.cur().Pos
	p.next()
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	st := &ast.ForStmt{Pos: pos}
	if !p.at(token.Semicolon) {
		var err error
		if p.at(token.KwVar) {
			st.Init, err = p.parseVarStmt(false)
		} else {
			st.Init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	if !p.at(token.Semicolon) {
		var err error
		st.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	if !p.at(token.RParen) {
		var err error
		st.Post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(token.OrOr) {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Pos: pos, Op: token.OrOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(token.AndAnd) {
		pos := p.next().Pos
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Pos: pos, Op: token.AndAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (ast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		switch k {
		case token.Eq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge:
			pos := p.next().Pos
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = &ast.BinaryExpr{Pos: pos, Op: k, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdd() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(token.Plus) || p.at(token.Minus) {
		op := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(token.Star) || p.at(token.Slash) || p.at(token.Percent) {
		op := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	switch p.cur().Kind {
	case token.Minus, token.Not:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Pos: op.Pos, Op: op.Kind, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case token.Dot:
			pos := p.next().Pos
			name, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			if p.at(token.LParen) {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				x = &ast.CallExpr{Pos: pos,
					Fun:  &ast.FieldExpr{Pos: pos, X: x, Name: name.Text},
					Args: args}
			} else {
				x = &ast.FieldExpr{Pos: pos, X: x, Name: name.Text}
			}
		case token.LBracket:
			pos := p.next().Pos
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			x = &ast.IndexExpr{Pos: pos, X: x, Idx: idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseArgs() ([]ast.Expr, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var args []ast.Expr
	for !p.accept(token.RParen) {
		if len(args) > 0 {
			if _, err := p.expect(token.Comma); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Int:
		p.next()
		return &ast.IntLit{Pos: t.Pos, Val: t.Val}, nil
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{Pos: t.Pos, Val: true}, nil
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{Pos: t.Pos, Val: false}, nil
	case token.KwNull:
		p.next()
		return &ast.NullLit{Pos: t.Pos}, nil
	case token.KwThis:
		p.next()
		return &ast.ThisExpr{Pos: t.Pos}, nil
	case token.LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return x, nil
	case token.KwNew:
		p.next()
		elem, err := p.parseNewType()
		if err != nil {
			return nil, err
		}
		// Array-of-array element types: each "[]" pair (an immediately
		// closed bracket) wraps the element type; the final "[expr]" is the
		// allocation length.
		for p.at(token.LBracket) && p.toks[p.pos+1].Kind == token.RBracket {
			p.next()
			p.next()
			elem = &ast.TypeExpr{Pos: t.Pos, Kind: ast.KArray, Elem: elem}
		}
		if p.at(token.LParen) {
			if elem.Kind != ast.KClass {
				return nil, &Error{Pos: t.Pos, Msg: "only class types can be constructed with new C()"}
			}
			if _, err := p.expect(token.LParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			return &ast.NewExpr{Pos: t.Pos, Name: elem.Name}, nil
		}
		if _, err := p.expect(token.LBracket); err != nil {
			return nil, err
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
		return &ast.NewArrayExpr{Pos: t.Pos, Elem: elem, Len: n}, nil
	case token.KwSpawn:
		p.next()
		x, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return nil, &Error{Pos: t.Pos, Msg: "spawn requires a method call"}
		}
		return &ast.SpawnExpr{Pos: t.Pos, Call: call}, nil
	case token.Ident:
		p.next()
		if p.at(token.LParen) {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if ast.Builtins[t.Text] {
				return &ast.BuiltinExpr{Pos: t.Pos, Name: t.Text, Args: args}, nil
			}
			return &ast.CallExpr{Pos: t.Pos,
				Fun:  &ast.Ident{Pos: t.Pos, Name: t.Text},
				Args: args}, nil
		}
		return &ast.Ident{Pos: t.Pos, Name: t.Text}, nil
	}
	return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected expression, found %v", t)}
}

// parseNewType parses the type after new: a class name or a scalar/array
// element type (without trailing []).
func (p *parser) parseNewType() (*ast.TypeExpr, error) {
	pos := p.cur().Pos
	switch {
	case p.accept(token.KwInt):
		return &ast.TypeExpr{Pos: pos, Kind: ast.KInt}, nil
	case p.accept(token.KwBool):
		return &ast.TypeExpr{Pos: pos, Kind: ast.KBool}, nil
	case p.accept(token.KwThread):
		return &ast.TypeExpr{Pos: pos, Kind: ast.KThread}, nil
	case p.at(token.Ident):
		n := p.next()
		return &ast.TypeExpr{Pos: pos, Kind: ast.KClass, Name: n.Text}, nil
	}
	return nil, &Error{Pos: pos, Msg: fmt.Sprintf("expected type after new, found %v", p.cur())}
}
