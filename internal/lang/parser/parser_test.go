package parser

import (
	"strings"
	"testing"

	"repro/internal/lang/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("parse %q: expected error", src)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err.Error(), wantSub)
	}
}

func TestClassDecls(t *testing.T) {
	p := parseOK(t, `
class A { var x: int; }
class B extends A {
  static final var id: int;
  volatile var flag: bool;
  var peers: B[];
  var grid: int[][];
}`)
	if len(p.Classes) != 2 {
		t.Fatalf("classes = %d", len(p.Classes))
	}
	b := p.Classes[1]
	if b.Extends != "A" {
		t.Errorf("extends = %q", b.Extends)
	}
	if !b.Fields[0].Static || !b.Fields[0].Final {
		t.Error("modifiers lost on id")
	}
	if !b.Fields[1].Volatile {
		t.Error("volatile lost")
	}
	if b.Fields[2].Type.Kind != ast.KArray || b.Fields[2].Type.Elem.Kind != ast.KClass {
		t.Error("array-of-class type mis-parsed")
	}
	if b.Fields[3].Type.Kind != ast.KArray || b.Fields[3].Type.Elem.Kind != ast.KArray {
		t.Error("array-of-array type mis-parsed")
	}
}

func TestMethodsAndParams(t *testing.T) {
	p := parseOK(t, `
class C {
  func f(a: int, b: C, c: bool[]): int { return a; }
  static func g() { }
  init { }
}`)
	c := p.Classes[0]
	if len(c.Methods) != 2 || len(c.Inits) != 1 {
		t.Fatalf("methods=%d inits=%d", len(c.Methods), len(c.Inits))
	}
	f := c.Methods[0]
	if len(f.Params) != 3 || f.Ret == nil || f.Ret.Kind != ast.KInt {
		t.Errorf("f signature mis-parsed: %+v", f)
	}
	if !c.Methods[1].Static || c.Methods[1].Ret != nil {
		t.Errorf("g signature mis-parsed")
	}
}

func TestStatements(t *testing.T) {
	p := parseOK(t, `
class C {
  func f() {
    var x = 1;
    var y: C = null;
    x = 2;
    x += 3;
    x -= 4;
    x++;
    x--;
    if (x > 0) { x = 1; } else if (x < 0) { x = 2; } else { x = 3; }
    while (x > 0) { x--; break; }
    for (var i = 0; i < 10; i++) { continue; }
    for (;;) { break; }
    atomic { retry; }
    synchronized (y) { }
    return;
  }
}`)
	body := p.Classes[0].Methods[0].Body
	if len(body.Stmts) < 13 {
		t.Errorf("statements = %d", len(body.Stmts))
	}
	found := map[string]bool{}
	for _, s := range body.Stmts {
		switch s.(type) {
		case *ast.AtomicStmt:
			found["atomic"] = true
		case *ast.SyncStmt:
			found["sync"] = true
		case *ast.ForStmt:
			found["for"] = true
		case *ast.WhileStmt:
			found["while"] = true
		case *ast.IfStmt:
			found["if"] = true
		}
	}
	for _, k := range []string{"atomic", "sync", "for", "while", "if"} {
		if !found[k] {
			t.Errorf("missing %s statement", k)
		}
	}
}

func TestExpressionPrecedence(t *testing.T) {
	p := parseOK(t, `
class C { func f(): int { return 1 + 2 * 3 - 4 / 2 % 2; } }`)
	ret := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.ReturnStmt)
	// Top node must be the subtraction: (1 + 2*3) - (4/2 % 2).
	bin, ok := ret.Value.(*ast.BinaryExpr)
	if !ok {
		t.Fatalf("return value %T", ret.Value)
	}
	if bin.Op.String() != "-" {
		t.Errorf("top operator = %v", bin.Op)
	}
}

func TestShortCircuitAndComparisons(t *testing.T) {
	parseOK(t, `
class C {
  func f(a: int, b: int): bool {
    return a < b && b <= 10 || !(a == b) && a != 0;
  }
}`)
}

func TestCallsFieldsIndexSpawn(t *testing.T) {
	p := parseOK(t, `
class C {
  var peer: C;
  var data: int[];
  func m(x: int): int { return x; }
  func f() {
    var a = m(1);
    var b = this.m(2);
    var c = peer.m(3);
    var d = C.sf();
    var e = data[a + b];
    data[0] = c + d + e;
    var t = spawn peer.m(4);
    join(t);
    print(len(data));
    var r = rand(10) + arg(0);
    r = r;
  }
  static func sf(): int { return 0; }
}`)
	if p == nil {
		t.Fatal("nil program")
	}
}

func TestNewForms(t *testing.T) {
	parseOK(t, `
class C {
  func f() {
    var a = new C();
    var b = new int[10];
    var c = new C[5];
    var d = new int[][3];
    var e = new bool[2];
    var t = new thread[4];
    e[0] = true;
    d[0] = b;
    c[0] = a;
    t[0] = spawn a.f();
  }
}`)
}

func TestParseErrors(t *testing.T) {
	parseErr(t, `class`, "expected identifier")
	parseErr(t, `class C`, "expected {")
	parseErr(t, `class C { var x int; }`, "expected :")
	parseErr(t, `class C { func f() { if x { } } }`, "expected (")
	parseErr(t, `class C { func f() { var x = ; } }`, "expected expression")
	parseErr(t, `class C { func f() { x = 1 } }`, "expected ;")
	parseErr(t, `class C { static init { } }`, "init blocks take no modifiers")
	parseErr(t, `class C { final func f() { } }`, "final/volatile apply to fields only")
	parseErr(t, `class C { func f() { spawn 5; } }`, "spawn requires a method call")
	parseErr(t, `class C { func f() { var x = new int(); } }`, "only class types")
	parseErr(t, `class C { func f() {`, "unexpected EOF")
	parseErr(t, `class C { 5 }`, "expected class member")
}

func TestElseIfChain(t *testing.T) {
	p := parseOK(t, `
class C { func f(x: int): int {
  if (x == 1) { return 1; }
  else if (x == 2) { return 2; }
  else { return 3; }
} }`)
	ifst := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.IfStmt)
	if _, ok := ifst.Else.(*ast.IfStmt); !ok {
		t.Errorf("else-if chain produced %T", ifst.Else)
	}
}
