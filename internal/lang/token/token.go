// Package token defines the lexical tokens of TJ, the small Java-like
// transactional language this reproduction compiles. TJ plays the role
// Java plays in the paper: programs written in it are compiled by our JIT
// (packages lang/lower and opt), which inserts strong-atomicity isolation
// barriers on non-transactional accesses and optimizes them away.
package token

import "fmt"

// Kind identifies a token class.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Int // integer literal

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semicolon
	Colon
	Comma
	Dot

	// Operators.
	Assign     // =
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	PlusAssign // +=
	MinusAssign
	Inc // ++
	Dec // --
	Eq  // ==
	Ne  // !=
	Lt  // <
	Le  // <=
	Gt  // >
	Ge  // >=
	AndAnd
	OrOr
	Not

	// Keywords.
	KwClass
	KwExtends
	KwVar
	KwFunc
	KwStatic
	KwFinal
	KwVolatile
	KwInit
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwAtomic
	KwSynchronized
	KwRetry
	KwSpawn
	KwNew
	KwNull
	KwTrue
	KwFalse
	KwThis
	KwInt
	KwBool
	KwThread
	KwBreak
	KwContinue
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Int: "integer",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semicolon: ";", Colon: ":",
	Comma: ",", Dot: ".",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	PlusAssign: "+=", MinusAssign: "-=", Inc: "++", Dec: "--",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	AndAnd: "&&", OrOr: "||", Not: "!",
	KwClass: "class", KwExtends: "extends", KwVar: "var", KwFunc: "func",
	KwStatic: "static", KwFinal: "final", KwVolatile: "volatile",
	KwInit: "init", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwFor: "for", KwReturn: "return", KwAtomic: "atomic",
	KwSynchronized: "synchronized", KwRetry: "retry", KwSpawn: "spawn",
	KwNew: "new", KwNull: "null", KwTrue: "true", KwFalse: "false",
	KwThis: "this", KwInt: "int", KwBool: "bool", KwThread: "thread",
	KwBreak: "break", KwContinue: "continue",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Keywords maps identifier spellings to keyword kinds.
var Keywords = map[string]Kind{
	"class": KwClass, "extends": KwExtends, "var": KwVar, "func": KwFunc,
	"static": KwStatic, "final": KwFinal, "volatile": KwVolatile,
	"init": KwInit, "if": KwIf, "else": KwElse, "while": KwWhile,
	"for": KwFor, "return": KwReturn, "atomic": KwAtomic,
	"synchronized": KwSynchronized, "retry": KwRetry, "spawn": KwSpawn,
	"new": KwNew, "null": KwNull, "true": KwTrue, "false": KwFalse,
	"this": KwThis, "int": KwInt, "bool": KwBool, "thread": KwThread,
	"break": KwBreak, "continue": KwContinue,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // identifier spelling or literal text
	Val  int64  // integer literal value
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Text)
	case Int:
		return fmt.Sprintf("%s(%d)", t.Kind, t.Val)
	default:
		return t.Kind.String()
	}
}
