// Package ast defines the abstract syntax tree of TJ. Nodes carry slots for
// the information the type checker (package types) resolves: expression
// types, field symbols, and call targets, which the lowering pass (package
// lower) consumes.
package ast

import "repro/internal/lang/token"

// Program is a parsed compilation unit.
type Program struct {
	Classes []*ClassDecl
}

// ClassDecl is a class declaration.
type ClassDecl struct {
	Pos     token.Pos
	Name    string
	Extends string // "" if none
	Fields  []*FieldDecl
	Methods []*MethodDecl
	Inits   []*InitDecl
}

// FieldDecl declares one field.
type FieldDecl struct {
	Pos      token.Pos
	Name     string
	Type     *TypeExpr
	Static   bool
	Final    bool
	Volatile bool
}

// InitDecl is a static initializer block (Java clinit).
type InitDecl struct {
	Pos  token.Pos
	Body *BlockStmt
}

// MethodDecl declares a method.
type MethodDecl struct {
	Pos    token.Pos
	Name   string
	Static bool
	Params []*Param
	Ret    *TypeExpr // nil for void
	Body   *BlockStmt
}

// Param is a formal parameter.
type Param struct {
	Pos  token.Pos
	Name string
	Type *TypeExpr
}

// TypeExpr is a syntactic type.
type TypeExpr struct {
	Pos  token.Pos
	Kind TypeKind
	Name string    // class name for KClass
	Elem *TypeExpr // for KArray
}

// TypeKind discriminates TypeExpr.
type TypeKind uint8

// Type kinds.
const (
	KInt TypeKind = iota
	KBool
	KThread
	KClass
	KArray
)

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is { stmts }.
type BlockStmt struct {
	Pos   token.Pos
	Stmts []Stmt
}

// VarStmt is var name [: type] = expr;
type VarStmt struct {
	Pos  token.Pos
	Name string
	Type *TypeExpr // nil = inferred
	Init Expr
}

// AssignStmt is lvalue = expr; (Op is token.Assign, PlusAssign, MinusAssign).
type AssignStmt struct {
	Pos token.Pos
	Op  token.Kind
	LHS Expr // Ident, FieldExpr, IndexExpr or StaticExpr
	RHS Expr // nil for ++/-- (Op Inc/Dec)
}

// IfStmt is if (cond) then else else.
type IfStmt struct {
	Pos  token.Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt or nil
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	Pos  token.Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for (init; cond; post) body.
type ForStmt struct {
	Pos  token.Pos
	Init Stmt // VarStmt, AssignStmt or nil
	Cond Expr // nil = true
	Post Stmt // AssignStmt or nil
	Body *BlockStmt
}

// ReturnStmt is return [expr];
type ReturnStmt struct {
	Pos   token.Pos
	Value Expr // nil for void
}

// AtomicStmt is atomic { body } — the paper's transaction construct.
type AtomicStmt struct {
	Pos  token.Pos
	Body *BlockStmt
}

// SyncStmt is synchronized (expr) { body }.
type SyncStmt struct {
	Pos  token.Pos
	Lock Expr
	Body *BlockStmt
}

// RetryStmt is retry; — valid only inside atomic.
type RetryStmt struct {
	Pos token.Pos
}

// BreakStmt is break;
type BreakStmt struct {
	Pos token.Pos
}

// ContinueStmt is continue;
type ContinueStmt struct {
	Pos token.Pos
}

// ExprStmt is expr; (calls and spawns).
type ExprStmt struct {
	Pos token.Pos
	X   Expr
}

func (*BlockStmt) stmt()    {}
func (*VarStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*AtomicStmt) stmt()   {}
func (*SyncStmt) stmt()     {}
func (*RetryStmt) stmt()    {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// ---- Expressions ----

// Expr is an expression node.
type Expr interface {
	expr()
	Position() token.Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos token.Pos
	Val int64
}

// BoolLit is true/false.
type BoolLit struct {
	Pos token.Pos
	Val bool
}

// NullLit is null.
type NullLit struct{ Pos token.Pos }

// ThisExpr is this.
type ThisExpr struct{ Pos token.Pos }

// Ident names a local, parameter, implicit this-field, or class (in
// qualified positions).
type Ident struct {
	Pos  token.Pos
	Name string
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos token.Pos
	Op  token.Kind
	X   Expr
}

// BinaryExpr is x op y.
type BinaryExpr struct {
	Pos  token.Pos
	Op   token.Kind
	L, R Expr
}

// FieldExpr is x.name (instance field) or ClassName.name (static field —
// resolved by the type checker, which sets IsStatic).
type FieldExpr struct {
	Pos  token.Pos
	X    Expr // receiver or *Ident naming a class
	Name string
}

// IndexExpr is arr[i].
type IndexExpr struct {
	Pos token.Pos
	X   Expr
	Idx Expr
}

// CallExpr is x.m(args), ClassName.m(args), or m(args) (implicit this /
// current class static).
type CallExpr struct {
	Pos  token.Pos
	Fun  Expr // *FieldExpr (qualified) or *Ident (unqualified)
	Args []Expr
}

// SpawnExpr is spawn call — runs the call on a new thread, yielding thread.
type SpawnExpr struct {
	Pos  token.Pos
	Call *CallExpr
}

// NewExpr is new C().
type NewExpr struct {
	Pos  token.Pos
	Name string
}

// NewArrayExpr is new elem[len].
type NewArrayExpr struct {
	Pos  token.Pos
	Elem *TypeExpr
	Len  Expr
}

// BuiltinExpr is print(x), rand(n), len(a), join(t).
type BuiltinExpr struct {
	Pos  token.Pos
	Name string
	Args []Expr
}

func (*IntLit) expr()       {}
func (*BoolLit) expr()      {}
func (*NullLit) expr()      {}
func (*ThisExpr) expr()     {}
func (*Ident) expr()        {}
func (*UnaryExpr) expr()    {}
func (*BinaryExpr) expr()   {}
func (*FieldExpr) expr()    {}
func (*IndexExpr) expr()    {}
func (*CallExpr) expr()     {}
func (*SpawnExpr) expr()    {}
func (*NewExpr) expr()      {}
func (*NewArrayExpr) expr() {}
func (*BuiltinExpr) expr()  {}

// Position implementations.
func (e *IntLit) Position() token.Pos       { return e.Pos }
func (e *BoolLit) Position() token.Pos      { return e.Pos }
func (e *NullLit) Position() token.Pos      { return e.Pos }
func (e *ThisExpr) Position() token.Pos     { return e.Pos }
func (e *Ident) Position() token.Pos        { return e.Pos }
func (e *UnaryExpr) Position() token.Pos    { return e.Pos }
func (e *BinaryExpr) Position() token.Pos   { return e.Pos }
func (e *FieldExpr) Position() token.Pos    { return e.Pos }
func (e *IndexExpr) Position() token.Pos    { return e.Pos }
func (e *CallExpr) Position() token.Pos     { return e.Pos }
func (e *SpawnExpr) Position() token.Pos    { return e.Pos }
func (e *NewExpr) Position() token.Pos      { return e.Pos }
func (e *NewArrayExpr) Position() token.Pos { return e.Pos }
func (e *BuiltinExpr) Position() token.Pos  { return e.Pos }

// Builtins is the set of builtin function names.
var Builtins = map[string]bool{
	"print": true, // print(int): write a line of output
	"rand":  true, // rand(n): uniform int in [0, n)
	"len":   true, // len(arr): array length
	"join":  true, // join(t): wait for a spawned thread
	"arg":   true, // arg(i): i-th driver-supplied program argument (0 if absent)
}
