// Package lower compiles type-checked TJ ASTs to IR. It is the code
// generator of our JIT: it lowers control flow to a basic-block CFG,
// assigns registers, and — the part that matters for the paper — annotates
// every field, static, and array access with a strong-atomicity barrier
// (Barrier.Need), which the optimization passes in package opt then remove
// or aggregate. Accesses lexically inside atomic blocks are marked Atomic;
// they execute through the STM regardless of barrier annotations.
package lower

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/ir"
	"repro/internal/lang/token"
	"repro/internal/lang/types"
)

// Compile lowers a checked program to IR.
func Compile(tp *types.Program) (*ir.Program, error) {
	l := &lowerer{
		tp: tp,
		prog: &ir.Program{
			Types:  tp,
			BysSym: make(map[*types.Method]*ir.Method),
		},
	}
	for _, cl := range tp.Classes {
		for _, init := range cl.Inits {
			m, err := l.lowerInit(cl, init)
			if err != nil {
				return nil, err
			}
			l.prog.Methods = append(l.prog.Methods, m)
			l.prog.Inits = append(l.prog.Inits, m)
		}
		for _, sym := range cl.Decls {
			m, err := l.lowerMethod(cl, sym)
			if err != nil {
				return nil, err
			}
			l.prog.Methods = append(l.prog.Methods, m)
			l.prog.BysSym[sym] = m
		}
	}
	l.prog.Main = l.prog.BysSym[tp.Main]
	l.prog.NumAllocSites = l.allocSites
	return l.prog, nil
}

type lowerer struct {
	tp         *types.Program
	prog       *ir.Program
	allocSites int
}

type cleanupKind uint8

const (
	cleanupMonitor cleanupKind = iota
	cleanupAtomic
)

type cleanup struct {
	kind cleanupKind
	reg  int // monitor object register
}

type loopCtx struct {
	contBlock    *ir.Block
	breakBlock   *ir.Block
	cleanupDepth int
}

type fn struct {
	l    *lowerer
	m    *ir.Method
	info *types.Info
	cls  *types.Class

	varBase int // register offset of VarSym.Index 0 (1 for instance methods)
	cur     *ir.Block

	atomicDepth int
	cleanups    []cleanup
	loops       []loopCtx
}

func (l *lowerer) newFn(cl *types.Class, name string, static bool, vars []*types.VarSym, nparams int) *fn {
	f := &fn{
		l:    l,
		info: l.tp.Info,
		cls:  cl,
		m: &ir.Method{
			Class:  cl,
			Name:   name,
			Static: static,
		},
	}
	if !static {
		f.varBase = 1
		f.m.RegKinds = append(f.m.RegKinds, ir.RRef) // this
	}
	for _, v := range vars {
		f.m.RegKinds = append(f.m.RegKinds, regKind(v.Type))
	}
	f.m.NumParams = f.varBase + nparams
	f.m.NumRegs = len(f.m.RegKinds)
	f.cur = f.newBlock()
	return f
}

func regKind(t *types.Type) ir.RegKind {
	switch {
	case t.IsRef() || t.Kind == types.KNull:
		return ir.RRef
	case t.Kind == types.KThread:
		return ir.RThread
	default:
		return ir.RInt
	}
}

func (l *lowerer) lowerMethod(cl *types.Class, sym *types.Method) (*ir.Method, error) {
	vars := l.tp.Info.MethodVars[sym.Decl]
	f := l.newFn(cl, cl.Name+"."+sym.Name, sym.Static, vars, len(sym.Params))
	f.m.Sym = sym
	if err := f.block(sym.Decl.Body); err != nil {
		return nil, err
	}
	f.ensureReturn()
	return f.m, nil
}

func (l *lowerer) lowerInit(cl *types.Class, init *ast.InitDecl) (*ir.Method, error) {
	vars := l.tp.Info.MethodVars[init]
	f := l.newFn(cl, cl.Name+".<clinit>", true, vars, 0)
	f.m.IsInit = true
	if err := f.block(init.Body); err != nil {
		return nil, err
	}
	f.ensureReturn()
	return f.m, nil
}

func (f *fn) newBlock() *ir.Block {
	b := &ir.Block{ID: len(f.m.Blocks)}
	f.m.Blocks = append(f.m.Blocks, b)
	return b
}

func (f *fn) emit(in ir.Instr) *ir.Instr {
	if in.Dst == 0 && in.Op != ir.Nop {
		// Dst defaults to -1 unless set explicitly; 0 is a valid register,
		// so callers must pass Dst explicitly. This guard catches the
		// common zero-value mistake for ops that never produce a value.
		switch in.Op {
		case ir.SetField, ir.SetStatic, ir.SetElem, ir.Jmp, ir.Br, ir.Ret,
			ir.MonitorEnter, ir.MonitorExit, ir.AtomicBegin, ir.AtomicEnd,
			ir.Retry, ir.Join, ir.Print, ir.AcquireRec, ir.ReleaseRec, ir.Nop:
			in.Dst = -1
		}
	}
	if in.Op.IsMemAccess() {
		in.Barrier.Need = true
	}
	if f.atomicDepth > 0 {
		in.Atomic = true
	}
	f.cur.Instrs = append(f.cur.Instrs, in)
	return &f.cur.Instrs[len(f.cur.Instrs)-1]
}

func (f *fn) temp(k ir.RegKind) int {
	r := f.m.NumRegs
	f.m.NumRegs++
	f.m.RegKinds = append(f.m.RegKinds, k)
	return r
}

func (f *fn) terminated() bool {
	t := f.cur.Terminator()
	if t == nil {
		return false
	}
	switch t.Op {
	case ir.Jmp, ir.Br, ir.Ret:
		return true
	}
	return false
}

func (f *fn) jump(to *ir.Block) {
	if !f.terminated() {
		f.emit(ir.Instr{Op: ir.Jmp, Dst: -1, Targets: [2]int{to.ID, -1}})
	}
}

func (f *fn) ensureReturn() {
	if !f.terminated() {
		f.emit(ir.Instr{Op: ir.Ret, Dst: -1, A: -1})
	}
}

func (f *fn) varReg(v *types.VarSym) int { return f.varBase + v.Index }

func (f *fn) site() int {
	s := f.l.allocSites
	f.l.allocSites++
	return s
}

func errf(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: lower: %s", pos, fmt.Sprintf(format, args...))
}
