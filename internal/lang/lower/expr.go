package lower

import (
	"repro/internal/lang/ast"
	"repro/internal/lang/ir"
	"repro/internal/lang/token"
	"repro/internal/lang/types"
)

// expr lowers an expression to a register holding its value.
func (f *fn) expr(e ast.Expr) (int, error) {
	switch ex := e.(type) {
	case *ast.IntLit:
		t := f.temp(ir.RInt)
		f.emit(ir.Instr{Op: ir.ConstInt, Dst: t, A: -1, Const: ex.Val, Pos: ex.Pos})
		return t, nil
	case *ast.BoolLit:
		t := f.temp(ir.RInt)
		v := int64(0)
		if ex.Val {
			v = 1
		}
		f.emit(ir.Instr{Op: ir.ConstInt, Dst: t, A: -1, Const: v, Pos: ex.Pos})
		return t, nil
	case *ast.NullLit:
		t := f.temp(ir.RRef)
		f.emit(ir.Instr{Op: ir.ConstInt, Dst: t, A: -1, Const: 0, Pos: ex.Pos})
		return t, nil
	case *ast.ThisExpr:
		return 0, nil
	case *ast.Ident:
		if v := f.info.VarRefs[ex]; v != nil {
			return f.varReg(v), nil
		}
		fld := f.info.FieldRefs[ex]
		if fld == nil {
			return -1, errf(ex.Pos, "identifier %s did not resolve to a value", ex.Name)
		}
		t := f.temp(regKind(fld.Type))
		if fld.Static {
			f.emit(ir.Instr{Op: ir.GetStatic, Dst: t, A: -1, Class: fld.Owner,
				Slot: fld.Slot, IsRef: fld.Type.IsRef(), Final: fld.Final, Pos: ex.Pos})
		} else {
			f.emit(ir.Instr{Op: ir.GetField, Dst: t, A: 0, Slot: fld.Slot,
				IsRef: fld.Type.IsRef(), Final: fld.Final, Pos: ex.Pos})
		}
		return t, nil
	case *ast.UnaryExpr:
		x, err := f.expr(ex.X)
		if err != nil {
			return -1, err
		}
		t := f.temp(ir.RInt)
		op := ir.Neg
		if ex.Op == token.Not {
			op = ir.Not
		}
		f.emit(ir.Instr{Op: op, Dst: t, A: x, B: -1, Pos: ex.Pos})
		return t, nil
	case *ast.BinaryExpr:
		return f.binary(ex)
	case *ast.FieldExpr:
		fld := f.info.FieldRefs[ex]
		if fld == nil {
			return -1, errf(ex.Pos, "field %s did not resolve", ex.Name)
		}
		t := f.temp(regKind(fld.Type))
		if fld.Static {
			f.emit(ir.Instr{Op: ir.GetStatic, Dst: t, A: -1, Class: fld.Owner,
				Slot: fld.Slot, IsRef: fld.Type.IsRef(), Final: fld.Final, Pos: ex.Pos})
			return t, nil
		}
		base, err := f.expr(ex.X)
		if err != nil {
			return -1, err
		}
		f.emit(ir.Instr{Op: ir.GetField, Dst: t, A: base, Slot: fld.Slot,
			IsRef: fld.Type.IsRef(), Final: fld.Final, Pos: ex.Pos})
		return t, nil
	case *ast.IndexExpr:
		arr, err := f.expr(ex.X)
		if err != nil {
			return -1, err
		}
		idx, err := f.expr(ex.Idx)
		if err != nil {
			return -1, err
		}
		elemT := f.info.ExprTypes[ex]
		t := f.temp(regKind(elemT))
		f.emit(ir.Instr{Op: ir.GetElem, Dst: t, A: arr, B: idx,
			IsRef: elemT.IsRef(), Pos: ex.Pos})
		return t, nil
	case *ast.CallExpr:
		return f.call(ex, false)
	case *ast.SpawnExpr:
		return f.call(ex.Call, true)
	case *ast.NewExpr:
		cl := f.info.NewClasses[ex]
		t := f.temp(ir.RRef)
		f.emit(ir.Instr{Op: ir.NewObj, Dst: t, A: -1, Class: cl,
			AllocSite: f.site(), Pos: ex.Pos})
		return t, nil
	case *ast.NewArrayExpr:
		n, err := f.expr(ex.Len)
		if err != nil {
			return -1, err
		}
		at := f.info.ExprTypes[ex]
		t := f.temp(ir.RRef)
		f.emit(ir.Instr{Op: ir.NewArray, Dst: t, A: n, Flag: at.Elem.IsRef(),
			AllocSite: f.site(), Pos: ex.Pos})
		return t, nil
	case *ast.BuiltinExpr:
		return f.builtin(ex)
	}
	return -1, errf(e.Position(), "unhandled expression %T", e)
}

// exprOrVoid lowers an expression that may produce no value (void calls).
func (f *fn) exprOrVoid(e ast.Expr) (int, error) {
	if t := f.info.ExprTypes[e]; t != nil && t.Kind == types.KVoid {
		switch ex := e.(type) {
		case *ast.CallExpr:
			return f.call(ex, false)
		case *ast.BuiltinExpr:
			return f.builtin(ex)
		}
	}
	return f.expr(e)
}

func (f *fn) binary(ex *ast.BinaryExpr) (int, error) {
	if ex.Op == token.AndAnd || ex.Op == token.OrOr {
		return f.shortCircuit(ex)
	}
	l, err := f.expr(ex.L)
	if err != nil {
		return -1, err
	}
	r, err := f.expr(ex.R)
	if err != nil {
		return -1, err
	}
	var op ir.Op
	switch ex.Op {
	case token.Plus:
		op = ir.Add
	case token.Minus:
		op = ir.Sub
	case token.Star:
		op = ir.Mul
	case token.Slash:
		op = ir.Div
	case token.Percent:
		op = ir.Mod
	case token.Eq:
		op = ir.Eq
	case token.Ne:
		op = ir.Ne
	case token.Lt:
		op = ir.Lt
	case token.Le:
		op = ir.Le
	case token.Gt:
		op = ir.Gt
	case token.Ge:
		op = ir.Ge
	default:
		return -1, errf(ex.Pos, "bad binary operator %v", ex.Op)
	}
	t := f.temp(ir.RInt)
	f.emit(ir.Instr{Op: op, Dst: t, A: l, B: r, Pos: ex.Pos})
	return t, nil
}

// shortCircuit lowers && and || with control flow.
func (f *fn) shortCircuit(ex *ast.BinaryExpr) (int, error) {
	t := f.temp(ir.RInt)
	l, err := f.expr(ex.L)
	if err != nil {
		return -1, err
	}
	evalR := f.newBlock()
	short := f.newBlock()
	done := f.newBlock()
	if ex.Op == token.AndAnd {
		f.emit(ir.Instr{Op: ir.Br, Dst: -1, A: l, Targets: [2]int{evalR.ID, short.ID}, Pos: ex.Pos})
	} else {
		f.emit(ir.Instr{Op: ir.Br, Dst: -1, A: l, Targets: [2]int{short.ID, evalR.ID}, Pos: ex.Pos})
	}
	f.cur = evalR
	r, err := f.expr(ex.R)
	if err != nil {
		return -1, err
	}
	f.emit(ir.Instr{Op: ir.Mov, Dst: t, A: r, Pos: ex.Pos})
	f.jump(done)
	f.cur = short
	v := int64(0)
	if ex.Op == token.OrOr {
		v = 1
	}
	f.emit(ir.Instr{Op: ir.ConstInt, Dst: t, A: -1, Const: v, Pos: ex.Pos})
	f.jump(done)
	f.cur = done
	return t, nil
}

func (f *fn) call(ex *ast.CallExpr, spawn bool) (int, error) {
	tgt := f.info.CallTargets[ex]
	m := tgt.Method
	var args []int
	if !m.Static {
		recv := 0 // implicit this
		if !tgt.RecvImplicit {
			fe := ex.Fun.(*ast.FieldExpr)
			r, err := f.expr(fe.X)
			if err != nil {
				return -1, err
			}
			recv = r
		}
		args = append(args, recv)
	}
	for _, a := range ex.Args {
		r, err := f.expr(a)
		if err != nil {
			return -1, err
		}
		args = append(args, r)
	}
	dst := -1
	if spawn {
		dst = f.temp(ir.RThread)
		in := ir.Instr{Op: ir.Spawn, Dst: dst, A: -1, Args: args, VIndex: -1, Pos: ex.Pos}
		if m.Static {
			in.Callee = m
		} else {
			in.VIndex = m.VIndex
		}
		f.emit(in)
		return dst, nil
	}
	if m.Ret.Kind != types.KVoid {
		dst = f.temp(regKind(m.Ret))
	}
	if m.Static {
		f.emit(ir.Instr{Op: ir.CallStatic, Dst: dst, A: -1, Callee: m, VIndex: -1, Args: args, Pos: ex.Pos})
	} else {
		f.emit(ir.Instr{Op: ir.CallVirtual, Dst: dst, A: -1, VIndex: m.VIndex, Callee: m, Args: args, Pos: ex.Pos})
	}
	return dst, nil
}

func (f *fn) builtin(ex *ast.BuiltinExpr) (int, error) {
	switch ex.Name {
	case "print":
		a, err := f.expr(ex.Args[0])
		if err != nil {
			return -1, err
		}
		isBool := f.info.ExprTypes[ex.Args[0]].Kind == types.KBool
		f.emit(ir.Instr{Op: ir.Print, Dst: -1, A: a, B: -1, Flag: isBool, Pos: ex.Pos})
		return -1, nil
	case "rand":
		a, err := f.expr(ex.Args[0])
		if err != nil {
			return -1, err
		}
		t := f.temp(ir.RInt)
		f.emit(ir.Instr{Op: ir.Rand, Dst: t, A: a, B: -1, Pos: ex.Pos})
		return t, nil
	case "arg":
		a, err := f.expr(ex.Args[0])
		if err != nil {
			return -1, err
		}
		t := f.temp(ir.RInt)
		f.emit(ir.Instr{Op: ir.Arg, Dst: t, A: a, B: -1, Pos: ex.Pos})
		return t, nil
	case "len":
		a, err := f.expr(ex.Args[0])
		if err != nil {
			return -1, err
		}
		t := f.temp(ir.RInt)
		// Array length is immutable: no barrier is ever needed (§6).
		f.emit(ir.Instr{Op: ir.ArrayLen, Dst: t, A: a, B: -1, Pos: ex.Pos})
		return t, nil
	case "join":
		a, err := f.expr(ex.Args[0])
		if err != nil {
			return -1, err
		}
		f.emit(ir.Instr{Op: ir.Join, Dst: -1, A: a, B: -1, Pos: ex.Pos})
		return -1, nil
	}
	return -1, errf(ex.Pos, "unknown builtin %s", ex.Name)
}
