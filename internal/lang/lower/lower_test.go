package lower_test

import (
	"strings"
	"testing"

	"repro/internal/lang/ir"
	"repro/internal/tj"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := tj.Frontend(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func method(t *testing.T, p *ir.Program, name string) *ir.Method {
	t.Helper()
	for _, m := range p.Methods {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no method %s", name)
	return nil
}

func opsOf(m *ir.Method) []ir.Op {
	var ops []ir.Op
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			ops = append(ops, b.Instrs[i].Op)
		}
	}
	return ops
}

func countOp(m *ir.Method, op ir.Op) int {
	n := 0
	for _, o := range opsOf(m) {
		if o == op {
			n++
		}
	}
	return n
}

func TestEveryAccessGetsBarrierAnnotation(t *testing.T) {
	p := compile(t, `
class C { var f: int; var g: C; }
class Main {
  static var s: int;
  static func main() {
    var c = new C();
    c.f = 1;
    var x = c.f;
    c.g = c;
    s = x;
    x = s;
    var a = new int[3];
    a[0] = x;
    x = a[0];
  }
}`)
	m := method(t, p, "Main.main")
	accesses := 0
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsMemAccess() {
				accesses++
				if !in.Barrier.Need {
					t.Errorf("%v at %v lowered without barrier annotation", in.Op, in.Pos)
				}
			}
		}
	}
	if accesses != 7 {
		t.Errorf("memory accesses = %d, want 7", accesses)
	}
}

func TestAtomicMarking(t *testing.T) {
	p := compile(t, `
class Main {
  static var s: int;
  static func main() {
    s = 1;
    atomic { s = 2; }
    s = 3;
  }
}`)
	m := method(t, p, "Main.main")
	var flags []bool
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.SetStatic {
				flags = append(flags, in.Atomic)
			}
		}
	}
	want := []bool{false, true, false}
	if len(flags) != 3 {
		t.Fatalf("stores = %d", len(flags))
	}
	for i := range want {
		if flags[i] != want[i] {
			t.Errorf("store %d atomic = %v, want %v", i, flags[i], want[i])
		}
	}
	if countOp(m, ir.AtomicBegin) != 1 || countOp(m, ir.AtomicEnd) != 1 {
		t.Error("atomic begin/end not balanced")
	}
}

func TestReturnInsideAtomicEmitsAtomicEnd(t *testing.T) {
	p := compile(t, `
class Main {
  static var s: int;
  static func f(): int {
    atomic {
      s = 1;
      return 5;
    }
  }
  static func main() { var x = Main.f(); x = x; }
}`)
	m := method(t, p, "Main.f")
	// Every Ret must be preceded (in its block) by an AtomicEnd when
	// lexically inside atomic.
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Ret && in.Atomic {
				ok := false
				for j := 0; j < i; j++ {
					if b.Instrs[j].Op == ir.AtomicEnd {
						ok = true
					}
				}
				if !ok {
					t.Error("return inside atomic without preceding AtomicEnd")
				}
			}
		}
	}
	if countOp(m, ir.AtomicEnd) < 1 {
		t.Error("no AtomicEnd emitted")
	}
}

func TestBreakOutOfSyncReleasesMonitor(t *testing.T) {
	p := compile(t, `
class Main {
  static var lock: Main;
  static func main() {
    lock = new Main();
    for (var i = 0; i < 3; i++) {
      synchronized (lock) {
        if (i == 1) { break; }
      }
    }
  }
}`)
	m := method(t, p, "Main.main")
	enters, exits := countOp(m, ir.MonitorEnter), countOp(m, ir.MonitorExit)
	if enters != 1 {
		t.Errorf("MonitorEnter = %d", enters)
	}
	// One exit on the normal path plus one on the break path.
	if exits != 2 {
		t.Errorf("MonitorExit = %d, want 2 (normal + break path)", exits)
	}
}

func TestShortCircuitBranches(t *testing.T) {
	p := compile(t, `
class Main {
  static func f(a: bool, b: bool): bool { return a && b || !a; }
  static func main() { var x = Main.f(true, false); x = x; }
}`)
	m := method(t, p, "Main.f")
	if countOp(m, ir.Br) < 2 {
		t.Error("short-circuit operators did not lower to branches")
	}
}

func TestVirtualAndStaticCalls(t *testing.T) {
	p := compile(t, `
class A { func v(): int { return 1; } }
class Main {
  static func s(): int { return 2; }
  static func main() {
    var a = new A();
    var x = a.v() + Main.s();
    x = x;
  }
}`)
	m := method(t, p, "Main.main")
	if countOp(m, ir.CallVirtual) != 1 || countOp(m, ir.CallStatic) != 1 {
		t.Errorf("calls: virtual=%d static=%d", countOp(m, ir.CallVirtual), countOp(m, ir.CallStatic))
	}
}

func TestAllocSitesUnique(t *testing.T) {
	p := compile(t, `
class C { }
class Main {
  static func main() {
    var a = new C();
    var b = new C();
    var c = new int[2];
    c[0] = 0;
    var d = a;
    d = b;
  }
}`)
	seen := map[int]bool{}
	for _, m := range p.Methods {
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.NewObj || in.Op == ir.NewArray {
					if seen[in.AllocSite] {
						t.Errorf("duplicate alloc site %d", in.AllocSite)
					}
					seen[in.AllocSite] = true
				}
			}
		}
	}
	if len(seen) != 3 || p.NumAllocSites != 3 {
		t.Errorf("alloc sites = %d (program says %d), want 3", len(seen), p.NumAllocSites)
	}
}

func TestTerminatorsPresent(t *testing.T) {
	p := compile(t, `
class Main {
  static func f(x: int): int {
    if (x > 0) { return 1; }
    while (x < 0) { x++; }
    return 0;
  }
  static func main() { var r = Main.f(1); r = r; }
}`)
	m := method(t, p, "Main.f")
	for _, b := range m.Blocks {
		if len(b.Instrs) == 0 {
			continue // empty blocks are legal (fallthrough returns void)
		}
		term := b.Terminator()
		switch term.Op {
		case ir.Jmp, ir.Br, ir.Ret:
		default:
			// Non-terminated blocks are only legal as implicit void returns
			// at the end of a method; f returns int so everything must end
			// in a real terminator.
			t.Errorf("block b%d ends with %v", b.ID, term.Op)
		}
	}
}

func TestMethodStringRendering(t *testing.T) {
	p := compile(t, `
class C { var f: int; }
class Main {
  static func main() {
    var c = new C();
    atomic { c.f = 1; }
    var x = c.f;
    x = x;
  }
}`)
	s := method(t, p, "Main.main").String()
	for _, want := range []string{"func Main.main", "[txn]", "barrier: yes", "new C"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFinalFlagPropagated(t *testing.T) {
	p := compile(t, `
class C { final var id: int; var v: int; func set() { id = 1; } }
class Main {
  static func main() {
    var c = new C();
    c.set();
    var x = c.id + c.v;
    x = x;
  }
}`)
	m := method(t, p, "Main.main")
	finals, nonfinals := 0, 0
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.GetField {
				if in.Final {
					finals++
				} else {
					nonfinals++
				}
			}
		}
	}
	if finals != 1 || nonfinals != 1 {
		t.Errorf("final loads = %d, non-final = %d, want 1/1", finals, nonfinals)
	}
}
