package lower

import (
	"repro/internal/lang/ast"
	"repro/internal/lang/ir"
	"repro/internal/lang/token"
	"repro/internal/lang/types"
)

func (f *fn) block(b *ast.BlockStmt) error {
	for _, s := range b.Stmts {
		if err := f.stmt(s); err != nil {
			return err
		}
		if f.terminated() {
			// Unreachable trailing statements are dropped.
			break
		}
	}
	return nil
}

func (f *fn) stmt(s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return f.block(st)
	case *ast.VarStmt:
		v := f.info.VarDecls[st]
		r, err := f.expr(st.Init)
		if err != nil {
			return err
		}
		f.emit(ir.Instr{Op: ir.Mov, Dst: f.varReg(v), A: r, Pos: st.Pos})
		return nil
	case *ast.AssignStmt:
		return f.assign(st)
	case *ast.IfStmt:
		return f.ifStmt(st)
	case *ast.WhileStmt:
		return f.whileStmt(st)
	case *ast.ForStmt:
		return f.forStmt(st)
	case *ast.ReturnStmt:
		return f.returnStmt(st)
	case *ast.AtomicStmt:
		return f.atomicStmt(st)
	case *ast.SyncStmt:
		return f.syncStmt(st)
	case *ast.RetryStmt:
		f.emit(ir.Instr{Op: ir.Retry, Dst: -1, A: -1, B: -1, Pos: st.Pos})
		return nil
	case *ast.BreakStmt:
		lc := f.loops[len(f.loops)-1]
		f.emitCleanupsDownTo(lc.cleanupDepth)
		f.jump(lc.breakBlock)
		return nil
	case *ast.ContinueStmt:
		lc := f.loops[len(f.loops)-1]
		f.emitCleanupsDownTo(lc.cleanupDepth)
		f.jump(lc.contBlock)
		return nil
	case *ast.ExprStmt:
		_, err := f.exprOrVoid(st.X)
		return err
	}
	return errf(token.Pos{}, "unhandled statement %T", s)
}

func (f *fn) assign(st *ast.AssignStmt) error {
	// ++/--/+=/-=: read-modify-write on the same location.
	switch lhs := st.LHS.(type) {
	case *ast.Ident:
		if v := f.info.VarRefs[lhs]; v != nil {
			return f.assignVar(st, f.varReg(v))
		}
		fld := f.info.FieldRefs[lhs]
		if fld.Static {
			return f.assignStatic(st, fld)
		}
		return f.assignField(st, 0 /* this */, fld) // reg 0 is this
	case *ast.FieldExpr:
		fld := f.info.FieldRefs[lhs]
		if fld.Static {
			return f.assignStatic(st, fld)
		}
		base, err := f.expr(lhs.X)
		if err != nil {
			return err
		}
		return f.assignField(st, base, fld)
	case *ast.IndexExpr:
		arr, err := f.expr(lhs.X)
		if err != nil {
			return err
		}
		idx, err := f.expr(lhs.Idx)
		if err != nil {
			return err
		}
		elemT := f.info.ExprTypes[lhs]
		val, err := f.assignRHS(st, func() (int, error) {
			t := f.temp(regKind(elemT))
			f.emit(ir.Instr{Op: ir.GetElem, Dst: t, A: arr, B: idx,
				IsRef: elemT.IsRef(), Pos: st.Pos})
			return t, nil
		})
		if err != nil {
			return err
		}
		f.emit(ir.Instr{Op: ir.SetElem, Dst: -1, A: arr, B: idx, C: val,
			IsRef: elemT.IsRef(), Pos: st.Pos})
		return nil
	}
	return errf(st.Pos, "bad assignment target %T", st.LHS)
}

// assignRHS computes the value to store: the plain RHS for =, or a
// read-modify-write using load() for compound assignments.
func (f *fn) assignRHS(st *ast.AssignStmt, load func() (int, error)) (int, error) {
	switch st.Op {
	case token.Assign:
		return f.expr(st.RHS)
	case token.Inc, token.Dec:
		cur, err := load()
		if err != nil {
			return -1, err
		}
		one := f.temp(ir.RInt)
		f.emit(ir.Instr{Op: ir.ConstInt, Dst: one, A: -1, Const: 1, Pos: st.Pos})
		op := ir.Add
		if st.Op == token.Dec {
			op = ir.Sub
		}
		res := f.temp(ir.RInt)
		f.emit(ir.Instr{Op: op, Dst: res, A: cur, B: one, Pos: st.Pos})
		return res, nil
	case token.PlusAssign, token.MinusAssign:
		cur, err := load()
		if err != nil {
			return -1, err
		}
		rhs, err := f.expr(st.RHS)
		if err != nil {
			return -1, err
		}
		op := ir.Add
		if st.Op == token.MinusAssign {
			op = ir.Sub
		}
		res := f.temp(ir.RInt)
		f.emit(ir.Instr{Op: op, Dst: res, A: cur, B: rhs, Pos: st.Pos})
		return res, nil
	}
	return -1, errf(st.Pos, "bad assignment operator %v", st.Op)
}

func (f *fn) assignVar(st *ast.AssignStmt, reg int) error {
	val, err := f.assignRHS(st, func() (int, error) { return reg, nil })
	if err != nil {
		return err
	}
	f.emit(ir.Instr{Op: ir.Mov, Dst: reg, A: val, Pos: st.Pos})
	return nil
}

func (f *fn) assignField(st *ast.AssignStmt, base int, fld *types.Field) error {
	val, err := f.assignRHS(st, func() (int, error) {
		t := f.temp(regKind(fld.Type))
		f.emit(ir.Instr{Op: ir.GetField, Dst: t, A: base, Slot: fld.Slot,
			IsRef: fld.Type.IsRef(), Final: fld.Final, Pos: st.Pos})
		return t, nil
	})
	if err != nil {
		return err
	}
	f.emit(ir.Instr{Op: ir.SetField, Dst: -1, A: base, B: val, Slot: fld.Slot,
		IsRef: fld.Type.IsRef(), Final: fld.Final, Pos: st.Pos})
	return nil
}

func (f *fn) assignStatic(st *ast.AssignStmt, fld *types.Field) error {
	val, err := f.assignRHS(st, func() (int, error) {
		t := f.temp(regKind(fld.Type))
		f.emit(ir.Instr{Op: ir.GetStatic, Dst: t, A: -1, Class: fld.Owner,
			Slot: fld.Slot, IsRef: fld.Type.IsRef(), Final: fld.Final, Pos: st.Pos})
		return t, nil
	})
	if err != nil {
		return err
	}
	f.emit(ir.Instr{Op: ir.SetStatic, Dst: -1, A: -1, B: val, Class: fld.Owner,
		Slot: fld.Slot, IsRef: fld.Type.IsRef(), Final: fld.Final, Pos: st.Pos})
	return nil
}

func (f *fn) ifStmt(st *ast.IfStmt) error {
	cond, err := f.expr(st.Cond)
	if err != nil {
		return err
	}
	thenB := f.newBlock()
	var elseB *ir.Block
	done := f.newBlock()
	if st.Else != nil {
		elseB = f.newBlock()
		f.emit(ir.Instr{Op: ir.Br, Dst: -1, A: cond, Targets: [2]int{thenB.ID, elseB.ID}, Pos: st.Pos})
	} else {
		f.emit(ir.Instr{Op: ir.Br, Dst: -1, A: cond, Targets: [2]int{thenB.ID, done.ID}, Pos: st.Pos})
	}
	f.cur = thenB
	if err := f.block(st.Then); err != nil {
		return err
	}
	f.jump(done)
	if st.Else != nil {
		f.cur = elseB
		if err := f.stmt(st.Else); err != nil {
			return err
		}
		f.jump(done)
	}
	f.cur = done
	return nil
}

func (f *fn) whileStmt(st *ast.WhileStmt) error {
	head := f.newBlock()
	body := f.newBlock()
	done := f.newBlock()
	f.jump(head)
	f.cur = head
	cond, err := f.expr(st.Cond)
	if err != nil {
		return err
	}
	f.emit(ir.Instr{Op: ir.Br, Dst: -1, A: cond, Targets: [2]int{body.ID, done.ID}, Pos: st.Pos})
	f.loops = append(f.loops, loopCtx{contBlock: head, breakBlock: done, cleanupDepth: len(f.cleanups)})
	f.cur = body
	if err := f.block(st.Body); err != nil {
		return err
	}
	f.jump(head)
	f.loops = f.loops[:len(f.loops)-1]
	f.cur = done
	return nil
}

func (f *fn) forStmt(st *ast.ForStmt) error {
	if st.Init != nil {
		if err := f.stmt(st.Init); err != nil {
			return err
		}
	}
	head := f.newBlock()
	body := f.newBlock()
	post := f.newBlock()
	done := f.newBlock()
	f.jump(head)
	f.cur = head
	if st.Cond != nil {
		cond, err := f.expr(st.Cond)
		if err != nil {
			return err
		}
		f.emit(ir.Instr{Op: ir.Br, Dst: -1, A: cond, Targets: [2]int{body.ID, done.ID}, Pos: st.Pos})
	} else {
		f.jump(body)
	}
	f.loops = append(f.loops, loopCtx{contBlock: post, breakBlock: done, cleanupDepth: len(f.cleanups)})
	f.cur = body
	if err := f.block(st.Body); err != nil {
		return err
	}
	f.jump(post)
	f.loops = f.loops[:len(f.loops)-1]
	f.cur = post
	if st.Post != nil {
		if err := f.stmt(st.Post); err != nil {
			return err
		}
	}
	f.jump(head)
	f.cur = done
	return nil
}

func (f *fn) returnStmt(st *ast.ReturnStmt) error {
	val := -1
	if st.Value != nil {
		r, err := f.expr(st.Value)
		if err != nil {
			return err
		}
		val = r
	}
	// Returning out of synchronized/atomic regions must release monitors
	// and end transactions on the way out.
	f.emitCleanupsDownTo(0)
	f.emit(ir.Instr{Op: ir.Ret, Dst: -1, A: val, Pos: st.Pos})
	return nil
}

// emitCleanupsDownTo emits the exit actions for every region deeper than
// depth without popping them (the lexical region continues for other
// paths).
func (f *fn) emitCleanupsDownTo(depth int) {
	for i := len(f.cleanups) - 1; i >= depth; i-- {
		c := f.cleanups[i]
		switch c.kind {
		case cleanupMonitor:
			f.emit(ir.Instr{Op: ir.MonitorExit, Dst: -1, A: c.reg})
		case cleanupAtomic:
			f.emit(ir.Instr{Op: ir.AtomicEnd, Dst: -1, A: -1})
		}
	}
}

func (f *fn) atomicStmt(st *ast.AtomicStmt) error {
	f.emit(ir.Instr{Op: ir.AtomicBegin, Dst: -1, A: -1, Pos: st.Pos})
	f.atomicDepth++
	f.cleanups = append(f.cleanups, cleanup{kind: cleanupAtomic})
	err := f.block(st.Body)
	f.cleanups = f.cleanups[:len(f.cleanups)-1]
	f.atomicDepth--
	if err != nil {
		return err
	}
	if !f.terminated() {
		f.emit(ir.Instr{Op: ir.AtomicEnd, Dst: -1, A: -1, Pos: st.Pos})
	}
	return nil
}

func (f *fn) syncStmt(st *ast.SyncStmt) error {
	lock, err := f.expr(st.Lock)
	if err != nil {
		return err
	}
	// Pin the lock object in a dedicated register so re-evaluation at exit
	// sees the same object even if the source expression's parts change.
	pin := f.temp(ir.RRef)
	f.emit(ir.Instr{Op: ir.Mov, Dst: pin, A: lock, Pos: st.Pos})
	f.emit(ir.Instr{Op: ir.MonitorEnter, Dst: -1, A: pin, Pos: st.Pos})
	f.cleanups = append(f.cleanups, cleanup{kind: cleanupMonitor, reg: pin})
	err = f.block(st.Body)
	f.cleanups = f.cleanups[:len(f.cleanups)-1]
	if err != nil {
		return err
	}
	if !f.terminated() {
		f.emit(ir.Instr{Op: ir.MonitorExit, Dst: -1, A: pin, Pos: st.Pos})
	}
	return nil
}
