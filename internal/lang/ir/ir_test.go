package ir

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	for op := Nop; op <= Ret; op++ {
		if strings.HasPrefix(op.String(), "Op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if !strings.HasPrefix(Op(200).String(), "Op(") {
		t.Error("unknown op should render numerically")
	}
}

func TestOpClassification(t *testing.T) {
	loads := []Op{GetField, GetStatic, GetElem}
	stores := []Op{SetField, SetStatic, SetElem}
	for _, op := range loads {
		if !op.IsMemAccess() || !op.IsLoad() || op.IsStore() {
			t.Errorf("%v misclassified", op)
		}
	}
	for _, op := range stores {
		if !op.IsMemAccess() || op.IsLoad() || !op.IsStore() {
			t.Errorf("%v misclassified", op)
		}
	}
	for _, op := range []Op{Add, Call(0), AtomicBegin, ArrayLen} {
		if op.IsMemAccess() {
			t.Errorf("%v should not be a memory access", op)
		}
	}
}

// Call is a helper to sneak a non-access op into the table test.
func Call(_ int) Op { return CallStatic }

func TestRemovedByString(t *testing.T) {
	if RemovedBy(0).String() != "-" {
		t.Errorf("zero = %q", RemovedBy(0).String())
	}
	r := ByImmutable | ByNAIT
	s := r.String()
	if !strings.Contains(s, "immutable") || !strings.Contains(s, "nait") {
		t.Errorf("combined = %q", s)
	}
	all := ByImmutable | ByLocalEscape | ByNAIT | ByTL | ByInitSelf
	if got := all.String(); strings.Count(got, "+") != 4 {
		t.Errorf("all = %q", got)
	}
}

func TestBarrierActive(t *testing.T) {
	if (Barrier{}).Active() {
		t.Error("zero barrier should be inactive")
	}
	if !(Barrier{Need: true}).Active() {
		t.Error("needed barrier should be active")
	}
	if (Barrier{Need: true, InAggregate: true}).Active() {
		t.Error("aggregated barrier should not be individually active")
	}
}

func TestBlockTerminator(t *testing.T) {
	b := &Block{}
	if b.Terminator() != nil {
		t.Error("empty block terminator should be nil")
	}
	b.Instrs = append(b.Instrs, Instr{Op: Nop}, Instr{Op: Ret, A: -1})
	if b.Terminator().Op != Ret {
		t.Error("terminator should be the last instruction")
	}
}
