// Package ir defines the register-based intermediate representation our JIT
// compiles TJ into: per-method control-flow graphs of basic blocks whose
// memory-access instructions carry the barrier annotations the paper's
// optimizations manipulate (Sections 3, 5 and 6).
//
// Every GetField/SetField/GetStatic/SetStatic/GetElem/SetElem instruction
// has a Barrier annotation. The lowering pass marks every access as needing
// a non-transactional isolation barrier (strong atomicity inserts barriers
// everywhere); the optimization passes in package opt then remove or
// aggregate them, recording which analysis removed each barrier so the
// Figure 13 static counts can be reported.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/lang/token"
	"repro/internal/lang/types"
)

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	Nop Op = iota

	// Data movement and constants.
	ConstInt // Dst <- Const
	Mov      // Dst <- A

	// Arithmetic and logic (ints in two's complement; booleans 0/1).
	Add // Dst <- A + B
	Sub
	Mul
	Div // traps on zero divisor
	Mod
	Neg // Dst <- -A
	Not // Dst <- !A
	Eq  // Dst <- A == B
	Ne
	Lt
	Le
	Gt
	Ge

	// Memory accesses (carry Barrier annotations).
	GetField  // Dst <- A.[Slot]
	SetField  // A.[Slot] <- B
	GetStatic // Dst <- statics(Class).[Slot]
	SetStatic // statics(Class).[Slot] <- B
	GetElem   // Dst <- A[B]
	SetElem   // A[B] <- C
	ArrayLen  // Dst <- len(A)

	// Allocation.
	NewObj   // Dst <- new Class
	NewArray // Dst <- new array of length A; ElemRef in Flag

	// Calls. Args lists argument registers (receiver first for instance
	// calls). CallVirtual dispatches through vtable slot VIndex on Args[0].
	CallStatic
	CallVirtual

	// Threads.
	Spawn // Dst <- spawn; Callee/VIndex + Args as for calls
	Join  // join thread in A

	// Builtins.
	Print // print A (Flag: true = bool formatting)
	Rand  // Dst <- uniform [0, A)
	Arg   // Dst <- driver argument A (0 if out of range)

	// Synchronization regions.
	MonitorEnter // enter monitor of A
	MonitorExit  // exit monitor of A
	AtomicBegin  // begin (possibly nested) transaction
	AtomicEnd    // end transaction
	Retry        // user-initiated retry of the enclosing transaction

	// Aggregated barriers (Section 6, Figure 14): acquire/release the
	// transaction record of A once for a run of accesses annotated
	// InAggregate. Executed only outside transactions.
	AcquireRec
	ReleaseRec

	// Control flow (block terminators).
	Jmp // to Targets[0]
	Br  // if A then Targets[0] else Targets[1]
	Ret // return A (or none if A < 0)
)

var opNames = [...]string{
	Nop: "nop", ConstInt: "const", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	Neg: "neg", Not: "not",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	GetField: "getfield", SetField: "setfield",
	GetStatic: "getstatic", SetStatic: "setstatic",
	GetElem: "getelem", SetElem: "setelem", ArrayLen: "arraylen",
	NewObj: "new", NewArray: "newarray",
	CallStatic: "call", CallVirtual: "callvirt",
	Spawn: "spawn", Join: "join", Print: "print", Rand: "rand", Arg: "arg",
	MonitorEnter: "monitorenter", MonitorExit: "monitorexit",
	AtomicBegin: "atomicbegin", AtomicEnd: "atomicend", Retry: "retry",
	AcquireRec: "acquirerec", ReleaseRec: "releaserec",
	Jmp: "jmp", Br: "br", Ret: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMemAccess reports whether the op is a field/static/element access that
// carries a barrier annotation.
func (o Op) IsMemAccess() bool {
	switch o {
	case GetField, SetField, GetStatic, SetStatic, GetElem, SetElem:
		return true
	}
	return false
}

// IsLoad reports whether a memory access reads.
func (o Op) IsLoad() bool { return o == GetField || o == GetStatic || o == GetElem }

// IsStore reports whether a memory access writes.
func (o Op) IsStore() bool { return o == SetField || o == SetStatic || o == SetElem }

// RemovedBy identifies which optimization removed a barrier, as a bitmask
// (several analyses may independently remove the same barrier; Figure 13
// counts the overlaps).
type RemovedBy uint8

// Barrier-removal reasons.
const (
	ByImmutable   RemovedBy = 1 << iota // final field / array length (Section 6)
	ByLocalEscape                       // intraprocedural static escape analysis (Section 6)
	ByNAIT                              // whole-program not-accessed-in-transaction (Section 5)
	ByTL                                // whole-program thread-local analysis (Section 5.4)
	ByInitSelf                          // static-initializer self-access exemption (Section 5.3)
)

func (r RemovedBy) String() string {
	if r == 0 {
		return "-"
	}
	var parts []string
	for _, e := range []struct {
		bit  RemovedBy
		name string
	}{
		{ByImmutable, "immutable"}, {ByLocalEscape, "escape"},
		{ByNAIT, "nait"}, {ByTL, "tl"}, {ByInitSelf, "init"},
	} {
		if r&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "+")
}

// Barrier is the strong-atomicity annotation on a memory access.
type Barrier struct {
	// Need is set by lowering on every access: outside a transaction this
	// access requires an isolation barrier. Optimizations clear it and
	// record why in RemovedBy.
	Need bool

	// RemovedBy accumulates the analyses that independently justified
	// removing this barrier (the access may still Need one if only a
	// counting-only analysis ran).
	RemovedBy RemovedBy

	// InAggregate marks the access as covered by an enclosing
	// AcquireRec/ReleaseRec pair; the access itself executes without its
	// own barrier.
	InAggregate bool

	// TxnReadDirect marks an in-transaction load that may bypass the STM
	// open-for-read protocol entirely (no version logging, no validation)
	// because the whole-program analysis proved no transaction ever writes
	// any object it can reach — the Section 5.2 extension. Sound only
	// under WEAK atomicity (a non-transactional writer could still
	// conflict under strong atomicity, as the paper notes); the VM honors
	// it only when barriers are off.
	TxnReadDirect bool
}

// Active reports whether a standalone barrier executes for this access when
// reached outside a transaction.
func (b Barrier) Active() bool { return b.Need && !b.InAggregate }

// Instr is one IR instruction. Operand meaning depends on Op; unused
// operands are -1 (registers) or zero values.
type Instr struct {
	Op   Op
	Dst  int // destination register, -1 if none
	A, B int // operand registers
	C    int // third operand (SetElem value)

	Const int64        // ConstInt immediate
	Flag  bool         // NewArray: ref elements; Print: bool formatting
	Slot  int          // field slot for field/static accesses
	IsRef bool         // the accessed/stored slot holds a reference
	Final bool         // the accessed field is final (immutable after construction)
	Class *types.Class // NewObj class; statics holder class

	Callee *types.Method // CallStatic / Spawn (static) target
	VIndex int           // CallVirtual / Spawn (virtual) vtable index; -1 otherwise

	Args []int // call/spawn argument registers (receiver first)

	Targets [2]int // Jmp/Br successor block IDs

	Barrier Barrier
	Pos     token.Pos

	// Atomic marks instructions lexically inside an atomic block in the
	// source method (used by the whole-program analyses: such accesses are
	// transactional no matter the calling context).
	Atomic bool

	// AllocSite is a program-unique ID for NewObj/NewArray instructions,
	// assigned by lowering; the pointer analysis keys abstract objects by
	// (AllocSite, context).
	AllocSite int
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// RegKind is the value category of a register.
type RegKind uint8

// Register kinds.
const (
	RInt    RegKind = iota // int or bool
	RRef                   // heap reference
	RThread                // thread handle
)

// Method is a compiled method body.
type Method struct {
	Sym    *types.Method // nil for static initializers
	Class  *types.Class
	Name   string // diagnostic name, e.g. "Main.main" or "C.<clinit>"
	Static bool
	IsInit bool // static initializer

	NumParams int // parameter registers: 0..NumParams-1 (receiver first)
	NumRegs   int
	RegKinds  []RegKind

	Blocks []*Block // Blocks[0] is the entry
}

// BlockByID returns the block with the given ID.
func (m *Method) BlockByID(id int) *Block { return m.Blocks[id] }

// Program is a compiled TJ program.
type Program struct {
	Types   *types.Program
	Methods []*Method // all bodies, including static initializers
	BysSym  map[*types.Method]*Method
	Inits   []*Method // static initializers in execution order
	Main    *Method

	// NumAllocSites is the number of allocation-site IDs handed out.
	NumAllocSites int
}

// MethodOf returns the compiled body for a method symbol.
func (p *Program) MethodOf(sym *types.Method) *Method { return p.BysSym[sym] }

// String renders a method body for tests and the tjc -ir flag.
func (m *Method) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d regs=%d)\n", m.Name, m.NumParams, m.NumRegs)
	for _, blk := range m.Blocks {
		fmt.Fprintf(&b, "b%d:\n", blk.ID)
		for i := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", formatInstr(&blk.Instrs[i]))
		}
	}
	return b.String()
}

func formatInstr(in *Instr) string {
	var b strings.Builder
	if in.Atomic {
		b.WriteString("[txn] ")
	}
	if in.Dst >= 0 {
		fmt.Fprintf(&b, "r%d = ", in.Dst)
	}
	b.WriteString(in.Op.String())
	switch in.Op {
	case ConstInt:
		fmt.Fprintf(&b, " %d", in.Const)
	case GetField, SetField:
		fmt.Fprintf(&b, " r%d.[%d]", in.A, in.Slot)
		if in.Op == SetField {
			fmt.Fprintf(&b, " <- r%d", in.B)
		}
	case GetStatic, SetStatic:
		fmt.Fprintf(&b, " %s.[%d]", in.Class.Name, in.Slot)
		if in.Op == SetStatic {
			fmt.Fprintf(&b, " <- r%d", in.B)
		}
	case GetElem:
		fmt.Fprintf(&b, " r%d[r%d]", in.A, in.B)
	case SetElem:
		fmt.Fprintf(&b, " r%d[r%d] <- r%d", in.A, in.B, in.C)
	case NewObj:
		fmt.Fprintf(&b, " %s (site %d)", in.Class.Name, in.AllocSite)
	case NewArray:
		fmt.Fprintf(&b, " [r%d] ref=%v (site %d)", in.A, in.Flag, in.AllocSite)
	case CallStatic, Spawn:
		if in.Callee != nil {
			fmt.Fprintf(&b, " %s.%s", in.Callee.Owner.Name, in.Callee.Name)
		} else {
			fmt.Fprintf(&b, " vtable[%d]", in.VIndex)
		}
		fmt.Fprintf(&b, " %v", in.Args)
	case CallVirtual:
		fmt.Fprintf(&b, " vtable[%d] %v", in.VIndex, in.Args)
	case Jmp:
		fmt.Fprintf(&b, " b%d", in.Targets[0])
	case Br:
		fmt.Fprintf(&b, " r%d ? b%d : b%d", in.A, in.Targets[0], in.Targets[1])
	case Ret:
		if in.A >= 0 {
			fmt.Fprintf(&b, " r%d", in.A)
		}
	default:
		if in.A >= 0 {
			fmt.Fprintf(&b, " r%d", in.A)
		}
		if in.B >= 0 {
			fmt.Fprintf(&b, " r%d", in.B)
		}
	}
	if in.Op.IsMemAccess() {
		switch {
		case in.Barrier.InAggregate:
			b.WriteString("  ; barrier: aggregated")
		case in.Barrier.Need:
			b.WriteString("  ; barrier: yes")
		default:
			fmt.Fprintf(&b, "  ; barrier: removed(%s)", in.Barrier.RemovedBy)
		}
	}
	return b.String()
}
