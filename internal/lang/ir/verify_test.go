package ir_test

import (
	"strings"
	"testing"

	"repro/internal/lang/ir"
	"repro/internal/tj"
)

func compiled(t *testing.T) *ir.Program {
	t.Helper()
	p, err := tj.Frontend(`
class C { var f: int; }
class Main {
  static func main() {
    var c = new C();
    atomic { c.f = 1; }
    if (c.f > 0) { print(c.f); }
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mainMethod(t *testing.T, p *ir.Program) *ir.Method {
	t.Helper()
	for _, m := range p.Methods {
		if m.Name == "Main.main" {
			return m
		}
	}
	t.Fatal("no main")
	return nil
}

func TestVerifyAcceptsCompilerOutput(t *testing.T) {
	if err := compiled(t).Verify(); err != nil {
		t.Errorf("verifier rejected compiler output: %v", err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		mutate  func(m *ir.Method)
		wantSub string
	}{
		{"register out of range", func(m *ir.Method) {
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.Mov {
						b.Instrs[i].A = 999
						return
					}
				}
			}
			m.Blocks[0].Instrs[0].Dst = 999
		}, "out of range"},
		{"bad branch target", func(m *ir.Method) {
			for _, b := range m.Blocks {
				if tt := b.Terminator(); tt != nil && tt.Op == ir.Br {
					tt.Targets[0] = 99
					return
				}
			}
		}, "target"},
		{"terminator mid-block", func(m *ir.Method) {
			for _, b := range m.Blocks {
				if len(b.Instrs) >= 2 {
					b.Instrs[0] = ir.Instr{Op: ir.Ret, A: -1, Dst: -1}
					return
				}
			}
		}, "terminal position"},
		{"barrier cleared without reason", func(m *ir.Method) {
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op.IsMemAccess() && !in.Atomic {
						in.Barrier.Need = false
						in.Barrier.RemovedBy = 0
						return
					}
				}
			}
		}, "no removal reason"},
		{"unbalanced atomic", func(m *ir.Method) {
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.AtomicEnd {
						b.Instrs[i].Op = ir.Nop
						return
					}
				}
			}
		}, "unbalanced atomic"},
		{"dangling acquire", func(m *ir.Method) {
			b := m.Blocks[0]
			b.Instrs = append([]ir.Instr{{Op: ir.AcquireRec, A: 0, Dst: -1}}, b.Instrs...)
		}, "not released"},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			p := compiled(t)
			c.mutate(mainMethod(t, p))
			err := p.Verify()
			if err == nil {
				t.Fatal("verifier accepted corrupted IR")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestVerifyEmptyMethod(t *testing.T) {
	m := &ir.Method{Name: "X.empty"}
	if err := m.Verify(); err == nil {
		t.Error("empty method accepted")
	}
}
