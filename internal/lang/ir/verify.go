package ir

import "fmt"

// Verify checks structural well-formedness of a compiled method: register
// indexes in range, branch targets valid, terminators only in terminal
// position, consistent barrier annotations, paired aggregation markers,
// and balanced atomic-region markers. The compiler driver runs it after
// lowering and after every optimization pass configuration, so a bad pass
// fails compilation instead of corrupting execution.
func (m *Method) Verify() error {
	if len(m.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", m.Name)
	}
	checkReg := func(r int, what string, in *Instr) error {
		if r < 0 || r >= m.NumRegs {
			return fmt.Errorf("%s: %v: %s register r%d out of range [0,%d)",
				m.Name, in.Op, what, r, m.NumRegs)
		}
		return nil
	}
	optReg := func(r int, what string, in *Instr) error {
		if r == -1 {
			return nil
		}
		return checkReg(r, what, in)
	}
	atomicDelta := 0
	for bi, b := range m.Blocks {
		if b.ID != bi {
			return fmt.Errorf("%s: block %d has ID %d", m.Name, bi, b.ID)
		}
		aggDepth := 0
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			last := ii == len(b.Instrs)-1
			switch in.Op {
			case Jmp:
				if !last {
					return fmt.Errorf("%s: b%d: jmp not in terminal position", m.Name, b.ID)
				}
				if err := m.checkTarget(in.Targets[0], b.ID); err != nil {
					return err
				}
			case Br:
				if !last {
					return fmt.Errorf("%s: b%d: br not in terminal position", m.Name, b.ID)
				}
				if err := checkReg(in.A, "condition", in); err != nil {
					return err
				}
				for _, t := range in.Targets {
					if err := m.checkTarget(t, b.ID); err != nil {
						return err
					}
				}
			case Ret:
				if !last {
					return fmt.Errorf("%s: b%d: ret not in terminal position", m.Name, b.ID)
				}
				if err := optReg(in.A, "return value", in); err != nil {
					return err
				}
			case ConstInt:
				if err := checkReg(in.Dst, "dst", in); err != nil {
					return err
				}
			case Mov, Neg, Not, ArrayLen, Rand, Arg:
				if err := checkReg(in.Dst, "dst", in); err != nil {
					return err
				}
				if err := checkReg(in.A, "operand", in); err != nil {
					return err
				}
			case Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge:
				if err := checkReg(in.Dst, "dst", in); err != nil {
					return err
				}
				if err := checkReg(in.A, "lhs", in); err != nil {
					return err
				}
				if err := checkReg(in.B, "rhs", in); err != nil {
					return err
				}
			case GetField, GetElem:
				if err := checkReg(in.Dst, "dst", in); err != nil {
					return err
				}
				if err := checkReg(in.A, "base", in); err != nil {
					return err
				}
				if in.Op == GetElem {
					if err := checkReg(in.B, "index", in); err != nil {
						return err
					}
				}
			case SetField:
				if err := checkReg(in.A, "base", in); err != nil {
					return err
				}
				if err := checkReg(in.B, "value", in); err != nil {
					return err
				}
			case SetElem:
				for _, r := range []int{in.A, in.B, in.C} {
					if err := checkReg(r, "operand", in); err != nil {
						return err
					}
				}
			case GetStatic:
				if in.Class == nil {
					return fmt.Errorf("%s: b%d: getstatic without class", m.Name, b.ID)
				}
				if err := checkReg(in.Dst, "dst", in); err != nil {
					return err
				}
			case SetStatic:
				if in.Class == nil {
					return fmt.Errorf("%s: b%d: setstatic without class", m.Name, b.ID)
				}
				if err := checkReg(in.B, "value", in); err != nil {
					return err
				}
			case NewObj:
				if in.Class == nil {
					return fmt.Errorf("%s: b%d: new without class", m.Name, b.ID)
				}
				if err := checkReg(in.Dst, "dst", in); err != nil {
					return err
				}
			case NewArray:
				if err := checkReg(in.Dst, "dst", in); err != nil {
					return err
				}
				if err := checkReg(in.A, "length", in); err != nil {
					return err
				}
			case CallStatic, CallVirtual, Spawn:
				if in.Op == CallStatic && in.Callee == nil {
					return fmt.Errorf("%s: b%d: static call without callee", m.Name, b.ID)
				}
				if in.Op == CallVirtual && in.VIndex < 0 {
					return fmt.Errorf("%s: b%d: virtual call without vtable index", m.Name, b.ID)
				}
				if in.Op == Spawn && in.Callee == nil && in.VIndex < 0 {
					return fmt.Errorf("%s: b%d: spawn without target", m.Name, b.ID)
				}
				if err := optReg(in.Dst, "dst", in); err != nil {
					return err
				}
				for _, a := range in.Args {
					if err := checkReg(a, "argument", in); err != nil {
						return err
					}
				}
			case Join, Print, MonitorEnter, MonitorExit:
				if err := checkReg(in.A, "operand", in); err != nil {
					return err
				}
			case AtomicBegin:
				atomicDelta++
			case AtomicEnd:
				atomicDelta--
			case Retry, Nop:
			case AcquireRec:
				if aggDepth != 0 {
					return fmt.Errorf("%s: b%d: nested AcquireRec", m.Name, b.ID)
				}
				if err := checkReg(in.A, "record base", in); err != nil {
					return err
				}
				aggDepth++
			case ReleaseRec:
				if aggDepth != 1 {
					return fmt.Errorf("%s: b%d: ReleaseRec without AcquireRec", m.Name, b.ID)
				}
				aggDepth--
			default:
				return fmt.Errorf("%s: b%d: unknown opcode %v", m.Name, b.ID, in.Op)
			}
			if in.Op.IsMemAccess() {
				if !in.Barrier.Need && in.Barrier.RemovedBy == 0 && !in.Atomic {
					return fmt.Errorf("%s: b%d: non-transactional access %v has its barrier cleared with no removal reason",
						m.Name, b.ID, in.Op)
				}
				if in.Barrier.InAggregate && aggDepth == 0 {
					return fmt.Errorf("%s: b%d: InAggregate access outside AcquireRec/ReleaseRec", m.Name, b.ID)
				}
			}
		}
		if aggDepth != 0 {
			return fmt.Errorf("%s: b%d: AcquireRec not released within the block", m.Name, b.ID)
		}
	}
	if atomicDelta != 0 {
		return fmt.Errorf("%s: unbalanced atomic markers (delta %d)", m.Name, atomicDelta)
	}
	return nil
}

func (m *Method) checkTarget(t, from int) error {
	if t < 0 || t >= len(m.Blocks) {
		return fmt.Errorf("%s: b%d: branch target b%d out of range", m.Name, from, t)
	}
	return nil
}

// Verify checks every method in the program.
func (p *Program) Verify() error {
	for _, m := range p.Methods {
		if err := m.Verify(); err != nil {
			return err
		}
	}
	return nil
}
