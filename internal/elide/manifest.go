// Package elide defines the barrier-elision manifest exchanged between the
// stmvet inter-procedural analyses (internal/vetstm/interproc) and the
// runtime (internal/objmodel, internal/strong).
//
// The manifest is the Go-embedding analogue of the paper's Section 5
// compiler/runtime contract: the not-accessed-in-transaction (NAIT,
// Figure 12) and thread-local (TL, §5.4) analyses classify object
// *allocation sites*, and the runtime uses the classification to decide the
// birth state of each object's transaction record. Sites classified NAIT or
// TL are born Private (the all-ones record of Figure 10) and ride the
// zero-synchronization fast paths; "mixed" sites keep the default birth
// state, optionally carrying a granularity hint that pre-seeds the adaptive
// promotion table for hot objects.
//
// The package is a leaf: it imports only the standard library, so both the
// analysis side (which must not depend on the runtime) and the runtime side
// (which must not depend on the analyzer) can share the schema.
package elide

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Site classifications. The analysis emits the strongest sound claim:
//
//   - ClassNAITTL: never accessed inside any Atomic* body AND never crosses
//     goroutines — eligible for private birth with no publication concerns.
//   - ClassNAIT: never accessed transactionally, but shared across
//     goroutines. Still eligible for private birth: non-transactional
//     barriers publish a private object the moment its reference is written
//     into a public one (Figure 10b), so cross-goroutine handoff through the
//     managed heap re-enters the protected state automatically.
//   - ClassTL: accessed transactionally but provably thread-local. Eligible
//     for private birth: both runtimes treat Private records as direct
//     access inside transactions (undo-logged writes, unlogged reads), which
//     is sound when only the allocating goroutine can reach the object.
//   - ClassMixed: accessed transactionally and shared — no elision. Mixed
//     sites may still carry granularity hints.
const (
	ClassNAITTL = "nait+tl"
	ClassNAIT   = "nait"
	ClassTL     = "tl"
	ClassMixed  = "mixed"
)

// Version is the manifest schema version this package reads and writes.
const Version = 1

// Site is one classified allocation site.
type Site struct {
	// ID is the stable allocation-site key: "basename.go:line". Basenames
	// (not full paths) keep the ID stable across checkouts; the runtime
	// resolves allocation PCs to the same form via runtime.Caller.
	ID string `json:"id"`

	Pkg  string `json:"pkg"`  // import path of the allocating package
	Func string `json:"func"` // fully qualified enclosing function
	File string `json:"file"` // file basename
	Line int    `json:"line"`

	// Class is one of the Class* constants above.
	Class string `json:"class"`

	// Hot marks mixed sites whose objects see enough distinct accesses that
	// pre-seeding slot-granularity records is worthwhile.
	Hot bool `json:"hot,omitempty"`

	// Granularity is a hint for hot sites: "slot" requests slot-level
	// records from birth (the PR 6 adaptive-promotion table).
	Granularity string `json:"granularity,omitempty"`

	// Reason is a human-readable justification emitted by the analysis
	// ("no txn access", "escapes via go stmt", ...). Informational only.
	Reason string `json:"reason,omitempty"`
}

// Manifest is the full analysis result for one module.
type Manifest struct {
	Version  int      `json:"version"`
	Tool     string   `json:"tool"`
	Module   string   `json:"module,omitempty"`
	Packages []string `json:"packages,omitempty"`
	Sites    []Site   `json:"sites"`
}

// Sort orders sites by (File, Line, Pkg) for deterministic output.
func (m *Manifest) Sort() {
	sort.Slice(m.Sites, func(i, j int) bool {
		a, b := &m.Sites[i], &m.Sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Pkg < b.Pkg
	})
}

// Elidable reports whether class names a private-birth-eligible site.
func Elidable(class string) bool {
	switch class {
	case ClassNAITTL, ClassNAIT, ClassTL:
		return true
	}
	return false
}

// SiteID builds the stable key for an allocation at file:line.
func SiteID(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}

// Index maps stable site IDs to their classification. Distinct sites that
// collide on "basename.go:line" (same-named files in different packages)
// are degraded to the weakest classification so the runtime never elides a
// site the analysis did not prove out.
func (m *Manifest) Index() map[string]Site {
	idx := make(map[string]Site, len(m.Sites))
	for _, s := range m.Sites {
		if prev, dup := idx[s.ID]; dup {
			idx[s.ID] = weaker(prev, s)
			continue
		}
		idx[s.ID] = s
	}
	return idx
}

// weaker merges two colliding sites conservatively: any disagreement on
// elidability yields mixed, and among elidable classes the intersection of
// guarantees wins (nait+tl ⊃ nait, nait+tl ⊃ tl, nait ∩ tl = mixed).
func weaker(a, b Site) Site {
	out := a
	out.Class = meetClass(a.Class, b.Class)
	out.Hot = a.Hot || b.Hot
	if out.Granularity == "" {
		out.Granularity = b.Granularity
	}
	if !Elidable(out.Class) && out.Class != ClassMixed {
		out.Class = ClassMixed
	}
	return out
}

func meetClass(a, b string) string {
	if a == b {
		return a
	}
	// nait+tl is the top elidable class; meeting it with anything yields
	// the other operand.
	if a == ClassNAITTL {
		return b
	}
	if b == ClassNAITTL {
		return a
	}
	// nait ∩ tl, or anything involving mixed/unknown: no elision.
	return ClassMixed
}

// WriteFile writes the manifest as indented JSON, sorted.
func (m *Manifest) WriteFile(path string) error {
	m.Sort()
	if m.Version == 0 {
		m.Version = Version
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a manifest, rejecting unknown schema versions and unknown
// classifications (an old runtime must not misread a newer analyzer).
func ReadFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("elide: parsing %s: %w", path, err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("elide: %s: unsupported manifest version %d (want %d)", path, m.Version, Version)
	}
	for i := range m.Sites {
		s := &m.Sites[i]
		switch s.Class {
		case ClassNAITTL, ClassNAIT, ClassTL, ClassMixed:
		default:
			return nil, fmt.Errorf("elide: %s: site %s has unknown class %q", path, s.ID, s.Class)
		}
		if s.ID == "" {
			s.ID = SiteID(s.File, s.Line)
		}
	}
	return &m, nil
}
