// Package recovery implements orphaned-transaction detection and safe lock
// stealing for the STM runtimes.
//
// The paper's ownership protocol (Figure 8) assumes every transaction that
// takes a record to Exclusive eventually releases it. A goroutine that dies
// mid-protocol breaks that assumption: its records stay Exclusive forever
// and every waiter spins on a lock that will never be released. This
// package supplies the liveness half the protocol is missing:
//
//   - Every descriptor carries an epoch heartbeat — a plain counter the
//     owning goroutine bumps at begin and on every conflict-wait slow path.
//     Heartbeats cost nothing on the hot path (no clocks) and let the
//     reaper distinguish "progressing" from "possibly stuck".
//
//   - A stale heartbeat alone only ever makes a transaction a *suspect*.
//     Suspicion never steals: a live owner may simply be descheduled, and
//     stealing from a live eager-mode owner — replaying its undo log while
//     it keeps writing in place — would corrupt memory. Suspects are
//     reported (metrics, stmtop) for operators.
//
//   - Stealing requires a confirmed death certificate: the runtime marks
//     the descriptor dead (an atomic release-store, so everything the dead
//     goroutine wrote happens-before any reaper that observes the flag)
//     when the goroutine is known to have terminated — today at the
//     faultinject Orphan points, in a managed runtime at thread teardown.
//     Only then does Reclaim replay the orphan's undo log (eager) or
//     discard its buffers (lazy), restore its records to Shared, and wake
//     the waiters.
//
// The Reaper is a periodic scanner over a runtime's registry (the Target
// interface, implemented by both runtimes). Waiters additionally steal
// inline — a conflict wait that finds its owner dead reclaims it on the
// spot — so orphans are recovered within a bounded wait even with no
// reaper running.
package recovery

import (
	"sync"
	"time"

	"repro/internal/stmapi"
)

// TxnInfo is one registered transaction as seen by a reaper scan.
type TxnInfo struct {
	ID          uint64        // owner ID (the descriptor's current stamp)
	Beat        uint64        // heartbeat epoch counter
	Status      stmapi.Status // lifecycle status at scan time
	Dead        bool          // confirmed death certificate: records are stealable
	Irrevocable bool          // holds the runtime's irrevocable token
}

// Target is the runtime surface a Reaper scans. Every runtime exposes one
// via its Recovery() method.
type Target interface {
	// Name identifies the runtime (a stmapi registry name), for reports.
	Name() string

	// VisitTxns calls f for every registered descriptor.
	VisitTxns(f func(TxnInfo))

	// Reclaim steals the records of the transaction with the given ID,
	// provided its descriptor is marked dead: eager runtimes replay the
	// orphan's undo log and release its records to Shared; lazy runtimes
	// discard buffers, restore (or, past the commit point, release) the
	// records, and complete the commit ticket. Returns false if the
	// transaction is gone, alive, or already being reclaimed.
	Reclaim(id uint64) bool
}

// Suspect is a live transaction whose heartbeat has not advanced for at
// least the configured suspicion window. Reported, never stolen from.
type Suspect struct {
	ID      uint64        `json:"id"`
	Beat    uint64        `json:"beat"`
	Stalled time.Duration `json:"stalled_ns"` // time since the beat last advanced
}

// Config parameterizes a Reaper.
type Config struct {
	// Interval is the background scan period. Zero means DefaultInterval.
	Interval time.Duration

	// SuspectAfter is how long a heartbeat may stall before the transaction
	// is reported as a suspect. Zero means DefaultSuspectAfter.
	SuspectAfter time.Duration
}

// Defaults for Config's zero fields.
const (
	DefaultInterval     = 5 * time.Millisecond
	DefaultSuspectAfter = 250 * time.Millisecond
)

// Report summarizes one scan.
type Report struct {
	Active   int       `json:"active"`   // live descriptors seen
	Reaped   int       `json:"reaped"`   // dead descriptors reclaimed this scan
	Suspects []Suspect `json:"suspects"` // stalled-heartbeat transactions (not stolen from)
}

// beatObs is the reaper's memory of one transaction's heartbeat.
type beatObs struct {
	beat  uint64
	since time.Time // when this beat value was first observed
}

// Reaper periodically scans a Target, reclaims confirmed-dead transactions,
// and tracks heartbeat-stall suspects. Construct with NewReaper; Start/Stop
// manage the background goroutine, or drive scans manually with ScanOnce.
type Reaper struct {
	t   Target
	cfg Config

	mu      sync.Mutex
	seen    map[uint64]beatObs
	stop    chan struct{}
	done    chan struct{}
	started bool

	steals int64 // reclaims performed by this reaper (mu)
	scans  int64 // scans performed (mu)
}

// NewReaper builds a Reaper over t. The reaper holds no reference to
// transactions between scans beyond the heartbeat bookkeeping.
func NewReaper(t Target, cfg Config) *Reaper {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	return &Reaper{t: t, cfg: cfg, seen: make(map[uint64]beatObs)}
}

// Start launches the background scan loop. Idempotent while running.
func (r *Reaper) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	stop, done := r.stop, r.done
	r.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(r.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				r.ScanOnce()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Idempotent.
func (r *Reaper) Stop() {
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return
	}
	r.started = false
	stop, done := r.stop, r.done
	r.mu.Unlock()
	close(stop)
	<-done
}

// ScanOnce performs one scan: reclaim every confirmed-dead transaction,
// refresh heartbeat bookkeeping, and report stalled suspects. Safe to call
// concurrently with the background loop (Reclaim is idempotent per victim).
func (r *Reaper) ScanOnce() Report {
	now := time.Now()
	var rep Report
	var deadIDs []uint64
	live := make(map[uint64]uint64) // id -> beat, this scan

	r.t.VisitTxns(func(ti TxnInfo) {
		if ti.Dead {
			deadIDs = append(deadIDs, ti.ID)
			return
		}
		rep.Active++
		live[ti.ID] = ti.Beat
	})

	for _, id := range deadIDs {
		if r.t.Reclaim(id) {
			rep.Reaped++
		}
	}

	r.mu.Lock()
	r.scans++
	r.steals += int64(rep.Reaped)
	// Drop bookkeeping for transactions that finished; advance or age the
	// rest. A transaction whose beat is unchanged since SuspectAfter ago is
	// a suspect — stalled, but with no death certificate, so left alone.
	for id := range r.seen {
		if _, ok := live[id]; !ok {
			delete(r.seen, id)
		}
	}
	for id, beat := range live {
		obs, ok := r.seen[id]
		if !ok || obs.beat != beat {
			r.seen[id] = beatObs{beat: beat, since: now}
			continue
		}
		if stalled := now.Sub(obs.since); stalled >= r.cfg.SuspectAfter {
			rep.Suspects = append(rep.Suspects, Suspect{ID: id, Beat: beat, Stalled: stalled})
		}
	}
	r.mu.Unlock()
	return rep
}

// Steals returns how many transactions this reaper's scans have reclaimed.
func (r *Reaper) Steals() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steals
}

// Scans returns how many scans have run.
func (r *Reaper) Scans() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scans
}
