package recovery

import (
	"sync"
	"testing"
	"time"

	"repro/internal/stmapi"
)

// fakeTarget is a scripted registry for reaper unit tests.
type fakeTarget struct {
	mu        sync.Mutex
	txns      map[uint64]*TxnInfo
	reclaimed []uint64
}

func newFakeTarget() *fakeTarget { return &fakeTarget{txns: map[uint64]*TxnInfo{}} }

func (f *fakeTarget) Name() string { return "fake" }

func (f *fakeTarget) VisitTxns(fn func(TxnInfo)) {
	f.mu.Lock()
	infos := make([]TxnInfo, 0, len(f.txns))
	for _, ti := range f.txns {
		infos = append(infos, *ti)
	}
	f.mu.Unlock()
	for _, ti := range infos {
		fn(ti)
	}
}

func (f *fakeTarget) Reclaim(id uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	ti, ok := f.txns[id]
	if !ok || !ti.Dead {
		return false
	}
	delete(f.txns, id)
	f.reclaimed = append(f.reclaimed, id)
	return true
}

func (f *fakeTarget) add(ti TxnInfo) {
	f.mu.Lock()
	f.txns[ti.ID] = &ti
	f.mu.Unlock()
}

func (f *fakeTarget) bump(id uint64) {
	f.mu.Lock()
	if ti, ok := f.txns[id]; ok {
		ti.Beat++
	}
	f.mu.Unlock()
}

func (f *fakeTarget) markDead(id uint64) {
	f.mu.Lock()
	if ti, ok := f.txns[id]; ok {
		ti.Dead = true
	}
	f.mu.Unlock()
}

func TestScanReclaimsOnlyDead(t *testing.T) {
	ft := newFakeTarget()
	ft.add(TxnInfo{ID: 1, Status: stmapi.Active})
	ft.add(TxnInfo{ID: 2, Status: stmapi.Active, Dead: true})
	ft.add(TxnInfo{ID: 3, Status: stmapi.Committed, Dead: true})
	r := NewReaper(ft, Config{})

	rep := r.ScanOnce()
	if rep.Reaped != 2 {
		t.Fatalf("reaped %d, want 2", rep.Reaped)
	}
	if rep.Active != 1 {
		t.Fatalf("active %d, want 1", rep.Active)
	}
	if r.Steals() != 2 {
		t.Fatalf("Steals() = %d, want 2", r.Steals())
	}
	ft.mu.Lock()
	left := len(ft.txns)
	ft.mu.Unlock()
	if left != 1 {
		t.Fatalf("%d txns left in registry, want 1 (the live one)", left)
	}
}

func TestStalledHeartbeatBecomesSuspectNotSteal(t *testing.T) {
	ft := newFakeTarget()
	ft.add(TxnInfo{ID: 7, Beat: 3, Status: stmapi.Active})
	r := NewReaper(ft, Config{SuspectAfter: 10 * time.Millisecond})

	if rep := r.ScanOnce(); len(rep.Suspects) != 0 {
		t.Fatalf("first sighting already suspect: %+v", rep.Suspects)
	}
	time.Sleep(15 * time.Millisecond)
	rep := r.ScanOnce()
	if len(rep.Suspects) != 1 || rep.Suspects[0].ID != 7 {
		t.Fatalf("expected txn 7 suspected, got %+v", rep.Suspects)
	}
	if rep.Suspects[0].Stalled < 10*time.Millisecond {
		t.Fatalf("stall %v below the window", rep.Suspects[0].Stalled)
	}
	// Suspicion never steals: the descriptor is untouched.
	if rep.Reaped != 0 || len(ft.reclaimed) != 0 {
		t.Fatalf("suspect was stolen from: reaped=%d reclaimed=%v", rep.Reaped, ft.reclaimed)
	}
}

func TestHeartbeatAdvanceClearsSuspicion(t *testing.T) {
	ft := newFakeTarget()
	ft.add(TxnInfo{ID: 9, Beat: 1, Status: stmapi.Active})
	r := NewReaper(ft, Config{SuspectAfter: 10 * time.Millisecond})
	r.ScanOnce()
	time.Sleep(15 * time.Millisecond)
	ft.bump(9) // the owner made progress just before the scan
	if rep := r.ScanOnce(); len(rep.Suspects) != 0 {
		t.Fatalf("advancing heartbeat still suspected: %+v", rep.Suspects)
	}
}

// TestSuspectConfirmedDeadAtEpochBoundary walks the full suspicion
// lifecycle across a heartbeat-epoch boundary: a stalled transaction is
// suspected (never stolen), then its death certificate lands in the same
// scan window as one final heartbeat advance — the certificate must win
// (the beat bump does NOT resurrect it), the scan must reclaim it exactly
// once, and both the suspect report and the reaper's heartbeat bookkeeping
// must clear.
func TestSuspectConfirmedDeadAtEpochBoundary(t *testing.T) {
	ft := newFakeTarget()
	ft.add(TxnInfo{ID: 21, Beat: 5, Status: stmapi.Active})
	r := NewReaper(ft, Config{SuspectAfter: 5 * time.Millisecond})

	r.ScanOnce() // first sighting: epoch 5 observed, clock starts
	time.Sleep(8 * time.Millisecond)
	rep := r.ScanOnce()
	if len(rep.Suspects) != 1 || rep.Suspects[0].ID != 21 {
		t.Fatalf("stalled txn not suspected: %+v", rep.Suspects)
	}
	if rep.Reaped != 0 {
		t.Fatalf("suspect stolen without a death certificate: reaped %d", rep.Reaped)
	}

	// Epoch boundary: the owner bumps its beat one last time AND the
	// runtime marks the descriptor dead before the next scan sees either.
	ft.bump(21)
	ft.markDead(21)
	rep = r.ScanOnce()
	if rep.Reaped != 1 {
		t.Fatalf("confirmed-dead txn not reclaimed: reaped %d", rep.Reaped)
	}
	if len(rep.Suspects) != 0 {
		t.Fatalf("dead txn still reported as suspect: %+v", rep.Suspects)
	}
	if len(ft.reclaimed) != 1 || ft.reclaimed[0] != 21 {
		t.Fatalf("reclaimed = %v, want [21]", ft.reclaimed)
	}
	r.mu.Lock()
	_, tracked := r.seen[21]
	r.mu.Unlock()
	if tracked {
		t.Fatal("heartbeat bookkeeping retained for a reclaimed txn")
	}
	// Reclaim is once-only: the txn is gone from the registry.
	if rep := r.ScanOnce(); rep.Reaped != 0 {
		t.Fatalf("second scan re-reaped: %d", rep.Reaped)
	}
}

func TestFinishedTxnDropsBookkeeping(t *testing.T) {
	ft := newFakeTarget()
	ft.add(TxnInfo{ID: 5, Status: stmapi.Active})
	r := NewReaper(ft, Config{})
	r.ScanOnce()
	ft.mu.Lock()
	delete(ft.txns, 5)
	ft.mu.Unlock()
	r.ScanOnce()
	r.mu.Lock()
	n := len(r.seen)
	r.mu.Unlock()
	if n != 0 {
		t.Fatalf("bookkeeping retained %d entries after txn finished", n)
	}
}

func TestStartStopBackgroundLoop(t *testing.T) {
	ft := newFakeTarget()
	ft.add(TxnInfo{ID: 11, Status: stmapi.Active, Dead: true})
	r := NewReaper(ft, Config{Interval: time.Millisecond})
	r.Start()
	r.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for r.Steals() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	if r.Steals() != 1 {
		t.Fatalf("background loop reaped %d, want 1", r.Steals())
	}
	if r.Scans() == 0 {
		t.Fatalf("no scans recorded")
	}
}
