// Package mvstm implements a timestamp-ordered multi-version STM over the
// same heap, transaction records, and commit clock as the eager and lazy
// runtimes. Where those runtimes make every read pay for isolation —
// per-read version validation plus a commit-time read-set check — mvstm
// moves the whole cost to writers: each committed write publishes an
// immutable version of the object stamped by the commit clock, and readers
// pick a snapshot timestamp at begin and then walk version chains with no
// validation, no aborts, and no per-read writes to shared metadata.
//
// Transactions run under snapshot isolation: every read (in a read-only OR
// a writing transaction) is satisfied from the newest committed version at
// or below the begin snapshot rv, and writers are serialized by
// first-committer-wins conflict detection — a writer whose write-set record
// carries a version above rv lost a race with a concurrent committer and
// aborts. There is no read-set validation at all, which is exactly what
// snapshot isolation gives up: two transactions may read overlapping data
// and commit disjoint writes based on mutually stale reads (write skew; see
// the Figure 6 matrix's SI/MV column in internal/litmus). In exchange,
// read-only transactions — AtomicRead, or Atomic bodies that never write —
// commit with zero aborts and zero retries under any writer storm.
//
// Writers buffer slot-granular and commit like the lazy runtime: acquire
// the write set's records in handle order, first-committer-wins check,
// advance the clock to obtain the write version, pass the commit point,
// install a new version on each object's chain, write the buffered values
// back to the slots (so non-transactional readers under weak atomicity see
// current state), and release the records stamped with the write version.
// Versions strictly decrease along each chain, and the head version's
// timestamp always matches the record's version once released, so the
// record word and the chain never disagree about what is newest.
//
// Dead versions are reclaimed against a watermark: the smallest begin
// snapshot among live transactions (tracked in the same sharded registry
// the reaper scans). A long-running snapshot reader therefore pins exactly
// the history it might still read, and nothing more; when it finishes, the
// next collection prunes past its snapshot. See gc.go.
package mvstm

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/objset"
	"repro/internal/stats"
	"repro/internal/stmapi"
	"repro/internal/trace"
	"repro/internal/txrec"
)

// Status is the lifecycle state of a transaction attempt (shared with the
// other runtimes through stmapi).
type Status = stmapi.Status

// Transaction statuses.
const (
	Active    = stmapi.Active
	Committed = stmapi.Committed
	Aborted   = stmapi.Aborted
)

// Hooks are optional test instrumentation points inside the commit window,
// mirroring the lazy runtime's so the litmus harness drives both uniformly.
type Hooks struct {
	// OnAfterCommitPoint runs after the transaction has logically committed
	// (status set, versions installed, records held) but before any buffered
	// value reaches the object slots.
	OnAfterCommitPoint func(*Txn)

	// OnAfterWriteback runs after the k-th individual slot write-back
	// (0-based), still before the records are released.
	OnAfterWriteback func(tx *Txn, k int)
}

// DefaultGCEvery is the default Config.GCEvery.
const DefaultGCEvery = 64

// Config parameterizes a Runtime. The cross-runtime knobs live in the
// embedded stmapi.CommonConfig; two of them read differently here:
// Granularity is accepted but buffering is always slot-granular (a
// multi-version runtime has no reason to manufacture the granular
// anomalies), and NoCommitClock is ignored — the clock is what stamps
// versions, so it cannot be turned off.
type Config struct {
	stmapi.CommonConfig

	// Hooks instrument the commit window (tests only).
	Hooks Hooks

	// GCEvery is the number of writing commits between inline version-chain
	// collections (each collection recomputes the watermark and prunes the
	// committing transaction's own write set). Zero means DefaultGCEvery;
	// negative disables inline collection (tests drive GC() directly).
	GCEvery int
}

// Stats aggregates runtime counters (sharded, fed from descriptor-local
// deltas flushed at commit/abort, like the other runtimes).
type Stats struct {
	Starts      stats.Counter
	Commits     stats.Counter
	Aborts      stats.Counter
	UserRetries stats.Counter
	TxnReads    stats.Counter
	TxnWrites   stats.Counter
	SelfAborts  stats.Counter
	DoomsIssued stats.Counter

	ReaperSteals    stats.Counter
	Escalations     stats.Counter
	IrrevocableTxns stats.Counter
	IrrevocableNs   stats.Counter

	ClockAdvances stats.Counter // commits whose clock-increment CAS succeeded

	// Multi-version counters (see stmapi.StatsSnapshot for semantics).
	SnapshotReads     stats.Counter
	ReadOnlyTxns      stats.Counter
	ReadOnlyAborts    stats.Counter
	VersionsInstalled stats.Counter
	VersionsGCd       stats.Counter
}

// StatsSnapshot is shared with the other runtimes through stmapi.
type StatsSnapshot = stmapi.StatsSnapshot

// regSlots is the capacity of the fixed active-transaction slot array (kept
// concrete per runtime so the hot path stays monomorphic).
const regSlots = 256

type regSlot struct {
	p atomic.Pointer[Txn]
	_ [56]byte
}

// registry tracks in-flight descriptors: CAS-claimed id-hashed slots with a
// sync.Map overflow. Beyond the usual duties (ActiveTransactions, owner
// lookups, the reaper's scan) it is also the GC's view of live snapshots:
// the watermark is the minimum pinned snapshot over registered descriptors.
type registry struct {
	slots    [regSlots]regSlot
	overflow sync.Map // id -> *Txn
}

func (r *registry) add(tx *Txn) {
	h := int(tx.id)
	for i := 0; i < regSlots; i++ {
		s := &r.slots[(h+i)&(regSlots-1)]
		if s.p.Load() == nil && s.p.CompareAndSwap(nil, tx) {
			tx.slot = (h + i) & (regSlots - 1)
			return
		}
	}
	tx.slot = -1
	r.overflow.Store(tx.id, tx)
}

func (r *registry) remove(tx *Txn) {
	if tx.slot >= 0 {
		r.slots[tx.slot].p.Store(nil)
		return
	}
	r.overflow.Delete(tx.id)
}

func (r *registry) forEach(f func(*Txn) bool) {
	for i := range r.slots {
		if tx := r.slots[i].p.Load(); tx != nil {
			if !f(tx) {
				return
			}
		}
	}
	r.overflow.Range(func(_, v any) bool { return f(v.(*Txn)) })
}

func (r *registry) findStamp(id uint64) *Txn {
	var found *Txn
	r.forEach(func(tx *Txn) bool {
		if tx.stamp.Load() == id {
			found = tx
			return false
		}
		return true
	})
	return found
}

// Runtime is a multi-version STM instance bound to a heap.
type Runtime struct {
	Heap  *objmodel.Heap
	Stats Stats

	cfg      Config
	handler  conflict.Handler
	policy   conflict.Policy
	nextID   atomic.Uint64
	reg      registry
	pool     sync.Pool // idle *Txn descriptors
	tracer   atomic.Pointer[trace.Tracer]
	injector atomic.Pointer[faultinject.Injector]
	sink     atomic.Pointer[sinkBox]
	staleObs conflict.StaleObserver

	clock *objmodel.CommitClock

	// Commit gate: committers counts writing transactions inside the commit
	// protocol, irrevToken is the single irrevocable-transaction token. An
	// irrevocable switch takes the token, drains committers, and then runs
	// alone — with nothing else committing, versions cannot move past its
	// snapshot and first-committer-wins can never fail it, which is how a
	// runtime with no read locks at all keeps the no-abort guarantee.
	committers atomic.Int64
	irrevToken atomic.Uint64

	// GC state: gcTick schedules inline collections, gcMu serializes pruners
	// (protecting the reclaim counts), watermark/wmLag are the last computed
	// watermark and its distance behind the clock, for /metrics.
	gcTick    atomic.Uint64
	gcMu      sync.Mutex
	watermark atomic.Uint64
	wmLag     atomic.Int64

	// Commit tickets order write-back completion for quiescence mode (see
	// the lazy runtime; read-only commits have no write-back and take no
	// ticket).
	tickets atomic.Uint64
	done    atomic.Uint64
	pending map[uint64]struct{}
	doneMu  sync.Mutex
	doneCv  *sync.Cond
}

// New creates a multi-version Runtime over heap. Invalid configurations are
// rejected with a panic, matching the other runtimes.
func New(heap *objmodel.Heap, cfg Config) *Runtime {
	if err := cfg.Normalize(); err != nil {
		panic("mvstm: " + err.Error())
	}
	if cfg.GCEvery == 0 {
		cfg.GCEvery = DefaultGCEvery
	}
	h := cfg.Handler
	if h == nil {
		h = &conflict.Backoff{}
	}
	rt := &Runtime{Heap: heap, cfg: cfg, handler: h, policy: conflict.AsPolicy(h)}
	rt.pending = make(map[uint64]struct{})
	rt.doneCv = sync.NewCond(&rt.doneMu)
	rt.clock = heap.Clock()
	rt.staleObs, _ = h.(conflict.StaleObserver)
	return rt
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// SetTracer installs (or, with nil, removes) the event tracer.
func (rt *Runtime) SetTracer(t *trace.Tracer) { rt.tracer.Store(t) }

// Tracer returns the installed tracer, or nil.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer.Load() }

// SetInjector installs (or, with nil, removes) a fault injector, sampled
// once per top-level Atomic like the tracer.
func (rt *Runtime) SetInjector(in *faultinject.Injector) { rt.injector.Store(in) }

// sinkBox wraps a CommitSink so it can live in an atomic.Pointer (which
// needs a concrete element type) regardless of the sink's dynamic type.
type sinkBox struct{ s stmapi.CommitSink }

// SetCommitSink installs (or, with nil, removes) the durable commit sink
// (stmapi.DurableRuntime). Sampled once per top-level Atomic like the
// tracer; transactions in flight keep their previous setting.
func (rt *Runtime) SetCommitSink(s stmapi.CommitSink) {
	if s == nil {
		rt.sink.Store(nil)
		return
	}
	rt.sink.Store(&sinkBox{s: s})
}

// DrainCommitters waits until no writing transaction is inside the commit
// gate (between enterCommit and exitCommit), or the timeout elapses. An
// instant with an empty gate proves every commit that entered before the
// call has installed its versions and released — the barrier the durable
// store's live checkpoint uses to bound snapshot coverage. Commits entering
// after the observation are not excluded (a barrier, not a lock).
func (rt *Runtime) DrainCommitters(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for a := 0; ; a++ {
		if rt.committers.Load() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		conflict.WaitAttempt(a, 0)
	}
}

// ErrAborted aborts the transaction without retry when returned from the
// body.
var ErrAborted = errors.New("mvstm: transaction aborted by user")

type signal uint8

const (
	sigRestart signal = iota + 1
	sigRetry
	sigCancel
)

type txSignal struct {
	s  signal
	tx *Txn
}

type slotKey struct {
	obj  *objmodel.Object
	slot int
}

// Txn is a multi-version transaction descriptor. Pooled across Atomic
// calls; user code must not retain one past the body.
type Txn struct {
	rt      *Runtime
	id      uint64
	slot    int
	status  atomic.Uint32
	attempt int

	// rv is the begin snapshot: reads see the newest version at or below
	// it. An irrevocable transaction sets rv to MaxUint64 after draining
	// the commit gate — running alone, "newest" is always consistent.
	// wv is the write version obtained from the clock before the commit
	// point; every release path stamps records with it.
	rv uint64
	wv uint64

	// snap is the GC pin, readable by the collector through the registry:
	// the oldest snapshot this descriptor may still read from. It is
	// stored low (1) before the first rv is taken so a concurrent
	// watermark scan can never race past a snapshot it did not see, then
	// refined to rv at each begin (monotonic; over-pinning is safe).
	snap atomic.Uint64

	// readOnly marks an AtomicRead transaction: writes panic, commit takes
	// the zero-metadata path, and any abort is counted as a read-only
	// abort (the litmus suite asserts there are none).
	readOnly bool

	buf map[slotKey]uint64 // buffered writes, always slot-granular

	// Commit scratch, reused across attempts and pooled incarnations.
	objs     []*objmodel.Object
	owned    objset.VerSet
	inCommit bool // inside the commit gate; reaper must decrement committers

	// Arbitration state (see the eager runtime).
	stamp  atomic.Uint64
	doomed atomic.Bool
	karma  atomic.Int64

	// Recovery state (see the eager runtime).
	hb      atomic.Uint64
	dead    atomic.Bool
	reaping atomic.Bool
	ticket  uint64

	// Irrevocability state.
	irrevocable bool
	irrevStamp  atomic.Bool
	irrevAt     time.Time

	ctx context.Context
	fi  *faultinject.Injector

	// sink is the commit sink sampled at getTxn (nil-check hook like tr);
	// redo is its scratch record, reused across commits.
	sink stmapi.CommitSink
	redo []stmapi.RedoWrite

	// Statistics deltas flushed at commit/abort.
	nStarts     int64
	nReads      int64
	nWrites     int64
	nRetries    int64
	nSelfAborts int64
	nDooms      int64
	nClockAdv   int64
	nSnapReads  int64
	nInstalled  int64

	tr       *trace.Tracer
	blameObj uint64
	beginAt  time.Time
	abortAt  time.Time
}

// ID returns the descriptor's owner ID.
func (tx *Txn) ID() uint64 { return tx.id }

// Status returns the descriptor's current status.
func (tx *Txn) Status() Status { return Status(tx.status.Load()) }

// Attempt returns the 0-based retry attempt of the current top-level
// execution.
func (tx *Txn) Attempt() int { return tx.attempt }

func (rt *Runtime) getTxn() *Txn {
	tx, _ := rt.pool.Get().(*Txn)
	if tx == nil {
		tx = &Txn{rt: rt, buf: make(map[slotKey]uint64)}
	}
	tx.id = rt.nextID.Add(1)
	tx.tr = rt.tracer.Load()
	tx.fi = rt.injector.Load()
	tx.sink = nil
	if b := rt.sink.Load(); b != nil {
		tx.sink = b.s
	}
	tx.blameObj = 0
	tx.abortAt = time.Time{}
	tx.readOnly = false
	tx.inCommit = false
	tx.doomed.Store(false)
	tx.karma.Store(0)
	tx.dead.Store(false)
	tx.reaping.Store(false)
	tx.irrevocable = false
	tx.irrevStamp.Store(false)
	// Pin the GC low before the registry makes tx reachable and before the
	// first clock read: a watermark scan that misses this store must have
	// run before it, so this transaction's upcoming rv (read after it) is
	// at least that scan's clock sample and cannot be pruned out from
	// under it. See gc.go for the full ordering argument.
	tx.snap.Store(1)
	tx.stamp.Store(tx.id)
	rt.reg.add(tx)
	return tx
}

func (rt *Runtime) putTxn(tx *Txn) {
	rt.reg.remove(tx)
	tx.snap.Store(0)
	tx.owned.Reset()
	clear(tx.buf)
	clear(tx.objs)
	tx.objs = tx.objs[:0]
	tx.ctx = nil
	tx.fi = nil
	tx.sink = nil
	tx.redo = tx.redo[:0]
	rt.pool.Put(tx)
}

func (tx *Txn) begin() {
	tx.status.Store(uint32(Active))
	tx.doomed.Store(false)
	tx.hb.Add(1)
	tx.ticket = 0
	clear(tx.buf)
	tx.nStarts++
	tx.wv = 0
	tx.rv = tx.rt.clock.Load()
	tx.snap.Store(tx.rv) // refine the pin; previous value was ≤ rv
	if tr := tx.tr; tr != nil {
		tx.beginAt = time.Now()
		if !tx.abortAt.IsZero() {
			tr.ObserveAbortGap(tx.beginAt.Sub(tx.abortAt))
			tx.abortAt = time.Time{}
		}
		tr.Record(trace.EvBegin, tx.id, 0, 0, 0)
	}
}

func (tx *Txn) flushStats() {
	s := &tx.rt.Stats
	hint := int(tx.id)
	if tx.nStarts != 0 {
		s.Starts.AddShard(hint, tx.nStarts)
		tx.nStarts = 0
	}
	if tx.nReads != 0 {
		s.TxnReads.AddShard(hint, tx.nReads)
		tx.nReads = 0
	}
	if tx.nWrites != 0 {
		s.TxnWrites.AddShard(hint, tx.nWrites)
		tx.nWrites = 0
	}
	if tx.nRetries != 0 {
		s.UserRetries.AddShard(hint, tx.nRetries)
		tx.nRetries = 0
	}
	if tx.nSelfAborts != 0 {
		s.SelfAborts.AddShard(hint, tx.nSelfAborts)
		tx.nSelfAborts = 0
	}
	if tx.nDooms != 0 {
		s.DoomsIssued.AddShard(hint, tx.nDooms)
		tx.nDooms = 0
	}
	if tx.nClockAdv != 0 {
		s.ClockAdvances.AddShard(hint, tx.nClockAdv)
		tx.nClockAdv = 0
	}
	if tx.nSnapReads != 0 {
		s.SnapshotReads.AddShard(hint, tx.nSnapReads)
		tx.nSnapReads = 0
	}
	if tx.nInstalled != 0 {
		s.VersionsInstalled.AddShard(hint, tx.nInstalled)
		tx.nInstalled = 0
	}
}

// Restart aborts and re-executes the transaction.
func (tx *Txn) Restart() { panic(txSignal{sigRestart, tx}) }

// Retry aborts and blocks until the heap changes, then re-executes. With no
// read set to wait on, "changes" is approximated conservatively by the
// commit clock moving past the begin snapshot: every committed write
// advances the clock, so the wait wakes on any commit (a superset of the
// read-set wakeups the other runtimes give).
func (tx *Txn) Retry() {
	tx.nRetries++
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvRetry, tx.id, 0, 0, 0)
	}
	panic(txSignal{sigRetry, tx})
}

// resolveConflict builds the arbitration Info for a commit-time conflict on
// o and asks the policy (see the lazy runtime; mvstm bodies never contend,
// so this only runs during write-set acquisition).
func (tx *Txn) resolveConflict(o *objmodel.Object, attempt int, rec txrec.Word) conflict.Decision {
	tx.karma.Add(1)
	info := conflict.Info{
		Kind: conflict.TxnWrite, Attempt: attempt, Record: rec,
		Self: tx.id, SelfPrio: tx.karma.Load(),
	}
	if txrec.IsExclusive(rec) {
		info.Owner = txrec.Owner(rec)
		if victim := tx.rt.reg.findStamp(info.Owner); victim != nil {
			if victim.dead.Load() {
				tx.rt.reapTxn(victim)
				return conflict.Wait
			}
			info.OwnerActive = true
			info.OwnerPrio = victim.karma.Load()
			info.OwnerIrrevocable = victim.irrevStamp.Load()
		}
	}
	d := tx.rt.policy.Resolve(info)
	switch d {
	case conflict.SelfAbort:
		tx.nSelfAborts++
		if tr := tx.tr; tr != nil {
			tr.Record(trace.EvSelfAbort, tx.id, uint64(o.Ref()), 0, 0)
		}
	case conflict.AbortOther:
		if victim := tx.rt.reg.findStamp(info.Owner); victim != nil && !victim.irrevStamp.Load() {
			victim.doomed.Store(true)
			tx.nDooms++
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvDoom, tx.id, uint64(o.Ref()), 0, info.Owner)
			}
		}
		a := attempt
		if a > 9 {
			a = 9 // camp with yields, never sleep (see the lazy runtime)
		}
		conflict.WaitAttempt(a, 0)
	}
	return d
}

// Read returns the transaction's view of o's slot: the private write buffer
// if this transaction wrote the slot, otherwise the newest committed
// version at or below the begin snapshot. Snapshot reads validate nothing
// and touch no shared metadata; they cannot abort and never invoke the
// conflict handler, so readers are invisible to the causal recorder's
// conflict DAG.
func (tx *Txn) Read(o *objmodel.Object, slot int) uint64 {
	tx.nReads++
	if !tx.readOnly {
		if tx.doomed.Load() && !tx.irrevocable {
			tx.blameObj = uint64(o.Ref())
			tx.Restart()
		}
		if tx.ctx != nil && !tx.irrevocable && tx.ctx.Err() != nil {
			panic(txSignal{sigCancel, tx})
		}
		if len(tx.buf) > 0 {
			if v, ok := tx.buf[slotKey{o, slot}]; ok {
				if tr := tx.tr; tr != nil {
					tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, 0)
				}
				return v
			}
		}
	}
	return tx.snapshotRead(o, slot)
}

// snapshotRead resolves a read against the object's version chain, falling
// back to the transaction record for objects no multi-version transaction
// has written yet.
//
// The record word is consulted before the chain, and the read waits out a
// committer that could still install a version the snapshot must see. A
// committer advances the commit clock before installing, so a transaction
// that begins in that window gets rv equal to the in-flight write version;
// the committer holds the record Exclusive for that whole window (from
// before its clock advance until after its install), which makes an
// Exclusive record with a chain head at or below rv the precise signature
// of "a covered version may be in flight". Loading the record first also
// orders the loads: a Shared word proves every release — and therefore
// every install, which precedes it — that could carry a covered timestamp
// is already visible to the chain load that follows. Without the wait, a
// writer reads the stale head and then passes first-committer-wins because
// the lost commit's stamp equals rv rather than exceeding it — a lost
// update (the crash figure's conservation check catches exactly this).
func (tx *Txn) snapshotRead(o *objmodel.Object, slot int) uint64 {
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		if head := o.MVHead.Load(); head != nil {
			if head.TS <= tx.rv && txrec.IsExclusive(w) {
				// In-flight committer whose stamp may be covered by this
				// snapshot: wait for its install + release (bounded by its
				// commit; dead owners are reaped inline below). A head
				// above rv needs no wait — anything the owner installs is
				// stamped above the head, hence above rv too.
				tx.waitOwner(o, w, attempt)
				continue
			}
			for v := head; v != nil; v = v.Prev() {
				if v.TS <= tx.rv {
					tx.nSnapReads++
					if tr := tx.tr; tr != nil {
						tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, v.TS)
					}
					return v.Vals[slot]
				}
			}
			// Every version postdates the snapshot. Unreachable when only
			// multi-version transactions write this object (the chain
			// bottoms out at the pre-chain version, whose timestamp a
			// later snapshot always covers); a foreign-runtime or
			// non-transactional writer can manufacture it. Catch the clock
			// up and restart with a snapshot that covers the chain.
			tx.rt.clock.Raise(head.TS)
			tx.restartStale(o)
			continue
		}
		// No chain: the object has never been committed to by a
		// multi-version transaction. Read the slot under the record
		// seqlock — an unchanged record word across the load proves no
		// writer released (publishing new state) in between.
		switch {
		case txrec.IsPrivate(w):
			// Traced even though no snapshot logic applies: the soundness
			// oracle audits private (elided) accesses against the manifest.
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, 0)
			}
			return o.LoadSlot(slot)
		case txrec.IsShared(w):
			ver := txrec.Version(w)
			if ver > tx.rv {
				// Committed after the snapshot by a writer that installed
				// no version chain (foreign runtime or non-transactional
				// barrier): the old value is gone, so the snapshot cannot
				// be served. Unreachable in pure multi-version runs.
				tx.rt.clock.Raise(ver)
				tx.restartStale(o)
				continue
			}
			v := o.LoadSlot(slot)
			if o.Rec.Load() != w {
				continue
			}
			tx.nSnapReads++
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, ver)
			}
			return v
		default:
			// Exclusive (a committer between acquire and release, or a
			// foreign-runtime owner) or exclusive-anonymous (a
			// non-transactional writer). A multi-version committer
			// installs its chain before releasing, so waiting here is
			// bounded by its commit; a dead owner is reaped inline.
			tx.waitOwner(o, w, attempt)
		}
	}
}

// waitOwner parks a snapshot read behind a record owner for one wait round:
// a confirmed-dead owner is reaped inline instead (so readers never stall on
// an orphan), and a transactional reader still honors dooms, cancellation,
// and the self-abort threshold while it waits. Read-only transactions wait
// unconditionally — waiting is not aborting, so the zero-abort guarantee of
// the snapshot read path survives.
func (tx *Txn) waitOwner(o *objmodel.Object, w uint64, attempt int) {
	if txrec.IsExclusive(w) {
		if victim := tx.rt.reg.findStamp(txrec.Owner(w)); victim != nil && victim.dead.Load() {
			tx.rt.reapTxn(victim)
			return
		}
	}
	tx.hb.Add(1)
	if !tx.readOnly {
		if tx.ctx != nil && !tx.irrevocable && tx.ctx.Err() != nil {
			panic(txSignal{sigCancel, tx})
		}
		if (tx.doomed.Load() || attempt >= tx.rt.cfg.SelfAbortAfter) && !tx.irrevocable {
			tx.blameObj = uint64(o.Ref())
			tx.Restart()
		}
	}
	conflict.WaitAttempt(attempt, 0)
}

// restartStale aborts an attempt whose snapshot cannot be served (chainless
// object overwritten, or chain pruned past a foreign write). For a
// read-only transaction this is the one abort path that exists — kept
// honest by the ReadOnlyAborts counter the litmus suite pins to zero.
func (tx *Txn) restartStale(o *objmodel.Object) {
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvValidation, tx.id, uint64(o.Ref()), tx.attempt, 0)
		tr.Hot().BumpValidation(uint64(o.Ref()))
	}
	tx.blameObj = uint64(o.Ref())
	tx.Restart()
}

// ReadRef is Read for reference slots.
func (tx *Txn) ReadRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(tx.Read(o, slot))
}

// Write buffers a store to o's slot. Always slot-granular: a span never
// snapshots a neighbouring slot, so the Section 2.4 granular anomalies
// cannot occur regardless of the configured granularity.
func (tx *Txn) Write(o *objmodel.Object, slot int, v uint64) {
	if tx.readOnly {
		panic("mvstm: write inside a read-only transaction (AtomicRead)")
	}
	tx.nWrites++
	if tx.doomed.Load() && !tx.irrevocable {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	if tx.ctx != nil && !tx.irrevocable && tx.ctx.Err() != nil {
		panic(txSignal{sigCancel, tx})
	}
	tx.buf[slotKey{o, slot}] = v
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvWrite, tx.id, uint64(o.Ref()), slot, 0)
	}
}

// WriteRef is Write for reference slots.
func (tx *Txn) WriteRef(o *objmodel.Object, slot int, r objmodel.Ref) {
	tx.Write(o, slot, uint64(r))
}

// enterCommit admits a writing transaction into the commit protocol,
// waiting out an irrevocable token holder. Returns false when the attempt
// must abort instead (cancelled or doomed while waiting).
func (rt *Runtime) enterCommit(tx *Txn) bool {
	for a := 0; ; a++ {
		if tok := rt.irrevToken.Load(); tok == 0 || tok == tx.id {
			rt.committers.Add(1)
			if tok = rt.irrevToken.Load(); tok == 0 || tok == tx.id {
				tx.inCommit = true
				return true
			}
			rt.committers.Add(-1) // lost the race to an irrevocable switch
		}
		tx.hb.Add(1)
		if tx.ctx != nil && tx.ctx.Err() != nil {
			return false
		}
		if tx.doomed.Load() && !tx.irrevocable {
			return false
		}
		rt.reapDead() // a dead token holder must not gate commits forever
		conflict.WaitAttempt(a, 0)
	}
}

func (rt *Runtime) exitCommit(tx *Txn) {
	if tx.inCommit {
		tx.inCommit = false
		rt.committers.Add(-1)
	}
}

// release restores the records of every object acquired by this commit;
// with bump they are stamped with the write version (matching the installed
// chain head), without it the original shared words are restored — nothing
// was published, and the untouched slots make the seqlock's ABA benign.
func (tx *Txn) release(bump bool) {
	for _, o := range tx.objs {
		sv, ok := tx.owned.Get(o)
		if !ok {
			continue
		}
		if bump {
			o.Rec.ReleaseOwnedAt(sv, tx.wv)
		} else {
			o.Rec.Store(txrec.MakeShared(sv))
		}
	}
	tx.owned.Reset()
	tx.objs = tx.objs[:0]
}

// snapshotSlots copies an object's current slot values — the image a new
// chain version publishes.
func snapshotSlots(o *objmodel.Object) []uint64 {
	vals := make([]uint64, len(o.Slots))
	for i := range vals {
		vals[i] = o.LoadSlot(i)
	}
	return vals
}

// commit runs the multi-version commit protocol for a writing transaction:
// enter the commit gate, acquire the write set's records in handle order
// with the first-committer-wins check (a record version above the begin
// snapshot means a concurrent committer got there first), obtain the write
// version, pass the commit point, install a new version on every written
// object's chain, write the buffered slots back, release the records
// stamped with the write version, and (in quiescence mode) wait for all
// previously serialized write-backs.
func (tx *Txn) commit() (ok bool, err error) {
	rt := tx.rt
	if tx.doomed.Load() && !tx.irrevocable {
		return false, nil
	}
	if !rt.enterCommit(tx) {
		return false, nil
	}
	defer rt.exitCommit(tx)

	tx.objs = tx.objs[:0]
	tx.owned.Reset()
	for key := range tx.buf {
		dup := false
		for _, o := range tx.objs {
			if o == key.obj {
				dup = true
				break
			}
		}
		if !dup {
			tx.objs = append(tx.objs, key.obj)
		}
	}
	sortByRef(tx.objs)

	for _, o := range tx.objs {
		if txrec.IsPrivate(o.Rec.Load()) {
			continue // thread-local: written back without synchronization
		}
		for attempt := 0; ; attempt++ {
			w := o.Rec.Load()
			if txrec.IsShared(w) {
				if fi := tx.fi; fi != nil {
					switch fi.Fire(faultinject.PreAcquire, tx.id) {
					case faultinject.Abort:
						if !tx.irrevocable {
							tx.blameObj = uint64(o.Ref())
							tx.release(false)
							return false, nil
						}
					case faultinject.Crash:
						if !tx.irrevocable {
							tx.release(false)
							tx.crash(faultinject.PreAcquire)
						}
					case faultinject.Orphan:
						tx.die(faultinject.PreAcquire)
					}
				}
				ver := txrec.Version(w)
				if ver > tx.rv {
					// First committer wins: a concurrent transaction
					// committed this object after our snapshot. Raise the
					// clock over the lost version so the retry's snapshot
					// covers it even when the release stamp outran the
					// clock (two committers sharing a write version).
					tx.notifyStale(uint64(o.Ref()))
					tx.blameObj = uint64(o.Ref())
					tx.release(false)
					rt.clock.Raise(ver)
					return false, nil
				}
				if o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
					tx.owned.Put(o, ver)
					if tr := tx.tr; tr != nil {
						tr.Record(trace.EvLockAcquire, tx.id, uint64(o.Ref()), 0, ver)
					}
					if fi := tx.fi; fi != nil {
						switch fi.Fire(faultinject.PostAcquire, tx.id) {
						case faultinject.Abort:
							if !tx.irrevocable {
								tx.blameObj = uint64(o.Ref())
								tx.release(false)
								return false, nil
							}
						case faultinject.Crash:
							if !tx.irrevocable {
								tx.release(false)
								tx.crash(faultinject.PostAcquire)
							}
						case faultinject.Orphan:
							tx.die(faultinject.PostAcquire)
						}
					}
					break
				}
				continue
			}
			if tr := tx.tr; tr != nil {
				ref := uint64(o.Ref())
				var owner uint64
				if txrec.IsExclusive(w) {
					owner = txrec.Owner(w)
				}
				tr.Record(trace.EvConflict, tx.id, ref, 0, owner)
				tr.Hot().BumpConflict(ref)
			}
			tx.hb.Add(1)
			if tx.irrevocable {
				// Only a dead owner can hold a record while we hold the
				// token with the gate drained: reap it and re-probe.
				if txrec.IsExclusive(w) {
					if victim := rt.reg.findStamp(txrec.Owner(w)); victim != nil && victim.dead.Load() {
						rt.reapTxn(victim)
					}
				}
				conflict.WaitAttempt(attempt, 0)
				continue
			}
			if tx.ctx != nil && tx.ctx.Err() != nil {
				tx.release(false)
				return false, nil
			}
			if tx.doomed.Load() || attempt >= rt.cfg.SelfAbortAfter {
				tx.blameObj = uint64(o.Ref())
				tx.release(false)
				return false, nil
			}
			if tx.resolveConflict(o, attempt, w) == conflict.SelfAbort {
				tx.blameObj = uint64(o.Ref())
				tx.release(false)
				return false, nil
			}
		}
	}

	if tx.doomed.Load() && !tx.irrevocable {
		tx.release(false)
		return false, nil
	}
	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PreValidate, tx.id) {
		case faultinject.Abort:
			if !tx.irrevocable {
				tx.release(false)
				return false, nil
			}
		case faultinject.Crash:
			if !tx.irrevocable {
				tx.release(false)
				tx.crash(faultinject.PreValidate)
			}
		case faultinject.Orphan:
			tx.die(faultinject.PreValidate)
		}
	}
	// There is no validation step: first-committer-wins was enforced
	// record-by-record at acquisition, and snapshot reads need no
	// re-checking — that is the snapshot-isolation trade (write skew
	// admitted, see the litmus matrix's MV column).

	// Obtain the write version before the commit point (GV4
	// pass-on-failure) so every release path — normal, crash branch, or a
	// reaper completing an orphan — stamps the same version the installed
	// chain heads carry.
	var advanced bool
	if tx.wv, advanced = rt.clock.Advance(); advanced {
		tx.nClockAdv++
	}

	// ----- commit point: the transaction is now serialized. -----
	tx.status.Store(uint32(Committed))
	ticket := rt.tickets.Add(1)
	tx.ticket = ticket
	if h := rt.cfg.Hooks.OnAfterCommitPoint; h != nil {
		h(tx)
	}

	// Install versions, then write the buffered slots back. Installing
	// first means a snapshot at or past wv reads the new values from the
	// chain even while the slots still hold old state; non-transactional
	// readers under weak atomicity go straight to the slots and still see
	// the lazy write-back window (the litmus MI programs depend on it).
	k := 0
	for _, o := range tx.objs {
		sv, held := tx.owned.Get(o)
		if held {
			rs := tx.wv
			if sv+1 > rs {
				rs = sv + 1 // mirror ReleaseOwnedAt: chain and record agree
			}
			head := o.MVHead.Load()
			if head == nil {
				// First multi-version commit to this object: anchor the
				// chain with the pre-transaction image at the record's
				// version, so older snapshots keep reading the old state.
				base := &objmodel.MVVersion{TS: sv, Vals: snapshotSlots(o)}
				o.MVHead.Store(base)
				head = base
				tx.nInstalled++
			}
			vals := snapshotSlots(o)
			for key, v := range tx.buf {
				if key.obj == o {
					vals[key.slot] = v
				}
			}
			node := &objmodel.MVVersion{TS: rs, Vals: vals}
			node.SetPrev(head)
			o.MVHead.Store(node)
			tx.nInstalled++
		}
		for key, v := range tx.buf {
			if key.obj != o {
				continue
			}
			// Publication point under an elision manifest: a private-born
			// object written into a public container escapes at write-back.
			if rt.Heap.HasManifest() && v != 0 && o.IsRefSlot(key.slot) &&
				!txrec.IsPrivate(o.Rec.Load()) {
				rt.Heap.PublishRef(objmodel.Ref(v))
			}
			o.StoreSlot(key.slot, v)
			if h := rt.cfg.Hooks.OnAfterWriteback; h != nil {
				h(tx, k)
			}
			k++
		}
	}

	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PostCommitPoint, tx.id) {
		case faultinject.Crash:
			tx.release(true)
			rt.exitCommit(tx)
			rt.markComplete(ticket)
			rt.Stats.Commits.AddShard(int(tx.id), 1)
			tx.flushStats()
			panic(faultinject.CrashError{Point: faultinject.PostCommitPoint, Txn: tx.id})
		case faultinject.Orphan:
			tx.die(faultinject.PostCommitPoint)
		}
	}
	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PreRelease, tx.id) {
		case faultinject.Crash:
			tx.release(true)
			rt.exitCommit(tx)
			rt.markComplete(ticket)
			rt.Stats.Commits.AddShard(int(tx.id), 1)
			tx.flushStats()
			panic(faultinject.CrashError{Point: faultinject.PreRelease, Txn: tx.id})
		case faultinject.Orphan:
			tx.die(faultinject.PreRelease)
		}
	}

	// Durable runtimes stream the redo image to the commit sink while the
	// versions are already installed but this committer is still inside the
	// gate: WAL order is consistent with version-chain order, and a live
	// checkpoint's DrainCommitters barrier cannot observe an installed
	// commit whose redo record is not yet appended. The fsync wait happens
	// after release, off the contention path.
	var durSeq uint64
	var durErr error
	if tx.sink != nil && len(tx.buf) > 0 {
		tx.redo = tx.redo[:0]
		for key, v := range tx.buf {
			tx.redo = append(tx.redo, stmapi.RedoWrite{Ref: key.obj.Ref(), Slot: key.slot, Val: v})
		}
		durSeq, durErr = tx.sink.AppendRedo(tx.id, tx.wv, tx.redo)
	}

	rt.maybeCollect(tx) // before release clears tx.objs; pruning never touches records
	tx.release(true)    // stamps every record with rs = max(wv, sv+1), the chain head's TS
	rt.exitCommit(tx)
	rt.markComplete(ticket)
	tx.dropIrrevocable()
	if rt.cfg.Quiescence {
		if tr := tx.tr; tr != nil {
			start := time.Now()
			err = rt.awaitOrder(tx.ctx, ticket)
			tr.ObserveQuiesce(time.Since(start))
		} else {
			err = rt.awaitOrder(tx.ctx, ticket)
		}
	}
	rt.Stats.Commits.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvCommit, tx.id, 0, 0, 0)
		tr.ObserveCommit(time.Since(tx.beginAt))
	}
	tx.flushStats()
	// Group-commit barrier: the commit is visible in memory; now wait for
	// the WAL batch holding it to reach stable storage before acking.
	if durErr == nil && durSeq != 0 {
		durErr = tx.sink.WaitDurable(durSeq)
	}
	if err == nil {
		err = durErr
	}
	return true, err
}

// commitReadOnly is the zero-metadata commit of a transaction that never
// wrote: no gate, no clock, no ticket, no records — set the status and
// flush the local counters.
func (tx *Txn) commitReadOnly() {
	tx.status.Store(uint32(Committed))
	tx.rt.Stats.Commits.AddShard(int(tx.id), 1)
	tx.rt.Stats.ReadOnlyTxns.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvCommit, tx.id, 0, 0, 0)
		tr.ObserveCommit(time.Since(tx.beginAt))
	}
	tx.flushStats()
}

// notifyStale reports a first-committer-wins abort to the contention
// handler if it observes stale aborts; attribution only.
func (tx *Txn) notifyStale(bad uint64) {
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvValidation, tx.id, bad, tx.attempt, 0)
		tr.Hot().BumpValidation(bad)
	}
	if obs := tx.rt.staleObs; obs != nil {
		obs.ObserveValidationAbort(conflict.Info{
			Kind:     conflict.TxnValidation,
			Attempt:  tx.attempt,
			Obj:      bad,
			Self:     tx.id,
			SelfPrio: tx.karma.Load(),
		})
	}
}

// crash performs the abort bookkeeping for a simulated thread death inside
// commit (the caller has already restored the records) and panics.
func (tx *Txn) crash(p faultinject.Point) {
	tx.fi = nil
	tx.rt.exitCommit(tx)
	tx.abort()
	panic(faultinject.CrashError{Point: p, Txn: tx.id})
}

// markComplete and awaitOrder implement the write-back ordering tickets for
// quiescence mode (see the lazy runtime; the scheme is identical).
func (rt *Runtime) markComplete(ticket uint64) {
	rt.doneMu.Lock()
	rt.pending[ticket] = struct{}{}
	for {
		next := rt.done.Load() + 1
		if _, ok := rt.pending[next]; !ok {
			break
		}
		delete(rt.pending, next)
		rt.done.Store(next)
	}
	rt.doneCv.Broadcast()
	rt.doneMu.Unlock()
}

func (rt *Runtime) awaitOrder(ctx context.Context, ticket uint64) error {
	if ctx != nil {
		stop := context.AfterFunc(ctx, func() {
			rt.doneMu.Lock()
			rt.doneCv.Broadcast()
			rt.doneMu.Unlock()
		})
		defer stop()
	}
	rt.doneMu.Lock()
	defer rt.doneMu.Unlock()
	for rt.done.Load() < ticket {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rt.doneCv.Wait()
	}
	return nil
}

func (tx *Txn) abort() {
	if tx.irrevocable {
		tx.release(false)
		tx.dropIrrevocable()
	}
	if tx.nReads+tx.nWrites > 0 {
		tx.karma.Add(tx.nReads + tx.nWrites)
	}
	tx.status.Store(uint32(Aborted))
	tx.rt.Stats.Aborts.AddShard(int(tx.id), 1)
	if tx.readOnly {
		tx.rt.Stats.ReadOnlyAborts.AddShard(int(tx.id), 1)
	}
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvAbort, tx.id, tx.blameObj, 0, 0)
		if tx.blameObj != 0 {
			tr.Hot().BumpAbort(tx.blameObj)
		}
		tx.abortAt = time.Now()
	}
	tx.blameObj = 0
	tx.flushStats()
}

// waitForClock blocks until the commit clock passes rv — some transaction
// committed a write since this one's snapshot, so re-execution may observe
// something new.
func (rt *Runtime) waitForClock(ctx context.Context, rv uint64) error {
	for a := 0; rt.clock.Load() <= rv; a++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		conflict.WaitAttempt(a, 0)
	}
	return nil
}

// Atomic executes body as a multi-version transaction, retrying until it
// commits. A body that never writes commits on the read-only path
// automatically — the ReadOnly hint is the absence of writes, no
// declaration needed. Closed nesting is flattened like the lazy runtime.
func (rt *Runtime) Atomic(parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return body(parent)
	}
	return rt.atomic(nil, body, rt.escalateFrom(), false)
}

// AtomicRead executes body as a read-only snapshot transaction: writes and
// BecomeIrrevocable panic, and the body runs exactly once — snapshot reads
// cannot conflict, so there is nothing to retry.
func (rt *Runtime) AtomicRead(body func(*Txn) error) error {
	return rt.atomic(nil, body, -1, true)
}

// AtomicIrrevocable executes body as an irrevocable transaction (see
// recovery.go for the gate-drain switch). Nested calls are flattened.
func (rt *Runtime) AtomicIrrevocable(parent *Txn, body func(*Txn) error) error {
	if rt.cfg.NoIrrevocable {
		return stmapi.ErrIrrevocableDisabled
	}
	if parent != nil {
		parent.BecomeIrrevocable()
		return body(parent)
	}
	return rt.atomic(nil, body, 0, false)
}

func (rt *Runtime) escalateFrom() int {
	if rt.cfg.EscalateAfter > 0 {
		return rt.cfg.EscalateAfter
	}
	return -1
}

// AtomicCtx is Atomic with deadline/cancellation support (see the lazy
// runtime for the nested-context contract).
func (rt *Runtime) AtomicCtx(ctx context.Context, parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return rt.nestedCtx(ctx, parent, body)
	}
	return rt.atomic(ctx, body, rt.escalateFrom(), false)
}

func (rt *Runtime) nestedCtx(ctx context.Context, parent *Txn, body func(*Txn) error) (err error) {
	if ctx == nil {
		return body(parent)
	}
	if e := ctx.Err(); e != nil {
		return e
	}
	prev := parent.ctx
	parent.ctx = ctx
	defer func() {
		parent.ctx = prev
		r := recover()
		if r == nil {
			return
		}
		if s, ok := r.(txSignal); ok && s.tx == parent && s.s == sigCancel {
			if prev == nil || prev.Err() == nil {
				err = ctx.Err()
				return
			}
		}
		panic(r)
	}()
	return body(parent)
}

// atomic is the top-level execution loop. irrevFrom is the attempt index
// from which the body runs irrevocably (-1 = never); readOnly selects the
// AtomicRead discipline.
func (rt *Runtime) atomic(ctx context.Context, body func(*Txn) error, irrevFrom int, readOnly bool) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	tx := rt.getTxn()
	tx.ctx = ctx
	tx.readOnly = readOnly
	defer rt.finish(tx)
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		tx.attempt = attempt
		tx.begin()
		runBody := body
		if irrevFrom >= 0 && attempt >= irrevFrom {
			escalated := irrevFrom > 0
			runBody = func(tx *Txn) error {
				tx.becomeIrrevocable(escalated)
				return body(tx)
			}
		}
		err, sig := rt.run(tx, runBody)
		switch sig {
		case 0:
			if err != nil {
				tx.abort()
				return err
			}
			if tx.readOnly || len(tx.buf) == 0 {
				// The read-only path: a body that never wrote needs no
				// commit protocol — its snapshot reads were consistent by
				// construction the moment they happened.
				tx.commitReadOnly()
				return nil
			}
			committed, cerr := tx.commit()
			if committed {
				return cerr
			}
			tx.abort()
		case sigRestart:
			tx.abort()
		case sigRetry:
			rv := tx.rv
			tx.abort()
			if werr := rt.waitForClock(ctx, rv); werr != nil {
				return werr
			}
		case sigCancel:
			tx.abort()
			if ctx != nil {
				return ctx.Err()
			}
			return context.Canceled
		}
		conflict.WaitAttempt(attempt, 0)
	}
}

// ActiveTransactions returns the number of registered descriptors whose
// status is Active.
func (rt *Runtime) ActiveTransactions() int {
	n := 0
	rt.reg.forEach(func(tx *Txn) bool {
		if Status(tx.status.Load()) == Active {
			n++
		}
		return true
	})
	return n
}

func (rt *Runtime) run(tx *Txn, body func(*Txn) error) (err error, sig signal) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if tx.dead.Load() {
			panic(r)
		}
		if s, ok := r.(txSignal); ok && s.tx == tx {
			sig = s.s
			return
		}
		// Unlike the validating runtimes there is no "was this fault an
		// artifact of an inconsistent read" question: snapshot reads are
		// consistent by construction, so the fault is the body's own.
		tx.abort()
		panic(r)
	}()
	return body(tx), 0
}

// maxSnapshot is the irrevocable rv: with the commit gate drained and the
// token held, nothing else commits, so reading the newest version of
// everything is the (only) serializable view.
const maxSnapshot = math.MaxUint64

// sortByRef sorts objects by their heap handle (insertion sort; write sets
// are small).
func sortByRef(objs []*objmodel.Object) {
	for i := 1; i < len(objs); i++ {
		o := objs[i]
		j := i - 1
		for j >= 0 && objs[j].Ref() > o.Ref() {
			objs[j+1] = objs[j]
			j--
		}
		objs[j+1] = o
	}
}
