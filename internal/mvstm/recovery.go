// Orphaned-transaction recovery and irrevocable mode for the multi-version
// runtime. See internal/stm/recovery.go for the shared design; the
// multi-version differences:
//
//   - Bodies own nothing. Reads resolve against version chains and writes
//     stay buffered, so an orphan that died mid-body holds no records at
//     all — the reaper only unregisters it (and unpins its GC snapshot).
//
//   - An orphan that died inside the commit window holds write-set records.
//     Pre-commit-point the records are restored to their original Shared
//     words (no versions were installed, no state escaped). Post-commit-point
//     the versions are installed and written back, so the reaper releases the
//     records at the orphan's write version — the same stamp the installed
//     chain heads carry — and completes its ordering ticket.
//
//   - The commit gate (committers counter) is never repaired by the reaper:
//     commit releases it on every exit, including the panic unwind of a
//     simulated thread death, so only the descriptor's own goroutine ever
//     touches it.
//
//   - Irrevocable mode takes no read locks. The switch acquires the
//     singular token and then drains the commit gate; with nothing else
//     committing, the transaction reads the newest version of everything
//     (rv = maxSnapshot) and first-committer-wins can never fail it, which
//     preserves the no-abort guarantee without locking a single record
//     during the body.
package mvstm

import (
	"time"

	"repro/internal/conflict"
	"repro/internal/faultinject"
	"repro/internal/recovery"
	"repro/internal/trace"
	"repro/internal/txrec"
)

// die terminates the goroutine's transactional life with no cleanup. The
// dead store is the death certificate gating all stealing; it must be the
// last thing the dying goroutine does to the descriptor. (The deferred
// commit-gate release still runs on the unwind — that is goroutine-local
// state, not part of the recoverable picture.)
func (tx *Txn) die(p faultinject.Point) {
	tx.dead.Store(true)
	panic(faultinject.OrphanError{Point: p, Txn: tx.id})
}

// finish returns the descriptor to the pool unless the transaction died: a
// dead descriptor is left for the reaper and never reused.
func (rt *Runtime) finish(tx *Txn) {
	if tx.dead.Load() {
		return
	}
	rt.putTxn(tx)
}

// reapTxn steals a dead transaction's records (same two gates as the other
// runtimes: confirmed death plus the single-reclaimer CAS). Uncommitted
// orphans have their records restored to the original Shared words — their
// buffered writes never reached memory and no version was installed.
// Committed orphans are released at their write version, matching the chain
// heads they installed before dying, and their ordering ticket is completed
// so quiescing committers cannot stall. Unregistering the descriptor also
// unpins its snapshot from the GC watermark. Returns false if tx is not
// confirmed dead or another reclaimer won.
func (rt *Runtime) reapTxn(tx *Txn) bool {
	if !tx.dead.Load() || !tx.reaping.CompareAndSwap(false, true) {
		return false
	}
	id := tx.id
	committed := Status(tx.status.Load()) == Committed
	for _, o := range tx.objs {
		sv, ok := tx.owned.Get(o)
		if !ok {
			continue // write-set entry the orphan never got to acquire
		}
		if committed {
			// The orphan obtained wv before its commit point; stamping with
			// it keeps the record agreeing with the chain head it installed.
			// No clock tick is needed: snapshot readers never validate, and
			// a writer that meets the released version raises the clock on
			// contact (first-committer-wins).
			o.Rec.ReleaseOwnedAt(sv, tx.wv)
		} else {
			o.Rec.Store(txrec.MakeShared(sv))
		}
	}
	if committed {
		if tx.ticket != 0 {
			rt.markComplete(tx.ticket)
		}
		rt.Stats.Commits.AddShard(int(id), 1)
	} else {
		tx.status.Store(uint32(Aborted))
		rt.Stats.Aborts.AddShard(int(id), 1)
	}
	if tx.irrevStamp.Load() {
		rt.irrevToken.CompareAndSwap(id, 0)
	}
	rt.Stats.ReaperSteals.AddShard(int(id), 1)
	tx.flushStats()
	if tr := rt.tracer.Load(); tr != nil {
		tr.Record(trace.EvSteal, 0, 0, 0, id)
	}
	rt.reg.remove(tx)
	return true
}

// reapDead sweeps the registry for confirmed-dead descriptors and reclaims
// them inline. Used on the commit-gate and token wait paths, where a dead
// holder would otherwise stall the waiter until the background reaper's
// next scan.
func (rt *Runtime) reapDead() {
	rt.reg.forEach(func(tx *Txn) bool {
		if tx.dead.Load() {
			rt.reapTxn(tx)
		}
		return true
	})
}

// Recovery exposes the runtime to a recovery.Reaper.
func (rt *Runtime) Recovery() recovery.Target { return mvTarget{rt} }

type mvTarget struct{ rt *Runtime }

func (t mvTarget) Name() string { return "mvstm" }

func (t mvTarget) VisitTxns(f func(recovery.TxnInfo)) {
	t.rt.reg.forEach(func(tx *Txn) bool {
		f(recovery.TxnInfo{
			ID:          tx.stamp.Load(),
			Beat:        tx.hb.Load(),
			Status:      Status(tx.status.Load()),
			Dead:        tx.dead.Load(),
			Irrevocable: tx.irrevStamp.Load(),
		})
		return true
	})
}

func (t mvTarget) Reclaim(id uint64) bool {
	victim := t.rt.reg.findStamp(id)
	if victim == nil {
		return false
	}
	return t.rt.reapTxn(victim)
}

// IsIrrevocable reports whether the transaction has switched to irrevocable
// mode.
func (tx *Txn) IsIrrevocable() bool { return tx.irrevocable }

// BecomeIrrevocable switches the transaction to irrevocable mode. The
// multi-version switch is lock-free with respect to the heap: acquire the
// singular token, drain the commit gate, and widen the snapshot to
// maxSnapshot — running alone, the newest version of everything is a
// consistent (and the only serializable) view, so no record is locked and
// no read needs re-checking. Restarting is still legal up to the switch;
// afterwards the transaction cannot abort. Panics on a NoIrrevocable
// runtime, or inside a read-only transaction.
func (tx *Txn) BecomeIrrevocable() { tx.becomeIrrevocable(false) }

func (tx *Txn) becomeIrrevocable(escalated bool) {
	if tx.irrevocable {
		return
	}
	if tx.readOnly {
		panic("mvstm: BecomeIrrevocable inside a read-only transaction (AtomicRead)")
	}
	rt := tx.rt
	if rt.cfg.NoIrrevocable {
		panic("mvstm: BecomeIrrevocable on a runtime configured with NoIrrevocable")
	}
	for a := 0; !rt.irrevToken.CompareAndSwap(0, tx.id); a++ {
		// Pre-switch we are still an ordinary transaction: honor dooms and
		// cancellation so token waiters cannot deadlock with the holder. A
		// dead holder is reaped inline (reapTxn surrenders its token).
		if tx.doomed.Load() {
			tx.Restart()
		}
		if tx.ctx != nil && tx.ctx.Err() != nil {
			panic(txSignal{sigCancel, tx})
		}
		tx.hb.Add(1)
		rt.reapDead()
		conflict.WaitAttempt(a, 0)
	}
	// Token held: no new committer can enter the gate. Drain the ones
	// already inside — each is bounded by its own commit (or by the panic
	// unwind of a simulated death, which also releases the gate).
	for a := 0; rt.committers.Load() != 0; a++ {
		tx.hb.Add(1)
		rt.reapDead()
		conflict.WaitAttempt(a, 0)
	}
	tx.rv = maxSnapshot
	if escalated {
		rt.Stats.Escalations.AddShard(int(tx.id), 1)
		if tr := tx.tr; tr != nil {
			tr.Record(trace.EvEscalate, tx.id, 0, tx.attempt, 0)
		}
	}
	tx.irrevAt = time.Now()
	tx.irrevocable = true
	tx.irrevStamp.Store(true)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvIrrevocable, tx.id, 0, tx.attempt, 0)
	}
}

// dropIrrevocable surrenders the irrevocable token after the transaction's
// records have been released, and accounts the hold time.
func (tx *Txn) dropIrrevocable() {
	if !tx.irrevocable {
		return
	}
	hold := time.Since(tx.irrevAt)
	tx.irrevocable = false
	tx.irrevStamp.Store(false)
	tx.rt.irrevToken.Store(0)
	tx.rt.Stats.IrrevocableTxns.AddShard(int(tx.id), 1)
	tx.rt.Stats.IrrevocableNs.AddShard(int(tx.id), hold.Nanoseconds())
	if tr := tx.tr; tr != nil {
		tr.ObserveIrrevocableHold(hold)
	}
}
