package mvstm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

// The adapter must satisfy the read-only capability interface.
var _ stmapi.ReadOnlyRuntime = apiRuntime{}

type fixture struct {
	heap *objmodel.Heap
	rt   *Runtime
	cls  *objmodel.Class
}

func newFixture(t testing.TB, cfg Config) *fixture {
	t.Helper()
	h := objmodel.NewHeap()
	rt := New(h, cfg)
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name: "Cell",
		Fields: []objmodel.Field{
			{Name: "f"}, {Name: "g"}, {Name: "next", IsRef: true},
		},
	})
	return &fixture{heap: h, rt: rt, cls: cls}
}

func chainLen(o *objmodel.Object) int {
	n := 0
	for v := o.MVHead.Load(); v != nil; v = v.Prev() {
		n++
	}
	return n
}

func TestMVCommitBasic(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 5)
		if got := tx.Read(o, 0); got != 5 {
			t.Errorf("read-own-write = %d", got)
		}
		if got := o.LoadSlot(0); got != 0 {
			t.Errorf("buffered write reached memory before commit: %d", got)
		}
		tx.Write(o, 1, 6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.LoadSlot(0) != 5 || o.LoadSlot(1) != 6 {
		t.Errorf("state = (%d,%d), want (5,6)", o.LoadSlot(0), o.LoadSlot(1))
	}
	w := o.Rec.Load()
	if !txrec.IsShared(w) {
		t.Fatalf("record = %#x, want shared", w)
	}
	head := o.MVHead.Load()
	if head == nil {
		t.Fatal("no version chain after commit")
	}
	if head.TS != txrec.Version(w) {
		t.Errorf("head TS %d != record version %d", head.TS, txrec.Version(w))
	}
	if head.Vals[0] != 5 || head.Vals[1] != 6 {
		t.Errorf("head image = %v", head.Vals[:2])
	}
	// The base anchor (pre-transaction image at the birth version) follows.
	if base := head.Prev(); base == nil || base.TS != 1 || base.Vals[0] != 0 {
		t.Errorf("base anchor = %+v", base)
	}
}

func TestMVAbortLeavesMemoryAndChainUntouched(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	boom := errors.New("boom")
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 99)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if o.LoadSlot(0) != 0 {
		t.Errorf("aborted write reached memory: %d", o.LoadSlot(0))
	}
	if o.MVHead.Load() != nil {
		t.Error("aborted transaction installed a version")
	}
	if got := f.rt.Stats.Aborts.Load(); got != 1 {
		t.Errorf("aborts = %d, want 1", got)
	}
}

// TestReadOnlyCommitPath checks that a body that never writes commits on
// the zero-metadata path, leaving clock, tickets, and records untouched.
func TestReadOnlyCommitPath(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	o.StoreSlot(0, 7)
	before := f.heap.Clock().Load()
	var got uint64
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		got = tx.Read(o, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("read = %d, want 7", got)
	}
	if after := f.heap.Clock().Load(); after != before {
		t.Errorf("read-only commit moved the clock %d -> %d", before, after)
	}
	s := f.rt.StatsSnapshot()
	if s.ReadOnlyTxns != 1 || s.Commits != 1 {
		t.Errorf("read-only txns = %d, commits = %d, want 1/1", s.ReadOnlyTxns, s.Commits)
	}
	if s.SnapshotReads != 1 {
		t.Errorf("snapshot reads = %d, want 1", s.SnapshotReads)
	}
}

func TestAtomicReadRejectsWrites(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	defer func() {
		if recover() == nil {
			t.Error("Write inside AtomicRead did not panic")
		}
	}()
	_ = f.rt.AtomicRead(func(tx *Txn) error {
		tx.Write(o, 0, 1)
		return nil
	})
}

// TestFirstCommitterWins drives concurrent read-modify-write increments:
// snapshot isolation admits write skew across objects but still serializes
// writes to the same object, so no increment may be lost.
func TestFirstCommitterWins(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	const goroutines, iters = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := o.LoadSlot(0); got != goroutines*iters {
		t.Errorf("counter = %d, want %d (lost updates under FCW)", got, goroutines*iters)
	}
	if f.rt.Stats.Commits.Load() != goroutines*iters {
		t.Errorf("commits = %d", f.rt.Stats.Commits.Load())
	}
}

// TestWriteSkew documents the anomaly snapshot isolation admits: two
// transactions each read both objects (invariant: x+y <= 1) and write
// disjoint ones. Serializably one must see the other's write; under SI
// both commit from the same snapshot. The litmus matrix's MV column
// depends on this behavior. Note the objects must be distinct:
// first-committer-wins detects write-write conflicts per object, so two
// writes to different slots of one object do still collide.
func TestWriteSkew(t *testing.T) {
	f := newFixture(t, Config{})
	x, y := f.heap.New(f.cls), f.heap.New(f.cls)
	var (
		aAt  = make(chan struct{})
		goB  = make(chan struct{})
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			if tx.Attempt() > 0 {
				// Not expected: the write sets touch disjoint objects, so
				// first-committer-wins passes for both.
				t.Error("T1 retried")
				return nil
			}
			sum := tx.Read(x, 0) + tx.Read(y, 0)
			close(aAt)
			<-goB
			if sum == 0 {
				tx.Write(x, 0, 1)
			}
			return nil
		})
	}()
	<-aAt
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		if sum := tx.Read(x, 0) + tx.Read(y, 0); sum == 0 {
			tx.Write(y, 0, 1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(goB)
	<-done
	if x.LoadSlot(0) != 1 || y.LoadSlot(0) != 1 {
		t.Errorf("state = (%d,%d); SI admits (1,1) write skew here",
			x.LoadSlot(0), y.LoadSlot(0))
	}
}

// TestSnapshotConsistencyUnderWriters maintains x+y == total across
// transfer transactions while read-only transactions repeatedly assert the
// invariant. A single torn read fails the test; zero read-only aborts and
// zero retries prove the no-validation path really never backs out.
func TestSnapshotConsistencyUnderWriters(t *testing.T) {
	f := newFixture(t, Config{})
	x, y := f.heap.New(f.cls), f.heap.New(f.cls)
	const total = 1000
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(x, 0, total)
		tx.Write(y, 0, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				amt := rng % 7
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					a := tx.Read(x, 0)
					if a < amt {
						return nil
					}
					tx.Write(x, 0, a-amt)
					tx.Write(y, 0, tx.Read(y, 0)+amt)
					return nil
				})
			}
		}(uint64(g + 1))
	}
	var torn atomic.Int64
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				_ = f.rt.AtomicRead(func(tx *Txn) error {
					if sum := tx.Read(x, 0) + tx.Read(y, 0); sum != total {
						torn.Add(1)
					}
					return nil
				})
			}
		}()
	}
	readers.Wait() // writers stay active for the readers' whole run
	close(stop)
	writers.Wait()
	if n := torn.Load(); n != 0 {
		t.Errorf("%d torn snapshot reads", n)
	}
	s := f.rt.StatsSnapshot()
	if s.ReadOnlyAborts != 0 {
		t.Errorf("read-only aborts = %d, want 0", s.ReadOnlyAborts)
	}
	// At least the AtomicRead calls; writer attempts that bailed without
	// writing also commit on the read-only path, so >= not ==.
	if s.ReadOnlyTxns < 4*2000 {
		t.Errorf("read-only txns = %d, want >= %d", s.ReadOnlyTxns, 4*2000)
	}
}

func TestRetryWakesOnCommit(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	done := make(chan uint64, 1)
	var once sync.Once
	waiting := make(chan struct{})
	go func() {
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			v := tx.Read(o, 0)
			if v == 0 {
				once.Do(func() { close(waiting) })
				tx.Retry()
			}
			done <- v
			return nil
		})
	}()
	<-waiting // the reader is provably blocked in Retry before the write
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != 42 {
		t.Errorf("retry observed %d, want 42", got)
	}
	if f.rt.Stats.UserRetries.Load() == 0 {
		t.Error("no retry recorded")
	}
}

func TestIrrevocableReadsNewestAndCommits(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	o.StoreSlot(0, 3)
	err := f.rt.AtomicIrrevocable(nil, func(tx *Txn) error {
		if !tx.IsIrrevocable() {
			t.Error("not irrevocable inside AtomicIrrevocable")
		}
		tx.Write(o, 0, tx.Read(o, 0)+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.LoadSlot(0); got != 4 {
		t.Errorf("state = %d, want 4", got)
	}
	if f.rt.irrevToken.Load() != 0 {
		t.Error("irrevocable token not surrendered")
	}
	if f.rt.Stats.IrrevocableTxns.Load() != 1 {
		t.Errorf("irrevocable txns = %d", f.rt.Stats.IrrevocableTxns.Load())
	}
}

func TestIrrevocableExcludesCommitters(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	const goroutines, iters = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					return nil
				})
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := f.rt.AtomicIrrevocable(nil, func(tx *Txn) error {
			tx.Write(o, 1, tx.Read(o, 0))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := o.LoadSlot(0); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
}

func TestRegistryDrivenConstruction(t *testing.T) {
	names := stmapi.Runtimes()
	found := false
	for _, n := range names {
		if n == "mvstm" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mvstm not registered: %v", names)
	}
	h := objmodel.NewHeap()
	rt, err := stmapi.New("mvstm", h, stmapi.CommonConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "mvstm" {
		t.Errorf("Name = %q", rt.Name())
	}
	ro, ok := rt.(stmapi.ReadOnlyRuntime)
	if !ok {
		t.Fatal("mvstm adapter does not satisfy ReadOnlyRuntime")
	}
	cls := h.MustDefineClass(objmodel.ClassSpec{Name: "C", Fields: []objmodel.Field{{Name: "f"}}})
	o := h.New(cls)
	if err := rt.Atomic(func(tx stmapi.Txn) error { tx.Write(o, 0, 9); return nil }); err != nil {
		t.Fatal(err)
	}
	var got uint64
	if err := ro.AtomicRead(func(tx stmapi.Txn) error { got = tx.Read(o, 0); return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("read = %d, want 9", got)
	}
	if _, err := stmapi.New("no-such-runtime", h, stmapi.CommonConfig{}); err == nil {
		t.Error("unknown runtime name did not error")
	}
}
