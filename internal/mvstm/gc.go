// Version-chain garbage collection for the multi-version runtime.
//
// A version is dead once no live transaction's snapshot can reach it: if W
// is the smallest begin snapshot over all in-flight transactions (clamped
// by the current clock), every object needs at most one version at or below
// W — the newest such version is what a W-snapshot reads; everything older
// is unreachable and the chain is severed below it.
//
// The watermark is computed against the same sharded registry the reaper
// scans, through each descriptor's snap pin. The pin protocol makes the
// scan race-free without locks:
//
//   - getTxn stores snap = 1 (the lowest possible snapshot) BEFORE the
//     registry publishes the descriptor, and begin refines it to the real
//     rv AFTER reading the clock.
//   - The collector reads the clock FIRST, then scans pins.
//
// So if the collector misses a transaction (sees no pin, or the slot is
// still empty), that transaction's pin store had not happened when the scan
// read it — which means its clock read happens after the collector's, so
// its rv is at least the collector's clock sample, which bounds W from
// above. Either the pin is seen and lowers W, or the snapshot provably sits
// at or above W. A long-running snapshot reader therefore pins exactly the
// history it may still read (premature reclaim is impossible), and the
// first collection after it finishes resumes past its snapshot.
package mvstm

import "repro/internal/objmodel"

// Watermark returns the version-reclamation horizon: the smallest live
// begin snapshot, or the current clock when no transaction is in flight.
func (rt *Runtime) Watermark() uint64 {
	// Clock first, pins second — see the package comment for why this
	// ordering makes a missed pin harmless.
	w := rt.clock.Load()
	rt.reg.forEach(func(tx *Txn) bool {
		if s := tx.snap.Load(); s != 0 && s < w {
			w = s
		}
		return true
	})
	rt.watermark.Store(w)
	if c := rt.clock.Load(); c >= w {
		rt.wmLag.Store(int64(c - w))
	}
	return w
}

// pruneObject severs o's version chain below watermark w: the newest
// version at or below w is kept (a w-snapshot still reads it), everything
// older is cut loose. Returns the number of versions reclaimed. Callers
// hold rt.gcMu — a single pruner per chain keeps the counts exact, and the
// severed tail stays reachable by readers that already walked past the cut
// (see objmodel.MVVersion).
func pruneObject(o *objmodel.Object, w uint64) int {
	keep := o.MVHead.Load()
	if keep == nil {
		return 0
	}
	for keep.TS > w {
		next := keep.Prev()
		if next == nil {
			return 0 // chain bottoms out above w: nothing is reclaimable
		}
		keep = next
	}
	// keep is the newest version at or below w. Count and sever its tail.
	n := 0
	for v := keep.Prev(); v != nil; v = v.Prev() {
		n++
	}
	if n > 0 {
		keep.SetPrev(nil)
	}
	return n
}

// maybeCollect runs an inline collection every cfg.GCEvery writing commits,
// pruning the chains the committing transaction just extended. Write-set
// objects are the ones growing, so collecting at the point of growth keeps
// chains short without a background thread; a full-heap pass is available
// through GC.
func (rt *Runtime) maybeCollect(tx *Txn) {
	if rt.cfg.GCEvery < 0 {
		return
	}
	if rt.gcTick.Add(1)%uint64(rt.cfg.GCEvery) != 0 {
		return
	}
	w := rt.Watermark()
	reclaimed := 0
	rt.gcMu.Lock()
	for _, o := range tx.objs {
		reclaimed += pruneObject(o, w)
	}
	rt.gcMu.Unlock()
	if reclaimed > 0 {
		rt.Stats.VersionsGCd.AddShard(int(tx.id), int64(reclaimed))
	}
}

// GC walks the whole heap and prunes every object's version chain against
// the current watermark, returning the number of versions reclaimed. Tests
// and operational tooling call it directly; the runtime itself collects
// incrementally at commit (see maybeCollect).
func (rt *Runtime) GC() int {
	w := rt.Watermark()
	reclaimed := 0
	rt.gcMu.Lock()
	for i, n := 1, rt.Heap.Len(); i <= n; i++ {
		if o := rt.Heap.TryGet(objmodel.Ref(i)); o != nil {
			reclaimed += pruneObject(o, w)
		}
	}
	rt.gcMu.Unlock()
	if reclaimed > 0 {
		rt.Stats.VersionsGCd.AddShard(0, int64(reclaimed))
	}
	return reclaimed
}
