package mvstm

// The zero-abort litmus: read-only snapshot transactions must complete
// under a sustained writer storm with zero aborts and zero retries — the
// property that justifies the multi-version runtime's existence. The
// assertion is made twice over: once against the runtime's Stats, and once
// against the causal flight recorder's conflict DAG, which must contain no
// edge touching a reader transaction (readers never wait on, abort, or get
// aborted by anyone, so they are isolated vertices of the conflict graph).

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/causal"
	"repro/internal/objmodel"
	"repro/internal/trace"
)

func TestReadOnlyZeroAbortsUnderWriterStorm(t *testing.T) {
	const (
		objects    = 4 // few objects: writers conflict constantly
		writers    = 4
		writerTxns = 400
		readers    = 4
		readerTxns = 400
	)
	f := newFixture(t, Config{})
	tr := trace.New(trace.Config{})
	rec := causal.NewRecorder(causal.Config{})
	tr.SetSink(rec)
	f.rt.SetTracer(tr)

	pool := make([]*objmodel.Object, objects)
	for i := range pool {
		pool[i] = f.heap.New(f.cls)
	}
	// Prime every object with one transactional write so version chains
	// exist before the storm: readers take the chain path from the start.
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		for _, o := range pool {
			tx.Write(o, 0, 1)
			tx.Write(o, 1, 1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var (
		readerIDs  sync.Map // txn id -> struct{}: every id a reader ran under
		readerRuns atomic.Int64
		torn       atomic.Int64
		wwg, rwg   sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for i := 0; i < writerTxns; i++ {
				o := pool[(w+i)%objects]
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					v := tx.Read(o, 0)
					tx.Write(o, 0, v+1)
					tx.Write(o, 1, v+1) // invariant: slot 0 == slot 1
					return nil
				})
			}
		}()
	}
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < readerTxns; i++ {
				err := f.rt.AtomicRead(func(tx *Txn) error {
					readerRuns.Add(1)
					readerIDs.Store(tx.id, struct{}{})
					if tx.Attempt() != 0 {
						t.Errorf("read-only body on attempt %d, want 0", tx.Attempt())
					}
					for _, o := range pool {
						if a, b := tx.Read(o, 0), tx.Read(o, 1); a != b {
							torn.Add(1)
						}
					}
					return nil
				})
				if err != nil {
					t.Errorf("AtomicRead: %v", err)
				}
			}
		}()
	}
	rwg.Wait()
	wwg.Wait()

	if n := torn.Load(); n != 0 {
		t.Errorf("%d torn snapshots (slot 0 != slot 1)", n)
	}

	// Stats: zero reader aborts, zero reader retries (every body ran exactly
	// once), and the snapshot read path actually served the storm.
	s := f.rt.StatsSnapshot()
	if s.ReadOnlyAborts != 0 {
		t.Errorf("ReadOnlyAborts = %d, want 0", s.ReadOnlyAborts)
	}
	if got, want := readerRuns.Load(), int64(readers*readerTxns); got != want {
		t.Errorf("reader bodies ran %d times, want %d (a retry occurred)", got, want)
	}
	if got, want := s.ReadOnlyTxns, int64(readers*readerTxns); got != want {
		t.Errorf("ReadOnlyTxns = %d, want %d", got, want)
	}
	if s.SnapshotReads == 0 {
		t.Error("SnapshotReads = 0: readers never touched the snapshot path")
	}

	// The conflict DAG: the writer storm must have produced causal structure
	// (otherwise the run proved nothing), and none of it may touch a reader.
	g := rec.Graph()
	if s.Aborts > 0 && len(g.Edges) == 0 {
		t.Errorf("writers aborted %d times but the recorder saw no edges", s.Aborts)
	}
	isReader := func(id uint64) bool {
		_, ok := readerIDs.Load(id)
		return ok
	}
	for _, e := range g.Edges {
		if isReader(e.From.Txn) || isReader(e.To.Txn) {
			t.Errorf("causal %s edge touches a read-only transaction: %+v", e.Kind, e)
		}
	}
	for _, a := range g.Attempts {
		if !isReader(a.Txn) {
			continue
		}
		if a.N != 0 {
			t.Errorf("reader txn %d recorded attempt %d: readers must run once", a.Txn, a.N)
		}
		if a.Outcome == causal.Aborted {
			t.Errorf("reader txn %d recorded as aborted in the DAG", a.Txn)
		}
	}
}
