package mvstm

import (
	"context"
	"time"

	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/recovery"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

// Snapshot sums every counter's shards (not an atomic cut across counters).
// The multi-version gauges that need runtime state (live versions,
// watermark lag) are filled in by Runtime.StatsSnapshot; drivers go through
// the adapter and get both.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:      s.Starts.Load(),
		Commits:     s.Commits.Load(),
		Aborts:      s.Aborts.Load(),
		UserRetries: s.UserRetries.Load(),
		TxnReads:    s.TxnReads.Load(),
		TxnWrites:   s.TxnWrites.Load(),
		SelfAborts:  s.SelfAborts.Load(),
		DoomsIssued: s.DoomsIssued.Load(),

		ReaperSteals:    s.ReaperSteals.Load(),
		Escalations:     s.Escalations.Load(),
		IrrevocableTxns: s.IrrevocableTxns.Load(),
		IrrevocableNs:   s.IrrevocableNs.Load(),

		ClockAdvances: s.ClockAdvances.Load(),

		SnapshotReads:     s.SnapshotReads.Load(),
		ReadOnlyTxns:      s.ReadOnlyTxns.Load(),
		ReadOnlyAborts:    s.ReadOnlyAborts.Load(),
		VersionsInstalled: s.VersionsInstalled.Load(),
		VersionsGCd:       s.VersionsGCd.Load(),
	}
}

// StatsSnapshot copies the counters and fills in the derived multi-version
// gauges: versions still reachable from some chain, and how far the
// reclamation watermark trailed the commit clock at the last collection.
func (rt *Runtime) StatsSnapshot() StatsSnapshot {
	snap := rt.Stats.Snapshot()
	snap.VersionsLive = snap.VersionsInstalled - snap.VersionsGCd
	snap.WatermarkLag = rt.wmLag.Load()
	return snap
}

// API returns the runtime-agnostic driver view of rt (see the eager
// runtime's adapter: the body re-wrap stays non-escaping, preserving the
// zero-allocation steady state). The adapter also satisfies
// stmapi.ReadOnlyRuntime — AtomicRead is the zero-abort snapshot path.
func (rt *Runtime) API() stmapi.Runtime { return apiRuntime{rt} }

type apiRuntime struct{ rt *Runtime }

func (a apiRuntime) Name() string         { return "mvstm" }
func (a apiRuntime) Heap() *objmodel.Heap { return a.rt.Heap }
func (a apiRuntime) Stats() stmapi.StatsSnapshot {
	return a.rt.StatsSnapshot()
}

func (a apiRuntime) Atomic(body func(stmapi.Txn) error) error {
	return a.rt.Atomic(nil, func(tx *Txn) error { return body(tx) })
}

func (a apiRuntime) AtomicCtx(ctx context.Context, body func(stmapi.Txn) error) error {
	return a.rt.AtomicCtx(ctx, nil, func(tx *Txn) error { return body(tx) })
}

func (a apiRuntime) AtomicIrrevocable(body func(stmapi.Txn) error) error {
	return a.rt.AtomicIrrevocable(nil, func(tx *Txn) error { return body(tx) })
}

func (a apiRuntime) AtomicRead(body func(stmapi.Txn) error) error {
	return a.rt.AtomicRead(func(tx *Txn) error { return body(tx) })
}

func (a apiRuntime) SetTracer(t *trace.Tracer) { a.rt.SetTracer(t) }
func (a apiRuntime) Tracer() *trace.Tracer     { return a.rt.Tracer() }
func (a apiRuntime) ActiveTransactions() int   { return a.rt.ActiveTransactions() }

// SetInjector and Recovery forward the fault-injection and reaper surfaces
// through the adapter; drivers probe for them with small capability
// interfaces rather than depending on the concrete runtime.
func (a apiRuntime) SetInjector(in *faultinject.Injector) { a.rt.SetInjector(in) }
func (a apiRuntime) Recovery() recovery.Target            { return a.rt.Recovery() }

// SetCommitSink forwards the durable-store redo stream hook
// (stmapi.DurableRuntime) through the adapter.
func (a apiRuntime) SetCommitSink(s stmapi.CommitSink) { a.rt.SetCommitSink(s) }

// DrainCommitters forwards the commit-gate barrier the durable store's live
// checkpoint probes for.
func (a apiRuntime) DrainCommitters(timeout time.Duration) bool {
	return a.rt.DrainCommitters(timeout)
}

func init() {
	stmapi.Register("mvstm", func(heap *objmodel.Heap, cfg stmapi.CommonConfig) (stmapi.Runtime, error) {
		if err := cfg.Normalize(); err != nil {
			return nil, err
		}
		return New(heap, Config{CommonConfig: cfg}).API(), nil
	})
}
