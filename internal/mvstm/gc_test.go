package mvstm

import (
	"sync"
	"testing"
)

// TestGCReclaimsDeadVersions: with no reader pinning history, a collection
// prunes every chain down to its head.
func TestGCReclaimsDeadVersions(t *testing.T) {
	f := newFixture(t, Config{GCEvery: -1}) // inline GC off; drive it by hand
	o := f.heap.New(f.cls)
	const writes = 20
	for i := uint64(1); i <= writes; i++ {
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// writes versions plus the base anchor.
	if got := chainLen(o); got != writes+1 {
		t.Fatalf("chain length before GC = %d, want %d", got, writes+1)
	}
	reclaimed := f.rt.GC()
	if reclaimed != writes {
		t.Errorf("reclaimed = %d, want %d", reclaimed, writes)
	}
	if got := chainLen(o); got != 1 {
		t.Errorf("chain length after GC = %d, want 1", got)
	}
	if head := o.MVHead.Load(); head.Vals[0] != writes {
		t.Errorf("surviving head value = %d, want %d", head.Vals[0], writes)
	}
	s := f.rt.StatsSnapshot()
	if s.VersionsGCd != writes {
		t.Errorf("VersionsGCd = %d, want %d", s.VersionsGCd, writes)
	}
	if s.VersionsLive != s.VersionsInstalled-s.VersionsGCd {
		t.Errorf("VersionsLive gauge inconsistent: %d != %d - %d",
			s.VersionsLive, s.VersionsInstalled, s.VersionsGCd)
	}
}

// TestGCPinnedByLongReader: a long-running snapshot reader pins its
// versions — a collection while it is live must keep the version its
// snapshot reads, and the reader's view must stay stable across the GC and
// further writes. Once the reader finishes, collection resumes past its
// snapshot.
func TestGCPinnedByLongReader(t *testing.T) {
	f := newFixture(t, Config{GCEvery: -1})
	o := f.heap.New(f.cls)
	write := func(v uint64) {
		t.Helper()
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		write(i)
	}

	started := make(chan uint64)
	release := make(chan struct{})
	done := make(chan uint64, 1)
	go func() {
		_ = f.rt.AtomicRead(func(tx *Txn) error {
			first := tx.Read(o, 0)
			started <- first
			<-release // hold the snapshot open across writes + GC
			done <- tx.Read(o, 0)
			return nil
		})
	}()
	first := <-started
	if first != 10 {
		t.Fatalf("reader first read = %d, want 10", first)
	}

	for i := uint64(11); i <= 20; i++ {
		write(i)
	}
	f.rt.GC()

	// The reader's version must have survived: some chain node still serves
	// value 10 (its snapshot predates writes 11..20).
	foundPinned := false
	for v := o.MVHead.Load(); v != nil; v = v.Prev() {
		if v.Vals[0] == first {
			foundPinned = true
			break
		}
	}
	if !foundPinned {
		t.Error("GC reclaimed the version a live reader's snapshot reads")
	}

	close(release)
	if second := <-done; second != first {
		t.Errorf("reader view changed across GC: %d then %d", first, second)
	}

	// Reader finished: its pin is gone, the watermark advances to the
	// clock, and collection prunes everything below the head.
	f.rt.GC()
	if got := chainLen(o); got != 1 {
		t.Errorf("chain length after unpinned GC = %d, want 1", got)
	}
	if lag := f.rt.StatsSnapshot().WatermarkLag; lag != 0 {
		t.Errorf("watermark lag after quiescence = %d, want 0", lag)
	}
}

// TestGCUnderConcurrentLoad races writers, pinned snapshot readers, and
// explicit collections; run under -race this exercises the chain
// install/walk/sever interleavings. Every reader must see its snapshot
// stay internally consistent (two reads of slots kept equal by every
// writer must match).
func TestGCUnderConcurrentLoad(t *testing.T) {
	f := newFixture(t, Config{GCEvery: 8}) // aggressive inline GC too
	o := f.heap.New(f.cls)
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 0)
		tx.Write(o, 1, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 3; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					v := tx.Read(o, 0) + 1
					tx.Write(o, 0, v)
					tx.Write(o, 1, v) // invariant: slot0 == slot1
					return nil
				})
			}
		}()
	}
	var gcs sync.WaitGroup
	gcs.Add(1)
	go func() {
		defer gcs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.rt.GC()
			}
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 500; i++ {
				_ = f.rt.AtomicRead(func(tx *Txn) error {
					a := tx.Read(o, 0)
					b := tx.Read(o, 1)
					if a != b {
						t.Errorf("torn snapshot: slot0=%d slot1=%d", a, b)
					}
					return nil
				})
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	gcs.Wait()
	if n := f.rt.Stats.ReadOnlyAborts.Load(); n != 0 {
		t.Errorf("read-only aborts under GC churn = %d, want 0", n)
	}
}
