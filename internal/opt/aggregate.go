package opt

import "repro/internal/lang/ir"

// aggregate implements barrier aggregation (Section 6, Figure 14): within a
// basic block, a run of barriered accesses to the same object is rewritten
// to acquire the transaction record once (AcquireRec), perform plain
// accesses, and release once (ReleaseRec). Per the paper, aggregation never
// crosses basic blocks, never spans function calls, and never covers more
// than one object; we additionally require at least one store in the run
// (a read-only run keeps its cheap per-access read barriers) and at least
// two barriered accesses (otherwise there is nothing to amortize).
func aggregate(p *ir.Program) (groups, accesses int) {
	for _, m := range p.Methods {
		for _, b := range m.Blocks {
			g, a := aggregateBlock(b)
			groups += g
			accesses += a
		}
	}
	return groups, accesses
}

type aggRun struct {
	base     int   // base object register
	members  []int // indexes of barriered accesses in the run
	hasStore bool
	first    int // index of first member
	last     int // index of last member
}

func aggregateBlock(b *ir.Block) (groups, accesses int) {
	var runs []aggRun
	cur := aggRun{base: -1}
	flush := func() {
		if cur.base >= 0 && len(cur.members) >= 2 && cur.hasStore {
			runs = append(runs, cur)
		}
		cur = aggRun{base: -1}
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		switch in.Op {
		case ir.GetField, ir.SetField, ir.GetElem, ir.SetElem:
			if in.Atomic || !in.Barrier.Need {
				// Transactional or already-barrier-free accesses neither
				// join nor break a run (a plain access is safe inside a
				// held record)... unless it touches a different object with
				// a *barrier* need, handled below. Keep scanning.
				if in.Atomic {
					flush() // atomic region boundary inside the block
				}
				continue
			}
			if cur.base == -1 {
				cur = aggRun{base: in.A, first: i}
			} else if in.A != cur.base {
				// A barriered access to a different object ends the run
				// (aggregated barriers cover a single object).
				flush()
				cur = aggRun{base: in.A, first: i}
			}
			cur.members = append(cur.members, i)
			cur.last = i
			if in.Op.IsStore() {
				cur.hasStore = true
			}
		case ir.GetStatic, ir.SetStatic:
			// Statics live in a different object (the statics holder);
			// aggregating across it would span two objects.
			flush()
		case ir.ConstInt, ir.Mov, ir.Add, ir.Sub, ir.Mul, ir.Neg, ir.Not,
			ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.ArrayLen,
			ir.NewObj, ir.NewArray, ir.Nop:
			// Pure or allocation instructions are allowed inside a run,
			// unless they redefine the base register.
			if cur.base >= 0 && in.Dst == cur.base {
				flush()
			}
		default:
			// Calls, control flow, monitors, atomic boundaries, prints,
			// division (can trap), spawn/join, retry: all end the run.
			flush()
		}
	}
	flush()

	if len(runs) == 0 {
		return 0, 0
	}
	// Rewrite the block with AcquireRec/ReleaseRec inserted around each run,
	// marking member accesses InAggregate.
	for _, r := range runs {
		for _, idx := range r.members {
			b.Instrs[idx].Barrier.InAggregate = true
		}
		accesses += len(r.members)
	}
	out := make([]ir.Instr, 0, len(b.Instrs)+2*len(runs))
	ri := 0
	for i := range b.Instrs {
		if ri < len(runs) && i == runs[ri].first {
			out = append(out, ir.Instr{Op: ir.AcquireRec, Dst: -1, A: runs[ri].base, B: -1,
				Pos: b.Instrs[i].Pos})
		}
		out = append(out, b.Instrs[i])
		if ri < len(runs) && i == runs[ri].last {
			out = append(out, ir.Instr{Op: ir.ReleaseRec, Dst: -1, A: runs[ri].base, B: -1,
				Pos: b.Instrs[i].Pos})
			ri++
		}
	}
	b.Instrs = out
	return len(runs), accesses
}
