package opt_test

import (
	"strings"
	"testing"

	"repro/internal/lang/ir"
	"repro/internal/opt"
	"repro/internal/tj"
	"repro/internal/vm"
)

func compile(t *testing.T, src string, o opt.Options) (*ir.Program, *opt.Report) {
	t.Helper()
	prog, rep, err := tj.Compile(src, o)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, rep
}

// countBarriers tallies accesses in non-atomic code by state.
func countBarriers(p *ir.Program) (active, removed, aggregated int) {
	for _, m := range p.Methods {
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if !in.Op.IsMemAccess() || in.Atomic {
					continue
				}
				switch {
				case in.Barrier.InAggregate:
					aggregated++
				case in.Barrier.Need:
					active++
				default:
					removed++
				}
			}
		}
	}
	return
}

func TestImmutableElimination(t *testing.T) {
	src := `
class C {
  final var id: int;
  var mut: int;
  func setup() { id = 1; }
}
class Main {
  static func main() {
    var c = new C();
    c.setup();
    print(c.id + c.mut);
  }
}`
	prog, rep := compile(t, src, opt.Options{BarrierElim: true})
	if rep.RemovedImmutable < 2 { // id write in setup + id read in main
		t.Errorf("RemovedImmutable = %d, want >= 2", rep.RemovedImmutable)
	}
	found := false
	for _, m := range prog.Methods {
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Final && in.Barrier.RemovedBy&ir.ByImmutable != 0 {
					found = true
				}
				if in.Final && in.Barrier.Need {
					t.Error("final-field access still needs a barrier")
				}
			}
		}
	}
	if !found {
		t.Error("no immutable removals recorded on instructions")
	}
}

func TestEscapeElimination(t *testing.T) {
	// All accesses are to a freshly allocated, never-escaping object: the
	// intraprocedural escape analysis must remove them all.
	src := `
class P { var x: int; var y: int; }
class Main {
  static func main() {
    var sum = 0;
    for (var i = 0; i < 10; i++) {
      var p = new P();
      p.x = i;
      p.y = i * 2;
      sum += p.x + p.y;
    }
    print(sum);
  }
}`
	_, rep := compile(t, src, opt.Options{BarrierElim: true})
	if rep.RemovedEscape < 4 {
		t.Errorf("RemovedEscape = %d, want >= 4 (2 stores + 2 loads)", rep.RemovedEscape)
	}
}

func TestEscapeStopsAtCall(t *testing.T) {
	src := `
class P { var x: int; }
class Main {
  static func use(p: P) { p.x = 1; }
  static func main() {
    var p = new P();
    p.x = 1;       // removable: p is fresh here
    Main.use(p);   // p escapes into the call
    p.x = 2;       // NOT removable intraprocedurally
    print(p.x);
  }
}`
	prog, _ := compile(t, src, opt.Options{BarrierElim: true})
	var main *ir.Method
	for _, m := range prog.Methods {
		if m.Name == "Main.main" {
			main = m
		}
	}
	var states []bool
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.SetField {
				states = append(states, in.Barrier.Need)
			}
		}
	}
	if len(states) != 2 {
		t.Fatalf("expected 2 stores in main, found %d", len(states))
	}
	if states[0] {
		t.Error("store before the call should have its barrier removed")
	}
	if !states[1] {
		t.Error("store after the call must keep its barrier")
	}
}

func TestEscapeMergeIntersects(t *testing.T) {
	// p is fresh on one path but escaped on the other: after the merge the
	// access must keep its barrier.
	src := `
class P { var x: int; }
class Main {
  static var g: P;
  static func main() {
    var p = new P();
    if (rand(2) == 0) { g = p; }
    p.x = 1;
    print(p.x);
  }
}`
	prog, _ := compile(t, src, opt.Options{BarrierElim: true})
	for _, m := range prog.Methods {
		if m.Name != "Main.main" {
			continue
		}
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.SetField && !in.Barrier.Need {
					t.Error("escaped-on-one-path store had its barrier removed")
				}
			}
		}
	}
}

func TestAggregation(t *testing.T) {
	src := `
class C { var x: int; var y: int; var z: int; }
class Main {
  static func main() {
    var c = new C();
    Main.use(c);
  }
  static func use(c: C) {
    c.x = 0;
    c.y += 1;
    c.z = c.x + c.y;
    print(c.z);
  }
}`
	prog, rep := compile(t, src, opt.Options{Aggregate: true})
	if rep.AggregateGroups < 1 {
		t.Fatalf("no aggregate groups formed")
	}
	// use(c) has a straight-line run of accesses to c: the block must
	// contain AcquireRec ... plain accesses ... ReleaseRec.
	var use *ir.Method
	for _, m := range prog.Methods {
		if m.Name == "Main.use" {
			use = m
		}
	}
	var seq []ir.Op
	for _, b := range use.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.AcquireRec, ir.ReleaseRec:
				seq = append(seq, in.Op)
			}
			if in.Op.IsMemAccess() && in.Barrier.InAggregate && in.Barrier.Active() {
				t.Error("aggregated access still executes a standalone barrier")
			}
		}
	}
	if len(seq) != 2 || seq[0] != ir.AcquireRec || seq[1] != ir.ReleaseRec {
		t.Errorf("acquire/release sequence = %v", seq)
	}
	if rep.AggregatedAccesses < 4 {
		t.Errorf("AggregatedAccesses = %d, want >= 4", rep.AggregatedAccesses)
	}
}

func TestAggregationBrokenByCallAndOtherObject(t *testing.T) {
	src := `
class C { var x: int; var y: int; }
class Main {
  static func f() {}
  static func main() {
    var a = new C();
    var b = new C();
    Main.use(a, b);
  }
  static func use(a: C, b: C) {
    a.x = 1;
    Main.f();  // breaks the run
    a.y = 2;
    b.x = 3;   // different object: cannot join a's run
    a.x = 4;
    print(b.y);
  }
}`
	_, rep := compile(t, src, opt.Options{Aggregate: true})
	if rep.AggregateGroups != 0 {
		t.Errorf("AggregateGroups = %d, want 0 (calls and object switches break every run)", rep.AggregateGroups)
	}
}

func TestAggregationReadOnlyRunNotAggregated(t *testing.T) {
	src := `
class C { var x: int; var y: int; }
class Main {
  static func main() {
    var c = new C();
    Main.use(c);
  }
  static func use(c: C) {
    print(c.x + c.y); // reads only: keep per-access read barriers
  }
}`
	_, rep := compile(t, src, opt.Options{Aggregate: true})
	if rep.AggregateGroups != 0 {
		t.Errorf("AggregateGroups = %d, want 0 for read-only runs", rep.AggregateGroups)
	}
}

// TestOptimizedProgramStillCorrect runs the same racy-free program at every
// optimization level under strong atomicity and checks identical results.
func TestOptimizedProgramStillCorrect(t *testing.T) {
	src := `
class Node { var v: int; var next: Node; }
class Stats {
  final var scale: int;
  var total: int;
  func setup(s: int) { scale = s; }
}
class Main {
  static var shared: Stats;
  static func worker(n: int) {
    for (var i = 0; i < n; i++) {
      atomic { shared.total = shared.total + shared.scale; }
    }
  }
  static func main() {
    shared = new Stats();
    shared.setup(2);
    var head: Node = null;
    for (var i = 0; i < 50; i++) {
      var nd = new Node();
      nd.v = i;
      nd.next = head;
      head = nd;
    }
    var t1 = spawn Main.worker(200);
    Main.worker(100);
    join(t1);
    var s = 0;
    var cur = head;
    while (cur != null) { s += cur.v; cur = cur.next; }
    atomic { s += shared.total; }
    print(s);
  }
}`
	want := "1825" // 50*49/2 + 300*2
	for lvl := opt.O0NoOpts; lvl <= opt.O4WholeProg; lvl++ {
		t.Run(lvl.String(), func(t *testing.T) {
			prog, _, err := tj.CompileLevel(src, lvl, 1)
			if err != nil {
				t.Fatal(err)
			}
			mode := vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, DEA: lvl.DEAEnabled()}
			var out strings.Builder
			m, err := vm.New(prog, mode, &out)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if got := strings.TrimSpace(out.String()); got != want {
				t.Errorf("output = %q, want %q", got, want)
			}
		})
	}
}

func TestLevelNames(t *testing.T) {
	names := []string{"NoOpts", "BarrierElim", "+BarrierAggr", "+DEA", "+WholeProgOpts"}
	for i, want := range names {
		if got := opt.Level(i).String(); got != want {
			t.Errorf("Level(%d) = %q, want %q", i, got, want)
		}
	}
	if !opt.O3DEA.DEAEnabled() || opt.O2Aggregate.DEAEnabled() {
		t.Error("DEAEnabled wrong")
	}
}

func TestReportTotals(t *testing.T) {
	src := `
class C { var x: int; }
class Main {
  static func main() {
    var c = new C();
    Main.use(c);
  }
  static func use(c: C) {
    c.x = 1;         // write barrier
    print(c.x);      // read barrier
    atomic { c.x = 2; } // transactional: not counted
  }
}`
	_, rep := compile(t, src, opt.Options{})
	if rep.TotalReads != 1 || rep.TotalWrites != 1 {
		t.Errorf("totals = %d reads / %d writes, want 1/1", rep.TotalReads, rep.TotalWrites)
	}
}
