package opt

import "repro/internal/lang/ir"

// elimEscape is the intraprocedural static escape analysis of Section 6:
// "allocated objects begin thread-local and an iterative, forward dataflow
// analysis finds that objects escape when they are assigned to escaped
// locations (static variables or fields of escaped objects) or are
// reachable from method-call arguments."
//
// The lattice element is the set of registers that definitely hold a fresh,
// unescaped allocation. We are slightly more conservative than the paper:
// storing a fresh object into *any* heap location escapes it (the paper
// only escapes stores into escaped objects), which is sound and simpler.
// Merges intersect, so an object is thread-local only if it is on every
// path — the analysis is path-sensitive in the sense that a barrier is
// removed per program point, using that point's state.
func elimEscape(p *ir.Program) int {
	removed := 0
	for _, m := range p.Methods {
		removed += escapeMethod(m)
	}
	return removed
}

type regset []uint64

func newRegset(n int, full bool) regset {
	s := make(regset, (n+63)/64)
	if full {
		for i := range s {
			s[i] = ^uint64(0)
		}
	}
	return s
}

func (s regset) get(r int) bool    { return r >= 0 && s[r/64]&(1<<uint(r%64)) != 0 }
func (s regset) set(r int)         { s[r/64] |= 1 << uint(r%64) }
func (s regset) clear(r int)       { s[r/64] &^= 1 << uint(r%64) }
func (s regset) copyFrom(t regset) { copy(s, t) }
func (s regset) clone() regset     { t := make(regset, len(s)); copy(t, s); return t }

// intersect sets s = s ∩ t, reporting whether s changed.
func (s regset) intersect(t regset) bool {
	changed := false
	for i := range s {
		n := s[i] & t[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func escapeMethod(m *ir.Method) int {
	n := m.NumRegs
	nb := len(m.Blocks)
	// in[b] is the set of definitely-fresh registers at block entry.
	// Unvisited blocks start at top (all fresh) so intersection works.
	in := make([]regset, nb)
	for i := range in {
		in[i] = newRegset(n, true)
	}
	// Entry: nothing is fresh (parameters come from the caller).
	in[0] = newRegset(n, false)

	// Iterate to fixpoint.
	changed := true
	for changed {
		changed = false
		for _, b := range m.Blocks {
			out := in[b.ID].clone()
			for i := range b.Instrs {
				transfer(out, &b.Instrs[i])
			}
			for _, succ := range successors(b) {
				if in[succ].intersect(out) {
					changed = true
				}
			}
		}
	}

	// Removal walk: re-simulate each block, clearing barriers on accesses
	// whose base register is definitely fresh at that point.
	removed := 0
	for _, b := range m.Blocks {
		state := in[b.ID].clone()
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			if ins.Barrier.Need && !ins.Atomic {
				base := -1
				switch ins.Op {
				case ir.GetField, ir.SetField, ir.GetElem, ir.SetElem:
					base = ins.A
				}
				if base >= 0 && state.get(base) {
					ins.Barrier.Need = false
					ins.Barrier.RemovedBy |= ir.ByLocalEscape
					removed++
				}
			}
			transfer(state, ins)
		}
	}
	return removed
}

func successors(b *ir.Block) []int {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case ir.Jmp:
		return []int{t.Targets[0]}
	case ir.Br:
		return []int{t.Targets[0], t.Targets[1]}
	default:
		return nil
	}
}

// transfer applies one instruction's effect to the fresh-register set.
func transfer(s regset, in *ir.Instr) {
	switch in.Op {
	case ir.NewObj, ir.NewArray:
		s.set(in.Dst)
		return
	case ir.Mov:
		if s.get(in.A) {
			s.set(in.Dst)
		} else {
			s.clear(in.Dst)
		}
		return
	case ir.SetField, ir.SetElem:
		// Storing a reference into the heap escapes the stored value.
		if in.IsRef {
			v := in.B
			if in.Op == ir.SetElem {
				v = in.C
			}
			s.clear(v)
		}
		return
	case ir.SetStatic:
		if in.IsRef {
			s.clear(in.B)
		}
		return
	case ir.CallStatic, ir.CallVirtual, ir.Spawn:
		// Arguments are reachable from the callee; the paper's analysis
		// escapes them (aggressive inlining lowers this imprecision; our
		// interpreter does not inline, so we take the precision hit).
		for _, a := range in.Args {
			s.clear(a)
		}
		if in.Dst >= 0 {
			s.clear(in.Dst)
		}
		return
	}
	if in.Dst >= 0 {
		// Any other definition produces a non-fresh value.
		s.clear(in.Dst)
	}
}
