// Package opt implements the barrier optimizations of the paper's JIT
// (Section 6) and drives the whole-program analyses (Section 5):
//
//   - Barrier elimination for immutable (final) fields and for objects the
//     intraprocedural static escape analysis proves thread-local.
//   - Barrier aggregation: multiple barriers to the same object in one
//     basic block combine into a single acquire/release pair (Figure 14).
//   - The whole-program not-accessed-in-transaction (NAIT) and
//     thread-local (TL) analyses, applied through package analysis.
//
// The pipeline mirrors the paper's measurement levels: "No Opts" runs
// nothing; "Barrier Elim" runs the elimination passes; "+Barrier Aggr"
// adds aggregation; "+DEA" is a runtime mode (vm.Mode.DEA), not an IR
// pass; "+Whole-Prog Opts" adds NAIT and TL.
package opt

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/lang/ir"
)

// Level is a named optimization level matching the paper's figures.
type Level int

// Optimization levels.
const (
	O0NoOpts      Level = iota // all barriers in place
	O1BarrierElim              // immutable + intraprocedural escape
	O2Aggregate                // + barrier aggregation
	O3DEA                      // + dynamic escape analysis (runtime flag)
	O4WholeProg                // + NAIT and TL whole-program analyses
)

func (l Level) String() string {
	switch l {
	case O0NoOpts:
		return "NoOpts"
	case O1BarrierElim:
		return "BarrierElim"
	case O2Aggregate:
		return "+BarrierAggr"
	case O3DEA:
		return "+DEA"
	case O4WholeProg:
		return "+WholeProgOpts"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Options selects passes explicitly.
type Options struct {
	BarrierElim  bool
	Aggregate    bool
	WholeProgram bool
	// Granularity is the version-management granularity in slots; NAIT must
	// account for it when deciding what a transaction writes (Section 2.4).
	Granularity int

	// TxnReadElim enables the Section 5.2 extension: in-transaction loads
	// proven conflict-free bypass the STM read protocol. Weak atomicity
	// only; implies WholeProgram.
	TxnReadElim bool
}

// FromLevel expands a Level into Options. (DEA is a runtime mode; O3DEA
// enables the same IR passes as O2Aggregate.)
func FromLevel(l Level, granularity int) Options {
	return Options{
		BarrierElim:  l >= O1BarrierElim,
		Aggregate:    l >= O2Aggregate,
		WholeProgram: l >= O4WholeProg,
		Granularity:  granularity,
	}
}

// DEAEnabled reports whether the level implies the dynamic escape analysis
// runtime mode.
func (l Level) DEAEnabled() bool { return l >= O3DEA }

// Report summarizes what the pipeline did.
type Report struct {
	// TotalReads/TotalWrites count non-transactional barriered accesses
	// after lowering (before any removal), across all methods.
	TotalReads  int
	TotalWrites int

	RemovedImmutable   int
	RemovedEscape      int
	AggregateGroups    int
	AggregatedAccesses int

	// Whole-program results (nil unless Options.WholeProgram).
	WholeProg *analysis.Report
}

// Run applies the selected passes to p in place and returns a report.
func Run(p *ir.Program, o Options) *Report {
	if o.Granularity == 0 {
		o.Granularity = 1
	}
	r := &Report{}
	for _, m := range p.Methods {
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op.IsMemAccess() && !in.Atomic && in.Barrier.Need {
					if in.Op.IsLoad() {
						r.TotalReads++
					} else {
						r.TotalWrites++
					}
				}
			}
		}
	}
	if o.BarrierElim {
		r.RemovedImmutable = elimImmutable(p)
		r.RemovedEscape = elimEscape(p)
	}
	if o.WholeProgram || o.TxnReadElim {
		r.WholeProg = analysis.Run(p, analysis.Options{
			Granularity: o.Granularity, Apply: true, TxnReadElim: o.TxnReadElim,
		})
	}
	if o.Aggregate {
		r.AggregateGroups, r.AggregatedAccesses = aggregate(p)
	}
	return r
}

// elimImmutable removes barriers on accesses to final fields: immutable
// after construction, so no transaction can conflict with them (§6).
func elimImmutable(p *ir.Program) int {
	n := 0
	for _, m := range p.Methods {
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op.IsMemAccess() && in.Final && in.Barrier.Need {
					in.Barrier.Need = false
					in.Barrier.RemovedBy |= ir.ByImmutable
					n++
				}
			}
		}
	}
	return n
}
