// Package core is the public face of the reproduction: a strongly-atomic
// software transactional memory system in the style of Shpeisman et al.,
// "Enforcing Isolation and Ordering in STM" (PLDI 2007).
//
// It bundles the two ways to use the system:
//
//   - As a Go-hosted STM: define classes, allocate objects, run atomic
//     blocks, and perform non-transactional accesses that are nonetheless
//     isolated from transactions by the paper's read/write barriers
//     (strong atomicity). See System.
//
//   - As a language runtime: compile TJ programs (a small Java-like
//     language with atomic blocks) through the barrier-inserting and
//     barrier-optimizing JIT pipeline and execute them on the multithreaded
//     VM. See Compile and Program.
package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/lang/ir"
	"repro/internal/lazystm"
	"repro/internal/objmodel"
	"repro/internal/opt"
	"repro/internal/stm"
	"repro/internal/stmapi"
	"repro/internal/strong"
	"repro/internal/tj"
	"repro/internal/vm"
)

// Versioning selects the STM's write-management policy.
type Versioning = vm.Versioning

// Versioning policies.
const (
	Eager = vm.Eager // in-place update + undo log (the paper's system)
	Lazy  = vm.Lazy  // private write buffers, write-back after commit
)

// Config parameterizes a System or a compiled Program.
type Config struct {
	// Versioning selects eager (default, the paper's) or lazy.
	Versioning Versioning

	// Strong enables the non-transactional isolation barriers. Without it
	// the system is weakly atomic and exhibits the Section 2 anomalies.
	Strong bool

	// DEA enables dynamic escape analysis: objects are born private and
	// barriers on private objects skip synchronization (Section 4).
	// Requires Strong and Eager.
	DEA bool

	// OptLevel selects the barrier-optimization pipeline for compiled
	// programs (Section 5–6): NoOpts, BarrierElim, +Aggregate, +DEA,
	// +WholeProg.
	OptLevel opt.Level

	// Granularity is the undo-log/write-buffer granularity in slots
	// (default 1; 2 reproduces the Section 2.4 anomalies under weak
	// atomicity).
	Granularity int

	// Quiescence enables the Section 3.4 privatization mechanism.
	Quiescence bool

	// Seed makes rand() deterministic in compiled programs.
	Seed int64
}

func (c Config) granularity() int {
	if c.Granularity == 0 {
		return 1
	}
	return c.Granularity
}

// ---- Go-hosted system ----

// System is a ready-to-use strongly-atomic STM over a managed heap.
type System struct {
	Heap     *objmodel.Heap
	Eager    *stm.Runtime
	Lazy     *lazystm.Runtime
	Barriers *strong.Barriers

	cfg Config
}

// NewSystem builds a System from cfg.
func NewSystem(cfg Config) (*System, error) {
	if cfg.DEA && (!cfg.Strong || cfg.Versioning != Eager) {
		return nil, fmt.Errorf("core: DEA requires Strong atomicity with Eager versioning")
	}
	h := objmodel.NewHeap()
	h.AllocPrivate = cfg.DEA
	s := &System{
		Heap: h,
		Eager: stm.New(h, stm.Config{
			CommonConfig: stmapi.CommonConfig{
				Granularity: cfg.granularity(),
				Quiescence:  cfg.Quiescence && cfg.Versioning == Eager,
			},
			DEA: cfg.DEA,
		}),
		Lazy: lazystm.New(h, lazystm.Config{
			CommonConfig: stmapi.CommonConfig{
				Granularity: cfg.granularity(),
				Quiescence:  cfg.Quiescence && cfg.Versioning == Lazy,
			},
		}),
		Barriers: strong.New(h, cfg.DEA),
		cfg:      cfg,
	}
	return s, nil
}

// MustNewSystem is NewSystem, panicking on configuration errors.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Field declares one field of a class.
type Field = objmodel.Field

// Class is an object layout.
type Class = objmodel.Class

// Obj is a managed object handle.
type Obj = *objmodel.Object

// ObjRef is a word-sized reference to a managed object (0 is null), as
// stored in reference slots.
type ObjRef = objmodel.Ref

// DefineClass registers a class with the given fields.
func (s *System) DefineClass(name string, fields ...Field) (*Class, error) {
	return s.Heap.DefineClass(objmodel.ClassSpec{Name: name, Fields: fields})
}

// New allocates an object (private under DEA, shared otherwise).
func (s *System) New(c *Class) Obj { return s.Heap.New(c) }

// NewArray allocates an array of n scalar or reference elements.
func (s *System) NewArray(n int, refs bool) Obj { return s.Heap.NewArray(n, refs) }

// Tx is the transactional access interface inside Atomic.
type Tx interface {
	Read(o Obj, slot int) uint64
	Write(o Obj, slot int, v uint64)
	ReadRef(o Obj, slot int) objmodel.Ref
	WriteRef(o Obj, slot int, r objmodel.Ref)
	Retry()
	Restart()
}

// Atomic executes body as a transaction under the configured STM,
// re-executing until it commits. Returning an error aborts (rolls back)
// and propagates the error.
func (s *System) Atomic(body func(tx Tx) error) error {
	if s.cfg.Versioning == Lazy {
		return s.Lazy.Atomic(nil, func(tx *lazystm.Txn) error { return body(tx) })
	}
	return s.Eager.Atomic(nil, func(tx *stm.Txn) error { return body(tx) })
}

// AtomicOpen runs body as an open-nested transaction (eager versioning
// only): it commits (or aborts) immediately and independently of any
// enclosing transaction. If parent is a transaction from an enclosing
// Atomic and the open-nested transaction commits, compensation (if
// non-nil) is registered to run should the parent later abort.
func (s *System) AtomicOpen(parent Tx, body func(tx Tx) error, compensation func()) error {
	if s.cfg.Versioning == Lazy {
		return fmt.Errorf("core: open nesting requires eager versioning")
	}
	var ptx *stm.Txn
	if parent != nil {
		p, ok := parent.(*stm.Txn)
		if !ok {
			return fmt.Errorf("core: parent is not an eager transaction")
		}
		ptx = p
	}
	return s.Eager.AtomicOpen(ptx, func(tx *stm.Txn) error { return body(tx) }, compensation)
}

// Read performs a non-transactional read: through the Figure 9a isolation
// barrier under strong atomicity (the Section 3.3 ordering barrier for lazy
// versioning), or directly under weak atomicity.
func (s *System) Read(o Obj, slot int) uint64 {
	if !s.cfg.Strong {
		return o.LoadSlot(slot)
	}
	if s.cfg.Versioning == Lazy {
		return s.Barriers.ReadOrdering(o, slot)
	}
	return s.Barriers.Read(o, slot)
}

// Write performs a non-transactional write: through the Figure 9b barrier
// under strong atomicity, or directly under weak atomicity.
func (s *System) Write(o Obj, slot int, v uint64) {
	if !s.cfg.Strong {
		o.StoreSlot(slot, v)
		return
	}
	s.Barriers.Write(o, slot, v)
}

// ReadRef and WriteRef are the reference-slot variants.
func (s *System) ReadRef(o Obj, slot int) objmodel.Ref {
	return objmodel.Ref(s.Read(o, slot))
}

// WriteRef writes a reference through the non-transactional barrier,
// publishing the referenced private subgraph under DEA.
func (s *System) WriteRef(o Obj, slot int, r objmodel.Ref) {
	s.Write(o, slot, uint64(r))
}

// Deref resolves a reference to its object.
func (s *System) Deref(r objmodel.Ref) Obj { return s.Heap.Get(r) }

// ---- Compiled TJ programs ----

// Program is a compiled TJ program plus its optimization report.
type Program struct {
	IR     *ir.Program
	Report *opt.Report
	cfg    Config
}

// Compile compiles TJ source through the full pipeline at cfg.OptLevel.
func Compile(src string, cfg Config) (*Program, error) {
	prog, rep, err := tj.CompileLevel(src, cfg.OptLevel, cfg.granularity())
	if err != nil {
		return nil, err
	}
	return &Program{IR: prog, Report: rep, cfg: cfg}, nil
}

// RunResult carries a program execution's output and statistics.
type RunResult struct {
	Output   string
	Executed int64 // interpreted instructions
	Commits  int64 // committed transactions (eager + lazy)
	Aborts   int64
}

// Run executes the program with the given arguments and returns its output.
func (p *Program) Run(args ...int64) (*RunResult, error) {
	return p.RunMode(p.Mode(args...))
}

// Mode builds the vm.Mode this program's Config implies.
func (p *Program) Mode(args ...int64) vm.Mode {
	return vm.Mode{
		Sync:        vm.SyncSTM,
		Versioning:  p.cfg.Versioning,
		Strong:      p.cfg.Strong,
		DEA:         p.cfg.DEA || p.cfg.OptLevel.DEAEnabled() && p.cfg.Strong,
		Quiescence:  p.cfg.Quiescence,
		Granularity: p.cfg.granularity(),
		Seed:        p.cfg.Seed,
		Args:        args,
	}
}

// RunMode executes with full control over the vm.Mode.
func (p *Program) RunMode(mode vm.Mode) (*RunResult, error) {
	var out strings.Builder
	m, err := vm.New(p.IR, mode, &out)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return &RunResult{
		Output:   strings.TrimSpace(out.String()),
		Executed: m.Executed.Load(),
		Commits:  m.Eager.Stats.Commits.Load() + m.Lazy.Stats.Commits.Load(),
		Aborts:   m.Eager.Stats.Aborts.Load() + m.Lazy.Stats.Aborts.Load(),
	}, nil
}

// RunTo executes writing output to w (for CLI tools).
func (p *Program) RunTo(w io.Writer, mode vm.Mode) error {
	m, err := vm.New(p.IR, mode, w)
	if err != nil {
		return err
	}
	return m.Run()
}

// DisassembleMethod renders a compiled method's IR with barrier
// annotations, or an error note if missing.
func (p *Program) DisassembleMethod(name string) string {
	for _, m := range p.IR.Methods {
		if m.Name == name {
			return m.String()
		}
	}
	return fmt.Sprintf("; no method %q\n", name)
}
