package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/opt"
)

func TestSystemStrongCounter(t *testing.T) {
	s := MustNewSystem(Config{Strong: true})
	cls, err := s.DefineClass("Counter", Field{Name: "n"})
	if err != nil {
		t.Fatal(err)
	}
	o := s.New(cls)
	const perSide = 1000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // transactional side
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			_ = s.Atomic(func(tx Tx) error {
				tx.Write(o, 0, tx.Read(o, 0)+1)
				return nil
			})
		}
	}()
	go func() { // non-transactional, barriered side
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			s.Write(o, 0, s.Read(o, 0)+1)
		}
	}()
	wg.Wait()
	if got := o.LoadSlot(0); got != 2*perSide {
		t.Errorf("counter = %d, want %d (strong atomicity must not lose updates)", got, 2*perSide)
	}
}

func TestSystemWeakIsDirect(t *testing.T) {
	s := MustNewSystem(Config{})
	cls, _ := s.DefineClass("C", Field{Name: "x"})
	o := s.New(cls)
	s.Write(o, 0, 7)
	if s.Read(o, 0) != 7 {
		t.Error("weak read/write roundtrip failed")
	}
}

func TestSystemLazy(t *testing.T) {
	s := MustNewSystem(Config{Versioning: Lazy, Strong: true})
	cls, _ := s.DefineClass("C", Field{Name: "x"})
	o := s.New(cls)
	err := s.Atomic(func(tx Tx) error {
		tx.Write(o, 0, 5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Read(o, 0); got != 5 {
		t.Errorf("read = %d", got)
	}
}

func TestSystemRefsAndDeref(t *testing.T) {
	s := MustNewSystem(Config{Strong: true, DEA: true, Versioning: Eager})
	node, _ := s.DefineClass("Node", Field{Name: "v"}, Field{Name: "next", IsRef: true})
	a, b := s.New(node), s.New(node)
	b.StoreSlot(0, 42)
	s.WriteRef(a, 1, b.Ref()) // a is private: no publication
	if !b.IsPrivate() {
		t.Error("write into private container should not publish")
	}
	if got := s.Deref(s.ReadRef(a, 1)).LoadSlot(0); got != 42 {
		t.Errorf("deref = %d", got)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := NewSystem(Config{DEA: true}); err == nil {
		t.Error("DEA without Strong accepted")
	}
	if _, err := NewSystem(Config{DEA: true, Strong: true, Versioning: Lazy}); err == nil {
		t.Error("DEA with Lazy accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewSystem did not panic")
		}
	}()
	MustNewSystem(Config{DEA: true})
}

const helloSrc = `
class Main {
  static func main() {
    var s = 0;
    for (var i = 0; i < arg(0); i++) { s += i; }
    atomic { s = s * 2; }
    print(s);
  }
}`

func TestCompileAndRun(t *testing.T) {
	p, err := Compile(helloSrc, Config{Strong: true, OptLevel: opt.O2Aggregate})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "90" {
		t.Errorf("output = %q, want 90", res.Output)
	}
	if res.Executed == 0 || res.Commits == 0 {
		t.Errorf("stats: executed=%d commits=%d", res.Executed, res.Commits)
	}
	if p.Report == nil || p.Report.TotalReads < 0 {
		t.Error("missing optimization report")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile(`class Main { static func main() { undefined_thing; } }`, Config{}); err == nil {
		t.Error("semantic error not reported")
	}
	if _, err := Compile(`class Main {`, Config{}); err == nil {
		t.Error("syntax error not reported")
	}
}

func TestDisassemble(t *testing.T) {
	p, err := Compile(helloSrc, Config{OptLevel: opt.O0NoOpts})
	if err != nil {
		t.Fatal(err)
	}
	dis := p.DisassembleMethod("Main.main")
	for _, want := range []string{"atomicbegin", "atomicend", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	if !strings.Contains(p.DisassembleMethod("No.such"), "no method") {
		t.Error("missing-method note absent")
	}
}

func TestRunTo(t *testing.T) {
	p, err := Compile(helloSrc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.RunTo(&sb, p.Mode(5)); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "20" {
		t.Errorf("output = %q", sb.String())
	}
}

func TestAtomicOpen(t *testing.T) {
	s := MustNewSystem(Config{Strong: true})
	cls, _ := s.DefineClass("L", Field{Name: "ops"}, Field{Name: "data"})
	logObj, data := s.New(cls), s.New(cls)
	compensated := false
	err := s.Atomic(func(tx Tx) error {
		tx.Write(data, 1, 7)
		// Open-nested audit-log increment: survives the parent's abort.
		if err := s.AtomicOpen(tx, func(otx Tx) error {
			otx.Write(logObj, 0, otx.Read(logObj, 0)+1)
			return nil
		}, func() { compensated = true }); err != nil {
			return err
		}
		return ErrAbortSentinel
	})
	if err != ErrAbortSentinel {
		t.Fatalf("err = %v", err)
	}
	if data.LoadSlot(1) != 0 {
		t.Error("parent effect survived abort")
	}
	if logObj.LoadSlot(0) != 1 {
		t.Error("open-nested effect did not survive parent abort")
	}
	if !compensated {
		t.Error("compensation did not run")
	}
	// Lazy systems reject open nesting.
	lz := MustNewSystem(Config{Versioning: Lazy})
	if err := lz.AtomicOpen(nil, func(tx Tx) error { return nil }, nil); err == nil {
		t.Error("lazy open nesting accepted")
	}
}

// ErrAbortSentinel aborts the test transaction permanently.
var ErrAbortSentinel = errSentinel{}

type errSentinel struct{}

func (errSentinel) Error() string { return "abort" }

func ExampleSystem_Atomic() {
	s := MustNewSystem(Config{Strong: true})
	acct, _ := s.DefineClass("Account", Field{Name: "balance"})
	a, b := s.New(acct), s.New(acct)
	a.StoreSlot(0, 100)
	_ = s.Atomic(func(tx Tx) error {
		tx.Write(a, 0, tx.Read(a, 0)-25)
		tx.Write(b, 0, tx.Read(b, 0)+25)
		return nil
	})
	fmt.Println(s.Read(a, 0), s.Read(b, 0))
	// Output: 75 25
}
