package stmapi

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/objmodel"
)

// Factory constructs a runtime bound to heap with the given common
// configuration. Runtime-specific configuration (DEA for eager, commit-window
// hooks for lazy, GC cadence for mvstm) keeps its defaults; drivers that need
// it construct the concrete runtime directly.
type Factory func(heap *objmodel.Heap, cfg CommonConfig) (Runtime, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a runtime factory under name. Each runtime package registers
// itself from an init function, so importing a runtime (directly or blankly)
// is what makes it visible to Runtimes and New — drivers written against the
// registry pick up new runtimes without a code change. Register panics on an
// empty name, a nil factory, or a duplicate registration: all three are
// programmer errors at package-initialization time.
func Register(name string, f Factory) {
	if name == "" {
		panic("stmapi: Register with empty runtime name")
	}
	if f == nil {
		panic("stmapi: Register with nil factory for " + name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("stmapi: duplicate runtime registration for " + name)
	}
	registry[name] = f
}

// Runtimes returns the registered runtime names in sorted order. The sweep
// and litmus matrices iterate this instead of hardcoding a name list, so a
// newly registered runtime joins every matrix automatically.
func Runtimes() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// New constructs the runtime registered under name, bound to heap. An
// unknown name is an error listing the registered runtimes (mirroring
// conflict.ByName); every entry point must surface it rather than silently
// falling back to a default.
func New(name string, heap *objmodel.Heap, cfg CommonConfig) (Runtime, error) {
	registryMu.RLock()
	f := registry[name]
	registryMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("stmapi: unknown runtime %q (have %v)", name, Runtimes())
	}
	return f(heap, cfg)
}

// ReadOnlyRuntime is the optional capability interface of runtimes with a
// dedicated read-only transaction mode: AtomicRead executes body against a
// consistent snapshot chosen at begin, with no validation, no aborts, and no
// writes to shared metadata. The body must not write (Write, WriteRef) or
// call BecomeIrrevocable; doing so panics. Drivers probe for this interface
// with a type assertion and fall back to Atomic when it is absent.
type ReadOnlyRuntime interface {
	Runtime

	// AtomicRead executes body as a read-only snapshot transaction and
	// returns its error, if any. The body runs exactly once: snapshot reads
	// cannot conflict, so there are no retries.
	AtomicRead(body func(Txn) error) error
}
