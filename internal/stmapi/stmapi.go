// Package stmapi defines the runtime-agnostic transactional memory API
// implemented by every STM runtime in this repository (internal/stm, eager
// versioning; internal/lazystm, lazy versioning; internal/mvstm,
// multi-version snapshot isolation).
//
// Historically every driver — the bench sweeps, the litmus harness,
// cmd/stmbench — carried a hand-written code path per runtime, switching on
// a versioning string. This package collapses that duplication twice over:
// Runtime and Txn are small interfaces every runtime satisfies (each exposes
// an adapter via its API() method), CommonConfig is the shared configuration
// surface the runtimes embed in their Config structs, StatsSnapshot is the
// shared counter snapshot they report — and the registry (Register,
// Runtimes, New) makes the set of runtimes itself a runtime value, so
// drivers enumerate and construct runtimes by name instead of hardcoding
// the list.
//
// The interfaces are for *drivers* — harnesses, benchmarks, exporters,
// tools that must treat the runtimes uniformly. Hot loops that care about
// the last nanosecond keep using the concrete runtime APIs; an interface
// call costs a dynamic dispatch that the concrete path does not.
package stmapi

import (
	"context"
	"errors"
	"fmt"
	"os"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/trace"
)

// Status is the lifecycle state of a transaction attempt. Both runtimes
// alias their Status type to this one, so the numeric encodings agree.
type Status uint32

// Transaction statuses.
const (
	Active Status = iota
	Committed
	Aborted
)

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", uint32(s))
	}
}

// MaxGranularity is the largest version-management granularity a runtime
// supports (in slots).
const MaxGranularity = 2

// DefaultSelfAbortAfter is the default CommonConfig.SelfAbortAfter.
const DefaultSelfAbortAfter = 64

// CommonConfig is the configuration surface shared by every runtime. Each
// runtime's Config embeds it (and adds its own fields: DEA for eager,
// commit-window Hooks for lazy, GC cadence for mvstm). Fields a runtime has
// no use for are documented on the field; a runtime never rejects one, it
// ignores it.
type CommonConfig struct {
	// Granularity is the number of adjacent slots covered by one undo-log
	// entry (eager) or write-buffer span (lazy): 1 (field-granular, the
	// safe default) or 2 (reproduces the Section 2.4 granular anomalies).
	// The multi-version runtime accepts either value but always buffers
	// slot-granular, so it exhibits no granular anomalies.
	Granularity int

	// Quiescence enables the Section 3.4 ordering guarantee: a transaction
	// completes only after the transactions it must not overtake have
	// finished (active-set drain for eager, write-back serialization for
	// lazy).
	Quiescence bool

	// Handler receives conflict notifications; nil means a shared
	// conflict.Backoff. A Handler that also implements conflict.Policy may
	// additionally direct the runtime to self-abort or doom the contended
	// record's owner (see internal/conflict).
	Handler conflict.Handler

	// SelfAbortAfter is the number of conflict-handler invocations a single
	// transactional access tolerates before the transaction aborts itself
	// and restarts (breaking writer-writer deadlocks). Zero means
	// DefaultSelfAbortAfter.
	SelfAbortAfter int

	// EscalateAfter is the graceful-degradation threshold: after this many
	// consecutive aborts of the same atomic block, the next attempt is
	// escalated to an irrevocable transaction (see Txn.BecomeIrrevocable),
	// which cannot lose an arbitration and therefore always makes progress.
	// Zero disables escalation (the default); negative is invalid.
	EscalateAfter int

	// NoIrrevocable forbids irrevocable transactions on the runtime: the
	// global token is never handed out, AtomicIrrevocable returns
	// ErrIrrevocableDisabled, and BecomeIrrevocable panics. Deployments that
	// cannot tolerate a serializing token set this; combining it with
	// EscalateAfter > 0 is a configuration conflict rejected by Normalize.
	NoIrrevocable bool

	// NoCommitClock disables TL2-style commit-clock validation and falls
	// back to the original read-set walk at every validation point. The
	// multi-version runtime ignores it: the commit clock is what stamps
	// versions, so it cannot be turned off there. The
	// zero value — clock validation on — is the fast default: commit
	// validation is a single clock compare whenever no other transaction
	// committed since this one began, falling back to the walk only then.
	// The ValidationEnv environment variable overrides this field in
	// Normalize, so deployments can flip validation modes without a
	// recompile.
	NoCommitClock bool
}

// ValidationEnv is the environment variable consulted by Normalize to
// override CommonConfig.NoCommitClock: "walk" forces read-set-walk
// validation, "clock" forces commit-clock validation, empty leaves the
// config value alone. Any other value is a configuration error.
const ValidationEnv = "STM_VALIDATION"

// Normalize fills defaulted fields in place and validates the result: the
// zero value of every field is a valid "use the default" request, anything
// else must be in range. It is called by every runtime's New.
func (c *CommonConfig) Normalize() error {
	if c.Granularity == 0 {
		c.Granularity = 1
	}
	if c.Granularity < 1 || c.Granularity > MaxGranularity {
		return fmt.Errorf("stmapi: unsupported granularity %d (want 1..%d)", c.Granularity, MaxGranularity)
	}
	if c.SelfAbortAfter == 0 {
		c.SelfAbortAfter = DefaultSelfAbortAfter
	}
	if c.SelfAbortAfter < 0 {
		return fmt.Errorf("stmapi: negative SelfAbortAfter %d", c.SelfAbortAfter)
	}
	if c.EscalateAfter < 0 {
		return fmt.Errorf("stmapi: negative EscalateAfter %d", c.EscalateAfter)
	}
	if c.NoIrrevocable && c.EscalateAfter > 0 {
		return fmt.Errorf("stmapi: EscalateAfter %d conflicts with NoIrrevocable (escalation needs irrevocable transactions)", c.EscalateAfter)
	}
	switch v := os.Getenv(ValidationEnv); v {
	case "":
	case "walk":
		c.NoCommitClock = true
	case "clock":
		c.NoCommitClock = false
	default:
		return fmt.Errorf("stmapi: %s=%q (want \"clock\" or \"walk\")", ValidationEnv, v)
	}
	return nil
}

// ErrIrrevocableDisabled is returned by AtomicIrrevocable on a runtime
// configured with NoIrrevocable.
var ErrIrrevocableDisabled = errors.New("stmapi: irrevocable transactions disabled by configuration")

// StatsSnapshot is a point-in-time copy of a runtime's counters as plain
// values. Counters that a runtime does not track (UserRetries before the
// lazy runtime grew retry accounting, for instance) are simply zero.
type StatsSnapshot struct {
	Starts      int64 `json:"starts"`
	Commits     int64 `json:"commits"`
	Aborts      int64 `json:"aborts"`
	UserRetries int64 `json:"user_retries"`
	TxnReads    int64 `json:"txn_reads"`
	TxnWrites   int64 `json:"txn_writes"`

	// SelfAborts and DoomsIssued are contention-policy outcomes: attempts
	// that aborted themselves on a policy's SelfAbort decision, and doom
	// requests issued against a visible owner on AbortOther decisions.
	SelfAborts  int64 `json:"policy_self_aborts,omitempty"`
	DoomsIssued int64 `json:"policy_dooms,omitempty"`

	// Recovery and irrevocability counters. ReaperSteals counts orphaned
	// transactions whose records were reclaimed (by the background reaper or
	// an inline-stealing waiter); Escalations counts atomic blocks escalated
	// to irrevocable after EscalateAfter consecutive aborts; IrrevocableTxns
	// counts transactions that ran irrevocably (escalated or explicit);
	// IrrevocableNs is the cumulative global-token hold time.
	ReaperSteals    int64 `json:"reaper_steals,omitempty"`
	Escalations     int64 `json:"escalations,omitempty"`
	IrrevocableTxns int64 `json:"irrevocable_txns,omitempty"`
	IrrevocableNs   int64 `json:"irrevocable_ns,omitempty"`

	// Commit-clock validation counters. ClockAdvances counts commits whose
	// clock-increment CAS succeeded (GV4 sampling means this is at most,
	// and under contention less than, the writing-commit count);
	// FastpathValidations counts validations satisfied by the single clock
	// compare; FallbackWalks counts validations that had to walk the read
	// set — stale snapshots at commit plus snapshot extensions at read.
	ClockAdvances       int64 `json:"clock_advances,omitempty"`
	FastpathValidations int64 `json:"fastpath_validations,omitempty"`
	FallbackWalks       int64 `json:"fallback_walks,omitempty"`

	// Adaptive-granularity counters: objects promoted to slot-level
	// version management and demoted back to the configured span.
	GranPromotions int64 `json:"gran_promotions,omitempty"`
	GranDemotions  int64 `json:"gran_demotions,omitempty"`

	// Multi-version counters. SnapshotReads counts reads satisfied from a
	// version chain without validation; ReadOnlyTxns counts transactions
	// that committed on the read-only path (AtomicRead, or Atomic bodies
	// that never wrote); ReadOnlyAborts counts read-only transactions that
	// aborted — zero by construction in mvstm, the litmus suite asserts it.
	// VersionsInstalled/VersionsGCd count chain nodes created and reclaimed
	// (VersionsLive is their difference at snapshot time); WatermarkLag is
	// the commit-clock distance the GC watermark trailed by at the last
	// collection — how much history live snapshots were pinning.
	SnapshotReads     int64 `json:"snapshot_reads,omitempty"`
	ReadOnlyTxns      int64 `json:"read_only_txns,omitempty"`
	ReadOnlyAborts    int64 `json:"read_only_aborts,omitempty"`
	VersionsInstalled int64 `json:"versions_installed,omitempty"`
	VersionsLive      int64 `json:"versions_live,omitempty"`
	VersionsGCd       int64 `json:"versions_gcd,omitempty"`
	WatermarkLag      int64 `json:"watermark_lag,omitempty"`
}

// Fields enumerates the snapshot as name→value pairs, in a stable order,
// for exporters that render counters generically (internal/metrics).
func (s StatsSnapshot) Fields() []struct {
	Name  string
	Value int64
} {
	return []struct {
		Name  string
		Value int64
	}{
		{"starts", s.Starts},
		{"commits", s.Commits},
		{"aborts", s.Aborts},
		{"user_retries", s.UserRetries},
		{"txn_reads", s.TxnReads},
		{"txn_writes", s.TxnWrites},
		{"policy_self_aborts", s.SelfAborts},
		{"policy_dooms", s.DoomsIssued},
		{"reaper_steals", s.ReaperSteals},
		{"escalations", s.Escalations},
		{"irrevocable_txns", s.IrrevocableTxns},
		{"irrevocable_ns", s.IrrevocableNs},
		{"clock_advances", s.ClockAdvances},
		{"fastpath_validations", s.FastpathValidations},
		{"fallback_walks", s.FallbackWalks},
		{"gran_promotions", s.GranPromotions},
		{"gran_demotions", s.GranDemotions},
		{"snapshot_reads", s.SnapshotReads},
		{"read_only_txns", s.ReadOnlyTxns},
		{"read_only_aborts", s.ReadOnlyAborts},
		{"versions_installed", s.VersionsInstalled},
		{"versions_live", s.VersionsLive},
		{"versions_gcd", s.VersionsGCd},
		{"watermark_lag", s.WatermarkLag},
	}
}

// Txn is the transactional access interface inside an atomic block. Every
// runtime's concrete *Txn satisfies it directly.
type Txn interface {
	// ID returns the transaction's owner ID as encoded in acquired records.
	// IDs are assigned once per top-level Atomic from a runtime-monotonic
	// counter, so they double as age stamps: smaller ID = older.
	ID() uint64

	// Status returns the descriptor's current status.
	Status() Status

	// Attempt is the 0-based execution attempt of the atomic body.
	Attempt() int

	// Read opens o for reading at slot and returns the value.
	Read(o *objmodel.Object, slot int) uint64

	// Write opens o for writing at slot and stores v (in place for eager
	// versioning, buffered for lazy).
	Write(o *objmodel.Object, slot int, v uint64)

	// ReadRef and WriteRef are the reference-slot variants.
	ReadRef(o *objmodel.Object, slot int) objmodel.Ref
	WriteRef(o *objmodel.Object, slot int, r objmodel.Ref)

	// Retry aborts and blocks until some location in the read set changes,
	// then re-executes the body.
	Retry()

	// Restart aborts and re-executes the body immediately.
	Restart()

	// BecomeIrrevocable switches the transaction to irrevocable mode: it
	// acquires the runtime's single irrevocable token (waiting if another
	// transaction holds it), upgrades its read set to exclusive ownership so
	// commit validation cannot fail, and from then on never aborts — every
	// subsequent read acquires its record pessimistically and conflicting
	// transactions yield. Safe for I/O after the switch. If the read set is
	// already stale the transaction restarts (the switch has not happened,
	// so aborting is still legal). Panics on a NoIrrevocable runtime, and
	// must not be followed by Retry or a body error (the runtime still
	// cleans up, but the irrevocability guarantee is forfeited).
	BecomeIrrevocable()

	// IsIrrevocable reports whether BecomeIrrevocable has taken effect for
	// the current attempt.
	IsIrrevocable() bool
}

// Runtime is the uniform driver-facing surface of an STM runtime. Obtain
// one from a concrete runtime's API() method, or by name from New.
type Runtime interface {
	// Name identifies the runtime's versioning discipline — the key it was
	// registered under (see Register). The set of names is open-ended:
	// drivers discover it through Runtimes() rather than enumerating
	// runtimes themselves.
	Name() string

	// Heap returns the managed heap the runtime is bound to.
	Heap() *objmodel.Heap

	// Atomic executes body as a top-level transaction, re-executing until
	// it commits. A body error aborts (rolls back) and is returned.
	Atomic(body func(Txn) error) error

	// AtomicCtx is Atomic with deadline/cancellation: a cancelled or
	// expired context aborts the transaction (rolling back any effects)
	// and returns ctx.Err(). An already-cancelled context returns
	// immediately without executing the body.
	AtomicCtx(ctx context.Context, body func(Txn) error) error

	// AtomicIrrevocable executes body as an irrevocable transaction: the
	// body runs at most once after the irrevocable switch (no aborts, no
	// re-execution past the switch), so it may perform I/O. Returns
	// ErrIrrevocableDisabled on a NoIrrevocable runtime. A body error still
	// rolls back and is returned — returning an error from an irrevocable
	// body forfeits the no-reexecution guarantee and is a caller bug.
	AtomicIrrevocable(body func(Txn) error) error

	// Stats snapshots the runtime's counters.
	Stats() StatsSnapshot

	// SetTracer installs (or, with nil, removes) the event tracer.
	SetTracer(t *trace.Tracer)

	// Tracer returns the installed tracer, or nil.
	Tracer() *trace.Tracer

	// ActiveTransactions returns the number of in-flight transactions.
	ActiveTransactions() int
}
