package stmapi

import (
	"strings"
	"testing"
)

func TestNormalizeDefaults(t *testing.T) {
	var c CommonConfig
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Granularity != 1 {
		t.Errorf("Granularity = %d, want 1", c.Granularity)
	}
	if c.SelfAbortAfter != DefaultSelfAbortAfter {
		t.Errorf("SelfAbortAfter = %d, want %d", c.SelfAbortAfter, DefaultSelfAbortAfter)
	}
	if c.EscalateAfter != 0 {
		t.Errorf("EscalateAfter = %d, want 0 (disabled)", c.EscalateAfter)
	}
}

func TestNormalizeEscalationEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		cfg     CommonConfig
		wantErr string // substring; "" means valid
	}{
		{"zero escalation stays disabled", CommonConfig{EscalateAfter: 0}, ""},
		{"positive escalation accepted", CommonConfig{EscalateAfter: 3}, ""},
		{"negative escalation rejected", CommonConfig{EscalateAfter: -1}, "negative EscalateAfter"},
		{"no-irrevocable alone accepted", CommonConfig{NoIrrevocable: true}, ""},
		{"no-irrevocable + escalation conflict", CommonConfig{NoIrrevocable: true, EscalateAfter: 5}, "conflicts with NoIrrevocable"},
		{"no-irrevocable + zero escalation accepted", CommonConfig{NoIrrevocable: true, EscalateAfter: 0}, ""},
		{"negative self-abort rejected", CommonConfig{SelfAbortAfter: -2}, "negative SelfAbortAfter"},
		{"granularity out of range", CommonConfig{Granularity: MaxGranularity + 1}, "unsupported granularity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Normalize()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestNormalizeIsIdempotent(t *testing.T) {
	c := CommonConfig{EscalateAfter: 4, SelfAbortAfter: 10}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	before := c
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c != before {
		t.Fatalf("second Normalize changed the config: %+v -> %+v", before, c)
	}
}

func TestStatsSnapshotFieldsCoverRecoveryCounters(t *testing.T) {
	s := StatsSnapshot{ReaperSteals: 1, Escalations: 2, IrrevocableTxns: 3, IrrevocableNs: 4}
	got := map[string]int64{}
	for _, f := range s.Fields() {
		got[f.Name] = f.Value
	}
	for name, want := range map[string]int64{
		"reaper_steals": 1, "escalations": 2, "irrevocable_txns": 3, "irrevocable_ns": 4,
	} {
		if got[name] != want {
			t.Errorf("Fields()[%q] = %d, want %d", name, got[name], want)
		}
	}
}
