package stmapi

import "repro/internal/objmodel"

// RedoWrite is one slot store in a committed transaction's redo record: the
// absolute value the commit left in the slot. Replaying a transaction's
// RedoWrites in commit order reproduces its effects exactly, which is what
// makes the write-ahead log in internal/durable a redo-only log — aborted
// transactions never reach it, so recovery never undoes anything.
type RedoWrite struct {
	Ref  objmodel.Ref
	Slot int
	Val  uint64
}

// CommitSink receives the redo record of every committed writing
// transaction. A durable runtime calls AppendRedo after the commit point
// while the commit still holds its records — so the sink observes commits
// to each object in the order they released, and the log's order agrees
// with every object's version order — and calls WaitDurable after the
// records are released, so a transaction blocks for durability without
// holding locks across an fsync.
//
// The writes slice is scratch owned by the runtime: a sink must consume it
// (typically by encoding) before returning, never retain it.
//
// AppendRedo returns a sink-defined sequence number (always non-zero) that
// WaitDurable blocks on; stamp is the commit-clock write version the
// transaction's releases were stamped with — the record's LSN.
type CommitSink interface {
	AppendRedo(txnID, stamp uint64, writes []RedoWrite) (seq uint64, err error)
	WaitDurable(seq uint64) error
}

// DurableRuntime is the optional capability interface of runtimes that can
// stream commit-time redo records into a CommitSink. All three runtimes in
// this repository implement it; drivers probe with a type assertion.
//
// Installing a sink is sampled per top-level Atomic like a tracer: with no
// sink installed the commit path pays one nil check. With a sink installed,
// every writing commit obtains a commit-clock stamp (even on runtimes
// configured with NoCommitClock — the log needs LSNs), appends its redo
// record, and does not return from Atomic until the sink reports the record
// durable. An error from the sink is returned from Atomic with the commit
// already applied in memory: the caller knows the transaction happened but
// must treat its durability as unknown.
type DurableRuntime interface {
	Runtime
	SetCommitSink(CommitSink)
}
