//go:build race

package lazystm

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation adds allocations that invalidate exact alloc-count
// assertions.
const raceEnabled = true
