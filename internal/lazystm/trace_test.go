package lazystm

// Observability tests for the lazy runtime: event sequences around the
// commit-time acquire/validate/write-back protocol, no event loss under
// parallel tracing (-race in CI), commit-validation conflict attribution,
// and the allocation-free disabled path.

import (
	"sync"
	"testing"

	"repro/internal/objmodel"
	"repro/internal/trace"
)

type traceFixture struct {
	heap *objmodel.Heap
	rt   *Runtime
	cls  *objmodel.Class
}

func newTraceFixture(t testing.TB, cfg Config) *traceFixture {
	t.Helper()
	h := objmodel.NewHeap()
	rt := New(h, cfg)
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "TCell",
		Fields: []objmodel.Field{{Name: "f"}, {Name: "g"}},
	})
	return &traceFixture{heap: h, rt: rt, cls: cls}
}

func (f *traceFixture) newCell() *objmodel.Object { return f.heap.New(f.cls) }

func TestLazyDisabledTracerAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; exact alloc count only meaningful without -race")
	}
	f := newTraceFixture(t, Config{})
	o := f.newCell()
	body := func(tx *Txn) error {
		tx.Write(o, 0, tx.Read(o, 0)+1)
		return nil
	}
	for i := 0; i < 10; i++ {
		if err := f.rt.Atomic(nil, body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := f.rt.Atomic(nil, body); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("disabled-tracer lazy transaction allocates %.1f objects, want 0", avg)
	}
}

func TestLazyTraceEventLifecycle(t *testing.T) {
	f := newTraceFixture(t, Config{})
	tr := trace.New(trace.Config{ShardCapacity: 128, Shards: 1})
	f.rt.SetTracer(tr)
	o := f.newCell()
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, tx.Read(o, 0)+1)
		_ = tx.Read(o, 0) // buffered read-back
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var kinds []trace.Kind
	for _, ev := range tr.Events() {
		kinds = append(kinds, ev.Kind)
	}
	// Lazy ordering: the lock acquire happens at commit, after all reads
	// and buffered writes.
	want := []trace.Kind{trace.EvBegin, trace.EvRead, trace.EvWrite, trace.EvRead, trace.EvLockAcquire, trace.EvCommit}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (sequence %v)", i, kinds[i], want[i], kinds)
		}
	}
	if tr.CommitLatency().Count() != 1 {
		t.Errorf("commit latency count = %d", tr.CommitLatency().Count())
	}
}

func TestLazyTraceNoEventLossParallel(t *testing.T) {
	f := newTraceFixture(t, Config{})
	const goroutines = 8
	const iters = 150
	// 6 events per committed txn (begin/read/write/acquire/commit plus
	// slack for retries); size shards for the worst case of one shard
	// taking the whole stream.
	tr := trace.New(trace.Config{ShardCapacity: goroutines * iters * 8, Shards: 8})
	f.rt.SetTracer(tr)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		o := f.newCell()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if _, dropped := tr.Recorded(); dropped != 0 {
		t.Fatalf("dropped %d events despite sufficient capacity", dropped)
	}
	var commits int
	for _, ev := range tr.Events() {
		if ev.Kind == trace.EvCommit {
			commits++
		}
	}
	if commits != goroutines*iters {
		t.Errorf("commit events = %d, want %d", commits, goroutines*iters)
	}
}

// TestLazyCommitValidationAttribution manufactures a deterministic
// commit-time validation failure and checks the abort is blamed on the
// object whose version moved.
func TestLazyCommitValidationAttribution(t *testing.T) {
	f := newTraceFixture(t, Config{})
	tr := trace.New(trace.Config{ShardCapacity: 1024})
	f.rt.SetTracer(tr)
	hot := f.newCell()
	sink := f.newCell()
	for i := 0; i < 4; i++ {
		attempt := 0
		err := f.rt.Atomic(nil, func(tx *Txn) error {
			attempt++
			v := tx.Read(hot, 0)
			tx.Write(sink, 0, v)
			if attempt == 1 {
				// Move hot's version before this transaction reaches commit
				// validation: its read set is now stale.
				done := make(chan error, 1)
				go func() {
					done <- f.rt.Atomic(nil, func(tx2 *Txn) error {
						tx2.Write(hot, 0, tx2.Read(hot, 0)+1)
						return nil
					})
				}()
				if err := <-done; err != nil {
					t.Error(err)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	top := tr.Hot().Top(3)
	if len(top) == 0 {
		t.Fatal("no hotspots recorded")
	}
	if top[0].Obj != uint64(hot.Ref()) {
		t.Fatalf("top hotspot = obj %d, want hot obj %d (top %+v)", top[0].Obj, hot.Ref(), top)
	}
	if top[0].Aborts != 4 {
		t.Errorf("hot aborts = %d, want 4", top[0].Aborts)
	}
	for _, e := range top {
		if e.Obj == uint64(sink.Ref()) && e.Aborts > 0 {
			t.Errorf("sink object wrongly blamed: %+v", e)
		}
	}
	if got := tr.Count(trace.EvAbort); got != 4 {
		t.Errorf("abort events = %d, want 4", got)
	}
}

func TestLazyStatsSnapshot(t *testing.T) {
	f := newTraceFixture(t, Config{})
	o := f.newCell()
	for i := 0; i < 5; i++ {
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := f.rt.Stats.Snapshot()
	if s.Commits != 5 || s.Starts != 5 || s.Aborts != 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.TxnReads != 5 || s.TxnWrites != 5 {
		t.Errorf("snapshot accesses = %+v", s)
	}
}
