package lazystm

import (
	"sync"
	"testing"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
)

func granFixture(t testing.TB) *fixture {
	return newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Granularity: 2}})
}

func seedSlot1(t *testing.T, f *fixture, o *objmodel.Object, v uint64) {
	t.Helper()
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 1, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// lazyGranTrial is the lazy-runtime analog of the eager span-poisoning
// trial: a transaction buffers a write to slot0 — at span granularity the
// buffer snapshots slot1 too — then a non-transactional store hits slot1
// before commit. At span granularity the commit's write-back rewrites the
// whole span from the stale snapshot, clobbering the NT store; at slot
// granularity the write-back covers only slot0 and the store survives.
// Returns slot1's final value.
func lazyGranTrial(t *testing.T, f *fixture, o *objmodel.Object) uint64 {
	t.Helper()
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		o.StoreSlot(1, 99)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return o.LoadSlot(1)
}

// TestLazySpanPoisoningAndPromotion pins the buffered-update flavor of the
// Section 2.4 granularity anomaly and its removal by promotion.
func TestLazySpanPoisoningAndPromotion(t *testing.T) {
	f := granFixture(t)

	coarse := f.heap.New(f.cls)
	seedSlot1(t, f, coarse, 7)
	if got := lazyGranTrial(t, f, coarse); got != 7 {
		t.Errorf("span granularity: slot1 = %d, want 7 (write-back must clobber the NT store)", got)
	}

	fine := f.heap.New(f.cls)
	seedSlot1(t, f, fine, 7)
	if !f.rt.PromoteObject(fine) {
		t.Fatal("PromoteObject reported no change")
	}
	if got := lazyGranTrial(t, f, fine); got != 99 {
		t.Errorf("promoted: slot1 = %d, want 99 (slot-level buffering must preserve the NT store)", got)
	}

	if !f.rt.DemoteObject(fine) {
		t.Fatal("DemoteObject reported no change")
	}
	seedSlot1(t, f, fine, 7)
	if got := lazyGranTrial(t, f, fine); got != 7 {
		t.Errorf("demoted: slot1 = %d, want 7 (span write-back again)", got)
	}

	if got := f.rt.Stats.GranPromotions.Load(); got != 1 {
		t.Errorf("promotions = %d, want 1", got)
	}
	if got := f.rt.Stats.GranDemotions.Load(); got != 1 {
		t.Errorf("demotions = %d, want 1", got)
	}
}

// TestLazyPromotionRacesActiveTxns hammers granularity transitions while
// transactions run (meaningful under -race): in-flight transactions keep
// their begin-time granularity, so the write-back of an already-buffered
// span must not be affected by a concurrent promotion.
func TestLazyPromotionRacesActiveTxns(t *testing.T) {
	f := granFixture(t)
	const nObjs = 8
	objs := make([]*objmodel.Object, nObjs)
	for i := range objs {
		objs[i] = f.heap.New(f.cls)
	}
	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(seed uint64) {
			defer workers.Done()
			r := seed
			for i := 0; i < 2000; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					r = r*6364136223846793005 + 1442695040888963407
					o := objs[r%nObjs]
					tx.Write(o, int(r>>32)&1, tx.Read(o, int(r>>16)&1)+1)
					return nil
				})
			}
		}(uint64(g + 1))
	}
	stop := make(chan struct{})
	var promoter sync.WaitGroup
	promoter.Add(1)
	go func() {
		defer promoter.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o := objs[i%nObjs]
			if i%2 == 0 {
				f.rt.PromoteObject(o)
			} else {
				f.rt.DemoteObject(o)
			}
		}
	}()
	workers.Wait()
	close(stop)
	promoter.Wait()
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(objs[0], 0, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLazyClockFastpath pins the lazy runtime's TL2 stats: uncontended
// writing commits advance the clock and validate on the fast path.
func TestLazyClockFastpath(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	const n = 50
	for i := 0; i < n; i++ {
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.rt.Stats.ClockAdvances.Load(); got != n {
		t.Errorf("clock advances = %d, want %d", got, n)
	}
	if got := f.rt.Stats.FastpathValidations.Load(); got == 0 {
		t.Error("fastpath validations = 0, want > 0")
	}
	if got := f.rt.Stats.FallbackWalks.Load(); got != 0 {
		t.Errorf("fallback walks = %d, want 0", got)
	}
}

// TestLazyValidationEnvWalk: STM_VALIDATION=walk forces read-set walks on
// the lazy runtime too.
func TestLazyValidationEnvWalk(t *testing.T) {
	t.Setenv(stmapi.ValidationEnv, "walk")
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	for i := 0; i < 10; i++ {
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.rt.Stats.FastpathValidations.Load(); got != 0 {
		t.Errorf("fastpath validations = %d, want 0 in walk mode", got)
	}
	if got := f.rt.Stats.ClockAdvances.Load(); got != 0 {
		t.Errorf("clock advances = %d, want 0 in walk mode", got)
	}
	if got := f.rt.Stats.FallbackWalks.Load(); got == 0 {
		t.Error("fallback walks = 0, want > 0")
	}
}
