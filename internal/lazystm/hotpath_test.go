package lazystm

// Hot-path tests for the lazy runtime: pooled descriptors must come back
// with an empty read set and write buffer, and descriptor-local statistics
// must flush correctly under parallel commit/abort. Run under -race in CI.

import (
	"sync"
	"testing"
)

// TestPooledDescriptorClean checks that a reused descriptor starts with an
// empty read set and write buffer even after a transaction that dirtied
// both heavily.
func TestPooledDescriptorClean(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	for i := 0; i < 50; i++ {
		err := f.rt.Atomic(nil, func(tx *Txn) error {
			if tx.reads.Len() != 0 || len(tx.buf) != 0 {
				t.Errorf("iter %d: dirty descriptor (reads %d, buffered spans %d)",
					i, tx.reads.Len(), len(tx.buf))
			}
			// Spill the read set past its inline capacity and buffer writes
			// to several spans so the next iteration exercises a real reset.
			for j := 0; j < 12; j++ {
				c := f.heap.New(f.cls)
				_ = tx.Read(c, 0)
				tx.Write(c, 1, uint64(j))
			}
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := o.LoadSlot(0); got != 50 {
		t.Errorf("cell = %d, want 50", got)
	}
}

// TestStatsFlushParallel checks commit/abort accounting with contended
// increments and deliberate user aborts across goroutines.
func TestStatsFlushParallel(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	const goroutines = 8
	const iters = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					if i%4 == 3 {
						return ErrAborted
					}
					return nil
				})
				if i%4 == 3 && err != ErrAborted {
					t.Errorf("want ErrAborted, got %v", err)
				}
			}
		}()
	}
	wg.Wait()
	const total = goroutines * iters
	const wantCommits = total * 3 / 4
	if got := f.rt.Stats.Commits.Load(); got != wantCommits {
		t.Errorf("commits = %d, want %d", got, wantCommits)
	}
	starts := f.rt.Stats.Starts.Load()
	aborts := f.rt.Stats.Aborts.Load()
	if starts != f.rt.Stats.Commits.Load()+aborts {
		t.Errorf("starts (%d) != commits + aborts (%d)", starts, f.rt.Stats.Commits.Load()+aborts)
	}
	if aborts < total/4 {
		t.Errorf("aborts = %d, want >= %d", aborts, total/4)
	}
	if got := o.LoadSlot(0); got != wantCommits {
		t.Errorf("cell = %d, want %d (only committed increments)", got, wantCommits)
	}
}
