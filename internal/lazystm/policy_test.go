package lazystm

// Contention policies under the lazy runtime: arbitration happens inside
// the commit-time acquire loop. The lazy runtime acquires records in sorted
// handle order, so it cannot deadlock on its own; these tests check the
// wiring (decisions recorded, dooms honored up to the commit point) and the
// invariants under contention per policy.

import (
	"sync"
	"testing"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/stmapi"
)

func TestPoliciesPreserveInvariantsUnderContention(t *testing.T) {
	for _, policy := range conflict.PolicyNames {
		t.Run(policy, func(t *testing.T) {
			pol, err := conflict.ByName(policy)
			if err != nil {
				t.Fatal(err)
			}
			f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Handler: pol}})
			const accounts, balance = 4, 1000
			objs := make([]*objmodel.Object, accounts)
			for i := range objs {
				objs[i] = f.heap.New(f.cls)
				objs[i].StoreSlot(0, balance)
			}
			runTransfers(t, f, objs, 4, 400)
			var sum uint64
			for _, o := range objs {
				sum += o.LoadSlot(0)
			}
			if sum != accounts*balance {
				t.Fatalf("total balance %d, want %d", sum, accounts*balance)
			}
			s := f.rt.Stats.Snapshot()
			if s.Commits == 0 {
				t.Fatalf("no commits recorded")
			}
			t.Logf("%s: starts=%d commits=%d aborts=%d self-aborts=%d dooms=%d",
				policy, s.Starts, s.Commits, s.Aborts, s.SelfAborts, s.DoomsIssued)
		})
	}
}

func TestDoomAfterCommitPointIsIgnored(t *testing.T) {
	// A doom landing after the victim's commit point must not undo it: the
	// victim has won the race and simply commits (advisory dooming is
	// honored only up to validation).
	pol, err := conflict.ByName("timestamp")
	if err != nil {
		t.Fatal(err)
	}
	var victim *Txn
	var mu sync.Mutex
	f := newFixture(t, Config{
		CommonConfig: stmapi.CommonConfig{Handler: pol},
		Hooks: Hooks{OnAfterCommitPoint: func(tx *Txn) {
			mu.Lock()
			victim = tx
			mu.Unlock()
			tx.doomed.Store(true) // simulate a doom that lost the race
		}},
	})
	o := f.heap.New(f.cls)
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 7)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if victim == nil {
		t.Fatalf("commit hook never ran")
	}
	if got := o.LoadSlot(0); got != 7 {
		t.Fatalf("slot 0 = %d, want 7 (post-commit-point doom must be ignored)", got)
	}
	if s := f.rt.Stats.Snapshot(); s.Commits != 1 {
		t.Fatalf("commits = %d, want 1", s.Commits)
	}
}
