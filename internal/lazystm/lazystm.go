// Package lazystm implements a lazy-versioning STM in the style the paper
// contrasts against (Sections 2.3 and 3.3): transactions buffer their
// writes privately and publish them to shared memory only after commit.
// Records are acquired at commit time, the read set is validated, the
// transaction logically commits, and the buffered updates are then copied
// back "one at a time in no particular order" before the records are
// released.
//
// The window between the commit point and the completion of write-back is
// precisely what produces the memory-inconsistency (MI) anomalies of
// Figure 4 and the privatization problem of Figure 1 under weak atomicity;
// the ordering read barrier of Section 3.3 (package strong) closes it.
// Optional Hooks let the litmus tests hold a transaction inside that window
// deterministically.
//
// The write buffer operates at a configurable slot granularity: with
// Granularity 2 a buffered entry spans two adjacent slots, snapshotting the
// neighbour's value at buffer-creation time — reproducing the granular
// lost update (GLU) and granular inconsistent read (GIR) anomalies of
// Section 2.4.
//
// Like the eager runtime, the hot path is contention- and allocation-free
// in steady state: statistics are descriptor-local until commit/abort,
// descriptors (and their write-buffer maps and commit scratch) are pooled,
// and read sets use the inline-array fast path of package objset.
package lazystm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/objset"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/txrec"
)

// MaxGranularity is the largest supported buffering granularity in slots.
const MaxGranularity = 2

// Hooks are optional test instrumentation points inside the commit window.
type Hooks struct {
	// OnAfterCommitPoint runs after the transaction has logically committed
	// (status set, records held) but before any buffered value reaches
	// shared memory.
	OnAfterCommitPoint func(*Txn)

	// OnAfterWriteback runs after the k-th individual slot write-back
	// (0-based), still before the records are released.
	OnAfterWriteback func(tx *Txn, k int)
}

// Config parameterizes a Runtime.
type Config struct {
	// Granularity is the slot span of one write-buffer entry: 1 or 2.
	Granularity int

	// Quiescence enables the Section 3.4 ordering guarantee for lazy
	// versioning: a committing transaction waits until all previously
	// serialized transactions have finished applying their updates before
	// completing itself.
	Quiescence bool

	// Handler receives conflict notifications; nil means a shared Backoff.
	Handler conflict.Handler

	// SelfAbortAfter bounds conflict-handler invocations per access before
	// self-abort; zero means 64.
	SelfAbortAfter int

	// Hooks instrument the commit window (tests only).
	Hooks Hooks
}

// Stats aggregates runtime counters. Counters are sharded (package stats)
// and fed from descriptor-local deltas flushed at commit/abort.
type Stats struct {
	Starts    stats.Counter
	Commits   stats.Counter
	Aborts    stats.Counter
	TxnReads  stats.Counter
	TxnWrites stats.Counter
}

// StatsSnapshot is a point-in-time copy of every Stats counter as plain
// values, read in one call.
type StatsSnapshot struct {
	Starts    int64 `json:"starts"`
	Commits   int64 `json:"commits"`
	Aborts    int64 `json:"aborts"`
	TxnReads  int64 `json:"txn_reads"`
	TxnWrites int64 `json:"txn_writes"`
}

// Snapshot sums every counter's shards (not an atomic cut across counters).
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:    s.Starts.Load(),
		Commits:   s.Commits.Load(),
		Aborts:    s.Aborts.Load(),
		TxnReads:  s.TxnReads.Load(),
		TxnWrites: s.TxnWrites.Load(),
	}
}

// Runtime is a lazy-versioning STM instance bound to a heap.
type Runtime struct {
	Heap  *objmodel.Heap
	Stats Stats

	cfg     Config
	handler conflict.Handler
	nextID  atomic.Uint64
	pool    sync.Pool // idle *Txn descriptors
	tracer  atomic.Pointer[trace.Tracer]

	// Commit tickets serialize write-back completion in quiescence mode.
	tickets atomic.Uint64
	done    atomic.Uint64 // highest ticket whose write-back has completed, contiguously
	doneMu  sync.Mutex
	doneCv  *sync.Cond
}

// New creates a lazy-versioning Runtime over heap.
func New(heap *objmodel.Heap, cfg Config) *Runtime {
	if cfg.Granularity == 0 {
		cfg.Granularity = 1
	}
	if cfg.Granularity < 1 || cfg.Granularity > MaxGranularity {
		panic(fmt.Sprintf("lazystm: unsupported granularity %d", cfg.Granularity))
	}
	if cfg.SelfAbortAfter == 0 {
		cfg.SelfAbortAfter = 64
	}
	h := cfg.Handler
	if h == nil {
		h = &conflict.Backoff{}
	}
	rt := &Runtime{Heap: heap, cfg: cfg, handler: h}
	rt.doneCv = sync.NewCond(&rt.doneMu)
	return rt
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// SetTracer installs (or, with nil, removes) the event tracer. Descriptors
// sample it when a top-level Atomic begins; with no tracer installed every
// emission point is one nil check.
func (rt *Runtime) SetTracer(t *trace.Tracer) { rt.tracer.Store(t) }

// Tracer returns the installed tracer, or nil.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer.Load() }

// ErrAborted aborts the transaction without retry when returned from the
// body.
var ErrAborted = errors.New("lazystm: transaction aborted by user")

type signal uint8

const (
	sigRestart signal = iota + 1
	sigRetry
)

type txSignal struct {
	s  signal
	tx *Txn
}

type spanKey struct {
	obj  *objmodel.Object
	base int
}

type spanBuf struct {
	vals [MaxGranularity]uint64
	n    int
}

// Txn is a lazy-versioning transaction descriptor. Pooled across Atomic
// calls; user code must not retain one past the body.
type Txn struct {
	rt     *Runtime
	id     uint64
	status atomic.Uint32 // stm.Status values: 0 active, 1 committed, 2 aborted

	reads objset.VerSet
	buf   map[spanKey]spanBuf // buffered spans, by value: no per-span allocation

	// Commit scratch, reused across attempts and pooled incarnations.
	objs  []*objmodel.Object
	owned objset.VerSet

	// Statistics deltas flushed at commit/abort.
	nStarts int64
	nReads  int64
	nWrites int64

	// Tracing state (see the eager runtime): tr sampled per Atomic, nil
	// disables every emission point; blameObj attributes pending aborts.
	tr       *trace.Tracer
	blameObj uint64
	beginAt  time.Time
	abortAt  time.Time
}

// ID returns the descriptor's owner ID.
func (tx *Txn) ID() uint64 { return tx.id }

func (rt *Runtime) getTxn() *Txn {
	tx, _ := rt.pool.Get().(*Txn)
	if tx == nil {
		tx = &Txn{rt: rt, buf: make(map[spanKey]spanBuf)}
	}
	tx.id = rt.nextID.Add(1)
	tx.tr = rt.tracer.Load()
	tx.blameObj = 0
	tx.abortAt = time.Time{}
	return tx
}

func (rt *Runtime) putTxn(tx *Txn) {
	tx.reads.Reset()
	tx.owned.Reset()
	clear(tx.buf)
	clear(tx.objs)
	tx.objs = tx.objs[:0]
	rt.pool.Put(tx)
}

func (tx *Txn) begin() {
	tx.status.Store(0)
	tx.reads.Reset()
	clear(tx.buf)
	tx.nStarts++
	if tr := tx.tr; tr != nil {
		tx.beginAt = time.Now()
		if !tx.abortAt.IsZero() {
			tr.ObserveAbortGap(tx.beginAt.Sub(tx.abortAt))
			tx.abortAt = time.Time{}
		}
		tr.Record(trace.EvBegin, tx.id, 0, 0, 0)
	}
}

// flushStats drains descriptor-local counters into the sharded aggregates.
func (tx *Txn) flushStats() {
	s := &tx.rt.Stats
	hint := int(tx.id)
	if tx.nStarts != 0 {
		s.Starts.AddShard(hint, tx.nStarts)
		tx.nStarts = 0
	}
	if tx.nReads != 0 {
		s.TxnReads.AddShard(hint, tx.nReads)
		tx.nReads = 0
	}
	if tx.nWrites != 0 {
		s.TxnWrites.AddShard(hint, tx.nWrites)
		tx.nWrites = 0
	}
}

// Restart aborts and re-executes the transaction.
func (tx *Txn) Restart() { panic(txSignal{sigRestart, tx}) }

// Retry aborts and blocks until the read set changes, then re-executes.
func (tx *Txn) Retry() {
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvRetry, tx.id, 0, 0, 0)
	}
	panic(txSignal{sigRetry, tx})
}

func (tx *Txn) conflictWait(o *objmodel.Object, kind conflict.Kind, attempt int, rec txrec.Word) {
	if tr := tx.tr; tr != nil {
		ref := uint64(o.Ref())
		tr.Record(trace.EvConflict, tx.id, ref, 0, 0)
		tr.Hot().BumpConflict(ref)
	}
	if attempt >= tx.rt.cfg.SelfAbortAfter {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	tx.rt.handler.HandleConflict(conflict.Info{Kind: kind, Attempt: attempt, Record: rec})
}

func (tx *Txn) span(slot int) (base int) {
	return slot &^ (tx.rt.cfg.Granularity - 1)
}

// Read returns the transaction's view of o's slot: the private buffer if
// the containing span has been buffered (even when only the *adjacent*
// slot was written — the granular inconsistent read of Section 2.4),
// otherwise shared memory under optimistic version validation.
func (tx *Txn) Read(o *objmodel.Object, slot int) uint64 {
	tx.nReads++
	base := tx.span(slot)
	if len(tx.buf) > 0 {
		if sb, ok := tx.buf[spanKey{o, base}]; ok {
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, 0)
			}
			return sb.vals[slot-base]
		}
	}
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			return o.LoadSlot(slot)
		case txrec.IsExclusive(w), txrec.IsExclusiveAnon(w):
			// Lazy versioning never reads another transaction's data while
			// its record is held (there is no dirty data in memory, but a
			// committer may be writing back).
			tx.conflictWait(o, conflict.TxnRead, attempt, w)
		default:
			v := o.LoadSlot(slot)
			if o.Rec.Load() != w {
				continue
			}
			ver := txrec.Version(w)
			if prev, ok := tx.reads.Get(o); ok {
				if prev != ver {
					tx.blameObj = uint64(o.Ref())
					tx.Restart()
				}
			} else {
				tx.reads.Put(o, ver)
			}
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, ver)
			}
			return v
		}
	}
}

// ReadRef is Read for reference slots.
func (tx *Txn) ReadRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(tx.Read(o, slot))
}

// Write buffers a store to o's slot. On first touch of a span the current
// contents of every slot in the span are snapshotted into the buffer; the
// snapshot of the *adjacent* slot is what later manufactures the granular
// lost update when Granularity > 1.
func (tx *Txn) Write(o *objmodel.Object, slot int, v uint64) {
	tx.nWrites++
	base := tx.span(slot)
	key := spanKey{o, base}
	sb, ok := tx.buf[key]
	if !ok {
		g := tx.rt.cfg.Granularity
		for i := 0; i < g && base+i < len(o.Slots); i++ {
			sb.vals[i] = o.LoadSlot(base + i)
			sb.n++
		}
	}
	sb.vals[slot-base] = v
	tx.buf[key] = sb
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvWrite, tx.id, uint64(o.Ref()), slot, 0)
	}
}

// WriteRef is Write for reference slots.
func (tx *Txn) WriteRef(o *objmodel.Object, slot int, r objmodel.Ref) {
	tx.Write(o, slot, uint64(r))
}

// Validate re-checks the read set.
func (tx *Txn) Validate() bool {
	ok, _ := tx.validateExcluding(nil)
	return ok
}

// validateExcluding re-checks the read set; on failure it also reports the
// handle of the first inconsistent object, for conflict attribution.
func (tx *Txn) validateExcluding(owned *objset.VerSet) (bool, uint64) {
	ok := true
	var bad uint64
	tx.reads.Range(func(o *objmodel.Object, ver uint64) bool {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
		case txrec.IsShared(w):
			if txrec.Version(w) != ver {
				ok = false
			}
		case txrec.IsExclusive(w) && owned != nil:
			if sv, has := owned.Get(o); !has || sv != ver {
				ok = false
			}
		default:
			ok = false
		}
		if !ok {
			bad = uint64(o.Ref())
		}
		return ok
	})
	return ok, bad
}

// release restores the records of every object acquired by this commit
// attempt; with bump the version is incremented (publishing new state),
// without it the original shared word is restored.
func (tx *Txn) release(bump bool) {
	for _, o := range tx.objs {
		sv, ok := tx.owned.Get(o)
		if !ok {
			continue
		}
		if bump {
			o.Rec.ReleaseOwned(sv)
		} else {
			o.Rec.Store(txrec.MakeShared(sv))
		}
	}
}

// commit runs the lazy commit protocol: acquire the write set's records in
// handle order, validate the read set, pass the commit point, write back
// the buffered spans in no particular order, release the records, and (in
// quiescence mode) wait for all previously serialized transactions'
// write-backs to complete.
func (tx *Txn) commit() bool {
	// Collect distinct objects in the write set, sorted by handle so
	// concurrent committers acquire in the same order (no deadlock). The
	// scratch slice and owned set live on the descriptor, so a steady-state
	// commit allocates nothing.
	tx.objs = tx.objs[:0]
	for key := range tx.buf {
		dup := false
		for _, o := range tx.objs {
			if o == key.obj {
				dup = true
				break
			}
		}
		if !dup {
			tx.objs = append(tx.objs, key.obj)
		}
	}
	sortByRef(tx.objs)
	tx.owned.Reset()

	for _, o := range tx.objs {
		if txrec.IsPrivate(o.Rec.Load()) {
			continue // thread-local: written back without synchronization
		}
		for attempt := 0; ; attempt++ {
			w := o.Rec.Load()
			if txrec.IsShared(w) {
				if o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
					tx.owned.Put(o, txrec.Version(w))
					if tr := tx.tr; tr != nil {
						tr.Record(trace.EvLockAcquire, tx.id, uint64(o.Ref()), 0, txrec.Version(w))
					}
					break
				}
				continue
			}
			if tr := tx.tr; tr != nil {
				ref := uint64(o.Ref())
				tr.Record(trace.EvConflict, tx.id, ref, 0, 0)
				tr.Hot().BumpConflict(ref)
			}
			if attempt >= tx.rt.cfg.SelfAbortAfter {
				tx.blameObj = uint64(o.Ref())
				tx.release(false)
				return false
			}
			tx.rt.handler.HandleConflict(conflict.Info{Kind: conflict.TxnWrite, Attempt: attempt, Record: w})
		}
	}

	if ok, bad := tx.validateExcluding(&tx.owned); !ok {
		tx.blameObj = bad
		tx.release(false) // nothing reached memory; restore original versions
		return false
	}

	// ----- commit point: the transaction is now serialized. -----
	tx.status.Store(1)
	ticket := tx.rt.tickets.Add(1)
	if h := tx.rt.cfg.Hooks.OnAfterCommitPoint; h != nil {
		h(tx)
	}

	// Write back buffered spans. Go map iteration order is randomized,
	// faithfully modeling "copies buffered values to memory one at a time
	// in no particular order".
	k := 0
	for key, sb := range tx.buf {
		for i := 0; i < sb.n; i++ {
			key.obj.StoreSlot(key.base+i, sb.vals[i])
			if h := tx.rt.cfg.Hooks.OnAfterWriteback; h != nil {
				h(tx, k)
			}
			k++
		}
	}

	tx.release(true) // version bump publishes the new state to optimistic readers

	if tx.rt.cfg.Quiescence {
		if tr := tx.tr; tr != nil {
			start := time.Now()
			tx.rt.completeInOrder(ticket)
			tr.ObserveQuiesce(time.Since(start))
		} else {
			tx.rt.completeInOrder(ticket)
		}
	} else {
		tx.rt.markDone(ticket)
	}
	tx.rt.Stats.Commits.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvCommit, tx.id, 0, 0, 0)
		tr.ObserveCommit(time.Since(tx.beginAt))
	}
	tx.flushStats()
	return true
}

// completeInOrder blocks until every transaction with an earlier commit
// ticket has finished its write-back, then marks this ticket done. This is
// the lazy-versioning quiescence of Section 3.4: when Atomic returns, all
// previously serialized transactions' updates are visible.
func (rt *Runtime) completeInOrder(ticket uint64) {
	rt.doneMu.Lock()
	for rt.done.Load() != ticket-1 {
		rt.doneCv.Wait()
	}
	rt.done.Store(ticket)
	rt.doneCv.Broadcast()
	rt.doneMu.Unlock()
}

// markDone advances the completion watermark opportunistically when
// quiescence is off (tickets may complete out of order; the watermark only
// tracks the contiguous prefix and is not relied upon).
func (rt *Runtime) markDone(ticket uint64) {
	rt.doneMu.Lock()
	if rt.done.Load() == ticket-1 {
		rt.done.Store(ticket)
		rt.doneCv.Broadcast()
	}
	rt.doneMu.Unlock()
}

func (tx *Txn) abort() {
	tx.status.Store(2)
	tx.rt.Stats.Aborts.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvAbort, tx.id, tx.blameObj, 0, 0)
		if tx.blameObj != 0 {
			tr.Hot().BumpAbort(tx.blameObj)
		}
		tx.abortAt = time.Now()
	}
	tx.blameObj = 0
	tx.flushStats()
}

// waitForReadSetChange blocks until something in the aborted transaction's
// read set changes. The read set is waited on in place (it survives abort;
// begin resets it on re-execution), avoiding the per-retry snapshot copy.
func (rt *Runtime) waitForReadSetChange(rs *objset.VerSet) {
	if rs.Len() == 0 {
		return
	}
	for a := 0; ; a++ {
		changed := false
		rs.Range(func(o *objmodel.Object, ver uint64) bool {
			w := o.Rec.Load()
			if txrec.IsPrivate(w) {
				return true
			}
			if !txrec.IsShared(w) || txrec.Version(w) != ver {
				changed = true
				return false
			}
			return true
		})
		if changed {
			return
		}
		conflict.WaitAttempt(a, 0)
	}
}

// Atomic executes body as a lazy-versioning transaction, retrying until it
// commits. Closed nesting is flattened: a nested Atomic call (parent
// non-nil) joins the parent transaction, and a body error rolls back
// nothing (lazy buffers make partial rollback unnecessary for the anomaly
// studies this variant exists for; the eager runtime implements full
// nesting).
func (rt *Runtime) Atomic(parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return body(parent)
	}
	tx := rt.getTxn()
	defer rt.putTxn(tx)
	for attempt := 0; ; attempt++ {
		tx.begin()
		err, sig := rt.run(tx, body)
		switch sig {
		case 0:
			if err != nil {
				tx.abort()
				return err
			}
			if tx.commit() {
				return nil
			}
			tx.abort()
		case sigRestart:
			tx.abort()
		case sigRetry:
			tx.abort()
			rt.waitForReadSetChange(&tx.reads)
		}
		conflict.WaitAttempt(attempt, 0)
	}
}

func (rt *Runtime) run(tx *Txn, body func(*Txn) error) (err error, sig signal) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if s, ok := r.(txSignal); ok && s.tx == tx {
			sig = s.s
			return
		}
		if !tx.Validate() {
			sig = sigRestart
			return
		}
		tx.abort() // discard buffers before propagating the fault
		panic(r)
	}()
	return body(tx), 0
}

// sortByRef sorts objects by their heap handle (insertion sort; write sets
// are small).
func sortByRef(objs []*objmodel.Object) {
	for i := 1; i < len(objs); i++ {
		o := objs[i]
		j := i - 1
		for j >= 0 && objs[j].Ref() > o.Ref() {
			objs[j+1] = objs[j]
			j--
		}
		objs[j+1] = o
	}
}
