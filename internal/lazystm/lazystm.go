// Package lazystm implements a lazy-versioning STM in the style the paper
// contrasts against (Sections 2.3 and 3.3): transactions buffer their
// writes privately and publish them to shared memory only after commit.
// Records are acquired at commit time, the read set is validated, the
// transaction logically commits, and the buffered updates are then copied
// back "one at a time in no particular order" before the records are
// released.
//
// The window between the commit point and the completion of write-back is
// precisely what produces the memory-inconsistency (MI) anomalies of
// Figure 4 and the privatization problem of Figure 1 under weak atomicity;
// the ordering read barrier of Section 3.3 (package strong) closes it.
// Optional Hooks let the litmus tests hold a transaction inside that window
// deterministically.
//
// The write buffer operates at a configurable slot granularity: with
// Granularity 2 a buffered entry spans two adjacent slots, snapshotting the
// neighbour's value at buffer-creation time — reproducing the granular
// lost update (GLU) and granular inconsistent read (GIR) anomalies of
// Section 2.4.
//
// Like the eager runtime, the hot path is contention- and allocation-free
// in steady state: statistics are descriptor-local until commit/abort,
// descriptors (and their write-buffer maps and commit scratch) are pooled,
// and read sets use the inline-array fast path of package objset.
package lazystm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/objset"
	"repro/internal/stats"
	"repro/internal/stmapi"
	"repro/internal/trace"
	"repro/internal/txrec"
)

// MaxGranularity is the largest supported buffering granularity in slots.
const MaxGranularity = stmapi.MaxGranularity

// Status is the lifecycle state of a transaction attempt (shared with the
// eager runtime through stmapi).
type Status = stmapi.Status

// Transaction statuses.
const (
	Active    = stmapi.Active
	Committed = stmapi.Committed
	Aborted   = stmapi.Aborted
)

// Hooks are optional test instrumentation points inside the commit window.
type Hooks struct {
	// OnAfterCommitPoint runs after the transaction has logically committed
	// (status set, records held) but before any buffered value reaches
	// shared memory.
	OnAfterCommitPoint func(*Txn)

	// OnAfterWriteback runs after the k-th individual slot write-back
	// (0-based), still before the records are released.
	OnAfterWriteback func(tx *Txn, k int)
}

// Config parameterizes a Runtime. The cross-runtime knobs (Granularity,
// Quiescence, Handler, SelfAbortAfter) live in the embedded
// stmapi.CommonConfig; Hooks are lazy-specific.
type Config struct {
	stmapi.CommonConfig

	// Hooks instrument the commit window (tests only).
	Hooks Hooks
}

// Stats aggregates runtime counters. Counters are sharded (package stats)
// and fed from descriptor-local deltas flushed at commit/abort.
type Stats struct {
	Starts      stats.Counter
	Commits     stats.Counter
	Aborts      stats.Counter
	UserRetries stats.Counter
	TxnReads    stats.Counter
	TxnWrites   stats.Counter
	SelfAborts  stats.Counter // contention-policy SelfAbort decisions taken
	DoomsIssued stats.Counter // contention-policy AbortOther decisions that marked a victim

	// Robustness counters (recovery and irrevocability).
	ReaperSteals    stats.Counter // dead transactions reclaimed (reaper or inline waiter steal)
	Escalations     stats.Counter // atomic blocks escalated to irrevocable after K aborts
	IrrevocableTxns stats.Counter // transactions that finished while irrevocable
	IrrevocableNs   stats.Counter // cumulative irrevocable-token hold time, nanoseconds

	// Commit-clock validation counters (see the eager runtime).
	ClockAdvances       stats.Counter
	FastpathValidations stats.Counter
	FallbackWalks       stats.Counter

	// Adaptive-granularity counters.
	GranPromotions stats.Counter
	GranDemotions  stats.Counter
}

// StatsSnapshot is a point-in-time copy of every Stats counter, shared with
// the eager runtime through stmapi.
type StatsSnapshot = stmapi.StatsSnapshot

// Snapshot sums every counter's shards (not an atomic cut across counters).
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:      s.Starts.Load(),
		Commits:     s.Commits.Load(),
		Aborts:      s.Aborts.Load(),
		UserRetries: s.UserRetries.Load(),
		TxnReads:    s.TxnReads.Load(),
		TxnWrites:   s.TxnWrites.Load(),
		SelfAborts:  s.SelfAborts.Load(),
		DoomsIssued: s.DoomsIssued.Load(),

		ReaperSteals:    s.ReaperSteals.Load(),
		Escalations:     s.Escalations.Load(),
		IrrevocableTxns: s.IrrevocableTxns.Load(),
		IrrevocableNs:   s.IrrevocableNs.Load(),

		ClockAdvances:       s.ClockAdvances.Load(),
		FastpathValidations: s.FastpathValidations.Load(),
		FallbackWalks:       s.FallbackWalks.Load(),
		GranPromotions:      s.GranPromotions.Load(),
		GranDemotions:       s.GranDemotions.Load(),
	}
}

// regSlots is the capacity of the fixed active-transaction slot array
// (mirrors the eager runtime's registry; kept concrete per runtime so the
// hot path stays monomorphic).
const regSlots = 256

type regSlot struct {
	p atomic.Pointer[Txn]
	_ [56]byte
}

// registry tracks in-flight descriptors: CAS-claimed id-hashed slots with a
// sync.Map overflow. It serves ActiveTransactions and the contention
// policies' owner-by-ID lookups.
type registry struct {
	slots    [regSlots]regSlot
	overflow sync.Map // id -> *Txn
}

func (r *registry) add(tx *Txn) {
	h := int(tx.id)
	for i := 0; i < regSlots; i++ {
		s := &r.slots[(h+i)&(regSlots-1)]
		if s.p.Load() == nil && s.p.CompareAndSwap(nil, tx) {
			tx.slot = (h + i) & (regSlots - 1)
			return
		}
	}
	tx.slot = -1
	r.overflow.Store(tx.id, tx)
}

func (r *registry) remove(tx *Txn) {
	if tx.slot >= 0 {
		r.slots[tx.slot].p.Store(nil)
		return
	}
	r.overflow.Delete(tx.id)
}

func (r *registry) forEach(f func(*Txn) bool) {
	for i := range r.slots {
		if tx := r.slots[i].p.Load(); tx != nil {
			if !f(tx) {
				return
			}
		}
	}
	r.overflow.Range(func(_, v any) bool { return f(v.(*Txn)) })
}

// findStamp returns the live descriptor whose current incarnation ID is id,
// or nil (see the eager runtime: the stamp check filters descriptor reuse).
func (r *registry) findStamp(id uint64) *Txn {
	var found *Txn
	r.forEach(func(tx *Txn) bool {
		if tx.stamp.Load() == id {
			found = tx
			return false
		}
		return true
	})
	return found
}

// Runtime is a lazy-versioning STM instance bound to a heap.
type Runtime struct {
	Heap  *objmodel.Heap
	Stats Stats

	cfg      Config
	handler  conflict.Handler
	policy   conflict.Policy
	nextID   atomic.Uint64
	reg      registry
	pool     sync.Pool // idle *Txn descriptors
	tracer   atomic.Pointer[trace.Tracer]
	injector atomic.Pointer[faultinject.Injector]
	sink     atomic.Pointer[sinkBox]

	// Commit-clock validation state (see the eager runtime).
	clock    *objmodel.CommitClock
	clockOn  bool
	staleObs conflict.StaleObserver

	// Adaptive-granularity state: immutable promotion table, swapped
	// copy-on-write under granMu, sampled once per attempt at begin.
	granTab atomic.Pointer[granTable]
	granMu  sync.Mutex

	// Commit tickets order write-back completion for quiescence mode. done
	// is the contiguous completion watermark; tickets completed out of order
	// (including by cancelled waiters) park in pending until the watermark
	// reaches them, so an abandoned wait can never stall the chain.
	tickets atomic.Uint64
	done    atomic.Uint64
	pending map[uint64]struct{}
	doneMu  sync.Mutex
	doneCv  *sync.Cond

	// irrevToken is the runtime's single irrevocable-transaction token: the
	// owner ID of the current irrevocable transaction, 0 when free.
	irrevToken atomic.Uint64
}

// New creates a lazy-versioning Runtime over heap. Invalid configurations
// are rejected with a panic, matching the eager runtime.
func New(heap *objmodel.Heap, cfg Config) *Runtime {
	if err := cfg.Normalize(); err != nil {
		panic("lazystm: " + err.Error())
	}
	h := cfg.Handler
	if h == nil {
		h = &conflict.Backoff{}
	}
	rt := &Runtime{Heap: heap, cfg: cfg, handler: h, policy: conflict.AsPolicy(h)}
	rt.pending = make(map[uint64]struct{})
	rt.doneCv = sync.NewCond(&rt.doneMu)
	rt.clock = heap.Clock()
	rt.clockOn = !cfg.NoCommitClock
	rt.staleObs, _ = h.(conflict.StaleObserver)
	// Hot manifest sites pre-seed slot-level granularity, as in the eager
	// runtime; fires only for manifest-matched allocations.
	heap.AddAllocObserver(func(o *objmodel.Object, site *objmodel.ManifestSite) {
		if site.Hot && site.Granularity == "slot" {
			rt.PromoteObject(o)
		}
	})
	return rt
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// SetTracer installs (or, with nil, removes) the event tracer. Descriptors
// sample it when a top-level Atomic begins; with no tracer installed every
// emission point is one nil check.
func (rt *Runtime) SetTracer(t *trace.Tracer) { rt.tracer.Store(t) }

// Tracer returns the installed tracer, or nil.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer.Load() }

// SetInjector installs (or, with nil, removes) a fault injector, sampled
// once per top-level Atomic like the tracer.
func (rt *Runtime) SetInjector(in *faultinject.Injector) { rt.injector.Store(in) }

// sinkBox wraps a CommitSink so it can live in an atomic.Pointer (which
// needs a concrete element type) regardless of the sink's dynamic type.
type sinkBox struct{ s stmapi.CommitSink }

// SetCommitSink installs (or, with nil, removes) the durable commit sink
// (stmapi.DurableRuntime). Sampled once per top-level Atomic like the
// tracer; transactions in flight keep their previous setting.
func (rt *Runtime) SetCommitSink(s stmapi.CommitSink) {
	if s == nil {
		rt.sink.Store(nil)
		return
	}
	rt.sink.Store(&sinkBox{s: s})
}

// ErrAborted aborts the transaction without retry when returned from the
// body.
var ErrAborted = errors.New("lazystm: transaction aborted by user")

type signal uint8

const (
	sigRestart signal = iota + 1
	sigRetry
	sigCancel // context cancelled: abort and return ctx.Err()
)

type txSignal struct {
	s  signal
	tx *Txn
}

type spanKey struct {
	obj  *objmodel.Object
	base int
}

type spanBuf struct {
	vals [MaxGranularity]uint64
	n    int
}

// Txn is a lazy-versioning transaction descriptor. Pooled across Atomic
// calls; user code must not retain one past the body.
type Txn struct {
	rt      *Runtime
	id      uint64
	slot    int           // registry slot index, -1 when in overflow
	status  atomic.Uint32 // Status values
	attempt int

	reads objset.VerSet
	buf   map[spanKey]spanBuf // buffered spans, by value: no per-span allocation

	// Commit scratch, reused across attempts and pooled incarnations.
	objs  []*objmodel.Object
	owned objset.VerSet

	// Commit-clock snapshot (rv) and write version (wv): rv is the clock
	// value this attempt's reads are consistent with; wv is the stamp for
	// committed releases, set after validation and before the commit point
	// so that every release path — including the crash branches and the
	// reaper completing an orphan — stamps the same version.
	rv uint64
	wv uint64

	// gran is the adaptive-granularity promotion table sampled at begin;
	// nil when the configured granularity is 1 or nothing is promoted.
	gran *granTable

	// Arbitration state (see the eager runtime): stamp is the cross-thread
	// readable ID, doomed the advisory abort-other flag, karma the invested
	// work for priority policies.
	stamp  atomic.Uint64
	doomed atomic.Bool
	karma  atomic.Int64

	// Recovery state (see the eager runtime): hb is the reaper's epoch
	// heartbeat, dead the death certificate whose release-store publishes the
	// descriptor's final state (buffer, owned set, ticket) to reclaimers,
	// reaping the single-reclaimer election. ticket is the commit ticket,
	// kept on the descriptor so a reaper can complete an orphan's write-back
	// ordering slot.
	hb      atomic.Uint64
	dead    atomic.Bool
	reaping atomic.Bool
	ticket  uint64

	// Irrevocability state: irrevocable is the owner-goroutine-local flag,
	// irrevStamp its cross-thread mirror, irrevAt the token acquire time.
	// While irrevocable, reads acquire records pessimistically; tx.objs and
	// tx.owned then track holdings from the body onward, not just the commit.
	irrevocable bool
	irrevStamp  atomic.Bool
	irrevAt     time.Time

	// ctx is the cancellation context installed by AtomicCtx; nil for plain
	// Atomic.
	ctx context.Context

	// fi is the fault injector sampled at getTxn.
	fi *faultinject.Injector

	// sink is the commit sink sampled at getTxn (nil-check hook like tr);
	// redo is its scratch record, reused across commits.
	sink stmapi.CommitSink
	redo []stmapi.RedoWrite

	// Statistics deltas flushed at commit/abort.
	nStarts     int64
	nReads      int64
	nWrites     int64
	nRetries    int64
	nSelfAborts int64
	nDooms      int64
	nClockAdv   int64
	nFastpath   int64
	nWalks      int64

	// Tracing state (see the eager runtime): tr sampled per Atomic, nil
	// disables every emission point; blameObj attributes pending aborts.
	tr       *trace.Tracer
	blameObj uint64
	beginAt  time.Time
	abortAt  time.Time
}

// ID returns the descriptor's owner ID.
func (tx *Txn) ID() uint64 { return tx.id }

// Status returns the descriptor's current status.
func (tx *Txn) Status() Status { return Status(tx.status.Load()) }

// Attempt returns the 0-based retry attempt of the current top-level
// execution.
func (tx *Txn) Attempt() int { return tx.attempt }

func (rt *Runtime) getTxn() *Txn {
	tx, _ := rt.pool.Get().(*Txn)
	if tx == nil {
		tx = &Txn{rt: rt, buf: make(map[spanKey]spanBuf)}
	}
	tx.id = rt.nextID.Add(1)
	tx.tr = rt.tracer.Load()
	tx.fi = rt.injector.Load()
	tx.sink = nil
	if b := rt.sink.Load(); b != nil {
		tx.sink = b.s
	}
	tx.blameObj = 0
	tx.abortAt = time.Time{}
	tx.doomed.Store(false)
	tx.karma.Store(0)
	tx.dead.Store(false)
	tx.reaping.Store(false)
	tx.irrevocable = false
	tx.irrevStamp.Store(false)
	tx.stamp.Store(tx.id) // publish before the registry makes tx reachable
	rt.reg.add(tx)
	return tx
}

func (rt *Runtime) putTxn(tx *Txn) {
	rt.reg.remove(tx)
	tx.reads.Reset()
	tx.owned.Reset()
	clear(tx.buf)
	clear(tx.objs)
	tx.objs = tx.objs[:0]
	tx.ctx = nil
	tx.fi = nil
	tx.sink = nil
	tx.redo = tx.redo[:0]
	tx.gran = nil
	rt.pool.Put(tx)
}

func (tx *Txn) begin() {
	tx.status.Store(uint32(Active))
	tx.doomed.Store(false)
	tx.hb.Add(1) // heartbeat: the reaper sees a fresh epoch
	tx.ticket = 0
	tx.reads.Reset()
	clear(tx.buf)
	tx.nStarts++
	tx.wv = 0
	if tx.rt.clockOn {
		tx.rv = tx.rt.clock.Load()
	}
	tx.gran = nil
	if tx.rt.cfg.Granularity > 1 {
		tx.gran = tx.rt.granTab.Load()
	}
	if tr := tx.tr; tr != nil {
		tx.beginAt = time.Now()
		if !tx.abortAt.IsZero() {
			tr.ObserveAbortGap(tx.beginAt.Sub(tx.abortAt))
			tx.abortAt = time.Time{}
		}
		tr.Record(trace.EvBegin, tx.id, 0, 0, 0)
	}
}

// flushStats drains descriptor-local counters into the sharded aggregates.
func (tx *Txn) flushStats() {
	s := &tx.rt.Stats
	hint := int(tx.id)
	if tx.nStarts != 0 {
		s.Starts.AddShard(hint, tx.nStarts)
		tx.nStarts = 0
	}
	if tx.nReads != 0 {
		s.TxnReads.AddShard(hint, tx.nReads)
		tx.nReads = 0
	}
	if tx.nWrites != 0 {
		s.TxnWrites.AddShard(hint, tx.nWrites)
		tx.nWrites = 0
	}
	if tx.nRetries != 0 {
		s.UserRetries.AddShard(hint, tx.nRetries)
		tx.nRetries = 0
	}
	if tx.nSelfAborts != 0 {
		s.SelfAborts.AddShard(hint, tx.nSelfAborts)
		tx.nSelfAborts = 0
	}
	if tx.nDooms != 0 {
		s.DoomsIssued.AddShard(hint, tx.nDooms)
		tx.nDooms = 0
	}
	if tx.nClockAdv != 0 {
		s.ClockAdvances.AddShard(hint, tx.nClockAdv)
		tx.nClockAdv = 0
	}
	if tx.nFastpath != 0 {
		s.FastpathValidations.AddShard(hint, tx.nFastpath)
		tx.nFastpath = 0
	}
	if tx.nWalks != 0 {
		s.FallbackWalks.AddShard(hint, tx.nWalks)
		tx.nWalks = 0
	}
}

// Restart aborts and re-executes the transaction.
func (tx *Txn) Restart() { panic(txSignal{sigRestart, tx}) }

// Retry aborts and blocks until the read set changes, then re-executes.
func (tx *Txn) Retry() {
	tx.nRetries++
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvRetry, tx.id, 0, 0, 0)
	}
	panic(txSignal{sigRetry, tx})
}

// resolveConflict builds the arbitration Info for a conflict on o and asks
// the policy. AbortOther dooming is performed here; the caller maps Wait and
// SelfAbort onto its own control flow (panic-restart inside the body,
// release-and-fail inside commit).
func (tx *Txn) resolveConflict(o *objmodel.Object, kind conflict.Kind, attempt int, rec txrec.Word) conflict.Decision {
	tx.karma.Add(1)
	info := conflict.Info{
		Kind: kind, Attempt: attempt, Record: rec,
		Self: tx.id, SelfPrio: tx.karma.Load(),
	}
	if txrec.IsExclusive(rec) {
		info.Owner = txrec.Owner(rec)
		if victim := tx.rt.reg.findStamp(info.Owner); victim != nil {
			if victim.dead.Load() {
				// The owner's goroutine died holding the record: steal it and
				// have the caller re-probe instead of arbitrating with a corpse.
				tx.rt.reapTxn(victim)
				return conflict.Wait
			}
			info.OwnerActive = true
			info.OwnerPrio = victim.karma.Load()
			info.OwnerIrrevocable = victim.irrevStamp.Load()
		}
	}
	d := tx.rt.policy.Resolve(info)
	switch d {
	case conflict.SelfAbort:
		tx.nSelfAborts++
		if tr := tx.tr; tr != nil {
			tr.Record(trace.EvSelfAbort, tx.id, uint64(o.Ref()), 0, 0)
		}
	case conflict.AbortOther:
		if victim := tx.rt.reg.findStamp(info.Owner); victim != nil && !victim.irrevStamp.Load() {
			victim.doomed.Store(true)
			tx.nDooms++
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvDoom, tx.id, uint64(o.Ref()), 0, info.Owner)
			}
		}
		// Camp on the record with yields instead of exponential sleeps (see
		// the eager runtime's conflictWait): arbitration decided this
		// transaction wins, and sleeping past the victim's release invites
		// doom churn — a third party re-acquires and must be doomed in turn.
		a := attempt
		if a > 9 {
			a = 9 // clamp into WaitAttempt's spin/yield bands; never sleep
		}
		conflict.WaitAttempt(a, 0)
	}
	return d
}

func (tx *Txn) conflictWait(o *objmodel.Object, kind conflict.Kind, attempt int, rec txrec.Word) {
	tx.hb.Add(1) // slow path: prove liveness to the reaper while we wait
	if tr := tx.tr; tr != nil {
		ref := uint64(o.Ref())
		var owner uint64
		if txrec.IsExclusive(rec) {
			owner = txrec.Owner(rec) // Ver carries the owning txn ID: the waits-for edge
		}
		tr.Record(trace.EvConflict, tx.id, ref, 0, owner)
		tr.Hot().BumpConflict(ref)
	}
	if tx.irrevocable {
		// Irrevocable transactions never restart and never lose: doom any
		// live owner (dead ones are reaped) and wait for the record to free.
		tx.irrevClaim(o, rec, attempt)
		return
	}
	if tx.ctx != nil && tx.ctx.Err() != nil {
		panic(txSignal{sigCancel, tx})
	}
	if tx.doomed.Load() {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	if attempt >= tx.rt.cfg.SelfAbortAfter {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	if tx.resolveConflict(o, kind, attempt, rec) == conflict.SelfAbort {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
}

// irrevClaim is the irrevocable transaction's conflict step: reap a dead
// owner, doom a live one (the token is singular, so the owner is never
// itself irrevocable), then wait for the record to free.
func (tx *Txn) irrevClaim(o *objmodel.Object, rec txrec.Word, attempt int) {
	if txrec.IsExclusive(rec) {
		if victim := tx.rt.reg.findStamp(txrec.Owner(rec)); victim != nil && victim != tx {
			if victim.dead.Load() {
				tx.rt.reapTxn(victim)
				return
			}
			if victim.doomed.CompareAndSwap(false, true) {
				tx.nDooms++
				if tr := tx.tr; tr != nil {
					tr.Record(trace.EvDoom, tx.id, uint64(o.Ref()), 0, txrec.Owner(rec))
				}
			}
		}
	}
	conflict.WaitAttempt(attempt, 0)
}

func (tx *Txn) span(o *objmodel.Object, slot int) (base int) {
	return slot &^ (tx.effGran(o) - 1)
}

// Read returns the transaction's view of o's slot: the private buffer if
// the containing span has been buffered (even when only the *adjacent*
// slot was written — the granular inconsistent read of Section 2.4),
// otherwise shared memory under optimistic version validation.
func (tx *Txn) Read(o *objmodel.Object, slot int) uint64 {
	tx.nReads++
	if tx.doomed.Load() && !tx.irrevocable {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	if tx.ctx != nil && !tx.irrevocable && tx.ctx.Err() != nil {
		// Every access is a cancellation point, so a context cancelled
		// mid-body (in particular a nested block's scoped context) is
		// noticed without needing a conflict to arise first.
		panic(txSignal{sigCancel, tx})
	}
	base := tx.span(o, slot)
	if len(tx.buf) > 0 {
		if sb, ok := tx.buf[spanKey{o, base}]; ok {
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, 0)
			}
			return sb.vals[slot-base]
		}
	}
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Traced even though no logging is needed: the soundness oracle
			// audits private (elided) accesses against the manifest.
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, 0)
			}
			return o.LoadSlot(slot)
		case txrec.IsExclusive(w), txrec.IsExclusiveAnon(w):
			if txrec.IsExclusive(w) && txrec.Owner(w) == tx.id {
				// Our own pessimistic hold (irrevocable mode): the slot value
				// in memory is ours to read — write-back has not happened, so
				// it is the pre-transaction value unless buffered (handled
				// above).
				return o.LoadSlot(slot)
			}
			// Lazy versioning never reads another transaction's data while
			// its record is held (there is no dirty data in memory, but a
			// committer may be writing back).
			tx.conflictWait(o, conflict.TxnRead, attempt, w)
		default:
			if tx.irrevocable {
				// Pessimistic read: acquire the record so nothing can ever
				// invalidate it (no abort is legal past the switch).
				if !o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
					continue
				}
				ver := txrec.Version(w)
				tx.owned.Put(o, ver)
				tx.objs = append(tx.objs, o)
				tx.reads.Put(o, ver)
				if tr := tx.tr; tr != nil {
					tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, ver)
				}
				return o.LoadSlot(slot)
			}
			v := o.LoadSlot(slot)
			if o.Rec.Load() != w {
				continue
			}
			ver := txrec.Version(w)
			if tx.rt.clockOn && ver > tx.rv {
				// Version postdates the clock snapshot: extend it (see the
				// eager runtime) or restart if the read set is stale.
				tx.extendSnapshot(o, ver)
			}
			if prev, ok := tx.reads.Get(o); ok {
				if prev != ver {
					tx.blameObj = uint64(o.Ref())
					tx.Restart()
				}
			} else {
				tx.reads.Put(o, ver)
			}
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, ver)
			}
			return v
		}
	}
}

// ReadRef is Read for reference slots.
func (tx *Txn) ReadRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(tx.Read(o, slot))
}

// Write buffers a store to o's slot. On first touch of a span the current
// contents of every slot in the span are snapshotted into the buffer; the
// snapshot of the *adjacent* slot is what later manufactures the granular
// lost update when Granularity > 1.
func (tx *Txn) Write(o *objmodel.Object, slot int, v uint64) {
	tx.nWrites++
	if tx.doomed.Load() && !tx.irrevocable {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	if tx.ctx != nil && !tx.irrevocable && tx.ctx.Err() != nil {
		panic(txSignal{sigCancel, tx}) // accesses are cancellation points
	}
	base := tx.span(o, slot)
	key := spanKey{o, base}
	sb, ok := tx.buf[key]
	if !ok {
		g := tx.effGran(o)
		for i := 0; i < g && base+i < len(o.Slots); i++ {
			sb.vals[i] = o.LoadSlot(base + i)
			sb.n++
		}
	}
	sb.vals[slot-base] = v
	tx.buf[key] = sb
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvWrite, tx.id, uint64(o.Ref()), slot, 0)
	}
}

// WriteRef is Write for reference slots.
func (tx *Txn) WriteRef(o *objmodel.Object, slot int, r objmodel.Ref) {
	tx.Write(o, slot, uint64(r))
}

// Validate re-checks the read set.
func (tx *Txn) Validate() bool {
	ok, _ := tx.validateExcluding(nil)
	return ok
}

// validateExcluding re-checks the read set; on failure it also reports the
// handle of the first inconsistent object, for conflict attribution. Under
// commit-clock validation an unchanged clock proves no committed or
// non-transactional write happened since the snapshot, so the walk is
// skipped; the transaction's own commit-time acquisitions never tick the
// clock, so holding the write set does not defeat the fast path.
func (tx *Txn) validateExcluding(owned *objset.VerSet) (bool, uint64) {
	if tx.rt.clockOn && tx.rt.clock.Load() == tx.rv {
		tx.nFastpath++
		return true, 0
	}
	tx.nWalks++
	return tx.walkValidateExcluding(owned)
}

// walkValidateExcluding is the original O(|read set|) validation walk.
func (tx *Txn) walkValidateExcluding(owned *objset.VerSet) (bool, uint64) {
	ok := true
	var bad uint64
	tx.reads.Range(func(o *objmodel.Object, ver uint64) bool {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
		case txrec.IsShared(w):
			if txrec.Version(w) != ver {
				ok = false
			}
		case txrec.IsExclusive(w) && owned != nil:
			if sv, has := owned.Get(o); !has || sv != ver {
				ok = false
			}
		default:
			ok = false
		}
		if !ok {
			bad = uint64(o.Ref())
		}
		return ok
	})
	return ok, bad
}

// extendSnapshot handles a read that observed version ver above the clock
// snapshot: raise the clock to cover ver, re-validate the read set against
// a fresh clock value, and adopt it as the new snapshot — or restart if
// the read set is already stale. (See the eager runtime for why waiting
// for a committer to catch the clock up instead could livelock.)
func (tx *Txn) extendSnapshot(o *objmodel.Object, ver uint64) {
	rt := tx.rt
	if tr := tx.tr; tr != nil {
		ref := uint64(o.Ref())
		tr.Record(trace.EvExtend, tx.id, ref, 0, ver)
		tr.Hot().BumpValidation(ref)
	}
	rt.clock.Raise(ver)
	newRv := rt.clock.Load()
	tx.nWalks++
	if ok, bad := tx.walkValidateExcluding(nil); !ok {
		tx.notifyStale(bad)
		tx.blameObj = bad
		tx.Restart()
	}
	tx.rv = newRv
}

// notifyStale reports a validation failure to the contention handler if it
// observes stale aborts (conflict.StaleObserver); attribution only, the
// abort happens regardless.
func (tx *Txn) notifyStale(bad uint64) {
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvValidation, tx.id, bad, tx.attempt, 0)
		tr.Hot().BumpValidation(bad)
	}
	if obs := tx.rt.staleObs; obs != nil {
		obs.ObserveValidationAbort(conflict.Info{
			Kind:     conflict.TxnValidation,
			Attempt:  tx.attempt,
			Obj:      bad,
			Self:     tx.id,
			SelfPrio: tx.karma.Load(),
		})
	}
}

// release restores the records of every object acquired by this attempt;
// with bump the version is incremented (publishing new state), without it
// the original shared word is restored. The holdings are cleared afterwards:
// a descriptor that later dies as an orphan must not present records it no
// longer owns to the reaper.
func (tx *Txn) release(bump bool) {
	for _, o := range tx.objs {
		sv, ok := tx.owned.Get(o)
		if !ok {
			continue
		}
		if bump {
			// Commit path: stamp with the write version obtained before the
			// commit point (tx.wv is 0 when the clock is off, degrading to
			// the plain version bump).
			o.Rec.ReleaseOwnedAt(sv, tx.wv)
		} else {
			o.Rec.Store(txrec.MakeShared(sv))
		}
	}
	tx.owned.Reset()
	tx.objs = tx.objs[:0]
}

// commit runs the lazy commit protocol: acquire the write set's records in
// handle order, validate the read set, pass the commit point, write back
// the buffered spans in no particular order, release the records, and (in
// quiescence mode) wait for all previously serialized transactions'
// write-backs to complete.
//
// ok=false means the attempt aborts and retries. A non-nil error is only
// possible after the commit point, when cancellation abandoned the
// quiescence wait (the commit itself is durable).
func (tx *Txn) commit() (ok bool, err error) {
	if tx.doomed.Load() && !tx.irrevocable {
		return false, nil
	}
	// Collect distinct objects in the write set, sorted by handle so
	// concurrent committers acquire in the same order (no deadlock). The
	// scratch slice and owned set live on the descriptor, so a steady-state
	// commit allocates nothing. An irrevocable transaction arrives already
	// holding its pessimistically-read records in objs/owned; those are kept
	// (acquisition below skips them) and the write set is merged in.
	if !tx.irrevocable {
		tx.objs = tx.objs[:0]
		tx.owned.Reset()
	}
	for key := range tx.buf {
		dup := false
		for _, o := range tx.objs {
			if o == key.obj {
				dup = true
				break
			}
		}
		if !dup {
			tx.objs = append(tx.objs, key.obj)
		}
	}
	sortByRef(tx.objs)

	for _, o := range tx.objs {
		if txrec.IsPrivate(o.Rec.Load()) {
			continue // thread-local: written back without synchronization
		}
		if _, mine := tx.owned.Get(o); mine {
			continue // already held by the irrevocable switch or a read
		}
		for attempt := 0; ; attempt++ {
			w := o.Rec.Load()
			if txrec.IsShared(w) {
				if fi := tx.fi; fi != nil {
					switch fi.Fire(faultinject.PreAcquire, tx.id) {
					case faultinject.Abort:
						if !tx.irrevocable {
							tx.blameObj = uint64(o.Ref())
							tx.release(false)
							return false, nil
						}
					case faultinject.Crash:
						if !tx.irrevocable {
							tx.release(false)
							tx.crash(faultinject.PreAcquire)
						}
					case faultinject.Orphan:
						// Dies mid-acquire: records taken so far stay held
						// (owned records them) until a reaper steals them.
						tx.die(faultinject.PreAcquire)
					}
				}
				if o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
					tx.owned.Put(o, txrec.Version(w))
					if tr := tx.tr; tr != nil {
						tr.Record(trace.EvLockAcquire, tx.id, uint64(o.Ref()), 0, txrec.Version(w))
					}
					if fi := tx.fi; fi != nil {
						switch fi.Fire(faultinject.PostAcquire, tx.id) {
						case faultinject.Abort:
							if !tx.irrevocable {
								tx.blameObj = uint64(o.Ref())
								tx.release(false)
								return false, nil
							}
						case faultinject.Crash:
							if !tx.irrevocable {
								// Nothing has reached shared memory; a crashed
								// committer's records are restored unchanged.
								tx.release(false)
								tx.crash(faultinject.PostAcquire)
							}
						case faultinject.Orphan:
							tx.die(faultinject.PostAcquire)
						}
					}
					break
				}
				continue
			}
			if tr := tx.tr; tr != nil {
				ref := uint64(o.Ref())
				var owner uint64
				if txrec.IsExclusive(w) {
					owner = txrec.Owner(w)
				}
				tr.Record(trace.EvConflict, tx.id, ref, 0, owner)
				tr.Hot().BumpConflict(ref)
			}
			tx.hb.Add(1) // contended acquire: prove liveness to the reaper
			if tx.irrevocable {
				// No fail path is legal: doom a live owner, reap a dead one,
				// and re-probe until the record frees.
				tx.irrevClaim(o, w, attempt)
				continue
			}
			if tx.ctx != nil && tx.ctx.Err() != nil {
				// Cancelled mid-acquire: fail the commit; the atomic loop's
				// entry check converts the failure into ctx.Err().
				tx.release(false)
				return false, nil
			}
			if tx.doomed.Load() || attempt >= tx.rt.cfg.SelfAbortAfter {
				tx.blameObj = uint64(o.Ref())
				tx.release(false)
				return false, nil
			}
			if tx.resolveConflict(o, conflict.TxnWrite, attempt, w) == conflict.SelfAbort {
				tx.blameObj = uint64(o.Ref())
				tx.release(false)
				return false, nil
			}
		}
	}

	// A doom that landed while we were acquiring is honored up to the commit
	// point; past it the victim has won the race and simply commits.
	if tx.doomed.Load() && !tx.irrevocable {
		tx.release(false)
		return false, nil
	}
	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PreValidate, tx.id) {
		case faultinject.Abort:
			if !tx.irrevocable {
				tx.release(false)
				return false, nil
			}
		case faultinject.Crash:
			if !tx.irrevocable {
				tx.release(false)
				tx.crash(faultinject.PreValidate)
			}
		case faultinject.Orphan:
			// Dies entering validation holding its whole write set: the
			// canonical lazy orphan — buffers never reach memory.
			tx.die(faultinject.PreValidate)
		}
	}
	if vok, bad := tx.validateExcluding(&tx.owned); !vok {
		if tx.irrevocable {
			// Structurally impossible: every read-set entry has been
			// Exclusive(self) since the switch.
			panic("lazystm: irrevocable transaction failed validation")
		}
		tx.notifyStale(bad)
		tx.blameObj = bad
		tx.release(false) // nothing reached memory; restore original versions
		return false, nil
	}

	// Obtain the write version before the commit point (GV4 pass-on-fail,
	// see the eager runtime): every release past here — normal, crash
	// branch, or reaper-completed — stamps records with tx.wv, and the
	// clock advance fails the validation fast path of every snapshot that
	// predates this commit. Transactions holding records without buffered
	// writes (pessimistic read locks only) release values unchanged, so
	// they need no advance.
	// A durable runtime needs a stamp (the redo record's LSN) for any
	// commit with buffered writes, even when clock validation is off.
	if (tx.rt.clockOn || tx.sink != nil) && len(tx.buf) > 0 {
		var advanced bool
		if tx.wv, advanced = tx.rt.clock.Advance(); advanced {
			tx.nClockAdv++
		}
	}

	// ----- commit point: the transaction is now serialized. -----
	tx.status.Store(uint32(Committed))
	ticket := tx.rt.tickets.Add(1)
	tx.ticket = ticket // published by dead's release-store if we die an orphan
	if h := tx.rt.cfg.Hooks.OnAfterCommitPoint; h != nil {
		h(tx)
	}

	// Write back buffered spans. Go map iteration order is randomized,
	// faithfully modeling "copies buffered values to memory one at a time
	// in no particular order".
	k := 0
	publish := tx.rt.Heap.HasManifest()
	for key, sb := range tx.buf {
		for i := 0; i < sb.n; i++ {
			// With an elision manifest loaded the heap mints private-born
			// objects, so write-back into a public container is a publication
			// point (Figure 10b): the referenced subgraph escapes here.
			if publish && sb.vals[i] != 0 && key.obj.IsRefSlot(key.base+i) &&
				!txrec.IsPrivate(key.obj.Rec.Load()) {
				tx.rt.Heap.PublishRef(objmodel.Ref(sb.vals[i]))
			}
			key.obj.StoreSlot(key.base+i, sb.vals[i])
			if h := tx.rt.cfg.Hooks.OnAfterWriteback; h != nil {
				h(tx, k)
			}
			k++
		}
	}

	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PostCommitPoint, tx.id) {
		case faultinject.Crash:
			// The Figure 4 window: logically committed, write-back done, records
			// still held. A dying thread's cleanup releases with a version bump
			// and completes the ticket so the ordering chain never stalls.
			tx.release(true)
			tx.rt.markComplete(ticket)
			tx.rt.Stats.Commits.AddShard(int(tx.id), 1)
			tx.flushStats()
			panic(faultinject.CrashError{Point: faultinject.PostCommitPoint, Txn: tx.id})
		case faultinject.Orphan:
			// Dies in the Figure 4 window with NO cleanup: records stay held
			// and the ticket chain stalls until the reaper releases (bumping —
			// the write-back is in memory) and completes the ticket.
			tx.die(faultinject.PostCommitPoint)
		}
	}

	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PreRelease, tx.id) {
		case faultinject.Crash:
			tx.release(true)
			tx.rt.markComplete(ticket)
			tx.rt.Stats.Commits.AddShard(int(tx.id), 1)
			tx.flushStats()
			panic(faultinject.CrashError{Point: faultinject.PreRelease, Txn: tx.id})
		case faultinject.Orphan:
			tx.die(faultinject.PreRelease)
		}
	}

	// Stream the redo record while the records are still held, so the log
	// observes commits to each object in release order (replay order agrees
	// with every object's version order). The buffered spans carry exactly
	// the values the write-back just stored. The injected-death branches
	// above never reach this append: a commit that died before logging is
	// not durable — it was never acked.
	var durSeq uint64
	var durErr error
	if tx.sink != nil && len(tx.buf) > 0 {
		tx.redo = tx.redo[:0]
		for key, sb := range tx.buf {
			for i := 0; i < sb.n; i++ {
				tx.redo = append(tx.redo, stmapi.RedoWrite{
					Ref: key.obj.Ref(), Slot: key.base + i, Val: sb.vals[i],
				})
			}
		}
		durSeq, durErr = tx.sink.AppendRedo(tx.id, tx.wv, tx.redo)
	}

	tx.release(true) // version bump publishes the new state to optimistic readers

	// Our own write-back is complete regardless of how long predecessors
	// take, so the ticket is marked before any waiting: a successor never
	// waits on a transaction that has already finished its stores.
	tx.rt.markComplete(ticket)
	tx.dropIrrevocable() // records released: surrender the token before any ordering wait
	if tx.rt.cfg.Quiescence {
		if tr := tx.tr; tr != nil {
			start := time.Now()
			err = tx.rt.awaitOrder(tx.ctx, ticket)
			tr.ObserveQuiesce(time.Since(start))
		} else {
			err = tx.rt.awaitOrder(tx.ctx, ticket)
		}
	}
	tx.rt.Stats.Commits.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvCommit, tx.id, 0, 0, 0)
		tr.ObserveCommit(time.Since(tx.beginAt))
	}
	tx.flushStats()
	// Durability barrier, after release and ticket completion so the group
	// commit's fsync window never extends lock hold times or stalls the
	// write-back ordering chain.
	if durErr == nil && durSeq != 0 {
		durErr = tx.sink.WaitDurable(durSeq)
	}
	if err == nil {
		err = durErr
	}
	return true, err
}

// crash performs the abort bookkeeping for a simulated thread death inside
// commit (the caller has already restored the records) and panics with
// CrashError.
func (tx *Txn) crash(p faultinject.Point) {
	tx.fi = nil // the bookkeeping below must not re-enter injection
	tx.abort()
	panic(faultinject.CrashError{Point: p, Txn: tx.id})
}

// markComplete records that ticket's write-back has finished and advances
// the contiguous completion watermark past every parked ticket it unblocks.
// Completion is decoupled from waiting so that a waiter abandoning its wait
// (cancellation, crash injection) can never stall later tickets — the
// failure mode of the previous in-order-only scheme.
func (rt *Runtime) markComplete(ticket uint64) {
	rt.doneMu.Lock()
	rt.pending[ticket] = struct{}{}
	for {
		next := rt.done.Load() + 1
		if _, ok := rt.pending[next]; !ok {
			break
		}
		delete(rt.pending, next)
		rt.done.Store(next)
	}
	rt.doneCv.Broadcast()
	rt.doneMu.Unlock()
}

// awaitOrder blocks until the completion watermark reaches ticket — i.e.
// every transaction serialized before it has finished applying its updates
// (the lazy-versioning quiescence of Section 3.4). A cancelled context
// abandons the wait and returns its error; the caller's commit is already
// durable.
func (rt *Runtime) awaitOrder(ctx context.Context, ticket uint64) error {
	if ctx != nil {
		// Wake the cond-var wait when the context fires; without this a
		// waiter could sleep past its deadline until the next Broadcast.
		stop := context.AfterFunc(ctx, func() {
			rt.doneMu.Lock()
			rt.doneCv.Broadcast()
			rt.doneMu.Unlock()
		})
		defer stop()
	}
	rt.doneMu.Lock()
	defer rt.doneMu.Unlock()
	for rt.done.Load() < ticket {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rt.doneCv.Wait()
	}
	return nil
}

func (tx *Txn) abort() {
	if tx.irrevocable {
		// Contract violation (the body returned an error after the switch),
		// but the pessimistic read locks must still be released — unchanged,
		// nothing was written back — and the token surrendered.
		tx.release(false)
		tx.dropIrrevocable()
	}
	// Invested work converts into priority for the next attempt (Karma).
	if tx.nReads+tx.nWrites > 0 {
		tx.karma.Add(tx.nReads + tx.nWrites)
	}
	tx.status.Store(uint32(Aborted))
	tx.rt.Stats.Aborts.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvAbort, tx.id, tx.blameObj, 0, 0)
		if tx.blameObj != 0 {
			tr.Hot().BumpAbort(tx.blameObj)
		}
		tx.abortAt = time.Now()
	}
	tx.blameObj = 0
	tx.flushStats()
}

// waitForReadSetChange blocks until something in the aborted transaction's
// read set changes. The read set is waited on in place (it survives abort;
// begin resets it on re-execution), avoiding the per-retry snapshot copy.
func (rt *Runtime) waitForReadSetChange(ctx context.Context, rs *objset.VerSet) error {
	if rs.Len() == 0 {
		return nil
	}
	for a := 0; ; a++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		changed := false
		rs.Range(func(o *objmodel.Object, ver uint64) bool {
			w := o.Rec.Load()
			if txrec.IsPrivate(w) {
				return true
			}
			if !txrec.IsShared(w) || txrec.Version(w) != ver {
				changed = true
				return false
			}
			return true
		})
		if changed {
			return nil
		}
		conflict.WaitAttempt(a, 0)
	}
}

// Atomic executes body as a lazy-versioning transaction, retrying until it
// commits. Closed nesting is flattened: a nested Atomic call (parent
// non-nil) joins the parent transaction, and a body error rolls back
// nothing (lazy buffers make partial rollback unnecessary for the anomaly
// studies this variant exists for; the eager runtime implements full
// nesting).
func (rt *Runtime) Atomic(parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return body(parent)
	}
	return rt.atomic(nil, body, rt.escalateFrom())
}

// AtomicIrrevocable executes body as an irrevocable transaction (see the
// eager runtime: singular token, pessimistic reads after the switch, no
// abort possible past it — safe for I/O). Nested calls are flattened: the
// enclosing transaction itself becomes irrevocable. Returns
// stmapi.ErrIrrevocableDisabled on a NoIrrevocable runtime.
func (rt *Runtime) AtomicIrrevocable(parent *Txn, body func(*Txn) error) error {
	if rt.cfg.NoIrrevocable {
		return stmapi.ErrIrrevocableDisabled
	}
	if parent != nil {
		parent.BecomeIrrevocable()
		return body(parent)
	}
	return rt.atomic(nil, body, 0)
}

// escalateFrom converts the configured escalation threshold into the atomic
// loop's irrevFrom parameter (-1 = never escalate).
func (rt *Runtime) escalateFrom() int {
	if rt.cfg.EscalateAfter > 0 {
		return rt.cfg.EscalateAfter
	}
	return -1
}

// AtomicCtx is Atomic with deadline/cancellation support, mirroring the
// eager runtime: an already-cancelled context returns ctx.Err() without
// executing the body; cancellation before the commit point discards the
// write buffer and returns ctx.Err(); cancellation during the post-commit
// ordering wait returns ctx.Err() with the effects already committed.
//
// Nested calls are flattened like Atomic. A non-nil ctx on a nested call
// governs the nested block only: cancellation surfaces as the block's error
// return (no buffered state is rolled back, matching the flattened model),
// and the enclosing body decides how to proceed.
func (rt *Runtime) AtomicCtx(ctx context.Context, parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return rt.nestedCtx(ctx, parent, body)
	}
	return rt.atomic(ctx, body, rt.escalateFrom())
}

func (rt *Runtime) nestedCtx(ctx context.Context, parent *Txn, body func(*Txn) error) (err error) {
	if ctx == nil {
		return body(parent) // inherit the enclosing context
	}
	if e := ctx.Err(); e != nil {
		return e
	}
	prev := parent.ctx
	parent.ctx = ctx
	defer func() {
		parent.ctx = prev
		r := recover()
		if r == nil {
			return
		}
		if s, ok := r.(txSignal); ok && s.tx == parent && s.s == sigCancel {
			if prev == nil || prev.Err() == nil {
				err = ctx.Err()
				return
			}
		}
		panic(r)
	}()
	return body(parent)
}

// atomic is the top-level execution loop. irrevFrom is the attempt index
// from which the body runs irrevocably (0 = AtomicIrrevocable, EscalateAfter
// for graceful degradation, -1 = never).
func (rt *Runtime) atomic(ctx context.Context, body func(*Txn) error, irrevFrom int) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	tx := rt.getTxn()
	tx.ctx = ctx
	defer rt.finish(tx)
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		tx.attempt = attempt
		tx.begin()
		runBody := body
		if irrevFrom >= 0 && attempt >= irrevFrom {
			// Switch right after begin, while the read set is empty and
			// nothing is buffered: the token acquire cannot deadlock and the
			// read-set upgrade is trivial. Closure allocates on this cold
			// path only.
			escalated := irrevFrom > 0
			runBody = func(tx *Txn) error {
				tx.becomeIrrevocable(escalated)
				return body(tx)
			}
		}
		err, sig := rt.run(tx, runBody)
		switch sig {
		case 0:
			if err != nil {
				tx.abort()
				return err
			}
			committed, cerr := tx.commit()
			if committed {
				return cerr
			}
			tx.abort()
		case sigRestart:
			tx.abort()
		case sigRetry:
			tx.abort()
			if werr := rt.waitForReadSetChange(ctx, &tx.reads); werr != nil {
				return werr
			}
		case sigCancel:
			tx.abort()
			if ctx != nil {
				return ctx.Err()
			}
			return context.Canceled // unreachable: sigCancel requires a ctx
		}
		conflict.WaitAttempt(attempt, 0)
	}
}

// ActiveTransactions returns the number of registered descriptors whose
// status is Active (API parity with the eager runtime).
func (rt *Runtime) ActiveTransactions() int {
	n := 0
	rt.reg.forEach(func(tx *Txn) bool {
		if Status(tx.status.Load()) == Active {
			n++
		}
		return true
	})
	return n
}

func (rt *Runtime) run(tx *Txn, body func(*Txn) error) (err error, sig signal) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if tx.dead.Load() {
			// Died at an Orphan injection point: no cleanup may run — records
			// stay held for the reaper, the descriptor is never pooled.
			panic(r)
		}
		if s, ok := r.(txSignal); ok && s.tx == tx {
			sig = s.s
			return
		}
		// Validate treating self-owned records as consistent: an irrevocable
		// transaction's pessimistic read locks must not read as foreign.
		if ok, _ := tx.validateExcluding(&tx.owned); !ok {
			sig = sigRestart
			return
		}
		tx.abort() // discard buffers before propagating the fault
		panic(r)
	}()
	return body(tx), 0
}

// sortByRef sorts objects by their heap handle (insertion sort; write sets
// are small).
func sortByRef(objs []*objmodel.Object) {
	for i := 1; i < len(objs); i++ {
		o := objs[i]
		j := i - 1
		for j >= 0 && objs[j].Ref() > o.Ref() {
			objs[j+1] = objs[j]
			j--
		}
		objs[j+1] = o
	}
}
