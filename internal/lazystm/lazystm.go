// Package lazystm implements a lazy-versioning STM in the style the paper
// contrasts against (Sections 2.3 and 3.3): transactions buffer their
// writes privately and publish them to shared memory only after commit.
// Records are acquired at commit time, the read set is validated, the
// transaction logically commits, and the buffered updates are then copied
// back "one at a time in no particular order" before the records are
// released.
//
// The window between the commit point and the completion of write-back is
// precisely what produces the memory-inconsistency (MI) anomalies of
// Figure 4 and the privatization problem of Figure 1 under weak atomicity;
// the ordering read barrier of Section 3.3 (package strong) closes it.
// Optional Hooks let the litmus tests hold a transaction inside that window
// deterministically.
//
// The write buffer operates at a configurable slot granularity: with
// Granularity 2 a buffered entry spans two adjacent slots, snapshotting the
// neighbour's value at buffer-creation time — reproducing the granular
// lost update (GLU) and granular inconsistent read (GIR) anomalies of
// Section 2.4.
package lazystm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/txrec"
)

// MaxGranularity is the largest supported buffering granularity in slots.
const MaxGranularity = 2

// Hooks are optional test instrumentation points inside the commit window.
type Hooks struct {
	// OnAfterCommitPoint runs after the transaction has logically committed
	// (status set, records held) but before any buffered value reaches
	// shared memory.
	OnAfterCommitPoint func(*Txn)

	// OnAfterWriteback runs after the k-th individual slot write-back
	// (0-based), still before the records are released.
	OnAfterWriteback func(tx *Txn, k int)
}

// Config parameterizes a Runtime.
type Config struct {
	// Granularity is the slot span of one write-buffer entry: 1 or 2.
	Granularity int

	// Quiescence enables the Section 3.4 ordering guarantee for lazy
	// versioning: a committing transaction waits until all previously
	// serialized transactions have finished applying their updates before
	// completing itself.
	Quiescence bool

	// Handler receives conflict notifications; nil means a shared Backoff.
	Handler conflict.Handler

	// SelfAbortAfter bounds conflict-handler invocations per access before
	// self-abort; zero means 64.
	SelfAbortAfter int

	// Hooks instrument the commit window (tests only).
	Hooks Hooks
}

// Stats aggregates runtime counters.
type Stats struct {
	Starts    atomic.Int64
	Commits   atomic.Int64
	Aborts    atomic.Int64
	TxnReads  atomic.Int64
	TxnWrites atomic.Int64
}

// Runtime is a lazy-versioning STM instance bound to a heap.
type Runtime struct {
	Heap  *objmodel.Heap
	Stats Stats

	cfg     Config
	handler conflict.Handler
	nextID  atomic.Uint64

	// Commit tickets serialize write-back completion in quiescence mode.
	tickets atomic.Uint64
	done    atomic.Uint64 // highest ticket whose write-back has completed, contiguously
	doneMu  sync.Mutex
	doneCv  *sync.Cond
}

// New creates a lazy-versioning Runtime over heap.
func New(heap *objmodel.Heap, cfg Config) *Runtime {
	if cfg.Granularity == 0 {
		cfg.Granularity = 1
	}
	if cfg.Granularity < 1 || cfg.Granularity > MaxGranularity {
		panic(fmt.Sprintf("lazystm: unsupported granularity %d", cfg.Granularity))
	}
	if cfg.SelfAbortAfter == 0 {
		cfg.SelfAbortAfter = 64
	}
	h := cfg.Handler
	if h == nil {
		h = &conflict.Backoff{}
	}
	rt := &Runtime{Heap: heap, cfg: cfg, handler: h}
	rt.doneCv = sync.NewCond(&rt.doneMu)
	return rt
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// ErrAborted aborts the transaction without retry when returned from the
// body.
var ErrAborted = errors.New("lazystm: transaction aborted by user")

type signal uint8

const (
	sigRestart signal = iota + 1
	sigRetry
)

type txSignal struct {
	s  signal
	tx *Txn
}

type spanKey struct {
	obj  *objmodel.Object
	base int
}

type spanBuf struct {
	vals [MaxGranularity]uint64
	n    int
}

// Txn is a lazy-versioning transaction descriptor.
type Txn struct {
	rt     *Runtime
	id     uint64
	status atomic.Uint32 // stm.Status values: 0 active, 1 committed, 2 aborted

	reads map[*objmodel.Object]uint64
	buf   map[spanKey]*spanBuf
}

// ID returns the descriptor's owner ID.
func (tx *Txn) ID() uint64 { return tx.id }

func (rt *Runtime) newTxn() *Txn {
	return &Txn{
		rt:    rt,
		id:    rt.nextID.Add(1),
		reads: make(map[*objmodel.Object]uint64),
		buf:   make(map[spanKey]*spanBuf),
	}
}

func (tx *Txn) begin() {
	tx.status.Store(0)
	clear(tx.reads)
	clear(tx.buf)
	tx.rt.Stats.Starts.Add(1)
}

// Restart aborts and re-executes the transaction.
func (tx *Txn) Restart() { panic(txSignal{sigRestart, tx}) }

// Retry aborts and blocks until the read set changes, then re-executes.
func (tx *Txn) Retry() { panic(txSignal{sigRetry, tx}) }

func (tx *Txn) conflictWait(kind conflict.Kind, attempt int, rec txrec.Word) {
	if attempt >= tx.rt.cfg.SelfAbortAfter {
		tx.Restart()
	}
	tx.rt.handler.HandleConflict(conflict.Info{Kind: kind, Attempt: attempt, Record: rec})
}

func (tx *Txn) span(slot int) (base int) {
	return slot &^ (tx.rt.cfg.Granularity - 1)
}

// Read returns the transaction's view of o's slot: the private buffer if
// the containing span has been buffered (even when only the *adjacent*
// slot was written — the granular inconsistent read of Section 2.4),
// otherwise shared memory under optimistic version validation.
func (tx *Txn) Read(o *objmodel.Object, slot int) uint64 {
	tx.rt.Stats.TxnReads.Add(1)
	base := tx.span(slot)
	if sb, ok := tx.buf[spanKey{o, base}]; ok {
		return sb.vals[slot-base]
	}
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			return o.LoadSlot(slot)
		case txrec.IsExclusive(w), txrec.IsExclusiveAnon(w):
			// Lazy versioning never reads another transaction's data while
			// its record is held (there is no dirty data in memory, but a
			// committer may be writing back).
			tx.conflictWait(conflict.TxnRead, attempt, w)
		default:
			v := o.LoadSlot(slot)
			if o.Rec.Load() != w {
				continue
			}
			ver := txrec.Version(w)
			if prev, ok := tx.reads[o]; ok {
				if prev != ver {
					tx.Restart()
				}
			} else {
				tx.reads[o] = ver
			}
			return v
		}
	}
}

// ReadRef is Read for reference slots.
func (tx *Txn) ReadRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(tx.Read(o, slot))
}

// Write buffers a store to o's slot. On first touch of a span the current
// contents of every slot in the span are snapshotted into the buffer; the
// snapshot of the *adjacent* slot is what later manufactures the granular
// lost update when Granularity > 1.
func (tx *Txn) Write(o *objmodel.Object, slot int, v uint64) {
	tx.rt.Stats.TxnWrites.Add(1)
	base := tx.span(slot)
	key := spanKey{o, base}
	sb, ok := tx.buf[key]
	if !ok {
		sb = &spanBuf{}
		g := tx.rt.cfg.Granularity
		for i := 0; i < g && base+i < len(o.Slots); i++ {
			sb.vals[i] = o.LoadSlot(base + i)
			sb.n++
		}
		tx.buf[key] = sb
	}
	sb.vals[slot-base] = v
}

// WriteRef is Write for reference slots.
func (tx *Txn) WriteRef(o *objmodel.Object, slot int, r objmodel.Ref) {
	tx.Write(o, slot, uint64(r))
}

// Validate re-checks the read set.
func (tx *Txn) Validate() bool { return tx.validateExcluding(nil) }

func (tx *Txn) validateExcluding(owned map[*objmodel.Object]uint64) bool {
	for o, ver := range tx.reads {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
		case txrec.IsShared(w):
			if txrec.Version(w) != ver {
				return false
			}
		case txrec.IsExclusive(w) && owned != nil:
			if sv, ok := owned[o]; !ok || sv != ver {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// commit runs the lazy commit protocol: acquire the write set's records in
// handle order, validate the read set, pass the commit point, write back
// the buffered spans in no particular order, release the records, and (in
// quiescence mode) wait for all previously serialized transactions'
// write-backs to complete.
func (tx *Txn) commit() bool {
	// Collect distinct objects in the write set, sorted by handle so
	// concurrent committers acquire in the same order (no deadlock).
	objs := make([]*objmodel.Object, 0, len(tx.buf))
	seen := make(map[*objmodel.Object]bool, len(tx.buf))
	for key := range tx.buf {
		if !seen[key.obj] {
			seen[key.obj] = true
			objs = append(objs, key.obj)
		}
	}
	sortByRef(objs)

	owned := make(map[*objmodel.Object]uint64, len(objs))
	release := func(bump bool) {
		for _, o := range objs {
			sv, ok := owned[o]
			if !ok {
				continue
			}
			if bump {
				o.Rec.ReleaseOwned(sv)
			} else {
				o.Rec.Store(txrec.MakeShared(sv))
			}
		}
	}

	for _, o := range objs {
		if txrec.IsPrivate(o.Rec.Load()) {
			continue // thread-local: written back without synchronization
		}
		for attempt := 0; ; attempt++ {
			w := o.Rec.Load()
			if txrec.IsShared(w) {
				if o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
					owned[o] = txrec.Version(w)
					break
				}
				continue
			}
			if attempt >= tx.rt.cfg.SelfAbortAfter {
				release(false)
				return false
			}
			tx.rt.handler.HandleConflict(conflict.Info{Kind: conflict.TxnWrite, Attempt: attempt, Record: w})
		}
	}

	if !tx.validateExcluding(owned) {
		release(false) // nothing reached memory; restore original versions
		return false
	}

	// ----- commit point: the transaction is now serialized. -----
	tx.status.Store(1)
	ticket := tx.rt.tickets.Add(1)
	if h := tx.rt.cfg.Hooks.OnAfterCommitPoint; h != nil {
		h(tx)
	}

	// Write back buffered spans. Go map iteration order is randomized,
	// faithfully modeling "copies buffered values to memory one at a time
	// in no particular order".
	k := 0
	for key, sb := range tx.buf {
		for i := 0; i < sb.n; i++ {
			key.obj.StoreSlot(key.base+i, sb.vals[i])
			if h := tx.rt.cfg.Hooks.OnAfterWriteback; h != nil {
				h(tx, k)
			}
			k++
		}
	}

	release(true) // version bump publishes the new state to optimistic readers

	if tx.rt.cfg.Quiescence {
		tx.rt.completeInOrder(ticket)
	} else {
		tx.rt.markDone(ticket)
	}
	tx.rt.Stats.Commits.Add(1)
	return true
}

// completeInOrder blocks until every transaction with an earlier commit
// ticket has finished its write-back, then marks this ticket done. This is
// the lazy-versioning quiescence of Section 3.4: when Atomic returns, all
// previously serialized transactions' updates are visible.
func (rt *Runtime) completeInOrder(ticket uint64) {
	rt.doneMu.Lock()
	for rt.done.Load() != ticket-1 {
		rt.doneCv.Wait()
	}
	rt.done.Store(ticket)
	rt.doneCv.Broadcast()
	rt.doneMu.Unlock()
}

// markDone advances the completion watermark opportunistically when
// quiescence is off (tickets may complete out of order; the watermark only
// tracks the contiguous prefix and is not relied upon).
func (rt *Runtime) markDone(ticket uint64) {
	rt.doneMu.Lock()
	if rt.done.Load() == ticket-1 {
		rt.done.Store(ticket)
		rt.doneCv.Broadcast()
	}
	rt.doneMu.Unlock()
}

func (tx *Txn) abort() {
	tx.status.Store(2)
	tx.rt.Stats.Aborts.Add(1)
}

func (rt *Runtime) waitForReadSetChange(snapshot map[*objmodel.Object]uint64) {
	if len(snapshot) == 0 {
		return
	}
	for a := 0; ; a++ {
		for o, ver := range snapshot {
			w := o.Rec.Load()
			if txrec.IsPrivate(w) {
				continue
			}
			if !txrec.IsShared(w) || txrec.Version(w) != ver {
				return
			}
		}
		conflict.WaitAttempt(a, 0)
	}
}

// Atomic executes body as a lazy-versioning transaction, retrying until it
// commits. Closed nesting is flattened: a nested Atomic call (parent
// non-nil) joins the parent transaction, and a body error rolls back
// nothing (lazy buffers make partial rollback unnecessary for the anomaly
// studies this variant exists for; the eager runtime implements full
// nesting).
func (rt *Runtime) Atomic(parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return body(parent)
	}
	tx := rt.newTxn()
	for attempt := 0; ; attempt++ {
		tx.begin()
		err, sig := rt.run(tx, body)
		switch sig {
		case 0:
			if err != nil {
				tx.abort()
				return err
			}
			if tx.commit() {
				return nil
			}
			tx.abort()
		case sigRestart:
			tx.abort()
		case sigRetry:
			snapshot := make(map[*objmodel.Object]uint64, len(tx.reads))
			for o, v := range tx.reads {
				snapshot[o] = v
			}
			tx.abort()
			rt.waitForReadSetChange(snapshot)
		}
		conflict.WaitAttempt(attempt, 0)
	}
}

func (rt *Runtime) run(tx *Txn, body func(*Txn) error) (err error, sig signal) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if s, ok := r.(txSignal); ok && s.tx == tx {
			sig = s.s
			return
		}
		if !tx.Validate() {
			sig = sigRestart
			return
		}
		tx.abort() // discard buffers before propagating the fault
		panic(r)
	}()
	return body(tx), 0
}

// sortByRef sorts objects by their heap handle (insertion sort; write sets
// are small).
func sortByRef(objs []*objmodel.Object) {
	for i := 1; i < len(objs); i++ {
		o := objs[i]
		j := i - 1
		for j >= 0 && objs[j].Ref() > o.Ref() {
			objs[j+1] = objs[j]
			j--
		}
		objs[j+1] = o
	}
}
