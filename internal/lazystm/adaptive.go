package lazystm

import "repro/internal/objmodel"

// Adaptive version-management granularity, mirroring the eager runtime
// (see internal/stm/adaptive.go for the full rationale). The promotion set
// is an immutable table swapped copy-on-write; transactions sample the
// pointer once at begin, so a promotion never changes the span arithmetic
// of a buffered span already snapshotted — the write-back of an in-flight
// transaction covers exactly the span it buffered, and the transition is
// race-free by construction.

// granTable is the immutable promotion set. A nil *granTable behaves as
// the empty set.
type granTable struct {
	m map[uint64]struct{} // object handles promoted to slot granularity
}

func (t *granTable) promoted(h uint64) bool {
	if t == nil {
		return false
	}
	_, ok := t.m[h]
	return ok
}

// effGran returns the version-management granularity in effect for o in
// this attempt: 1 for promoted objects, the configured span otherwise.
func (tx *Txn) effGran(o *objmodel.Object) int {
	g := tx.rt.cfg.Granularity
	if g > 1 && tx.gran.promoted(uint64(o.Ref())) {
		return 1
	}
	return g
}

// editGran applies edit to a copy of the promotion set and swaps it in.
func (rt *Runtime) editGran(edit func(m map[uint64]struct{}) bool) bool {
	rt.granMu.Lock()
	defer rt.granMu.Unlock()
	old := rt.granTab.Load()
	m := make(map[uint64]struct{})
	if old != nil {
		for h := range old.m {
			m[h] = struct{}{}
		}
	}
	if !edit(m) {
		return false
	}
	rt.granTab.Store(&granTable{m: m})
	return true
}

// PromoteObject switches o to slot-level version management for
// transactions beginning after the call. Reports whether the object was
// newly promoted. Effective only on runtimes configured with
// Granularity > 1.
func (rt *Runtime) PromoteObject(o *objmodel.Object) bool {
	h := uint64(o.Ref())
	changed := rt.editGran(func(m map[uint64]struct{}) bool {
		if _, ok := m[h]; ok {
			return false
		}
		m[h] = struct{}{}
		return true
	})
	if changed {
		rt.Stats.GranPromotions.AddShard(int(h), 1)
	}
	return changed
}

// DemoteObject returns o to the configured span granularity for
// transactions beginning after the call. Reports whether the object was
// previously promoted.
func (rt *Runtime) DemoteObject(o *objmodel.Object) bool {
	h := uint64(o.Ref())
	changed := rt.editGran(func(m map[uint64]struct{}) bool {
		if _, ok := m[h]; !ok {
			return false
		}
		delete(m, h)
		return true
	})
	if changed {
		rt.Stats.GranDemotions.AddShard(int(h), 1)
	}
	return changed
}

// AdaptGranularity reconciles the promotion set with the tracer's hotspot
// table: the maxHot hottest objects (by HotspotEntry.Score) are promoted,
// everything else currently promoted is demoted. Returns the number of
// promotions and demotions performed.
func (rt *Runtime) AdaptGranularity(maxHot int) (promoted, demoted int) {
	want := make(map[uint64]struct{})
	if tr := rt.tracer.Load(); tr != nil && maxHot > 0 {
		for _, e := range tr.Hot().Top(maxHot) {
			if e.Score() > 0 {
				want[e.Obj] = struct{}{}
			}
		}
	}
	rt.editGran(func(m map[uint64]struct{}) bool {
		for h := range m {
			if _, keep := want[h]; !keep {
				delete(m, h)
				demoted++
			}
		}
		for h := range want {
			if _, ok := m[h]; !ok {
				m[h] = struct{}{}
				promoted++
			}
		}
		return promoted+demoted > 0
	})
	if promoted > 0 {
		rt.Stats.GranPromotions.AddShard(0, int64(promoted))
	}
	if demoted > 0 {
		rt.Stats.GranDemotions.AddShard(0, int64(demoted))
	}
	return promoted, demoted
}
