package lazystm

// Cancellation-edge tests for the lazy runtime's AtomicCtx: entry,
// mid-body, retry waits, the post-commit ordering wait, and flattened
// nesting.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stmapi"
)

func TestAtomicCtxPreCancelledSkipsBody(t *testing.T) {
	f := newFixture(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatalf("body executed under an already-cancelled context")
	}
	if s := f.rt.Stats.Snapshot(); s.Starts != 0 {
		t.Fatalf("starts = %d, want 0", s.Starts)
	}
}

func TestAtomicCtxCancelMidBodyDiscardsBuffer(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	ctx, cancel := context.WithCancel(context.Background())
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		tx.Write(o, 0, 99)
		cancel()
		_ = tx.Read(o, 0) // accesses are cancellation points
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := o.LoadSlot(0); got != 0 {
		t.Fatalf("slot 0 = %d, want 0 (buffer discarded, nothing written back)", got)
	}
	if n := f.rt.ActiveTransactions(); n != 0 {
		t.Fatalf("active transactions = %d, want 0", n)
	}
}

func TestAtomicCtxDeadlineInRetryWait(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		_ = tx.Read(o, 0)
		tx.Retry()
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestAtomicCtxCancelDuringOrderingWait(t *testing.T) {
	// Park the first committer inside the Figure 4 commit window (after the
	// commit point, before write-back completes its ticket), so a later
	// committer's in-order wait cannot finish on its own.
	parked := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	f := newFixture(t, Config{
		CommonConfig: stmapi.CommonConfig{Quiescence: true},
		Hooks: Hooks{OnAfterCommitPoint: func(tx *Txn) {
			if once.CompareAndSwap(false, true) {
				close(parked)
				<-release
			}
		}},
	})
	o1 := f.heap.New(f.cls)
	o2 := f.heap.New(f.cls)

	firstDone := make(chan error, 1)
	go func() {
		firstDone <- f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o1, 0, 1)
			return nil
		})
	}()
	<-parked

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		tx.Write(o2, 0, 2)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Write-back precedes the ordering wait: the effects are durable even
	// though the wait was abandoned.
	if got := o2.LoadSlot(0); got != 2 {
		t.Fatalf("o2 slot 0 = %d, want 2 (commit is durable)", got)
	}

	// The abandoned wait must not stall the ticket chain: release the parked
	// committer and verify a third transaction quiesces normally.
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("parked committer: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		done <- f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o1, 1, 3)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-cancel transaction: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("ordering chain stalled after an abandoned wait")
	}
}

func TestNestedAtomicCtxFlattened(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	var nestedErr error
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		ctx, cancel := context.WithCancel(context.Background())
		nestedErr = f.rt.AtomicCtx(ctx, tx, func(tx *Txn) error {
			tx.Write(o, 1, 2)
			cancel()
			_ = tx.Read(o, 1)
			return nil
		})
		tx.Write(o, 2, 3)
		return nil
	})
	if err != nil {
		t.Fatalf("outer Atomic: %v", err)
	}
	if !errors.Is(nestedErr, context.Canceled) {
		t.Fatalf("nested err = %v, want context.Canceled", nestedErr)
	}
	// Flattened nesting: the nested block's buffered write is not rolled
	// back; the enclosing body chose to continue, so everything commits.
	if got := o.LoadSlot(0); got != 1 {
		t.Fatalf("slot 0 = %d, want 1", got)
	}
	if got := o.LoadSlot(1); got != 2 {
		t.Fatalf("slot 1 = %d, want 2 (flattened: nested write survives)", got)
	}
	if got := o.LoadSlot(2); got != 3 {
		t.Fatalf("slot 2 = %d, want 3", got)
	}
}

func TestNestedAtomicCtxPreCancelled(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := false
		nerr := f.rt.AtomicCtx(ctx, tx, func(tx *Txn) error {
			ran = true
			return nil
		})
		if !errors.Is(nerr, context.Canceled) || ran {
			t.Errorf("nested pre-cancelled: err=%v ran=%v", nerr, ran)
		}
		tx.Write(o, 0, 1)
		return nil
	})
	if err != nil {
		t.Fatalf("outer Atomic: %v", err)
	}
	if got := o.LoadSlot(0); got != 1 {
		t.Fatalf("slot 0 = %d, want 1", got)
	}
}

func TestAtomicCtxAPIAdapter(t *testing.T) {
	f := newFixture(t, Config{})
	api := f.rt.API()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := api.AtomicCtx(ctx, func(tx stmapi.Txn) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("api.AtomicCtx pre-cancelled: err=%v ran=%v", err, ran)
	}
	o := f.heap.New(f.cls)
	if err := api.AtomicCtx(context.Background(), func(tx stmapi.Txn) error {
		tx.Write(o, 0, 11)
		return nil
	}); err != nil {
		t.Fatalf("api.AtomicCtx: %v", err)
	}
	if got := o.LoadSlot(0); got != 11 {
		t.Fatalf("slot 0 = %d, want 11", got)
	}
}
