package lazystm

// Fault-injection tests for the lazy runtime: injected aborts in the
// commit-time acquire/validate sequence must discard buffers and restore
// records; injected crashes must perform stage-appropriate cleanup; a crash
// inside the Figure 4 window must complete its ticket so the ordering chain
// never stalls.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

var abortPoints = []faultinject.Point{
	faultinject.PreAcquire,
	faultinject.PostAcquire,
	faultinject.PreValidate,
}

func runTransfers(t *testing.T, f *fixture, accounts []*objmodel.Object, goroutines, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed*2862933555777941757 + 3037000493
			for i := 0; i < n; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				from := accounts[rng%uint64(len(accounts))]
				to := accounts[(rng>>8)%uint64(len(accounts))]
				if from == to {
					continue
				}
				if err := f.rt.Atomic(nil, func(tx *Txn) error {
					a := tx.Read(from, 0)
					b := tx.Read(to, 0)
					tx.Write(from, 0, a-1)
					tx.Write(to, 0, b+1)
					return nil
				}); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
}

func TestInjectedAbortsPreserveInvariants(t *testing.T) {
	for _, p := range abortPoints {
		t.Run(p.String(), func(t *testing.T) {
			f := newFixture(t, Config{})
			in := faultinject.New(uint64(p)+1, faultinject.Rule{
				Point: p, Action: faultinject.Abort, Rate: 256,
			})
			f.rt.SetInjector(in)
			const accounts, balance = 8, 1000
			objs := make([]*objmodel.Object, accounts)
			for i := range objs {
				objs[i] = f.heap.New(f.cls)
				objs[i].StoreSlot(0, balance)
			}
			runTransfers(t, f, objs, 4, 300)

			if in.Fired(p, faultinject.Abort) == 0 {
				t.Fatalf("injector never fired at %v", p)
			}
			var sum uint64
			for i, o := range objs {
				if w := o.Rec.Load(); !txrec.IsShared(w) {
					t.Errorf("account %d record %#x not back to Shared", i, w)
				}
				sum += o.LoadSlot(0)
			}
			if sum != accounts*balance {
				t.Errorf("total balance %d, want %d (buffered writes leaked or lost)", sum, accounts*balance)
			}
			if n := f.rt.ActiveTransactions(); n != 0 {
				t.Errorf("active transactions = %d, want 0", n)
			}
		})
	}
}

func TestInjectedCrashCleansUpPerStage(t *testing.T) {
	crashPoints := []struct {
		point     faultinject.Point
		committed bool
	}{
		{faultinject.PreAcquire, false},
		{faultinject.PostAcquire, false},
		{faultinject.PreValidate, false},
		{faultinject.PostCommitPoint, true},
	}
	for _, c := range crashPoints {
		t.Run(c.point.String(), func(t *testing.T) {
			f := newFixture(t, Config{})
			f.rt.SetInjector(faultinject.New(1, faultinject.Rule{
				Point: c.point, Action: faultinject.Crash,
			}))
			o := f.heap.New(f.cls)
			o.StoreSlot(0, 10)
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						ce, ok := r.(faultinject.CrashError)
						if !ok {
							panic(r)
						}
						err = ce
					}
				}()
				return f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, 20)
					return nil
				})
			}()
			var ce faultinject.CrashError
			if !errors.As(err, &ce) || ce.Point != c.point {
				t.Fatalf("err = %v, want CrashError at %v", err, c.point)
			}
			if w := o.Rec.Load(); !txrec.IsShared(w) {
				t.Fatalf("record %#x not released after crash", w)
			}
			want := uint64(10)
			if c.committed {
				want = 20
			}
			if got := o.LoadSlot(0); got != want {
				t.Fatalf("slot 0 = %d, want %d", got, want)
			}
			if n := f.rt.ActiveTransactions(); n != 0 {
				t.Fatalf("active transactions = %d, want 0", n)
			}
			f.rt.SetInjector(nil)
			if err := f.rt.Atomic(nil, func(tx *Txn) error {
				tx.Write(o, 1, 1)
				return nil
			}); err != nil {
				t.Fatalf("post-crash transaction: %v", err)
			}
		})
	}
}

func TestCrashInCommitWindowDoesNotStallOrdering(t *testing.T) {
	// A committer dying inside the Figure 4 window (post-commit-point,
	// records held) must complete its write-back ticket during cleanup;
	// otherwise every later in-order committer waits forever.
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Quiescence: true}})
	f.rt.SetInjector(faultinject.New(1, faultinject.Rule{
		Point: faultinject.PostCommitPoint, Action: faultinject.Crash, Every: 1 << 62,
	}))
	o := f.heap.New(f.cls)
	func() {
		defer func() { recover() }() // the injected CrashError
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, 1)
			return nil
		})
	}()
	f.rt.SetInjector(nil)

	done := make(chan error, 1)
	go func() {
		done <- f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 1, 2)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("successor transaction: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("ordering chain stalled behind the crashed committer")
	}
	if got := o.LoadSlot(0); got != 1 {
		t.Fatalf("slot 0 = %d, want 1 (crash was post-commit-point)", got)
	}
}
