//go:build !race

package lazystm

const raceEnabled = false
