// Orphaned-transaction recovery and irrevocable mode for the lazy runtime.
// See internal/stm/recovery.go for the shared design; the lazy differences:
//
//   - An orphan that died before its commit point never wrote to shared
//     memory (updates live in its private buffer), so reclaiming it only
//     restores the acquired records to their original Shared words — no
//     version bump, no undo replay. Discarding the buffer is free.
//
//   - An orphan that died past the commit point has completed its write-back
//     (write-back precedes every post-commit injection point), so the reaper
//     releases with a version bump and completes the orphan's commit ticket,
//     unblocking the write-back ordering chain quiescing committers wait on.
//
//   - Irrevocable transactions acquire records for their reads during the
//     body (tx.objs/tx.owned track holdings from the switch onward); commit
//     keeps those holdings and merges the write set in.
package lazystm

import (
	"time"

	"repro/internal/conflict"
	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/recovery"
	"repro/internal/trace"
	"repro/internal/txrec"
)

// die terminates the goroutine's transactional life with no cleanup. The
// dead store is the death certificate gating all stealing; it must be the
// last thing the dying goroutine does to the descriptor.
func (tx *Txn) die(p faultinject.Point) {
	tx.dead.Store(true)
	panic(faultinject.OrphanError{Point: p, Txn: tx.id})
}

// finish returns the descriptor to the pool unless the transaction died: a
// dead descriptor is left for the reaper and never reused.
func (rt *Runtime) finish(tx *Txn) {
	if tx.dead.Load() {
		return
	}
	rt.putTxn(tx)
}

// reapTxn steals a dead transaction's records (same two gates as the eager
// runtime: confirmed death plus the single-reclaimer CAS). Uncommitted
// orphans have their records restored to the original Shared words — their
// buffered writes never reached memory, so there is nothing to undo and no
// version to burn. Committed orphans (died inside the commit window, after
// write-back) are released with a version bump and their ticket completed so
// the ordering chain cannot stall. Returns false if tx is not confirmed dead
// or another reclaimer won.
func (rt *Runtime) reapTxn(tx *Txn) bool {
	if !tx.dead.Load() || !tx.reaping.CompareAndSwap(false, true) {
		return false
	}
	id := tx.id
	committed := Status(tx.status.Load()) == Committed
	if committed && rt.clockOn {
		// The releases below expose the orphan's written-back values; tick
		// the clock first so no snapshot predating them keeps its
		// single-compare validation fast path (see the eager reaper).
		// ReleaseOwned's plain +1 bump is a fine stamp: a reader that meets
		// a version above its snapshot extends on contact.
		rt.clock.Tick()
	}
	for _, o := range tx.objs {
		sv, ok := tx.owned.Get(o)
		if !ok {
			continue // write-set entry the orphan never got to acquire
		}
		if committed {
			o.Rec.ReleaseOwned(sv)
		} else {
			o.Rec.Store(txrec.MakeShared(sv))
		}
	}
	if committed {
		if tx.ticket != 0 {
			rt.markComplete(tx.ticket)
		}
		rt.Stats.Commits.AddShard(int(id), 1)
	} else {
		tx.status.Store(uint32(Aborted))
		rt.Stats.Aborts.AddShard(int(id), 1)
	}
	if tx.irrevStamp.Load() {
		rt.irrevToken.CompareAndSwap(id, 0)
	}
	rt.Stats.ReaperSteals.AddShard(int(id), 1)
	tx.flushStats()
	if tr := rt.tracer.Load(); tr != nil {
		tr.Record(trace.EvSteal, 0, 0, 0, id)
	}
	rt.reg.remove(tx)
	return true
}

// Recovery exposes the runtime to a recovery.Reaper.
func (rt *Runtime) Recovery() recovery.Target { return lazyTarget{rt} }

type lazyTarget struct{ rt *Runtime }

func (t lazyTarget) Name() string { return "lazy" }

func (t lazyTarget) VisitTxns(f func(recovery.TxnInfo)) {
	t.rt.reg.forEach(func(tx *Txn) bool {
		f(recovery.TxnInfo{
			ID:          tx.stamp.Load(),
			Beat:        tx.hb.Load(),
			Status:      Status(tx.status.Load()),
			Dead:        tx.dead.Load(),
			Irrevocable: tx.irrevStamp.Load(),
		})
		return true
	})
}

func (t lazyTarget) Reclaim(id uint64) bool {
	victim := t.rt.reg.findStamp(id)
	if victim == nil {
		return false
	}
	return t.rt.reapTxn(victim)
}

// IsIrrevocable reports whether the transaction has switched to irrevocable
// mode.
func (tx *Txn) IsIrrevocable() bool { return tx.irrevocable }

// BecomeIrrevocable switches the transaction to irrevocable mode (see the
// eager runtime for the full contract: singular token, read-set lock
// upgrade, restart while still legal, no abort/restart/retry afterwards).
// Panics on a NoIrrevocable runtime.
func (tx *Txn) BecomeIrrevocable() { tx.becomeIrrevocable(false) }

func (tx *Txn) becomeIrrevocable(escalated bool) {
	if tx.irrevocable {
		return
	}
	rt := tx.rt
	if rt.cfg.NoIrrevocable {
		panic("lazystm: BecomeIrrevocable on a runtime configured with NoIrrevocable")
	}
	for a := 0; !rt.irrevToken.CompareAndSwap(0, tx.id); a++ {
		// Pre-switch we are still an ordinary transaction: honor dooms and
		// cancellation so token waiters cannot deadlock with the holder.
		if tx.doomed.Load() {
			tx.Restart()
		}
		if tx.ctx != nil && tx.ctx.Err() != nil {
			panic(txSignal{sigCancel, tx})
		}
		tx.hb.Add(1)
		conflict.WaitAttempt(a, 0)
	}
	if !tx.lockReadSet() {
		// A read-set entry went stale before the switch: put everything back
		// (nothing was written — restore, don't bump), surrender the token,
		// and restart while aborting is still legal.
		tx.release(false)
		rt.irrevToken.Store(0)
		tx.Restart()
	}
	if escalated {
		rt.Stats.Escalations.AddShard(int(tx.id), 1)
		if tr := tx.tr; tr != nil {
			tr.Record(trace.EvEscalate, tx.id, 0, tx.attempt, 0)
		}
	}
	tx.irrevAt = time.Now()
	tx.irrevocable = true
	tx.irrevStamp.Store(true)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvIrrevocable, tx.id, 0, tx.attempt, 0)
	}
}

// lockReadSet upgrades every read-set entry to Exclusive at its recorded
// version, recording holdings in owned/objs (the failure path releases via
// tx.release(false)). A lazy transaction owns nothing during its body, so
// every entry must be Shared at the recorded version; anything else means
// the snapshot is stale.
func (tx *Txn) lockReadSet() bool {
	ok := true
	tx.reads.Range(func(o *objmodel.Object, ver uint64) bool {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			return true
		case txrec.IsShared(w) && txrec.Version(w) == ver:
			if !o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
				ok = false
			} else {
				tx.owned.Put(o, ver)
				tx.objs = append(tx.objs, o)
			}
			return ok
		default:
			ok = false
			return false
		}
	})
	return ok
}

// dropIrrevocable surrenders the irrevocable token after the transaction's
// records have been released, and accounts the hold time.
func (tx *Txn) dropIrrevocable() {
	if !tx.irrevocable {
		return
	}
	hold := time.Since(tx.irrevAt)
	tx.irrevocable = false
	tx.irrevStamp.Store(false)
	tx.rt.irrevToken.Store(0)
	tx.rt.Stats.IrrevocableTxns.AddShard(int(tx.id), 1)
	tx.rt.Stats.IrrevocableNs.AddShard(int(tx.id), hold.Nanoseconds())
	if tr := tx.tr; tr != nil {
		tr.ObserveIrrevocableHold(hold)
	}
}
