package lazystm

// The durable commit-sink hook must be free when disabled: a lazy runtime
// that never had a sink — and one whose sink was removed again — commits
// with zero heap allocations, exactly like the pre-durability runtime.

import (
	"testing"

	"repro/internal/stmapi"
)

type countSink struct{ appends int }

func (c *countSink) AppendRedo(txnID, stamp uint64, writes []stmapi.RedoWrite) (uint64, error) {
	c.appends++
	return uint64(c.appends), nil
}

func (c *countSink) WaitDurable(seq uint64) error { return nil }

// TestLazyDisabledSinkAllocFree pins the sink hook's disabled path on the
// lazy runtime, including after a sink has been installed and removed.
func TestLazyDisabledSinkAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; exact alloc count only meaningful without -race")
	}
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	body := func(tx *Txn) error {
		tx.Write(o, 0, tx.Read(o, 0)+1)
		return nil
	}
	measure := func() float64 {
		for i := 0; i < 10; i++ { // warm the descriptor pool
			if err := f.rt.Atomic(nil, body); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if err := f.rt.Atomic(nil, body); err != nil {
				t.Fatal(err)
			}
		})
	}
	if avg := measure(); avg != 0 {
		t.Errorf("never-sinked lazy transaction allocates %.1f objects, want 0", avg)
	}

	sink := &countSink{}
	f.rt.SetCommitSink(sink)
	for i := 0; i < 20; i++ {
		if err := f.rt.Atomic(nil, body); err != nil {
			t.Fatal(err)
		}
	}
	if sink.appends == 0 {
		t.Fatal("sink never saw a redo append while installed")
	}
	f.rt.SetCommitSink(nil)
	if avg := measure(); avg != 0 {
		t.Errorf("de-sinked lazy transaction allocates %.1f objects, want 0", avg)
	}
}
