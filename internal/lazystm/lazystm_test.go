package lazystm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

type fixture struct {
	heap *objmodel.Heap
	rt   *Runtime
	cls  *objmodel.Class
}

func newFixture(t testing.TB, cfg Config) *fixture {
	t.Helper()
	h := objmodel.NewHeap()
	rt := New(h, cfg)
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name: "Cell",
		Fields: []objmodel.Field{
			{Name: "f"}, {Name: "g"}, {Name: "next", IsRef: true},
		},
	})
	return &fixture{heap: h, rt: rt, cls: cls}
}

func TestLazyCommitBasic(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 5)
		if got := tx.Read(o, 0); got != 5 {
			t.Errorf("read-own-write = %d", got)
		}
		if got := o.LoadSlot(0); got != 0 {
			t.Errorf("lazy write reached memory before commit: %d", got)
		}
		tx.Write(o, 1, 6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.LoadSlot(0) != 5 || o.LoadSlot(1) != 6 {
		t.Errorf("state = (%d,%d), want (5,6)", o.LoadSlot(0), o.LoadSlot(1))
	}
	w := o.Rec.Load()
	if !txrec.IsShared(w) || txrec.Version(w) != 2 {
		t.Errorf("record = %#x, want shared v2", w)
	}
}

func TestLazyAbortLeavesMemoryUntouched(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	o.StoreSlot(0, 3)
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 99)
		return ErrAborted
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatal(err)
	}
	if got := o.LoadSlot(0); got != 3 {
		t.Errorf("slot = %d, want 3", got)
	}
	w := o.Rec.Load()
	if !txrec.IsShared(w) || txrec.Version(w) != 1 {
		t.Errorf("record = %#x, want untouched shared v1", w)
	}
}

func TestLazyValidationFailureRetries(t *testing.T) {
	f := newFixture(t, Config{})
	o, x := f.heap.New(f.cls), f.heap.New(f.cls)
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		v := tx.Read(o, 0)
		if runs == 1 {
			// Conflicting NT write barrier bumps the version before commit.
			if _, ok := o.Rec.AcquireAnon(); !ok {
				t.Fatal("acquire failed")
			}
			o.StoreSlot(0, 7)
			// Like the real barrier (strong.Barriers.Write), tick the commit
			// clock before the release publishes the value, so stale
			// snapshots lose the validation fast path.
			f.heap.Clock().Tick()
			o.Rec.ReleaseAnon()
		}
		tx.Write(x, 0, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Errorf("runs = %d, want 2", runs)
	}
	if got := x.LoadSlot(0); got != 7 {
		t.Errorf("x = %d, want 7", got)
	}
}

func TestLazyCounterAtomicity(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	const (
		goroutines = 8
		iters      = 250
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := o.LoadSlot(0); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
}

// TestCommitWindowVisible proves the defining lazy-versioning property the
// paper's Section 2.3 builds on: there is a window after the commit point
// where a racing plain read still sees the old value.
func TestCommitWindowVisible(t *testing.T) {
	f := newFixture(t, Config{Hooks: Hooks{}})
	o := f.heap.New(f.cls)
	var observed uint64
	f.rt.cfg.Hooks.OnAfterCommitPoint = func(tx *Txn) {
		// Logically committed; memory must still hold the old value.
		observed = o.LoadSlot(0)
	}
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 42)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed != 0 {
		t.Errorf("value at commit point = %d, want 0 (write-back must be pending)", observed)
	}
	if o.LoadSlot(0) != 42 {
		t.Errorf("final = %d", o.LoadSlot(0))
	}
}

// TestGranularSnapshotServesStaleNeighbour reproduces the mechanism behind
// the granular inconsistent read (GIR): with 2-slot granularity, writing
// slot f snapshots slot g; a later in-transaction read of g is served from
// the stale buffer.
func TestGranularSnapshotServesStaleNeighbour(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Granularity: 2}})
	o := f.heap.New(f.cls)
	o.StoreSlot(1, 10) // g
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1) // snapshots g == 10 into the buffer
		// Another thread updates g in memory (barriered NT write).
		if _, ok := o.Rec.AcquireAnon(); !ok {
			t.Fatal("acquire failed")
		}
		o.StoreSlot(1, 20)
		o.Rec.ReleaseAnon()
		if got := tx.Read(o, 1); got != 10 {
			t.Errorf("in-txn read of g = %d, want stale 10 from the span buffer", got)
		}
		return ErrAborted // do not write back; we only probe the buffer
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatal(err)
	}
}

// TestGranularWritebackOverwritesNeighbour reproduces the lazy granular
// lost update: the 2-slot write-back restores the snapshotted neighbour,
// erasing an intervening update.
func TestGranularWritebackOverwritesNeighbour(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Granularity: 2}})
	o := f.heap.New(f.cls)
	o.StoreSlot(1, 10)
	inBody := make(chan struct{})
	wrote := make(chan struct{})
	done := make(chan struct{})
	var once sync.Once
	go func() {
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, 1) // span buffer captures g == 10
			once.Do(func() { close(inBody) })
			<-wrote
			return nil
		})
		close(done)
	}()
	<-inBody
	o.StoreSlot(1, 77) // weakly-atomic NT update to the adjacent field
	close(wrote)
	<-done
	if got := o.LoadSlot(1); got != 10 {
		t.Fatalf("g = %d; want 10: the write-back must lose the NT update (GLU)", got)
	}
}

func TestGranularityOneWritebackDoesNotSpan(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Granularity: 1}})
	o := f.heap.New(f.cls)
	o.StoreSlot(1, 10)
	inBody := make(chan struct{})
	wrote := make(chan struct{})
	done := make(chan struct{})
	go func() {
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, 1)
			select {
			case <-inBody:
			default:
				close(inBody)
			}
			<-wrote
			return nil
		})
		close(done)
	}()
	<-inBody
	o.StoreSlot(1, 77)
	close(wrote)
	<-done
	if got := o.LoadSlot(1); got != 77 {
		t.Errorf("g = %d, want 77 (slot-granular buffer must not touch it)", got)
	}
}

// TestQuiescenceOrdersCompletion: with quiescence, when Atomic returns all
// earlier-serialized transactions' write-backs are complete.
func TestQuiescenceOrdersCompletion(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Quiescence: true}})
	o := f.heap.New(f.cls)
	x := f.heap.New(f.cls)
	const n = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					return nil
				})
				// After return, our own update (and all earlier ones) must
				// be in memory: the plain read must be >= our count lower
				// bound. With quiescence the write-back of every serialized
				// predecessor is complete, so the plain load can never lag.
				if got := o.LoadSlot(0); got == 0 {
					t.Error("own committed update not visible after Atomic returned")
					return
				}
				_ = x
			}
		}(g)
	}
	wg.Wait()
	if got := o.LoadSlot(0); got != 4*n {
		t.Errorf("counter = %d, want %d", got, 4*n)
	}
}

func TestLazyRetry(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	done := make(chan uint64)
	started := make(chan struct{})
	var once sync.Once
	go func() {
		var got uint64
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			v := tx.Read(o, 0)
			once.Do(func() { close(started) })
			if v == 0 {
				tx.Retry()
			}
			got = v
			return nil
		})
		done <- got
	}()
	<-started
	_ = f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 8)
		return nil
	})
	if got := <-done; got != 8 {
		t.Errorf("retry observed %d, want 8", got)
	}
}

func TestLazyRestart(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		tx.Write(o, 0, uint64(runs))
		if runs < 2 {
			tx.Restart()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 || o.LoadSlot(0) != 2 {
		t.Errorf("runs = %d, slot = %d", runs, o.LoadSlot(0))
	}
}

func TestLazyNestedFlattened(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.heap.New(f.cls)
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		return f.rt.Atomic(tx, func(tx *Txn) error {
			tx.Write(o, 1, 2)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.LoadSlot(0) != 1 || o.LoadSlot(1) != 2 {
		t.Errorf("state = (%d,%d)", o.LoadSlot(0), o.LoadSlot(1))
	}
}

func TestLazyMultiObjectCommitSorted(t *testing.T) {
	f := newFixture(t, Config{})
	objs := make([]*objmodel.Object, 8)
	for i := range objs {
		objs[i] = f.heap.New(f.cls)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					// Touch objects in different orders per goroutine; the
					// sorted commit-time acquisition avoids deadlock.
					if g%2 == 0 {
						for _, o := range objs {
							tx.Write(o, 0, tx.Read(o, 0)+1)
						}
					} else {
						for j := len(objs) - 1; j >= 0; j-- {
							tx.Write(objs[j], 0, tx.Read(objs[j], 0)+1)
						}
					}
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	for i, o := range objs {
		if got := o.LoadSlot(0); got != 400 {
			t.Errorf("obj %d = %d, want 400", i, got)
		}
	}
}

func TestLazyBadGranularityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("granularity 5 accepted")
		}
	}()
	New(objmodel.NewHeap(), Config{CommonConfig: stmapi.CommonConfig{Granularity: 5}})
}
