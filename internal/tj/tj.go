// Package tj is the compiler driver for the TJ language: it wires the
// front end (lexer, parser, type checker), the IR lowering pass, and the
// barrier optimization pipeline into one entry point.
package tj

import (
	"fmt"

	"repro/internal/lang/ir"
	"repro/internal/lang/lower"
	"repro/internal/lang/parser"
	"repro/internal/lang/types"
	"repro/internal/opt"
)

// Frontend parses, checks, and lowers src with no barrier optimization:
// every non-transactional access keeps its isolation barrier (the paper's
// "No Opts" configuration).
func Frontend(src string) (*ir.Program, error) {
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	tp, err := types.Check(astProg)
	if err != nil {
		return nil, err
	}
	prog, err := lower.Compile(tp)
	if err != nil {
		return nil, err
	}
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("internal error: lowering produced bad IR: %w", err)
	}
	return prog, nil
}

// Compile runs the full pipeline with the given barrier-optimization
// options, returning the optimized program and the optimization report.
func Compile(src string, o opt.Options) (*ir.Program, *opt.Report, error) {
	prog, err := Frontend(src)
	if err != nil {
		return nil, nil, err
	}
	report := opt.Run(prog, o)
	if err := prog.Verify(); err != nil {
		return nil, nil, fmt.Errorf("internal error: optimization produced bad IR: %w", err)
	}
	return prog, report, nil
}

// CompileLevel is Compile at one of the paper's named optimization levels.
func CompileLevel(src string, level opt.Level, granularity int) (*ir.Program, *opt.Report, error) {
	return Compile(src, opt.FromLevel(level, granularity))
}
