package tj

import (
	"strings"
	"testing"

	"repro/internal/lang/lexer"
	"repro/internal/opt"
	"repro/internal/vm"
)

// Fuzzing the compiler pipeline: any input must either produce a clean
// error or compile to IR that passes the verifier and (for the seeds)
// executes without internal faults. Run long with:
//
//	go test -fuzz FuzzCompile ./internal/tj
//
// In normal test runs only the seed corpus executes.

var fuzzSeeds = []string{
	``,
	`class`,
	`class Main { static func main() { } }`,
	`class Main { static func main() { print(1+2*3); } }`,
	`class C { var f: int; }
class Main { static func main() { var c = new C(); atomic { c.f = 1; } print(c.f); } }`,
	`class Main { static func main() { var a = new int[4]; for (var i = 0; i < len(a); i++) { a[i] = i; } } }`,
	`class A { func m(): int { return 1; } }
class B extends A { func m(): int { return 2; } }
class Main { static func main() { var x: A = new B(); print(x.m()); } }`,
	`class Main {
  static var s: int;
  static func w() { atomic { s = s + 1; } }
  static func main() { var t = spawn Main.w(); join(t); print(s); }
}`,
	`class Main { static func main() { synchronized (null) { } } }`,
	`class Main { static func main() { retry; } }`,
	`class Main { static func main() { var x = 0; while (true) { x++; if (x > 3) { break; } } print(x); } }`,
	"class Main { static func main() { /* unterminated",
	`class Main { static func main() { var x = 9999999999999999999999; } }`,
	`class Main extends Main { static func main() { } }`,
}

func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexer.Tokenize(src)
		if err != nil {
			return // clean rejection
		}
		if len(toks) == 0 {
			t.Error("tokenize returned no tokens (expected at least EOF)")
		}
	})
}

func FuzzCompile(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		prog, _, err := Compile(src, opt.FromLevel(opt.O4WholeProg, 1))
		if err != nil {
			// Internal-error messages indicate pipeline bugs even when the
			// input is garbage; ordinary front-end errors are fine.
			if strings.Contains(err.Error(), "internal error") {
				t.Errorf("pipeline internal error: %v", err)
			}
			return
		}
		if err := prog.Verify(); err != nil {
			t.Errorf("verifier rejected compiled fuzz input: %v", err)
		}
	})
}

// FuzzCompileAndRun executes accepted seeds briefly: runtime errors are
// fine, internal VM panics are not. A step budget keeps infinite loops in
// fuzz inputs from hanging the fuzzer (spawn-free seeds only run on the
// main thread, so the budget check suffices).
func FuzzCompileAndRun(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 || strings.Contains(src, "spawn") ||
			strings.Contains(src, "while") || strings.Contains(src, "for") ||
			strings.Contains(src, "retry") {
			// Unbounded loops and blocking constructs can hang a fuzz
			// worker; the deterministic test suite covers them.
			return
		}
		prog, _, err := Compile(src, opt.FromLevel(opt.O2Aggregate, 1))
		if err != nil {
			return
		}
		m, err := vm.New(prog, vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true}, nil)
		if err != nil {
			return
		}
		_ = m.Run() // runtime errors are acceptable; panics are not
	})
}
