package tj

import (
	"strings"
	"testing"

	"repro/internal/opt"
)

const ok = `
class C { var f: int; }
class Main {
  static func main() {
    var c = new C();
    c.f = 1;
    atomic { c.f = 2; }
    print(c.f);
  }
}`

func TestFrontend(t *testing.T) {
	p, err := Frontend(ok)
	if err != nil {
		t.Fatal(err)
	}
	if p.Main == nil || len(p.Methods) == 0 {
		t.Error("incomplete program")
	}
}

func TestFrontendErrors(t *testing.T) {
	if _, err := Frontend("class {"); err == nil || !strings.Contains(err.Error(), "syntax error") {
		t.Errorf("syntax error not surfaced: %v", err)
	}
	if _, err := Frontend("class Main { static func main() { x; } }"); err == nil {
		t.Error("type error not surfaced")
	}
}

func TestCompileLevels(t *testing.T) {
	for lvl := opt.O0NoOpts; lvl <= opt.O4WholeProg; lvl++ {
		p, rep, err := CompileLevel(ok, lvl, 1)
		if err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		if p == nil || rep == nil {
			t.Fatalf("%v: nil result", lvl)
		}
		if lvl >= opt.O4WholeProg && rep.WholeProg == nil {
			t.Errorf("%v: whole-program report missing", lvl)
		}
		if lvl < opt.O4WholeProg && rep.WholeProg != nil {
			t.Errorf("%v: unexpected whole-program report", lvl)
		}
	}
}

func TestCompileExplicitOptions(t *testing.T) {
	_, rep, err := Compile(ok, opt.Options{BarrierElim: true, Granularity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalReads == 0 && rep.TotalWrites == 0 {
		t.Error("no barriers counted")
	}
}
