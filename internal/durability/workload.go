// Package durability is the Jepsen-style crash harness for the durable STM
// store (internal/durable): a parent process runs a bank-transfer workload
// in child processes, kills them — blackbox SIGKILL at a random moment, or
// whitebox at a seeded fault-injection killpoint inside the WAL protocol —
// recovers the store, and checks invariants that must survive any crash:
//
//  1. conservation: the account balances always sum to the initial total
//  2. monotone clock: the recovered commit clock never runs backwards, and
//     never falls below the stamp of any acknowledged commit
//  3. no lost ack: every transaction acknowledged as committed (its Atomic
//     returned nil, so its redo record was fsynced) is present after
//     recovery — in the snapshot or in the replayed tail
//  4. no resurrection: a transaction that aborted is never replayed
//
// A breach persists the store directory as an artifact and fails the run.
package durability

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/stmapi"

	_ "repro/internal/lazystm" // register the runtimes the child can be told to run
	_ "repro/internal/mvstm"
	_ "repro/internal/stm"
)

// Bank workload shape. The child transfers units between BankAccounts
// accounts (conserving the total) and bumps a per-commit ticker object, so
// every commit's redo image spans two objects.
const (
	BankAccounts = 16
	BankInit     = 1000
	bankWorkers  = 4

	// abortEveryN makes each worker deliberately abort every Nth
	// transaction (the body writes, then errors out) — the no-resurrection
	// invariant needs a population of aborted (epoch, txnID) pairs.
	abortEveryN = 17
)

// SetupBank is the deterministic heap constructor shared by the child and
// every verification reopen: object 1 is the account array, object 2 the
// ticker.
func SetupBank(h *objmodel.Heap) error {
	arr := h.NewArray(BankAccounts, false)
	for i := 0; i < BankAccounts; i++ {
		arr.StoreSlot(i, BankInit)
	}
	h.NewArray(1, false) // ticker
	return nil
}

// bankObjects resolves the workload's two objects in a recovered heap.
func bankObjects(h *objmodel.Heap) (arr, ticker *objmodel.Object) {
	return h.Get(objmodel.Ref(1)), h.Get(objmodel.Ref(2))
}

// BankSum reads the recovered account total non-transactionally (the store
// is quiescent at verification time).
func BankSum(h *objmodel.Heap) uint64 {
	arr, _ := bankObjects(h)
	var sum uint64
	for i := 0; i < BankAccounts; i++ {
		sum += arr.LoadSlot(i)
	}
	return sum
}

// Child environment. The harness re-executes its own binary with
// ChildEnvVar=1; ChildMain picks the rest of its configuration from the
// other variables.
const (
	ChildEnvVar        = "STMCRASH_CHILD"
	childEnvDir        = "STMCRASH_DIR"
	childEnvRuntime    = "STMCRASH_RUNTIME"
	childEnvSeed       = "STMCRASH_SEED"
	childEnvWindow     = "STMCRASH_WINDOW"
	childEnvCkpt       = "STMCRASH_CKPT"
	childEnvKillPoint  = "STMCRASH_KILLPOINT"
	childEnvKillRate   = "STMCRASH_KILLRATE"
	childEnvMaxRun     = "STMCRASH_MAXRUN"
	childEnvNoOpenCkpt = "STMCRASH_NO_OPEN_CKPT"
)

func envDuration(key string, def time.Duration) time.Duration {
	if v := os.Getenv(key); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return def
}

func envUint(key string, def uint64) uint64 {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// ChildMain is the crash-harness child: open the store, hammer it with
// transfers, report acks and aborts on stdout, and run until killed (or a
// safety limit elapses — the parent is supposed to kill us first). It never
// returns an error to the parent through the exit code; dying abruptly is
// its job.
func ChildMain() {
	dir := os.Getenv(childEnvDir)
	runtime := os.Getenv(childEnvRuntime)
	if dir == "" || runtime == "" {
		fmt.Fprintln(os.Stderr, "stmcrash child: STMCRASH_DIR and STMCRASH_RUNTIME required")
		os.Exit(2)
	}
	seed := envUint(childEnvSeed, 1)
	opts := durable.Options{
		Dir:              dir,
		Runtime:          runtime,
		SyncWindow:       envDuration(childEnvWindow, 0),
		CheckpointEvery:  envDuration(childEnvCkpt, 25*time.Millisecond),
		NoOpenCheckpoint: os.Getenv(childEnvNoOpenCkpt) == "1",
		TrackStamps:      true,
	}
	if name := os.Getenv(childEnvKillPoint); name != "" {
		p, ok := faultinject.PointByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "stmcrash child: unknown killpoint %q\n", name)
			os.Exit(2)
		}
		rate := envUint(childEnvKillRate, 32)
		opts.Injector = faultinject.New(seed, faultinject.Rule{
			Point: p, Action: faultinject.Kill, Rate: rate,
		})
	}

	s, err := durable.Open(opts, SetupBank)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stmcrash child: open: %v\n", err)
		os.Exit(2)
	}
	arr, ticker := bankObjects(s.Heap())

	// Acks go straight to stdout, one small write per line, serialized by a
	// mutex: a SIGKILL can tear at most the final line, which the parent's
	// parser tolerates. An "A" line is printed only after Atomic returned
	// nil — after the group-commit fsync barrier — so each one is a
	// durability promise the parent holds us to.
	var outMu sync.Mutex
	epoch := s.Epoch()
	outMu.Lock()
	fmt.Printf("E %d\n", epoch)
	outMu.Unlock()

	deadline := time.Now().Add(envDuration(childEnvMaxRun, 30*time.Second))
	var wg sync.WaitGroup
	errAbort := fmt.Errorf("deliberate abort")
	for g := 0; g < bankWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := seed ^ uint64(g)<<48
			for i := 0; time.Now().Before(deadline); i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := int(rng>>33) % BankAccounts
				to := (from + 1 + int(rng>>17)%(BankAccounts-1)) % BankAccounts
				abort := i%abortEveryN == abortEveryN-1
				var id uint64
				err := s.Atomic(func(tx stmapi.Txn) error {
					id = tx.ID()
					a := tx.Read(arr, from)
					b := tx.Read(arr, to)
					tx.Write(arr, from, a-1)
					tx.Write(arr, to, b+1)
					tx.Write(ticker, 0, tx.Read(ticker, 0)+1)
					if abort {
						return errAbort
					}
					return nil
				})
				outMu.Lock()
				if err != nil {
					fmt.Printf("X %d %d\n", epoch, id)
				} else if stamp, ok := s.TakeStamp(id); ok {
					fmt.Printf("A %d %d %d\n", epoch, id, stamp)
				}
				outMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	s.Close()
}
