package durability

import (
	"fmt"

	"repro/internal/durable"
)

// Ack is one child-reported outcome: a commit acknowledged durable (Stamp
// set) or a deliberate abort (Stamp zero).
type Ack struct {
	Epoch uint64
	TxnID uint64
	Stamp uint64
}

// Breach is one violated invariant.
type Breach struct {
	Invariant string // "conservation" | "clock-monotone" | "lost-ack" | "resurrected-abort"
	Detail    string
}

func (b Breach) String() string { return b.Invariant + ": " + b.Detail }

// State threads verification context across crash iterations: the expected
// account total, the high-water commit stamp from previous recoveries, and
// every ack and abort the workload ever reported (acks older than the
// current snapshot are vacuously covered by it and pruned as the snapshot
// stamp advances).
type State struct {
	ExpectedSum  uint64
	PrevMaxStamp uint64
	Acks         []Ack
	Aborts       []Ack
}

// NewState starts verification for the bank workload.
func NewState() *State {
	return &State{ExpectedSum: BankAccounts * BankInit}
}

// Check verifies one recovered store against the accumulated history and
// returns every breach found. sum is the recovered account total; info is
// what recovery-on-open reported.
func (st *State) Check(sum uint64, info durable.RecoveryInfo) []Breach {
	var breaches []Breach

	// 1. Conservation: transfers move units, never mint or burn them.
	if sum != st.ExpectedSum {
		breaches = append(breaches, Breach{"conservation",
			fmt.Sprintf("account sum %d, want %d", sum, st.ExpectedSum)})
	}

	// 2. Monotone clock: recovery can only move the commit clock forward.
	if info.MaxStamp < st.PrevMaxStamp {
		breaches = append(breaches, Breach{"clock-monotone",
			fmt.Sprintf("recovered MaxStamp %d below previous recovery's %d", info.MaxStamp, st.PrevMaxStamp)})
	}

	replayed := make(map[[2]uint64]uint64, len(info.Txns))
	for _, txn := range info.Txns {
		replayed[[2]uint64{txn.Epoch, txn.TxnID}] = txn.Stamp
	}

	// 3. No lost ack: every acknowledged commit is in the snapshot (stamp ≤
	// SnapshotStamp) or in the replayed WAL tail. Acks covered by the
	// snapshot are pruned — later recoveries' snapshots only grow.
	kept := st.Acks[:0]
	for _, a := range st.Acks {
		if a.Stamp <= info.SnapshotStamp {
			continue
		}
		kept = append(kept, a)
		if _, ok := replayed[[2]uint64{a.Epoch, a.TxnID}]; !ok {
			breaches = append(breaches, Breach{"lost-ack",
				fmt.Sprintf("acked commit epoch %d txn %d stamp %d missing after recovery (snapshot stamp %d, %d txns replayed)",
					a.Epoch, a.TxnID, a.Stamp, info.SnapshotStamp, len(info.Txns))})
		}
		if a.Stamp > info.MaxStamp {
			breaches = append(breaches, Breach{"clock-monotone",
				fmt.Sprintf("acked stamp %d above recovered MaxStamp %d", a.Stamp, info.MaxStamp)})
		}
	}
	st.Acks = kept

	// 4. No resurrection: aborted transactions must not be replayed.
	for _, x := range st.Aborts {
		if stamp, ok := replayed[[2]uint64{x.Epoch, x.TxnID}]; ok {
			breaches = append(breaches, Breach{"resurrected-abort",
				fmt.Sprintf("aborted txn epoch %d id %d replayed with stamp %d", x.Epoch, x.TxnID, stamp)})
		}
	}

	if info.MaxStamp > st.PrevMaxStamp {
		st.PrevMaxStamp = info.MaxStamp
	}
	return breaches
}
