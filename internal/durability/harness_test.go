package durability

import (
	"os"
	"testing"
	"time"

	"repro/internal/vfs"
)

// TestMain doubles as the workload child: the harness re-executes this test
// binary with ChildEnvVar set, and we never reach m.Run in that mode.
func TestMain(m *testing.M) {
	if os.Getenv(ChildEnvVar) == "1" {
		ChildMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func childCommand(t *testing.T) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return []string{exe}
}

func iters(t *testing.T, full int) int {
	if testing.Short() {
		return full / 5
	}
	return full
}

// TestBlackboxCrashLoop is the acceptance gate: SIGKILL crash-recovery
// iterations across all three runtimes on the real file system, zero
// invariant breaches. Full mode runs 70 iterations per runtime (210 total,
// above the ≥200 bar); -short runs a smoke slice.
func TestBlackboxCrashLoop(t *testing.T) {
	for _, rt := range []string{"eager", "lazy", "mvstm"} {
		t.Run(rt, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Options{
				Dir:             t.TempDir(),
				Runtime:         rt,
				ChildCommand:    childCommand(t),
				Iterations:      iters(t, 70),
				Seed:            0xC0FFEE ^ uint64(len(rt)),
				CheckpointEvery: 25 * time.Millisecond,
				ArtifactDir:     os.Getenv("STM_DURABILITY_ARTIFACTS"),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range res.Breaches {
				t.Errorf("invariant breach: %s", b)
			}
			for _, a := range res.Artifacts {
				t.Logf("artifact: %s", a)
			}
			if res.Acked == 0 {
				t.Fatal("no commit was ever acknowledged — the loop tested nothing")
			}
			if res.Kills == 0 {
				t.Fatal("no child was killed — the loop tested nothing")
			}
			if res.Replayed == 0 {
				t.Fatal("no WAL record was ever replayed — recovery untested")
			}
			t.Logf("%d iterations, %d kills, %d acked, %d aborted, %d replayed, %d torn tails, %d snapshot recoveries",
				res.Iterations, res.Kills, res.Acked, res.Aborted, res.Replayed, res.TornTails, res.Snapshots)
		})
	}
}

// TestWhiteboxKillpoints drives the killpoint matrix: children SIGKILL
// themselves at seeded arrivals of each WAL-protocol point, on each runtime.
func TestWhiteboxKillpoints(t *testing.T) {
	for _, point := range []string{"wal-append", "wal-fsync", "wal-rename"} {
		for _, rt := range []string{"eager", "lazy", "mvstm"} {
			point, rt := point, rt
			t.Run(point+"/"+rt, func(t *testing.T) {
				t.Parallel()
				res, err := Run(Options{
					Dir:             t.TempDir(),
					Runtime:         rt,
					ChildCommand:    childCommand(t),
					Iterations:      iters(t, 10),
					Seed:            0xDEAD ^ uint64(len(point)*31+len(rt)),
					CheckpointEvery: 10 * time.Millisecond,
					KillPoint:       point,
					KillRate:        24,
					MaxRun:          60 * time.Millisecond,
					ArtifactDir:     os.Getenv("STM_DURABILITY_ARTIFACTS"),
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range res.Breaches {
					t.Errorf("invariant breach: %s", b)
				}
				if res.Kills == 0 {
					t.Fatalf("killpoint %s never fired on %s", point, rt)
				}
				t.Logf("%d iterations, %d kills, %d acked, %d replayed",
					res.Iterations, res.Kills, res.Acked, res.Replayed)
			})
		}
	}
}

// TestInProcessHonestFS: the FaultFS loop on an honest (but volatile-cache)
// disk must hold every invariant on all three runtimes.
func TestInProcessHonestFS(t *testing.T) {
	for _, rt := range []string{"eager", "lazy", "mvstm"} {
		t.Run(rt, func(t *testing.T) {
			fs := vfs.NewFaultFS(11, vfs.Mode{TornWrites: true})
			res, err := RunInProcess(fs, rt, iters(t, 20), 0xAB)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range res.Breaches {
				t.Errorf("invariant breach on honest FS: %s", b)
			}
			if res.Acked == 0 || res.Replayed == 0 {
				t.Fatalf("acked %d, replayed %d — loop tested nothing", res.Acked, res.Replayed)
			}
		})
	}
}

// TestFsyncLieDetected is the expected-breach test: on a disk that lies
// about fsync, acknowledged commits are lost by a crash and the harness
// MUST say so. If this test fails, the harness has lost its teeth.
func TestFsyncLieDetected(t *testing.T) {
	fs := vfs.NewFaultFS(13, vfs.Mode{FsyncLie: true})
	res, err := RunInProcess(fs, "eager", 3, 0xCD)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, b := range res.Breaches {
		if b.Invariant == "lost-ack" {
			lost++
		}
	}
	if lost == 0 {
		t.Fatalf("no lost-ack breach detected under a lying fsync (breaches: %v)", res.Breaches)
	}
	t.Logf("fsync lie correctly detected: %d lost-ack breaches over %d acked commits", lost, res.Acked)
}

// TestVolatileRenameTolerated: losing the snapshot rename must NOT breach —
// recovery falls back to the previous snapshot plus a longer WAL tail.
func TestVolatileRenameTolerated(t *testing.T) {
	fs := vfs.NewFaultFS(17, vfs.Mode{VolatileRenames: true, TornWrites: true})
	res, err := RunInProcess(fs, "mvstm", iters(t, 10), 0xEF)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Breaches {
		t.Errorf("invariant breach under volatile renames: %s", b)
	}
}
