package durability

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/stmapi"
	"repro/internal/vfs"
)

// errDeliberate is the in-process workload's deliberate-abort sentinel.
var errDeliberate = fmt.Errorf("deliberate abort")

// Options configures a crash-loop run.
type Options struct {
	// Dir is the store directory, shared by every iteration (that is the
	// point: each child recovers what the previous one left).
	Dir string

	// Runtime is the stmapi runtime name the children run.
	Runtime string

	// ChildCommand re-executes the harness binary as a workload child; the
	// harness appends the STMCRASH_* environment. Typically
	// []string{os.Executable()} with ChildEnvVar handled in TestMain or
	// main().
	ChildCommand []string

	// Iterations is the number of crash-recover cycles.
	Iterations int

	// Seed derives per-iteration child seeds and blackbox kill delays.
	Seed uint64

	// SyncWindow and CheckpointEvery are passed through to the child's
	// store.
	SyncWindow      time.Duration
	CheckpointEvery time.Duration

	// KillPoint selects whitebox mode: the faultinject point name
	// ("wal-append", "wal-fsync", "wal-rename") at which the child SIGKILLs
	// itself, at KillRate/1024 of arrivals (default 32). Empty means
	// blackbox: the parent kills the child at a random moment.
	KillPoint string
	KillRate  uint64

	// MinRun/MaxRun bound the blackbox child lifetime (defaults 20–120ms).
	// Whitebox children are given MaxRun·50 to reach their killpoint, then
	// killed anyway.
	MinRun time.Duration
	MaxRun time.Duration

	// ArtifactDir, when set, receives a copy of the store directory, the
	// child's reported history, and the breach list for every iteration
	// that breaches an invariant.
	ArtifactDir string

	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Result summarizes a run.
type Result struct {
	Iterations int
	Kills      int      // children that died by signal (vs clean exit)
	Acked      int      // durability promises verified
	Aborted    int      // deliberate aborts tracked
	Replayed   int      // WAL records replayed across all recoveries
	TornTails  int      // recoveries that ended at a torn record
	Snapshots  int      // recoveries that loaded a snapshot
	Breaches   []Breach // every invariant violation, with iteration context
	Artifacts  []string // artifact dirs persisted for breaches
}

func (o *Options) defaults() {
	if o.Iterations == 0 {
		o.Iterations = 25
	}
	if o.MinRun == 0 {
		o.MinRun = 20 * time.Millisecond
	}
	if o.MaxRun == 0 {
		o.MaxRun = 120 * time.Millisecond
	}
	if o.KillRate == 0 {
		o.KillRate = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Run executes the crash loop: spawn child, kill it, recover, verify,
// repeat. It returns an error only for harness plumbing failures; invariant
// violations are reported in Result.Breaches.
func Run(opts Options) (*Result, error) {
	opts.defaults()
	if len(opts.ChildCommand) == 0 {
		return nil, fmt.Errorf("durability: Options.ChildCommand required")
	}
	if opts.Dir == "" || opts.Runtime == "" {
		return nil, fmt.Errorf("durability: Options.Dir and Options.Runtime required")
	}
	res := &Result{}
	st := NewState()

	for iter := 0; iter < opts.Iterations; iter++ {
		acks, aborts, killed, err := runChild(&opts, iter)
		if err != nil {
			return res, fmt.Errorf("iteration %d: %w", iter, err)
		}
		res.Iterations++
		if killed {
			res.Kills++
		}
		st.Acks = append(st.Acks, acks...)
		st.Aborts = append(st.Aborts, aborts...)
		res.Acked += len(acks)
		res.Aborted += len(aborts)

		// Preserve the post-crash directory before the verification open
		// mutates it (a fresh epoch record, possibly a checkpoint).
		pristine, err := snapshotDir(opts.Dir)
		if err != nil {
			return res, fmt.Errorf("iteration %d: artifact copy: %w", iter, err)
		}

		sum, info, err := verifyOpen(opts.Dir, opts.Runtime)
		if err != nil {
			return res, fmt.Errorf("iteration %d: verification open: %w", iter, err)
		}
		res.Replayed += info.Records
		if info.TornTail {
			res.TornTails++
		}
		if info.SnapshotStamp > 0 {
			res.Snapshots++
		}
		breaches := st.Check(sum, info)
		for _, b := range breaches {
			b.Detail = fmt.Sprintf("iteration %d: %s", iter, b.Detail)
			res.Breaches = append(res.Breaches, b)
		}
		if len(breaches) > 0 && opts.ArtifactDir != "" {
			dir, err := persistArtifact(opts.ArtifactDir, iter, pristine, acks, aborts, breaches)
			if err == nil {
				res.Artifacts = append(res.Artifacts, dir)
			} else if opts.Log != nil {
				fmt.Fprintf(opts.Log, "iteration %d: artifact persist failed: %v\n", iter, err)
			}
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "iter %3d: %3d acked, %2d aborted, replayed %4d (snap stamp %d, torn %v), breaches %d\n",
				iter, len(acks), len(aborts), info.Records, info.SnapshotStamp, info.TornTail, len(breaches))
		}
	}
	return res, nil
}

// runChild spawns one workload child, kills it per the configured mode, and
// parses its ack/abort report.
func runChild(opts *Options, iter int) (acks, aborts []Ack, killed bool, err error) {
	cmd := exec.Command(opts.ChildCommand[0], opts.ChildCommand[1:]...)
	iterSeed := splitmix64(opts.Seed ^ uint64(iter)<<16)
	maxRun := opts.MaxRun
	if opts.KillPoint != "" {
		maxRun = opts.MaxRun * 50
	}
	cmd.Env = append(os.Environ(),
		ChildEnvVar+"=1",
		childEnvDir+"="+opts.Dir,
		childEnvRuntime+"="+opts.Runtime,
		childEnvSeed+"="+strconv.FormatUint(iterSeed, 10),
		childEnvWindow+"="+opts.SyncWindow.String(),
		childEnvCkpt+"="+opts.CheckpointEvery.String(),
		childEnvKillPoint+"="+opts.KillPoint,
		childEnvKillRate+"="+strconv.FormatUint(opts.KillRate, 10),
		childEnvMaxRun+"="+maxRun.String(),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, false, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, nil, false, err
	}

	parsed := make(chan struct{})
	go func() {
		defer close(parsed)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			// A SIGKILL can tear the last line mid-write; parse errors on
			// any line are therefore ignored, not fatal.
			f := strings.Fields(sc.Text())
			if len(f) < 3 {
				continue
			}
			epoch, err1 := strconv.ParseUint(f[1], 10, 64)
			id, err2 := strconv.ParseUint(f[2], 10, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			switch f[0] {
			case "A":
				if len(f) != 4 {
					continue
				}
				stamp, err3 := strconv.ParseUint(f[3], 10, 64)
				if err3 != nil || stamp == 0 {
					continue
				}
				acks = append(acks, Ack{Epoch: epoch, TxnID: id, Stamp: stamp})
			case "X":
				aborts = append(aborts, Ack{Epoch: epoch, TxnID: id})
			}
		}
	}()

	if opts.KillPoint == "" {
		// Blackbox: let the child run a seeded-random slice of its life,
		// then SIGKILL it mid-flight.
		span := opts.MaxRun - opts.MinRun
		delay := opts.MinRun
		if span > 0 {
			delay += time.Duration(splitmix64(iterSeed^0xb1ac) % uint64(span))
		}
		time.Sleep(delay)
		cmd.Process.Kill()
	} else {
		// Whitebox: the injected killpoint fires inside the child; the
		// timer is only a backstop if it never reaches the point.
		timer := time.AfterFunc(maxRun+2*time.Second, func() { cmd.Process.Kill() })
		defer timer.Stop()
	}
	// Drain stdout to EOF (the child dying closes it) before Wait, which
	// would otherwise close the pipe under the parser.
	<-parsed
	if werr := cmd.Wait(); werr != nil {
		killed = true // died by signal (expected) rather than clean exit
	}
	return acks, aborts, killed, nil
}

// verifyOpen recovers the store read-only-ish (no open checkpoint, nothing
// written but the epoch record) and reports the account sum and recovery
// info.
func verifyOpen(dir, runtime string) (uint64, durable.RecoveryInfo, error) {
	s, err := durable.Open(durable.Options{
		Dir: dir, Runtime: runtime, NoOpenCheckpoint: true,
	}, SetupBank)
	if err != nil {
		return 0, durable.RecoveryInfo{}, err
	}
	defer s.Close()
	return BankSum(s.Heap()), s.Recovery(), nil
}

// snapshotDir copies the store directory into a temp dir so a breach can be
// preserved exactly as the crash left it.
func snapshotDir(dir string) (map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = data
	}
	return files, nil
}

// persistArtifact writes the pristine directory image plus the iteration's
// history and breach list under artifactRoot.
func persistArtifact(artifactRoot string, iter int, files map[string][]byte, acks, aborts []Ack, breaches []Breach) (string, error) {
	dir := filepath.Join(artifactRoot, fmt.Sprintf("breach-iter-%03d", iter))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return "", err
		}
	}
	var report strings.Builder
	for _, b := range breaches {
		fmt.Fprintf(&report, "BREACH %s\n", b)
	}
	for _, a := range acks {
		fmt.Fprintf(&report, "A %d %d %d\n", a.Epoch, a.TxnID, a.Stamp)
	}
	for _, x := range aborts {
		fmt.Fprintf(&report, "X %d %d\n", x.Epoch, x.TxnID)
	}
	if err := os.WriteFile(filepath.Join(dir, "REPORT.txt"), []byte(report.String()), 0o644); err != nil {
		return "", err
	}
	return dir, nil
}

// RunInProcess is the FaultFS variant of the crash loop: the workload runs
// in-process against an in-memory fault-injecting file system, the "crash"
// is FaultFS.Crash (process and page cache die together), and recovery
// reopens the same FaultFS. This is how the harness proves it DETECTS bad
// storage: under Mode{FsyncLie: true} acked commits are lost and the
// lost-ack invariant must fire.
func RunInProcess(fs *vfs.FaultFS, runtime string, iterations int, seed uint64) (*Result, error) {
	res := &Result{}
	st := NewState()
	const dir = "/stmcrash"
	for iter := 0; iter < iterations; iter++ {
		s, err := durable.Open(durable.Options{
			Dir: dir, FS: fs, Runtime: runtime, TrackStamps: true,
			CheckpointEvery: time.Millisecond,
		}, SetupBank)
		if err != nil {
			return res, fmt.Errorf("iteration %d: open: %w", iter, err)
		}
		arr, ticker := bankObjects(s.Heap())
		epoch := s.Epoch()
		rng := splitmix64(seed ^ uint64(iter))
		var acks, aborts []Ack
		for i := 0; i < 60; i++ {
			rng = splitmix64(rng)
			from := int(rng % BankAccounts)
			to := (from + 1 + int((rng>>8)%(BankAccounts-1))) % BankAccounts
			abort := i%abortEveryN == abortEveryN-1
			var id uint64
			err := s.Atomic(func(tx stmapi.Txn) error {
				id = tx.ID()
				a := tx.Read(arr, from)
				b := tx.Read(arr, to)
				tx.Write(arr, from, a-1)
				tx.Write(arr, to, b+1)
				tx.Write(ticker, 0, tx.Read(ticker, 0)+1)
				if abort {
					return errDeliberate
				}
				return nil
			})
			if err != nil {
				aborts = append(aborts, Ack{Epoch: epoch, TxnID: id})
			} else if stamp, ok := s.TakeStamp(id); ok {
				acks = append(acks, Ack{Epoch: epoch, TxnID: id, Stamp: stamp})
			}
		}
		res.Iterations++
		res.Acked += len(acks)
		res.Aborted += len(aborts)
		st.Acks = append(st.Acks, acks...)
		st.Aborts = append(st.Aborts, aborts...)
		s.Abandon()
		fs.Crash()

		v, err := durable.Open(durable.Options{
			Dir: dir, FS: fs, Runtime: runtime, NoOpenCheckpoint: true,
		}, SetupBank)
		if err != nil {
			return res, fmt.Errorf("iteration %d: verify open: %w", iter, err)
		}
		info := v.Recovery()
		sum := BankSum(v.Heap())
		v.Abandon() // leave no unsynced state behind the next child
		fs.Crash()
		res.Replayed += info.Records
		for _, b := range st.Check(sum, info) {
			b.Detail = fmt.Sprintf("iteration %d: %s", iter, b.Detail)
			res.Breaches = append(res.Breaches, b)
		}
	}
	return res, nil
}
