// Contention policies: the Handler interface extended with an arbitration
// decision. The paper's conflict manager has exactly one behavior — "back
// off and let the barriers retry" (Section 3.2) — which starves long
// transactions under skew: a transaction that must hold a hot record for a
// while keeps losing the acquire race to a stream of short writers, and
// exponential backoff only widens the gap. Priority-based contention
// management (Chaudhary et al., "Achieving Starvation-Freedom in
// Multi-Version Transactional Memory Systems") bounds that: give the
// conflict manager the identities of both parties and let it pick a winner.
//
// A Policy decides one of three resolutions per conflict:
//
//	Wait       back off and retry the access (the classic behavior; the
//	           policy performs its own waiting before returning)
//	SelfAbort  the contender aborts itself and restarts from the top
//	AbortOther the contender dooms the record's owner: the runtime sets the
//	           owner's doom flag, the owner notices at its next access or
//	           commit validation, aborts (releasing its records), and
//	           restarts — the winner then acquires the record
//
// AbortOther is advisory, never forcible: the winner cannot roll back the
// victim's state itself (only the owning thread can safely replay an undo
// log), so the txrec word stays owned until the victim's own abort releases
// it. A victim that has already passed commit validation simply commits;
// dooming is then a no-op and the winner keeps waiting, which is exactly
// the race-free behavior the txrec state machine guarantees.
package conflict

import (
	"fmt"
	"os"
	"time"
)

// Decision is a Policy's resolution of one conflict.
type Decision uint8

// Decisions.
const (
	// Wait retries the access after the policy's own backoff.
	Wait Decision = iota
	// SelfAbort aborts the contending transaction; it restarts from the top.
	SelfAbort
	// AbortOther dooms the owning transaction so it aborts at its next
	// safe point, releasing the contended record.
	AbortOther
)

func (d Decision) String() string {
	switch d {
	case Wait:
		return "wait"
	case SelfAbort:
		return "self-abort"
	case AbortOther:
		return "abort-other"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// Policy is a Handler that can arbitrate conflicts instead of always
// waiting. Runtimes probe their configured Handler for this interface; a
// plain Handler behaves as a Policy that always waits.
//
// Resolve must perform its own waiting before returning Wait (exactly as
// HandleConflict does); for SelfAbort and AbortOther the runtime acts
// immediately, so the policy should not sleep first.
type Policy interface {
	Handler
	Resolve(Info) Decision
}

// AsPolicy adapts any Handler to the Policy interface: a legacy handler's
// HandleConflict is its waiting, and the decision is always Wait.
func AsPolicy(h Handler) Policy {
	if p, ok := h.(Policy); ok {
		return p
	}
	return waitOnly{h}
}

type waitOnly struct{ h Handler }

func (w waitOnly) HandleConflict(info Info) { w.h.HandleConflict(info) }
func (w waitOnly) Resolve(info Info) Decision {
	w.h.HandleConflict(info)
	return Wait
}

// Resolve makes the default Backoff a Policy explicitly (it would be
// wrapped by AsPolicy anyway): back off, then retry. Keeping Backoff on the
// wait-only path preserves the paper's Section 3.2 behavior and its cost.
func (b *Backoff) Resolve(info Info) Decision {
	b.HandleConflict(info)
	return Wait
}

// Timestamp is the greedy age-based policy: older transactions win. On a
// conflict with a live transactional owner, the older party (smaller ID —
// IDs are begin-order stamps that survive retries) dooms the younger; a
// younger contender aborts itself instead of waiting. The oldest live
// transaction can therefore never lose an arbitration, which makes it
// starvation-free: whatever it contends on, it either dooms the owner or
// is itself the owner.
//
// Conflicts without a live transactional owner (anonymous writers,
// non-transactional barriers, owner already finishing) fall back to
// backoff-and-retry, since there is nobody to arbitrate against.
type Timestamp struct {
	Stats Stats

	// MaxSleep bounds the fallback backoff sleep; zero means
	// DefaultMaxSleep.
	MaxSleep time.Duration
}

// HandleConflict implements Handler for call sites that never arbitrate
// (the non-transactional barriers): plain backoff.
func (t *Timestamp) HandleConflict(info Info) {
	t.Stats.record(info.Kind)
	WaitAttempt(info.Attempt, t.MaxSleep)
}

// Resolve implements Policy: older wins — except an irrevocable owner,
// which outranks age (it can never be doomed; the contender yields).
func (t *Timestamp) Resolve(info Info) Decision {
	t.Stats.record(info.Kind)
	if info.Self == 0 || info.Owner == 0 || !info.OwnerActive {
		WaitAttempt(info.Attempt, t.MaxSleep)
		return Wait
	}
	if info.OwnerIrrevocable {
		WaitAttempt(info.Attempt, t.MaxSleep)
		return Wait
	}
	if info.Self < info.Owner {
		return AbortOther
	}
	return SelfAbort
}

// Karma is the priority-accumulation policy: a transaction's priority is
// the work it has invested (reads + writes, accumulated across aborted
// attempts of the same atomic block, plus one unit per conflict endured),
// so repeatedly-victimized transactions grow strong enough to win. A
// contender waits while the owner outranks it, gaining rank with every
// conflict; once its priority plus the attempt count reaches the owner's
// priority, it dooms the owner. Ties break by age (older wins), so two
// equal-karma rivals cannot doom each other in the same round.
type Karma struct {
	Stats Stats

	// MaxSleep bounds the backoff sleep while waiting; zero means
	// DefaultMaxSleep.
	MaxSleep time.Duration
}

// HandleConflict implements Handler: plain backoff (barriers don't carry
// priorities).
func (k *Karma) HandleConflict(info Info) {
	k.Stats.record(info.Kind)
	WaitAttempt(info.Attempt, k.MaxSleep)
}

// Resolve implements Policy.
func (k *Karma) Resolve(info Info) Decision {
	k.Stats.record(info.Kind)
	if info.Self == 0 || info.Owner == 0 || !info.OwnerActive {
		WaitAttempt(info.Attempt, k.MaxSleep)
		return Wait
	}
	if info.OwnerIrrevocable {
		// No karma total outranks the irrevocable token; yield.
		WaitAttempt(info.Attempt, k.MaxSleep)
		return Wait
	}
	rank := info.SelfPrio + int64(info.Attempt)
	switch {
	case rank > info.OwnerPrio:
		return AbortOther
	case rank == info.OwnerPrio && info.Self < info.Owner:
		return AbortOther
	default:
		WaitAttempt(info.Attempt, k.MaxSleep)
		return Wait
	}
}

// PolicyNames lists the selectable contention policies, default first.
var PolicyNames = []string{"backoff", "timestamp", "karma"}

// ByName constructs a fresh contention policy: "backoff" (the paper's
// Section 3.2 default), "timestamp" (greedy, older wins), or "karma"
// (priority accumulation). It is the single point tools (stmbench -policy,
// the litmus harness, CI matrices) resolve policy names through.
func ByName(name string) (Policy, error) {
	switch name {
	case "", "backoff":
		return &Backoff{}, nil
	case "timestamp":
		return &Timestamp{}, nil
	case "karma":
		return &Karma{}, nil
	default:
		return nil, fmt.Errorf("conflict: unknown policy %q (have %v)", name, PolicyNames)
	}
}

// PolicyEnv names the environment variable that selects a contention policy
// when no explicit name is given, so CI matrices and ad-hoc runs sweep
// policies without plumbing a flag through every entry point.
const PolicyEnv = "STM_CONFLICT_POLICY"

// ByNameOrEnv resolves name like ByName, except an empty name consults
// PolicyEnv first (an empty variable still means the default backoff). An
// unknown name — flag or environment — is an error listing the valid
// policies; every entry point must surface it rather than silently falling
// through to the default.
func ByNameOrEnv(name string) (Policy, error) {
	if name == "" {
		name = os.Getenv(PolicyEnv)
	}
	return ByName(name)
}
