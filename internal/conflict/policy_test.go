package conflict

import (
	"testing"
	"time"
)

func TestByName(t *testing.T) {
	for _, name := range append([]string{""}, PolicyNames...) {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p == nil {
			t.Fatalf("ByName(%q) returned nil policy", name)
		}
	}
	if _, err := ByName("lottery"); err == nil {
		t.Fatalf("ByName(lottery) should fail")
	}
	// Fresh instances each call: policies carry per-runtime stats.
	a, _ := ByName("timestamp")
	b, _ := ByName("timestamp")
	if a == b {
		t.Fatalf("ByName must construct fresh policies")
	}
}

func TestAsPolicy(t *testing.T) {
	b := &Backoff{MaxSleep: time.Microsecond}
	if AsPolicy(b) != Policy(b) {
		t.Fatalf("AsPolicy should return a Policy unchanged")
	}
	p := AsPolicy(&Panic{})
	defer func() {
		if recover() == nil {
			t.Fatalf("wrapped Panic handler should still panic")
		}
	}()
	p.Resolve(Info{Kind: TxnWrite})
}

func TestBackoffResolveAlwaysWaits(t *testing.T) {
	b := &Backoff{MaxSleep: time.Microsecond}
	for attempt := 0; attempt < 8; attempt++ {
		info := Info{Kind: TxnWrite, Attempt: attempt, Self: 9, Owner: 3, OwnerActive: true}
		if d := b.Resolve(info); d != Wait {
			t.Fatalf("Backoff.Resolve attempt %d = %v, want Wait", attempt, d)
		}
	}
}

func TestTimestampResolve(t *testing.T) {
	ts := &Timestamp{MaxSleep: time.Microsecond}
	cases := []struct {
		name string
		info Info
		want Decision
	}{
		{"older contender dooms owner", Info{Self: 3, Owner: 9, OwnerActive: true}, AbortOther},
		{"younger contender yields", Info{Self: 9, Owner: 3, OwnerActive: true}, SelfAbort},
		{"anonymous owner waits", Info{Self: 3, Owner: 0}, Wait},
		{"finished owner waits", Info{Self: 3, Owner: 9, OwnerActive: false}, Wait},
		{"non-transactional contender waits", Info{Self: 0, Owner: 9, OwnerActive: true}, Wait},
	}
	for _, c := range cases {
		if d := ts.Resolve(c.info); d != c.want {
			t.Errorf("%s: got %v, want %v", c.name, d, c.want)
		}
	}
	if ts.Stats.Total() != int64(len(cases)) {
		t.Errorf("stats recorded %d conflicts, want %d", ts.Stats.Total(), len(cases))
	}
}

func TestKarmaResolve(t *testing.T) {
	k := &Karma{MaxSleep: time.Microsecond}
	cases := []struct {
		name string
		info Info
		want Decision
	}{
		{"outranked contender waits",
			Info{Self: 3, Owner: 9, OwnerActive: true, SelfPrio: 1, OwnerPrio: 10, Attempt: 2}, Wait},
		{"rank grows with attempts until doom",
			Info{Self: 3, Owner: 9, OwnerActive: true, SelfPrio: 1, OwnerPrio: 10, Attempt: 10}, AbortOther},
		{"equal rank ties break by age (older wins)",
			Info{Self: 3, Owner: 9, OwnerActive: true, SelfPrio: 5, OwnerPrio: 5, Attempt: 0}, AbortOther},
		{"equal rank younger waits",
			Info{Self: 9, Owner: 3, OwnerActive: true, SelfPrio: 5, OwnerPrio: 5, Attempt: 0}, Wait},
		{"no live owner waits",
			Info{Self: 3, Owner: 9, OwnerActive: false, SelfPrio: 100, OwnerPrio: 0}, Wait},
	}
	for _, c := range cases {
		if d := k.Resolve(c.info); d != c.want {
			t.Errorf("%s: got %v, want %v", c.name, d, c.want)
		}
	}
}
